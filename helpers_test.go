package freshcache

import (
	"fmt"
	"os"
)

// Small test helpers shared by the root-package tests.

func tformat(a, b, at int) string {
	return fmt.Sprintf("%d %d %d %d\n", a, b, at, at+10)
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
