module freshcache

go 1.22
