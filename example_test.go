package freshcache_test

import (
	"fmt"
	"log"
	"time"

	"freshcache"
)

// The basic flow: configure a simulation with functional options, run it
// once, read the aggregated result.
func ExampleNew() {
	sim, err := freshcache.New(
		freshcache.WithPreset("infocom-like"),
		freshcache.WithScheme(freshcache.SchemeHierarchical),
		freshcache.WithUniformItems(3, 2*time.Hour),
		freshcache.WithCachingNodes(6),
		freshcache.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Scheme, res.Trace, res.VersionsGenerated > 0)
	// Output: hierarchical infocom-like true
}

// Comparing two schemes on the identical trace, workload and seed.
func ExampleNew_comparison() {
	run := func(scheme freshcache.SchemeName) freshcache.Result {
		sim, err := freshcache.New(
			freshcache.WithPreset("infocom-like"),
			freshcache.WithScheme(scheme),
			freshcache.WithUniformItems(3, 2*time.Hour),
			freshcache.WithCachingNodes(6),
			freshcache.WithSeed(42),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	direct := run(freshcache.SchemeDirect)
	hier := run(freshcache.SchemeHierarchical)
	fmt.Println(hier.FreshnessRatio > direct.FreshnessRatio)
	// Output: true
}

// A custom contact trace built inline: node 0 sources the item, nodes 1–2
// cache it, and contacts drive everything.
func ExampleWithContacts() {
	var contacts []freshcache.Contact
	at := func(m int) time.Duration { return time.Duration(m) * time.Minute }
	for i := 1; i < 57; i += 3 {
		contacts = append(contacts,
			freshcache.Contact{A: 0, B: 1, Start: at(i), End: at(i) + 30*time.Second},
			freshcache.Contact{A: 1, B: 2, Start: at(i + 1), End: at(i+1) + 30*time.Second},
			freshcache.Contact{A: 2, B: 3, Start: at(i + 2), End: at(i+2) + 30*time.Second},
		)
	}
	sim, err := freshcache.New(
		freshcache.WithContacts(4, time.Hour, contacts),
		freshcache.WithUniformItems(1, 10*time.Minute),
		freshcache.WithCachingNodes(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Deliveries > 0)
	// Output: true
}

// Listing the experiment suite.
func ExampleExperiments() {
	for _, e := range freshcache.Experiments()[:3] {
		fmt.Println(e.ID, "—", e.Title)
	}
	// Output:
	// E1 — Trace summary statistics
	// E2 — Cache freshness ratio vs refresh interval
	// E3 — Validity of data access vs query rate
}
