package freshcache

import (
	"fmt"
	"time"

	"freshcache/internal/analysis"
)

// The planning helpers expose the library's delivery-delay analysis for
// standalone capacity planning: given estimated per-hop contact rates
// (contacts per hour), how likely is an opportunistic path to deliver
// within a window, and how large must the window be to hit a target?

// PathDeliveryProbability returns the probability that a multi-hop
// opportunistic path delivers within the window, under the exponential
// contact model. ratesPerHour holds one expected contact rate per hop
// (contacts/hour); all must be positive.
func PathDeliveryProbability(ratesPerHour []float64, window time.Duration) (float64, error) {
	rates, err := toPerSecond(ratesPerHour)
	if err != nil {
		return 0, err
	}
	p, err := analysis.PathCDF(rates, window.Seconds())
	if err != nil {
		return 0, fmt.Errorf("freshcache: %w", err)
	}
	return p, nil
}

// MinimalFreshnessWindow returns the smallest freshness window under
// which the path delivers with at least probability p (0 < p < 1).
func MinimalFreshnessWindow(ratesPerHour []float64, p float64) (time.Duration, error) {
	rates, err := toPerSecond(ratesPerHour)
	if err != nil {
		return 0, err
	}
	w, err := analysis.MinimalWindow(rates, p)
	if err != nil {
		return 0, fmt.Errorf("freshcache: %w", err)
	}
	return time.Duration(w * float64(time.Second)), nil
}

// ExpectedPathDelay returns the expected delivery delay of the path.
func ExpectedPathDelay(ratesPerHour []float64) (time.Duration, error) {
	rates, err := toPerSecond(ratesPerHour)
	if err != nil {
		return 0, err
	}
	m, err := analysis.PathMean(rates)
	if err != nil {
		return 0, fmt.Errorf("freshcache: %w", err)
	}
	return time.Duration(m * float64(time.Second)), nil
}

func toPerSecond(ratesPerHour []float64) ([]float64, error) {
	out := make([]float64, len(ratesPerHour))
	for i, r := range ratesPerHour {
		if r <= 0 {
			return nil, fmt.Errorf("freshcache: non-positive rate %v at hop %d", r, i)
		}
		out[i] = r / 3600
	}
	return out, nil
}
