package freshcache

import (
	"math"
	"testing"
	"time"
)

func TestPathDeliveryProbability(t *testing.T) {
	// Single hop at 1 contact/hour over 1 hour: 1 - 1/e.
	p, err := PathDeliveryProbability([]float64{1}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-(1-math.Exp(-1))) > 1e-9 {
		t.Fatalf("p = %v", p)
	}
	// Adding hops lowers the probability.
	p2, err := PathDeliveryProbability([]float64{1, 1}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if p2 >= p {
		t.Fatalf("two hops %v not below one hop %v", p2, p)
	}
	if _, err := PathDeliveryProbability([]float64{1, 0}, time.Hour); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestMinimalFreshnessWindow(t *testing.T) {
	w, err := MinimalFreshnessWindow([]float64{2, 1}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PathDeliveryProbability([]float64{2, 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.9-1e-6 {
		t.Fatalf("window %v gives %v < 0.9", w, p)
	}
	if _, err := MinimalFreshnessWindow([]float64{1}, 1.5); err == nil {
		t.Fatal("p > 1 accepted")
	}
}

func TestExpectedPathDelay(t *testing.T) {
	// 2/hour + 1/hour: mean 0.5h + 1h = 1.5h.
	d, err := ExpectedPathDelay([]float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Hours()-1.5) > 1e-9 {
		t.Fatalf("delay = %v", d)
	}
	if _, err := ExpectedPathDelay([]float64{-1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}
