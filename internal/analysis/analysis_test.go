package analysis

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"freshcache/internal/stats"
)

func TestPathMeanVar(t *testing.T) {
	mean, err := PathMean([]float64{0.5, 0.25})
	if err != nil || math.Abs(mean-6) > 1e-12 {
		t.Fatalf("mean = %v, %v", mean, err)
	}
	v, err := PathVar([]float64{0.5, 0.25})
	if err != nil || math.Abs(v-20) > 1e-12 {
		t.Fatalf("var = %v, %v", v, err)
	}
	if _, err := PathMean([]float64{1, 0}); !errors.Is(err, ErrNoPath) {
		t.Fatal("zero rate accepted")
	}
	if _, err := PathVar([]float64{-1}); !errors.Is(err, ErrNoPath) {
		t.Fatal("negative rate accepted")
	}
}

func TestPathCDFEdgeCases(t *testing.T) {
	if p, err := PathCDF(nil, 5); err != nil || p != 1 {
		t.Fatalf("empty path: %v, %v", p, err)
	}
	if p, err := PathCDF([]float64{1}, 0); err != nil || p != 0 {
		t.Fatalf("t=0: %v, %v", p, err)
	}
	if _, err := PathCDF([]float64{1, 0}, 5); !errors.Is(err, ErrNoPath) {
		t.Fatal("zero-rate hop accepted")
	}
}

func TestPathCDFSingleHopMatchesExp(t *testing.T) {
	for _, rate := range []float64{0.001, 0.1, 3} {
		for _, tt := range []float64{0.5, 5, 100, 5000} {
			got, err := PathCDF([]float64{rate}, tt)
			if err != nil {
				t.Fatal(err)
			}
			want := stats.ExpCDF(rate, tt)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("PathCDF([%v], %v) = %v, want %v", rate, tt, got, want)
			}
		}
	}
}

func TestPathCDFTwoHopMatchesClosedForm(t *testing.T) {
	cases := [][3]float64{
		{0.5, 0.5, 3}, {0.2, 1.0, 5}, {2.0, 0.1, 10}, {1.0, 1.0000001, 2},
		{0.001, 0.002, 2000},
	}
	for _, c := range cases {
		got, err := PathCDF([]float64{c[0], c[1]}, c[2])
		if err != nil {
			t.Fatal(err)
		}
		want := stats.HypoExpCDF(c[0], c[1], c[2])
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("PathCDF(%v,%v | %v) = %v, closed form %v", c[0], c[1], c[2], got, want)
		}
	}
}

func TestPathCDFAgainstMonteCarlo(t *testing.T) {
	rng := stats.NewRNG(8)
	paths := [][]float64{
		{0.01, 0.02, 0.005},
		{0.1, 0.1, 0.1, 0.1},                 // Erlang-4: repeated rates
		{1, 0.001, 5, 0.01},                  // wildly heterogeneous
		{0.02, 0.02, 0.019999, 0.05, 0.0003}, // near-equal + slow tail
	}
	for _, rates := range paths {
		mean, err := PathMean(rates)
		if err != nil {
			t.Fatal(err)
		}
		for _, frac := range []float64{0.3, 1, 2} {
			tt := mean * frac
			const n = 200000
			hits := 0
			for i := 0; i < n; i++ {
				var sum float64
				for _, r := range rates {
					sum += stats.Exp(rng, r)
				}
				if sum <= tt {
					hits++
				}
			}
			mc := float64(hits) / n
			got, err := PathCDF(rates, tt)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-mc) > 0.01 {
				t.Fatalf("PathCDF(%v, %v) = %v, Monte Carlo %v", rates, tt, got, mc)
			}
		}
	}
}

// Property: PathCDF is a valid CDF — bounded, monotone in t, and adding a
// hop never raises it.
func TestPathCDFProperties(t *testing.T) {
	f := func(seed int64, kRaw uint8, t1, t2 float64) bool {
		rng := stats.NewRNG(seed)
		k := 1 + int(kRaw%5)
		rates := make([]float64, k)
		for i := range rates {
			rates[i] = 0.001 + stats.Exp(rng, 10)
		}
		t1 = math.Abs(t1)
		t2 = math.Abs(t2)
		if math.IsNaN(t1) || math.IsNaN(t2) || math.IsInf(t1, 0) || math.IsInf(t2, 0) {
			return true
		}
		t1 = math.Mod(t1, 1e6)
		t2 = math.Mod(t2, 1e6)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		p1, err := PathCDF(rates, t1)
		if err != nil {
			return false
		}
		p2, err := PathCDF(rates, t2)
		if err != nil {
			return false
		}
		if p1 < 0 || p2 > 1 || p1 > p2+1e-9 {
			return false
		}
		longer, err := PathCDF(append(rates, 0.01), t2)
		if err != nil {
			return false
		}
		return longer <= p2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPathCDFFarTail(t *testing.T) {
	// 40 standard deviations beyond the mean: shortcut to 1.
	got, err := PathCDF([]float64{0.01, 0.02}, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("far tail = %v, want 1", got)
	}
}

func TestPathCDFInstantHopsDropped(t *testing.T) {
	// A hop with rate 1e6 at t=1000 (mean 1µs) is instantaneous; result
	// must match the path without it.
	with, err := PathCDF([]float64{1e6, 0.005}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	without, err := PathCDF([]float64{0.005}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(with-without) > 1e-6 {
		t.Fatalf("instant hop changed CDF: %v vs %v", with, without)
	}
}

func TestMinimalWindow(t *testing.T) {
	rates := []float64{0.01, 0.02}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		w, err := MinimalWindow(rates, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PathCDF(rates, w)
		if err != nil {
			t.Fatal(err)
		}
		if got < p-1e-6 {
			t.Fatalf("window %v gives CDF %v < target %v", w, got, p)
		}
		// Slightly smaller window must miss the target.
		below, err := PathCDF(rates, w*0.99)
		if err != nil {
			t.Fatal(err)
		}
		if below >= p {
			t.Fatalf("window not minimal: %v at 0.99w still >= %v", below, p)
		}
	}
}

func TestMinimalWindowValidation(t *testing.T) {
	if _, err := MinimalWindow([]float64{1}, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := MinimalWindow([]float64{1}, 1); err == nil {
		t.Fatal("p=1 accepted")
	}
	if _, err := MinimalWindow([]float64{0}, 0.5); err == nil {
		t.Fatal("zero rate accepted")
	}
	if w, err := MinimalWindow(nil, 0.5); err != nil || w != 0 {
		t.Fatalf("empty path: %v, %v", w, err)
	}
}

// Property: MinimalWindow is monotone in p.
func TestMinimalWindowMonotone(t *testing.T) {
	f := func(seed int64, p1, p2 float64) bool {
		rng := stats.NewRNG(seed)
		rates := []float64{0.001 + stats.Exp(rng, 100), 0.001 + stats.Exp(rng, 100)}
		p1 = 0.05 + 0.9*math.Mod(math.Abs(p1), 1)
		p2 = 0.05 + 0.9*math.Mod(math.Abs(p2), 1)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		w1, err := MinimalWindow(rates, p1)
		if err != nil {
			return false
		}
		w2, err := MinimalWindow(rates, p2)
		if err != nil {
			return false
		}
		return w1 <= w2+1e-6*(1+w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
