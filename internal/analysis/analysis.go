// Package analysis generalizes the paper's delivery-probability analysis
// beyond the two-hop case: the delay of a k-hop opportunistic path under
// the exponential contact model is hypoexponential (a sum of independent
// exponentials with the per-hop contact rates), and this package computes
// its CDF robustly for any k, plus the derived quantities the protocol
// design uses — expected path delay, delay variance, and the minimal
// window achieving a target delivery probability.
//
// The CDF is evaluated by uniformization of the underlying absorbing
// Markov chain rather than the textbook partial-fraction closed form,
// which is numerically catastrophic for nearly-equal rates. The
// implementation is deterministic, allocation-light and validated against
// Monte Carlo and the two-hop closed form in the tests.
package analysis

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoPath is returned when a path contains a hop with no contact rate:
// such a path never delivers.
var ErrNoPath = errors.New("analysis: path contains a zero-rate hop")

// PathMean returns the expected delay of a path with the given per-hop
// rates: Σ 1/λi.
func PathMean(rates []float64) (float64, error) {
	var sum float64
	for _, r := range rates {
		if r <= 0 {
			return 0, ErrNoPath
		}
		sum += 1 / r
	}
	return sum, nil
}

// PathVar returns the delay variance of the path: Σ 1/λi².
func PathVar(rates []float64) (float64, error) {
	var sum float64
	for _, r := range rates {
		if r <= 0 {
			return 0, ErrNoPath
		}
		sum += 1 / (r * r)
	}
	return sum, nil
}

// PathCDF returns P(X1 + … + Xk ≤ t) for independent Xi ~ Exp(rates[i]):
// the probability a k-hop path delivers within t. An empty path delivers
// immediately (probability 1 for t >= 0); any non-positive rate yields
// ErrNoPath; t <= 0 yields 0.
func PathCDF(rates []float64, t float64) (float64, error) {
	for _, r := range rates {
		if r <= 0 {
			return 0, ErrNoPath
		}
	}
	if len(rates) == 0 {
		return 1, nil
	}
	if t <= 0 {
		return 0, nil
	}

	// Far beyond the mean the CDF is indistinguishable from 1; this also
	// bounds the uniformization workload below.
	mean, err := PathMean(rates)
	if err != nil {
		return 0, err
	}
	variance, err := PathVar(rates)
	if err != nil {
		return 0, err
	}
	if t > mean+40*math.Sqrt(variance) {
		return 1, nil
	}

	// Hops whose mean is below 0.01% of t are effectively instantaneous:
	// dropping them shifts the CDF argument by at most k·t/1e4, for a CDF
	// error on the order of 1e-3 in the worst case and far less
	// typically. It also caps the uniformization workload at
	// Λt ≤ 1e4 after preprocessing.
	active := make([]float64, 0, len(rates))
	for _, r := range rates {
		if r*t < 1e4 {
			active = append(active, r)
		}
	}
	if len(active) == 0 {
		return 1, nil
	}

	return 1 - hypoSurvivalUniformized(active, t), nil
}

// hypoSurvivalUniformized computes P(X1+…+Xk > t) by uniformizing the
// absorbing chain 1 → 2 → … → k → done: with uniformization rate
// Λ = max λi, the survival probability is
//
//	Σ_{n≥0} Poisson(n; Λt) · P(chain transient after n uniformized jumps)
//
// where each uniformized jump advances phase i with probability λi/Λ and
// self-loops otherwise. Poisson weights are generated iteratively
// (log-domain start) and the series truncated once the remaining tail is
// below 1e-12.
func hypoSurvivalUniformized(rates []float64, t float64) float64 {
	lambda := 0.0
	for _, r := range rates {
		if r > lambda {
			lambda = r
		}
	}
	lt := lambda * t

	// p[i] = probability of being in transient phase i; absorbed mass
	// drops out of the vector.
	p := make([]float64, len(rates))
	p[0] = 1
	next := make([]float64, len(rates))

	// Iterative Poisson pmf: start at n=0 in log domain to avoid
	// underflow for large Λt.
	logPMF := -lt // log Poisson(0; Λt)
	survival := 0.0
	accumulated := 0.0 // Σ pmf so far

	transient := 1.0
	for n := 0; ; n++ {
		pmf := math.Exp(logPMF)
		survival += pmf * transient
		accumulated += pmf

		// Tail bound: remaining Poisson mass × current transient mass
		// (transient mass only shrinks with n).
		if 1-accumulated < 1e-12 || transient < 1e-14 {
			break
		}
		if n > 10_000_000 {
			// Unreachable with the preprocessing in PathCDF; a defensive
			// bound beats an infinite loop.
			break
		}

		// One uniformized jump.
		for i := range next {
			stay := 1 - rates[i]/lambda
			next[i] = p[i] * stay
			if i > 0 {
				next[i] += p[i-1] * (rates[i-1] / lambda)
			}
		}
		p, next = next, p
		transient = 0
		for _, v := range p {
			transient += v
		}

		logPMF += math.Log(lt) - math.Log(float64(n+1))
	}
	if survival < 0 {
		return 0
	}
	if survival > 1 {
		return 1
	}
	return survival
}

// MinimalWindow returns the smallest t such that PathCDF(rates, t) >= p,
// by bisection — the window a path needs to meet a delivery-probability
// requirement. p must be in (0, 1).
func MinimalWindow(rates []float64, p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("analysis: target probability %v outside (0,1)", p)
	}
	if len(rates) == 0 {
		return 0, nil
	}
	mean, err := PathMean(rates)
	if err != nil {
		return 0, err
	}
	variance, err := PathVar(rates)
	if err != nil {
		return 0, err
	}
	lo, hi := 0.0, mean+40*math.Sqrt(variance)
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		cdf, err := PathCDF(rates, mid)
		if err != nil {
			return 0, err
		}
		if cdf >= p {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo < 1e-9*(1+hi) {
			break
		}
	}
	return hi, nil
}
