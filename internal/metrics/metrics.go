// Package metrics collects and aggregates the quantities the paper's
// evaluation reports: the cache freshness ratio over time, the validity of
// data access, refresh delivery delays (and the fraction delivered within
// the freshness window), and protocol overhead.
package metrics

import (
	"fmt"
	"sort"

	"freshcache/internal/cache"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// Sample is one point of the freshness-ratio time series.
type Sample struct {
	Time  float64
	Ratio float64
}

// Delivery records one version arriving at one caching node's store.
type Delivery struct {
	Item        cache.ItemID
	Version     int
	Node        trace.NodeID
	GeneratedAt float64
	DeliveredAt float64
	// OnTime is true when the delivery met the item's freshness window.
	OnTime bool
}

// Delay returns the delivery delay in seconds.
func (d Delivery) Delay() float64 { return d.DeliveredAt - d.GeneratedAt }

// Collector accumulates raw observations during a run.
type Collector struct {
	samples    []Sample
	deliveries []Delivery
	generated  int // versions generated across all items
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{}
}

// RecordSample appends one freshness-ratio sample.
func (c *Collector) RecordSample(t, ratio float64) {
	c.samples = append(c.samples, Sample{Time: t, Ratio: ratio})
}

// RecordDelivery appends one cache delivery.
func (c *Collector) RecordDelivery(d Delivery) {
	c.deliveries = append(c.deliveries, d)
}

// RecordGeneration counts one version generated at a source.
func (c *Collector) RecordGeneration() {
	c.generated++
}

// Samples returns a copy of the freshness time series. Callers may sort or
// mutate the returned slice freely without corrupting the collector.
func (c *Collector) Samples() []Sample {
	out := make([]Sample, len(c.samples))
	copy(out, c.samples)
	return out
}

// Deliveries returns a copy of the raw delivery log. Callers may reorder it
// (e.g. via SortDeliveries) without corrupting the collector.
func (c *Collector) Deliveries() []Delivery {
	out := make([]Delivery, len(c.deliveries))
	copy(out, c.deliveries)
	return out
}

// Generated returns the number of versions generated.
func (c *Collector) Generated() int { return c.generated }

// DeliveryCount returns how many deliveries were recorded, without the
// defensive copy Deliveries makes — cheap enough for per-tick sampling.
func (c *Collector) DeliveryCount() int { return len(c.deliveries) }

// Result is the aggregated outcome of one simulation run.
type Result struct {
	Scheme string `json:"scheme"`
	Trace  string `json:"trace"`
	Seed   int64  `json:"seed"`

	// FreshnessRatio is the time-average fraction of (caching node, item)
	// pairs holding the newest version during the measurement phase.
	FreshnessRatio float64 `json:"freshnessRatio"`

	// Query outcomes.
	//
	// QueriesDropped counts workload queries the engine had to discard
	// because they referenced an item missing from the catalog (a
	// malformed external workload). Nonzero values mean the query-derived
	// rates below are computed over fewer queries than the workload asked
	// for — dropped queries used to vanish silently.
	QueriesDropped int     `json:"queriesDropped,omitempty"`
	Queries        int     `json:"queries"`
	Answered     int     `json:"answered"`
	AnsweredOK   float64 `json:"answeredRatio"`
	FreshAnswers float64 `json:"freshAnswerRatio"` // fresh / answered
	ValidAnswers float64 `json:"validAnswerRatio"` // valid / answered
	// FreshAccessRate / ValidAccessRate use ALL issued queries as the
	// denominator, so unanswered queries count as failures. They are the
	// headline "validity of data access" quantities: a scheme cannot score
	// well by leaving queries unanswered until a fresh source is met.
	FreshAccessRate float64 `json:"freshAccessRate"`
	ValidAccessRate float64 `json:"validAccessRate"`
	// MeanAccessDelaySec is the mean issue-to-service delay of answered
	// queries.
	MeanAccessDelaySec float64 `json:"meanAccessDelaySec"`

	// Refresh delivery.
	Deliveries        int     `json:"deliveries"`
	OnTimeRatio       float64 `json:"onTimeRatio"` // fraction within freshness window
	MeanRefreshDelay  float64 `json:"meanRefreshDelaySec"`
	P50RefreshDelay   float64 `json:"p50RefreshDelaySec"`
	P90RefreshDelay   float64 `json:"p90RefreshDelaySec"`
	P99RefreshDelay   float64 `json:"p99RefreshDelaySec"`
	VersionsGenerated int     `json:"versionsGenerated"`

	// DeliveryDelayHist buckets the refresh delivery delays (seconds from
	// generation to arrival at a caching node); RefreshAgeHist buckets the
	// age of served copies at query-service time (seconds since the served
	// version was generated). Both use DelayBuckets bounds so they merge
	// across runs in RunStats and the obs roll-ups.
	DeliveryDelayHist *Hist `json:"deliveryDelayHist,omitempty"`
	RefreshAgeHist    *Hist `json:"refreshAgeHist,omitempty"`

	// Overhead.
	Transmissions       int            `json:"transmissions"`
	TxPerVersion        float64        `json:"txPerVersion"`
	TransmissionsByKind map[string]int `json:"transmissionsByKind"`
	SimulatedEventCount uint64         `json:"events"`
	WallClockSeconds    float64        `json:"wallClockSeconds"`

	// SourceTxShare is the fraction of refresh-related transmissions
	// originated by the data sources. Source-centric schemes approach 1;
	// the hierarchy's point is to push this down by distributing the
	// refreshing responsibility over the caching nodes.
	SourceTxShare float64 `json:"sourceTxShare"`
	// MaxNodeTxShare is the largest single node's share of refresh-related
	// transmissions — the hot spot.
	MaxNodeTxShare float64 `json:"maxNodeTxShare"`
	// LoadGini is the Gini coefficient of per-node refresh transmissions
	// (0 = perfectly even, →1 = one node does everything).
	LoadGini float64 `json:"loadGini"`

	// SchemeStats carries scheme-internal statistics (e.g. the replication
	// planner's analytical delivery probabilities) for analysis-validation
	// experiments.
	SchemeStats map[string]float64 `json:"schemeStats,omitempty"`
}

// Aggregate folds the collector, query log and overhead counters into a
// Result.
func Aggregate(c *Collector, queries []*cache.Query, txByKind map[string]int, txTotal int) Result {
	r := Result{
		VersionsGenerated:   c.generated,
		Transmissions:       txTotal,
		TransmissionsByKind: txByKind,
	}

	if len(c.samples) > 0 {
		var sum float64
		for _, s := range c.samples {
			sum += s.Ratio
		}
		r.FreshnessRatio = sum / float64(len(c.samples))
	}

	r.Queries = len(queries)
	var delays []float64
	fresh, valid := 0, 0
	for _, q := range queries {
		if !q.Served {
			continue
		}
		r.Answered++
		delays = append(delays, q.ServedAt-q.IssuedAt)
		if r.RefreshAgeHist == nil {
			r.RefreshAgeHist = NewHist(DelayBuckets())
		}
		r.RefreshAgeHist.Observe(q.ServedAt - q.ServedGeneratedAt)
		if q.Fresh {
			fresh++
		}
		if q.Valid {
			valid++
		}
	}
	if r.Queries > 0 {
		r.AnsweredOK = float64(r.Answered) / float64(r.Queries)
	}
	if r.Answered > 0 {
		r.FreshAnswers = float64(fresh) / float64(r.Answered)
		r.ValidAnswers = float64(valid) / float64(r.Answered)
		r.MeanAccessDelaySec = stats.Mean(delays)
	}
	if r.Queries > 0 {
		r.FreshAccessRate = float64(fresh) / float64(r.Queries)
		r.ValidAccessRate = float64(valid) / float64(r.Queries)
	}

	r.Deliveries = len(c.deliveries)
	if len(c.deliveries) > 0 {
		onTime := 0
		dls := make([]float64, 0, len(c.deliveries))
		r.DeliveryDelayHist = NewHist(DelayBuckets())
		for _, d := range c.deliveries {
			if d.OnTime {
				onTime++
			}
			dls = append(dls, d.Delay())
			r.DeliveryDelayHist.Observe(d.Delay())
		}
		r.OnTimeRatio = float64(onTime) / float64(len(c.deliveries))
		s := stats.Summarize(dls)
		r.MeanRefreshDelay = s.Mean
		r.P50RefreshDelay = s.Median
		r.P90RefreshDelay = s.P90
		r.P99RefreshDelay = s.P99
	}

	if c.generated > 0 {
		r.TxPerVersion = float64(txTotal) / float64(c.generated)
	}
	return r
}

// DelayCDF returns the empirical CDF of refresh delivery delays evaluated
// at the probe points (seconds).
func (c *Collector) DelayCDF(probes []float64) []float64 {
	delays := make([]float64, 0, len(c.deliveries))
	for _, d := range c.deliveries {
		delays = append(delays, d.Delay())
	}
	return stats.CDFPoints(delays, probes)
}

// FirstDeliveryOnTimeRatio computes, over (item, version, node) triples,
// the fraction whose FIRST delivery met the freshness window — the
// quantity the probabilistic-replication analysis bounds (duplicates via
// extra relays must not inflate it).
func (c *Collector) FirstDeliveryOnTimeRatio() float64 {
	type key struct {
		item    cache.ItemID
		version int
		node    trace.NodeID
	}
	first := make(map[key]Delivery)
	for _, d := range c.deliveries {
		k := key{d.Item, d.Version, d.Node}
		if prev, ok := first[k]; !ok || d.DeliveredAt < prev.DeliveredAt {
			first[k] = d
		}
	}
	if len(first) == 0 {
		return 0
	}
	onTime := 0
	for _, d := range first {
		if d.OnTime {
			onTime++
		}
	}
	return float64(onTime) / float64(len(first))
}

// String renders the headline numbers of a result.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: freshness=%.3f validAccess=%.3f freshAccess=%.3f answered=%.3f tx/ver=%.1f delay(mean)=%.0fs",
		r.Scheme, r.Trace, r.FreshnessRatio, r.ValidAnswers, r.FreshAnswers, r.AnsweredOK, r.TxPerVersion, r.MeanRefreshDelay)
}

// SortDeliveries orders the delivery log by (time, item, version, node)
// for deterministic output.
func SortDeliveries(ds []Delivery) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.DeliveredAt != b.DeliveredAt {
			return a.DeliveredAt < b.DeliveredAt
		}
		if a.Item != b.Item {
			return a.Item < b.Item
		}
		if a.Version != b.Version {
			return a.Version < b.Version
		}
		return a.Node < b.Node
	})
}
