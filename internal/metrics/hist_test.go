package metrics

import (
	"math"
	"strings"
	"testing"

	"freshcache/internal/cache"
)

func TestHistObserveAndQuantile(t *testing.T) {
	h := NewHist([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50} {
		h.Observe(v)
	}
	if h.Total != 4 || h.Sum != 60.5 {
		t.Fatalf("total=%d sum=%v", h.Total, h.Sum)
	}
	if m := h.Mean(); math.Abs(m-60.5/4) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	// p50 falls inside the (1,10] bucket, p99 inside (10,100].
	if q := h.Quantile(0.5); q <= 1 || q > 10 {
		t.Fatalf("p50 = %v, want in (1,10]", q)
	}
	if q := h.Quantile(0.99); q <= 10 || q > 100 {
		t.Fatalf("p99 = %v, want in (10,100]", q)
	}
	// Overflow observations clamp to the top bound.
	h2 := NewHist([]float64{1, 10})
	h2.Observe(1e9)
	if q := h2.Quantile(0.99); q != 10 {
		t.Fatalf("overflow quantile = %v, want 10", q)
	}
}

func TestHistMergeAndClone(t *testing.T) {
	a := NewHist(DelayBuckets())
	b := NewHist(DelayBuckets())
	a.Observe(5)
	b.Observe(50)
	b.Observe(5000)
	a.Merge(b)
	if a.Total != 3 || a.Sum != 5055 {
		t.Fatalf("merged: total=%d sum=%v", a.Total, a.Sum)
	}
	// Shape mismatches and nils are ignored, not corrupted.
	a.Merge(NewHist([]float64{1}))
	a.Merge(nil)
	if a.Total != 3 {
		t.Fatalf("mismatched merge changed total: %d", a.Total)
	}
	c := a.Clone()
	c.Observe(1)
	if a.Total != 3 {
		t.Fatal("clone shares state")
	}
	var nilH *Hist
	if nilH.Clone() != nil {
		t.Fatal("nil clone")
	}
	nilH.Observe(1) // must not panic
}

func TestAggregateHistograms(t *testing.T) {
	c := New()
	c.RecordGeneration()
	c.RecordDelivery(Delivery{Item: 0, Version: 0, Node: 1, GeneratedAt: 0, DeliveredAt: 50, OnTime: true})
	c.RecordDelivery(Delivery{Item: 0, Version: 0, Node: 2, GeneratedAt: 0, DeliveredAt: 450, OnTime: false})
	qs := []*cache.Query{
		{ID: 0, IssuedAt: 0, Served: true, ServedAt: 100, ServedGeneratedAt: 40, Valid: true},
		{ID: 1, IssuedAt: 0}, // unserved: no age observation
	}
	r := Aggregate(c, qs, nil, 0)
	if r.DeliveryDelayHist == nil || r.DeliveryDelayHist.Total != 2 {
		t.Fatalf("delivery hist: %+v", r.DeliveryDelayHist)
	}
	if r.DeliveryDelayHist.Sum != 500 {
		t.Fatalf("delivery hist sum = %v", r.DeliveryDelayHist.Sum)
	}
	if r.RefreshAgeHist == nil || r.RefreshAgeHist.Total != 1 || r.RefreshAgeHist.Sum != 60 {
		t.Fatalf("age hist: %+v", r.RefreshAgeHist)
	}
	if r.P50RefreshDelay <= 0 || r.P99RefreshDelay < r.P50RefreshDelay {
		t.Fatalf("percentiles: p50=%v p99=%v", r.P50RefreshDelay, r.P99RefreshDelay)
	}
}

func TestRunStatsKindCountsSorted(t *testing.T) {
	s := NewRunStats()
	s.Record(Result{TransmissionsByKind: map[string]int{
		"relay": 2, "refresh": 4, "query": 1, "data": 3, "gossip": 5,
	}})
	kcs := s.KindCounts()
	if len(kcs) != 5 {
		t.Fatalf("kind count = %d", len(kcs))
	}
	for i := 1; i < len(kcs); i++ {
		if kcs[i-1].Kind >= kcs[i].Kind {
			t.Fatalf("KindCounts not sorted: %+v", kcs)
		}
	}
	// The rendered footer must list kinds in the same ascending order every
	// time (it used to follow map-iteration order).
	want := "[data 3, gossip 5, query 1, refresh 4, relay 2]"
	for i := 0; i < 20; i++ {
		if sum := s.Summary(0); !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing sorted block %q", sum, want)
		}
	}
}

func TestRunStatsHistogramFooter(t *testing.T) {
	s := NewRunStats()
	delay := NewHist(DelayBuckets())
	age := NewHist(DelayBuckets())
	for _, v := range []float64{10, 100, 1000} {
		delay.Observe(v)
		age.Observe(v * 2)
	}
	s.Record(Result{DeliveryDelayHist: delay, RefreshAgeHist: age})
	sum := s.Summary(1)
	for _, want := range []string{
		"delay[mean=370s min=10s max=1000s p50=", "age[mean=740s min=20s max=2000s p50=",
		"p90=", "p99=",
	} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
	if s.DeliveryDelayHist().Total != 3 || s.RefreshAgeHist().Total != 3 {
		t.Fatal("merged hist accessors")
	}
	// Accessors return copies.
	s.DeliveryDelayHist().Observe(1)
	if s.DeliveryDelayHist().Total != 3 {
		t.Fatal("DeliveryDelayHist returned internal state")
	}
}
