package metrics

import "sort"

// DelayBuckets returns the standard log-spaced bucket bounds (seconds)
// used for delivery-delay and refresh-age histograms: 1s up to ~18h in
// half-decade steps. Small enough to merge cheaply across thousands of
// cells, wide enough to cover an opportunistic network's delay spread.
func DelayBuckets() []float64 {
	return []float64{
		1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 65536,
	}
}

// Hist is a fixed-bucket histogram of nonnegative delays. Counts[i] holds
// observations <= Bounds[i]; the final extra bucket holds the overflow.
// Unlike obs.Histogram it is a plain value type (no atomics): one Hist
// belongs to one run's Result, and cross-run merging happens under the
// accumulator's lock.
type Hist struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1
	Total  uint64    `json:"total"`
	Sum    float64   `json:"sum"`
	// Min and Max are the exact extremes of the observed values (0 when
	// Total is 0), so reports can print exact ranges instead of bucket
	// bounds.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// NewHist returns an empty histogram over the given ascending bounds.
func NewHist(bounds []float64) *Hist {
	return &Hist{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Hist) Observe(v float64) {
	if h == nil {
		return
	}
	h.Counts[sort.SearchFloat64s(h.Bounds, v)]++
	if h.Total == 0 || v < h.Min {
		h.Min = v
	}
	if h.Total == 0 || v > h.Max {
		h.Max = v
	}
	h.Total++
	h.Sum += v
}

// Merge folds other into h. Histograms must share bounds (they all come
// from the same bucket layout helpers); mismatched shapes are ignored.
func (h *Hist) Merge(other *Hist) {
	if h == nil || other == nil || len(other.Counts) != len(h.Counts) {
		return
	}
	if other.Total > 0 {
		if h.Total == 0 || other.Min < h.Min {
			h.Min = other.Min
		}
		if h.Total == 0 || other.Max > h.Max {
			h.Max = other.Max
		}
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.Total += other.Total
	h.Sum += other.Sum
}

// Clone returns a deep copy (nil for nil).
func (h *Hist) Clone() *Hist {
	if h == nil {
		return nil
	}
	c := &Hist{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]uint64(nil), h.Counts...),
		Total:  h.Total,
		Sum:    h.Sum,
		Min:    h.Min,
		Max:    h.Max,
	}
	return c
}

// Mean returns the mean of the observed values (0 when empty).
func (h *Hist) Mean() float64 {
	if h == nil || h.Total == 0 {
		return 0
	}
	return h.Sum / float64(h.Total)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the containing bucket. Overflow-bucket hits clamp to the top
// bound. Returns 0 when the histogram is empty.
func (h *Hist) Quantile(q float64) float64 {
	if h == nil || h.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Total)
	var cum float64
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			if i >= len(h.Bounds) {
				// Overflow bucket: no upper bound to interpolate toward.
				return h.Bounds[len(h.Bounds)-1]
			}
			hi := h.Bounds[i]
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.Bounds[len(h.Bounds)-1]
}
