package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// RunStats accumulates execution statistics across the simulation runs
// ("cells") of one experiment or sweep: discrete events processed by the
// event engine, transmissions by kind, summed per-run wall time, and merged
// delay histograms. It is safe for concurrent use, so the parallel sweep
// runner's workers can record into one shared instance.
type RunStats struct {
	mu        sync.Mutex
	runs      int
	events    uint64
	tx        int
	txKind    map[string]int
	seconds   float64
	delayHist *Hist
	ageHist   *Hist
}

// NewRunStats returns an empty accumulator.
func NewRunStats() *RunStats {
	return &RunStats{txKind: make(map[string]int)}
}

// Record folds one run's result into the accumulator.
func (s *RunStats) Record(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs++
	s.events += r.SimulatedEventCount
	s.seconds += r.WallClockSeconds
	for kind, n := range r.TransmissionsByKind {
		s.txKind[kind] += n
		s.tx += n
	}
	if r.DeliveryDelayHist != nil {
		if s.delayHist == nil {
			s.delayHist = NewHist(r.DeliveryDelayHist.Bounds)
		}
		s.delayHist.Merge(r.DeliveryDelayHist)
	}
	if r.RefreshAgeHist != nil {
		if s.ageHist == nil {
			s.ageHist = NewHist(r.RefreshAgeHist.Bounds)
		}
		s.ageHist.Merge(r.RefreshAgeHist)
	}
}

// Runs reports how many simulation runs were recorded.
func (s *RunStats) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs
}

// Events reports the total discrete events processed across runs.
func (s *RunStats) Events() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// Transmissions reports the total transmissions of all kinds across runs.
func (s *RunStats) Transmissions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tx
}

// KindCount is one (transmission kind, total) pair.
type KindCount struct {
	Kind  string
	Count int
}

// KindCounts returns the per-kind transmission totals in ascending kind
// order. All renderings of the per-kind breakdown go through this accessor
// so footers and manifests never depend on map-iteration order.
func (s *RunStats) KindCounts() []KindCount {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kindCountsLocked()
}

func (s *RunStats) kindCountsLocked() []KindCount {
	out := make([]KindCount, 0, len(s.txKind))
	for k, v := range s.txKind {
		out = append(out, KindCount{Kind: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// TxByKind returns a copy of the per-kind transmission totals. Prefer
// KindCounts when rendering: map iteration order is deliberately random.
func (s *RunStats) TxByKind() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.txKind))
	for k, v := range s.txKind {
		out[k] = v
	}
	return out
}

// RunSeconds reports the summed per-run wall time. Under a parallel sweep
// this exceeds the sweep's elapsed time — the ratio is the effective
// speedup.
func (s *RunStats) RunSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seconds
}

// DeliveryDelayHist returns a copy of the merged delivery-delay histogram
// (nil when no run recorded one).
func (s *RunStats) DeliveryDelayHist() *Hist {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delayHist.Clone()
}

// RefreshAgeHist returns a copy of the merged refresh-age histogram (nil
// when no run recorded one).
func (s *RunStats) RefreshAgeHist() *Hist {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ageHist.Clone()
}

// Summary renders the block in one line given the enclosing experiment's
// elapsed wall-clock seconds (which determines cells/sec).
func (s *RunStats) Summary(wallSeconds float64) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "cells=%d", s.runs)
	if wallSeconds > 0 {
		fmt.Fprintf(&b, " (%.1f cells/s)", float64(s.runs)/wallSeconds)
	}
	fmt.Fprintf(&b, " events=%d tx=%d", s.events, s.tx)
	if len(s.txKind) > 0 {
		kcs := s.kindCountsLocked()
		parts := make([]string, len(kcs))
		for i, kc := range kcs {
			parts[i] = fmt.Sprintf("%s %d", kc.Kind, kc.Count)
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(parts, ", "))
	}
	// The mean/min/max come from the histogram's exact Sum/Min/Max fields,
	// not bucket midpoints, so the footer matches what obsreport prints.
	if s.delayHist != nil && s.delayHist.Total > 0 {
		fmt.Fprintf(&b, " delay[mean=%.0fs min=%.0fs max=%.0fs p50=%.0fs p90=%.0fs p99=%.0fs]",
			s.delayHist.Mean(), s.delayHist.Min, s.delayHist.Max,
			s.delayHist.Quantile(0.50), s.delayHist.Quantile(0.90), s.delayHist.Quantile(0.99))
	}
	if s.ageHist != nil && s.ageHist.Total > 0 {
		fmt.Fprintf(&b, " age[mean=%.0fs min=%.0fs max=%.0fs p50=%.0fs p90=%.0fs p99=%.0fs]",
			s.ageHist.Mean(), s.ageHist.Min, s.ageHist.Max,
			s.ageHist.Quantile(0.50), s.ageHist.Quantile(0.90), s.ageHist.Quantile(0.99))
	}
	fmt.Fprintf(&b, " simWall=%.2fs", s.seconds)
	return b.String()
}
