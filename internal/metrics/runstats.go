package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// RunStats accumulates execution statistics across the simulation runs
// ("cells") of one experiment or sweep: discrete events processed by the
// event engine, transmissions by kind, and summed per-run wall time. It is
// safe for concurrent use, so the parallel sweep runner's workers can
// record into one shared instance.
type RunStats struct {
	mu      sync.Mutex
	runs    int
	events  uint64
	tx      int
	txKind  map[string]int
	seconds float64
}

// NewRunStats returns an empty accumulator.
func NewRunStats() *RunStats {
	return &RunStats{txKind: make(map[string]int)}
}

// Record folds one run's result into the accumulator.
func (s *RunStats) Record(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs++
	s.events += r.SimulatedEventCount
	s.seconds += r.WallClockSeconds
	for kind, n := range r.TransmissionsByKind {
		s.txKind[kind] += n
		s.tx += n
	}
}

// Runs reports how many simulation runs were recorded.
func (s *RunStats) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs
}

// Events reports the total discrete events processed across runs.
func (s *RunStats) Events() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// Transmissions reports the total transmissions of all kinds across runs.
func (s *RunStats) Transmissions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tx
}

// TxByKind returns a copy of the per-kind transmission totals.
func (s *RunStats) TxByKind() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.txKind))
	for k, v := range s.txKind {
		out[k] = v
	}
	return out
}

// RunSeconds reports the summed per-run wall time. Under a parallel sweep
// this exceeds the sweep's elapsed time — the ratio is the effective
// speedup.
func (s *RunStats) RunSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seconds
}

// Summary renders the block in one line given the enclosing experiment's
// elapsed wall-clock seconds (which determines cells/sec).
func (s *RunStats) Summary(wallSeconds float64) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "cells=%d", s.runs)
	if wallSeconds > 0 {
		fmt.Fprintf(&b, " (%.1f cells/s)", float64(s.runs)/wallSeconds)
	}
	fmt.Fprintf(&b, " events=%d tx=%d", s.events, s.tx)
	if len(s.txKind) > 0 {
		kinds := make([]string, 0, len(s.txKind))
		for k := range s.txKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, len(kinds))
		for i, k := range kinds {
			parts[i] = fmt.Sprintf("%s %d", k, s.txKind[k])
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, " simWall=%.2fs", s.seconds)
	return b.String()
}
