package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"

	"freshcache/internal/cache"
)

func TestAggregateEmpty(t *testing.T) {
	r := Aggregate(New(), nil, nil, 0)
	if r.FreshnessRatio != 0 || r.Queries != 0 || r.Deliveries != 0 {
		t.Fatalf("empty result: %+v", r)
	}
}

func TestAggregateFreshness(t *testing.T) {
	c := New()
	c.RecordSample(0, 0.5)
	c.RecordSample(10, 1.0)
	r := Aggregate(c, nil, nil, 0)
	if math.Abs(r.FreshnessRatio-0.75) > 1e-12 {
		t.Fatalf("freshness = %v, want 0.75", r.FreshnessRatio)
	}
}

func TestAggregateQueries(t *testing.T) {
	qs := []*cache.Query{
		{ID: 0, IssuedAt: 0, Served: true, ServedAt: 100, Fresh: true, Valid: true},
		{ID: 1, IssuedAt: 0, Served: true, ServedAt: 300, Fresh: false, Valid: true},
		{ID: 2, IssuedAt: 0},
		{ID: 3, IssuedAt: 0},
	}
	r := Aggregate(New(), qs, nil, 0)
	if r.Queries != 4 || r.Answered != 2 {
		t.Fatalf("queries: %+v", r)
	}
	if math.Abs(r.AnsweredOK-0.5) > 1e-12 {
		t.Fatalf("answered ratio = %v", r.AnsweredOK)
	}
	if math.Abs(r.FreshAnswers-0.5) > 1e-12 {
		t.Fatalf("fresh ratio = %v", r.FreshAnswers)
	}
	if math.Abs(r.ValidAnswers-1.0) > 1e-12 {
		t.Fatalf("valid ratio = %v", r.ValidAnswers)
	}
	if math.Abs(r.MeanAccessDelaySec-200) > 1e-12 {
		t.Fatalf("mean delay = %v", r.MeanAccessDelaySec)
	}
}

func TestAggregateDeliveriesAndOverhead(t *testing.T) {
	c := New()
	c.RecordGeneration()
	c.RecordGeneration()
	c.RecordDelivery(Delivery{Item: 0, Version: 0, Node: 1, GeneratedAt: 0, DeliveredAt: 50, OnTime: true})
	c.RecordDelivery(Delivery{Item: 0, Version: 0, Node: 2, GeneratedAt: 0, DeliveredAt: 150, OnTime: false})
	r := Aggregate(c, nil, map[string]int{"refresh": 6}, 6)
	if r.Deliveries != 2 || r.VersionsGenerated != 2 {
		t.Fatalf("counts: %+v", r)
	}
	if math.Abs(r.OnTimeRatio-0.5) > 1e-12 {
		t.Fatalf("on-time = %v", r.OnTimeRatio)
	}
	if math.Abs(r.MeanRefreshDelay-100) > 1e-12 {
		t.Fatalf("mean refresh delay = %v", r.MeanRefreshDelay)
	}
	if math.Abs(r.TxPerVersion-3) > 1e-12 {
		t.Fatalf("tx/version = %v", r.TxPerVersion)
	}
	if r.TransmissionsByKind["refresh"] != 6 {
		t.Fatalf("by kind: %v", r.TransmissionsByKind)
	}
}

func TestDelayCDF(t *testing.T) {
	c := New()
	for _, d := range []float64{10, 20, 30, 40} {
		c.RecordDelivery(Delivery{GeneratedAt: 0, DeliveredAt: d})
	}
	got := c.DelayCDF([]float64{5, 20, 100})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("cdf = %v, want %v", got, want)
		}
	}
}

func TestFirstDeliveryOnTimeRatio(t *testing.T) {
	c := New()
	// Same (item, version, node): first delivery on time, duplicate late.
	c.RecordDelivery(Delivery{Item: 0, Version: 1, Node: 5, GeneratedAt: 0, DeliveredAt: 10, OnTime: true})
	c.RecordDelivery(Delivery{Item: 0, Version: 1, Node: 5, GeneratedAt: 0, DeliveredAt: 500, OnTime: false})
	// Another triple: late only.
	c.RecordDelivery(Delivery{Item: 0, Version: 1, Node: 6, GeneratedAt: 0, DeliveredAt: 900, OnTime: false})
	got := c.FirstDeliveryOnTimeRatio()
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("first-delivery on-time = %v, want 0.5", got)
	}
}

func TestFirstDeliveryOnTimeRatioEmpty(t *testing.T) {
	if got := New().FirstDeliveryOnTimeRatio(); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestFirstDeliveryPicksEarliestRegardlessOfLogOrder(t *testing.T) {
	c := New()
	c.RecordDelivery(Delivery{Item: 0, Version: 1, Node: 5, GeneratedAt: 0, DeliveredAt: 500, OnTime: false})
	c.RecordDelivery(Delivery{Item: 0, Version: 1, Node: 5, GeneratedAt: 0, DeliveredAt: 10, OnTime: true})
	if got := c.FirstDeliveryOnTimeRatio(); got != 1 {
		t.Fatalf("ratio = %v, want 1", got)
	}
}

func TestSortDeliveries(t *testing.T) {
	ds := []Delivery{
		{DeliveredAt: 10, Item: 1, Version: 0, Node: 2},
		{DeliveredAt: 5, Item: 0, Version: 0, Node: 0},
		{DeliveredAt: 10, Item: 0, Version: 2, Node: 1},
		{DeliveredAt: 10, Item: 0, Version: 2, Node: 0},
	}
	SortDeliveries(ds)
	if ds[0].DeliveredAt != 5 {
		t.Fatalf("order: %+v", ds)
	}
	if ds[1].Item != 0 || ds[1].Node != 0 {
		t.Fatalf("tie-break wrong: %+v", ds[1])
	}
	if ds[2].Node != 1 || ds[3].Item != 1 {
		t.Fatalf("order: %+v", ds)
	}
}

// Samples and Deliveries hand out defensive copies: sorting or mutating
// what they return must not corrupt the collector's internal logs.
func TestAccessorsReturnCopies(t *testing.T) {
	c := New()
	c.RecordSample(10, 0.25)
	c.RecordSample(20, 0.75)
	c.RecordDelivery(Delivery{Item: 1, Version: 2, Node: 3, GeneratedAt: 0, DeliveredAt: 50, OnTime: true})
	c.RecordDelivery(Delivery{Item: 0, Version: 0, Node: 0, GeneratedAt: 0, DeliveredAt: 5, OnTime: false})

	smp := c.Samples()
	smp[0] = Sample{Time: -1, Ratio: -1}
	if got := c.Samples()[0]; got.Time != 10 || got.Ratio != 0.25 {
		t.Fatalf("sample log corrupted through accessor: %+v", got)
	}

	ds := c.Deliveries()
	SortDeliveries(ds) // reorders the copy: delivery 2 sorts first
	ds[0].Item = 99
	fresh := c.Deliveries()
	if fresh[0].Item != 1 || fresh[0].DeliveredAt != 50 {
		t.Fatalf("delivery log corrupted through accessor: %+v", fresh[0])
	}
}

func TestRunStatsAccumulates(t *testing.T) {
	s := NewRunStats()
	s.Record(Result{SimulatedEventCount: 100, WallClockSeconds: 0.5,
		TransmissionsByKind: map[string]int{"refresh": 4, "relay": 2}})
	s.Record(Result{SimulatedEventCount: 50, WallClockSeconds: 0.25,
		TransmissionsByKind: map[string]int{"refresh": 1}})
	if s.Runs() != 2 || s.Events() != 150 || s.Transmissions() != 7 {
		t.Fatalf("totals: runs=%d events=%d tx=%d", s.Runs(), s.Events(), s.Transmissions())
	}
	if math.Abs(s.RunSeconds()-0.75) > 1e-12 {
		t.Fatalf("run seconds = %v", s.RunSeconds())
	}
	byKind := s.TxByKind()
	if byKind["refresh"] != 5 || byKind["relay"] != 2 {
		t.Fatalf("by kind: %v", byKind)
	}
	byKind["refresh"] = 0 // copy: must not write through
	if s.TxByKind()["refresh"] != 5 {
		t.Fatal("TxByKind returned internal map")
	}
	sum := s.Summary(0.5)
	for _, want := range []string{"cells=2", "events=150", "tx=7", "refresh 5", "relay 2", "cells/s"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
}

func TestRunStatsConcurrent(t *testing.T) {
	s := NewRunStats()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Record(Result{SimulatedEventCount: 1, TransmissionsByKind: map[string]int{"refresh": 1}})
			}
		}()
	}
	wg.Wait()
	if s.Runs() != 800 || s.Events() != 800 || s.Transmissions() != 800 {
		t.Fatalf("concurrent totals: runs=%d events=%d tx=%d", s.Runs(), s.Events(), s.Transmissions())
	}
}

func TestDeliveryDelay(t *testing.T) {
	d := Delivery{GeneratedAt: 100, DeliveredAt: 175}
	if d.Delay() != 75 {
		t.Fatalf("delay = %v", d.Delay())
	}
}

func TestResultString(t *testing.T) {
	r := Result{Scheme: "hier", Trace: "x"}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}
