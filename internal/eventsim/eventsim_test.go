package eventsim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustSchedule(t *testing.T, s *Simulator, at float64, h Handler) EventID {
	t.Helper()
	id, err := s.ScheduleAt(at, h)
	if err != nil {
		t.Fatalf("ScheduleAt(%v): %v", at, err)
	}
	return id
}

func TestRunsInTimeOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		mustSchedule(t, s, at, func(now float64) { got = append(got, now) })
	}
	end, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if end != 100 {
		t.Fatalf("end = %v, want 100", end)
	}
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTiesRunInSchedulingOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, s, 7, func(float64) { got = append(got, i) })
	}
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestHorizonLeavesFutureEventsQueued(t *testing.T) {
	s := New()
	ran := false
	mustSchedule(t, s, 50, func(float64) { ran = true })
	end, err := s.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if end != 10 || ran {
		t.Fatalf("end=%v ran=%v; event beyond horizon must not run", end, ran)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	// A later Run picks it up.
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event did not run on resumed Run")
	}
}

func TestScheduleFromHandler(t *testing.T) {
	s := New()
	var seq []float64
	mustSchedule(t, s, 1, func(now float64) {
		seq = append(seq, now)
		if _, err := s.ScheduleAfter(2, func(now float64) { seq = append(seq, now) }); err != nil {
			t.Errorf("nested schedule: %v", err)
		}
	})
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 || seq[0] != 1 || seq[1] != 3 {
		t.Fatalf("seq = %v, want [1 3]", seq)
	}
}

func TestScheduleAtCurrentTimeFromHandler(t *testing.T) {
	s := New()
	var order []string
	mustSchedule(t, s, 2, func(now float64) {
		order = append(order, "a")
		if _, err := s.ScheduleAt(now, func(float64) { order = append(order, "b") }); err != nil {
			t.Errorf("same-time schedule: %v", err)
		}
	})
	mustSchedule(t, s, 2, func(float64) { order = append(order, "c") })
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	// "c" was scheduled before "b", so ties run a, c, b.
	if len(order) != 3 || order[0] != "a" || order[1] != "c" || order[2] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	s := New()
	mustSchedule(t, s, 5, func(float64) {})
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ScheduleAt(3, func(float64) {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("err = %v, want ErrPastEvent", err)
	}
	if _, err := s.ScheduleAfter(-1, func(float64) {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("err = %v, want ErrPastEvent", err)
	}
}

func TestNilHandlerRejected(t *testing.T) {
	s := New()
	if _, err := s.ScheduleAt(1, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	id := mustSchedule(t, s, 5, func(float64) { ran = true })
	if !s.Cancel(id) {
		t.Fatal("first cancel returned false")
	}
	if s.Cancel(id) {
		t.Fatal("second cancel returned true")
	}
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("canceled event ran")
	}
}

func TestCancelZeroValue(t *testing.T) {
	s := New()
	if s.Cancel(EventID{}) {
		t.Fatal("zero EventID cancel returned true")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 5; i++ {
		at := float64(i)
		mustSchedule(t, s, at, func(float64) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	end, err := s.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if end != 3 {
		t.Fatalf("end = %v, want 3 (time of the stopping event)", end)
	}
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		mustSchedule(t, s, float64(i), func(float64) {})
	}
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.Processed() != 7 {
		t.Fatalf("processed = %d, want 7", s.Processed())
	}
}

// Property: for any batch of event times, execution order is the sorted
// order of the times.
func TestExecutionOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		times := make([]float64, len(raw))
		var got []float64
		for i, r := range raw {
			times[i] = float64(r)
			at := times[i]
			if _, err := s.ScheduleAt(at, func(now float64) { got = append(got, now) }); err != nil {
				return false
			}
		}
		if _, err := s.Run(70000); err != nil {
			return false
		}
		sort.Float64s(times)
		if len(got) != len(times) {
			return false
		}
		for i := range got {
			if got[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset leaves exactly the others to run.
func TestCancelSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		s := New()
		const n = 40
		ran := make([]bool, n)
		ids := make([]EventID, n)
		for i := 0; i < n; i++ {
			i := i
			var err error
			ids[i], err = s.ScheduleAt(rng.Float64()*100, func(float64) { ran[i] = true })
			if err != nil {
				t.Fatal(err)
			}
		}
		canceled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				canceled[i] = s.Cancel(ids[i])
				if !canceled[i] {
					t.Fatal("cancel of pending event failed")
				}
			}
		}
		if _, err := s.Run(1000); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if ran[i] == canceled[i] {
				t.Fatalf("trial %d event %d: ran=%v canceled=%v", trial, i, ran[i], canceled[i])
			}
		}
	}
}

func TestReentrantRunRejected(t *testing.T) {
	s := New()
	var nested error
	mustSchedule(t, s, 1, func(float64) {
		_, nested = s.Run(10)
	})
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if nested == nil {
		t.Fatal("re-entrant Run succeeded")
	}
}

func TestScheduledAndProcessedCounters(t *testing.T) {
	s := New()
	var ids []EventID
	for i := 0; i < 5; i++ {
		id := mustSchedule(t, s, float64(i+1), func(float64) {})
		ids = append(ids, id)
	}
	if s.Scheduled() != 5 {
		t.Fatalf("scheduled = %d, want 5", s.Scheduled())
	}
	if !s.Cancel(ids[4]) {
		t.Fatal("cancel failed")
	}
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.Processed() != 4 {
		t.Fatalf("processed = %d, want 4", s.Processed())
	}
	if s.Scheduled() != 5 {
		t.Fatalf("scheduled after run = %d, want 5", s.Scheduled())
	}
}
