package eventsim

import "testing"

// The pooling regression suite: popped and canceled events must release
// their handler closures immediately (not when the pool entry is next
// reused), recycled structs must be reused, and stale EventIDs must not
// cancel a recycled event's next life.

// noFreeHandlers fails the test if any pooled event still references a
// handler closure — the leak the pool explicitly guards against.
func noFreeHandlers(t *testing.T, s *Simulator) {
	t.Helper()
	for i, ev := range s.free {
		if ev.handler != nil {
			t.Fatalf("free[%d] still holds a handler", i)
		}
	}
}

func TestPoppedEventReleasesHandler(t *testing.T) {
	s := New()
	mustSchedule(t, s, 1, func(float64) {})
	mustSchedule(t, s, 2, func(float64) {})
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	noFreeHandlers(t, s)
}

func TestCanceledEventReleasesHandler(t *testing.T) {
	s := New()
	id := mustSchedule(t, s, 1, func(float64) {})
	if !s.Cancel(id) {
		t.Fatal("Cancel returned false for a pending event")
	}
	noFreeHandlers(t, s)
}

func TestRecycledEventIsReused(t *testing.T) {
	s := New()
	id := mustSchedule(t, s, 1, func(float64) {})
	s.Cancel(id)
	id2 := mustSchedule(t, s, 2, func(float64) {})
	if id.ev != id2.ev {
		t.Fatal("recycled event struct was not reused")
	}
}

func TestStaleIDCannotCancelRecycledEvent(t *testing.T) {
	s := New()
	stale := mustSchedule(t, s, 1, func(float64) {})
	s.Cancel(stale)
	// The struct is recycled into a new scheduling; the old ID must not
	// reach it.
	fresh := mustSchedule(t, s, 2, func(float64) {})
	if stale.ev != fresh.ev {
		t.Fatal("test premise: struct not reused")
	}
	if s.Cancel(stale) {
		t.Fatal("stale EventID canceled a recycled event")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (fresh event must survive)", s.Pending())
	}
	if !s.Cancel(fresh) {
		t.Fatal("fresh EventID failed to cancel its own event")
	}
}

func TestStaleIDAfterExecution(t *testing.T) {
	s := New()
	ran := false
	id := mustSchedule(t, s, 1, func(float64) { ran = true })
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event did not run")
	}
	if s.Cancel(id) {
		t.Fatal("Cancel returned true for an already-executed event")
	}
}

func TestHandlerMayScheduleDuringExecution(t *testing.T) {
	// Run recycles the popped struct before invoking the handler, so the
	// handler's own ScheduleAt may reuse it; the chain must still run to
	// completion in order, and the steady-state chain must never need a
	// second slab.
	s := New()
	var order []float64
	var chain func(now float64)
	chain = func(now float64) {
		order = append(order, now)
		if now < 5 {
			if _, err := s.ScheduleAt(now+1, chain); err != nil {
				t.Errorf("reschedule at %v: %v", now+1, err)
			}
		}
	}
	mustSchedule(t, s, 1, chain)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
	// One slab served the whole chain: each event's struct went back to
	// the pool before its successor was scheduled.
	if len(s.free) != eventSlabSize {
		t.Fatalf("free list has %d entries, want one slab (%d)", len(s.free), eventSlabSize)
	}
	noFreeHandlers(t, s)
}
