package eventsim

import (
	"errors"
	"fmt"
	"testing"
)

// record formats one dispatched event so order comparisons catch any
// divergence in time, stream attribution or payload.
func record(label string, now float64, arg int32) string {
	return fmt.Sprintf("%s@%v#%d", label, now, arg)
}

func TestAttachTimelineValidation(t *testing.T) {
	s := New()
	if err := s.AttachTimeline(nil, nil); err != nil {
		t.Fatalf("empty timeline: %v", err)
	}
	if s.Scheduled() != 0 {
		t.Fatalf("empty attach consumed %d seqs", s.Scheduled())
	}
	if err := s.AttachTimeline([]StaticEvent{{Time: 1}}, nil); err == nil {
		t.Fatal("nil dispatch accepted")
	}
	noop := func(int32, float64) {}
	err := s.AttachTimeline([]StaticEvent{{Time: 2}, {Time: 1}}, noop)
	if !errors.Is(err, ErrUnsorted) {
		t.Fatalf("unsorted timeline: err = %v, want ErrUnsorted", err)
	}
	mustSchedule(t, s, 5, func(float64) {})
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	err = s.AttachTimeline([]StaticEvent{{Time: 3}}, noop)
	if !errors.Is(err, ErrPastEvent) {
		t.Fatalf("past timeline: err = %v, want ErrPastEvent", err)
	}
}

func TestPendingCountsStaticRemains(t *testing.T) {
	s := New()
	tl := []StaticEvent{{Time: 1}, {Time: 2}, {Time: 6}, {Time: 7}}
	if err := s.AttachTimeline(tl, func(int32, float64) {}); err != nil {
		t.Fatal(err)
	}
	mustSchedule(t, s, 3, func(float64) {})
	mustSchedule(t, s, 8, func(float64) {})
	if s.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", s.Pending())
	}
	if _, err := s.Run(4); err != nil {
		t.Fatal(err)
	}
	// Events at 1, 2, 3 ran; 6, 7 (static) and 8 (dynamic) remain.
	if s.Pending() != 3 {
		t.Fatalf("pending after partial run = %d, want 3", s.Pending())
	}
	if s.Processed() != 3 {
		t.Fatalf("processed = %d, want 3", s.Processed())
	}
}

func TestResetClearsEverything(t *testing.T) {
	s := New()
	s.SetHeapOnly(true)
	s.SetProcessedHook(func(uint64, int) {})
	mustSchedule(t, s, 1, func(float64) {})
	mustSchedule(t, s, 9, func(float64) {})
	if _, err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Scheduled() != 0 || s.Processed() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d scheduled=%d processed=%d",
			s.Now(), s.Pending(), s.Scheduled(), s.Processed())
	}
	// Reset also cleared heapOnly, so a fresh attach installs a real
	// cursor stream rather than falling back to per-event heap entries.
	var got []string
	if err := s.AttachTimeline([]StaticEvent{{Time: 2, Arg: 7}}, func(arg int32, now float64) {
		got = append(got, record("tl", now, arg))
	}); err != nil {
		t.Fatal(err)
	}
	if s.queue.Len() != 0 {
		t.Fatalf("attach after Reset put %d events on the heap", s.queue.Len())
	}
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "tl@2#7" {
		t.Fatalf("reused simulator dispatched %v", got)
	}
}

func TestHeapOnlyAfterAttachPanics(t *testing.T) {
	s := New()
	if err := s.AttachTimeline([]StaticEvent{{Time: 1}}, func(int32, float64) {}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetHeapOnly after AttachTimeline did not panic")
		}
	}()
	s.SetHeapOnly(true)
}

// buildMixed replays one fuzz-derived schedule of timeline appends,
// timeline attaches and dynamic events against a simulator in either
// two-stream or heap-only mode, and returns the dispatch order.
//
// Byte decoding (per op byte b): kind = b%4, time = float64((b/4)%8).
//   - kind 0/1: append an event at `time` (clamped non-decreasing) to the
//     pending A/B timeline builder;
//   - kind 2: ScheduleAt a dynamic event at `time` (clamped >= now of
//     attach-order program flow, i.e. always >= 0 pre-run); odd times
//     reschedule a follow-up at the same instant when they fire, so
//     in-run dynamic ties against static cursors are exercised too;
//   - kind 3: attach the pending A builder as its own timeline (consuming
//     a seq block mid-stream) and start a new builder.
//
// Any builders left over are attached at the end, then the run happens in
// two legs (horizon 4.0, then 100) to cross the horizon with live
// cursors.
func buildMixed(t *testing.T, data []byte, heapOnly bool) (order []string, pendingAtHorizon int, processed uint64) {
	t.Helper()
	s := New()
	s.SetHeapOnly(heapOnly)
	dispatchFor := func(label string) Dispatch {
		return func(arg int32, now float64) {
			order = append(order, record(label, now, arg))
		}
	}
	var bldA, bldB []StaticEvent
	nTimelines := 0
	attach := func(events []StaticEvent, label string) {
		if len(events) == 0 {
			return
		}
		if err := s.AttachTimeline(events, dispatchFor(label)); err != nil {
			t.Fatalf("attach %s: %v", label, err)
		}
	}
	clampAppend := func(bld []StaticEvent, tm float64, arg int32) []StaticEvent {
		if n := len(bld); n > 0 && tm < bld[n-1].Time {
			tm = bld[n-1].Time
		}
		return append(bld, StaticEvent{Time: tm, Arg: arg})
	}
	if len(data) > 200 {
		data = data[:200]
	}
	for i, b := range data {
		tm := float64((b / 4) % 8)
		arg := int32(i)
		switch b % 4 {
		case 0:
			bldA = clampAppend(bldA, tm, arg)
		case 1:
			bldB = clampAppend(bldB, tm, arg)
		case 2:
			odd := int(tm)%2 == 1
			if _, err := s.ScheduleAt(tm, func(now float64) {
				order = append(order, record("dyn", now, arg))
				if odd {
					if _, err := s.ScheduleAt(now, func(now float64) {
						order = append(order, record("dyn+", now, arg))
					}); err != nil {
						t.Errorf("in-run reschedule: %v", err)
					}
				}
			}); err != nil {
				t.Fatalf("ScheduleAt(%v): %v", tm, err)
			}
		case 3:
			attach(bldA, fmt.Sprintf("tl%d", nTimelines))
			nTimelines++
			bldA = nil
		}
	}
	attach(bldA, fmt.Sprintf("tl%d", nTimelines))
	attach(bldB, "tlB")
	if _, err := s.Run(4); err != nil {
		t.Fatal(err)
	}
	pendingAtHorizon = s.Pending()
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	return order, pendingAtHorizon, s.Processed()
}

// FuzzStaticDynamicTieBreak is the differential oracle for the two-stream
// scheduler: any interleaving of timeline attaches and dynamic events —
// with heavy equal-time collisions by construction (times live in 0..7) —
// must dispatch in exactly the order the single-heap reference mode
// produces, with identical horizon-pending counts and processed totals.
func FuzzStaticDynamicTieBreak(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	// Ties everywhere: appends and dynamics all at t=1 (b/4 == 1).
	f.Add([]byte{4, 5, 6, 4, 5, 6, 7, 4, 6})
	// Multiple mid-stream attaches splitting timeline A.
	f.Add([]byte{0, 8, 3, 16, 24, 3, 2, 10, 18, 1, 9, 17})
	// Odd dynamic times trigger same-instant in-run reschedules.
	f.Add([]byte{6, 14, 22, 30, 5, 13, 21, 29, 3, 6, 14})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, gotPend, gotProc := buildMixed(t, data, false)
		want, wantPend, wantProc := buildMixed(t, data, true)
		if len(got) != len(want) {
			t.Fatalf("dispatched %d events, reference %d\n got: %v\nwant: %v",
				len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("order diverged at %d: %s vs %s\n got: %v\nwant: %v",
					i, got[i], want[i], got, want)
			}
		}
		if gotPend != wantPend {
			t.Fatalf("pending at horizon = %d, reference %d", gotPend, wantPend)
		}
		if gotProc != wantProc {
			t.Fatalf("processed = %d, reference %d", gotProc, wantProc)
		}
	})
}
