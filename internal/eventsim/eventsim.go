// Package eventsim implements the discrete-event simulation engine the
// opportunistic-network simulator runs on: a future-event list ordered by
// simulated time with deterministic tie-breaking, so that two runs with
// the same seed produce byte-identical results.
//
// The future-event list is split into two streams:
//
//   - compiled static timelines ([]StaticEvent): flat, pre-sorted arrays
//     of events known before the run starts (trace contacts, pre-planned
//     query issues, measurement ticks), replayed by cursor with zero heap
//     operations and zero per-event closures;
//   - a binary min-heap holding only truly dynamic events (refresh
//     deliveries, duty timers, epoch rebuilds) scheduled while the
//     simulation runs.
//
// Both streams are merged at dispatch time on the exact (time, seq)
// ordering a single heap would produce: AttachTimeline consumes one
// contiguous block of sequence numbers, so equal-time ties between static
// and dynamic events resolve identically to scheduling every static event
// through ScheduleAt at the attach point.
//
// Simulated time is a float64 number of seconds from the start of the
// scenario. The engine knows nothing about contacts, caches or protocols;
// higher layers schedule closures or attach timelines.
package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Handler is a scheduled action. It runs at its scheduled simulated time
// and may schedule further events.
type Handler func(now float64)

// StaticEvent is one entry of a compiled timeline: an absolute simulated
// time plus an opaque payload handed back to the timeline's dispatch
// function. Timelines are immutable once attached, so one compiled
// timeline can be shared read-only across concurrent simulators.
type StaticEvent struct {
	Time float64
	Arg  int32
}

// Dispatch executes one static event. It receives the event's Arg and the
// current simulated time, and may schedule dynamic events.
type Dispatch func(arg int32, now float64)

// timeline is one attached static stream: a cursor over a pre-sorted
// event array plus the contiguous sequence-number block reserved at
// attach time (seq of events[i] is seqBase+i).
type timeline struct {
	events   []StaticEvent
	dispatch Dispatch
	seqBase  uint64
	cursor   int
}

// event is a single dynamic future-event-list entry. Events are pooled:
// once popped or canceled, the struct is recycled for a later ScheduleAt,
// so a long run allocates O(peak pending) events rather than O(processed).
type event struct {
	time    float64
	seq     uint64 // insertion order; breaks time ties deterministically
	handler Handler
	index   int // heap index, -1 once popped or canceled
	// gen increments each time the struct is recycled, so an EventID held
	// across the event's execution cannot cancel the struct's next life.
	gen uint64
}

// EventID identifies a scheduled event so it can be canceled. It is valid
// only for the scheduling it came from: once the event runs or is
// canceled, the ID goes stale (Cancel returns false) even if the
// simulator reuses the underlying storage.
type EventID struct {
	ev  *event
	gen uint64
}

// eventQueue is a min-heap over (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("eventsim: pushed non-event")
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator owns simulated time and the future event list. The zero value
// is not usable; create with New.
type Simulator struct {
	now     float64
	queue   eventQueue
	streams []timeline
	nextSeq uint64
	running bool
	stopped bool
	// heapOnly forces AttachTimeline to fall back to per-event ScheduleAt,
	// turning the simulator into the single-heap reference implementation
	// the differential determinism tests compare against.
	heapOnly bool
	// free holds recycled event structs for reuse by ScheduleAt.
	free []*event
	// processed counts events executed, for diagnostics and scalability
	// experiments.
	processed uint64
	// onProcessed, when set, observes (processed count, pending count)
	// after each executed event. Kept nil in normal runs so the hot loop
	// pays one predictable branch.
	onProcessed func(processed uint64, pending int)
}

// SetProcessedHook installs f to be called after every executed event with
// the cumulative processed count and the current pending count (dynamic
// heap plus remaining static-timeline events). Pass nil to remove.
// Observability layers use this to sample event-queue depth.
func (s *Simulator) SetProcessedHook(f func(processed uint64, pending int)) {
	s.onProcessed = f
}

// New returns a simulator positioned at time zero with an empty event
// list.
func New() *Simulator {
	return &Simulator{}
}

// SetHeapOnly switches the simulator into single-heap reference mode:
// AttachTimeline schedules every static event through ScheduleAt instead
// of installing a cursor stream. Dispatch order is identical by
// construction; the mode exists so differential tests can assert that.
// Must be called before any timeline is attached.
func (s *Simulator) SetHeapOnly(v bool) {
	if len(s.streams) > 0 {
		panic("eventsim: SetHeapOnly after AttachTimeline")
	}
	s.heapOnly = v
}

// Now returns the current simulated time. During an event handler this is
// the handler's scheduled time.
func (s *Simulator) Now() float64 { return s.now }

// Processed reports how many events have been executed so far. Engines
// surface this through metrics.Result (and sweep-level RunStats) as the
// per-run simulated-event count.
func (s *Simulator) Processed() uint64 { return s.processed }

// Scheduled reports how many events have ever been scheduled (executed,
// still pending, or canceled), counting every static-timeline entry at
// its attach point. Together with Processed it bounds how much scheduled
// work a run abandoned at the horizon.
func (s *Simulator) Scheduled() uint64 { return s.nextSeq }

// Pending reports how many events are currently scheduled: the dynamic
// heap plus all static-timeline events the cursors have not yet replayed.
func (s *Simulator) Pending() int {
	n := s.queue.Len()
	for i := range s.streams {
		n += len(s.streams[i].events) - s.streams[i].cursor
	}
	return n
}

// ErrPastEvent is returned when an event is scheduled before the current
// simulated time.
var ErrPastEvent = errors.New("eventsim: event scheduled in the past")

// ErrUnsorted is returned when a timeline's events are not sorted by
// non-decreasing time.
var ErrUnsorted = errors.New("eventsim: timeline not sorted by time")

// AttachTimeline installs a compiled static timeline. Events must be
// sorted by non-decreasing Time, with the first event no earlier than the
// current simulated time. The attach consumes one contiguous block of
// len(events) sequence numbers, so dispatch order — including equal-time
// ties against dynamic events and other timelines — is exactly what
// scheduling each event through ScheduleAt here would produce.
//
// The events slice is retained and read during Run; it must not be
// mutated afterwards. Sharing one slice across simulators is safe.
func (s *Simulator) AttachTimeline(events []StaticEvent, dispatch Dispatch) error {
	if len(events) == 0 {
		return nil
	}
	if dispatch == nil {
		return errors.New("eventsim: nil timeline dispatch")
	}
	if events[0].Time < s.now {
		return fmt.Errorf("%w: t=%v now=%v", ErrPastEvent, events[0].Time, s.now)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			return fmt.Errorf("%w: events[%d]=%v after events[%d]=%v",
				ErrUnsorted, i-1, events[i-1].Time, i, events[i].Time)
		}
	}
	if s.heapOnly {
		// Reference mode: feed the heap one event at a time. Events fire
		// in (time, seq) = slice order, so a single cursor closure
		// suffices and Arg delivery matches the streamed path.
		cursor := 0
		h := func(now float64) {
			arg := events[cursor].Arg
			cursor++
			dispatch(arg, now)
		}
		for i := range events {
			if _, err := s.ScheduleAt(events[i].Time, h); err != nil {
				return err
			}
		}
		return nil
	}
	s.streams = append(s.streams, timeline{
		events:   events,
		dispatch: dispatch,
		seqBase:  s.nextSeq,
	})
	s.nextSeq += uint64(len(events))
	return nil
}

// eventSlabSize is how many event structs one pool refill allocates.
// Bulk-scheduled workloads then cost one allocation per slab instead of
// one per event.
const eventSlabSize = 64

// alloc returns an event struct ready for scheduling, recycled when
// possible and slab-allocated otherwise.
func (s *Simulator) alloc(t float64, h Handler) *event {
	if len(s.free) == 0 {
		slab := make([]event, eventSlabSize)
		for i := range slab {
			s.free = append(s.free, &slab[i])
		}
	}
	n := len(s.free)
	ev := s.free[n-1]
	s.free[n-1] = nil
	s.free = s.free[:n-1]
	ev.time = t
	ev.handler = h
	return ev
}

// recycle retires an event struct that left the queue. The handler
// reference is dropped immediately — a popped or canceled event must not
// pin its closure (and everything the closure captures) until the struct
// happens to be reused.
func (s *Simulator) recycle(ev *event) {
	ev.handler = nil
	ev.gen++
	s.free = append(s.free, ev)
}

// ScheduleAt schedules h to run at absolute simulated time t. Events at
// equal times run in scheduling order. Scheduling at the current time is
// allowed (the event runs after the current handler returns).
func (s *Simulator) ScheduleAt(t float64, h Handler) (EventID, error) {
	if t < s.now {
		return EventID{}, fmt.Errorf("%w: t=%v now=%v", ErrPastEvent, t, s.now)
	}
	if h == nil {
		return EventID{}, errors.New("eventsim: nil handler")
	}
	ev := s.alloc(t, h)
	ev.seq = s.nextSeq
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return EventID{ev: ev, gen: ev.gen}, nil
}

// ScheduleAfter schedules h to run delay seconds from now.
func (s *Simulator) ScheduleAfter(delay float64, h Handler) (EventID, error) {
	if delay < 0 {
		return EventID{}, fmt.Errorf("%w: negative delay %v", ErrPastEvent, delay)
	}
	return s.ScheduleAt(s.now+delay, h)
}

// Cancel removes a scheduled dynamic event. Canceling an already-executed
// or already-canceled event is a no-op and returns false. Static-timeline
// events cannot be canceled.
func (s *Simulator) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.gen != id.gen || id.ev.index < 0 {
		return false
	}
	heap.Remove(&s.queue, id.ev.index)
	id.ev.index = -1
	s.recycle(id.ev)
	return true
}

// Stop makes Run return after the current handler completes. It is meant
// to be called from inside a handler.
func (s *Simulator) Stop() { s.stopped = true }

// Reset rewinds the simulator to time zero with an empty event list so a
// worker can reuse it for the next run: pending dynamic events are
// recycled into the slab pool (keeping event storage and heap capacity
// warm), attached timelines are detached, and the seq/processed counters
// restart. The processed hook is cleared. Reset must not be called from
// inside a running handler.
func (s *Simulator) Reset() {
	if s.running {
		panic("eventsim: Reset during Run")
	}
	for _, ev := range s.queue {
		ev.index = -1
		s.recycle(ev)
	}
	s.queue = s.queue[:0]
	for i := range s.streams {
		s.streams[i] = timeline{}
	}
	s.streams = s.streams[:0]
	s.now = 0
	s.nextSeq = 0
	s.processed = 0
	s.stopped = false
	s.heapOnly = false
	s.onProcessed = nil
}

// Run executes events in time order until the event list is empty, an
// event beyond `until` is reached (that event stays queued), or Stop is
// called. It returns the final simulated time, which is `until` when the
// horizon was reached.
//
// Each iteration compares the earliest static-cursor head against the
// heap top on (time, seq); the contiguous seq blocks reserved at attach
// time make that comparison reproduce single-heap order exactly.
func (s *Simulator) Run(until float64) (float64, error) {
	if s.running {
		return s.now, errors.New("eventsim: Run called re-entrantly")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	for !s.stopped {
		// Earliest static head across attached timelines. Scenario runs
		// attach at most a handful of streams, so a linear scan beats any
		// index structure here.
		var st *timeline
		var stTime float64
		var stSeq uint64
		for i := range s.streams {
			t := &s.streams[i]
			if t.cursor >= len(t.events) {
				continue
			}
			ht := t.events[t.cursor].Time
			hs := t.seqBase + uint64(t.cursor)
			if st == nil || ht < stTime || (ht == stTime && hs < stSeq) {
				st, stTime, stSeq = t, ht, hs
			}
		}
		var next *event
		if len(s.queue) > 0 {
			next = s.queue[0]
		}
		if st == nil && next == nil {
			break
		}
		if st != nil && (next == nil || stTime < next.time || (stTime == next.time && stSeq < next.seq)) {
			if stTime > until {
				s.now = until
				return s.now, nil
			}
			arg := st.events[st.cursor].Arg
			st.cursor++
			s.now = stTime
			s.processed++
			st.dispatch(arg, s.now)
			if s.onProcessed != nil {
				s.onProcessed(s.processed, s.Pending())
			}
			continue
		}
		if next.time > until {
			s.now = until
			return s.now, nil
		}
		popped, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			return s.now, errors.New("eventsim: corrupt event queue")
		}
		s.now = popped.time
		s.processed++
		h := popped.handler
		// Recycle before running: the struct no longer references the
		// handler while the handler executes, and the handler is free to
		// schedule new events (which may reuse this very struct).
		s.recycle(popped)
		h(s.now)
		if s.onProcessed != nil {
			s.onProcessed(s.processed, s.Pending())
		}
	}
	if s.now < until && !s.stopped {
		s.now = until
	}
	return s.now, nil
}
