// Package eventsim implements the discrete-event simulation engine the
// opportunistic-network simulator runs on: a future-event list ordered by
// simulated time with deterministic tie-breaking, so that two runs with
// the same seed produce byte-identical results.
//
// Simulated time is a float64 number of seconds from the start of the
// scenario. The engine knows nothing about contacts, caches or protocols;
// higher layers schedule closures.
package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Handler is a scheduled action. It runs at its scheduled simulated time
// and may schedule further events.
type Handler func(now float64)

// event is a single future-event-list entry. Events are pooled: once
// popped or canceled, the struct is recycled for a later ScheduleAt, so a
// long run allocates O(peak pending) events rather than O(processed).
type event struct {
	time    float64
	seq     uint64 // insertion order; breaks time ties deterministically
	handler Handler
	index   int // heap index, -1 once popped or canceled
	// gen increments each time the struct is recycled, so an EventID held
	// across the event's execution cannot cancel the struct's next life.
	gen uint64
}

// EventID identifies a scheduled event so it can be canceled. It is valid
// only for the scheduling it came from: once the event runs or is
// canceled, the ID goes stale (Cancel returns false) even if the
// simulator reuses the underlying storage.
type EventID struct {
	ev  *event
	gen uint64
}

// eventQueue is a min-heap over (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("eventsim: pushed non-event")
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator owns simulated time and the future event list. The zero value
// is not usable; create with New.
type Simulator struct {
	now     float64
	queue   eventQueue
	nextSeq uint64
	running bool
	stopped bool
	// free holds recycled event structs for reuse by ScheduleAt.
	free []*event
	// processed counts events executed, for diagnostics and scalability
	// experiments.
	processed uint64
	// onProcessed, when set, observes (processed count, pending count)
	// after each executed event. Kept nil in normal runs so the hot loop
	// pays one predictable branch.
	onProcessed func(processed uint64, pending int)
}

// SetProcessedHook installs f to be called after every executed event with
// the cumulative processed count and the current queue depth. Pass nil to
// remove. Observability layers use this to sample event-queue depth.
func (s *Simulator) SetProcessedHook(f func(processed uint64, pending int)) {
	s.onProcessed = f
}

// New returns a simulator positioned at time zero with an empty event
// list.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time. During an event handler this is
// the handler's scheduled time.
func (s *Simulator) Now() float64 { return s.now }

// Processed reports how many events have been executed so far. Engines
// surface this through metrics.Result (and sweep-level RunStats) as the
// per-run simulated-event count.
func (s *Simulator) Processed() uint64 { return s.processed }

// Scheduled reports how many events have ever been scheduled (executed,
// still pending, or canceled). Together with Processed it bounds how much
// scheduled work a run abandoned at the horizon.
func (s *Simulator) Scheduled() uint64 { return s.nextSeq }

// Pending reports how many events are currently scheduled.
func (s *Simulator) Pending() int { return s.queue.Len() }

// ErrPastEvent is returned when an event is scheduled before the current
// simulated time.
var ErrPastEvent = errors.New("eventsim: event scheduled in the past")

// eventSlabSize is how many event structs one pool refill allocates.
// Bulk-scheduled workloads (trace replay enqueues every contact upfront)
// then cost one allocation per slab instead of one per event.
const eventSlabSize = 64

// alloc returns an event struct ready for scheduling, recycled when
// possible and slab-allocated otherwise.
func (s *Simulator) alloc(t float64, h Handler) *event {
	if len(s.free) == 0 {
		slab := make([]event, eventSlabSize)
		for i := range slab {
			s.free = append(s.free, &slab[i])
		}
	}
	n := len(s.free)
	ev := s.free[n-1]
	s.free[n-1] = nil
	s.free = s.free[:n-1]
	ev.time = t
	ev.handler = h
	return ev
}

// recycle retires an event struct that left the queue. The handler
// reference is dropped immediately — a popped or canceled event must not
// pin its closure (and everything the closure captures) until the struct
// happens to be reused.
func (s *Simulator) recycle(ev *event) {
	ev.handler = nil
	ev.gen++
	s.free = append(s.free, ev)
}

// ScheduleAt schedules h to run at absolute simulated time t. Events at
// equal times run in scheduling order. Scheduling at the current time is
// allowed (the event runs after the current handler returns).
func (s *Simulator) ScheduleAt(t float64, h Handler) (EventID, error) {
	if t < s.now {
		return EventID{}, fmt.Errorf("%w: t=%v now=%v", ErrPastEvent, t, s.now)
	}
	if h == nil {
		return EventID{}, errors.New("eventsim: nil handler")
	}
	ev := s.alloc(t, h)
	ev.seq = s.nextSeq
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return EventID{ev: ev, gen: ev.gen}, nil
}

// ScheduleAfter schedules h to run delay seconds from now.
func (s *Simulator) ScheduleAfter(delay float64, h Handler) (EventID, error) {
	if delay < 0 {
		return EventID{}, fmt.Errorf("%w: negative delay %v", ErrPastEvent, delay)
	}
	return s.ScheduleAt(s.now+delay, h)
}

// Cancel removes a scheduled event. Canceling an already-executed or
// already-canceled event is a no-op and returns false.
func (s *Simulator) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.gen != id.gen || id.ev.index < 0 {
		return false
	}
	heap.Remove(&s.queue, id.ev.index)
	id.ev.index = -1
	s.recycle(id.ev)
	return true
}

// Stop makes Run return after the current handler completes. It is meant
// to be called from inside a handler.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in time order until the event list is empty, an
// event beyond `until` is reached (that event stays queued), or Stop is
// called. It returns the final simulated time, which is `until` when the
// horizon was reached.
func (s *Simulator) Run(until float64) (float64, error) {
	if s.running {
		return s.now, errors.New("eventsim: Run called re-entrantly")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	for s.queue.Len() > 0 && !s.stopped {
		next := s.queue[0]
		if next.time > until {
			s.now = until
			return s.now, nil
		}
		popped, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			return s.now, errors.New("eventsim: corrupt event queue")
		}
		s.now = popped.time
		s.processed++
		h := popped.handler
		// Recycle before running: the struct no longer references the
		// handler while the handler executes, and the handler is free to
		// schedule new events (which may reuse this very struct).
		s.recycle(popped)
		h(s.now)
		if s.onProcessed != nil {
			s.onProcessed(s.processed, s.queue.Len())
		}
	}
	if s.now < until && !s.stopped {
		s.now = until
	}
	return s.now, nil
}
