// Package network is the opportunistic network layer: it replays a
// contact trace through the discrete-event engine, dispatches each contact
// to the registered protocol handlers, enforces the per-contact transfer
// budget implied by contact duration, and accounts for every transmission
// — the overhead metric of the evaluation.
//
// The layer is deliberately thin: protocols own their node state (caches,
// relay buffers, pending-refresh sets); the network owns only connectivity
// and cost.
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"freshcache/internal/eventsim"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// Handler is a protocol attached to the network. OnContact is invoked once
// per contact, at the contact's start time; both directions of exchange
// happen inside the single callback via Contact.Send. The *Contact is
// valid only for the duration of the callback — the network reuses the
// struct for the next contact, so handlers must not retain the pointer.
type Handler interface {
	OnContact(c *Contact)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(c *Contact)

// OnContact implements Handler.
func (f HandlerFunc) OnContact(c *Contact) { f(c) }

var _ Handler = HandlerFunc(nil)

// Contact is the live view of one pairwise contact passed to handlers.
type Contact struct {
	A, B     trace.NodeID
	Time     float64
	Duration float64

	net       *Net
	remaining int // message budget left in this contact; -1 = unlimited
}

// Send transfers one protocol message from one endpoint of the contact to
// the other, consuming contact budget and recording overhead under the
// given kind ("refresh", "relay", "query", ...). It reports false — and
// records nothing — when the contact's transfer budget is exhausted, which
// models short contacts truncating exchanges.
func (c *Contact) Send(from, to trace.NodeID, kind string) bool {
	if (from != c.A || to != c.B) && (from != c.B || to != c.A) {
		panic(fmt.Sprintf("network: Send(%d→%d) outside contact (%d,%d)", from, to, c.A, c.B))
	}
	if c.remaining == 0 {
		c.net.truncated++
		return false
	}
	if c.remaining > 0 {
		c.remaining--
	}
	if c.net.lossRNG != nil && c.net.lossRNG.Float64() < c.net.cfg.DropProb {
		// The transmission happened (budget spent) but was lost in the
		// air; the receiver gets nothing.
		c.net.lost++
		return false
	}
	c.net.transmissions[kind]++
	c.net.totalTransmissions++
	if kind != "data" && kind != "query" {
		// Query/data traffic is access-path cost, not refresh load.
		c.net.sentBy[from]++
	}
	return true
}

// Budget reports the remaining message budget (-1 means unlimited).
func (c *Contact) Budget() int { return c.remaining }

// Config configures a Net.
type Config struct {
	// MsgTime is the transfer time of one message in seconds; a contact of
	// duration d carries at most floor(d/MsgTime) messages (minimum 1).
	// Zero disables the budget (infinite bandwidth).
	MsgTime float64
	// DropProb makes each transmission independently fail with this
	// probability (radio loss, collisions). A dropped send consumes
	// contact budget but delivers nothing.
	DropProb float64
	// Churn turns nodes off and on; contacts involving a down node are
	// suppressed.
	Churn ChurnConfig
	// Seed drives the failure-injection randomness (loss, churn
	// schedules). Ignored when neither is enabled.
	Seed int64
}

// Net replays a trace and dispatches contacts.
type Net struct {
	sim      *eventsim.Simulator
	tr       *trace.Trace
	cfg      Config
	handlers []Handler

	transmissions      map[string]int
	totalTransmissions int
	truncated          int
	lost               int
	contactsDispatched int
	contactsSuppressed int
	sentBy             map[trace.NodeID]int // refresh/relay sends per node

	lossRNG *rand.Rand    // non-nil when DropProb > 0
	avail   *availability // non-nil when churn is enabled

	// live is the scratch Contact reused across dispatches. Handlers run
	// synchronously and must not retain the pointer (see Handler), so one
	// struct per Net replaces the per-contact allocation that used to
	// dominate trace replay.
	live Contact
}

// New creates a network over the given trace, driven by sim. The trace
// must validate.
func New(sim *eventsim.Simulator, tr *trace.Trace, cfg Config) (*Net, error) {
	if sim == nil {
		return nil, errors.New("network: nil simulator")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	if cfg.MsgTime < 0 {
		return nil, fmt.Errorf("network: negative message time %v", cfg.MsgTime)
	}
	if cfg.DropProb < 0 || cfg.DropProb >= 1 {
		if cfg.DropProb != 0 {
			return nil, fmt.Errorf("network: drop probability %v outside [0,1)", cfg.DropProb)
		}
	}
	if err := cfg.Churn.validate(); err != nil {
		return nil, err
	}
	n := &Net{
		sim:           sim,
		tr:            tr,
		cfg:           cfg,
		transmissions: make(map[string]int),
		sentBy:        make(map[trace.NodeID]int),
	}
	if cfg.DropProb > 0 {
		n.lossRNG = stats.Derive(cfg.Seed, "network/loss")
	}
	if cfg.Churn.Enabled() {
		n.avail = buildAvailability(cfg.Churn, tr.N, tr.Duration, cfg.Seed)
	}
	return n, nil
}

// Attach registers a protocol handler. Handlers run in attach order on
// every contact.
func (n *Net) Attach(h Handler) {
	if h == nil {
		panic("network: nil handler")
	}
	n.handlers = append(n.handlers, h)
}

// CompileTimeline compiles a trace's contacts into the static timeline
// the two-stream scheduler replays: one entry per contact in start order,
// with Arg = contact index. The result is immutable and may be shared
// read-only across any number of Nets replaying the same trace (the
// sweep's TraceCache compiles once per trace and shares it across
// replicates and cells).
func CompileTimeline(tr *trace.Trace) []eventsim.StaticEvent {
	tl := make([]eventsim.StaticEvent, len(tr.Contacts))
	for i := range tr.Contacts {
		tl[i] = eventsim.StaticEvent{Time: tr.Contacts[i].Start, Arg: int32(i)}
	}
	return tl
}

// Schedule enqueues every contact of the trace into the simulator. Call
// once, before running the simulator. The timeline is compiled on the
// fly; callers replaying the same trace many times should compile once
// with CompileTimeline and use ScheduleCompiled.
func (n *Net) Schedule() error {
	return n.ScheduleCompiled(nil)
}

// ScheduleCompiled attaches a pre-compiled contact timeline (from
// CompileTimeline on this Net's trace); nil compiles one on the fly.
// Contacts are sorted by start time (trace.Validate), so the timeline is
// sorted and replays by cursor — no heap operations and no per-contact
// closures.
func (n *Net) ScheduleCompiled(tl []eventsim.StaticEvent) error {
	if tl == nil {
		tl = CompileTimeline(n.tr)
	}
	if len(tl) != len(n.tr.Contacts) {
		return fmt.Errorf("network: timeline has %d events, trace has %d contacts", len(tl), len(n.tr.Contacts))
	}
	if err := n.sim.AttachTimeline(tl, n.dispatchStatic); err != nil {
		return fmt.Errorf("network: schedule contacts: %w", err)
	}
	return nil
}

// dispatchStatic is the timeline dispatch target: Arg is the contact
// index assigned by CompileTimeline.
func (n *Net) dispatchStatic(arg int32, now float64) {
	n.dispatch(n.tr.Contacts[arg], now)
}

func (n *Net) dispatch(c trace.Contact, now float64) {
	if n.avail != nil && (!n.avail.isUp(c.A, now) || !n.avail.isUp(c.B, now)) {
		n.contactsSuppressed++
		return
	}
	budget := -1
	if n.cfg.MsgTime > 0 {
		budget = int(c.Duration() / n.cfg.MsgTime)
		if budget < 1 {
			budget = 1
		}
	}
	n.live = Contact{
		A:        c.A,
		B:        c.B,
		Time:     now,
		Duration: c.Duration(),
		net:      n,

		remaining: budget,
	}
	n.contactsDispatched++
	for _, h := range n.handlers {
		h.OnContact(&n.live)
	}
}

// ManualContact creates a live contact outside trace replay, with the
// same budget rules and accounting as dispatched contacts. It does not
// invoke handlers. Intended for custom drivers and protocol unit tests.
func (n *Net) ManualContact(a, b trace.NodeID, at, duration float64) *Contact {
	budget := -1
	if n.cfg.MsgTime > 0 {
		budget = int(duration / n.cfg.MsgTime)
		if budget < 1 {
			budget = 1
		}
	}
	return &Contact{A: a, B: b, Time: at, Duration: duration, net: n, remaining: budget}
}

// Transmissions returns the transmission count recorded under kind.
func (n *Net) Transmissions(kind string) int { return n.transmissions[kind] }

// SentBy reports how many refresh-related transmissions ("refresh" and
// "relay" kinds; access-path "data"/"query" traffic excluded) the node
// originated — the per-node refreshing load, used to show how the
// hierarchy distributes work away from the data sources.
func (n *Net) SentBy(node trace.NodeID) int { return n.sentBy[node] }

// TotalTransmissions returns the total transmissions across all kinds.
func (n *Net) TotalTransmissions() int { return n.totalTransmissions }

// Truncated reports how many sends were refused because a contact's
// budget was exhausted.
func (n *Net) Truncated() int { return n.truncated }

// Lost reports how many transmissions were dropped by message loss.
func (n *Net) Lost() int { return n.lost }

// ContactsSuppressed reports how many contacts were suppressed because an
// endpoint was down (churn).
func (n *Net) ContactsSuppressed() int { return n.contactsSuppressed }

// NodeUp reports whether a node is up at time t (always true without
// churn).
func (n *Net) NodeUp(node trace.NodeID, t float64) bool {
	if n.avail == nil {
		return true
	}
	return n.avail.isUp(node, t)
}

// ContactsDispatched reports how many contacts have fired so far.
func (n *Net) ContactsDispatched() int { return n.contactsDispatched }

// TransmissionKinds returns the recorded kinds in sorted order, for
// stable reporting.
func (n *Net) TransmissionKinds() []string {
	kinds := make([]string, 0, len(n.transmissions))
	for k := range n.transmissions {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}
