package network

import (
	"fmt"
	"sort"

	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// ChurnConfig turns nodes off and on over the run: each node alternates
// independent exponential up and down periods (battery depletion, radios
// switched off). A contact fires only when both endpoints are up at its
// start. Zero value = churn disabled.
type ChurnConfig struct {
	MeanUp   float64 // mean up-period in seconds
	MeanDown float64 // mean down-period in seconds
}

// Enabled reports whether churn is configured.
func (c ChurnConfig) Enabled() bool { return c.MeanUp > 0 || c.MeanDown > 0 }

func (c ChurnConfig) validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.MeanUp <= 0 || c.MeanDown <= 0 {
		return fmt.Errorf("network: churn needs positive mean up/down, got %v/%v", c.MeanUp, c.MeanDown)
	}
	return nil
}

// availability holds each node's precomputed on/off toggle times. A node
// starts up at t=0; toggles[i] alternate up→down at even indices and
// down→up at odd ones.
type availability struct {
	toggles [][]float64
}

// buildAvailability precomputes per-node toggle schedules over [0,
// duration) deterministically from the seed.
func buildAvailability(cfg ChurnConfig, n int, duration float64, seed int64) *availability {
	rng := stats.Derive(seed, "network/churn")
	av := &availability{toggles: make([][]float64, n)}
	for i := 0; i < n; i++ {
		// Nodes start up; the first toggle (up→down) comes after an
		// up-period, then periods alternate.
		t := stats.Exp(rng, 1/cfg.MeanUp)
		var ts []float64
		for t < duration {
			ts = append(ts, t)
			if len(ts)%2 == 1 {
				// Odd count: the node just went down; next gap is a
				// down-period.
				t += stats.Exp(rng, 1/cfg.MeanDown)
			} else {
				t += stats.Exp(rng, 1/cfg.MeanUp)
			}
		}
		av.toggles[i] = ts
	}
	return av
}

// isUp reports whether the node is up at time t: nodes start up, and each
// toggle flips the state.
func (a *availability) isUp(node trace.NodeID, t float64) bool {
	ts := a.toggles[node]
	// Number of toggles strictly before t.
	k := sort.SearchFloat64s(ts, t)
	return k%2 == 0
}
