package network

import (
	"math"
	"testing"

	"freshcache/internal/eventsim"
	"freshcache/internal/trace"
)

func TestChurnConfigValidate(t *testing.T) {
	if (ChurnConfig{}).Enabled() {
		t.Fatal("zero churn enabled")
	}
	if err := (ChurnConfig{MeanUp: 100, MeanDown: 10}).validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ChurnConfig{MeanUp: 100}).validate(); err == nil {
		t.Fatal("half-configured churn accepted")
	}
	if _, err := New(eventsim.New(), testTrace(), Config{Churn: ChurnConfig{MeanUp: -1, MeanDown: 5}}); err == nil {
		t.Fatal("negative churn accepted")
	}
}

func TestAvailabilityAlternates(t *testing.T) {
	av := buildAvailability(ChurnConfig{MeanUp: 100, MeanDown: 50}, 3, 10000, 1)
	for node := trace.NodeID(0); node < 3; node++ {
		ts := av.toggles[node]
		if len(ts) == 0 {
			t.Fatalf("node %d never toggles over 10000s with mean period 150s", node)
		}
		if !av.isUp(node, 0) {
			t.Fatalf("node %d not up at t=0", node)
		}
		// Just after toggle k the state is down for even k, up for odd.
		for k, tt := range ts {
			up := av.isUp(node, tt+1e-9)
			if k%2 == 0 && up {
				t.Fatalf("node %d up right after down-toggle %d", node, k)
			}
			if k%2 == 1 && !up {
				t.Fatalf("node %d down right after up-toggle %d", node, k)
			}
		}
	}
}

func TestAvailabilityDutyCycle(t *testing.T) {
	const meanUp, meanDown, horizon = 200.0, 100.0, 500000.0
	av := buildAvailability(ChurnConfig{MeanUp: meanUp, MeanDown: meanDown}, 1, horizon, 7)
	up := 0
	const samples = 50000
	for i := 0; i < samples; i++ {
		if av.isUp(0, horizon*float64(i)/samples) {
			up++
		}
	}
	got := float64(up) / samples
	want := meanUp / (meanUp + meanDown)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("duty cycle = %v, want ~%v", got, want)
	}
}

func TestChurnSuppressesContacts(t *testing.T) {
	// Aggressive churn: nodes mostly down.
	sim := eventsim.New()
	tr := &trace.Trace{Name: "many", N: 2, Duration: 100000}
	for i := 0; i < 1000; i++ {
		at := float64(i) * 100
		tr.Contacts = append(tr.Contacts, trace.Contact{A: 0, B: 1, Start: at, End: at + 10})
	}
	net, err := New(sim, tr, Config{Churn: ChurnConfig{MeanUp: 100, MeanDown: 900}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	net.Attach(HandlerFunc(func(*Contact) { fired++ }))
	if err := net.Schedule(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1e9); err != nil {
		t.Fatal(err)
	}
	if fired+net.ContactsSuppressed() != 1000 {
		t.Fatalf("fired %d + suppressed %d != 1000", fired, net.ContactsSuppressed())
	}
	// ~1% duty cycle squared pairs up: expect only a few percent firing.
	if fired > 150 {
		t.Fatalf("churn barely suppressed: %d/1000 fired", fired)
	}
	if fired == 0 {
		t.Fatal("churn suppressed everything; duty cycle too harsh for test")
	}
}

func TestChurnDeterministic(t *testing.T) {
	a := buildAvailability(ChurnConfig{MeanUp: 50, MeanDown: 50}, 4, 10000, 9)
	b := buildAvailability(ChurnConfig{MeanUp: 50, MeanDown: 50}, 4, 10000, 9)
	for n := range a.toggles {
		if len(a.toggles[n]) != len(b.toggles[n]) {
			t.Fatal("nondeterministic churn schedule")
		}
		for i := range a.toggles[n] {
			if a.toggles[n][i] != b.toggles[n][i] {
				t.Fatal("nondeterministic churn schedule")
			}
		}
	}
}

func TestMessageLoss(t *testing.T) {
	sim := eventsim.New()
	tr := &trace.Trace{Name: "many", N: 2, Duration: 100000}
	for i := 0; i < 2000; i++ {
		at := float64(i) * 50
		tr.Contacts = append(tr.Contacts, trace.Contact{A: 0, B: 1, Start: at, End: at + 10})
	}
	net, err := New(sim, tr, Config{DropProb: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	net.Attach(HandlerFunc(func(c *Contact) {
		if c.Send(c.A, c.B, "refresh") {
			delivered++
		}
	}))
	if err := net.Schedule(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1e9); err != nil {
		t.Fatal(err)
	}
	if delivered+net.Lost() != 2000 {
		t.Fatalf("delivered %d + lost %d != 2000", delivered, net.Lost())
	}
	lossRate := float64(net.Lost()) / 2000
	if math.Abs(lossRate-0.3) > 0.05 {
		t.Fatalf("loss rate = %v, want ~0.3", lossRate)
	}
	// Lost sends must not be counted as transmissions.
	if net.TotalTransmissions() != delivered {
		t.Fatalf("transmissions %d != delivered %d", net.TotalTransmissions(), delivered)
	}
}

func TestLossConsumesBudget(t *testing.T) {
	sim := eventsim.New()
	tr := &trace.Trace{Name: "one", N: 2, Duration: 100,
		Contacts: []trace.Contact{{A: 0, B: 1, Start: 10, End: 20}}}
	// Budget 2 messages; 100% loss would be invalid config, use high prob
	// via repeated attempt instead: DropProb 0.999... keep 0.9 and assert
	// budget accounting only.
	net, err := New(sim, tr, Config{MsgTime: 5, DropProb: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	attempts, successes := 0, 0
	net.Attach(HandlerFunc(func(c *Contact) {
		for c.Budget() > 0 {
			attempts++
			if c.Send(c.A, c.B, "x") {
				successes++
			}
		}
	}))
	if err := net.Schedule(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1e9); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (budget)", attempts)
	}
	if successes+net.Lost() != attempts {
		t.Fatalf("successes %d + lost %d != attempts %d", successes, net.Lost(), attempts)
	}
}

func TestDropProbValidation(t *testing.T) {
	if _, err := New(eventsim.New(), testTrace(), Config{DropProb: -0.1}); err == nil {
		t.Fatal("negative drop prob accepted")
	}
	if _, err := New(eventsim.New(), testTrace(), Config{DropProb: 1}); err == nil {
		t.Fatal("certain loss accepted")
	}
}

func TestNodeUpWithoutChurn(t *testing.T) {
	net, err := New(eventsim.New(), testTrace(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !net.NodeUp(0, 50) {
		t.Fatal("node down without churn")
	}
}
