package network

import (
	"testing"

	"freshcache/internal/eventsim"
	"freshcache/internal/trace"
)

func testTrace() *trace.Trace {
	return &trace.Trace{
		Name: "t", N: 3, Duration: 100,
		Contacts: []trace.Contact{
			{A: 0, B: 1, Start: 10, End: 20},
			{A: 1, B: 2, Start: 30, End: 31},
			{A: 0, B: 2, Start: 40, End: 45},
		},
	}
}

func TestDispatchOrderAndFields(t *testing.T) {
	sim := eventsim.New()
	net, err := New(sim, testTrace(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var seen []Contact
	net.Attach(HandlerFunc(func(c *Contact) { seen = append(seen, *c) }))
	if err := net.Schedule(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("dispatched %d contacts, want 3", len(seen))
	}
	if seen[0].Time != 10 || seen[0].A != 0 || seen[0].B != 1 || seen[0].Duration != 10 {
		t.Fatalf("first contact = %+v", seen[0])
	}
	if seen[1].Time != 30 || seen[2].Time != 40 {
		t.Fatalf("contact order wrong: %v, %v", seen[1].Time, seen[2].Time)
	}
	if net.ContactsDispatched() != 3 {
		t.Fatalf("ContactsDispatched = %d", net.ContactsDispatched())
	}
}

func TestMultipleHandlersRunInOrder(t *testing.T) {
	sim := eventsim.New()
	net, err := New(sim, testTrace(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	net.Attach(HandlerFunc(func(*Contact) { order = append(order, "a") }))
	net.Attach(HandlerFunc(func(*Contact) { order = append(order, "b") }))
	if err := net.Schedule(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("handler order: %v", order)
	}
}

func TestSendAccounting(t *testing.T) {
	sim := eventsim.New()
	net, err := New(sim, testTrace(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	net.Attach(HandlerFunc(func(c *Contact) {
		if !c.Send(c.A, c.B, "refresh") {
			t.Error("unlimited send failed")
		}
		if !c.Send(c.B, c.A, "query") {
			t.Error("reverse send failed")
		}
	}))
	if err := net.Schedule(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := net.Transmissions("refresh"); got != 3 {
		t.Fatalf("refresh transmissions = %d, want 3", got)
	}
	if got := net.Transmissions("query"); got != 3 {
		t.Fatalf("query transmissions = %d, want 3", got)
	}
	if net.TotalTransmissions() != 6 {
		t.Fatalf("total = %d, want 6", net.TotalTransmissions())
	}
	kinds := net.TransmissionKinds()
	if len(kinds) != 2 || kinds[0] != "query" || kinds[1] != "refresh" {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestBudgetTruncatesExchange(t *testing.T) {
	sim := eventsim.New()
	// MsgTime 5s: the 10s contact carries 2 messages, the 1s contact 1,
	// the 5s contact 1.
	net, err := New(sim, testTrace(), Config{MsgTime: 5})
	if err != nil {
		t.Fatal(err)
	}
	sent, refused := 0, 0
	net.Attach(HandlerFunc(func(c *Contact) {
		for i := 0; i < 4; i++ {
			if c.Send(c.A, c.B, "refresh") {
				sent++
			} else {
				refused++
			}
		}
	}))
	if err := net.Schedule(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1000); err != nil {
		t.Fatal(err)
	}
	if sent != 2+1+1 {
		t.Fatalf("sent = %d, want 4", sent)
	}
	if refused != 12-4 {
		t.Fatalf("refused = %d, want 8", refused)
	}
	if net.Truncated() != refused {
		t.Fatalf("Truncated = %d, want %d", net.Truncated(), refused)
	}
	if net.TotalTransmissions() != sent {
		t.Fatalf("total = %d, want %d", net.TotalTransmissions(), sent)
	}
}

func TestBudgetExposed(t *testing.T) {
	sim := eventsim.New()
	net, err := New(sim, testTrace(), Config{MsgTime: 5})
	if err != nil {
		t.Fatal(err)
	}
	var budgets []int
	net.Attach(HandlerFunc(func(c *Contact) { budgets = append(budgets, c.Budget()) }))
	if err := net.Schedule(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1000); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 1}
	for i := range want {
		if budgets[i] != want[i] {
			t.Fatalf("budgets = %v, want %v", budgets, want)
		}
	}
}

func TestSendOutsideContactPanics(t *testing.T) {
	sim := eventsim.New()
	tr := testTrace()
	tr.Contacts = tr.Contacts[:1] // single (0,1) contact
	net, err := New(sim, tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	panicked := false
	net.Attach(HandlerFunc(func(c *Contact) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		c.Send(0, 2, "x") // node 2 is not an endpoint of this contact
	}))
	if err := net.Schedule(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("Send between non-endpoints did not panic")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New(nil, testTrace(), Config{}); err == nil {
		t.Fatal("nil sim accepted")
	}
	bad := testTrace()
	bad.N = 0
	if _, err := New(eventsim.New(), bad, Config{}); err == nil {
		t.Fatal("invalid trace accepted")
	}
	if _, err := New(eventsim.New(), testTrace(), Config{MsgTime: -1}); err == nil {
		t.Fatal("negative MsgTime accepted")
	}
}

func TestAttachNilPanics(t *testing.T) {
	sim := eventsim.New()
	net, err := New(sim, testTrace(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler accepted")
		}
	}()
	net.Attach(nil)
}

func TestHorizonCutsDispatch(t *testing.T) {
	sim := eventsim.New()
	net, err := New(sim, testTrace(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	net.Attach(HandlerFunc(func(*Contact) { count++ }))
	if err := net.Schedule(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(35); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("dispatched %d before t=35, want 2", count)
	}
}
