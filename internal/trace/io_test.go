package trace

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig := validTrace()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.N != orig.N || got.Duration != orig.Duration {
		t.Fatalf("header mismatch: %+v vs %+v", got, orig)
	}
	if len(got.Contacts) != len(orig.Contacts) {
		t.Fatalf("contact count %d vs %d", len(got.Contacts), len(orig.Contacts))
	}
	for i := range got.Contacts {
		if got.Contacts[i] != orig.Contacts[i] {
			t.Fatalf("contact %d: %+v vs %+v", i, got.Contacts[i], orig.Contacts[i])
		}
	}
}

func TestReadInfersHeader(t *testing.T) {
	in := "0 1 5 10\n2 1 20 25\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 3 {
		t.Fatalf("inferred N = %d, want 3", tr.N)
	}
	if tr.Duration != 25 {
		t.Fatalf("inferred duration = %v, want 25", tr.Duration)
	}
	// 2 1 must have been normalized to 1 2.
	if tr.Contacts[1].A != 1 || tr.Contacts[1].B != 2 {
		t.Fatalf("not normalized: %+v", tr.Contacts[1])
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a plain comment\n\n# nodes: 5\n0 1 1 2\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 5 || len(tr.Contacts) != 1 {
		t.Fatalf("got N=%d contacts=%d", tr.N, len(tr.Contacts))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"0 1 1\n",          // too few fields
		"x 1 1 2\n",        // non-numeric node
		"0 y 1 2\n",        // non-numeric node
		"0 1 z 2\n",        // non-numeric time
		"0 1 1 z\n",        // non-numeric time
		"# nodes: bogus\n", // bad header value
		"0 0 1 2\n",        // self contact -> validate fails
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
	if _, err := Read(strings.NewReader("0 1 1\n")); !errors.Is(err, ErrFormat) {
		t.Error("short line not wrapped as ErrFormat")
	}
}

func TestReadWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.contacts")
	if err := WriteFile(path, validTrace()); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 4 || len(tr.Contacts) != 4 {
		t.Fatalf("round trip: %+v", tr)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}
