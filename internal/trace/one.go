package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadONE parses a connectivity trace in the ONE simulator's
// StandardEventsReader format:
//
//	<time> CONN <nodeA> <nodeB> up
//	<time> CONN <nodeA> <nodeB> down
//
// Node identifiers may be plain integers or carry a non-numeric prefix
// ("n12", "p4"); the trailing digits are used. Events other than CONN are
// ignored. Connections still up at the last event time are closed there.
// The result is normalized and validated.
func ReadONE(r io.Reader) (*Trace, error) {
	t := &Trace{Name: "one-import"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	type openKey struct{ a, b NodeID }
	openAt := make(map[openKey]float64)

	var maxNode NodeID
	var lastTime float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: line %d: too few fields", ErrFormat, lineNo)
		}
		ts, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad time %q", ErrFormat, lineNo, fields[0])
		}
		if ts > lastTime {
			lastTime = ts
		}
		if !strings.EqualFold(fields[1], "CONN") {
			continue // other ONE event types (messages, movement) are irrelevant here
		}
		if len(fields) < 5 {
			return nil, fmt.Errorf("%w: line %d: CONN needs 5 fields", ErrFormat, lineNo)
		}
		a, err := parseONENode(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, lineNo, err)
		}
		b, err := parseONENode(fields[3])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, lineNo, err)
		}
		if a == b {
			return nil, fmt.Errorf("%w: line %d: self connection %d", ErrFormat, lineNo, a)
		}
		if a > b {
			a, b = b, a
		}
		if b > maxNode {
			maxNode = b
		}
		key := openKey{a, b}
		switch strings.ToLower(fields[4]) {
		case "up":
			if _, dup := openAt[key]; !dup {
				openAt[key] = ts
			}
		case "down":
			start, ok := openAt[key]
			if !ok {
				continue // down without up: common at trace boundaries, skip
			}
			delete(openAt, key)
			if ts > start {
				t.Contacts = append(t.Contacts, Contact{A: a, B: b, Start: start, End: ts})
			}
		default:
			return nil, fmt.Errorf("%w: line %d: CONN state %q", ErrFormat, lineNo, fields[4])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	// Close dangling connections at the final event time.
	for key, start := range openAt {
		if lastTime > start {
			t.Contacts = append(t.Contacts, Contact{A: key.a, B: key.b, Start: start, End: lastTime})
		}
	}
	t.N = int(maxNode) + 1
	t.Duration = lastTime
	t.Normalize()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseONENode extracts the numeric id from a ONE node name ("12", "n12",
// "p4").
func parseONENode(s string) (NodeID, error) {
	i := 0
	for i < len(s) && (s[i] < '0' || s[i] > '9') {
		i++
	}
	if i == len(s) {
		return 0, fmt.Errorf("node %q has no numeric id", s)
	}
	n, err := strconv.Atoi(s[i:])
	if err != nil {
		return 0, fmt.Errorf("node %q: %v", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("node %q: negative id", s)
	}
	return NodeID(n), nil
}

// ReadAuto sniffs the format (native text vs ONE StandardEvents) and
// parses accordingly. The ONE format is recognized by a "CONN" token in
// the first non-comment, non-blank line.
func ReadAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var sniffed []byte
	for {
		line, err := br.ReadBytes('\n')
		sniffed = append(sniffed, line...)
		trimmed := strings.TrimSpace(string(line))
		if err != nil && trimmed == "" {
			break
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			if err != nil {
				break
			}
			continue
		}
		full := io.MultiReader(strings.NewReader(string(sniffed)), br)
		if fieldsHaveCONN(trimmed) {
			return ReadONE(full)
		}
		return Read(full)
	}
	return Read(strings.NewReader(string(sniffed)))
}

func fieldsHaveCONN(line string) bool {
	fields := strings.Fields(line)
	return len(fields) >= 2 && strings.EqualFold(fields[1], "CONN")
}
