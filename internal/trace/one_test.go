package trace

import (
	"errors"
	"strings"
	"testing"
)

const oneSample = `# ONE StandardEvents export
10.0 CONN 0 1 up
25.0 CONN 0 1 down
30.5 CONN n2 n3 up
40.0 CONN 2 3 down
50.0 CONN 1 2 up
90.0 XTRA 1 2 somethingelse
`

func TestReadONE(t *testing.T) {
	tr, err := ReadONE(strings.NewReader(oneSample))
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 4 {
		t.Fatalf("N = %d, want 4", tr.N)
	}
	if tr.Duration != 90 {
		t.Fatalf("duration = %v, want 90 (last event time)", tr.Duration)
	}
	if len(tr.Contacts) != 3 {
		t.Fatalf("contacts = %d, want 3: %+v", len(tr.Contacts), tr.Contacts)
	}
	if c := tr.Contacts[0]; c.A != 0 || c.B != 1 || c.Start != 10 || c.End != 25 {
		t.Fatalf("contact 0: %+v", c)
	}
	// Prefixed node names resolve to ids.
	if c := tr.Contacts[1]; c.A != 2 || c.B != 3 || c.Start != 30.5 || c.End != 40 {
		t.Fatalf("contact 1: %+v", c)
	}
	// Dangling "up" closed at the last event time.
	if c := tr.Contacts[2]; c.A != 1 || c.B != 2 || c.Start != 50 || c.End != 90 {
		t.Fatalf("contact 2: %+v", c)
	}
}

func TestReadONEDownWithoutUpIgnored(t *testing.T) {
	in := "5 CONN 0 1 down\n10 CONN 0 1 up\n20 CONN 0 1 down\n"
	tr, err := ReadONE(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Contacts) != 1 || tr.Contacts[0].Start != 10 {
		t.Fatalf("contacts: %+v", tr.Contacts)
	}
}

func TestReadONEDuplicateUpKeepsFirst(t *testing.T) {
	in := "10 CONN 0 1 up\n15 CONN 0 1 up\n20 CONN 0 1 down\n"
	tr, err := ReadONE(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Contacts) != 1 || tr.Contacts[0].Start != 10 || tr.Contacts[0].End != 20 {
		t.Fatalf("contacts: %+v", tr.Contacts)
	}
}

func TestReadONERejectsGarbage(t *testing.T) {
	cases := []string{
		"x CONN 0 1 up\n",    // bad time
		"10 CONN 0 1\n",      // missing state
		"10 CONN 0 0 up\n",   // self connection
		"10 CONN abc 1 up\n", // no numeric id
		"10 CONN 0 1 sideways\n",
		"10\n", // too few fields
	}
	for _, in := range cases {
		if _, err := ReadONE(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
	if _, err := ReadONE(strings.NewReader("10 CONN 0 1\n")); !errors.Is(err, ErrFormat) {
		t.Error("missing state not wrapped as ErrFormat")
	}
}

func TestParseONENode(t *testing.T) {
	cases := []struct {
		in   string
		want NodeID
		ok   bool
	}{
		{"12", 12, true}, {"n7", 7, true}, {"pedestrian42", 42, true},
		{"abc", 0, false}, {"", 0, false},
	}
	for _, tc := range cases {
		got, err := parseONENode(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("parseONENode(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseONENode(%q) accepted", tc.in)
		}
	}
}

func TestReadAutoDetectsONE(t *testing.T) {
	tr, err := ReadAuto(strings.NewReader(oneSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Contacts) != 3 {
		t.Fatalf("auto-detected ONE parse gave %d contacts", len(tr.Contacts))
	}
}

func TestReadAutoDetectsNative(t *testing.T) {
	in := "# name: x\n# nodes: 3\n0 1 5 10\n1 2 20 25\n"
	tr, err := ReadAuto(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "x" || tr.N != 3 || len(tr.Contacts) != 2 {
		t.Fatalf("native parse: %+v", tr)
	}
}

func TestReadAutoEmptyInput(t *testing.T) {
	if _, err := ReadAuto(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadAuto(strings.NewReader("# only comments\n")); err == nil {
		t.Fatal("comment-only input accepted")
	}
}
