package trace

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func validTrace() *Trace {
	return &Trace{
		Name:     "t",
		N:        4,
		Duration: 100,
		Contacts: []Contact{
			{A: 0, B: 1, Start: 1, End: 2},
			{A: 0, B: 1, Start: 10, End: 12},
			{A: 1, B: 2, Start: 10, End: 15},
			{A: 2, B: 3, Start: 20, End: 30},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
		want   error
	}{
		{"no nodes", func(tr *Trace) { tr.N = 0 }, ErrNoNodes},
		{"self contact", func(tr *Trace) { tr.Contacts[0].B = 0 }, ErrBadContact},
		{"node out of range", func(tr *Trace) { tr.Contacts[0].B = 9 }, ErrBadContact},
		{"unordered pair", func(tr *Trace) { tr.Contacts[0].A, tr.Contacts[0].B = 1, 0 }, ErrBadContact},
		{"empty interval", func(tr *Trace) { tr.Contacts[0].End = tr.Contacts[0].Start }, ErrBadContact},
		{"negative start", func(tr *Trace) { tr.Contacts[0].Start = -1 }, ErrBadContact},
		{"unsorted", func(tr *Trace) { tr.Contacts[0].Start, tr.Contacts[0].End = 50, 60 }, ErrUnsorted},
		{"beyond duration", func(tr *Trace) { tr.Contacts[3].End = 1000 }, ErrBeyondDuration},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := validTrace()
			tc.mutate(tr)
			if err := tr.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestNormalize(t *testing.T) {
	tr := &Trace{N: 3, Duration: 10, Contacts: []Contact{
		{A: 2, B: 1, Start: 5, End: 6},
		{A: 1, B: 0, Start: 1, End: 2},
	}}
	tr.Normalize()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Contacts[0].Start != 1 || tr.Contacts[1].A != 1 || tr.Contacts[1].B != 2 {
		t.Fatalf("normalize wrong: %+v", tr.Contacts)
	}
}

// Property: Normalize always yields a Validate-clean trace from arbitrary
// well-typed contact soup.
func TestNormalizeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%20)
		tr := &Trace{N: n, Duration: 1000}
		for i := 0; i < 50; i++ {
			a := NodeID(rng.Intn(n))
			b := NodeID(rng.Intn(n))
			if a == b {
				continue
			}
			start := rng.Float64() * 900
			tr.Contacts = append(tr.Contacts, Contact{A: a, B: b, Start: start, End: start + 1 + rng.Float64()*50})
		}
		tr.Normalize()
		return tr.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlice(t *testing.T) {
	tr := validTrace()
	got := tr.Slice(5, 15)
	if len(got.Contacts) != 2 {
		t.Fatalf("slice len = %d, want 2", len(got.Contacts))
	}
	for _, c := range got.Contacts {
		if c.Start < 5 || c.Start >= 15 {
			t.Fatalf("contact %+v outside slice", c)
		}
	}
	// Original untouched.
	if len(tr.Contacts) != 4 {
		t.Fatal("slice mutated original")
	}
}

func TestPairKeySymmetric(t *testing.T) {
	if PairKey(1, 3, 5) != PairKey(3, 1, 5) {
		t.Fatal("PairKey not symmetric")
	}
	if PairKey(1, 3, 5) == PairKey(1, 2, 5) {
		t.Fatal("PairKey collision")
	}
}

func TestComputeStats(t *testing.T) {
	s := validTrace().ComputeStats()
	if s.Nodes != 4 || s.Contacts != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeetingPairs != 3 {
		t.Fatalf("meeting pairs = %d, want 3", s.MeetingPairs)
	}
	// 3 of 6 possible pairs met.
	if math.Abs(s.PairCoverage-0.5) > 1e-12 {
		t.Fatalf("coverage = %v, want 0.5", s.PairCoverage)
	}
	// Pair (0,1) has 2 contacts, others 1: mean 4/3.
	if math.Abs(s.ContactsPerPair-4.0/3.0) > 1e-12 {
		t.Fatalf("contacts/pair = %v", s.ContactsPerPair)
	}
	// Durations: 1 + 2 + 5 + 10 = 18 over 4 contacts.
	if math.Abs(s.MeanContactDur-4.5) > 1e-12 {
		t.Fatalf("mean dur = %v", s.MeanContactDur)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	tr := &Trace{N: 3, Duration: 10}
	s := tr.ComputeStats()
	if s.Contacts != 0 || s.MeanContactDur != 0 || s.PairCoverage != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestPairRates(t *testing.T) {
	tr := validTrace()
	rates, err := tr.PairRates(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := rates[PairKey(0, 1, 4)]; math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("rate(0,1) = %v, want 0.02", got)
	}
	if got := rates[PairKey(0, 3, 4)]; got != 0 {
		t.Fatalf("rate(0,3) = %v, want 0", got)
	}
	if _, err := tr.PairRates(10, 10); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestInterContactTimes(t *testing.T) {
	gaps := validTrace().InterContactTimes()
	k := PairKey(0, 1, 4)
	if len(gaps[k]) != 1 || gaps[k][0] != 9 {
		t.Fatalf("gaps(0,1) = %v, want [9]", gaps[k])
	}
	if len(gaps[PairKey(1, 2, 4)]) != 0 {
		t.Fatal("single-contact pair must have no gaps")
	}
}
