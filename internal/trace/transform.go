package trace

import (
	"fmt"
	"sort"
)

// Subset restricts the trace to the given nodes, renumbering them densely
// in the order given. Contacts with an endpoint outside the set are
// dropped. Useful for downsampling large real traces to a tractable
// population.
func (t *Trace) Subset(nodes []NodeID) (*Trace, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("trace: subset needs at least 2 nodes, got %d", len(nodes))
	}
	remap := make(map[NodeID]NodeID, len(nodes))
	for i, n := range nodes {
		if n < 0 || int(n) >= t.N {
			return nil, fmt.Errorf("trace: subset node %d outside trace (N=%d)", n, t.N)
		}
		if _, dup := remap[n]; dup {
			return nil, fmt.Errorf("trace: duplicate subset node %d", n)
		}
		remap[n] = NodeID(i)
	}
	out := &Trace{Name: t.Name + "-subset", N: len(nodes), Duration: t.Duration}
	for _, c := range t.Contacts {
		a, okA := remap[c.A]
		b, okB := remap[c.B]
		if !okA || !okB {
			continue
		}
		out.Contacts = append(out.Contacts, Contact{A: a, B: b, Start: c.Start, End: c.End})
	}
	out.Normalize()
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Rebase shifts all contact times so the earliest contact starts at 0 and
// trims the duration to the last contact end. Real trace exports often
// carry epoch timestamps; Rebase makes them simulation-ready.
func (t *Trace) Rebase() *Trace {
	out := &Trace{Name: t.Name, N: t.N}
	if len(t.Contacts) == 0 {
		out.Duration = t.Duration
		return out
	}
	base := t.Contacts[0].Start
	var maxEnd float64
	for _, c := range t.Contacts {
		if c.Start < base {
			base = c.Start
		}
		if c.End > maxEnd {
			maxEnd = c.End
		}
	}
	for _, c := range t.Contacts {
		out.Contacts = append(out.Contacts, Contact{A: c.A, B: c.B, Start: c.Start - base, End: c.End - base})
	}
	out.Duration = maxEnd - base
	out.Normalize()
	return out
}

// Concat appends another trace of the same population after this one in
// time: the second trace's contacts are shifted by the first trace's
// duration. Both traces must have the same node count.
func (t *Trace) Concat(other *Trace) (*Trace, error) {
	if other.N != t.N {
		return nil, fmt.Errorf("trace: concat population mismatch (%d vs %d nodes)", t.N, other.N)
	}
	out := &Trace{Name: t.Name, N: t.N, Duration: t.Duration + other.Duration}
	out.Contacts = append(out.Contacts, t.Contacts...)
	for _, c := range other.Contacts {
		out.Contacts = append(out.Contacts, Contact{A: c.A, B: c.B, Start: c.Start + t.Duration, End: c.End + t.Duration})
	}
	out.Normalize()
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// TopNodesByContacts returns the n nodes with the most contacts, in
// descending contact-count order (ties by ascending ID) — the standard way
// to downsample a real trace to its active participants.
func (t *Trace) TopNodesByContacts(n int) ([]NodeID, error) {
	if n <= 0 || n > t.N {
		return nil, fmt.Errorf("trace: cannot pick top %d of %d nodes", n, t.N)
	}
	counts := make([]int, t.N)
	for _, c := range t.Contacts {
		counts[c.A]++
		counts[c.B]++
	}
	ids := make([]NodeID, t.N)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	sort.SliceStable(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids[:n], nil
}
