package trace

import (
	"strings"
	"testing"
)

// Fuzz targets for the two parsers: whatever bytes arrive, the readers
// must either return an error or a trace that passes Validate — never
// panic, never return corrupt data. The seed corpus runs as part of the
// normal test suite; `go test -fuzz=FuzzRead ./internal/trace` explores
// further.

func FuzzRead(f *testing.F) {
	f.Add("# name: x\n# nodes: 3\n0 1 5 10\n")
	f.Add("0 1 5 10\n2 1 20 25\n")
	f.Add("# duration: 100\n")
	f.Add("0 0 1 2\n")
	f.Add("a b c d\n")
	f.Add("0 1 10 5\n") // end before start
	f.Add("# nodes: -5\n0 1 1 2\n")
	f.Add("0 1 1e308 1e309\n")
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Read accepted invalid trace: %v\ninput: %q", err, in)
		}
	})
}

func FuzzReadONE(f *testing.F) {
	f.Add("10 CONN 0 1 up\n20 CONN 0 1 down\n")
	f.Add("10 CONN n1 p2 up\n")
	f.Add("5 CONN 0 1 down\n")
	f.Add("x CONN 0 1 up\n")
	f.Add("10 MSG 0 1 whatever\n")
	f.Add("10 CONN 0 0 up\n")
	f.Add("1e308 CONN 0 1 up\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadONE(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadONE accepted invalid trace: %v\ninput: %q", err, in)
		}
	})
}

func FuzzReadAuto(f *testing.F) {
	f.Add("# c\n0 1 5 10\n")
	f.Add("10 CONN 0 1 up\n20 CONN 0 1 down\n")
	f.Add("")
	f.Add("# only a comment\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadAuto(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadAuto accepted invalid trace: %v\ninput: %q", err, in)
		}
	})
}
