package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The on-disk format follows the widely used "one contact per line" text
// convention of the Haggle/CRAWDAD tooling:
//
//	# name: infocom06-like
//	# nodes: 78
//	# duration: 337500
//	<a> <b> <start> <end>
//
// Fields are whitespace-separated; lines starting with '#' are either
// header directives (name/nodes/duration) or comments. Times are seconds.

// ErrFormat is returned (wrapped) for any malformed trace file content.
var ErrFormat = errors.New("trace: malformed trace file")

// Write serializes the trace in the text format above.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name: %s\n# nodes: %d\n# duration: %g\n", t.Name, t.N, t.Duration); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, c := range t.Contacts {
		if _, err := fmt.Fprintf(bw, "%d %d %g %g\n", c.A, c.B, c.Start, c.End); err != nil {
			return fmt.Errorf("trace: write contact: %w", err)
		}
	}
	return bw.Flush()
}

// WriteFile writes the trace to the named file.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := Write(f, t); err != nil {
		return err
	}
	return f.Close()
}

// Read parses a trace from the text format. Header directives may appear
// in any order before the first contact line; nodes and duration are
// inferred from the contacts when absent. The result is normalized and
// validated.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	var maxNode NodeID
	var maxEnd float64
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseHeader(t, line); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, lineNo, err)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("%w: line %d: want 4 fields, got %d", ErrFormat, lineNo, len(fields))
		}
		a, err1 := strconv.Atoi(fields[0])
		b, err2 := strconv.Atoi(fields[1])
		start, err3 := strconv.ParseFloat(fields[2], 64)
		end, err4 := strconv.ParseFloat(fields[3], 64)
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, lineNo, err)
		}
		c := Contact{A: NodeID(a), B: NodeID(b), Start: start, End: end}
		if c.A > maxNode {
			maxNode = c.A
		}
		if c.B > maxNode {
			maxNode = c.B
		}
		if c.End > maxEnd {
			maxEnd = c.End
		}
		t.Contacts = append(t.Contacts, c)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if t.N == 0 {
		t.N = int(maxNode) + 1
	}
	if t.Duration == 0 {
		t.Duration = maxEnd
	}
	t.Normalize()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadFile reads and parses the named trace file, auto-detecting the
// format (native text or ONE StandardEvents).
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	t, err := ReadAuto(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return t, nil
}

func parseHeader(t *Trace, line string) error {
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	key, val, ok := strings.Cut(body, ":")
	if !ok {
		return nil // plain comment
	}
	val = strings.TrimSpace(val)
	switch strings.TrimSpace(key) {
	case "name":
		t.Name = val
	case "nodes":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("nodes: %w", err)
		}
		t.N = n
	case "duration":
		d, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("duration: %w", err)
		}
		t.Duration = d
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
