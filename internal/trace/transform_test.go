package trace

import (
	"math"
	"testing"
)

func TestSubset(t *testing.T) {
	tr := validTrace() // contacts: (0,1)x2, (1,2), (2,3)
	sub, err := tr.Subset([]NodeID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N != 2 {
		t.Fatalf("N = %d", sub.N)
	}
	// Only the (1,2) contact survives, renumbered to (0,1).
	if len(sub.Contacts) != 1 {
		t.Fatalf("contacts: %+v", sub.Contacts)
	}
	if sub.Contacts[0].A != 0 || sub.Contacts[0].B != 1 || sub.Contacts[0].Start != 10 {
		t.Fatalf("contact: %+v", sub.Contacts[0])
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetValidation(t *testing.T) {
	tr := validTrace()
	if _, err := tr.Subset([]NodeID{1}); err == nil {
		t.Fatal("singleton subset accepted")
	}
	if _, err := tr.Subset([]NodeID{0, 99}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := tr.Subset([]NodeID{1, 1}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestRebase(t *testing.T) {
	tr := &Trace{Name: "epoch", N: 2, Duration: 2e9, Contacts: []Contact{
		{A: 0, B: 1, Start: 1.5e9, End: 1.5e9 + 60},
		{A: 0, B: 1, Start: 1.5e9 + 600, End: 1.5e9 + 700},
	}}
	out := tr.Rebase()
	if out.Contacts[0].Start != 0 || out.Contacts[0].End != 60 {
		t.Fatalf("first contact: %+v", out.Contacts[0])
	}
	if math.Abs(out.Duration-700) > 1e-6 {
		t.Fatalf("duration = %v, want 700", out.Duration)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if tr.Contacts[0].Start != 1.5e9 {
		t.Fatal("rebase mutated original")
	}
}

func TestRebaseEmpty(t *testing.T) {
	tr := &Trace{Name: "e", N: 2, Duration: 100}
	out := tr.Rebase()
	if out.Duration != 100 || len(out.Contacts) != 0 {
		t.Fatalf("empty rebase: %+v", out)
	}
}

func TestConcat(t *testing.T) {
	a := &Trace{Name: "a", N: 3, Duration: 100, Contacts: []Contact{{A: 0, B: 1, Start: 10, End: 20}}}
	b := &Trace{Name: "b", N: 3, Duration: 50, Contacts: []Contact{{A: 1, B: 2, Start: 5, End: 8}}}
	out, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Duration != 150 || len(out.Contacts) != 2 {
		t.Fatalf("concat: %+v", out)
	}
	if out.Contacts[1].Start != 105 || out.Contacts[1].End != 108 {
		t.Fatalf("shifted contact: %+v", out.Contacts[1])
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcatMismatch(t *testing.T) {
	a := &Trace{Name: "a", N: 3, Duration: 100}
	b := &Trace{Name: "b", N: 4, Duration: 50}
	if _, err := a.Concat(b); err == nil {
		t.Fatal("population mismatch accepted")
	}
}

func TestTopNodesByContacts(t *testing.T) {
	tr := validTrace() // node contact counts: 0:2, 1:3, 2:2, 3:1
	top, err := tr.TopNodesByContacts(2)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 1 {
		t.Fatalf("top node = %d, want 1", top[0])
	}
	if top[1] != 0 { // tie between 0 and 2 broken by ID
		t.Fatalf("second node = %d, want 0", top[1])
	}
	if _, err := tr.TopNodesByContacts(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := tr.TopNodesByContacts(99); err == nil {
		t.Fatal("n>N accepted")
	}
}

func TestSubsetOfTopNodesRoundTrip(t *testing.T) {
	tr := validTrace()
	top, err := tr.TopNodesByContacts(3)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tr.Subset(top)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N != 3 {
		t.Fatalf("N = %d", sub.N)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}
