// Package trace defines the contact-trace model that drives every
// simulation: a time-ordered sequence of pairwise contact intervals
// between mobile nodes, plus readers and writers for the on-disk format
// and the aggregate statistics the evaluation reports.
//
// A trace is the only coupling between mobility (real or synthetic) and
// the protocol layers: protocols see contacts, never positions.
package trace

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node within a trace. IDs are dense in [0, N).
type NodeID int

// Contact is one pairwise contact interval: nodes A and B can exchange
// data during [Start, End). A < B by convention (see Normalize).
type Contact struct {
	A, B       NodeID
	Start, End float64
}

// Duration returns the contact duration in seconds.
func (c Contact) Duration() float64 { return c.End - c.Start }

// Trace is a complete contact trace: N nodes observed over [0, Duration),
// with contacts sorted by start time (ties broken by (A,B) to keep runs
// deterministic).
type Trace struct {
	Name     string
	N        int
	Duration float64
	Contacts []Contact
}

// Validation errors.
var (
	ErrNoNodes        = errors.New("trace: no nodes")
	ErrBadContact     = errors.New("trace: invalid contact")
	ErrUnsorted       = errors.New("trace: contacts not sorted by start time")
	ErrBeyondDuration = errors.New("trace: contact beyond trace duration")
)

// Validate checks the structural invariants documented on Trace. It does
// not modify the trace; call Normalize first on freshly built traces.
func (t *Trace) Validate() error {
	if t.N <= 0 {
		return ErrNoNodes
	}
	if t.Duration <= 0 {
		return fmt.Errorf("trace: non-positive duration %v", t.Duration)
	}
	prev := -1.0
	for i, c := range t.Contacts {
		switch {
		case c.A == c.B:
			return fmt.Errorf("%w #%d: self-contact %d", ErrBadContact, i, c.A)
		case c.A < 0 || int(c.A) >= t.N || c.B < 0 || int(c.B) >= t.N:
			return fmt.Errorf("%w #%d: node out of range (%d,%d) with N=%d", ErrBadContact, i, c.A, c.B, t.N)
		case c.A > c.B:
			return fmt.Errorf("%w #%d: not normalized (A=%d > B=%d)", ErrBadContact, i, c.A, c.B)
		case c.End <= c.Start || c.Start < 0:
			return fmt.Errorf("%w #%d: interval [%v,%v)", ErrBadContact, i, c.Start, c.End)
		case c.Start < prev:
			return fmt.Errorf("%w: contact #%d starts at %v after %v", ErrUnsorted, i, c.Start, prev)
		case c.End > t.Duration:
			return fmt.Errorf("%w: contact #%d ends at %v > %v", ErrBeyondDuration, i, c.End, t.Duration)
		}
		prev = c.Start
	}
	return nil
}

// Normalize orders each contact's endpoints (A < B) and sorts contacts by
// (Start, A, B, End). Generators call this before returning a trace.
func (t *Trace) Normalize() {
	for i := range t.Contacts {
		if t.Contacts[i].A > t.Contacts[i].B {
			t.Contacts[i].A, t.Contacts[i].B = t.Contacts[i].B, t.Contacts[i].A
		}
	}
	sort.Slice(t.Contacts, func(i, j int) bool {
		a, b := t.Contacts[i], t.Contacts[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.End < b.End
	})
}

// Slice returns a copy of the trace restricted to contacts that start in
// [from, to), with times preserved (not re-based). Used to split traces
// into warmup and measurement halves.
func (t *Trace) Slice(from, to float64) *Trace {
	out := &Trace{Name: t.Name, N: t.N, Duration: t.Duration}
	for _, c := range t.Contacts {
		if c.Start >= from && c.Start < to {
			out.Contacts = append(out.Contacts, c)
		}
	}
	return out
}

// PairKey maps an unordered node pair to a dense index for rate matrices:
// the pair (a,b), a<b, among N nodes.
func PairKey(a, b NodeID, n int) int {
	if a > b {
		a, b = b, a
	}
	return int(a)*n + int(b)
}

// Stats holds the aggregate statistics reported in the trace-summary
// table (experiment E1).
type Stats struct {
	Name            string
	Nodes           int
	DurationHours   float64
	Contacts        int
	ContactsPerPair float64 // mean contacts per distinct meeting pair
	MeetingPairs    int     // pairs that met at least once
	PairCoverage    float64 // fraction of all pairs that ever met
	MeanPairRate    float64 // mean contact rate over meeting pairs (1/s)
	MeanContactDur  float64 // mean contact duration (s)
}

// ComputeStats derives the aggregate statistics of the trace.
func (t *Trace) ComputeStats() Stats {
	counts := make(map[int]int)
	var totalDur float64
	for _, c := range t.Contacts {
		counts[PairKey(c.A, c.B, t.N)]++
		totalDur += c.Duration()
	}
	s := Stats{
		Name:          t.Name,
		Nodes:         t.N,
		DurationHours: t.Duration / 3600,
		Contacts:      len(t.Contacts),
		MeetingPairs:  len(counts),
	}
	allPairs := t.N * (t.N - 1) / 2
	if allPairs > 0 {
		s.PairCoverage = float64(len(counts)) / float64(allPairs)
	}
	if len(counts) > 0 {
		var sum int
		var rateSum float64
		for _, k := range counts {
			sum += k
			rateSum += float64(k) / t.Duration
		}
		s.ContactsPerPair = float64(sum) / float64(len(counts))
		s.MeanPairRate = rateSum / float64(len(counts))
	}
	if len(t.Contacts) > 0 {
		s.MeanContactDur = totalDur / float64(len(t.Contacts))
	}
	return s
}

// PairRates returns the empirical contact-rate matrix: rates[PairKey(a,b,N)]
// is the number of (a,b) contacts divided by the observation window
// [from, to). This is the "oracle" estimator used when protocols are
// granted converged rate knowledge; the online estimator lives in package
// centrality.
func (t *Trace) PairRates(from, to float64) ([]float64, error) {
	if to <= from {
		return nil, fmt.Errorf("trace: empty rate window [%v,%v)", from, to)
	}
	rates := make([]float64, t.N*t.N)
	for _, c := range t.Contacts {
		if c.Start >= from && c.Start < to {
			rates[PairKey(c.A, c.B, t.N)]++
		}
	}
	w := to - from
	for i := range rates {
		rates[i] /= w
	}
	return rates, nil
}

// InterContactTimes returns, for each meeting pair, the sequence of
// inter-contact gaps (start-to-start). Used to characterize traces and to
// sanity-check generators against their target distributions.
func (t *Trace) InterContactTimes() map[int][]float64 {
	last := make(map[int]float64)
	gaps := make(map[int][]float64)
	for _, c := range t.Contacts {
		k := PairKey(c.A, c.B, t.N)
		if prev, ok := last[k]; ok {
			gaps[k] = append(gaps[k], c.Start-prev)
		}
		last[k] = c.Start
	}
	return gaps
}
