// Package cache is the cooperative-caching substrate the freshness scheme
// maintains: data items refreshed periodically at their sources, versioned
// cached copies with expiration, per-node stores with capacity and LRU
// eviction, and the query workload whose access validity the evaluation
// reports.
package cache

import (
	"fmt"

	"freshcache/internal/trace"
)

// ItemID identifies a data item. IDs are dense in [0, number of items).
type ItemID int

// Item is the static description of a data item.
type Item struct {
	ID     ItemID
	Source trace.NodeID
	// RefreshInterval R: the source generates version k at Phase + k·R
	// seconds after the measurement phase starts.
	RefreshInterval float64
	// Phase offsets this item's generation schedule within the refresh
	// cycle (0 <= Phase < R), so items need not all publish at the same
	// instant.
	Phase float64
	// FreshnessWindow F: the freshness requirement — a newly generated
	// version should reach every caching node within F seconds of its
	// generation (with the scheme's configured probability).
	FreshnessWindow float64
	// Lifetime L: a copy expires L seconds after its version was
	// generated, independent of newer versions existing. L >= R, and is
	// typically a small multiple of R ("refreshed periodically and subject
	// to expiration").
	Lifetime float64
	// Size in abstract storage units, consumed from store capacity.
	Size int
}

// Validate checks the item's parameters.
func (it Item) Validate() error {
	switch {
	case it.ID < 0:
		return fmt.Errorf("cache: negative item id %d", it.ID)
	case it.Source < 0:
		return fmt.Errorf("cache: item %d: negative source %d", it.ID, it.Source)
	case it.RefreshInterval <= 0:
		return fmt.Errorf("cache: item %d: non-positive refresh interval %v", it.ID, it.RefreshInterval)
	case it.Phase < 0 || it.Phase >= it.RefreshInterval:
		return fmt.Errorf("cache: item %d: phase %v outside [0, refresh interval)", it.ID, it.Phase)
	case it.FreshnessWindow <= 0:
		return fmt.Errorf("cache: item %d: non-positive freshness window %v", it.ID, it.FreshnessWindow)
	case it.Lifetime < it.RefreshInterval:
		return fmt.Errorf("cache: item %d: lifetime %v below refresh interval %v", it.ID, it.Lifetime, it.RefreshInterval)
	case it.Size <= 0:
		return fmt.Errorf("cache: item %d: non-positive size %d", it.ID, it.Size)
	}
	return nil
}

// Copy is a cached copy of one version of an item.
type Copy struct {
	Item        ItemID
	Version     int
	GeneratedAt float64 // when the source generated this version
	ReceivedAt  float64 // when this node obtained the copy
}

// Expired reports whether the copy is past the item's lifetime at time
// now.
func (c Copy) Expired(it Item, now float64) bool {
	return now-c.GeneratedAt > it.Lifetime
}

// Catalog is the immutable set of items in a scenario, indexed by ID.
type Catalog struct {
	items []Item
}

// NewCatalog validates and indexes the items. Item IDs must equal their
// position.
func NewCatalog(items []Item) (*Catalog, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("cache: empty catalog")
	}
	out := make([]Item, len(items))
	for i, it := range items {
		if err := it.Validate(); err != nil {
			return nil, err
		}
		if int(it.ID) != i {
			return nil, fmt.Errorf("cache: item at position %d has id %d", i, it.ID)
		}
		out[i] = it
	}
	return &Catalog{items: out}, nil
}

// Len returns the number of items.
func (c *Catalog) Len() int { return len(c.items) }

// Item returns the item with the given ID.
func (c *Catalog) Item(id ItemID) (Item, error) {
	if id < 0 || int(id) >= len(c.items) {
		return Item{}, fmt.Errorf("cache: no item %d", id)
	}
	return c.items[id], nil
}

// Items returns a copy of the item list.
func (c *Catalog) Items() []Item {
	out := make([]Item, len(c.items))
	copy(out, c.items)
	return out
}

// View returns the catalog's item list in ID order without copying. The
// catalog is immutable, so the slice is safe to share — callers must not
// modify it. Hot paths (per-contact scheme dispatch) use View; Items
// remains for callers that want ownership.
func (c *Catalog) View() []Item { return c.items }

// CurrentVersion returns the newest version number of the item at time
// `now`, where version k is generated at epoch + Phase + k·R. Before the
// item's first generation the version is -1 (nothing generated yet).
func CurrentVersion(it Item, epoch, now float64) int {
	if now < epoch+it.Phase {
		return -1
	}
	return int((now - epoch - it.Phase) / it.RefreshInterval)
}

// VersionTime returns the generation time of version v of the item.
func VersionTime(it Item, epoch float64, v int) float64 {
	return epoch + it.Phase + float64(v)*it.RefreshInterval
}
