package cache

import (
	"math"
	"testing"
)

func testItem(id ItemID) Item {
	return Item{
		ID:              id,
		Source:          0,
		RefreshInterval: 100,
		FreshnessWindow: 50,
		Lifetime:        200,
		Size:            1,
	}
}

func testCatalog(t *testing.T, n int) *Catalog {
	t.Helper()
	items := make([]Item, n)
	for i := range items {
		items[i] = testItem(ItemID(i))
	}
	c, err := NewCatalog(items)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestItemValidate(t *testing.T) {
	if err := testItem(0).Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Item)
	}{
		{"negative id", func(it *Item) { it.ID = -1 }},
		{"negative source", func(it *Item) { it.Source = -1 }},
		{"zero refresh", func(it *Item) { it.RefreshInterval = 0 }},
		{"zero window", func(it *Item) { it.FreshnessWindow = 0 }},
		{"lifetime below interval", func(it *Item) { it.Lifetime = 50 }},
		{"zero size", func(it *Item) { it.Size = 0 }},
	}
	for _, tc := range cases {
		it := testItem(0)
		tc.mutate(&it)
		if err := it.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestCatalog(t *testing.T) {
	c := testCatalog(t, 3)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	it, err := c.Item(2)
	if err != nil || it.ID != 2 {
		t.Fatalf("Item(2) = %+v, %v", it, err)
	}
	if _, err := c.Item(5); err == nil {
		t.Fatal("out-of-range item accepted")
	}
	if _, err := c.Item(-1); err == nil {
		t.Fatal("negative item accepted")
	}
	// Items() is a copy.
	items := c.Items()
	items[0].Size = 99
	it0, _ := c.Item(0)
	if it0.Size == 99 {
		t.Fatal("Items() exposed internal state")
	}
}

func TestCatalogRejects(t *testing.T) {
	if _, err := NewCatalog(nil); err == nil {
		t.Fatal("empty catalog accepted")
	}
	if _, err := NewCatalog([]Item{testItem(1)}); err == nil {
		t.Fatal("misnumbered catalog accepted")
	}
	bad := testItem(0)
	bad.Size = 0
	if _, err := NewCatalog([]Item{bad}); err == nil {
		t.Fatal("invalid item accepted")
	}
}

func TestCurrentVersion(t *testing.T) {
	it := testItem(0) // R = 100
	cases := []struct {
		now  float64
		want int
	}{
		{-10, -1}, {0, 0}, {99.9, 0}, {100, 1}, {250, 2},
	}
	for _, tc := range cases {
		if got := CurrentVersion(it, 0, tc.now); got != tc.want {
			t.Errorf("CurrentVersion(t=%v) = %d, want %d", tc.now, got, tc.want)
		}
	}
	// With an epoch offset.
	if got := CurrentVersion(it, 1000, 1150); got != 1 {
		t.Errorf("epoch version = %d, want 1", got)
	}
}

func TestVersionTime(t *testing.T) {
	it := testItem(0)
	if got := VersionTime(it, 1000, 3); got != 1300 {
		t.Fatalf("VersionTime = %v, want 1300", got)
	}
}

func TestVersionRoundTrip(t *testing.T) {
	it := testItem(0)
	for v := 0; v < 50; v++ {
		at := VersionTime(it, 500, v)
		if got := CurrentVersion(it, 500, at); got != v {
			t.Fatalf("round trip v=%d: got %d", v, got)
		}
		if got := CurrentVersion(it, 500, math.Nextafter(at, 0)); got != v-1 {
			t.Fatalf("just before v=%d: got %d, want %d", v, got, v-1)
		}
	}
}

func TestCopyExpired(t *testing.T) {
	it := testItem(0) // lifetime 200
	c := Copy{Item: 0, Version: 1, GeneratedAt: 100}
	if c.Expired(it, 250) {
		t.Fatal("copy expired too early")
	}
	if !c.Expired(it, 301) {
		t.Fatal("copy not expired after lifetime")
	}
}

func TestStorePutGet(t *testing.T) {
	cat := testCatalog(t, 3)
	s, err := NewStore(cat, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Put(Copy{Item: 1, Version: 0, GeneratedAt: 0, ReceivedAt: 5}, 5)
	if err != nil || !ok {
		t.Fatalf("put: %v %v", ok, err)
	}
	got, ok := s.Get(1, 6)
	if !ok || got.Version != 0 {
		t.Fatalf("get: %+v %v", got, ok)
	}
	if _, ok := s.Get(2, 6); ok {
		t.Fatal("absent item found")
	}
}

func TestStoreRejectsOlderVersions(t *testing.T) {
	cat := testCatalog(t, 1)
	s, err := NewStore(cat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(Copy{Item: 0, Version: 3, GeneratedAt: 300}, 310); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Put(Copy{Item: 0, Version: 2, GeneratedAt: 200}, 320)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("older version accepted")
	}
	ok, err = s.Put(Copy{Item: 0, Version: 3, GeneratedAt: 300}, 330)
	if err != nil || ok {
		t.Fatalf("equal version: ok=%v err=%v", ok, err)
	}
	got, _ := s.Peek(0)
	if got.Version != 3 {
		t.Fatalf("stored version = %d, want 3", got.Version)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	cat := testCatalog(t, 4)
	s, err := NewStore(cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustPut := func(id ItemID, now float64) {
		t.Helper()
		if _, err := s.Put(Copy{Item: id, Version: 0}, now); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(0, 1)
	mustPut(1, 2)
	s.Get(0, 3) // touch 0: now 1 is LRU
	mustPut(2, 4)
	if _, ok := s.Peek(1); ok {
		t.Fatal("LRU item 1 not evicted")
	}
	if _, ok := s.Peek(0); !ok {
		t.Fatal("recently used item 0 evicted")
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d", s.Evictions())
	}
	if s.Used() != 2 || s.Len() != 2 {
		t.Fatalf("used=%d len=%d", s.Used(), s.Len())
	}
}

func TestStoreOversizedItem(t *testing.T) {
	items := []Item{testItem(0)}
	items[0].Size = 10
	cat, err := NewCatalog(items)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(cat, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(Copy{Item: 0}, 1); err == nil {
		t.Fatal("oversized item accepted")
	}
}

func TestStoreDrop(t *testing.T) {
	cat := testCatalog(t, 2)
	s, err := NewStore(cat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(Copy{Item: 0}, 1); err != nil {
		t.Fatal(err)
	}
	s.Drop(0)
	if s.Len() != 0 || s.Used() != 0 {
		t.Fatalf("after drop: len=%d used=%d", s.Len(), s.Used())
	}
	s.Drop(1) // dropping absent item is a no-op
}

func TestStoreItemsSorted(t *testing.T) {
	cat := testCatalog(t, 5)
	s, err := NewStore(cat, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []ItemID{3, 0, 4} {
		if _, err := s.Put(Copy{Item: id}, 1); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.Items()
	want := []ItemID{0, 3, 4}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("items = %v, want %v", ids, want)
		}
	}
}

func TestStoreConstructorValidation(t *testing.T) {
	if _, err := NewStore(nil, 0); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := NewStore(testCatalog(t, 1), -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestStoreUnknownItem(t *testing.T) {
	s, err := NewStore(testCatalog(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(Copy{Item: 9}, 1); err == nil {
		t.Fatal("unknown item accepted")
	}
}

func TestItemPhase(t *testing.T) {
	it := testItem(0)
	it.Phase = 40 // R = 100
	if err := it.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := CurrentVersion(it, 0, 39); got != -1 {
		t.Fatalf("version before first publication = %d, want -1", got)
	}
	if got := CurrentVersion(it, 0, 40); got != 0 {
		t.Fatalf("version at phase = %d, want 0", got)
	}
	if got := CurrentVersion(it, 0, 139); got != 0 {
		t.Fatalf("version just before v1 = %d, want 0", got)
	}
	if got := CurrentVersion(it, 0, 140); got != 1 {
		t.Fatalf("version at phase+R = %d, want 1", got)
	}
	if got := VersionTime(it, 1000, 2); got != 1240 {
		t.Fatalf("VersionTime = %v, want 1240", got)
	}
}

func TestItemPhaseValidation(t *testing.T) {
	it := testItem(0)
	it.Phase = -1
	if err := it.Validate(); err == nil {
		t.Fatal("negative phase accepted")
	}
	it.Phase = it.RefreshInterval
	if err := it.Validate(); err == nil {
		t.Fatal("phase == R accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if EvictLRU.String() != "lru" || EvictLFU.String() != "lfu" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy empty name")
	}
}

func TestStoreLFUEviction(t *testing.T) {
	cat := testCatalog(t, 4)
	s, err := NewStoreWithPolicy(cat, 2, EvictLFU)
	if err != nil {
		t.Fatal(err)
	}
	mustPut := func(id ItemID, now float64) {
		t.Helper()
		if _, err := s.Put(Copy{Item: id, Version: 0}, now); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(0, 1)
	mustPut(1, 2)
	// Item 0 used 3 times, item 1 used once — but item 1 more recently.
	s.Get(0, 3)
	s.Get(0, 4)
	s.Get(0, 5)
	s.Get(1, 6)
	mustPut(2, 7)
	// LFU must evict 1 (1 use) even though it is more recent than 0.
	if _, ok := s.Peek(1); ok {
		t.Fatal("LFU kept the less-used item")
	}
	if _, ok := s.Peek(0); !ok {
		t.Fatal("LFU evicted the popular item")
	}
}

func TestStoreLFUTieBreaksByRecency(t *testing.T) {
	cat := testCatalog(t, 3)
	s, err := NewStoreWithPolicy(cat, 2, EvictLFU)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(Copy{Item: 0, Version: 0}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(Copy{Item: 1, Version: 0}, 2); err != nil {
		t.Fatal(err)
	}
	// Equal use counts (zero); item 0 is older → evicted.
	if _, err := s.Put(Copy{Item: 2, Version: 0}, 3); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Peek(0); ok {
		t.Fatal("LFU tie-break kept the older item")
	}
	if _, ok := s.Peek(1); !ok {
		t.Fatal("LFU tie-break evicted the newer item")
	}
}

func TestStorePolicyValidation(t *testing.T) {
	if _, err := NewStoreWithPolicy(testCatalog(t, 1), 0, Policy(42)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
