package cache

import (
	"fmt"
)

// Policy selects the store's eviction policy.
type Policy int

const (
	// EvictLRU evicts the least-recently-used item (default).
	EvictLRU Policy = iota
	// EvictLFU evicts the least-frequently-used item (ties by recency).
	EvictLFU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case EvictLRU:
		return "lru"
	case EvictLFU:
		return "lfu"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Store is one node's cache: at most one copy per item, bounded total
// size, LRU or LFU eviction. Item IDs are dense, so the per-item state is
// flat slices indexed by ItemID — the per-contact lookup path (Peek,
// Put) does no hashing and no allocation. The zero value is not usable;
// create with NewStore.
type Store struct {
	capacity int // total size units; 0 = unlimited
	policy   Policy
	used     int
	present  []bool
	copies   []Copy
	lastUsed []float64
	useCount []int
	count    int
	catalog  *Catalog

	evictions int
}

// NewStore creates an LRU store with the given capacity in size units
// (0 = unlimited) over the catalog's items.
func NewStore(catalog *Catalog, capacity int) (*Store, error) {
	return NewStoreWithPolicy(catalog, capacity, EvictLRU)
}

// NewStoreWithPolicy creates a store with an explicit eviction policy.
func NewStoreWithPolicy(catalog *Catalog, capacity int, policy Policy) (*Store, error) {
	if catalog == nil {
		return nil, fmt.Errorf("cache: nil catalog")
	}
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	if policy != EvictLRU && policy != EvictLFU {
		return nil, fmt.Errorf("cache: unknown policy %d", int(policy))
	}
	n := catalog.Len()
	return &Store{
		capacity: capacity,
		policy:   policy,
		present:  make([]bool, n),
		copies:   make([]Copy, n),
		lastUsed: make([]float64, n),
		useCount: make([]int, n),
		catalog:  catalog,
	}, nil
}

// inRange reports whether the ID indexes the store's dense state.
func (s *Store) inRange(id ItemID) bool { return id >= 0 && int(id) < len(s.present) }

// Get returns the stored copy of the item, if any, marking it used at
// time now.
func (s *Store) Get(id ItemID, now float64) (Copy, bool) {
	if !s.inRange(id) || !s.present[id] {
		return Copy{}, false
	}
	s.lastUsed[id] = now
	s.useCount[id]++
	return s.copies[id], true
}

// Peek returns the stored copy without touching recency. Used by metrics
// sampling so observation does not perturb eviction.
func (s *Store) Peek(id ItemID) (Copy, bool) {
	if !s.inRange(id) || !s.present[id] {
		return Copy{}, false
	}
	return s.copies[id], true
}

// Put inserts or replaces the copy of an item, evicting least-recently-
// used other items if needed. A Put of an older (or equal) version than
// the stored one is ignored and reported false — freshness never goes
// backwards. Putting a copy too large for the whole store is an error.
func (s *Store) Put(c Copy, now float64) (bool, error) {
	it, err := s.catalog.Item(c.Item)
	if err != nil {
		return false, err
	}
	if s.present[c.Item] {
		if c.Version <= s.copies[c.Item].Version {
			return false, nil
		}
		// Same item: replace in place; size unchanged.
		s.copies[c.Item] = c
		s.lastUsed[c.Item] = now
		return true, nil
	}
	if s.capacity > 0 {
		if it.Size > s.capacity {
			return false, fmt.Errorf("cache: item %d size %d exceeds store capacity %d", c.Item, it.Size, s.capacity)
		}
		if err := s.evictFor(it.Size); err != nil {
			return false, err
		}
	}
	s.present[c.Item] = true
	s.copies[c.Item] = c
	s.lastUsed[c.Item] = now
	s.useCount[c.Item] = 0
	s.used += it.Size
	s.count++
	return true, nil
}

// evictFor frees space until `need` more units fit, per the store policy.
func (s *Store) evictFor(need int) error {
	for s.used+need > s.capacity {
		victim := ItemID(-1)
		for id := range s.present {
			if !s.present[id] {
				continue
			}
			if victim < 0 || s.worseThan(ItemID(id), victim) {
				victim = ItemID(id)
			}
		}
		if victim < 0 {
			return fmt.Errorf("cache: nothing to evict but %d/%d used", s.used, s.capacity)
		}
		it, err := s.catalog.Item(victim)
		if err != nil {
			return err
		}
		s.remove(victim, it.Size)
		s.evictions++
	}
	return nil
}

// worseThan reports whether a is a better eviction victim than b under the
// store policy, with deterministic tie-breaking (recency, then ID).
func (s *Store) worseThan(a, b ItemID) bool {
	if s.policy == EvictLFU {
		if s.useCount[a] != s.useCount[b] {
			return s.useCount[a] < s.useCount[b]
		}
	}
	if s.lastUsed[a] != s.lastUsed[b] {
		return s.lastUsed[a] < s.lastUsed[b]
	}
	return a < b
}

// remove clears one item's dense state, reclaiming size units.
func (s *Store) remove(id ItemID, size int) {
	s.present[id] = false
	s.copies[id] = Copy{}
	s.lastUsed[id] = 0
	s.useCount[id] = 0
	s.used -= size
	s.count--
}

// Drop removes the copy of an item if present (e.g. expired data purge).
func (s *Store) Drop(id ItemID) {
	if !s.inRange(id) || !s.present[id] {
		return
	}
	size := 0
	if it, err := s.catalog.Item(id); err == nil {
		size = it.Size
	}
	s.remove(id, size)
}

// Len returns the number of cached items.
func (s *Store) Len() int { return s.count }

// Used returns the occupied size units.
func (s *Store) Used() int { return s.used }

// Evictions returns the number of LRU evictions performed.
func (s *Store) Evictions() int { return s.evictions }

// Items returns the stored item IDs in ascending order.
func (s *Store) Items() []ItemID {
	ids := make([]ItemID, 0, s.count)
	for id := range s.present {
		if s.present[id] {
			ids = append(ids, ItemID(id))
		}
	}
	return ids
}
