package cache

import (
	"math"
	"testing"
)

func testWorkload() WorkloadConfig {
	return WorkloadConfig{QueryRate: 1.0 / 600, ZipfExponent: 1.0, Timeout: 0}
}

func TestWorkloadValidate(t *testing.T) {
	if err := testWorkload().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []WorkloadConfig{
		{QueryRate: 0, ZipfExponent: 1},
		{QueryRate: 1, ZipfExponent: 0},
		{QueryRate: 1, ZipfExponent: 1, Timeout: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGenerateQueries(t *testing.T) {
	cat := testCatalog(t, 5)
	qs, err := GenerateQueries(testWorkload(), cat, 10, 1000, 1000+86400, 42)
	if err != nil {
		t.Fatal(err)
	}
	// 10 nodes * 1 query/600s * 86400s = ~1440 expected.
	if len(qs) < 1000 || len(qs) > 2000 {
		t.Fatalf("generated %d queries, expected ~1440", len(qs))
	}
	prev := 0.0
	for i, q := range qs {
		if q.ID != i {
			t.Fatalf("query %d has id %d", i, q.ID)
		}
		if q.IssuedAt < 1000 || q.IssuedAt >= 1000+86400 {
			t.Fatalf("query at %v outside window", q.IssuedAt)
		}
		if q.IssuedAt < prev {
			t.Fatal("queries not sorted by time")
		}
		if q.Item < 0 || int(q.Item) >= 5 {
			t.Fatalf("query item %d out of range", q.Item)
		}
		if q.Requester < 0 || int(q.Requester) >= 10 {
			t.Fatalf("query requester %d out of range", q.Requester)
		}
		prev = q.IssuedAt
	}
}

func TestGenerateQueriesDeterministic(t *testing.T) {
	cat := testCatalog(t, 3)
	a, err := GenerateQueries(testWorkload(), cat, 5, 0, 86400, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateQueries(testWorkload(), cat, 5, 0, 86400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestGenerateQueriesZipfSkew(t *testing.T) {
	cat := testCatalog(t, 10)
	qs, err := GenerateQueries(WorkloadConfig{QueryRate: 1.0 / 60, ZipfExponent: 1.2}, cat, 20, 0, 86400, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for _, q := range qs {
		counts[q.Item]++
	}
	if counts[0] <= counts[9]*2 {
		t.Fatalf("no popularity skew: %v", counts)
	}
}

func TestGenerateQueriesErrors(t *testing.T) {
	cat := testCatalog(t, 2)
	if _, err := GenerateQueries(WorkloadConfig{}, cat, 5, 0, 100, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := GenerateQueries(testWorkload(), cat, 0, 0, 100, 1); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := GenerateQueries(testWorkload(), cat, 5, 100, 100, 1); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestQueryBookLifecycle(t *testing.T) {
	cat := testCatalog(t, 2)
	it, _ := cat.Item(0)
	b := NewQueryBook(0)
	q := &Query{ID: 0, Requester: 3, Item: 0, IssuedAt: 10}
	b.Issue(q)
	if got := b.Pending(3, 20); len(got) != 1 || got[0] != q {
		t.Fatalf("pending = %v", got)
	}
	if got := b.Pending(4, 20); len(got) != 0 {
		t.Fatalf("wrong node has pending queries: %v", got)
	}
	// Served at t=150 with version 0 (generated at 0, epoch 0): current
	// version at 150 is 1 (R=100), so not fresh but valid (lifetime 200).
	c := Copy{Item: 0, Version: 0, GeneratedAt: 0, ReceivedAt: 50}
	if err := b.Resolve(q, it, c, 0, 150); err != nil {
		t.Fatal(err)
	}
	if !q.Served || q.ServedAt != 150 || q.ServedVersion != 0 {
		t.Fatalf("resolution: %+v", q)
	}
	if q.Fresh {
		t.Fatal("stale copy marked fresh")
	}
	if !q.Valid {
		t.Fatal("unexpired copy marked invalid")
	}
	if got := b.Pending(3, 160); len(got) != 0 {
		t.Fatal("resolved query still pending")
	}
	if len(b.All()) != 1 {
		t.Fatalf("log length %d", len(b.All()))
	}
}

func TestQueryBookFreshAndExpired(t *testing.T) {
	cat := testCatalog(t, 1)
	it, _ := cat.Item(0)
	b := NewQueryBook(0)

	fresh := &Query{ID: 0, Requester: 1, Item: 0, IssuedAt: 10}
	b.Issue(fresh)
	if err := b.Resolve(fresh, it, Copy{Item: 0, Version: 0, GeneratedAt: 0}, 0, 50); err != nil {
		t.Fatal(err)
	}
	if !fresh.Fresh || !fresh.Valid {
		t.Fatalf("fresh copy misclassified: %+v", fresh)
	}

	expired := &Query{ID: 1, Requester: 1, Item: 0, IssuedAt: 10}
	b.Issue(expired)
	if err := b.Resolve(expired, it, Copy{Item: 0, Version: 0, GeneratedAt: 0}, 0, 250); err != nil {
		t.Fatal(err)
	}
	if expired.Fresh {
		t.Fatal("old version marked fresh at t=250")
	}
	if expired.Valid {
		t.Fatal("copy past lifetime marked valid")
	}
}

func TestQueryBookTimeout(t *testing.T) {
	b := NewQueryBook(100)
	q := &Query{ID: 0, Requester: 1, Item: 0, IssuedAt: 10}
	b.Issue(q)
	if got := b.Pending(1, 100); len(got) != 1 {
		t.Fatal("query timed out early")
	}
	if got := b.Pending(1, 111); len(got) != 0 {
		t.Fatal("query did not time out")
	}
	// Still in the log as unserved.
	if len(b.All()) != 1 || b.All()[0].Served {
		t.Fatalf("log: %+v", b.All())
	}
}

func TestQueryBookResolveErrors(t *testing.T) {
	cat := testCatalog(t, 2)
	it, _ := cat.Item(0)
	b := NewQueryBook(0)
	q := &Query{ID: 0, Requester: 1, Item: 0, IssuedAt: 10}
	b.Issue(q)
	if err := b.Resolve(q, it, Copy{Item: 1}, 0, 50); err == nil {
		t.Fatal("wrong-item resolution accepted")
	}
	if err := b.Resolve(q, it, Copy{Item: 0}, 0, 50); err != nil {
		t.Fatal(err)
	}
	if err := b.Resolve(q, it, Copy{Item: 0}, 0, 60); err == nil {
		t.Fatal("double resolution accepted")
	}
}

func TestQueryRateScalesCount(t *testing.T) {
	cat := testCatalog(t, 2)
	low, err := GenerateQueries(WorkloadConfig{QueryRate: 1.0 / 3600, ZipfExponent: 1}, cat, 10, 0, 86400, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := GenerateQueries(WorkloadConfig{QueryRate: 4.0 / 3600, ZipfExponent: 1}, cat, 10, 0, 86400, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(high)) / float64(len(low))
	if math.Abs(ratio-4) > 1 {
		t.Fatalf("rate scaling ratio = %v, want ~4", ratio)
	}
}
