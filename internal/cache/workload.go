package cache

import (
	"fmt"
	"sort"

	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// Query is one data-access request issued by a mobile node. It is pulled:
// the query stays pending at the requester until the requester contacts a
// node that holds a copy of the item (a caching node or the source), or
// until it times out.
type Query struct {
	ID        int
	Requester trace.NodeID
	Item      ItemID
	IssuedAt  float64

	// Resolution, meaningful when Served.
	Served            bool
	ServedAt          float64
	ServedVersion     int
	ServedGeneratedAt float64
	// Fresh records whether the served copy was the newest version at
	// service time; Valid whether it was within the item's lifetime.
	Fresh bool
	Valid bool
}

// WorkloadConfig describes the query workload: every node issues queries
// as a Poisson process, items chosen by a Zipf popularity law.
type WorkloadConfig struct {
	// QueryRate is each node's query rate in queries/second.
	QueryRate float64
	// ZipfExponent skews item popularity; values near 1 are typical.
	ZipfExponent float64
	// Timeout discards unanswered queries after this many seconds
	// (0 = never).
	Timeout float64
}

// Validate checks the workload parameters.
func (c WorkloadConfig) Validate() error {
	if c.QueryRate <= 0 {
		return fmt.Errorf("cache: non-positive query rate %v", c.QueryRate)
	}
	if c.ZipfExponent <= 0 {
		return fmt.Errorf("cache: non-positive zipf exponent %v", c.ZipfExponent)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("cache: negative timeout %v", c.Timeout)
	}
	return nil
}

// GenerateQueries pre-computes the deterministic query schedule for all n
// nodes over [from, to), sorted by issue time. Pre-computing (rather than
// scheduling online) keeps the RNG stream independent of protocol
// behavior, so every scheme sees the identical workload.
func GenerateQueries(cfg WorkloadConfig, catalog *Catalog, n int, from, to float64, seed int64) ([]*Query, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("cache: non-positive node count %d", n)
	}
	if to <= from {
		return nil, fmt.Errorf("cache: empty workload window [%v,%v)", from, to)
	}
	rng := stats.Derive(seed, "cache/workload")
	pick := stats.Zipf(rng, cfg.ZipfExponent, catalog.Len())
	var queries []*Query
	for node := 0; node < n; node++ {
		t := from + stats.Exp(rng, cfg.QueryRate)
		for t < to {
			queries = append(queries, &Query{
				Requester: trace.NodeID(node),
				Item:      ItemID(pick()),
				IssuedAt:  t,
			})
			t += stats.Exp(rng, cfg.QueryRate)
		}
	}
	sort.SliceStable(queries, func(i, j int) bool {
		if queries[i].IssuedAt != queries[j].IssuedAt {
			return queries[i].IssuedAt < queries[j].IssuedAt
		}
		return queries[i].Requester < queries[j].Requester
	})
	for i, q := range queries {
		q.ID = i
	}
	return queries, nil
}

// QueryBook tracks pending queries per requester and the full access log.
type QueryBook struct {
	timeout float64
	pending map[trace.NodeID][]*Query
	all     []*Query
}

// NewQueryBook creates an empty book with the given timeout
// (0 = queries never time out).
func NewQueryBook(timeout float64) *QueryBook {
	return &QueryBook{
		timeout: timeout,
		pending: make(map[trace.NodeID][]*Query),
	}
}

// Issue registers a new pending query.
func (b *QueryBook) Issue(q *Query) {
	b.pending[q.Requester] = append(b.pending[q.Requester], q)
	b.all = append(b.all, q)
}

// Pending returns the live pending queries of a node at time now,
// discarding timed-out ones as a side effect.
func (b *QueryBook) Pending(node trace.NodeID, now float64) []*Query {
	qs := b.pending[node]
	if b.timeout > 0 {
		live := qs[:0]
		for _, q := range qs {
			if now-q.IssuedAt <= b.timeout {
				live = append(live, q)
			}
		}
		qs = live
		b.pending[node] = qs
	}
	return qs
}

// Resolve marks a pending query served by the given copy. epoch is the
// measurement-phase start used to compute the item's newest version.
func (b *QueryBook) Resolve(q *Query, it Item, c Copy, epoch, now float64) error {
	if q.Served {
		return fmt.Errorf("cache: query %d resolved twice", q.ID)
	}
	if c.Item != q.Item {
		return fmt.Errorf("cache: query %d for item %d resolved with copy of %d", q.ID, q.Item, c.Item)
	}
	q.Served = true
	q.ServedAt = now
	q.ServedVersion = c.Version
	q.ServedGeneratedAt = c.GeneratedAt
	q.Fresh = c.Version >= CurrentVersion(it, epoch, now)
	q.Valid = !c.Expired(it, now)

	qs := b.pending[q.Requester]
	for i, p := range qs {
		if p == q {
			b.pending[q.Requester] = append(qs[:i], qs[i+1:]...)
			break
		}
	}
	return nil
}

// All returns the full query log (served and not).
func (b *QueryBook) All() []*Query { return b.all }
