package centrality

import (
	"math"
	"testing"

	"freshcache/internal/mobility"
	"freshcache/internal/trace"
)

func TestDistributedOwnPairsExact(t *testing.T) {
	d := NewDistributedEstimator(4, 0)
	d.Observe(0, 1, 10)
	d.Observe(0, 1, 20)
	d.Observe(0, 2, 30)
	v, err := d.View(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Rate(0, 1); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("rate(0,1) = %v, want 0.02", got)
	}
	if got := v.Rate(0, 2); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("rate(0,2) = %v, want 0.01", got)
	}
	if got := v.Rate(0, 3); got != 0 {
		t.Fatalf("rate(0,3) = %v, want 0", got)
	}
	if got := v.Rate(1, 1); got != 0 {
		t.Fatalf("self rate = %v", got)
	}
}

func TestDistributedDirectExchange(t *testing.T) {
	d := NewDistributedEstimator(4, 0)
	// 1 and 2 meet repeatedly; 0 learns about it only when meeting 1.
	d.Observe(1, 2, 10)
	d.Observe(1, 2, 20)

	v0, err := d.View(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := v0.Rate(1, 2); got != 0 {
		t.Fatalf("node 0 knows rate(1,2)=%v before any contact", got)
	}

	d.Observe(0, 1, 30)
	v0, err = d.View(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := v0.Rate(1, 2); math.Abs(got-2.0/50) > 1e-12 {
		t.Fatalf("after meeting 1: rate(1,2) = %v, want 0.04", got)
	}
}

func TestDistributedTransitiveExchange(t *testing.T) {
	d := NewDistributedEstimator(5, 0)
	// 3 and 4 meet; 2 meets 3 (learns); 1 meets 2 (learns transitively);
	// 0 meets 1 (learns third-hand).
	d.Observe(3, 4, 10)
	d.Observe(2, 3, 20)
	d.Observe(1, 2, 30)
	d.Observe(0, 1, 40)

	v0, err := d.View(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := v0.Rate(3, 4); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("third-hand rate(3,4) = %v, want 0.01", got)
	}
}

func TestDistributedFreshestWins(t *testing.T) {
	d := NewDistributedEstimator(4, 0)
	// 0 learns an early snapshot of node 2's vector, then a fresher one
	// through node 3.
	d.Observe(1, 2, 10) // 2's count with 1 becomes 1
	d.Observe(0, 2, 15) // 0 gets 2's snapshot (count 1 with 1, 1 with 0)
	d.Observe(1, 2, 20) // 2's count with 1 becomes 2
	d.Observe(2, 3, 25) // 3 gets fresh snapshot of 2
	d.Observe(0, 3, 30) // 0 should upgrade via 3

	v0, err := d.View(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := v0.Rate(1, 2); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("rate(1,2) = %v, want fresh 0.02", got)
	}
}

func TestDistributedStaleness(t *testing.T) {
	d := NewDistributedEstimator(3, 0)
	d.Observe(0, 1, 10) // 0 and 1 exchange
	d.Observe(1, 2, 20)
	d.Observe(1, 2, 30)
	// Node 0 still believes 1-2 never met (its snapshot of 1 predates).
	v0, err := d.View(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := v0.Rate(1, 2); got != 0 {
		t.Fatalf("node 0 has clairvoyant rate(1,2)=%v", got)
	}
	// The oracle-equivalent owner view is exact though.
	v1, err := d.View(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := v1.Rate(1, 2); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("own rate(1,2) = %v", got)
	}
}

func TestDistributedViewValidation(t *testing.T) {
	d := NewDistributedEstimator(3, 50)
	if _, err := d.View(5, 100); err == nil {
		t.Fatal("bad owner accepted")
	}
	if _, err := d.View(0, 50); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestDistributedKnownFraction(t *testing.T) {
	d := NewDistributedEstimator(4, 0)
	if got := d.KnownFraction(0); got != 0 {
		t.Fatalf("initial known = %v", got)
	}
	d.Observe(0, 1, 10)
	if got := d.KnownFraction(0); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("after one contact known = %v", got)
	}
}

// On a dense trace, every node's local view must converge toward the
// oracle estimator for well-observed pairs.
func TestDistributedConvergesToOracle(t *testing.T) {
	g := &mobility.HeterogeneousExp{
		TraceName: "conv", N: 20, Duration: 20 * mobility.Day,
		MeanRate: 6.0 / mobility.Day, RateShape: 1, PairFraction: 1, MeanContactDur: 60,
	}
	tr, err := g.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDistributedEstimator(tr.N, 0)
	for _, c := range tr.Contacts {
		d.Observe(c.A, c.B, c.Start)
	}
	oracle, err := FromTrace(tr, 0, tr.Duration)
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.View(7, tr.Duration)
	if err != nil {
		t.Fatal(err)
	}
	var sumErr, count float64
	for a := 0; a < tr.N; a++ {
		for b := a + 1; b < tr.N; b++ {
			o := oracle.Rate(trace.NodeID(a), trace.NodeID(b))
			if o == 0 {
				continue
			}
			got := v.Rate(trace.NodeID(a), trace.NodeID(b))
			sumErr += math.Abs(got-o) / o
			count++
		}
	}
	if meanErr := sumErr / count; meanErr > 0.1 {
		t.Fatalf("mean relative error vs oracle = %v; gossip not converging", meanErr)
	}
}

func TestDistributedObserveDeterministic(t *testing.T) {
	build := func() RateView {
		d := NewDistributedEstimator(6, 0)
		seq := [][3]float64{{0, 1, 5}, {1, 2, 10}, {3, 4, 12}, {2, 3, 20}, {0, 5, 25}, {4, 5, 30}}
		for _, s := range seq {
			d.Observe(trace.NodeID(s[0]), trace.NodeID(s[1]), s[2])
		}
		v, err := d.View(0, 100)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a, b := build(), build()
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			if a.Rate(trace.NodeID(x), trace.NodeID(y)) != b.Rate(trace.NodeID(x), trace.NodeID(y)) {
				t.Fatalf("nondeterministic at (%d,%d)", x, y)
			}
		}
	}
}
