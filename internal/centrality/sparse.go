package centrality

import (
	"fmt"
	"sort"

	"freshcache/internal/trace"
)

// MaxDenseNodes is the largest node count for which a dense n×n float64
// rate matrix (or n×n int count matrix) may be allocated: 8192 nodes is a
// 512 MiB matrix, already past the point where the sparse backing wins.
// Constructors that would exceed it return a *SizeError instead of
// attempting the allocation.
const MaxDenseNodes = 8192

// AutoSparseThreshold is the node count above which BackingAuto switches
// from the dense flat matrix to sorted per-node neighbor lists. Below it
// the dense form is both faster (direct indexing) and small enough not to
// matter (1024 nodes = 8 MiB).
const AutoSparseThreshold = 1024

// SizeError reports a node count for which a dense n×n structure was
// refused because the allocation would be absurd (or overflow). Callers
// that legitimately need such sizes should request BackingSparse.
type SizeError struct {
	Op string // constructor that refused
	N  int    // requested node count
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("centrality: %s: %d nodes would need an n*n allocation beyond the dense ceiling of %d; use the sparse backing",
		e.Op, e.N, MaxDenseNodes)
}

// checkDense validates a node count for a dense n×n allocation.
func checkDense(op string, n int) error {
	if n <= 0 {
		return fmt.Errorf("centrality: %s: non-positive node count %d", op, n)
	}
	if n > MaxDenseNodes {
		return &SizeError{Op: op, N: n}
	}
	return nil
}

// RateStore is the writable rate-view surface shared by the dense
// RateMatrix and the sparse SparseRates: symmetric pairwise rates with a
// snapshot epoch. core, NCL selection and the replication-plan memo work
// on this interface and are agnostic to the backing.
type RateStore interface {
	RateView
	Epoched
	// Set records the contact rate for the unordered pair (a, b).
	Set(a, b trace.NodeID, rate float64)
}

// NeighborVisitor is implemented by rate views that can enumerate a
// node's nonzero-rate neighbors in ascending ID order without touching
// the zero pairs. Scores and SelectCachingNodes use it as an O(degree)
// fast path; since ExpCDF(0, w) is exactly 0, skipping zero-rate pairs is
// bit-identical to the dense full loop.
type NeighborVisitor interface {
	// VisitNeighbors calls f for each b with Rate(a, b) > 0, in ascending
	// b order.
	VisitNeighbors(a trace.NodeID, f func(b trace.NodeID, rate float64))
}

// Backing selects the representation of rate and count structures.
type Backing int

const (
	// BackingAuto picks dense below AutoSparseThreshold nodes and sparse
	// above — the default everywhere.
	BackingAuto Backing = iota
	// BackingDense forces the flat n×n matrix (refused above
	// MaxDenseNodes).
	BackingDense
	// BackingSparse forces sorted per-node neighbor lists.
	BackingSparse
)

// String implements fmt.Stringer.
func (b Backing) String() string {
	switch b {
	case BackingAuto:
		return "auto"
	case BackingDense:
		return "dense"
	case BackingSparse:
		return "sparse"
	default:
		return fmt.Sprintf("backing(%d)", int(b))
	}
}

// resolve maps BackingAuto to a concrete backing for n nodes.
func (b Backing) resolve(n int) Backing {
	if b == BackingAuto {
		if n > AutoSparseThreshold {
			return BackingSparse
		}
		return BackingDense
	}
	return b
}

// NewRateStore returns an empty rate store for n nodes in the requested
// backing.
func NewRateStore(n int, b Backing) (RateStore, error) {
	switch b.resolve(n) {
	case BackingSparse:
		return NewSparseRates(n)
	default:
		return NewRateMatrix(n)
	}
}

// rateEntry is one neighbor of a node in the sparse representation.
type rateEntry struct {
	id   trace.NodeID
	rate float64
}

// SparseRates holds symmetric pairwise contact rates as sorted per-node
// neighbor lists: memory and iteration are O(nodes + observed pairs)
// instead of O(n²). It implements the same Rate/Set/Epoch surface as
// RateMatrix, so every consumer works unchanged on either backing.
type SparseRates struct {
	n     int
	epoch uint64
	nbr   [][]rateEntry
}

// NewSparseRates returns an empty sparse rate store for n nodes.
func NewSparseRates(n int) (*SparseRates, error) {
	if n <= 0 {
		return nil, fmt.Errorf("centrality: NewSparseRates: non-positive node count %d", n)
	}
	return &SparseRates{n: n, epoch: matrixEpochs.Add(1), nbr: make([][]rateEntry, n)}, nil
}

// N returns the number of nodes.
func (s *SparseRates) N() int { return s.n }

// Epoch implements Epoched: the store's snapshot identity, assigned at
// construction.
func (s *SparseRates) Epoch() uint64 { return s.epoch }

// Rate returns the contact rate of the pair (a, b); zero for pairs that
// never meet and for a == b.
func (s *SparseRates) Rate(a, b trace.NodeID) float64 {
	if a == b {
		return 0
	}
	row := s.nbr[a]
	i := sort.Search(len(row), func(i int) bool { return row[i].id >= b })
	if i < len(row) && row[i].id == b {
		return row[i].rate
	}
	return 0
}

// Set records the contact rate for the unordered pair (a, b), keeping
// both endpoints' neighbor lists sorted.
func (s *SparseRates) Set(a, b trace.NodeID, rate float64) {
	if a == b {
		return
	}
	s.setHalf(a, b, rate)
	s.setHalf(b, a, rate)
}

func (s *SparseRates) setHalf(a, b trace.NodeID, rate float64) {
	row := s.nbr[a]
	i := sort.Search(len(row), func(i int) bool { return row[i].id >= b })
	if i < len(row) && row[i].id == b {
		row[i].rate = rate
		return
	}
	row = append(row, rateEntry{})
	copy(row[i+1:], row[i:])
	row[i] = rateEntry{id: b, rate: rate}
	s.nbr[a] = row
}

// VisitNeighbors implements NeighborVisitor: f sees every neighbor of a
// with a nonzero rate, in ascending ID order.
func (s *SparseRates) VisitNeighbors(a trace.NodeID, f func(b trace.NodeID, rate float64)) {
	for _, e := range s.nbr[a] {
		if e.rate != 0 {
			f(e.id, e.rate)
		}
	}
}

// Pairs returns the number of stored (unordered) pairs — a diagnostic for
// memory accounting and the no-n² test assertions.
func (s *SparseRates) Pairs() int {
	total := 0
	for _, row := range s.nbr {
		total += len(row)
	}
	return total / 2
}

var (
	_ RateStore       = (*SparseRates)(nil)
	_ NeighborVisitor = (*SparseRates)(nil)
	_ RateStore       = (*RateMatrix)(nil)
	_ NeighborVisitor = (*RateMatrix)(nil)
)

// VisitNeighbors implements NeighborVisitor for the dense matrix: a row
// scan that skips zero entries, in ascending ID order.
func (m *RateMatrix) VisitNeighbors(a trace.NodeID, f func(b trace.NodeID, rate float64)) {
	row := m.rates[int(a)*m.n : (int(a)+1)*m.n]
	for b, r := range row {
		if r != 0 && b != int(a) {
			f(trace.NodeID(b), r)
		}
	}
}

// emptyView is an allocation-free all-zero RateView. It is deliberately
// not Epoched: consumers treat it as uncacheable, so a transient fallback
// never poisons a plan memo.
type emptyView int

func (v emptyView) N() int                          { return int(v) }
func (v emptyView) Rate(a, b trace.NodeID) float64  { return 0 }
func (v emptyView) VisitNeighbors(a trace.NodeID, f func(b trace.NodeID, rate float64)) {
}

// EmptyView returns an allocation-free RateView over n nodes in which no
// pair ever meets. It replaces the old fallback of allocating a zero n×n
// matrix when no rate knowledge is available yet.
func EmptyView(n int) RateView { return emptyView(n) }

// CountSnapshot is an immutable copy of an Estimator's pairwise contact
// counts, in whichever backing the estimator uses. Snapshots taken from
// the same estimator are totally ordered: counts only grow.
type CountSnapshot struct {
	n      int
	dense  []int
	sparse map[int]int // trace.PairKey(a,b,n) → count
}

// N returns the node count the snapshot covers (0 for a zero snapshot).
func (c CountSnapshot) N() int { return c.n }

// RatesBetweenSnapshots computes the rate store from the growth between
// two count snapshots over an observation window — the backing-agnostic
// form of RatesBetween used by periodic hierarchy rebuilds.
func RatesBetweenSnapshots(before, after CountSnapshot, window float64) (RateStore, error) {
	if window <= 0 {
		return nil, fmt.Errorf("centrality: non-positive window %v", window)
	}
	if before.n != after.n {
		return nil, fmt.Errorf("centrality: snapshot node counts differ (%d vs %d)", before.n, after.n)
	}
	if after.sparse != nil {
		if before.dense != nil {
			return nil, fmt.Errorf("centrality: snapshot backings differ (dense before, sparse after)")
		}
		s, err := NewSparseRates(after.n)
		if err != nil {
			return nil, err
		}
		n := after.n
		// Deterministic iteration (and deterministic errors): visit pair
		// keys in ascending order.
		keys := make([]int, 0, len(after.sparse))
		for k := range after.sparse {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			d := after.sparse[k] - before.sparse[k]
			if d < 0 {
				return nil, fmt.Errorf("centrality: snapshot went backwards at pair (%d,%d)", k/n, k%n)
			}
			if d > 0 {
				s.Set(trace.NodeID(k/n), trace.NodeID(k%n), float64(d)/window)
			}
		}
		for k, v := range before.sparse {
			if after.sparse[k] < v {
				return nil, fmt.Errorf("centrality: snapshot went backwards at pair (%d,%d)", k/n, k%n)
			}
		}
		return s, nil
	}
	if before.sparse != nil {
		return nil, fmt.Errorf("centrality: snapshot backings differ (sparse before, dense after)")
	}
	m, err := RatesBetween(before.dense, after.dense, after.n, window)
	if err != nil {
		return nil, err
	}
	return m, nil
}
