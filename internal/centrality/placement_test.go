package centrality

import (
	"testing"

	"freshcache/internal/mobility"
	"freshcache/internal/trace"
)

func placementMatrix(t *testing.T) RateStore {
	t.Helper()
	g := &mobility.Community{
		TraceName: "pl", N: 30, Duration: 15 * mobility.Day, Communities: 3,
		IntraRate: 6.0 / mobility.Day, InterRate: 0.5 / mobility.Day, RateShape: 0.8,
		InterPairFraction: 0.5, HubFraction: 0.1, HubBoost: 3, MeanContactDur: 120,
	}
	tr, err := g.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromTrace(tr, 0, tr.Duration)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPlacementString(t *testing.T) {
	if PlaceGreedyCoverage.String() != "greedy-coverage" ||
		PlaceTopCentrality.String() != "top-centrality" ||
		PlaceRandom.String() != "random" {
		t.Fatal("placement names wrong")
	}
	if Placement(99).String() == "" {
		t.Fatal("unknown placement has empty name")
	}
}

func TestSelectPolicies(t *testing.T) {
	m := placementMatrix(t)
	exclude := map[trace.NodeID]bool{0: true, 1: true}
	for _, p := range []Placement{PlaceGreedyCoverage, PlaceTopCentrality, PlaceRandom} {
		sel, err := Select(p, m, 6*3600, 5, exclude, 7)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(sel) != 5 {
			t.Fatalf("%v: selected %d", p, len(sel))
		}
		seen := map[trace.NodeID]bool{}
		for _, id := range sel {
			if exclude[id] {
				t.Fatalf("%v selected excluded node %d", p, id)
			}
			if seen[id] {
				t.Fatalf("%v selected %d twice", p, id)
			}
			seen[id] = true
		}
	}
}

func TestSelectGreedyMatchesLegacyAPI(t *testing.T) {
	m := placementMatrix(t)
	a, err := Select(PlaceGreedyCoverage, m, 6*3600, 6, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectCachingNodes(m, 6*3600, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("greedy policy diverges from legacy API: %v vs %v", a, b)
		}
	}
}

func TestSelectTopCentralityOrdering(t *testing.T) {
	m := placementMatrix(t)
	sel, err := Select(PlaceTopCentrality, m, 6*3600, 4, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	scores := Scores(m, 6*3600)
	for i := 1; i < len(sel); i++ {
		if scores[sel[i-1]] < scores[sel[i]] {
			t.Fatalf("top-centrality not descending: %v", sel)
		}
	}
}

func TestSelectRandomSeedSensitivity(t *testing.T) {
	m := placementMatrix(t)
	a, err := Select(PlaceRandom, m, 6*3600, 5, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(PlaceRandom, m, 6*3600, 5, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random placement not deterministic for fixed seed")
		}
	}
	c, err := Select(PlaceRandom, m, 6*3600, 5, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("random placement identical across seeds")
	}
}

func TestSelectValidation(t *testing.T) {
	m := placementMatrix(t)
	if _, err := Select(PlaceGreedyCoverage, m, 3600, 0, nil, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Select(Placement(99), m, 3600, 3, nil, 1); err == nil {
		t.Fatal("unknown placement accepted")
	}
}
