// Package centrality implements the contact-based metrics the scheme is
// built on: pairwise contact-rate estimation (the λij of the Poisson
// contact model), the cumulative-contact-probability centrality used in
// this paper family, and the greedy coverage-based selection of caching
// nodes (the Network Central Locations of Gao & Cao's cooperative-caching
// substrate).
package centrality

import (
	"fmt"
	"sort"
	"sync/atomic"

	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// Epoched is implemented by rate views whose knowledge is immutable once
// published, identified by an epoch tag: two reads through the same view
// with the same epoch are guaranteed to return the same rates. Consumers
// (e.g. the replication-plan memo in core) use the epoch as a cache key
// and treat views without the interface — such as the continuously
// updated per-node views of DistributedEstimator — as uncacheable.
type Epoched interface {
	// Epoch returns the view's snapshot identity. Distinct snapshots have
	// distinct epochs; the value carries no meaning beyond equality.
	Epoch() uint64
}

// matrixEpochs tags each RateMatrix with a process-unique epoch at
// construction. Matrices are built, published and then only read (the
// engine swaps in a whole new matrix on rebuild), so construction order
// is a sound snapshot identity.
var matrixEpochs atomic.Uint64

// RateMatrix holds symmetric pairwise contact rates (1/s) for N nodes.
type RateMatrix struct {
	n     int
	epoch uint64
	rates []float64 // flat n*n, both (a,b) and (b,a) kept in sync
}

// NewRateMatrix returns a zero rate matrix for n nodes. Node counts above
// MaxDenseNodes are refused with a *SizeError; use NewSparseRates (or
// NewRateStore with BackingAuto) for large networks.
func NewRateMatrix(n int) (*RateMatrix, error) {
	if err := checkDense("NewRateMatrix", n); err != nil {
		return nil, err
	}
	return &RateMatrix{n: n, epoch: matrixEpochs.Add(1), rates: make([]float64, n*n)}, nil
}

// Epoch implements Epoched: the matrix's snapshot identity, assigned at
// construction.
func (m *RateMatrix) Epoch() uint64 { return m.epoch }

var _ Epoched = (*RateMatrix)(nil)

// N returns the number of nodes.
func (m *RateMatrix) N() int { return m.n }

// Set records the contact rate for the pair (a, b).
func (m *RateMatrix) Set(a, b trace.NodeID, rate float64) {
	m.rates[int(a)*m.n+int(b)] = rate
	m.rates[int(b)*m.n+int(a)] = rate
}

// Rate returns the contact rate of the pair (a, b); zero for pairs that
// never meet and for a == b.
func (m *RateMatrix) Rate(a, b trace.NodeID) float64 {
	if a == b {
		return 0
	}
	return m.rates[int(a)*m.n+int(b)]
}

// FromTrace builds the oracle rate store from the contacts starting in
// [from, to), counting only observed pairs (O(contacts), never n²). The
// backing is chosen automatically by node count. This is the
// converged-knowledge estimator used when a protocol is granted full rate
// information; the online counterpart is Estimator.
func FromTrace(t *trace.Trace, from, to float64) (RateStore, error) {
	return FromTraceBacking(t, from, to, BackingAuto)
}

// FromTraceBacking is FromTrace with an explicit backing choice.
func FromTraceBacking(t *trace.Trace, from, to float64, b Backing) (RateStore, error) {
	if to <= from {
		return nil, fmt.Errorf("centrality: empty window [%v,%v)", from, to)
	}
	m, err := NewRateStore(t.N, b)
	if err != nil {
		return nil, err
	}
	counts := make(map[int]int)
	for _, c := range t.Contacts {
		if c.Start >= from && c.Start < to {
			counts[trace.PairKey(c.A, c.B, t.N)]++
		}
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w := to - from
	for _, k := range keys {
		m.Set(trace.NodeID(k/t.N), trace.NodeID(k%t.N), float64(counts[k])/w)
	}
	return m, nil
}

// Estimator accumulates contact observations online and converts them to
// rates over the observed window, exactly as a node running the protocol
// would (contacts counted over elapsed time). A single Estimator models
// the network-wide view that nodes converge to by transitively exchanging
// contact histories on every contact — the standard assumption of this
// paper family. The backing mirrors the rate stores: a flat n×n count
// slice for small networks, a pair-keyed map of observed pairs for large
// ones.
type Estimator struct {
	n      int
	start  float64
	counts []int       // dense backing; nil when sparse
	sparse map[int]int // sparse backing, trace.PairKey → count; nil when dense
}

// NewEstimator returns an estimator for n nodes observing from startTime,
// with the backing chosen automatically by node count.
func NewEstimator(n int, startTime float64) (*Estimator, error) {
	return NewEstimatorBacking(n, startTime, BackingAuto)
}

// NewEstimatorBacking is NewEstimator with an explicit backing choice.
func NewEstimatorBacking(n int, startTime float64, b Backing) (*Estimator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("centrality: NewEstimator: non-positive node count %d", n)
	}
	e := &Estimator{n: n, start: startTime}
	switch b.resolve(n) {
	case BackingSparse:
		e.sparse = make(map[int]int)
	default:
		if err := checkDense("NewEstimator", n); err != nil {
			return nil, err
		}
		e.counts = make([]int, n*n)
	}
	return e, nil
}

// Observe records one contact between a and b. The contact time is not
// stored; rates derive from counts over the window.
func (e *Estimator) Observe(a, b trace.NodeID) {
	if e.counts != nil {
		e.counts[int(a)*e.n+int(b)]++
		e.counts[int(b)*e.n+int(a)]++
		return
	}
	e.sparse[trace.PairKey(a, b, e.n)]++
}

// Counts returns a copy of the pairwise contact-count matrix, for
// windowed estimation via RatesBetween. It is defined only for the dense
// backing and returns nil for a sparse estimator — backing-agnostic
// consumers should use Snapshot and RatesBetweenSnapshots instead.
func (e *Estimator) Counts() []int {
	if e.counts == nil {
		return nil
	}
	out := make([]int, len(e.counts))
	copy(out, e.counts)
	return out
}

// Snapshot returns an immutable copy of the current pairwise counts in
// the estimator's own backing, for windowed estimation via
// RatesBetweenSnapshots.
func (e *Estimator) Snapshot() CountSnapshot {
	if e.counts != nil {
		out := make([]int, len(e.counts))
		copy(out, e.counts)
		return CountSnapshot{n: e.n, dense: out}
	}
	out := make(map[int]int, len(e.sparse))
	for k, v := range e.sparse {
		out[k] = v
	}
	return CountSnapshot{n: e.n, sparse: out}
}

// RatesBetween computes the rate matrix from the growth between two count
// snapshots (as returned by Counts) over an observation window — the
// recent-history estimate used by periodic hierarchy rebuilds, which must
// track drift rather than average over all regimes ever seen.
func RatesBetween(before, after []int, n int, window float64) (*RateMatrix, error) {
	if window <= 0 {
		return nil, fmt.Errorf("centrality: non-positive window %v", window)
	}
	if len(before) != n*n || len(after) != n*n {
		return nil, fmt.Errorf("centrality: snapshot size mismatch (%d, %d, n=%d)", len(before), len(after), n)
	}
	m, err := NewRateMatrix(n)
	if err != nil {
		return nil, err
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			d := after[a*n+b] - before[a*n+b]
			if d < 0 {
				return nil, fmt.Errorf("centrality: snapshot went backwards at pair (%d,%d)", a, b)
			}
			if d > 0 {
				m.Set(trace.NodeID(a), trace.NodeID(b), float64(d)/window)
			}
		}
	}
	return m, nil
}

// Rates snapshots the estimated rate store as of `now`.
func (e *Estimator) Rates(now float64) (RateStore, error) {
	window := now - e.start
	if window <= 0 {
		return nil, fmt.Errorf("centrality: no observation time elapsed (now=%v, start=%v)", now, e.start)
	}
	if e.counts != nil {
		m, err := NewRateMatrix(e.n)
		if err != nil {
			return nil, err
		}
		for a := 0; a < e.n; a++ {
			for b := a + 1; b < e.n; b++ {
				if k := e.counts[a*e.n+b]; k > 0 {
					m.Set(trace.NodeID(a), trace.NodeID(b), float64(k)/window)
				}
			}
		}
		return m, nil
	}
	s, err := NewSparseRates(e.n)
	if err != nil {
		return nil, err
	}
	keys := make([]int, 0, len(e.sparse))
	for k := range e.sparse {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		s.Set(trace.NodeID(k/e.n), trace.NodeID(k%e.n), float64(e.sparse[k])/window)
	}
	return s, nil
}

// Scores computes each node's cumulative-contact-probability centrality:
// the expected fraction of other nodes it meets within the given time
// window, C_i = (1/(N-1)) Σ_j (1 − e^{−λij·T}). Views that can enumerate
// nonzero neighbors get an O(pairs) path; since ExpCDF(0, T) is exactly
// 0, it is bit-identical to the dense full loop.
func Scores(v RateView, window float64) []float64 {
	n := v.N()
	scores := make([]float64, n)
	if n <= 1 {
		return scores
	}
	if nv, ok := v.(NeighborVisitor); ok {
		for a := 0; a < n; a++ {
			var sum float64
			nv.VisitNeighbors(trace.NodeID(a), func(b trace.NodeID, rate float64) {
				sum += stats.ExpCDF(rate, window)
			})
			scores[a] = sum / float64(n-1)
		}
		return scores
	}
	for a := 0; a < n; a++ {
		var sum float64
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			sum += stats.ExpCDF(v.Rate(trace.NodeID(a), trace.NodeID(b)), window)
		}
		scores[a] = sum / float64(n-1)
	}
	return scores
}

// Rank returns node IDs sorted by descending centrality score, ties broken
// by ascending ID for determinism.
func Rank(scores []float64) []trace.NodeID {
	ids := make([]trace.NodeID, len(scores))
	for i := range ids {
		ids[i] = trace.NodeID(i)
	}
	sort.SliceStable(ids, func(i, j int) bool {
		si, sj := scores[ids[i]], scores[ids[j]]
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// SelectCachingNodes picks k caching nodes (NCLs) by greedy marginal
// coverage: at each step it adds the node that most increases the expected
// number of nodes reachable within the window by at least one selected
// node, P_cov(j) = 1 − Π_{s∈S} (1 − p_sj). The first pick is therefore the
// highest-centrality node, and later picks favor nodes covering regions
// (communities) the current set misses — which is why plain top-k by
// centrality is not used.
func SelectCachingNodes(v RateView, window float64, k int) ([]trace.NodeID, error) {
	return SelectCachingNodesExcluding(v, window, k, nil)
}

// SelectCachingNodesExcluding is SelectCachingNodes with a set of nodes
// barred from selection — the engine excludes data sources, which already
// hold their own items and would waste a caching slot. Zero-rate pairs
// contribute exactly 0 to every gain and multiply notCovered by exactly
// 1, so the O(degree) neighbor-visiting path is bit-identical to the
// dense full loop.
func SelectCachingNodesExcluding(v RateView, window float64, k int, exclude map[trace.NodeID]bool) ([]trace.NodeID, error) {
	n := v.N()
	if k <= 0 || k > n-len(exclude) {
		return nil, fmt.Errorf("centrality: cannot select %d caching nodes out of %d (%d excluded)", k, n, len(exclude))
	}
	nv, fast := v.(NeighborVisitor)
	// notCovered[j] = Π over selected s of (1 - p_sj); 1 when nothing
	// selected yet.
	notCovered := make([]float64, n)
	for j := range notCovered {
		notCovered[j] = 1
	}
	selected := make([]trace.NodeID, 0, k)
	inSet := make([]bool, n)

	for len(selected) < k {
		best := trace.NodeID(-1)
		bestGain := -1.0
		for cand := 0; cand < n; cand++ {
			if inSet[cand] || exclude[trace.NodeID(cand)] {
				continue
			}
			// Gain: candidate covers itself fully plus shrinks every other
			// node's not-covered probability by (1 - p_cand,j).
			gain := notCovered[cand]
			if fast {
				nv.VisitNeighbors(trace.NodeID(cand), func(j trace.NodeID, rate float64) {
					if inSet[j] {
						return
					}
					gain += notCovered[j] * stats.ExpCDF(rate, window)
				})
			} else {
				for j := 0; j < n; j++ {
					if j == cand || inSet[j] {
						continue
					}
					p := stats.ExpCDF(v.Rate(trace.NodeID(cand), trace.NodeID(j)), window)
					gain += notCovered[j] * p
				}
			}
			if gain > bestGain {
				bestGain = gain
				best = trace.NodeID(cand)
			}
		}
		selected = append(selected, best)
		inSet[best] = true
		notCovered[best] = 0
		if fast {
			nv.VisitNeighbors(best, func(j trace.NodeID, rate float64) {
				notCovered[j] *= 1 - stats.ExpCDF(rate, window)
			})
		} else {
			for j := 0; j < n; j++ {
				if j == int(best) {
					continue
				}
				p := stats.ExpCDF(v.Rate(best, trace.NodeID(j)), window)
				notCovered[j] *= 1 - p
			}
		}
	}
	return selected, nil
}

// Placement selects which nodes become caching nodes.
type Placement int

const (
	// PlaceGreedyCoverage is the paper family's NCL selection: greedy
	// marginal contact coverage (default).
	PlaceGreedyCoverage Placement = iota
	// PlaceTopCentrality takes the top-k nodes by centrality score,
	// ignoring coverage overlap.
	PlaceTopCentrality
	// PlaceRandom places caches uniformly at random — the placement
	// floor.
	PlaceRandom
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case PlaceGreedyCoverage:
		return "greedy-coverage"
	case PlaceTopCentrality:
		return "top-centrality"
	case PlaceRandom:
		return "random"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Select picks k caching nodes under the given placement policy,
// excluding the given nodes (data sources). seed drives PlaceRandom only.
func Select(p Placement, v RateView, window float64, k int, exclude map[trace.NodeID]bool, seed int64) ([]trace.NodeID, error) {
	n := v.N()
	if k <= 0 || k > n-len(exclude) {
		return nil, fmt.Errorf("centrality: cannot select %d caching nodes out of %d (%d excluded)", k, n, len(exclude))
	}
	switch p {
	case PlaceGreedyCoverage:
		return SelectCachingNodesExcluding(v, window, k, exclude)
	case PlaceTopCentrality:
		ranked := Rank(Scores(v, window))
		out := make([]trace.NodeID, 0, k)
		for _, id := range ranked {
			if exclude[id] {
				continue
			}
			out = append(out, id)
			if len(out) == k {
				break
			}
		}
		return out, nil
	case PlaceRandom:
		rng := stats.Derive(seed, "centrality/random-placement")
		perm := rng.Perm(n)
		out := make([]trace.NodeID, 0, k)
		for _, idx := range perm {
			id := trace.NodeID(idx)
			if exclude[id] {
				continue
			}
			out = append(out, id)
			if len(out) == k {
				break
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("centrality: unknown placement %d", int(p))
	}
}
