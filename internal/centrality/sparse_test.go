package centrality

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// seededTrace builds a deterministic contact trace with a mix of frequent
// and rare pairs, for exercising both backings on the same input.
func seededTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	rng := stats.NewRNG(seed)
	tr := &trace.Trace{Name: "diff", N: n, Duration: 10000}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() > 0.3 {
				continue
			}
			contacts := 1 + rng.Intn(5)
			for c := 0; c < contacts; c++ {
				start := rng.Float64() * 9000
				tr.Contacts = append(tr.Contacts, trace.Contact{
					A: trace.NodeID(a), B: trace.NodeID(b), Start: start, End: start + 60,
				})
			}
		}
	}
	tr.Normalize()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// bothBackings builds the same trace's rates under dense and sparse
// backing.
func bothBackings(t *testing.T, tr *trace.Trace) (dense, sparse RateStore) {
	t.Helper()
	d, err := FromTraceBacking(tr, 0, tr.Duration, BackingDense)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromTraceBacking(tr, 0, tr.Duration, BackingSparse)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*RateMatrix); !ok {
		t.Fatalf("dense backing produced %T", d)
	}
	if _, ok := s.(*SparseRates); !ok {
		t.Fatalf("sparse backing produced %T", s)
	}
	return d, s
}

// TestSparseDenseRatesIdentical: every pairwise rate must be bit-identical
// across backings built from the same trace.
func TestSparseDenseRatesIdentical(t *testing.T) {
	tr := seededTrace(t, 40, 1)
	d, s := bothBackings(t, tr)
	for a := 0; a < tr.N; a++ {
		for b := 0; b < tr.N; b++ {
			dr := d.Rate(trace.NodeID(a), trace.NodeID(b))
			sr := s.Rate(trace.NodeID(a), trace.NodeID(b))
			if dr != sr {
				t.Fatalf("Rate(%d,%d): dense %v, sparse %v", a, b, dr, sr)
			}
		}
	}
}

// TestSparseDenseScoresIdentical: centrality scores — the O(pairs)
// NeighborVisitor path vs the dense full loop — must be bit-identical.
func TestSparseDenseScoresIdentical(t *testing.T) {
	tr := seededTrace(t, 40, 2)
	d, s := bothBackings(t, tr)
	ds := Scores(d, 3600)
	ss := Scores(s, 3600)
	if !reflect.DeepEqual(ds, ss) {
		t.Fatalf("Scores diverged:\ndense  %v\nsparse %v", ds, ss)
	}
	// And against a visitor-free view of the same rates, forcing the
	// generic fallback loop.
	fs := Scores(plainView{s}, 3600)
	if !reflect.DeepEqual(ds, fs) {
		t.Fatalf("fallback Scores diverged:\ndense    %v\nfallback %v", ds, fs)
	}
}

// plainView strips the NeighborVisitor fast path off a RateView.
type plainView struct{ v RateView }

func (p plainView) N() int                         { return p.v.N() }
func (p plainView) Rate(a, b trace.NodeID) float64 { return p.v.Rate(a, b) }

// TestSparseDenseSelectionIdentical: greedy NCL selection must pick the
// same nodes in the same order on either backing (and on the
// visitor-free fallback).
func TestSparseDenseSelectionIdentical(t *testing.T) {
	tr := seededTrace(t, 50, 3)
	d, s := bothBackings(t, tr)
	for _, k := range []int{1, 4, 8} {
		dn, err := SelectCachingNodes(d, 6*3600, k)
		if err != nil {
			t.Fatal(err)
		}
		sn, err := SelectCachingNodes(s, 6*3600, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dn, sn) {
			t.Fatalf("k=%d: dense selected %v, sparse %v", k, dn, sn)
		}
		fn, err := SelectCachingNodes(plainView{s}, 6*3600, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dn, fn) {
			t.Fatalf("k=%d: dense selected %v, fallback %v", k, dn, fn)
		}
	}
	exclude := map[trace.NodeID]bool{0: true, 7: true}
	dn, err := SelectCachingNodesExcluding(d, 6*3600, 6, exclude)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := SelectCachingNodesExcluding(s, 6*3600, 6, exclude)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dn, sn) {
		t.Fatalf("excluding: dense selected %v, sparse %v", dn, sn)
	}
}

// TestEstimatorBackingsIdentical: the same observation sequence must
// produce bit-identical rates through either estimator backing, both via
// Rates and via the snapshot/windowed-rebuild path.
func TestEstimatorBackingsIdentical(t *testing.T) {
	const n = 30
	de, err := NewEstimatorBacking(n, 100, BackingDense)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewEstimatorBacking(n, 100, BackingSparse)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	observe := func(a, b trace.NodeID) { de.Observe(a, b); se.Observe(a, b) }
	for i := 0; i < 500; i++ {
		a := trace.NodeID(rng.Intn(n))
		b := trace.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		observe(a, b)
	}
	db0, sb0 := de.Snapshot(), se.Snapshot()
	for i := 0; i < 300; i++ {
		a := trace.NodeID(rng.Intn(n))
		b := trace.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		observe(a, b)
	}
	dr, err := de.Rates(5000)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := se.Rates(5000)
	if err != nil {
		t.Fatal(err)
	}
	assertViewsEqual(t, dr, sr)

	dw, err := RatesBetweenSnapshots(db0, de.Snapshot(), 900)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := RatesBetweenSnapshots(sb0, se.Snapshot(), 900)
	if err != nil {
		t.Fatal(err)
	}
	assertViewsEqual(t, dw, sw)
}

func assertViewsEqual(t *testing.T, x, y RateView) {
	t.Helper()
	if x.N() != y.N() {
		t.Fatalf("N: %d vs %d", x.N(), y.N())
	}
	for a := 0; a < x.N(); a++ {
		for b := 0; b < x.N(); b++ {
			xr := x.Rate(trace.NodeID(a), trace.NodeID(b))
			yr := y.Rate(trace.NodeID(a), trace.NodeID(b))
			if xr != yr {
				t.Fatalf("Rate(%d,%d): %v vs %v", a, b, xr, yr)
			}
		}
	}
}

// TestSparseRatesBasics pins the SparseRates container semantics shared
// with RateMatrix: symmetry, overwrite, self-rate zero, out-of-range
// zero, ascending neighbor iteration.
func TestSparseRatesBasics(t *testing.T) {
	s, err := NewSparseRates(10)
	if err != nil {
		t.Fatal(err)
	}
	s.Set(3, 7, 0.5)
	s.Set(7, 2, 0.25)
	s.Set(3, 7, 0.125) // overwrite, not accumulate
	if got := s.Rate(3, 7); got != 0.125 {
		t.Fatalf("Rate(3,7) = %v", got)
	}
	if got := s.Rate(7, 3); got != 0.125 {
		t.Fatalf("Rate(7,3) = %v (not symmetric)", got)
	}
	if got := s.Rate(4, 4); got != 0 {
		t.Fatalf("self Rate = %v", got)
	}
	if got := s.Rate(3, 5); got != 0 {
		t.Fatalf("unset Rate = %v", got)
	}
	if got := s.Pairs(); got != 2 {
		t.Fatalf("Pairs = %d, want 2", got)
	}
	var order []trace.NodeID
	s.VisitNeighbors(7, func(b trace.NodeID, rate float64) {
		order = append(order, b)
		if rate <= 0 {
			t.Fatalf("visited zero rate at %d", b)
		}
	})
	if !reflect.DeepEqual(order, []trace.NodeID{2, 3}) {
		t.Fatalf("neighbors of 7 = %v, want [2 3]", order)
	}
	if s.Epoch() == 0 {
		t.Fatal("sparse store has zero epoch")
	}
}

// TestRateMatrixVisitNeighbors: the dense visitor must enumerate exactly
// the nonzero neighbors in ascending order, skipping self.
func TestRateMatrixVisitNeighbors(t *testing.T) {
	m, err := NewRateMatrix(6)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(2, 0, 1.0)
	m.Set(2, 5, 2.0)
	var got []trace.NodeID
	m.VisitNeighbors(2, func(b trace.NodeID, rate float64) { got = append(got, b) })
	if !reflect.DeepEqual(got, []trace.NodeID{0, 5}) {
		t.Fatalf("neighbors = %v, want [0 5]", got)
	}
}

// --- size guards and error paths ---

// TestDenseSizeGuard: every dense constructor must reject node counts
// beyond MaxDenseNodes with a SizeError instead of attempting the n²
// allocation.
func TestDenseSizeGuard(t *testing.T) {
	big := MaxDenseNodes + 1
	if _, err := NewRateMatrix(big); !isSizeError(err, big) {
		t.Fatalf("NewRateMatrix(%d): %v", big, err)
	}
	if _, err := NewRateStore(big, BackingDense); !isSizeError(err, big) {
		t.Fatalf("NewRateStore(%d, dense): %v", big, err)
	}
	if _, err := NewEstimatorBacking(big, 0, BackingDense); !isSizeError(err, big) {
		t.Fatalf("NewEstimatorBacking(%d, dense): %v", big, err)
	}
	tr := &trace.Trace{Name: "big", N: big, Duration: 1}
	if _, err := FromTraceBacking(tr, 0, 1, BackingDense); !isSizeError(err, big) {
		t.Fatalf("FromTraceBacking(%d, dense): %v", big, err)
	}
	// Auto backing must transparently go sparse at the same size.
	st, err := NewRateStore(big, BackingAuto)
	if err != nil {
		t.Fatalf("NewRateStore(%d, auto): %v", big, err)
	}
	if _, ok := st.(*SparseRates); !ok {
		t.Fatalf("auto backing above the dense ceiling produced %T", st)
	}
}

func isSizeError(err error, wantN int) bool {
	var se *SizeError
	return errors.As(err, &se) && se.N == wantN
}

// TestConstructorsRejectNonPositiveN covers the plain-error path below the
// ceiling.
func TestConstructorsRejectNonPositiveN(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := NewSparseRates(n); err == nil {
			t.Fatalf("NewSparseRates(%d) accepted", n)
		}
		if _, err := NewRateStore(n, BackingSparse); err == nil {
			t.Fatalf("NewRateStore(%d) accepted", n)
		}
		if _, err := NewEstimatorBacking(n, 0, BackingSparse); err == nil {
			t.Fatalf("NewEstimatorBacking(%d) accepted", n)
		}
	}
}

// TestRatesBetweenErrors covers the windowed-rebuild error paths.
func TestRatesBetweenErrors(t *testing.T) {
	good := make([]int, 9)
	if _, err := RatesBetween(good, good, 3, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := RatesBetween(good, good, 3, -5); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := RatesBetween(make([]int, 4), good, 3, 1); err == nil {
		t.Fatal("mismatched before length accepted")
	}
	if _, err := RatesBetween(good, make([]int, 4), 3, 1); err == nil {
		t.Fatal("mismatched after length accepted")
	}
	before := []int{0, 2, 2, 0}
	after := []int{0, 1, 1, 0}
	if _, err := RatesBetween(before, after, 2, 1); err == nil {
		t.Fatal("backwards counts accepted")
	}
}

// TestRatesBetweenSnapshotsErrors covers the backing-agnostic variant:
// non-positive window, node-count mismatch, mixed backings, and backwards
// counts in both directions (a key decremented and a key deleted).
func TestRatesBetweenSnapshotsErrors(t *testing.T) {
	mk := func(n int, b Backing, obs ...[2]int) CountSnapshot {
		e, err := NewEstimatorBacking(n, 0, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range obs {
			e.Observe(trace.NodeID(o[0]), trace.NodeID(o[1]))
		}
		return e.Snapshot()
	}
	sp := mk(4, BackingSparse, [2]int{0, 1})
	de := mk(4, BackingDense, [2]int{0, 1})
	if _, err := RatesBetweenSnapshots(sp, sp, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := RatesBetweenSnapshots(mk(3, BackingSparse), sp, 1); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
	if _, err := RatesBetweenSnapshots(de, sp, 1); err == nil {
		t.Fatal("dense before + sparse after accepted")
	}
	if _, err := RatesBetweenSnapshots(sp, de, 1); err == nil {
		t.Fatal("sparse before + dense after accepted")
	}
	// Counts only grow: a later snapshot with fewer observations at a
	// shared key, or a key that disappeared entirely, is corruption.
	two := mk(4, BackingSparse, [2]int{0, 1}, [2]int{0, 1})
	if _, err := RatesBetweenSnapshots(two, sp, 1); err == nil {
		t.Fatal("decremented pair accepted")
	}
	other := mk(4, BackingSparse, [2]int{2, 3})
	if _, err := RatesBetweenSnapshots(sp, other, 1); err == nil {
		t.Fatal("vanished pair accepted")
	}
	// The happy path still works and divides by the window.
	r, err := RatesBetweenSnapshots(sp, two, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Rate(0, 1); got != 0.25 {
		t.Fatalf("windowed rate = %v, want 0.25", got)
	}
}

// TestEstimatorErrorPaths covers Rates before any time elapsed and the
// Counts contract across backings.
func TestEstimatorErrorPaths(t *testing.T) {
	e, err := NewEstimatorBacking(5, 100, BackingSparse)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Rates(100); err == nil {
		t.Fatal("Rates at start time accepted")
	}
	if _, err := e.Rates(50); err == nil {
		t.Fatal("Rates before start time accepted")
	}
	if got := e.Counts(); got != nil {
		t.Fatalf("sparse Counts = %v, want nil", got)
	}
	d, err := NewEstimatorBacking(5, 100, BackingDense)
	if err != nil {
		t.Fatal(err)
	}
	d.Observe(1, 2)
	if got := d.Counts(); len(got) != 25 || got[1*5+2] != 1 || got[2*5+1] != 1 {
		t.Fatalf("dense Counts = %v", got)
	}
}

// TestFromTraceErrors covers the trace-conversion error paths.
func TestFromTraceErrors(t *testing.T) {
	tr := seededTrace(t, 10, 5)
	if _, err := FromTrace(tr, 5, 5); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := FromTrace(tr, 10, 2); err == nil {
		t.Fatal("inverted window accepted")
	}
	bad := &trace.Trace{Name: "bad", N: 0, Duration: 1}
	if _, err := FromTrace(bad, 0, 1); err == nil {
		t.Fatal("zero-node trace accepted")
	}
}

// TestEmptyView pins the fallback view used before any rates exist.
func TestEmptyView(t *testing.T) {
	v := EmptyView(7)
	if v.N() != 7 {
		t.Fatalf("N = %d", v.N())
	}
	if v.Rate(0, 1) != 0 {
		t.Fatal("nonzero rate from empty view")
	}
	if nv, ok := v.(NeighborVisitor); ok {
		nv.VisitNeighbors(0, func(b trace.NodeID, rate float64) {
			t.Fatalf("empty view visited neighbor %d", b)
		})
	}
	scores := Scores(v, 3600)
	for i, s := range scores {
		if s != 0 || math.IsNaN(s) {
			t.Fatalf("score[%d] = %v on empty view", i, s)
		}
	}
}

// TestBackingString pins the enum labels (they appear in logs and test
// names).
func TestBackingString(t *testing.T) {
	cases := map[Backing]string{BackingAuto: "auto", BackingDense: "dense", BackingSparse: "sparse"}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Fatalf("Backing(%d).String() = %q, want %q", b, got, want)
		}
	}
	if got := Backing(99).String(); got == "" {
		t.Fatal("unknown backing produced empty string")
	}
}
