package centrality

import (
	"math"
	"testing"
	"testing/quick"

	"freshcache/internal/mobility"
	"freshcache/internal/trace"
)

// mustMatrix builds a dense matrix for tests where construction cannot
// fail.
func mustMatrix(t *testing.T, n int) *RateMatrix {
	t.Helper()
	m, err := NewRateMatrix(n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRateMatrixSymmetric(t *testing.T) {
	m := mustMatrix(t, 4)
	m.Set(1, 3, 0.5)
	if m.Rate(1, 3) != 0.5 || m.Rate(3, 1) != 0.5 {
		t.Fatalf("asymmetric: %v vs %v", m.Rate(1, 3), m.Rate(3, 1))
	}
	if m.Rate(2, 2) != 0 {
		t.Fatal("self rate must be 0")
	}
	if m.Rate(0, 1) != 0 {
		t.Fatal("unset pair must be 0")
	}
}

func TestNewRateMatrixRejectsBadSizes(t *testing.T) {
	if _, err := NewRateMatrix(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewRateMatrix(-3); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestFromTrace(t *testing.T) {
	tr := &trace.Trace{N: 3, Duration: 100, Contacts: []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 11},
		{A: 0, B: 1, Start: 50, End: 51},
		{A: 1, B: 2, Start: 60, End: 61},
	}}
	m, err := FromTrace(tr, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Rate(0, 1); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("rate(0,1) = %v, want 0.02", got)
	}
	if got := m.Rate(1, 2); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("rate(1,2) = %v, want 0.01", got)
	}
	if m.Rate(0, 2) != 0 {
		t.Fatal("never-met pair must be 0")
	}
	if _, err := FromTrace(tr, 5, 5); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestEstimatorMatchesOracle(t *testing.T) {
	tr := &trace.Trace{N: 3, Duration: 100, Contacts: []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 11},
		{A: 0, B: 1, Start: 50, End: 51},
		{A: 1, B: 2, Start: 60, End: 61},
	}}
	e, err := NewEstimator(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tr.Contacts {
		e.Observe(c.A, c.B)
	}
	got, err := e.Rates(100)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FromTrace(tr, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if math.Abs(got.Rate(trace.NodeID(a), trace.NodeID(b))-want.Rate(trace.NodeID(a), trace.NodeID(b))) > 1e-12 {
				t.Fatalf("estimator disagrees with oracle at (%d,%d)", a, b)
			}
		}
	}
}

func TestEstimatorNoElapsedTime(t *testing.T) {
	e, err := NewEstimator(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Rates(100); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := e.Rates(50); err == nil {
		t.Fatal("negative window accepted")
	}
}

func TestScores(t *testing.T) {
	// Star topology: node 0 meets everyone, leaves meet only node 0.
	m := mustMatrix(t, 5)
	for i := 1; i < 5; i++ {
		m.Set(0, trace.NodeID(i), 0.1)
	}
	scores := Scores(m, 100)
	for i := 1; i < 5; i++ {
		if scores[0] <= scores[i] {
			t.Fatalf("hub score %v not above leaf %v", scores[0], scores[i])
		}
	}
	// Leaf scores are equal by symmetry.
	if math.Abs(scores[1]-scores[4]) > 1e-12 {
		t.Fatalf("leaf scores differ: %v vs %v", scores[1], scores[4])
	}
	// All scores in [0,1].
	for i, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v outside [0,1]", i, s)
		}
	}
}

func TestScoresSingleNode(t *testing.T) {
	scores := Scores(mustMatrix(t, 1), 100)
	if len(scores) != 1 || scores[0] != 0 {
		t.Fatalf("scores = %v", scores)
	}
}

func TestRank(t *testing.T) {
	ids := Rank([]float64{0.1, 0.9, 0.5, 0.9})
	want := []trace.NodeID{1, 3, 2, 0} // tie between 1 and 3 broken by ID
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("rank = %v, want %v", ids, want)
		}
	}
}

func TestSelectCachingNodesStar(t *testing.T) {
	m := mustMatrix(t, 5)
	for i := 1; i < 5; i++ {
		m.Set(0, trace.NodeID(i), 0.1)
	}
	sel, err := SelectCachingNodes(m, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != 0 {
		t.Fatalf("selected %v, want the hub 0", sel)
	}
}

func TestSelectCachingNodesCoversCommunities(t *testing.T) {
	// Two disjoint cliques {0,1,2} and {3,4,5}; selecting 2 nodes must
	// take one from each clique even though all six have equal centrality.
	m := mustMatrix(t, 6)
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}} {
		m.Set(trace.NodeID(pair[0]), trace.NodeID(pair[1]), 0.5)
	}
	sel, err := SelectCachingNodes(m, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	inFirst := func(id trace.NodeID) bool { return id <= 2 }
	if inFirst(sel[0]) == inFirst(sel[1]) {
		t.Fatalf("both selections %v in the same clique", sel)
	}
}

func TestSelectCachingNodesBounds(t *testing.T) {
	m := mustMatrix(t, 4)
	if _, err := SelectCachingNodes(m, 100, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SelectCachingNodes(m, 100, 5); err == nil {
		t.Fatal("k>n accepted")
	}
	sel, err := SelectCachingNodes(m, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Fatalf("selected %d, want 4", len(sel))
	}
}

// Property: selections are distinct, in range, and deterministic.
func TestSelectCachingNodesProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		g := &mobility.HeterogeneousExp{
			TraceName: "p", N: 15, Duration: 5 * mobility.Day,
			MeanRate: 4.0 / mobility.Day, RateShape: 0.7, PairFraction: 0.7, MeanContactDur: 60,
		}
		tr, err := g.Generate(seed)
		if err != nil {
			return false
		}
		m, err := FromTrace(tr, 0, tr.Duration)
		if err != nil {
			return false
		}
		k := 1 + int(kRaw%10)
		a, err := SelectCachingNodes(m, 3600, k)
		if err != nil {
			return false
		}
		b, err := SelectCachingNodes(m, 3600, k)
		if err != nil {
			return false
		}
		seen := make(map[trace.NodeID]bool)
		for i := range a {
			if a[i] != b[i] {
				return false // non-deterministic
			}
			if a[i] < 0 || int(a[i]) >= 15 || seen[a[i]] {
				return false
			}
			seen[a[i]] = true
		}
		return len(a) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionPrefersHubsOnCommunityTrace(t *testing.T) {
	g := &mobility.Community{
		TraceName: "c", N: 30, Duration: 20 * mobility.Day, Communities: 3,
		IntraRate: 6.0 / mobility.Day, InterRate: 0.5 / mobility.Day, RateShape: 0.8,
		InterPairFraction: 0.5, HubFraction: 0.1, HubBoost: 4, MeanContactDur: 120,
	}
	tr, err := g.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromTrace(tr, 0, tr.Duration)
	if err != nil {
		t.Fatal(err)
	}
	scores := Scores(m, 6*mobility.Hour)
	sel, err := SelectCachingNodes(m, 6*mobility.Hour, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every selected node should be in the top half by centrality.
	rank := Rank(scores)
	pos := make(map[trace.NodeID]int)
	for i, id := range rank {
		pos[id] = i
	}
	for _, id := range sel {
		if pos[id] >= 15 {
			t.Fatalf("selected node %d is rank %d of 30", id, pos[id])
		}
	}
}
