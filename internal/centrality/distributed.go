package centrality

import (
	"fmt"

	"freshcache/internal/trace"
)

// RateView is read-only access to pairwise contact-rate knowledge. The
// converged RateMatrix implements it, as do the per-node local views of
// DistributedEstimator — protocols written against RateView work with
// either perfect or gossip-propagated knowledge.
type RateView interface {
	// N returns the number of nodes.
	N() int
	// Rate returns the believed contact rate of the pair (a, b) in 1/s
	// (zero for unknown pairs and a == b).
	Rate(a, b trace.NodeID) float64
}

var _ RateView = (*RateMatrix)(nil)

// contactVector is an immutable snapshot of one node's direct-contact
// counts with every other node, taken at asOf. Views exchange these by
// pointer, so a merge is O(N) pointer/timestamp comparisons.
type contactVector struct {
	owner  trace.NodeID
	asOf   float64
	counts []int // counts[j] = contacts between owner and j up to asOf
}

// DistributedEstimator models how nodes actually learn contact rates in
// this paper family: each node counts its own contacts directly, and on
// every contact the two endpoints exchange everything they know
// transitively (each node's freshest snapshot of every other node's
// contact vector wins by timestamp). A node's view of a remote pair is
// therefore stale by however long gossip takes to reach it — exactly the
// imperfection whose impact the knowledge experiments measure.
type DistributedEstimator struct {
	n     int
	start float64
	// own[i] is node i's live direct-contact counts (mutable).
	own [][]int
	// ownDirty[i] marks that own[i] changed since its last snapshot.
	ownDirty []bool
	// ownSnap[i] is the latest immutable snapshot of own[i].
	ownSnap []*contactVector
	// carried[i][j] is node i's freshest known snapshot of node j's
	// vector (nil if i has never heard of j's contacts; carried[i][i]
	// is unused — a node reads its own live counts).
	carried [][]*contactVector
}

// NewDistributedEstimator creates the estimator for n nodes observing
// from startTime.
func NewDistributedEstimator(n int, startTime float64) *DistributedEstimator {
	if n <= 0 {
		panic(fmt.Sprintf("centrality: non-positive node count %d", n))
	}
	d := &DistributedEstimator{
		n:        n,
		start:    startTime,
		own:      make([][]int, n),
		ownDirty: make([]bool, n),
		ownSnap:  make([]*contactVector, n),
		carried:  make([][]*contactVector, n),
	}
	for i := range d.own {
		d.own[i] = make([]int, n)
		d.carried[i] = make([]*contactVector, n)
	}
	return d
}

// N returns the number of nodes.
func (d *DistributedEstimator) N() int { return d.n }

// snapshot returns an up-to-date immutable snapshot of node i's own
// vector, creating one only when the live counts changed.
func (d *DistributedEstimator) snapshot(i trace.NodeID, now float64) *contactVector {
	if d.ownSnap[i] == nil || d.ownDirty[i] {
		counts := make([]int, d.n)
		copy(counts, d.own[i])
		d.ownSnap[i] = &contactVector{owner: i, asOf: now, counts: counts}
		d.ownDirty[i] = false
	}
	return d.ownSnap[i]
}

// Observe records a contact between a and b at time now and performs the
// transitive knowledge exchange between them.
func (d *DistributedEstimator) Observe(a, b trace.NodeID, now float64) {
	d.own[a][b]++
	d.own[b][a]++
	d.ownDirty[a] = true
	d.ownDirty[b] = true

	// Each endpoint hands the other a fresh snapshot of its own vector…
	snapA := d.snapshot(a, now)
	snapB := d.snapshot(b, now)
	d.adopt(b, snapA)
	d.adopt(a, snapB)

	// …and everything it carries about third parties, freshest wins.
	for j := 0; j < d.n; j++ {
		va, vb := d.carried[a][j], d.carried[b][j]
		switch {
		case va == nil && vb == nil:
		case vb == nil || (va != nil && va.asOf > vb.asOf):
			d.carried[b][j] = va
		case va == nil || vb.asOf > va.asOf:
			d.carried[a][j] = vb
		}
	}
}

func (d *DistributedEstimator) adopt(node trace.NodeID, v *contactVector) {
	cur := d.carried[node][v.owner]
	if cur == nil || v.asOf > cur.asOf {
		d.carried[node][v.owner] = v
	}
}

// localView is node owner's read-only view of the network's rates.
type localView struct {
	d     *DistributedEstimator
	owner trace.NodeID
	now   float64
}

// View returns node owner's rate view as of `now`. Rates are believed
// counts over the full observation window; pairs the owner has never
// heard about read as zero.
func (d *DistributedEstimator) View(owner trace.NodeID, now float64) (RateView, error) {
	if owner < 0 || int(owner) >= d.n {
		return nil, fmt.Errorf("centrality: no node %d", owner)
	}
	if now <= d.start {
		return nil, fmt.Errorf("centrality: no observation time elapsed (now=%v, start=%v)", now, d.start)
	}
	return &localView{d: d, owner: owner, now: now}, nil
}

// N implements RateView.
func (v *localView) N() int { return v.d.n }

// Rate implements RateView: the owner's own pairs read its live counts;
// remote pairs read the freshest carried snapshot of either endpoint's
// vector.
func (v *localView) Rate(a, b trace.NodeID) float64 {
	if a == b {
		return 0
	}
	window := v.now - v.d.start
	if a == v.owner || b == v.owner {
		other := a
		if a == v.owner {
			other = b
		}
		return float64(v.d.own[v.owner][other]) / window
	}
	count := 0
	if va := v.d.carried[v.owner][a]; va != nil {
		count = va.counts[b]
	}
	if vb := v.d.carried[v.owner][b]; vb != nil && vb.counts[a] > count {
		count = vb.counts[a]
	}
	return float64(count) / window
}

// KnownFraction reports, for diagnostics, the fraction of other nodes the
// owner has (directly or transitively) heard about by now.
func (d *DistributedEstimator) KnownFraction(owner trace.NodeID) float64 {
	if d.n <= 1 {
		return 1
	}
	known := 0
	for j := 0; j < d.n; j++ {
		if trace.NodeID(j) == owner {
			continue
		}
		if d.carried[owner][j] != nil || d.own[owner][j] > 0 {
			known++
		}
	}
	return float64(known) / float64(d.n-1)
}
