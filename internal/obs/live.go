package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// Progress is an atomic snapshot of a sweep's cell dispositions, taken by
// the progress provider (expt.Ledger.Snapshot) under its own lock so live
// reporting never races the workers. Queued is the total number of grid
// cells the run will settle; Start is when execution began.
type Progress struct {
	Queued   int
	Executed int
	Failed   int
	Skipped  int
	Replayed int
	Retried  int
	Start    time.Time
}

// settled is the number of cells that have reached a terminal disposition.
func (p Progress) settled() int {
	return p.Executed + p.Failed + p.Skipped + p.Replayed
}

// progressEvent is the JSON body of one /live/progress SSE event: the raw
// dispositions plus the derived rate and ETA. The rate counts executed
// cells only — replayed cells are journal reads, orders of magnitude
// cheaper than simulation, so folding them in would make the ETA wildly
// optimistic on a resumed run. Remaining is likewise only the cells that
// still need real execution.
type progressEvent struct {
	Queued         int     `json:"queued"`
	Executed       int     `json:"executed"`
	Failed         int     `json:"failed"`
	Skipped        int     `json:"skipped"`
	Replayed       int     `json:"replayed"`
	Retried        int     `json:"retried"`
	Remaining      int     `json:"remaining"`
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	CellsPerSec    float64 `json:"cellsPerSec,omitempty"`
	ETASeconds     float64 `json:"etaSeconds,omitempty"`
	Done           bool    `json:"done"`
}

func makeProgressEvent(p Progress, now time.Time) progressEvent {
	ev := progressEvent{
		Queued:   p.Queued,
		Executed: p.Executed,
		Failed:   p.Failed,
		Skipped:  p.Skipped,
		Replayed: p.Replayed,
		Retried:  p.Retried,
	}
	ev.Remaining = p.Queued - p.settled()
	if ev.Remaining < 0 {
		ev.Remaining = 0
	}
	ev.Done = p.Queued > 0 && ev.Remaining == 0
	if !p.Start.IsZero() {
		ev.ElapsedSeconds = now.Sub(p.Start).Seconds()
	}
	if ev.ElapsedSeconds > 0 && p.Executed > 0 {
		ev.CellsPerSec = float64(p.Executed) / ev.ElapsedSeconds
		ev.ETASeconds = float64(ev.Remaining) / ev.CellsPerSec
	}
	return ev
}

// LiveServer is the scoped live-observability endpoint a run exposes under
// -http: sweep progress as SSE, the metric registry as OpenMetrics and
// expvar-style JSON, pprof, and a single-file HTML status page. Unlike the
// old expvar dump it owns its mux (no handlers leak onto
// http.DefaultServeMux) and its listener (Close shuts it down, so repeated
// run() calls in one process don't accumulate listeners).
type LiveServer struct {
	ln       net.Listener
	srv      *http.Server
	done     chan struct{}
	doneOnce sync.Once
	wg       sync.WaitGroup
}

// ServeLive starts the live endpoint on addr (e.g. "localhost:0"). reg may
// be nil (empty metric snapshots); progress may be nil (the progress
// routes report zeros). The caller must Close the returned server.
func ServeLive(addr string, reg *Registry, progress func() Progress) (*LiveServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if progress == nil {
		progress = func() Progress { return Progress{} }
	}
	s := &LiveServer{ln: ln, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(statusPageHTML))
	})
	mux.HandleFunc("/live/progress", func(w http.ResponseWriter, r *http.Request) {
		s.serveProgress(w, r, progress)
	})
	mux.HandleFunc("/live/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		WriteOpenMetrics(w, reg.Snapshot())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.srv.Serve(ln)
	}()
	return s, nil
}

// serveProgress streams progress snapshots as server-sent events until the
// sweep settles every queued cell, the client disconnects, or the server
// closes. ?interval=250ms overrides the default 1s cadence.
func (s *LiveServer) serveProgress(w http.ResponseWriter, r *http.Request, progress func() Progress) {
	interval := time.Second
	if q := r.URL.Query().Get("interval"); q != "" {
		if d, err := time.ParseDuration(q); err == nil && d >= 10*time.Millisecond {
			interval = d
		}
	}
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")

	tick := time.NewTicker(interval)
	defer tick.Stop()
	for id := 0; ; id++ {
		ev := makeProgressEvent(progress(), time.Now())
		b, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "id: %s\nevent: progress\ndata: %s\n\n",
			strconv.Itoa(id), b); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		if ev.Done {
			return
		}
		select {
		case <-tick.C:
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}

// Addr returns the bound listen address (useful with ":0").
func (s *LiveServer) Addr() string {
	return s.ln.Addr().String()
}

// Close shuts the endpoint down: in-flight SSE streams are released, the
// listener is closed, and Close blocks until the serve loop exits, so a
// subsequent run in the same process can bind the same address.
func (s *LiveServer) Close() error {
	s.doneOnce.Do(func() { close(s.done) })
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

// statusPageHTML is the single-file live status page: it subscribes to
// /live/progress over EventSource and polls /live/metrics, with no external
// assets so it renders from inside firewalled CI runners.
const statusPageHTML = `<!doctype html>
<meta charset="utf-8">
<title>freshcache sweep</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 52rem; color: #222; }
  h1 { font-size: 1.2rem; }
  #bar { height: 1.2rem; background: #eee; border-radius: 4px; overflow: hidden; margin: .6rem 0; }
  #fill { height: 100%; width: 0; background: #4a90d9; transition: width .4s; }
  table { border-collapse: collapse; margin: .8rem 0; }
  td, th { padding: .15rem .8rem .15rem 0; text-align: left; }
  pre { background: #f6f6f6; padding: .8rem; overflow: auto; max-height: 24rem; }
  .muted { color: #888; }
</style>
<h1>freshcache sweep <span id="state" class="muted">connecting…</span></h1>
<div id="bar"><div id="fill"></div></div>
<table>
  <tr><th>queued</th><th>executed</th><th>replayed</th><th>failed</th><th>skipped</th><th>retried</th><th>cells/s</th><th>ETA</th></tr>
  <tr><td id="queued">-</td><td id="executed">-</td><td id="replayed">-</td><td id="failed">-</td>
      <td id="skipped">-</td><td id="retried">-</td><td id="rate">-</td><td id="eta">-</td></tr>
</table>
<h1>metrics <span class="muted">(/live/metrics)</span></h1>
<pre id="metrics">loading…</pre>
<script>
  const $ = id => document.getElementById(id);
  const es = new EventSource('/live/progress?interval=1s');
  es.addEventListener('progress', e => {
    const p = JSON.parse(e.data);
    for (const k of ['queued','executed','replayed','failed','skipped','retried']) $(k).textContent = p[k];
    $('rate').textContent = p.cellsPerSec ? p.cellsPerSec.toFixed(2) : '-';
    $('eta').textContent = p.etaSeconds ? p.etaSeconds.toFixed(1) + 's' : '-';
    const settled = p.executed + p.replayed + p.failed + p.skipped;
    $('fill').style.width = p.queued ? (100 * settled / p.queued) + '%' : '0';
    $('state').textContent = p.done ? 'done' : 'running';
    if (p.done) es.close();
  });
  es.onerror = () => { $('state').textContent = 'disconnected'; };
  const refresh = () => fetch('/live/metrics').then(r => r.text()).then(t => { $('metrics').textContent = t; });
  refresh();
  setInterval(refresh, 2000);
</script>
`
