package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// liveProgress is a mutable progress source for tests.
type liveProgress struct {
	mu sync.Mutex
	p  Progress
}

func (l *liveProgress) set(p Progress) {
	l.mu.Lock()
	l.p = p
	l.mu.Unlock()
}

func (l *liveProgress) snapshot() Progress {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p
}

func TestLiveServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine/contacts").Add(7)
	reg.Gauge("sweep/queue_depth").Set(3)

	src := &liveProgress{}
	src.set(Progress{Queued: 4, Executed: 1, Replayed: 1, Start: time.Now().Add(-2 * time.Second)})

	srv, err := ServeLive("localhost:0", reg, src.snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	if body, ct := get("/live/metrics"); !strings.Contains(body, "freshcache_engine_contacts_total 7") ||
		!strings.Contains(body, "# EOF") || !strings.Contains(ct, "openmetrics") {
		t.Errorf("/live/metrics = %q (content-type %q)", body, ct)
	}
	if body, ct := get("/"); !strings.Contains(body, "/live/progress") || !strings.Contains(ct, "text/html") {
		t.Errorf("status page = %q (content-type %q)", body, ct)
	}
	if body, _ := get("/debug/vars"); !strings.Contains(body, "engine/contacts") {
		t.Errorf("/debug/vars = %q", body)
	}
	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}

	resp, err := http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}

// TestLiveProgressSSE drives the SSE stream: the first event reflects the
// in-flight dispositions, and once every queued cell settles the stream
// emits done:true and ends.
func TestLiveProgressSSE(t *testing.T) {
	src := &liveProgress{}
	src.set(Progress{Queued: 3, Executed: 1, Replayed: 1, Start: time.Now().Add(-time.Second)})

	srv, err := ServeLive("localhost:0", nil, src.snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/live/progress?interval=20ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}

	events := make(chan progressEvent, 16)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev progressEvent
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) == nil {
				events <- ev
			}
		}
	}()

	first, ok := <-events
	if !ok {
		t.Fatal("stream closed before first event")
	}
	if first.Queued != 3 || first.Executed != 1 || first.Replayed != 1 || first.Remaining != 1 || first.Done {
		t.Fatalf("first event = %+v", first)
	}
	if first.CellsPerSec <= 0 || first.ETASeconds <= 0 {
		t.Fatalf("first event missing rate/ETA: %+v", first)
	}

	src.set(Progress{Queued: 3, Executed: 2, Replayed: 1, Start: time.Now().Add(-time.Second)})
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("stream closed before done event")
			}
			if ev.Done {
				if ev.Remaining != 0 {
					t.Fatalf("done event = %+v", ev)
				}
				return
			}
		case <-deadline:
			t.Fatal("no done event within deadline")
		}
	}
}

// TestLiveServerClose: Close releases an in-flight SSE stream and frees
// the listener so the address can be rebound — the serveDebug leak this
// replaces kept listeners open across run() calls.
func TestLiveServerClose(t *testing.T) {
	src := &liveProgress{}
	src.set(Progress{Queued: 10, Start: time.Now()})
	srv, err := ServeLive("localhost:0", nil, src.snapshot)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	resp, err := http.Get("http://" + addr + "/live/progress?interval=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	closed := make(chan struct{})
	go func() {
		io.Copy(io.Discard, resp.Body)
		close(closed)
	}()

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream not released by Close")
	}

	srv2, err := ServeLive(addr, nil, nil)
	if err != nil {
		t.Fatalf("rebind after Close: %v", err)
	}
	srv2.Close()
}

// TestMakeProgressEvent pins the ETA semantics of the progress hook:
// replayed cells neither count toward the rate nor remain in the ETA —
// only executable work does.
func TestMakeProgressEvent(t *testing.T) {
	now := time.Now()
	p := Progress{Queued: 10, Executed: 2, Replayed: 4, Failed: 1, Skipped: 1, Start: now.Add(-2 * time.Second)}
	ev := makeProgressEvent(p, now)
	if ev.Remaining != 2 {
		t.Errorf("Remaining = %d, want 2 (10 queued - 8 settled)", ev.Remaining)
	}
	// Rate is executed-only: 2 cells / 2s = 1 cell/s, so ETA 2s. Counting
	// the 4 replayed cells would claim 3 cells/s and a bogus ETA.
	if ev.CellsPerSec < 0.9 || ev.CellsPerSec > 1.1 {
		t.Errorf("CellsPerSec = %v, want ~1 (executed-only)", ev.CellsPerSec)
	}
	if ev.ETASeconds < 1.8 || ev.ETASeconds > 2.2 {
		t.Errorf("ETASeconds = %v, want ~2", ev.ETASeconds)
	}
	if ev.Done {
		t.Error("Done with 2 cells remaining")
	}

	done := makeProgressEvent(Progress{Queued: 4, Executed: 2, Replayed: 2, Start: now.Add(-time.Second)}, now)
	if !done.Done || done.Remaining != 0 {
		t.Errorf("settled grid: %+v, want done", done)
	}

	empty := makeProgressEvent(Progress{}, now)
	if empty.Done || empty.CellsPerSec != 0 || empty.ETASeconds != 0 {
		t.Errorf("zero progress: %+v", empty)
	}
}
