package obs

import (
	"io"
	"sort"
	"sync"

	"freshcache/internal/metrics"
)

// Config controls trace collection for an Observer's runs.
type Config struct {
	// SampleEvery keeps one event in every SampleEvery emitted (1 = keep
	// all). Raise it for million-contact runs.
	SampleEvery int
	// BufferCap bounds the per-run ring buffer (DefaultBufferCap if 0).
	BufferCap int
	// Lineage enables causal span collection for each run; RunLineage
	// returns nil when it is false.
	Lineage bool
	// LineageCap bounds per-run span storage (DefaultLineageCap if 0).
	LineageCap int
	// TimelineTick enables simulated-time telemetry sampling on the given
	// sim-time period in seconds; 0 disables (RunTimeline returns nil) and
	// a negative value asks the engine to pick a default tick.
	TimelineTick float64
	// TimelineCap bounds per-run point storage (DefaultTimelineCap if 0).
	TimelineCap int
}

// Observer is the sweep/experiment-level sink: it hands out per-run
// traces, collects the committed ones, rolls per-scheme result histograms
// up, and tracks sweep progress. All methods are safe for concurrent use
// and no-ops on a nil receiver, so `-obs` off means passing nil around.
//
// Determinism contract: each run writes only to its own RunTrace (no
// cross-run interleaving), and flushes order committed traces by label
// with run order inside each label preserved. Output bytes therefore do
// not depend on how many sweep workers ran, only on the set of runs.
type Observer struct {
	cfg Config
	// Metrics is the process-wide registry backing the observer's
	// counters; exported so CLIs can snapshot it into manifests/expvar.
	Metrics *Registry

	mu        sync.Mutex
	traces    []*RunTrace
	lineages  []*Lineage
	timelines []*Timeline
	scheme    map[string]*schemeRollup

	cellsQueued   *Counter
	cellsDone     *Counter
	cellsFailed   *Counter
	cellsSkipped  *Counter
	cellsReplayed *Counter
	queueDepth    *Gauge
}

type schemeRollup struct {
	runs          int
	transmissions int
	deliveries    int
	generated     int
	delayHist     *metrics.Hist
	ageHist       *metrics.Hist
}

// NewObserver returns an observer with the given trace config and a fresh
// registry.
func NewObserver(cfg Config) *Observer {
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	if cfg.BufferCap < 1 {
		cfg.BufferCap = DefaultBufferCap
	}
	reg := NewRegistry()
	return &Observer{
		cfg:           cfg,
		Metrics:       reg,
		scheme:        make(map[string]*schemeRollup),
		cellsQueued:   reg.Counter("sweep/cells_queued"),
		cellsDone:     reg.Counter("sweep/cells_done"),
		cellsFailed:   reg.Counter("sweep/cells_failed"),
		cellsSkipped:  reg.Counter("sweep/cells_skipped"),
		cellsReplayed: reg.Counter("sweep/cells_replayed"),
		queueDepth:    reg.Gauge("sweep/queue_depth"),
	}
}

// Registry returns the observer's metric registry (nil for a nil
// observer), so call sites can thread it without their own nil checks.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Run returns a fresh trace for one labelled run. The caller owns it until
// Commit.
func (o *Observer) Run(label string) *RunTrace {
	if o == nil {
		return nil
	}
	return NewRunTrace(label, o.cfg.SampleEvery, o.cfg.BufferCap)
}

// Commit hands a finished run's trace back to the observer.
func (o *Observer) Commit(t *RunTrace) {
	if o == nil || t == nil {
		return
	}
	o.mu.Lock()
	o.traces = append(o.traces, t)
	o.mu.Unlock()
}

// RunLineage returns a fresh lineage collector for one labelled run, or
// nil when lineage is off — scheme instrumentation is nil-safe either way.
func (o *Observer) RunLineage(label, scheme string) *Lineage {
	if o == nil || !o.cfg.Lineage {
		return nil
	}
	return NewLineage(label, scheme, o.cfg.LineageCap)
}

// CommitLineage hands a finished run's lineage back to the observer.
func (o *Observer) CommitLineage(l *Lineage) {
	if o == nil || l == nil {
		return
	}
	o.mu.Lock()
	o.lineages = append(o.lineages, l)
	o.mu.Unlock()
}

// RunTimeline returns a fresh timeline for one labelled run, or nil when
// timeline sampling is off (TimelineTick == 0).
func (o *Observer) RunTimeline(label string) *Timeline {
	if o == nil || o.cfg.TimelineTick == 0 {
		return nil
	}
	return NewTimeline(label, o.cfg.TimelineCap)
}

// LineageEnabled reports whether lineage collection is on.
func (o *Observer) LineageEnabled() bool {
	return o != nil && o.cfg.Lineage
}

// TimelineTick returns the configured sim-time sampling period (0 = off,
// negative = engine default).
func (o *Observer) TimelineTick() float64 {
	if o == nil {
		return 0
	}
	return o.cfg.TimelineTick
}

// CommitTimeline hands a finished run's timeline back to the observer.
func (o *Observer) CommitTimeline(tl *Timeline) {
	if o == nil || tl == nil {
		return
	}
	o.mu.Lock()
	o.timelines = append(o.timelines, tl)
	o.mu.Unlock()
}

// CellQueued notes that n sweep cells were enqueued.
func (o *Observer) CellQueued(n int) {
	if o == nil {
		return
	}
	o.cellsQueued.Add(int64(n))
	o.updateQueueDepth()
}

// CellDone notes that one sweep cell ran to completion. Cells that failed,
// were drained after a failure, or were replayed from a checkpoint journal
// are reported via CellFailed/CellSkipped/CellReplayed instead, so the
// counters never overcount actual work.
func (o *Observer) CellDone() {
	if o == nil {
		return
	}
	o.cellsDone.Inc()
	o.updateQueueDepth()
}

// CellFailed notes that one sweep cell failed permanently (after retries).
func (o *Observer) CellFailed() {
	if o == nil {
		return
	}
	o.cellsFailed.Inc()
	o.updateQueueDepth()
}

// CellSkipped notes that one sweep cell was drained without running
// because an earlier cell already failed the sweep.
func (o *Observer) CellSkipped() {
	if o == nil {
		return
	}
	o.cellsSkipped.Inc()
	o.updateQueueDepth()
}

// CellReplayed notes that one sweep cell's result was replayed from a
// checkpoint journal instead of being executed.
func (o *Observer) CellReplayed() {
	if o == nil {
		return
	}
	o.cellsReplayed.Inc()
	o.updateQueueDepth()
}

// updateQueueDepth recomputes the queue-depth gauge as queued minus every
// terminal disposition (done, failed, skipped, replayed).
func (o *Observer) updateQueueDepth() {
	settled := o.cellsDone.Value() + o.cellsFailed.Value() +
		o.cellsSkipped.Value() + o.cellsReplayed.Value()
	o.queueDepth.Set(float64(o.cellsQueued.Value() - settled))
}

// RecordRun folds one run's aggregated result into the per-scheme
// roll-ups.
func (o *Observer) RecordRun(scheme string, r metrics.Result) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	ru := o.scheme[scheme]
	if ru == nil {
		ru = &schemeRollup{
			delayHist: metrics.NewHist(metrics.DelayBuckets()),
			ageHist:   metrics.NewHist(metrics.DelayBuckets()),
		}
		o.scheme[scheme] = ru
	}
	ru.runs++
	ru.transmissions += r.Transmissions
	ru.deliveries += r.Deliveries
	ru.generated += r.VersionsGenerated
	ru.delayHist.Merge(r.DeliveryDelayHist)
	ru.ageHist.Merge(r.RefreshAgeHist)
}

// SchemeRollup is the published per-scheme roll-up: merged result
// histograms plus the cost/benefit totals reports need (transmissions per
// delivered refresh, per generated version).
type SchemeRollup struct {
	Scheme            string        `json:"scheme"`
	Runs              int           `json:"runs"`
	Transmissions     int           `json:"transmissions"`
	Deliveries        int           `json:"deliveries"`
	VersionsGenerated int           `json:"versionsGenerated"`
	DeliveryDelayHist *metrics.Hist `json:"deliveryDelayHist,omitempty"`
	RefreshAgeHist    *metrics.Hist `json:"refreshAgeHist,omitempty"`
}

// SchemeRollups returns the per-scheme roll-ups in ascending scheme order.
func (o *Observer) SchemeRollups() []SchemeRollup {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]SchemeRollup, 0, len(o.scheme))
	for name, ru := range o.scheme {
		out = append(out, SchemeRollup{
			Scheme:            name,
			Runs:              ru.runs,
			Transmissions:     ru.transmissions,
			Deliveries:        ru.deliveries,
			VersionsGenerated: ru.generated,
			DeliveryDelayHist: ru.delayHist.Clone(),
			RefreshAgeHist:    ru.ageHist.Clone(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scheme < out[j].Scheme })
	return out
}

// sortedTraces returns the committed traces ordered by label (stable, so
// multiple commits under one label keep commit order — only meaningful
// when labels are unique, which the expt layer guarantees).
func (o *Observer) sortedTraces() []*RunTrace {
	o.mu.Lock()
	ts := make([]*RunTrace, len(o.traces))
	copy(ts, o.traces)
	o.mu.Unlock()
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].Label < ts[j].Label })
	return ts
}

// EventStats sums trace, lineage and timeline volume across committed
// runs.
type EventStats struct {
	Runs     int    `json:"runs"`
	Seen     uint64 `json:"eventsSeen"`
	Buffered uint64 `json:"eventsBuffered"`
	Dropped  uint64 `json:"eventsDropped"`
	// Lineage span volume (0 unless -lineage was on).
	Spans        uint64 `json:"spans,omitempty"`
	SpansDropped uint64 `json:"spansDropped,omitempty"`
	// Timeline point volume (0 unless -timeline-tick was on).
	TimelinePoints  uint64 `json:"timelinePoints,omitempty"`
	TimelineDropped uint64 `json:"timelineDropped,omitempty"`
}

// Stats reports the committed trace volume.
func (o *Observer) Stats() EventStats {
	var s EventStats
	if o == nil {
		return s
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, t := range o.traces {
		s.Runs++
		s.Seen += t.Seen()
		s.Buffered += uint64(t.Len())
		s.Dropped += t.Dropped()
	}
	for _, l := range o.lineages {
		s.Spans += uint64(l.Len())
		s.SpansDropped += l.Dropped()
	}
	for _, tl := range o.timelines {
		s.TimelinePoints += uint64(tl.Len())
		s.TimelineDropped += tl.Dropped()
	}
	return s
}

// WriteJSONL flushes every committed trace as JSON Lines, runs in sorted
// label order, events in emission order within a run.
func (o *Observer) WriteJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	for _, t := range o.sortedTraces() {
		if err := t.WriteJSONL(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace flushes every committed trace as one Chrome trace-event
// JSON document (one pid per run, sorted label order).
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o == nil {
		return writeChromeTraces(w, nil)
	}
	return writeChromeTraces(w, o.sortedTraces())
}

// sortedLineages returns the committed lineages ordered by label.
func (o *Observer) sortedLineages() []*Lineage {
	o.mu.Lock()
	ls := make([]*Lineage, len(o.lineages))
	copy(ls, o.lineages)
	o.mu.Unlock()
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Label < ls[j].Label })
	return ls
}

// WriteLineageJSONL flushes every committed lineage as JSON Lines, runs in
// sorted label order, spans in creation order within a run — the same
// determinism contract as WriteJSONL.
func (o *Observer) WriteLineageJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	for _, l := range o.sortedLineages() {
		if err := l.WriteJSONL(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteTimelineCSV flushes every committed timeline as one CSV document
// (single header, runs in sorted label order, points in sampling order
// within a run).
func (o *Observer) WriteTimelineCSV(w io.Writer) error {
	if o == nil {
		return nil
	}
	if _, err := io.WriteString(w, TimelineCSVHeader+"\n"); err != nil {
		return err
	}
	o.mu.Lock()
	tls := make([]*Timeline, len(o.timelines))
	copy(tls, o.timelines)
	o.mu.Unlock()
	sort.SliceStable(tls, func(i, j int) bool { return tls[i].Label < tls[j].Label })
	for _, tl := range tls {
		if err := tl.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}
