package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// WriteOpenMetrics renders a registry snapshot in OpenMetrics text format
// (the Prometheus exposition superset): sorted metric names, counters with
// the mandatory `_total` suffix, histograms as cumulative `_bucket{le=...}`
// series plus `_sum`/`_count`, terminated by `# EOF`. Metric names are
// prefixed `freshcache_` and sanitized (every non [a-zA-Z0-9_] byte maps
// to '_'), so registry names like "sweep/cells_done" become
// "freshcache_sweep_cells_done".
//
// The snapshot should be taken after all runs finish: the registry is
// process-wide, so mid-sweep values depend on worker scheduling, but the
// final totals are deterministic.
func WriteOpenMetrics(w io.Writer, snap RegistrySnapshot) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		om := openMetricsName(name)
		writeLine(bw, "# TYPE ", om, " counter")
		bw.WriteString(om)
		bw.WriteString("_total ")
		bw.WriteString(strconv.FormatInt(snap.Counters[name], 10))
		bw.WriteByte('\n')
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		om := openMetricsName(name)
		writeLine(bw, "# TYPE ", om, " gauge")
		bw.WriteString(om)
		bw.WriteByte(' ')
		bw.WriteString(formatOMFloat(snap.Gauges[name]))
		bw.WriteByte('\n')
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		om := openMetricsName(name)
		writeLine(bw, "# TYPE ", om, " histogram")
		cum := uint64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			bw.WriteString(om)
			bw.WriteString(`_bucket{le="`)
			bw.WriteString(formatOMFloat(b))
			bw.WriteString(`"} `)
			bw.WriteString(strconv.FormatUint(cum, 10))
			bw.WriteByte('\n')
		}
		bw.WriteString(om)
		bw.WriteString(`_bucket{le="+Inf"} `)
		bw.WriteString(strconv.FormatUint(h.Total, 10))
		bw.WriteByte('\n')
		bw.WriteString(om)
		bw.WriteString("_sum ")
		bw.WriteString(formatOMFloat(h.Sum))
		bw.WriteByte('\n')
		bw.WriteString(om)
		bw.WriteString("_count ")
		bw.WriteString(strconv.FormatUint(h.Total, 10))
		bw.WriteByte('\n')
	}

	bw.WriteString("# EOF\n")
	return bw.Flush()
}

func writeLine(bw *bufio.Writer, parts ...string) {
	for _, p := range parts {
		bw.WriteString(p)
	}
	bw.WriteByte('\n')
}

// openMetricsName prefixes and sanitizes a registry metric name.
func openMetricsName(name string) string {
	out := make([]byte, 0, len(name)+11)
	out = append(out, "freshcache_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// formatOMFloat renders a float the way the rest of the obs exports do:
// strconv 'g' shortest round-trip, byte-deterministic.
func formatOMFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
