package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"
)

// Manifest records everything needed to reproduce a results file: the
// exact command and configuration, the seeds, the toolchain and source
// revision, and the run's resource usage. One is written next to each
// run's CSVs as manifest.json.
type Manifest struct {
	Schema    string `json:"schema"` // "freshcache-manifest/1"
	Tool      string `json:"tool"`   // "experiments" | "freshsim"
	CreatedAt string `json:"createdAt"`

	Command []string `json:"command,omitempty"`

	GoVersion   string `json:"goVersion"`
	GitRevision string `json:"gitRevision,omitempty"`
	GitModified bool   `json:"gitModified,omitempty"`
	OS          string `json:"os"`
	Arch        string `json:"arch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	Seed   int64          `json:"seed"`
	Config map[string]any `json:"config,omitempty"`

	Outputs []string `json:"outputs,omitempty"`

	WallClockSeconds float64 `json:"wallClockSeconds"`
	CPUSeconds       float64 `json:"cpuSeconds,omitempty"`
	MaxRSSBytes      int64   `json:"maxRSSBytes,omitempty"`

	Metrics     *RegistrySnapshot `json:"metrics,omitempty"`
	Events      *EventStats       `json:"events,omitempty"`
	SchemeStats []SchemeRollup    `json:"schemeRollups,omitempty"`

	// Failures is the roster of sweep cells that failed permanently (after
	// retries) during the run — populated by degradation-tolerant runs
	// (-keep-going) so partial tables are auditable.
	Failures []CellFailure `json:"cellFailures,omitempty"`
	// Resume records checkpoint/resume provenance: which journal the run
	// wrote (or replayed), and how many cells were replayed vs executed.
	Resume *ResumeSummary `json:"resume,omitempty"`
}

// CellFailure identifies one sweep cell that failed permanently, by its
// grid coordinates, with the final error and the number of attempts made.
type CellFailure struct {
	Experiment string `json:"experiment"`
	Preset     string `json:"preset"`
	Point      int    `json:"point"`
	Scheme     string `json:"scheme"`
	Replicate  int    `json:"replicate"`
	Error      string `json:"error"`
	Attempts   int    `json:"attempts"`
}

// CellCost attributes one sweep cell's execution cost: wall time always,
// allocation deltas (runtime.ReadMemStats before/after the cell) only when
// the sweep ran on a single worker — cross-worker interference would make
// them noise otherwise — and the attempts the retry policy spent. Cost
// records live in the cross-run results store, not the manifest.
type CellCost struct {
	Experiment  string  `json:"experiment"`
	Preset      string  `json:"preset"`
	Point       int     `json:"point"`
	Scheme      string  `json:"scheme"`
	Replicate   int     `json:"replicate"`
	WallSeconds float64 `json:"wallSeconds"`
	Mallocs     uint64  `json:"mallocs,omitempty"`
	AllocBytes  uint64  `json:"allocBytes,omitempty"`
	Attempts    int     `json:"attempts"`
}

// ResumeSummary records a run's checkpoint/resume provenance: the journal
// path and the per-disposition cell counts. Replayed + executed + failed +
// skipped covers every grid cell of the run's sweeps.
type ResumeSummary struct {
	Journal       string `json:"journal,omitempty"`
	Resumed       bool   `json:"resumed,omitempty"`
	CellsReplayed int    `json:"cellsReplayed"`
	CellsExecuted int    `json:"cellsExecuted"`
	CellsFailed   int    `json:"cellsFailed"`
	CellsSkipped  int    `json:"cellsSkipped"`
}

// ManifestSchema is the current manifest schema identifier.
const ManifestSchema = "freshcache-manifest/1"

// NewManifest returns a manifest pre-filled with build/runtime provenance.
func NewManifest(tool string) *Manifest {
	m := &Manifest{
		Schema:     ManifestSchema,
		Tool:       tool,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRevision = s.Value
			case "vcs.modified":
				m.GitModified = s.Value == "true"
			}
		}
	}
	return m
}

// FinishResources stamps the manifest with elapsed wall time since start
// and the process's accumulated CPU time and peak RSS (where the platform
// exposes them).
func (m *Manifest) FinishResources(start time.Time) {
	m.WallClockSeconds = time.Since(start).Seconds()
	cpu, rss := readRusage()
	m.CPUSeconds = cpu
	m.MaxRSSBytes = rss
}

// Write marshals the manifest (indented, sorted keys) to path.
func (m *Manifest) Write(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// WriteToolManifest writes the minimal provenance manifest the auxiliary
// trace tools emit under their -obs flag: the exact command line, seed,
// output files, toolchain and resource usage — enough to reproduce an
// artifact, without the simulation-only sections (metrics, events,
// scheme roll-ups). The directory is created if needed.
func WriteToolManifest(dir, tool string, args []string, seed int64, outputs []string, start time.Time) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m := NewManifest(tool)
	m.Command = append([]string{tool}, args...)
	m.Seed = seed
	m.Outputs = outputs
	m.FinishResources(start)
	return m.Write(filepath.Join(dir, "manifest.json"))
}

// ReadManifest parses a manifest.json previously written by Write.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("manifest %s: unsupported schema %q (want %q)", path, m.Schema, ManifestSchema)
	}
	return &m, nil
}
