package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"freshcache/internal/metrics"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter recorded")
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge recorded")
	}
	h := r.Histogram("z", DepthBuckets())
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram recorded")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatalf("nil registry snapshot non-empty: %+v", s)
	}

	var tr *RunTrace
	tr.Emit(Event{Kind: KindContactBegin})
	if tr.Seen() != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil trace recorded")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil trace JSONL: %v %q", err, buf.String())
	}

	var o *Observer
	if o.Registry() != nil || o.Run("x") != nil {
		t.Fatal("nil observer handed out state")
	}
	o.Commit(nil)
	o.CellQueued(3)
	o.CellDone()
	o.CellFailed()
	o.CellSkipped()
	o.CellReplayed()
	o.RecordRun("s", metrics.Result{})
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatalf("nil observer JSONL: %v", err)
	}
	buf.Reset()
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil observer chrome: %v", err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil observer chrome not valid JSON: %v (%q)", err, buf.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve the shared handles inside the goroutine so handle
			// creation itself races too.
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", DepthBuckets())
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	h := r.Histogram("h", nil)
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	s := h.Snapshot()
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Total || s.Total != workers*per {
		t.Fatalf("snapshot counts sum %d, total %d", sum, s.Total)
	}
	// Sum of 8×(0..99 mod) = 8 × 10 × 4950.
	want := float64(workers) * 10 * 4950
	if s.Sum != want {
		t.Fatalf("snapshot sum = %v, want %v", s.Sum, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 99, 100, 1e6} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 1} // <=1, <=10, <=100, overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

func TestRunTraceSampling(t *testing.T) {
	tr := NewRunTrace("r", 3, 0)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{T: float64(i), Kind: KindGenerate, A: -1, B: -1, Item: -1, Ver: -1})
	}
	if tr.Seen() != 10 {
		t.Fatalf("seen = %d", tr.Seen())
	}
	if tr.Len() != 4 { // events 0, 3, 6, 9
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	for i, ev := range tr.Events() {
		if ev.T != float64(3*i) {
			t.Fatalf("sampled event %d at t=%v, want %v", i, ev.T, float64(3*i))
		}
	}
}

func TestRunTraceRingOverwrite(t *testing.T) {
	tr := NewRunTrace("r", 1, 4)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{T: float64(i), A: -1, B: -1, Item: -1, Ver: -1})
	}
	if tr.Len() != 4 || tr.Seen() != 6 || tr.Dropped() != 2 {
		t.Fatalf("len=%d seen=%d dropped=%d", tr.Len(), tr.Seen(), tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if ev.T != float64(i+2) { // oldest two overwritten
			t.Fatalf("ring event %d at t=%v, want %v", i, ev.T, float64(i+2))
		}
	}
}

func TestJSONLBytes(t *testing.T) {
	tr := NewRunTrace("E2/reality-like/p00/hierarchical/r0", 1, 0)
	tr.Emit(Event{T: 1.5, Kind: KindContactBegin, A: 3, B: 7, Item: -1, Ver: -1, Val: 120})
	tr.Emit(Event{T: 2, Kind: KindCacheMiss, A: 4, B: -1, Item: 1, Ver: -1})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"run":"E2/reality-like/p00/hierarchical/r0","t":1.5,"kind":"contact_begin","a":3,"b":7,"val":120}
{"run":"E2/reality-like/p00/hierarchical/r0","t":2,"kind":"cache_miss","a":4,"item":1}
`
	if buf.String() != want {
		t.Fatalf("JSONL bytes:\n got %q\nwant %q", buf.String(), want)
	}
	// Every line must also be standalone valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if KindFromString(m["kind"].(string)) == KindUnknown {
			t.Fatalf("line %q has unknown kind", line)
		}
	}
}

func TestKindRoundTrip(t *testing.T) {
	for k := KindUnknown + 1; k < kindCount; k++ {
		if got := KindFromString(k.String()); got != k {
			t.Fatalf("kind %d (%s) round-tripped to %d", k, k, got)
		}
	}
	if KindFromString("no_such_kind") != KindUnknown {
		t.Fatal("bad name resolved")
	}
}

func TestObserverFlushOrderAndDeterminism(t *testing.T) {
	build := func(commitOrder []string) ([]byte, []byte) {
		o := NewObserver(Config{})
		byLabel := make(map[string]*RunTrace)
		for _, label := range []string{"a", "b", "c"} {
			tr := o.Run(label)
			tr.Emit(Event{T: 1, Kind: KindContactBegin, A: 0, B: 1, Item: -1, Ver: -1, Val: 10})
			tr.Emit(Event{T: 11, Kind: KindContactEnd, A: 0, B: 1, Item: -1, Ver: -1})
			byLabel[label] = tr
		}
		for _, label := range commitOrder {
			o.Commit(byLabel[label])
		}
		var jl, ct bytes.Buffer
		if err := o.WriteJSONL(&jl); err != nil {
			t.Fatal(err)
		}
		if err := o.WriteChromeTrace(&ct); err != nil {
			t.Fatal(err)
		}
		return jl.Bytes(), ct.Bytes()
	}
	jl1, ct1 := build([]string{"a", "b", "c"})
	jl2, ct2 := build([]string{"c", "a", "b"}) // a different worker interleaving
	if !bytes.Equal(jl1, jl2) {
		t.Fatalf("JSONL depends on commit order:\n%q\n%q", jl1, jl2)
	}
	if !bytes.Equal(ct1, ct2) {
		t.Fatalf("Chrome trace depends on commit order:\n%q\n%q", ct1, ct2)
	}
}

func TestObserverConcurrent(t *testing.T) {
	o := NewObserver(Config{SampleEvery: 2})
	const runs = 16
	o.CellQueued(runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := o.Run(string(rune('a' + i)))
			for j := 0; j < 100; j++ {
				tr.Emit(Event{T: float64(j), Kind: KindGenerate, A: -1, B: -1, Item: -1, Ver: -1})
			}
			o.Commit(tr)
			h := metrics.NewHist(metrics.DelayBuckets())
			h.Observe(float64(i))
			o.RecordRun("scheme", metrics.Result{DeliveryDelayHist: h, RefreshAgeHist: h.Clone()})
			o.CellDone()
		}()
	}
	wg.Wait()
	st := o.Stats()
	if st.Runs != runs || st.Seen != runs*100 || st.Buffered != runs*50 {
		t.Fatalf("stats: %+v", st)
	}
	ru := o.SchemeRollups()
	if len(ru) != 1 || ru[0].Runs != runs || ru[0].DeliveryDelayHist.Total != runs {
		t.Fatalf("rollups: %+v", ru)
	}
	reg := o.Registry()
	if reg.Counter("sweep/cells_done").Value() != runs {
		t.Fatalf("cells_done = %d", reg.Counter("sweep/cells_done").Value())
	}
	if reg.Gauge("sweep/queue_depth").Value() != 0 {
		t.Fatalf("queue depth = %v", reg.Gauge("sweep/queue_depth").Value())
	}
}

// TestObserverCellDispositions: every cell disposition lands in its own
// counter and all four drain the queue-depth gauge — a skipped or failed
// cell is not "done", but it is no longer queued either.
func TestObserverCellDispositions(t *testing.T) {
	o := NewObserver(Config{})
	o.CellQueued(10)
	for i := 0; i < 3; i++ {
		o.CellDone()
	}
	for i := 0; i < 2; i++ {
		o.CellReplayed()
	}
	o.CellFailed()
	o.CellSkipped()
	reg := o.Registry()
	for name, want := range map[string]int64{
		"sweep/cells_done":     3,
		"sweep/cells_replayed": 2,
		"sweep/cells_failed":   1,
		"sweep/cells_skipped":  1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("sweep/queue_depth").Value(); got != 3 {
		t.Fatalf("queue depth = %v, want 3 (10 queued − 7 settled)", got)
	}
}

// chromeEvent is the schema every Chrome trace event must satisfy.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Dur  *float64       `json:"dur"`
	Args map[string]any `json:"args"`
}

func TestChromeTraceSchema(t *testing.T) {
	o := NewObserver(Config{})
	tr := o.Run("E2/x/p00/hier/r0")
	tr.Emit(Event{T: 5, Kind: KindContactBegin, A: 1, B: 2, Item: -1, Ver: -1, Val: 30})
	tr.Emit(Event{T: 6, Kind: KindRefreshDelivered, A: 1, B: 4, Item: 0, Ver: 2, Val: 12})
	tr.Emit(Event{T: 35, Kind: KindContactEnd, A: 1, B: 2, Item: -1, Ver: -1})
	tr.Emit(Event{T: 40, Kind: KindCacheHit, A: 9, B: 4, Item: 0, Ver: 2, Val: 7})
	o.Commit(tr)

	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v\n%s", err, buf.String())
	}
	// process_name metadata + contact slice + 2 instants (contact_end is
	// folded into the begin slice's duration).
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("event count = %d: %s", len(doc.TraceEvents), buf.String())
	}
	var slices, instants, metas int
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event missing required keys: %+v", ev)
		}
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur == nil || *ev.Dur != 30e6 || *ev.Ts != 5e6 {
				t.Fatalf("contact slice wrong: %+v", ev)
			}
		case "i":
			instants++
			if KindFromString(ev.Name) == KindUnknown {
				t.Fatalf("instant with unknown kind name: %+v", ev)
			}
		case "M":
			metas++
			if ev.Args["name"] != "E2/x/p00/hier/r0" {
				t.Fatalf("process_name args: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if slices != 1 || instants != 2 || metas != 1 {
		t.Fatalf("phases: X=%d i=%d M=%d", slices, instants, metas)
	}
}

func TestManifestWriteRead(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest("experiments")
	m.Command = []string{"experiments", "-quick"}
	m.Seed = 42
	m.Config = map[string]any{"quick": true}
	m.Outputs = []string{"out/e2_0.csv"}
	m.FinishResources(time.Now().Add(-time.Second))
	path := filepath.Join(dir, "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if got.Schema != ManifestSchema || got.Tool != "experiments" || got.Seed != 42 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.GoVersion == "" || got.OS == "" || got.Arch == "" || got.GOMAXPROCS < 1 {
		t.Fatalf("provenance missing: %+v", got)
	}
	if got.WallClockSeconds < 0.9 {
		t.Fatalf("wall clock = %v", got.WallClockSeconds)
	}
}
