package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// Timeline samples run-local series on a simulated-time tick. Like
// RunTrace it is single-goroutine and nil-safe. It deliberately samples
// engine-local quantities (freshness ratio, counts the run itself owns)
// rather than the process-wide metric registry: under a parallel sweep the
// registry interleaves all concurrent runs, so mid-run registry snapshots
// would depend on worker scheduling. The registry is instead exported once
// at the end (see WriteOpenMetrics), when its totals are deterministic.
type Timeline struct {
	Label string

	points  []TimelinePoint
	cap     int
	dropped uint64
}

// TimelinePoint is one sampled value: series name, optional node/item
// coordinates (-1 = not applicable), value at simulated time T.
type TimelinePoint struct {
	T      float64
	Series string
	Node   int32
	Item   int32
	Val    float64
}

// DefaultTimelineCap bounds per-run point storage when no cap is given.
const DefaultTimelineCap = 1 << 18

// NewTimeline returns a timeline for one labelled run. capPoints < 1
// selects DefaultTimelineCap.
func NewTimeline(label string, capPoints int) *Timeline {
	if capPoints < 1 {
		capPoints = DefaultTimelineCap
	}
	return &Timeline{Label: label, cap: capPoints}
}

// Sample records one point; no-op on a nil timeline. Points past the cap
// are dropped (drop-new) and counted.
func (tl *Timeline) Sample(t float64, series string, node, item int32, val float64) {
	if tl == nil {
		return
	}
	if len(tl.points) >= tl.cap {
		tl.dropped++
		return
	}
	tl.points = append(tl.points, TimelinePoint{T: t, Series: series, Node: node, Item: item, Val: val})
}

// Len returns the number of stored points.
func (tl *Timeline) Len() int {
	if tl == nil {
		return 0
	}
	return len(tl.points)
}

// Dropped returns how many points were discarded at the cap.
func (tl *Timeline) Dropped() uint64 {
	if tl == nil {
		return 0
	}
	return tl.dropped
}

// Points returns the stored points in sampling order.
func (tl *Timeline) Points() []TimelinePoint {
	if tl == nil {
		return nil
	}
	out := make([]TimelinePoint, len(tl.points))
	copy(out, tl.points)
	return out
}

// TimelineCSVHeader is the first line of every timeline CSV export.
const TimelineCSVHeader = "run,t,series,node,item,value"

// appendCSV appends one point as a CSV record. Series names never contain
// commas or quotes (they are code-chosen identifiers), so no escaping.
func appendTimelineCSV(dst []byte, label string, p TimelinePoint) []byte {
	dst = append(dst, label...)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, p.T, 'g', -1, 64)
	dst = append(dst, ',')
	dst = append(dst, p.Series...)
	dst = append(dst, ',')
	if p.Node >= 0 {
		dst = strconv.AppendInt(dst, int64(p.Node), 10)
	}
	dst = append(dst, ',')
	if p.Item >= 0 {
		dst = strconv.AppendInt(dst, int64(p.Item), 10)
	}
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, p.Val, 'g', -1, 64)
	dst = append(dst, '\n')
	return dst
}

// WriteCSV writes the points as CSV rows (no header — the Observer writes
// one header for the whole file).
func (tl *Timeline) WriteCSV(w io.Writer) error {
	if tl == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var line []byte
	for _, p := range tl.points {
		line = appendTimelineCSV(line[:0], tl.Label, p)
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TimelineRecord is one parsed timeline CSV row.
type TimelineRecord struct {
	Run string
	TimelinePoint
}

// ReadTimelineCSV parses a timeline CSV stream written by the Observer
// (header line required).
func ReadTimelineCSV(r io.Reader) ([]TimelineRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []TimelineRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if lineNo == 1 {
			if string(line) != TimelineCSVHeader {
				return nil, fmt.Errorf("timeline: unexpected header %q", line)
			}
			continue
		}
		parts := bytes.Split(line, []byte{','})
		if len(parts) != 6 {
			return nil, fmt.Errorf("timeline line %d: want 6 fields, got %d", lineNo, len(parts))
		}
		rec := TimelineRecord{Run: string(parts[0]), TimelinePoint: TimelinePoint{Node: -1, Item: -1}}
		t, err := strconv.ParseFloat(string(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("timeline line %d t: %w", lineNo, err)
		}
		rec.T = t
		rec.Series = string(parts[2])
		if len(parts[3]) > 0 {
			v, err := strconv.ParseInt(string(parts[3]), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("timeline line %d node: %w", lineNo, err)
			}
			rec.Node = int32(v)
		}
		if len(parts[4]) > 0 {
			v, err := strconv.ParseInt(string(parts[4]), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("timeline line %d item: %w", lineNo, err)
			}
			rec.Item = int32(v)
		}
		val, err := strconv.ParseFloat(string(parts[5]), 64)
		if err != nil {
			return nil, fmt.Errorf("timeline line %d value: %w", lineNo, err)
		}
		rec.Val = val
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
