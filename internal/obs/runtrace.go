package obs

import (
	"bufio"
	"io"
	"strconv"
)

// RunTrace collects the typed events of one simulation run into a bounded
// ring buffer. Runs are single-goroutine (parallelism in this codebase is
// across runs, not within one), so RunTrace does no locking; determinism
// across `-parallel` settings comes from keeping one trace per run and
// flushing traces in sorted label order (see Observer).
//
// Sampling: with SampleEvery = n, only every n-th event (per trace, in
// emission order) is kept. With a full ring, the oldest sampled events are
// overwritten; Seen/Dropped expose how much was discarded either way. A
// nil *RunTrace ignores Emit, so instrumentation sites need no guards
// beyond the single nil check Emit itself performs.
type RunTrace struct {
	Label string

	sampleEvery int
	buf         []Event
	start       int // index of oldest event
	count       int // events currently buffered
	seen        uint64
	sampled     uint64
}

// DefaultBufferCap is the per-run ring capacity used when none is given.
const DefaultBufferCap = 1 << 16

// NewRunTrace returns a trace labelled label keeping every sampleEvery-th
// event in a ring of bufferCap events. sampleEvery < 1 is treated as 1
// (keep everything); bufferCap < 1 selects DefaultBufferCap.
func NewRunTrace(label string, sampleEvery, bufferCap int) *RunTrace {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if bufferCap < 1 {
		bufferCap = DefaultBufferCap
	}
	return &RunTrace{Label: label, sampleEvery: sampleEvery, buf: make([]Event, 0, bufferCap)}
}

// Emit records ev subject to sampling; no-op on a nil trace.
func (t *RunTrace) Emit(ev Event) {
	if t == nil {
		return
	}
	t.seen++
	if t.sampleEvery > 1 && (t.seen-1)%uint64(t.sampleEvery) != 0 {
		return
	}
	t.sampled++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		t.count++
		return
	}
	// Ring is full: overwrite the oldest slot.
	t.buf[t.start] = ev
	t.start = (t.start + 1) % len(t.buf)
}

// Seen returns how many events were emitted at this trace (before
// sampling).
func (t *RunTrace) Seen() uint64 {
	if t == nil {
		return 0
	}
	return t.seen
}

// Dropped returns how many emitted events were discarded by sampling or
// ring overwrite.
func (t *RunTrace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.seen - uint64(t.count)
}

// Len returns the number of buffered events.
func (t *RunTrace) Len() int {
	if t == nil {
		return 0
	}
	return t.count
}

// Events returns the buffered events in emission order (oldest first).
func (t *RunTrace) Events() []Event {
	if t == nil || t.count == 0 {
		return nil
	}
	out := make([]Event, 0, t.count)
	for i := 0; i < t.count; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// appendJSONL appends one event as a JSONL record. Hand-rolled so that
// float formatting (strconv 'g', shortest round-trip) and field order are
// fixed — byte determinism is part of the trace contract.
func appendJSONL(dst []byte, label string, ev Event) []byte {
	dst = append(dst, `{"run":`...)
	dst = strconv.AppendQuote(dst, label)
	dst = append(dst, `,"t":`...)
	dst = strconv.AppendFloat(dst, ev.T, 'g', -1, 64)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, ev.Kind.String()...)
	dst = append(dst, '"')
	if ev.A >= 0 {
		dst = append(dst, `,"a":`...)
		dst = strconv.AppendInt(dst, int64(ev.A), 10)
	}
	if ev.B >= 0 {
		dst = append(dst, `,"b":`...)
		dst = strconv.AppendInt(dst, int64(ev.B), 10)
	}
	if ev.Item >= 0 {
		dst = append(dst, `,"item":`...)
		dst = strconv.AppendInt(dst, int64(ev.Item), 10)
	}
	if ev.Ver >= 0 {
		dst = append(dst, `,"ver":`...)
		dst = strconv.AppendInt(dst, int64(ev.Ver), 10)
	}
	if ev.Val != 0 {
		dst = append(dst, `,"val":`...)
		dst = strconv.AppendFloat(dst, ev.Val, 'g', -1, 64)
	}
	dst = append(dst, '}', '\n')
	return dst
}

// WriteJSONL writes the buffered events as JSON Lines, one event per line,
// in emission order.
func (t *RunTrace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var line []byte
	for i := 0; i < t.count; i++ {
		line = appendJSONL(line[:0], t.Label, t.buf[(t.start+i)%len(t.buf)])
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
