//go:build !unix

package obs

// readRusage is unavailable on this platform; the manifest simply omits
// CPU time and peak RSS.
func readRusage() (cpuSeconds float64, maxRSSBytes int64) { return 0, 0 }
