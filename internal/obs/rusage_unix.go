//go:build unix

package obs

import (
	"runtime"
	"syscall"
)

// readRusage reports the process's accumulated user+system CPU seconds and
// peak resident set size in bytes.
func readRusage() (cpuSeconds float64, maxRSSBytes int64) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	rss := ru.Maxrss
	// ru_maxrss is kilobytes on Linux, bytes on Darwin.
	if runtime.GOOS != "darwin" {
		rss *= 1024
	}
	return sec(ru.Utime) + sec(ru.Stime), rss
}
