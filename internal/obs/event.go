package obs

// Kind identifies the type of a trace event. The set mirrors the
// simulator's observable actions: contact dynamics, refresh scheduling and
// delivery, replication planning, query resolution, and duty churn.
type Kind uint8

const (
	KindUnknown Kind = iota
	// KindContactBegin marks the dispatch of a contact between nodes A and
	// B at time T; Val carries the contact duration in seconds.
	KindContactBegin
	// KindContactEnd marks the end of that contact (T = begin + duration).
	KindContactEnd
	// KindGenerate marks the data source generating a new version Ver of
	// item Item.
	KindGenerate
	// KindRefreshScheduled marks a responsible node A committing to a
	// replication plan for item Item; Val carries the number of
	// destinations planned.
	KindRefreshScheduled
	// KindRefreshDelivered marks a fresh copy of Item version Ver arriving
	// at caching node B from node A; Val carries the delivery delay in
	// seconds since generation.
	KindRefreshDelivered
	// KindReplicationPlanned marks planner output: node A is tasked to
	// carry Item toward destination B; Val carries the achieved delivery
	// probability.
	KindReplicationPlanned
	// KindRelayHandoff marks responsible node A handing a copy of Item to
	// relay B.
	KindRelayHandoff
	// KindDutyReassigned marks node A taking responsibility for Item after
	// a rebuild (Ver is unused).
	KindDutyReassigned
	// KindQueryIssued marks node A issuing a query for Item.
	KindQueryIssued
	// KindCacheHit marks node A's query for Item being served a valid copy
	// (version Ver) by node B; Val carries the age of the served copy.
	KindCacheHit
	// KindCacheMiss marks node A's query for Item expiring unserved or
	// served stale.
	KindCacheMiss
	kindCount
)

var kindNames = [kindCount]string{
	KindUnknown:            "unknown",
	KindContactBegin:       "contact_begin",
	KindContactEnd:         "contact_end",
	KindGenerate:           "generate",
	KindRefreshScheduled:   "refresh_scheduled",
	KindRefreshDelivered:   "refresh_delivered",
	KindReplicationPlanned: "replication_planned",
	KindRelayHandoff:       "relay_handoff",
	KindDutyReassigned:     "duty_reassigned",
	KindQueryIssued:        "query_issued",
	KindCacheHit:           "cache_hit",
	KindCacheMiss:          "cache_miss",
}

// String returns the stable wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString resolves a wire name back to its Kind (KindUnknown for
// unrecognised names).
func KindFromString(s string) Kind {
	for k, name := range kindNames {
		if name == s {
			return Kind(k)
		}
	}
	return KindUnknown
}

// Event is one structured trace record. Fields that do not apply to a
// given kind are set to -1 (nodes, item, version) or 0 (value); T is
// simulation time in seconds.
type Event struct {
	T    float64
	Kind Kind
	A    int32 // primary node (actor), -1 if absent
	B    int32 // secondary node (peer/destination), -1 if absent
	Item int32 // item id, -1 if absent
	Ver  int32 // item version, -1 if absent
	Val  float64
}
