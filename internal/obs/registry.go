// Package obs is the run-observability layer of the simulator: a metric
// registry (counters, gauges, fixed-bucket histograms) with atomic
// hot-path recording, a structured per-run event trace with ring-buffer
// storage and sampling, Chrome trace-event export (loadable in Perfetto /
// chrome://tracing), and run manifests that make every results file
// reproducible.
//
// Everything is nil-safe: a nil *Registry hands out nil metrics, and every
// recording method on a nil receiver is a no-op. Hot paths therefore
// record unconditionally — the disabled path costs one predictable branch
// per call, nothing else.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Safe for
// concurrent use; all methods are no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value. Safe for concurrent use;
// all methods are no-ops on a nil receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic recording: counts[i]
// holds observations <= Bounds[i], the final bucket holds the overflow.
// Bounds are fixed at registration, so concurrent Observe calls are plain
// atomic adds with no locking.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1
	total   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-added
	minBits atomic.Uint64 // float64 bits, CAS-min (seeded +Inf)
	maxBits atomic.Uint64 // float64 bits, CAS-max (seeded -Inf)
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns how many values were observed (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram's state. Sum,
// Min and Max are exact (not bucket-midpoint estimates), so Sum/Total is
// the true mean; Min/Max are 0 when Total is 0.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last bucket is overflow
	Total  uint64    `json:"total"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Mean returns the exact mean of observed values (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Total == 0 {
		return 0
	}
	return s.Sum / float64(s.Total)
}

// Snapshot copies the histogram state. Concurrent Observe calls may land
// between bucket reads; totals are therefore approximate while recording
// is in flight and exact once it stops.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Total:  h.total.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	if s.Total > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry is a named collection of counters, gauges and histograms shared
// by one run, sweep or process. Metric handles are resolved once (under a
// lock) and then recorded to lock-free; a nil *Registry hands out nil
// handles, so callers need no enabled/disabled branches of their own.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil
// registries return a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil registries
// return a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (ascending) on first use; later calls ignore the bounds argument.
// Nil registries return a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// DepthBuckets returns power-of-two bucket bounds for queue-depth style
// histograms (1 .. 64k).
func DepthBuckets() []float64 {
	b := make([]float64, 17)
	for i := range b {
		b[i] = float64(uint(1) << i)
	}
	return b
}

// RegistrySnapshot is a point-in-time copy of every registered metric.
// Maps marshal with sorted keys under encoding/json, so serialized
// snapshots are deterministic.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry state (empty snapshot for nil).
func (r *Registry) Snapshot() RegistrySnapshot {
	var s RegistrySnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}
