package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestLineageNilSafety: every method must no-op (and hand back the "no
// span" ID) on a nil collector, so scheme instrumentation needs no guards.
func TestLineageNilSafety(t *testing.T) {
	var lin *Lineage
	if id := lin.Generate(0, 1, 1, 0); id != 0 {
		t.Errorf("nil Generate = %d, want 0", id)
	}
	if id := lin.Duty(0, 1, 2, 1, 1); id != 0 {
		t.Errorf("nil Duty = %d, want 0", id)
	}
	if id := lin.Handoff(0, 1, 2, 3, 1, 1); id != 0 {
		t.Errorf("nil Handoff = %d, want 0", id)
	}
	if id := lin.Delivered(0, 1, 2, 3, 1, 1, 0); id != 0 {
		t.Errorf("nil Delivered = %d, want 0", id)
	}
	if id := lin.Reassign(0, 1, 2, 1); id != 0 {
		t.Errorf("nil Reassign = %d, want 0", id)
	}
	if lin.Root(1, 1) != 0 || lin.LatestRoot(1) != 0 || lin.Len() != 0 || lin.Dropped() != 0 {
		t.Error("nil lookups should return zero values")
	}
	var tl *Timeline
	tl.Sample(0, "x", -1, -1, 1)
	if tl.Len() != 0 || tl.Dropped() != 0 {
		t.Error("nil timeline should stay empty")
	}
}

// TestLineageChainAndRoots builds a generation → duty → handoff → delivery
// chain and checks parenting, root lookup and version supersession.
func TestLineageChainAndRoots(t *testing.T) {
	lin := NewLineage("run", "hierarchical", 0)
	g1 := lin.Generate(100, 7, 1, 3)
	if lin.Root(7, 1) != g1 || lin.LatestRoot(7) != g1 {
		t.Fatal("root lookup after generate failed")
	}
	g2 := lin.Generate(200, 7, 2, 3)
	if lin.Root(7, 1) != g1 || lin.Root(7, 2) != g2 {
		t.Fatal("per-version roots must coexist")
	}
	if lin.LatestRoot(7) != g2 {
		t.Fatal("LatestRoot must follow the newest version")
	}
	d := lin.Duty(210, g2, 4, 7, 2)
	h := lin.Handoff(220, d, 4, 5, 7, 2)
	del := lin.Delivered(230, h, 5, 6, 7, 2, 30)
	re := lin.Reassign(240, g2, 3, 7)
	spans := lin.Spans()
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(spans))
	}
	byID := map[SpanID]Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	if byID[del].Parent != h || byID[h].Parent != d || byID[d].Parent != g2 {
		t.Fatal("parent chain broken")
	}
	if byID[del].Age != 30 {
		t.Fatalf("delivery age = %v, want 30", byID[del].Age)
	}
	if byID[re].Ver != -1 {
		t.Fatalf("reassign version = %d, want -1 (not version-specific)", byID[re].Ver)
	}

	tree := BuildSpanTree([]SpanRecord{
		{Run: "run", Scheme: "hierarchical", Span: byID[g2]},
		{Run: "run", Scheme: "hierarchical", Span: byID[d]},
		{Run: "run", Scheme: "hierarchical", Span: byID[h]},
		{Run: "run", Scheme: "hierarchical", Span: byID[del]},
	})
	if got := tree.Depth(del); got != 3 {
		t.Fatalf("delivery depth = %d, want 3", got)
	}
}

// TestLineageCapDropsNew: past the cap new spans are dropped (not ring-
// overwritten), so every stored span's parent is stored too.
func TestLineageCapDropsNew(t *testing.T) {
	lin := NewLineage("run", "s", 2)
	a := lin.Generate(0, 1, 1, 0)
	b := lin.Duty(1, a, 2, 1, 1)
	c := lin.Handoff(2, b, 2, 3, 1, 1)
	if c != 0 {
		t.Fatalf("over-cap span got ID %d, want 0", c)
	}
	if lin.Len() != 2 || lin.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 2/1", lin.Len(), lin.Dropped())
	}
	// A child of a dropped span records parent 0 — never a dangling ID.
	if d := lin.Delivered(3, c, 2, 3, 1, 1, 0); d != 0 {
		t.Fatalf("children past the cap must be dropped too, got %d", d)
	}
}

// TestLineageJSONLRoundTrip: the writer's bytes parse back into the exact
// span set, and writing twice yields identical bytes.
func TestLineageJSONLRoundTrip(t *testing.T) {
	lin := NewLineage("E2/p00/r0", "epidemic", 0)
	g := lin.Generate(10.5, 3, 2, 1)
	h := lin.Handoff(20.25, g, 1, 4, 3, 2)
	lin.Delivered(30.125, h, 4, 9, 3, 2, 19.625)

	var b1, b2 bytes.Buffer
	if err := lin.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := lin.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("repeated WriteJSONL not byte-identical")
	}
	records, err := ReadSpansJSONL(&b1)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("round-trip got %d records, want 3", len(records))
	}
	for i, want := range lin.Spans() {
		got := records[i]
		if got.Run != "E2/p00/r0" || got.Scheme != "epidemic" || got.Span != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}

	// Strict reader: unknown fields are an error, not silently dropped.
	if _, err := ReadSpansJSONL(strings.NewReader(`{"run":"r","scheme":"s","span":1,"kind":"generate","t":0,"bogus":1}` + "\n")); err == nil {
		t.Error("reader accepted an unknown field")
	}
}

// TestTimelineRoundTrip: CSV write/read preserves samples, including the
// empty node/item columns of scenario-wide series.
func TestTimelineRoundTrip(t *testing.T) {
	tl := NewTimeline("run-x", 2)
	tl.Sample(100, "freshness_ratio", -1, -1, 0.75)
	tl.Sample(100, "copy_age", 3, 1, 360)
	tl.Sample(200, "copy_age", 3, 1, 420) // over cap: dropped
	if tl.Len() != 2 || tl.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 2/1", tl.Len(), tl.Dropped())
	}
	var buf bytes.Buffer
	buf.WriteString(TimelineCSVHeader + "\n")
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := ReadTimelineCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("round-trip got %d records, want 2", len(records))
	}
	if r := records[0]; r.Run != "run-x" || r.Series != "freshness_ratio" || r.Node != -1 || r.Item != -1 || r.Val != 0.75 {
		t.Fatalf("record 0 = %+v", r)
	}
	if r := records[1]; r.Node != 3 || r.Item != 1 || r.Val != 360 {
		t.Fatalf("record 1 = %+v", r)
	}
}

// TestObserverLineageTimelineGating: collectors exist only when configured,
// and flushes order committed runs by label.
func TestObserverLineageTimelineGating(t *testing.T) {
	off := NewObserver(Config{})
	if off.RunLineage("a", "s") != nil || off.RunTimeline("a") != nil {
		t.Fatal("collectors handed out while disabled")
	}
	if off.LineageEnabled() || off.TimelineTick() != 0 {
		t.Fatal("off observer reports enabled")
	}

	on := NewObserver(Config{Lineage: true, TimelineTick: -1})
	if !on.LineageEnabled() || on.TimelineTick() != -1 {
		t.Fatal("on observer reports disabled")
	}
	lb := on.RunLineage("b", "s2")
	la := on.RunLineage("a", "s1")
	lb.Generate(0, 1, 1, 0)
	la.Generate(0, 2, 1, 0)
	on.CommitLineage(lb)
	on.CommitLineage(la)
	var buf bytes.Buffer
	if err := on.WriteLineageJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"run":"a"`) || !strings.Contains(lines[1], `"run":"b"`) {
		t.Fatalf("flush not sorted by label:\n%s", buf.String())
	}

	st := on.Stats()
	if st.Spans != 2 {
		t.Fatalf("stats spans = %d, want 2", st.Spans)
	}
}
