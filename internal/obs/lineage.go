package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// SpanID identifies one lineage span within one run. IDs are assigned
// densely starting at 1 in creation order; 0 means "no span" and is what
// nil-safe helpers return when lineage is off.
type SpanID uint32

// SpanKind classifies what step of a refresh message's life a span records.
type SpanKind uint8

const (
	// SpanGenerate is the root of every lineage tree: a source generating
	// a new version of an item.
	SpanGenerate SpanKind = iota
	// SpanDuty marks a node assuming refreshing duty for an item-version
	// (becoming part of the distributed duty tree).
	SpanDuty
	// SpanHandoff marks a refresh message being handed to a relay for
	// forwarding (the message is in flight, not yet applied at a cache).
	SpanHandoff
	// SpanDelivery marks a version arriving at a caching node's store.
	SpanDelivery
	// SpanReassign marks a duty reassignment: the responsible-set rebuild
	// moved refreshing duty for an item between nodes.
	SpanReassign
)

var spanKindNames = [...]string{"generate", "duty", "handoff", "delivery", "reassign"}

// String returns the stable wire name of the kind.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "unknown"
}

// SpanKindFromString inverts String; ok is false for unknown names.
func SpanKindFromString(s string) (SpanKind, bool) {
	for i, n := range spanKindNames {
		if n == s {
			return SpanKind(i), true
		}
	}
	return 0, false
}

// Span is one step in a refresh message's causal history. From/To are node
// IDs with -1 meaning "not applicable" (e.g. a generate span has no To).
// Age carries a kind-specific scalar: for deliveries it is the version age
// at arrival (seconds since generation); zero elsewhere.
type Span struct {
	ID     SpanID
	Parent SpanID
	Kind   SpanKind
	T      float64
	From   int32
	To     int32
	Item   int32
	Ver    int32
	Age    float64
}

// Lineage collects the causal span tree of one run. Like RunTrace it is
// single-goroutine and nil-safe: every method no-ops (returning SpanID 0
// where applicable) on a nil receiver, so instrumentation sites need no
// guards and the lineage-off hot path costs one branch.
//
// Capacity: at most cap spans are kept. Once full, new spans are counted
// in Dropped but not stored — drop-new (rather than ring-overwrite)
// semantics keep the invariant that a stored span's parent is also stored.
type Lineage struct {
	Label  string
	Scheme string

	cap     int
	spans   []Span
	dropped uint64

	// roots maps (item, version) to the generate span, so scheme code can
	// parent duty/delivery spans without threading IDs through every call.
	roots map[rootKey]SpanID
	// latest maps item to the generate span of its newest version.
	latest map[int32]SpanID
}

type rootKey struct {
	item int32
	ver  int32
}

// DefaultLineageCap bounds per-run span storage when no cap is given.
const DefaultLineageCap = 1 << 17

// NewLineage returns a lineage collector for one labelled run. capSpans < 1
// selects DefaultLineageCap.
func NewLineage(label, scheme string, capSpans int) *Lineage {
	if capSpans < 1 {
		capSpans = DefaultLineageCap
	}
	return &Lineage{
		Label:  label,
		Scheme: scheme,
		cap:    capSpans,
		roots:  make(map[rootKey]SpanID),
		latest: make(map[int32]SpanID),
	}
}

// add stores a span and returns its ID, or 0 if the cap is reached.
func (l *Lineage) add(s Span) SpanID {
	if len(l.spans) >= l.cap {
		l.dropped++
		return 0
	}
	s.ID = SpanID(len(l.spans) + 1)
	l.spans = append(l.spans, s)
	return s.ID
}

// Generate records the root span of a new (item, version) tree: source
// generated version ver of item at time t.
func (l *Lineage) Generate(t float64, item, ver int32, source int32) SpanID {
	if l == nil {
		return 0
	}
	id := l.add(Span{Kind: SpanGenerate, T: t, From: source, To: -1, Item: item, Ver: ver})
	if id != 0 {
		l.roots[rootKey{item, ver}] = id
		l.latest[item] = id
	}
	return id
}

// Root returns the generate span of (item, ver), or 0 if none was recorded.
func (l *Lineage) Root(item, ver int32) SpanID {
	if l == nil {
		return 0
	}
	return l.roots[rootKey{item, ver}]
}

// LatestRoot returns the generate span of item's newest recorded version.
func (l *Lineage) LatestRoot(item int32) SpanID {
	if l == nil {
		return 0
	}
	return l.latest[item]
}

// Duty records node assuming refreshing duty for (item, ver) under parent.
func (l *Lineage) Duty(t float64, parent SpanID, node, item, ver int32) SpanID {
	if l == nil {
		return 0
	}
	return l.add(Span{Parent: parent, Kind: SpanDuty, T: t, From: node, To: -1, Item: item, Ver: ver})
}

// Handoff records a refresh message moving from node `from` to relay `to`.
func (l *Lineage) Handoff(t float64, parent SpanID, from, to, item, ver int32) SpanID {
	if l == nil {
		return 0
	}
	return l.add(Span{Parent: parent, Kind: SpanHandoff, T: t, From: from, To: to, Item: item, Ver: ver})
}

// Delivered records version ver of item arriving at caching node `to` from
// `from`; age is the version age at arrival (t minus generation time).
func (l *Lineage) Delivered(t float64, parent SpanID, from, to, item, ver int32, age float64) SpanID {
	if l == nil {
		return 0
	}
	return l.add(Span{Parent: parent, Kind: SpanDelivery, T: t, From: from, To: to, Item: item, Ver: ver, Age: age})
}

// Reassign records refreshing duty for item being (re)assigned to node by
// the periodic responsible-set rebuild. Ver is -1: reassignment concerns
// the item's duty, not one version in flight.
func (l *Lineage) Reassign(t float64, parent SpanID, node, item int32) SpanID {
	if l == nil {
		return 0
	}
	return l.add(Span{Parent: parent, Kind: SpanReassign, T: t, From: node, To: -1, Item: item, Ver: -1})
}

// Len returns the number of stored spans.
func (l *Lineage) Len() int {
	if l == nil {
		return 0
	}
	return len(l.spans)
}

// Dropped returns how many spans were discarded at the cap.
func (l *Lineage) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Spans returns the stored spans in creation order (IDs ascending).
func (l *Lineage) Spans() []Span {
	if l == nil {
		return nil
	}
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	return out
}

// appendSpanJSONL appends one span as a JSONL record. Hand-rolled like
// appendJSONL: fixed field order and shortest-round-trip floats keep the
// export byte-deterministic.
func appendSpanJSONL(dst []byte, label, scheme string, s Span) []byte {
	dst = append(dst, `{"run":`...)
	dst = strconv.AppendQuote(dst, label)
	dst = append(dst, `,"scheme":`...)
	dst = strconv.AppendQuote(dst, scheme)
	dst = append(dst, `,"span":`...)
	dst = strconv.AppendUint(dst, uint64(s.ID), 10)
	if s.Parent != 0 {
		dst = append(dst, `,"parent":`...)
		dst = strconv.AppendUint(dst, uint64(s.Parent), 10)
	}
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, s.Kind.String()...)
	dst = append(dst, '"')
	dst = append(dst, `,"t":`...)
	dst = strconv.AppendFloat(dst, s.T, 'g', -1, 64)
	if s.From >= 0 {
		dst = append(dst, `,"from":`...)
		dst = strconv.AppendInt(dst, int64(s.From), 10)
	}
	if s.To >= 0 {
		dst = append(dst, `,"to":`...)
		dst = strconv.AppendInt(dst, int64(s.To), 10)
	}
	if s.Item >= 0 {
		dst = append(dst, `,"item":`...)
		dst = strconv.AppendInt(dst, int64(s.Item), 10)
	}
	if s.Ver >= 0 {
		dst = append(dst, `,"ver":`...)
		dst = strconv.AppendInt(dst, int64(s.Ver), 10)
	}
	if s.Age != 0 {
		dst = append(dst, `,"age":`...)
		dst = strconv.AppendFloat(dst, s.Age, 'g', -1, 64)
	}
	dst = append(dst, '}', '\n')
	return dst
}

// WriteJSONL writes the spans as JSON Lines in creation order.
func (l *Lineage) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var line []byte
	for _, s := range l.spans {
		line = appendSpanJSONL(line[:0], l.Label, l.Scheme, s)
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SpanRecord is one parsed lineage line, as read back by report tooling.
type SpanRecord struct {
	Run    string
	Scheme string
	Span
}

// ReadSpansJSONL parses a lineage JSONL stream written by WriteJSONL.
// It is a strict reader for the writer above, not a general JSON parser:
// unknown fields fail.
func ReadSpansJSONL(r io.Reader) ([]SpanRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []SpanRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, err := parseSpanLine(line)
		if err != nil {
			return nil, fmt.Errorf("lineage line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSpanLine decodes one span record emitted by appendSpanJSONL.
func parseSpanLine(line []byte) (SpanRecord, error) {
	rec := SpanRecord{Span: Span{From: -1, To: -1, Item: -1, Ver: -1}}
	fields, err := splitFlatJSON(line)
	if err != nil {
		return rec, err
	}
	for _, f := range fields {
		switch f.key {
		case "run":
			s, err := strconv.Unquote(f.val)
			if err != nil {
				return rec, fmt.Errorf("run: %w", err)
			}
			rec.Run = s
		case "scheme":
			s, err := strconv.Unquote(f.val)
			if err != nil {
				return rec, fmt.Errorf("scheme: %w", err)
			}
			rec.Scheme = s
		case "span":
			v, err := strconv.ParseUint(f.val, 10, 32)
			if err != nil {
				return rec, fmt.Errorf("span: %w", err)
			}
			rec.ID = SpanID(v)
		case "parent":
			v, err := strconv.ParseUint(f.val, 10, 32)
			if err != nil {
				return rec, fmt.Errorf("parent: %w", err)
			}
			rec.Parent = SpanID(v)
		case "kind":
			s, err := strconv.Unquote(f.val)
			if err != nil {
				return rec, fmt.Errorf("kind: %w", err)
			}
			k, ok := SpanKindFromString(s)
			if !ok {
				return rec, fmt.Errorf("unknown span kind %q", s)
			}
			rec.Kind = k
		case "t":
			v, err := strconv.ParseFloat(f.val, 64)
			if err != nil {
				return rec, fmt.Errorf("t: %w", err)
			}
			rec.T = v
		case "from":
			v, err := strconv.ParseInt(f.val, 10, 32)
			if err != nil {
				return rec, fmt.Errorf("from: %w", err)
			}
			rec.From = int32(v)
		case "to":
			v, err := strconv.ParseInt(f.val, 10, 32)
			if err != nil {
				return rec, fmt.Errorf("to: %w", err)
			}
			rec.To = int32(v)
		case "item":
			v, err := strconv.ParseInt(f.val, 10, 32)
			if err != nil {
				return rec, fmt.Errorf("item: %w", err)
			}
			rec.Item = int32(v)
		case "ver":
			v, err := strconv.ParseInt(f.val, 10, 32)
			if err != nil {
				return rec, fmt.Errorf("ver: %w", err)
			}
			rec.Ver = int32(v)
		case "age":
			v, err := strconv.ParseFloat(f.val, 64)
			if err != nil {
				return rec, fmt.Errorf("age: %w", err)
			}
			rec.Age = v
		default:
			return rec, fmt.Errorf("unknown field %q", f.key)
		}
	}
	if rec.ID == 0 {
		return rec, fmt.Errorf("missing span id")
	}
	return rec, nil
}

// flatField is one key/value pair of a single-level JSON object; val keeps
// the raw token (quoted for strings).
type flatField struct {
	key string
	val string
}

// splitFlatJSON tokenizes a one-level JSON object with string or numeric
// values (the only shapes our JSONL writers emit).
func splitFlatJSON(line []byte) ([]flatField, error) {
	if len(line) < 2 || line[0] != '{' || line[len(line)-1] != '}' {
		return nil, fmt.Errorf("not a flat JSON object")
	}
	body := line[1 : len(line)-1]
	var out []flatField
	i := 0
	for i < len(body) {
		if body[i] != '"' {
			return nil, fmt.Errorf("expected key quote at byte %d", i)
		}
		j := i + 1
		for j < len(body) && body[j] != '"' {
			if body[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(body) {
			return nil, fmt.Errorf("unterminated key")
		}
		key := string(body[i+1 : j])
		j++
		if j >= len(body) || body[j] != ':' {
			return nil, fmt.Errorf("expected ':' after key %q", key)
		}
		j++
		start := j
		if j < len(body) && body[j] == '"' {
			j++
			for j < len(body) && body[j] != '"' {
				if body[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(body) {
				return nil, fmt.Errorf("unterminated string value for %q", key)
			}
			j++
		} else {
			for j < len(body) && body[j] != ',' {
				j++
			}
		}
		out = append(out, flatField{key: key, val: string(body[start:j])})
		if j < len(body) {
			if body[j] != ',' {
				return nil, fmt.Errorf("expected ',' after value of %q", key)
			}
			j++
		}
		i = j
	}
	return out, nil
}

// SpanTree indexes one run's spans for traversal: children in creation
// order per parent, roots (parentless spans) in creation order.
type SpanTree struct {
	ByID     map[SpanID]SpanRecord
	Children map[SpanID][]SpanID
	Roots    []SpanID
}

// BuildSpanTree indexes records (typically one run's worth) into a tree.
func BuildSpanTree(records []SpanRecord) *SpanTree {
	tr := &SpanTree{
		ByID:     make(map[SpanID]SpanRecord, len(records)),
		Children: make(map[SpanID][]SpanID),
	}
	for _, r := range records {
		tr.ByID[r.ID] = r
		if r.Parent == 0 {
			tr.Roots = append(tr.Roots, r.ID)
		} else {
			tr.Children[r.Parent] = append(tr.Children[r.Parent], r.ID)
		}
	}
	sort.Slice(tr.Roots, func(i, j int) bool { return tr.Roots[i] < tr.Roots[j] })
	for _, kids := range tr.Children {
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	}
	return tr
}

// Depth returns the number of edges from id up to its root. Unknown or
// orphaned parents terminate the walk (the dangling edge still counts, so
// a span whose parent was dropped at the cap reports depth ≥ 1).
func (tr *SpanTree) Depth(id SpanID) int {
	depth := 0
	for {
		r, ok := tr.ByID[id]
		if !ok || r.Parent == 0 {
			return depth
		}
		depth++
		id = r.Parent
		if depth > len(tr.ByID) { // cycle guard; cannot happen for writer output
			return depth
		}
	}
}
