// Package store is the persistent cross-run results index of the
// simulator: an append-only, fsync'd, schema-versioned JSONL file every
// obs-enabled invocation appends one record to. A record joins the run's
// manifest provenance (command, seed, config digest, toolchain, VCS
// revision) with its final metric snapshot flattened to queryable names,
// histogram roll-ups, per-cell cost attribution and the ledger's cell
// dispositions — enough to plot any stored metric's trajectory across
// invocations (`obsreport trend`) or gate a fresh run against history
// (`obsreport gate`) without re-running anything.
//
// Durability follows the checkpoint journal's contract: each record is a
// single O_APPEND write synced before the writer returns, so concurrent
// appenders interleave whole records and a crash can tear at most the
// trailing line, which the reader tolerates. A record carrying a foreign
// schema version is a hard read error — history written by an
// incompatible future version must be refused, never misread.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"freshcache/internal/obs"
)

// Schema versions the store record format. Bump it across incompatible
// record changes; readers refuse foreign versions outright.
const Schema = "freshcache-store/1"

// Record is one stored invocation: provenance joined with results.
//
// Determinism contract: for a fixed seed and configuration, every field
// except the provenance/timing ones (CreatedAt, GoVersion, GitRevision,
// GitModified, OS, Arch, WallClockSeconds, and the wall/alloc numbers
// inside Cells) is byte-identical across repeated runs and worker counts —
// the trend/gate tooling relies on Metrics being comparable across
// history.
type Record struct {
	Schema    string   `json:"schema"`
	Tool      string   `json:"tool"`
	CreatedAt string   `json:"createdAt"`
	Command   []string `json:"command,omitempty"`

	Seed int64 `json:"seed"`
	// ConfigDigest is a stable hash of the run's configuration (the same
	// map the manifest records), so history can be filtered to comparable
	// invocations without string-matching whole command lines.
	ConfigDigest string `json:"configDigest,omitempty"`

	GoVersion   string `json:"goVersion,omitempty"`
	GitRevision string `json:"gitRevision,omitempty"`
	GitModified bool   `json:"gitModified,omitempty"`
	OS          string `json:"os,omitempty"`
	Arch        string `json:"arch,omitempty"`

	WallClockSeconds float64 `json:"wallClockSeconds,omitempty"`

	// Metrics is the flattened, queryable metric snapshot: registry
	// counters and gauges under their registry names, per-scheme roll-up
	// ratios under "scheme/<name>/...", bench-harness figures under their
	// BENCH_*.json names. Trend and gate address metrics by these keys.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Histograms carries the registry's histogram snapshots (bounds,
	// cumulative counts, exact sum/min/max).
	Histograms map[string]obs.HistogramSnapshot `json:"histograms,omitempty"`
	// Cells is the per-cell cost attribution in deterministic grid order
	// (wall/alloc values themselves are machine-dependent).
	Cells []obs.CellCost `json:"cells,omitempty"`
	// Resume is the ledger's cell-disposition accounting.
	Resume *obs.ResumeSummary `json:"resume,omitempty"`
}

// NewRecord returns a record pre-filled with build/runtime provenance,
// mirroring obs.NewManifest.
func NewRecord(tool string) *Record {
	r := &Record{
		Schema:    Schema,
		Tool:      tool,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				r.GitRevision = s.Value
			case "vcs.modified":
				r.GitModified = s.Value == "true"
			}
		}
	}
	return r
}

// Append durably appends one record to the store at path, creating the
// file (and its directory) if needed. The record is written as a single
// O_APPEND write and synced before Append returns, so concurrent
// appenders — sweep workers, parallel CI jobs — interleave whole records
// and a crash cannot leave more than a torn trailing line.
func Append(path string, rec *Record) error {
	if rec.Schema == "" {
		rec.Schema = Schema
	}
	if rec.Schema != Schema {
		return fmt.Errorf("store: record schema %q, want %q", rec.Schema, Schema)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshal record: %w", err)
	}
	b = append(b, '\n')
	if dir := filepath.Dir(path); dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("store: dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("store: append: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	return f.Close()
}

// Read loads every record of the store in append order. A malformed
// trailing line — the torn write of a crashed appender — is tolerated and
// dropped; a malformed line anywhere else, or any record carrying a
// schema version other than Schema, is an error: whole-record appends
// mean mid-file corruption is real damage, and foreign versions must be
// refused rather than misread.
func Read(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var recs []Record
	lineNo, tornLine := 0, 0
	var tornErr error
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if tornErr != nil {
			// The malformed line was not trailing after all.
			return nil, fmt.Errorf("store: %s:%d: %w", path, tornLine, tornErr)
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			tornErr, tornLine = err, lineNo
			continue
		}
		if rec.Schema != Schema {
			return nil, fmt.Errorf("store: %s:%d: unsupported schema %q (want %q)",
				path, lineNo, rec.Schema, Schema)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return recs, nil
}

// Point is one run's value of a queried metric, in store (append) order.
type Point struct {
	Index       int // record index in the store
	CreatedAt   string
	Tool        string
	GitRevision string
	Value       float64
}

// Series extracts one metric's trajectory across the records: one point
// per record that carries the metric, in append order.
func Series(recs []Record, metric string) []Point {
	var out []Point
	for i, r := range recs {
		v, ok := r.Metrics[metric]
		if !ok {
			continue
		}
		out = append(out, Point{
			Index:       i,
			CreatedAt:   r.CreatedAt,
			Tool:        r.Tool,
			GitRevision: r.GitRevision,
			Value:       v,
		})
	}
	return out
}

// Filter returns the records matching a tool name ("" matches all).
func Filter(recs []Record, tool string) []Record {
	if tool == "" {
		return recs
	}
	var out []Record
	for _, r := range recs {
		if r.Tool == tool {
			out = append(out, r)
		}
	}
	return out
}

// ConfigDigest hashes a configuration map into a stable hex digest
// (json.Marshal sorts map keys, so equal maps always digest equally). CLIs
// should digest result-determining configuration only, so runs differing
// merely in execution policy compare as the same configuration.
func ConfigDigest(cfg map[string]any) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		return ""
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// FlattenMetrics flattens a registry snapshot and per-scheme roll-ups into
// the store's queryable metric map: counters and gauges under their
// registry names, scheme roll-ups under "scheme/<name>/...".
func FlattenMetrics(snap obs.RegistrySnapshot, rollups []obs.SchemeRollup) map[string]float64 {
	m := make(map[string]float64, len(snap.Counters)+len(snap.Gauges)+6*len(rollups))
	for k, v := range snap.Counters {
		m[k] = float64(v)
	}
	for k, v := range snap.Gauges {
		m[k] = v
	}
	for _, r := range rollups {
		p := "scheme/" + r.Scheme + "/"
		m[p+"transmissions"] = float64(r.Transmissions)
		m[p+"deliveries"] = float64(r.Deliveries)
		m[p+"versions_generated"] = float64(r.VersionsGenerated)
		if r.Deliveries > 0 {
			m[p+"tx_per_delivery"] = float64(r.Transmissions) / float64(r.Deliveries)
		}
		if r.DeliveryDelayHist != nil {
			m[p+"mean_delay_s"] = r.DeliveryDelayHist.Mean()
		}
		if r.RefreshAgeHist != nil {
			m[p+"mean_age_s"] = r.RefreshAgeHist.Mean()
		}
	}
	return m
}

// MetricNames returns the sorted union of metric names across the records.
func MetricNames(recs []Record) []string {
	seen := make(map[string]bool)
	for _, r := range recs {
		for name := range r.Metrics {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
