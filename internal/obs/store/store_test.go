package store

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"freshcache/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden schema file under testdata/")

// fullRecord returns a record with every field populated, for round-trip
// and schema-fingerprint tests.
func fullRecord(seed int64) *Record {
	return &Record{
		Schema:           Schema,
		Tool:             "experiments",
		CreatedAt:        "2026-01-01T00:00:00Z",
		Command:          []string{"experiments", "-quick"},
		Seed:             seed,
		ConfigDigest:     "deadbeefdeadbeef",
		GoVersion:        "go0.0.0",
		GitRevision:      "cafebabe",
		GitModified:      true,
		OS:               "linux",
		Arch:             "amd64",
		WallClockSeconds: 1.5,
		Metrics: map[string]float64{
			"engine/contacts":                     12345,
			"scheme/hierarchical/tx_per_delivery": 2.5,
		},
		Histograms: map[string]obs.HistogramSnapshot{
			"eventsim/queue_depth": {
				Bounds: []float64{1, 2}, Counts: []uint64{1, 2, 0},
				Total: 3, Sum: 4, Min: 1, Max: 2,
			},
		},
		Cells: []obs.CellCost{{
			Experiment: "E2", Preset: "infocom-like", Point: 0, Scheme: "direct",
			Replicate: 0, WallSeconds: 0.25, Mallocs: 1000, AllocBytes: 65536, Attempts: 1,
		}},
		Resume: &obs.ResumeSummary{CellsExecuted: 10, CellsReplayed: 2},
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "store.jsonl")
	for i := int64(0); i < 3; i++ {
		if err := Append(path, fullRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Seed != int64(i) {
			t.Errorf("record %d: seed %d (append order lost)", i, r.Seed)
		}
		if r.Metrics["engine/contacts"] != 12345 || len(r.Cells) != 1 || r.Resume == nil {
			t.Errorf("record %d did not round-trip: %+v", i, r)
		}
	}
	if got := MetricNames(recs); len(got) != 2 || got[0] != "engine/contacts" {
		t.Errorf("MetricNames = %v", got)
	}
	pts := Series(recs, "engine/contacts")
	if len(pts) != 3 || pts[2].Index != 2 || pts[2].Value != 12345 {
		t.Errorf("Series = %+v", pts)
	}
}

// TestConcurrentAppends models a -parallel 8 style fan-out of appenders
// sharing one store: every record must survive whole.
func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				rec := fullRecord(int64(i))
				if err := Append(path, rec); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n*4 {
		t.Fatalf("read %d records, want %d (append tearing?)", len(recs), n*4)
	}
	perSeed := make(map[int64]int)
	for _, r := range recs {
		perSeed[r.Seed]++
	}
	for i := int64(0); i < n; i++ {
		if perSeed[i] != 4 {
			t.Errorf("seed %d: %d records, want 4", i, perSeed[i])
		}
	}
}

// TestTornTrailingRecord: a partial trailing line (a crash mid-append) is
// dropped; the whole records before it still load.
func TestTornTrailingRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	for i := int64(0); i < 2; i++ {
		if err := Append(path, fullRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"freshcache-store/1","tool":"exper`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := Read(path)
	if err != nil {
		t.Fatalf("torn trailing record not tolerated: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want the 2 whole ones", len(recs))
	}
}

// TestMidFileCorruptionFails: with single-write appends only the trailing
// line can legitimately tear, so a malformed line followed by more data is
// real damage and must be an error, not a silent skip.
func TestMidFileCorruptionFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	if err := Append(path, fullRecord(0)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{broken\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := Append(path, fullRecord(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("mid-file corruption read back without error")
	}
}

// TestSchemaMismatchRefused: a record written under a different schema
// version fails the read outright.
func TestSchemaMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	if err := Append(path, fullRecord(0)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"freshcache-store/999","tool":"future"}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), "unsupported schema") {
		t.Fatalf("foreign schema version not refused: %v", err)
	}

	rec := fullRecord(0)
	rec.Schema = "freshcache-store/999"
	if err := Append(filepath.Join(t.TempDir(), "s.jsonl"), rec); err == nil {
		t.Fatal("Append accepted a foreign schema version")
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("missing store read back without error")
	}
}

// jsonSchema flattens a value's JSON encoding into sorted "path: type"
// lines — the same structural fingerprint the manifest schema gate uses,
// so the golden only moves when a field is added, renamed or retyped.
func jsonSchema(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var tree any
	if err := json.Unmarshal(b, &tree); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var walk func(path string, v any)
	walk = func(path string, v any) {
		switch x := v.(type) {
		case map[string]any:
			seen[path+": object"] = true
			for k, val := range x {
				walk(path+"."+k, val)
			}
		case []any:
			seen[path+": array"] = true
			for _, val := range x {
				walk(path+"[]", val)
			}
		case string:
			seen[path+": string"] = true
		case float64:
			seen[path+": number"] = true
		case bool:
			seen[path+": bool"] = true
		default:
			seen[path+": null"] = true
		}
	}
	walk("$", tree)
	lines := make([]string, 0, len(seen))
	for l := range seen {
		lines = append(lines, l)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestStoreSchema pins the serialized record shape: obsreport
// trend/query/gate and the CI obs-store job parse these lines back, so a
// field rename is a breaking change.
func TestStoreSchema(t *testing.T) {
	// Metric/histogram map keys are data, not schema: normalize to one
	// stable key each so the fingerprint doesn't move with metric names.
	rec := fullRecord(42)
	rec.Metrics = map[string]float64{"example_metric": 1}
	rec.Histograms = map[string]obs.HistogramSnapshot{"example_hist": rec.Histograms["eventsim/queue_depth"]}
	got := jsonSchema(t, rec)
	path := filepath.Join("testdata", "store.schema")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./internal/obs/store -run Schema -update` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("store record schema drifted from golden — a consumer-visible field changed.\n"+
			"If intentional, regenerate with -update and note it in DESIGN.md.\n got:\n%s\nwant:\n%s",
			got, want)
	}
}

// TestNewRecordProvenance: NewRecord stamps toolchain provenance and the
// current schema version.
func TestNewRecordProvenance(t *testing.T) {
	r := NewRecord("freshsim")
	if r.Schema != Schema || r.Tool != "freshsim" || r.GoVersion == "" || r.OS == "" {
		t.Fatalf("NewRecord = %+v", r)
	}
	if r.CreatedAt == "" {
		t.Fatal("NewRecord missing timestamp")
	}
}

func TestFilter(t *testing.T) {
	recs := []Record{{Tool: "a"}, {Tool: "b"}, {Tool: "a"}}
	if got := Filter(recs, "a"); len(got) != 2 {
		t.Fatalf("Filter(a) = %d records, want 2", len(got))
	}
	if got := Filter(recs, ""); len(got) != 3 {
		t.Fatalf("Filter(\"\") = %d records, want 3", len(got))
	}
}
