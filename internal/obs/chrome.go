package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Chrome trace-event export: the JSON object format understood by
// Perfetto and chrome://tracing ({"traceEvents":[...]}). Each run becomes
// one "process" (pid = run index in sorted-label order, named by a
// process_name metadata event); each node becomes a "thread" (tid) inside
// it. Contacts render as complete ("X") slices spanning their duration;
// every other event kind renders as a thread-scoped instant ("i").
// Timestamps are microseconds, matching the format's convention.

func appendChromeCommon(dst []byte, name string, ph byte, tsMicros float64, pid, tid int) []byte {
	dst = append(dst, `{"name":`...)
	dst = strconv.AppendQuote(dst, name)
	dst = append(dst, `,"ph":"`...)
	dst = append(dst, ph)
	dst = append(dst, `","ts":`...)
	dst = strconv.AppendFloat(dst, tsMicros, 'g', -1, 64)
	dst = append(dst, `,"pid":`...)
	dst = strconv.AppendInt(dst, int64(pid), 10)
	dst = append(dst, `,"tid":`...)
	dst = strconv.AppendInt(dst, int64(tid), 10)
	return dst
}

func appendChromeEvent(dst []byte, ev Event, pid int, first bool) []byte {
	if ev.Kind == KindContactEnd {
		// The matching contact_begin carries the duration; a separate end
		// slice would double-draw the contact.
		return dst
	}
	if !first {
		dst = append(dst, ',', '\n')
	}
	tid := 0
	if ev.A >= 0 {
		tid = int(ev.A)
	}
	ts := ev.T * 1e6
	if ev.Kind == KindContactBegin {
		dst = appendChromeCommon(dst, ev.Kind.String(), 'X', ts, pid, tid)
		dst = append(dst, `,"dur":`...)
		dst = strconv.AppendFloat(dst, ev.Val*1e6, 'g', -1, 64)
	} else {
		dst = appendChromeCommon(dst, ev.Kind.String(), 'i', ts, pid, tid)
		dst = append(dst, `,"s":"t"`...)
	}
	dst = append(dst, `,"args":{`...)
	comma := false
	arg := func(k string, v int64) {
		if comma {
			dst = append(dst, ',')
		}
		comma = true
		dst = append(dst, '"')
		dst = append(dst, k...)
		dst = append(dst, `":`...)
		dst = strconv.AppendInt(dst, v, 10)
	}
	if ev.B >= 0 {
		arg("peer", int64(ev.B))
	}
	if ev.Item >= 0 {
		arg("item", int64(ev.Item))
	}
	if ev.Ver >= 0 {
		arg("ver", int64(ev.Ver))
	}
	if ev.Val != 0 && ev.Kind != KindContactBegin {
		if comma {
			dst = append(dst, ',')
		}
		comma = true
		dst = append(dst, `"val":`...)
		dst = strconv.AppendFloat(dst, ev.Val, 'g', -1, 64)
	}
	dst = append(dst, '}', '}')
	return dst
}

// writeChromeTraces serializes the given run traces (already in the
// desired pid order) as one Chrome trace-event JSON document.
func writeChromeTraces(w io.Writer, traces []*RunTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	var buf []byte
	first := true
	for pid, t := range traces {
		// Name the process after the run so Perfetto's track labels carry
		// the experiment/preset/scheme identity.
		buf = buf[:0]
		if !first {
			buf = append(buf, ',', '\n')
		}
		first = false
		buf = appendChromeCommon(buf, "process_name", 'M', 0, pid, 0)
		buf = append(buf, `,"args":{"name":`...)
		buf = strconv.AppendQuote(buf, t.Label)
		buf = append(buf, `}}`...)
		for _, ev := range t.Events() {
			buf = appendChromeEvent(buf, ev, pid, false)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTrace writes this single trace as a Chrome trace-event JSON
// document (pid 0).
func (t *RunTrace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return writeChromeTraces(w, nil)
	}
	return writeChromeTraces(w, []*RunTrace{t})
}
