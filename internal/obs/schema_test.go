package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"freshcache/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden schema files under testdata/")

// jsonSchema flattens a value's JSON encoding into sorted "path: type"
// lines — a structural fingerprint that ignores the values themselves, so
// the goldens only move when a field is added, renamed or retyped.
func jsonSchema(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var tree any
	if err := json.Unmarshal(b, &tree); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var walk func(path string, v any)
	walk = func(path string, v any) {
		switch x := v.(type) {
		case map[string]any:
			seen[path+": object"] = true
			for k, val := range x {
				walk(path+"."+k, val)
			}
		case []any:
			seen[path+": array"] = true
			for _, val := range x {
				walk(path+"[]", val)
			}
		case string:
			seen[path+": string"] = true
		case float64:
			seen[path+": number"] = true
		case bool:
			seen[path+": bool"] = true
		default:
			seen[path+": null"] = true
		}
	}
	walk("$", tree)
	lines := make([]string, 0, len(seen))
	for l := range seen {
		lines = append(lines, l)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./internal/obs -run Schema -update` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s schema drifted from golden — a consumer-visible field changed.\n"+
			"If intentional, regenerate with -update and note it in DESIGN.md.\n got:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// fullHistogram returns a histogram snapshot with every field populated.
func fullHistogram() HistogramSnapshot {
	h := newHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(42)
	return h.Snapshot()
}

func fullRegistrySnapshot() RegistrySnapshot {
	return RegistrySnapshot{
		Counters:   map[string]int64{"example_counter": 7},
		Gauges:     map[string]float64{"example_gauge": 1.5},
		Histograms: map[string]HistogramSnapshot{"example_hist": fullHistogram()},
	}
}

// TestRegistrySnapshotSchema pins the serialized shape of RegistrySnapshot:
// manifests embed it and obsreport/CI parse it back.
func TestRegistrySnapshotSchema(t *testing.T) {
	checkGolden(t, "registry_snapshot.schema", jsonSchema(t, fullRegistrySnapshot()))
}

// TestManifestSchema pins the serialized shape of manifest.json with every
// optional section populated. obsreport diff, the CI obs job and external
// consumers all read this file; field renames are breaking changes.
func TestManifestSchema(t *testing.T) {
	hist := metrics.NewHist(metrics.DelayBuckets())
	hist.Observe(120)
	snap := fullRegistrySnapshot()
	m := Manifest{
		Schema:      ManifestSchema,
		Tool:        "experiments",
		CreatedAt:   "2026-01-01T00:00:00Z",
		Command:     []string{"experiments", "-quick"},
		GoVersion:   "go0.0.0",
		GitRevision: "deadbeef",
		GitModified: true,
		OS:          "linux",
		Arch:        "amd64",
		GOMAXPROCS:  1,
		Seed:        42,
		Config:      map[string]any{"example": true},
		Outputs:     []string{"out/table.csv"},

		WallClockSeconds: 1,
		CPUSeconds:       1,
		MaxRSSBytes:      1,

		Metrics: &snap,
		Events: &EventStats{Runs: 1, Seen: 1, Buffered: 1, Dropped: 1,
			Spans: 1, SpansDropped: 1, TimelinePoints: 1, TimelineDropped: 1},
		SchemeStats: []SchemeRollup{{
			Scheme: "hierarchical", Runs: 1, Transmissions: 9, Deliveries: 3,
			VersionsGenerated: 2, DeliveryDelayHist: hist, RefreshAgeHist: hist,
		}},
		Failures: []CellFailure{{Experiment: "E1", Preset: "reality-like",
			Point: 0, Scheme: "direct", Replicate: 0, Error: "boom", Attempts: 2}},
		Resume: &ResumeSummary{Journal: "ckpt.jsonl", Resumed: true,
			CellsReplayed: 1, CellsExecuted: 1, CellsFailed: 1, CellsSkipped: 1},
	}
	checkGolden(t, "manifest.schema", jsonSchema(t, m))

	// The fixture must round-trip through ReadManifest: the golden proves
	// the shape, this proves the reader accepts it.
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != m.Tool || back.Seed != m.Seed || len(back.SchemeStats) != 1 {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	if got := jsonSchema(t, back); got != jsonSchema(t, m) {
		t.Error("manifest schema changed across a Write/ReadManifest round-trip")
	}
}

// TestManifestSchemaVersionGate makes the reader reject foreign schemas,
// so a future v2 cannot be silently misread as v1.
func TestManifestSchemaVersionGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(path, []byte(fmt.Sprintf(`{"schema":"%s-v999"}`, ManifestSchema)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Error("ReadManifest accepted an unknown schema version")
	}
}
