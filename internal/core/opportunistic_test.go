package core

import (
	"testing"

	"freshcache/internal/trace"
)

// Micro-tests for the opportunistic "distributed maintenance" side
// channels: caching-node peer sync and relay delivery to unplanned caching
// nodes. Reuses the 5-node micro-scenario helpers from schemes_test.go.

func TestPeerSyncRefreshesStalePeer(t *testing.T) {
	// Chain warmup makes {1,2} caching with tree 0→1→2. Measurement: the
	// source refreshes node 1 with v0 and v1, but node 2 is reached only
	// via a direct (non-tree-relevant) meeting with node 1 at 500 — peer
	// sync must carry v1 across even though by then node 1's duty already
	// delivered... here we make node 2 miss the v0 round entirely.
	contacts := []trace.Contact{
		ct(0, 1, 10), ct(0, 1, 20), ct(0, 1, 30),
		ct(1, 2, 15), ct(1, 2, 25),
		ct(2, 4, 40),
		ct(0, 3, 50),
		// Measurement: only source→1 transfers, then a single 1↔2 meeting
		// late in v1's life.
		ct(0, 1, 150), // v0 to node 1
		ct(0, 1, 450), // v1 to node 1
		ct(1, 2, 520), // node 2 gets v1 (peer sync / duty)
	}
	eng := microEngine(t, NewHierarchical(), contacts)
	_, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	d2 := deliveriesTo(eng.Collector(), 2)
	if len(d2) != 1 || d2[0].Version != 1 || d2[0].DeliveredAt != 520 {
		t.Fatalf("node 2 deliveries: %+v", d2)
	}
}

func TestPeerSyncSkipsExpiredCopies(t *testing.T) {
	// Node 1 holds only v0 (generated at 100, lifetime 600). It meets
	// node 2 at 750, after expiry: no transfer may happen.
	contacts := []trace.Contact{
		ct(0, 1, 10), ct(0, 1, 20), ct(0, 1, 30),
		ct(1, 2, 15), ct(1, 2, 25),
		ct(2, 4, 40),
		ct(0, 3, 50),
		ct(0, 1, 150), // v0 to node 1; v1 (gen 400) never reaches node 1
		ct(1, 2, 750), // v0 expired at 700
	}
	eng := microEngine(t, NewHierarchical(), contacts)
	_, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d2 := deliveriesTo(eng.Collector(), 2); len(d2) != 0 {
		t.Fatalf("expired copy peer-synced: %+v", d2)
	}
}

func TestPeerSyncDisabledForDirect(t *testing.T) {
	// Same contacts as the stale-peer test, but Direct must not let
	// caching nodes refresh each other.
	contacts := []trace.Contact{
		ct(0, 1, 10), ct(0, 1, 20), ct(0, 1, 30),
		ct(1, 2, 15), ct(1, 2, 25),
		ct(2, 4, 40),
		ct(0, 3, 50),
		ct(0, 1, 150),
		ct(1, 2, 200),
	}
	eng := microEngine(t, NewDirect(), contacts)
	_, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d2 := deliveriesTo(eng.Collector(), 2); len(d2) != 0 {
		t.Fatalf("direct peer-synced: %+v", d2)
	}
}

func TestRelayDeliversOpportunisticallyToOtherCachingNodes(t *testing.T) {
	// relayContacts gives node 2 a relay plan through node 3. Add a
	// meeting between the relay and caching node 1 BEFORE node 1 gets the
	// version from the source: the relay should hand its copy over even
	// though node 1 was not the planned destination.
	contacts := []trace.Contact{
		ct(0, 1, 10), ct(0, 1, 20), ct(0, 1, 30),
		ct(0, 3, 15), ct(0, 3, 25),
		ct(3, 2, 35), ct(3, 2, 45),
		ct(2, 4, 55),
		ct(0, 3, 110), // hand-off of v0 (planned dest: node 2)
		ct(3, 1, 130), // relay meets caching node 1 — opportunistic delivery
		ct(3, 2, 250), // planned delivery still happens
	}
	eng := microEngine(t, NewHierarchical(), contacts)
	_, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	d1 := deliveriesTo(eng.Collector(), 1)
	if len(d1) != 1 || d1[0].DeliveredAt != 130 {
		t.Fatalf("opportunistic delivery to node 1: %+v", d1)
	}
	d2 := deliveriesTo(eng.Collector(), 2)
	if len(d2) != 1 || d2[0].DeliveredAt != 250 {
		t.Fatalf("planned delivery to node 2: %+v", d2)
	}
}

func TestOpportunisticImprovesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	withSync := runScheme(t, NewHierarchical(), 77)
	noSync := runScheme(t, &refreshScheme{name: "hier-nosync", hierarchical: true, replicate: true}, 77)
	t.Logf("with sync %.3f, without %.3f", withSync.FreshnessRatio, noSync.FreshnessRatio)
	if withSync.FreshnessRatio <= noSync.FreshnessRatio {
		t.Fatalf("peer sync did not help: %v vs %v", withSync.FreshnessRatio, noSync.FreshnessRatio)
	}
}
