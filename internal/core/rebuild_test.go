package core

import (
	"testing"

	"freshcache/internal/metrics"
	"freshcache/internal/mobility"
)

// runOnDrift runs the hierarchical scheme on a drifting-community trace
// (structure reshuffles at the midpoint) with the given rebuild interval.
func runOnDrift(t *testing.T, seed int64, rebuild float64) metrics.Result {
	t.Helper()
	tr, err := mobility.DriftingCommunity(40, 8*mobility.Day).Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Trace:           tr,
		Catalog:         testScenarioCatalog(t, 4*mobility.Hour),
		Scheme:          NewHierarchical(),
		NumCachingNodes: 6,
		WarmupFraction:  0.25, // warmup ends well inside the first regime
		RebuildInterval: rebuild,
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRebuildAdaptsToDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	var staticSum, adaptiveSum float64
	const seeds = 3
	for seed := int64(50); seed < 50+seeds; seed++ {
		static := runOnDrift(t, seed, 0)
		adaptive := runOnDrift(t, seed, 2*mobility.Day)
		t.Logf("seed %d: static=%.3f adaptive=%.3f", seed, static.FreshnessRatio, adaptive.FreshnessRatio)
		staticSum += static.FreshnessRatio
		adaptiveSum += adaptive.FreshnessRatio
	}
	if adaptiveSum <= staticSum {
		t.Fatalf("rebuilding did not help under drift: adaptive %.4f vs static %.4f (sums over %d seeds)",
			adaptiveSum, staticSum, seeds)
	}
}

func TestRebuildHarmlessWithoutDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	static := runWith(t, NewHierarchical(), 61, nil)
	adaptive := runWith(t, NewHierarchical(), 61, func(c *Config) { c.RebuildInterval = 2 * mobility.Day })
	t.Logf("static=%.3f adaptive=%.3f", static.FreshnessRatio, adaptive.FreshnessRatio)
	// On a stationary trace, rebuilding from recent windows must not
	// collapse performance (small noise either way is fine).
	if adaptive.FreshnessRatio < 0.7*static.FreshnessRatio {
		t.Fatalf("rebuilding hurt a stationary run: %v vs %v", adaptive.FreshnessRatio, static.FreshnessRatio)
	}
}

func TestRebuildIntervalValidation(t *testing.T) {
	cfg := Config{
		Trace:           testScenarioTrace(t, 1),
		Catalog:         testScenarioCatalog(t, mobility.Hour),
		Scheme:          NewHierarchical(),
		NumCachingNodes: 4,
		RebuildInterval: -1,
	}
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("negative rebuild interval accepted")
	}
}

func TestRebuildIgnoredForNonRebuilder(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	// Oracle does not implement Rebuilder; configuring an interval must
	// not break the run.
	res := runWith(t, NewOracle(), 63, func(c *Config) { c.RebuildInterval = mobility.Day })
	if res.FreshnessRatio < 0.95 {
		t.Fatalf("oracle run broke with rebuild interval: %v", res.FreshnessRatio)
	}
}

func TestRebuildDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	a := runOnDrift(t, 7, 2*mobility.Day)
	b := runOnDrift(t, 7, 2*mobility.Day)
	if a.FreshnessRatio != b.FreshnessRatio || a.Transmissions != b.Transmissions {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestRebuildKeepsWorkingScheme(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	res := runOnDrift(t, 9, mobility.Day)
	if res.Deliveries == 0 {
		t.Fatal("no deliveries with daily rebuilds")
	}
	if res.VersionsGenerated == 0 {
		t.Fatal("no versions generated")
	}
}
