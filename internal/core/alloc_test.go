package core

import (
	"testing"

	"freshcache/internal/cache"
	"freshcache/internal/mobility"
)

// The allocation-regression suite pins the per-contact allocation count of
// the dense hot path. The simulation is deterministic, so the allocation
// count is exact and machine-independent; the asserted bounds carry ~2×
// headroom over the measured values so legitimate small changes don't trip
// them, while a reintroduced per-contact map or closure allocation (tens
// of allocations per contact) fails loudly.

// allocsPerContact runs the shared end-to-end scenario once per sample and
// reports mean heap allocations per dispatched contact.
func allocsPerContact(t *testing.T, mk func() Scheme) float64 {
	t.Helper()
	tr := testScenarioTrace(t, 7)
	cat := testScenarioCatalog(t, 4*mobility.Hour)
	cfg := Config{
		Trace:           tr,
		Catalog:         cat,
		NumCachingNodes: 6,
		Workload:        cache.WorkloadConfig{QueryRate: 1.0 / (2 * mobility.Hour), ZipfExponent: 1.0},
		Seed:            7,
	}
	contacts := 0
	allocs := testing.AllocsPerRun(3, func() {
		c := cfg
		c.Scheme = mk()
		eng, err := NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		contacts = eng.ContactsDispatched()
	})
	if contacts == 0 {
		t.Fatal("no contacts dispatched")
	}
	return allocs / float64(contacts)
}

func TestAllocsPerContactHierarchical(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	const bound = 4.0
	got := allocsPerContact(t, NewHierarchical)
	t.Logf("hierarchical: %.2f allocs/contact (bound %.1f)", got, bound)
	if got > bound {
		t.Fatalf("hierarchical scheme allocates %.2f/contact, bound %.1f — hot-path allocation regression", got, bound)
	}
}

func TestAllocsPerContactDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	const bound = 3.0
	got := allocsPerContact(t, NewDirect)
	t.Logf("direct: %.2f allocs/contact (bound %.1f)", got, bound)
	if got > bound {
		t.Fatalf("direct scheme allocates %.2f/contact, bound %.1f — hot-path allocation regression", got, bound)
	}
}
