package core

import (
	"math"
	"testing"

	"freshcache/internal/centrality"
	"freshcache/internal/mobility"
	"freshcache/internal/trace"
)

func TestBuildTreeChain(t *testing.T) {
	// Source 0 meets only 1; 1 meets only 2; 2 meets only 3.
	m := ratesWith(4, map[[2]int]float64{
		{0, 1}: 0.1, {1, 2}: 0.1, {2, 3}: 0.1,
	})
	tree, err := BuildTree(m, 0, []trace.NodeID{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate([]trace.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if tree.Parent[1] != 0 || tree.Parent[2] != 1 || tree.Parent[3] != 2 {
		t.Fatalf("parents: %+v", tree.Parent)
	}
	if tree.MaxDepth() != 3 {
		t.Fatalf("max depth = %d, want 3", tree.MaxDepth())
	}
	// Expected delay accumulates per hop: 10 + 10 + 10 for node 3.
	if math.Abs(tree.ExpectedDelay[3]-30) > 1e-9 {
		t.Fatalf("delay(3) = %v, want 30", tree.ExpectedDelay[3])
	}
}

func TestBuildTreePrefersDirectWhenFast(t *testing.T) {
	// Source meets both caching nodes at high rate; direct attachment
	// should win over chaining.
	m := ratesWith(3, map[[2]int]float64{
		{0, 1}: 0.1, {0, 2}: 0.1, {1, 2}: 0.01,
	})
	tree, err := BuildTree(m, 0, []trace.NodeID{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Parent[1] != 0 || tree.Parent[2] != 0 {
		t.Fatalf("parents: %+v", tree.Parent)
	}
}

func TestBuildTreeDelegatesWhenBetter(t *testing.T) {
	// Source barely meets node 2, but node 1 (well connected to both)
	// should be made responsible for node 2.
	m := ratesWith(3, map[[2]int]float64{
		{0, 1}: 0.1, {0, 2}: 0.0001, {1, 2}: 0.1,
	})
	tree, err := BuildTree(m, 0, []trace.NodeID{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Parent[2] != 1 {
		t.Fatalf("node 2 parented to %d, want 1", tree.Parent[2])
	}
	kids := tree.ResponsibleFor(1)
	if len(kids) != 1 || kids[0] != 2 {
		t.Fatalf("ResponsibleFor(1) = %v", kids)
	}
}

func TestBuildTreeFanoutBound(t *testing.T) {
	// Source meets everyone equally; fan-out 2 forces depth.
	pairs := map[[2]int]float64{}
	caching := make([]trace.NodeID, 0, 6)
	for i := 1; i <= 6; i++ {
		pairs[[2]int{0, i}] = 0.1
		caching = append(caching, trace.NodeID(i))
		for j := i + 1; j <= 6; j++ {
			pairs[[2]int{i, j}] = 0.1
		}
	}
	m := ratesWith(7, pairs)
	tree, err := BuildTree(m, 0, caching, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(caching); err != nil {
		t.Fatal(err)
	}
	for n, kids := range tree.Children {
		if len(kids) > 2 {
			t.Fatalf("node %d has %d children with fanout 2", n, len(kids))
		}
	}
	if len(tree.ResponsibleFor(0)) != 2 {
		t.Fatalf("source children = %d, want 2", len(tree.ResponsibleFor(0)))
	}
	if tree.MaxDepth() < 2 {
		t.Fatalf("max depth = %d; fanout bound not forcing depth", tree.MaxDepth())
	}
}

func TestBuildTreeDisconnectedFallsBackToSource(t *testing.T) {
	// Node 2 never meets anyone: still attached (to the source), with
	// infinite expected delay.
	m := ratesWith(3, map[[2]int]float64{{0, 1}: 0.1})
	tree, err := BuildTree(m, 0, []trace.NodeID{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate([]trace.NodeID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tree.Parent[2]; !ok {
		t.Fatal("disconnected node not attached")
	}
	if !math.IsInf(tree.ExpectedDelay[2], 1) {
		t.Fatalf("delay(2) = %v, want +Inf", tree.ExpectedDelay[2])
	}
}

func TestBuildTreeRejectsBadInput(t *testing.T) {
	m := ratesWith(3, nil)
	if _, err := BuildTree(m, 0, []trace.NodeID{0}, 0); err == nil {
		t.Fatal("source as caching node accepted")
	}
	if _, err := BuildTree(m, 0, []trace.NodeID{1, 1}, 0); err == nil {
		t.Fatal("duplicate caching node accepted")
	}
	if _, err := BuildTree(m, 0, []trace.NodeID{1}, -1); err == nil {
		t.Fatal("negative fanout accepted")
	}
}

func TestBuildTreeEmptyCachingSet(t *testing.T) {
	m := ratesWith(2, nil)
	tree, err := BuildTree(m, 0, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(nil); err != nil {
		t.Fatal(err)
	}
	if tree.MaxDepth() != 0 {
		t.Fatalf("depth = %d", tree.MaxDepth())
	}
}

func TestBuildTreeDeterministicOnRealisticRates(t *testing.T) {
	g := &mobility.Community{
		TraceName: "t", N: 40, Duration: 20 * mobility.Day, Communities: 4,
		IntraRate: 6.0 / mobility.Day, InterRate: 0.5 / mobility.Day, RateShape: 0.8,
		InterPairFraction: 0.5, HubFraction: 0.1, HubBoost: 3, MeanContactDur: 120,
	}
	tr, err := g.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := centrality.FromTrace(tr, 0, tr.Duration)
	if err != nil {
		t.Fatal(err)
	}
	caching := []trace.NodeID{3, 7, 12, 20, 25, 31, 38}
	a, err := BuildTree(m, 1, caching, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTree(m, 1, caching, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range caching {
		if a.Parent[c] != b.Parent[c] {
			t.Fatalf("nondeterministic parent for %d: %d vs %d", c, a.Parent[c], b.Parent[c])
		}
	}
	if err := a.Validate(caching); err != nil {
		t.Fatal(err)
	}
	// The tree should bound expected delays: every finite-delay node's
	// delay must be at least its best single-hop time to the source
	// (optimality sanity, not exact optimality).
	for _, c := range caching {
		if d := a.ExpectedDelay[c]; !math.IsInf(d, 1) && d <= 0 {
			t.Fatalf("delay(%d) = %v", c, d)
		}
	}
}

func TestStarTree(t *testing.T) {
	tree, err := starTree(5, []trace.NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate([]trace.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if tree.MaxDepth() != 1 {
		t.Fatalf("star depth = %d", tree.MaxDepth())
	}
	if len(tree.ResponsibleFor(5)) != 3 {
		t.Fatalf("source children = %v", tree.ResponsibleFor(5))
	}
	if _, err := starTree(1, []trace.NodeID{1}); err == nil {
		t.Fatal("source in caching set accepted")
	}
}
