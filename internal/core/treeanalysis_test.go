package core

import (
	"math"
	"testing"

	"freshcache/internal/cache"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

func TestAnalyzeTreeChain(t *testing.T) {
	m := ratesWith(4, map[[2]int]float64{
		{0, 1}: 0.01, {1, 2}: 0.02, {2, 3}: 0.005,
	})
	tree, err := BuildTree(m, 0, []trace.NodeID{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := AnalyzeTree(tree, m, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(fc.Nodes))
	}
	// Node 1: single hop at 0.01 → mean 100s, OnTime = 1-e^-6.
	n1 := fc.Nodes[0]
	if n1.Node != 1 || math.Abs(n1.PathMean-100) > 1e-9 {
		t.Fatalf("node1 forecast: %+v", n1)
	}
	if math.Abs(n1.OnTime-stats.ExpCDF(0.01, 600)) > 1e-9 {
		t.Fatalf("node1 on-time: %v", n1.OnTime)
	}
	// Node 3: three hops, mean 100+50+200 = 350.
	n3 := fc.Nodes[2]
	if math.Abs(n3.PathMean-350) > 1e-9 {
		t.Fatalf("node3 mean: %v", n3.PathMean)
	}
	// Deeper nodes cannot have higher on-time probability than their
	// ancestors in a chain.
	if fc.Nodes[1].OnTime > n1.OnTime || n3.OnTime > fc.Nodes[1].OnTime {
		t.Fatalf("on-time not monotone down the chain: %+v", fc.Nodes)
	}
	want := (fc.Nodes[0].OnTime + fc.Nodes[1].OnTime + fc.Nodes[2].OnTime) / 3
	if math.Abs(fc.MeanOnTime-want) > 1e-12 {
		t.Fatalf("mean on-time: %v", fc.MeanOnTime)
	}
}

func TestAnalyzeTreeDisconnected(t *testing.T) {
	m := ratesWith(3, map[[2]int]float64{{0, 1}: 0.1})
	tree, err := BuildTree(m, 0, []trace.NodeID{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := AnalyzeTree(tree, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, nf := range fc.Nodes {
		if nf.Node == 2 {
			if nf.OnTime != 0 || !math.IsInf(nf.PathMean, 1) {
				t.Fatalf("disconnected node forecast: %+v", nf)
			}
		}
	}
}

func TestAnalyzeTreeValidation(t *testing.T) {
	m := ratesWith(2, map[[2]int]float64{{0, 1}: 0.1})
	tree, err := BuildTree(m, 0, []trace.NodeID{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeTree(tree, m, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

// The analytical forecast must match measurement where its assumptions
// hold: a relay-free hierarchical run on an exponential-contacts trace
// (no diurnal gaps, no communities drifting — pure Poisson pair
// processes).
func TestForecastMatchesMeasurementOnExponentialTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	g := &mobilityHetExp{}
	tr := g.make(t)
	// Long refresh interval relative to path delays: versions are almost
	// never superseded before delivery, so the measured on-time ratio
	// (which conditions on delivery) stays comparable to the analysis.
	items := []cache.Item{
		{ID: 0, Source: 0, RefreshInterval: 24 * 3600, FreshnessWindow: 6 * 3600, Lifetime: 96 * 3600, Size: 1},
		{ID: 1, Source: 1, RefreshInterval: 24 * 3600, FreshnessWindow: 6 * 3600, Lifetime: 96 * 3600, Size: 1},
	}
	cat, err := cache.NewCatalog(items)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Trace:           tr,
		Catalog:         cat,
		Scheme:          &refreshScheme{name: "hier-norep-nosync", hierarchical: true},
		NumCachingNodes: 6,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rt := eng.Runtime()
	s, ok := eng.cfg.Scheme.(*refreshScheme)
	if !ok {
		t.Fatal("scheme type")
	}

	// Average the analytical forecast over items. The measurement
	// conditions on delivery happening at all (deliveries stop when a
	// version expires), so compare against the conditional prediction
	// P(delay <= window) / P(delay <= lifetime).
	var sum float64
	count := 0
	for _, it := range rt.Catalog.Items() {
		onTime, err := AnalyzeTree(s.trees[it.ID], rt.Rates, it.FreshnessWindow)
		if err != nil {
			t.Fatal(err)
		}
		delivered, err := AnalyzeTree(s.trees[it.ID], rt.Rates, it.Lifetime)
		if err != nil {
			t.Fatal(err)
		}
		for i := range onTime.Nodes {
			if d := delivered.Nodes[i].OnTime; d > 0 {
				sum += onTime.Nodes[i].OnTime / d
				count++
			}
		}
	}
	predicted := sum / float64(count)
	measured := eng.Collector().FirstDeliveryOnTimeRatio()
	t.Logf("predicted on-time %.3f, measured %.3f", predicted, measured)
	if math.Abs(predicted-measured) > 0.15 {
		t.Fatalf("analysis and measurement disagree: %v vs %v", predicted, measured)
	}
}

// mobilityHetExp builds a pure heterogeneous-exponential trace without
// importing mobility at top level twice (kept tiny and local).
type mobilityHetExp struct{}

func (mobilityHetExp) make(t *testing.T) *trace.Trace {
	t.Helper()
	rng := stats.NewRNG(42)
	const n = 40
	tr := &trace.Trace{Name: "pure-exp", N: n, Duration: 12 * 86400}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() > 0.7 {
				continue
			}
			rate := stats.Gamma(rng, 0.8, (8.0/86400)/0.8)
			if rate <= 0 {
				continue
			}
			at := stats.Exp(rng, rate) * rng.Float64()
			for at < tr.Duration {
				end := at + 180
				if end > tr.Duration {
					end = tr.Duration
				}
				tr.Contacts = append(tr.Contacts, trace.Contact{A: trace.NodeID(a), B: trace.NodeID(b), Start: at, End: end})
				at = end + stats.Exp(rng, rate)
			}
		}
	}
	tr.Normalize()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}
