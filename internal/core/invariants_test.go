package core

import (
	"math"
	"testing"
	"testing/quick"

	"freshcache/internal/cache"
	"freshcache/internal/network"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// End-to-end protocol invariants checked over randomized scenarios: for
// ANY random trace, scheme, and failure configuration, the simulation
// must uphold causality and accounting invariants. This is the strongest
// regression net the engine has — any protocol change that teleports
// data, double-serves queries, or corrupts accounting fails here.

type invariantScenario struct {
	seed    int64
	scheme  Scheme
	tr      *trace.Trace
	catalog *cache.Catalog
	cfg     Config
}

// randomScenario builds a small random scenario from the seed.
func randomScenario(seed int64) (*invariantScenario, error) {
	rng := stats.NewRNG(seed)
	n := 8 + rng.Intn(12)
	duration := 5000.0 + rng.Float64()*20000

	tr := &trace.Trace{Name: "inv", N: n, Duration: duration}
	contacts := 100 + rng.Intn(400)
	for i := 0; i < contacts; i++ {
		a := trace.NodeID(rng.Intn(n))
		b := trace.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		start := rng.Float64() * (duration - 100)
		tr.Contacts = append(tr.Contacts, trace.Contact{A: a, B: b, Start: start, End: start + 5 + rng.Float64()*60})
	}
	tr.Normalize()
	if err := tr.Validate(); err != nil {
		return nil, err
	}

	numItems := 1 + rng.Intn(3)
	items := make([]cache.Item, numItems)
	for i := range items {
		r := 500 + rng.Float64()*2000
		items[i] = cache.Item{
			ID:              cache.ItemID(i),
			Source:          trace.NodeID(i),
			Phase:           rng.Float64() * r * 0.9,
			RefreshInterval: r,
			FreshnessWindow: r * (0.5 + rng.Float64()),
			Lifetime:        r * (1 + rng.Float64()*2),
			Size:            1,
		}
	}
	catalog, err := cache.NewCatalog(items)
	if err != nil {
		return nil, err
	}

	schemes := Schemes()
	spec := schemes[rng.Intn(len(schemes))]
	cfg := Config{
		Trace:           tr,
		Catalog:         catalog,
		Scheme:          spec.New(),
		NumCachingNodes: 2 + rng.Intn(3),
		Seed:            seed,
		Workload:        cache.WorkloadConfig{QueryRate: 1.0 / 2000, ZipfExponent: 1.1},
	}
	// Random failure injection and knobs.
	switch rng.Intn(4) {
	case 1:
		cfg.DropProb = rng.Float64() * 0.5
	case 2:
		cfg.Churn = network.ChurnConfig{MeanUp: 1000 + rng.Float64()*5000, MeanDown: 500 + rng.Float64()*2000}
	case 3:
		cfg.MsgTime = 1 + rng.Float64()*20
	}
	if rng.Intn(3) == 0 {
		cfg.QueryRelays = 1 + rng.Intn(3)
	}
	if rng.Intn(3) == 0 {
		cfg.Knowledge = KnowledgeDistributed
	}
	if rng.Intn(4) == 0 {
		cfg.RebuildInterval = duration / 4
	}
	return &invariantScenario{seed: seed, scheme: cfg.Scheme, tr: tr, catalog: catalog, cfg: cfg}, nil
}

func checkInvariants(t *testing.T, sc *invariantScenario) {
	t.Helper()
	eng, err := NewEngine(sc.cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", sc.seed, err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("seed %d (%s): %v", sc.seed, sc.cfg.Scheme.Name(), err)
	}

	// Ratio-type metrics are probabilities.
	for name, v := range map[string]float64{
		"freshness":      res.FreshnessRatio,
		"answeredOK":     res.AnsweredOK,
		"freshAnswers":   res.FreshAnswers,
		"validAnswers":   res.ValidAnswers,
		"freshAccess":    res.FreshAccessRate,
		"validAccess":    res.ValidAccessRate,
		"onTime":         res.OnTimeRatio,
		"sourceTxShare":  res.SourceTxShare,
		"maxNodeTxShare": res.MaxNodeTxShare,
		"loadGini":       res.LoadGini,
	} {
		if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
			t.Fatalf("seed %d (%s): %s = %v outside [0,1]", sc.seed, sc.cfg.Scheme.Name(), name, v)
		}
	}

	rt := eng.Runtime()
	if rt == nil {
		t.Fatalf("seed %d: no runtime", sc.seed)
	}

	// Causality of deliveries: generated in the measurement phase, never
	// delivered before generation, versions consistent with the item
	// schedule, and OnTime flags truthful.
	for _, d := range eng.Collector().Deliveries() {
		it, err := sc.catalog.Item(d.Item)
		if err != nil {
			t.Fatalf("seed %d: delivery for unknown item %d", sc.seed, d.Item)
		}
		if d.DeliveredAt < d.GeneratedAt {
			t.Fatalf("seed %d (%s): delivery before generation: %+v", sc.seed, sc.cfg.Scheme.Name(), d)
		}
		if want := cache.VersionTime(it, rt.Epoch, d.Version); math.Abs(want-d.GeneratedAt) > 1e-6 {
			t.Fatalf("seed %d: version %d generated at %v, schedule says %v", sc.seed, d.Version, d.GeneratedAt, want)
		}
		if got := d.DeliveredAt-d.GeneratedAt <= it.FreshnessWindow; got != d.OnTime {
			t.Fatalf("seed %d: OnTime flag wrong: %+v (window %v)", sc.seed, d, it.FreshnessWindow)
		}
		if !rt.IsCachingNode(d.Node) {
			t.Fatalf("seed %d: delivery to non-caching node %d", sc.seed, d.Node)
		}
	}

	// Query log sanity: served queries have causal timestamps, valid
	// answers were within lifetime at service, and no served copy predates
	// the epoch schedule.
	for _, q := range eng.book.All() {
		if !q.Served {
			continue
		}
		if q.ServedAt < q.IssuedAt {
			t.Fatalf("seed %d: query served before issue: %+v", sc.seed, q)
		}
		it, err := sc.catalog.Item(q.Item)
		if err != nil {
			t.Fatalf("seed %d: query for unknown item", sc.seed)
		}
		if q.Valid && q.ServedAt-q.ServedGeneratedAt > it.Lifetime+1e-9 {
			t.Fatalf("seed %d: expired copy marked valid: %+v", sc.seed, q)
		}
		if q.ServedVersion < 0 {
			t.Fatalf("seed %d: negative served version: %+v", sc.seed, q)
		}
	}

	// Accounting: answered <= queries, deliveries consistent, overhead
	// non-negative.
	if res.Answered > res.Queries {
		t.Fatalf("seed %d: answered %d > queries %d", sc.seed, res.Answered, res.Queries)
	}
	if res.Transmissions < 0 || res.TxPerVersion < 0 {
		t.Fatalf("seed %d: negative overhead", sc.seed)
	}
	if res.Scheme == "oracle" && res.Transmissions != 0 {
		t.Fatalf("seed %d: oracle paid transmissions", sc.seed)
	}
}

func TestEngineInvariantsRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end simulations")
	}
	f := func(seed int64) bool {
		sc, err := randomScenario(seed)
		if err != nil {
			// Degenerate random trace (e.g. all self-contacts skipped to
			// empty); not an engine failure.
			return true
		}
		checkInvariants(t, sc)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineInvariantsFixedSeeds(t *testing.T) {
	// A deterministic sample across every scheme, always run (not
	// skipped in -short) for fast regression signal.
	for seed := int64(1); seed <= int64(len(Schemes())); seed++ {
		sc, err := randomScenario(seed * 997)
		if err != nil {
			continue
		}
		checkInvariants(t, sc)
	}
}
