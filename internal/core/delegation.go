package core

import (
	"sort"

	"freshcache/internal/cache"
	"freshcache/internal/network"
	"freshcache/internal/trace"
)

// Query delegation is the optional two-way relayed access path of the
// cooperative-caching substrate: instead of waiting to meet a provider
// itself, a requester hands copies of a pending query to the first Q
// relays it meets; a relay that meets a provider (caching node or source)
// fetches the data and carries the response back until it meets the
// requester again. It trades extra transmissions for access delay —
// exactly the trade the engine's metrics expose.

// delegatedQuery is one query copy parked at a relay, possibly already
// carrying the fetched response.
type delegatedQuery struct {
	q *cache.Query
	// response, valid when hasCopy.
	copy    cache.Copy
	hasCopy bool
}

// delegationState is owned by the engine; zero value means delegation is
// disabled.
type delegationState struct {
	// maxRelays is the per-query delegation budget Q.
	maxRelays int
	// carried[relay] are the query copies the relay holds, in hand-off
	// order.
	carried map[trace.NodeID][]*delegatedQuery
	// handedOut[queryID] counts relays currently or previously carrying
	// the query.
	handedOut map[int]int
	// carriedBy[queryID][relay] prevents duplicate hand-offs.
	carriedBy map[int]map[trace.NodeID]bool
}

func newDelegationState(maxRelays int) *delegationState {
	return &delegationState{
		maxRelays: maxRelays,
		carried:   make(map[trace.NodeID][]*delegatedQuery),
		handedOut: make(map[int]int),
		carriedBy: make(map[int]map[trace.NodeID]bool),
	}
}

// processContact runs the three delegation steps across a live contact,
// in both directions: response delivery, response fetch, then query
// hand-off (so a single contact never both hands off and immediately
// fetches through the same relay — that would be a free teleport).
func (e *Engine) processDelegation(c *network.Contact) {
	d := e.delegation
	if d == nil {
		return
	}
	e.deliverResponses(c, c.A, c.B)
	e.deliverResponses(c, c.B, c.A)
	e.fetchResponses(c, c.A, c.B)
	e.fetchResponses(c, c.B, c.A)
	e.handOffQueries(c, c.A, c.B)
	e.handOffQueries(c, c.B, c.A)
}

// handOffQueries lets `requester` delegate its pending queries to `relay`.
func (e *Engine) handOffQueries(c *network.Contact, requester, relay trace.NodeID) {
	d := e.delegation
	pending := e.book.Pending(requester, c.Time)
	if len(pending) == 0 {
		return
	}
	qs := make([]*cache.Query, len(pending))
	copy(qs, pending)
	for _, q := range qs {
		if d.handedOut[q.ID] >= d.maxRelays {
			continue
		}
		if d.carriedBy[q.ID][relay] || relay == q.Requester {
			continue
		}
		// Providers answer directly (resolveQueries ran first); handing
		// them the query too would only double-count.
		if e.isProvider(relay, q.Item) {
			continue
		}
		if !c.Send(requester, relay, "query") {
			return
		}
		dq := &delegatedQuery{q: q}
		d.carried[relay] = append(d.carried[relay], dq)
		d.handedOut[q.ID]++
		if d.carriedBy[q.ID] == nil {
			d.carriedBy[q.ID] = make(map[trace.NodeID]bool)
		}
		d.carriedBy[q.ID][relay] = true
	}
}

// fetchResponses lets `relay` pull data for carried queries from a
// provider it is in contact with.
func (e *Engine) fetchResponses(c *network.Contact, relay, provider trace.NodeID) {
	d := e.delegation
	carried := d.carried[relay]
	if len(carried) == 0 {
		return
	}
	for _, dq := range carried {
		if dq.hasCopy || dq.q.Served {
			continue
		}
		cp, ok := e.providerCopy(provider, dq.q.Item, c.Time)
		if !ok {
			continue
		}
		if !c.Send(provider, relay, "data") {
			return
		}
		dq.copy = cp
		dq.hasCopy = true
	}
}

// deliverResponses lets `relay` hand fetched responses back to the
// requester.
func (e *Engine) deliverResponses(c *network.Contact, relay, requester trace.NodeID) {
	d := e.delegation
	carried := d.carried[relay]
	if len(carried) == 0 {
		return
	}
	kept := carried[:0]
	budgetExhausted := false
	for _, dq := range carried {
		q := dq.q
		switch {
		case q.Served:
			continue // resolved elsewhere: drop silently
		case e.cfg.Workload.Timeout > 0 && c.Time-q.IssuedAt > e.cfg.Workload.Timeout:
			continue // expired query: drop
		case budgetExhausted || !dq.hasCopy || q.Requester != requester:
			kept = append(kept, dq)
			continue
		}
		it, err := e.cfg.Catalog.Item(q.Item)
		if err != nil {
			continue
		}
		if dq.copy.Expired(it, c.Time) {
			// The response went stale in transit; expired data is never
			// provided. Keep carrying nothing — drop the copy, keep the
			// query in case a fresher provider shows up.
			dq.hasCopy = false
			kept = append(kept, dq)
			continue
		}
		if !c.Send(relay, requester, "data") {
			budgetExhausted = true
			kept = append(kept, dq)
			continue
		}
		_ = e.book.Resolve(q, it, dq.copy, e.rt.Epoch, c.Time)
	}
	d.carried[relay] = kept
}

// isProvider reports whether the node can serve the item right now.
func (e *Engine) isProvider(node trace.NodeID, item cache.ItemID) bool {
	it, err := e.cfg.Catalog.Item(item)
	if err != nil {
		return false
	}
	if node == it.Source {
		return true
	}
	return e.store(node) != nil
}

// providerCopy returns the copy the provider would serve for the item, if
// any (the source always serves the current version; caching nodes serve
// their unexpired stored copy).
func (e *Engine) providerCopy(provider trace.NodeID, item cache.ItemID, now float64) (cache.Copy, bool) {
	it, err := e.cfg.Catalog.Item(item)
	if err != nil {
		return cache.Copy{}, false
	}
	if provider == it.Source {
		v := cache.CurrentVersion(it, e.rt.Epoch, now)
		if v < 0 {
			return cache.Copy{}, false
		}
		return cache.Copy{Item: it.ID, Version: v, GeneratedAt: cache.VersionTime(it, e.rt.Epoch, v), ReceivedAt: now}, true
	}
	st := e.store(provider)
	if st == nil {
		return cache.Copy{}, false
	}
	// Get, not Peek: serving a query is a use, and the eviction policies
	// (LRU/LFU) must see it. Metrics sampling keeps using Peek.
	cp, ok := st.Get(item, now)
	if !ok || cp.Expired(it, now) {
		return cache.Copy{}, false
	}
	return cp, true
}

// DelegationLoad reports, for diagnostics, how many query copies each
// relay currently carries (sorted by node ID).
func (e *Engine) DelegationLoad() []int {
	if e.delegation == nil {
		return nil
	}
	ids := make([]int, 0, len(e.delegation.carried))
	for n := range e.delegation.carried {
		ids = append(ids, int(n))
	}
	sort.Ints(ids)
	out := make([]int, 0, len(ids))
	for _, n := range ids {
		out = append(out, len(e.delegation.carried[trace.NodeID(n)]))
	}
	return out
}
