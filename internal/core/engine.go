package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"freshcache/internal/cache"
	"freshcache/internal/centrality"
	"freshcache/internal/eventsim"
	"freshcache/internal/metrics"
	"freshcache/internal/network"
	"freshcache/internal/obs"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// Scheme is a cache-freshness maintenance protocol under evaluation.
// Engine calls Init once at the end of warmup (when contact rates and the
// caching-node set exist), OnGenerate whenever a source produces a new
// version, and OnContact for every contact of the measurement phase.
type Scheme interface {
	Name() string
	Init(rt *Runtime) error
	OnGenerate(it cache.Item, version int, now float64)
	OnContact(c *network.Contact)
}

// StatsReporter is optionally implemented by schemes that expose internal
// statistics (e.g. the replication planner's analytical probabilities).
type StatsReporter interface {
	SchemeStats() map[string]float64
}

// Rebuilder is optionally implemented by schemes that can adapt their
// structures (e.g. the refresh hierarchy) to updated contact-rate
// estimates mid-run; the engine invokes it every Config.RebuildInterval.
type Rebuilder interface {
	Rebuild(rt *Runtime) error
}

// Runtime is the environment the engine hands to a scheme at Init: the
// converged contact-rate knowledge, the caching-node set, and the cache
// delivery path (which is also where delivery metrics are recorded).
type Runtime struct {
	N            int
	Catalog      *cache.Catalog
	Rates        centrality.RateStore
	CachingNodes []trace.NodeID
	Epoch        float64 // measurement-phase start
	Horizon      float64 // simulation end
	PReq         float64 // required refresh probability
	MaxFanout    int     // hierarchy fan-out bound
	MaxRelays    int     // replication relay bound per destination
	// RelayBufferCap bounds copies parked per relay node (0 = unbounded).
	RelayBufferCap int
	// Seed lets schemes derive their own deterministic randomness.
	Seed int64
	// Obs is the run's event trace (nil when tracing is off). Emit is
	// nil-safe, so schemes record unconditionally.
	Obs *obs.RunTrace
	// Lin is the run's causal lineage (nil when lineage is off). All its
	// methods are nil-safe and return SpanID 0 when off, so schemes parent
	// spans unconditionally.
	Lin *obs.Lineage

	eng *Engine
	// isCaching is indexed by NodeID — the per-contact membership test is
	// a slice load, not a map probe.
	isCaching []bool
	// allNodes is the cached 0..N-1 ID slice returned by AllNodes.
	allNodes []trace.NodeID
}

// IsCachingNode reports whether the node is in the caching set.
func (rt *Runtime) IsCachingNode(n trace.NodeID) bool {
	return n >= 0 && int(n) < len(rt.isCaching) && rt.isCaching[n]
}

// RatesFor returns the contact-rate knowledge available to the given node
// right now. Under KnowledgeOracle (default) this is the converged
// warmup-phase estimate shared by everyone; under KnowledgeDistributed it
// is the node's own local view, built from its contacts and transitive
// gossip — stale and partial exactly as a real deployment's would be.
func (rt *Runtime) RatesFor(node trace.NodeID) centrality.RateView {
	if rt.eng.distEst == nil {
		return rt.Rates
	}
	v, err := rt.eng.distEst.View(node, rt.eng.sim.Now())
	if err != nil {
		// Before any observation time has elapsed there is nothing to
		// know; an empty view is the honest answer.
		return centrality.EmptyView(rt.N)
	}
	return v
}

// CachedVersion returns the version of the item cached at the node, or
// (-1, false) when the node caches no copy.
func (rt *Runtime) CachedVersion(node trace.NodeID, item cache.ItemID) (int, bool) {
	c, ok := rt.CachedCopy(node, item)
	if !ok {
		return -1, false
	}
	return c.Version, true
}

// CachedCopy returns the copy of the item cached at the node, if any.
func (rt *Runtime) CachedCopy(node trace.NodeID, item cache.ItemID) (cache.Copy, bool) {
	st := rt.eng.store(node)
	if st == nil {
		return cache.Copy{}, false
	}
	return st.Peek(item)
}

// DeliverToCache stores the copy at the caching node, recording the
// delivery metric when the store accepts it (i.e. the copy is newer than
// what the node had). It returns false for non-caching nodes and for
// stale copies. Transmission accounting is the caller's job (Contact.Send)
// — delivery and transfer cost are deliberately separate so the Oracle
// bound can deliver for free.
func (rt *Runtime) DeliverToCache(node trace.NodeID, c cache.Copy, now float64) bool {
	return rt.eng.deliverToCache(node, c, now)
}

// AllNodes returns the node IDs 0..N-1; the candidate set for relay
// selection. The slice is built once and shared — it is called per
// destination per generation inside replication planning, so callers
// must treat it as immutable.
func (rt *Runtime) AllNodes() []trace.NodeID {
	if rt.allNodes == nil {
		rt.allNodes = make([]trace.NodeID, rt.N)
		for i := range rt.allNodes {
			rt.allNodes[i] = trace.NodeID(i)
		}
	}
	return rt.allNodes
}

// Items returns the scenario's items in ID order as a shared immutable
// slice — the allocation-free counterpart of Catalog.Items for the
// per-contact dispatch path.
func (rt *Runtime) Items() []cache.Item { return rt.Catalog.View() }

// KnowledgeMode selects how much contact-rate knowledge protocols get.
type KnowledgeMode int

const (
	// KnowledgeOracle gives every node the converged warmup-phase rate
	// estimate — the standard assumption of this paper family ("nodes
	// exchange contact histories and converge").
	KnowledgeOracle KnowledgeMode = iota
	// KnowledgeDistributed gives each node only its own local view:
	// direct observations plus snapshots gossiped transitively on
	// contacts. Used to measure the cost of imperfect knowledge.
	KnowledgeDistributed
)

// Config configures one simulation run.
type Config struct {
	Trace   *trace.Trace
	Catalog *cache.Catalog
	Scheme  Scheme

	// NumCachingNodes K: how many caching nodes (NCLs) to select.
	NumCachingNodes int
	// WarmupFraction of the trace used for rate estimation before the
	// measurement phase starts. Default 0.3.
	WarmupFraction float64
	// PReq is the required probability that a new version reaches a
	// caching node within the item's freshness window. Default 0.9.
	PReq float64
	// MaxFanout bounds refresh-tree children per node. Default 3.
	MaxFanout int
	// MaxRelays bounds replication relays per destination. Default 5.
	MaxRelays int
	// CacheCapacity is the per-node store capacity in size units
	// (0 = unlimited).
	CacheCapacity int
	// CachePolicy selects the store eviction policy (default LRU).
	CachePolicy cache.Policy
	// Workload configures queries; a zero QueryRate disables them.
	Workload cache.WorkloadConfig
	// QueryRelays enables two-way query delegation: each pending query is
	// handed to up to this many relays, which fetch the data from
	// providers they meet and carry the response back (0 = off; queries
	// are then served only on direct requester–provider contact).
	QueryRelays int
	// Seed drives all randomness (workload; the trace carries its own).
	Seed int64
	// SampleInterval between freshness-ratio samples. Default: measurement
	// phase / 240.
	SampleInterval float64
	// MsgTime is the per-message transfer time for the contact budget
	// (0 = infinite bandwidth).
	MsgTime float64
	// CentralityWindow for caching-node selection. Default 6h.
	CentralityWindow float64
	// Knowledge selects oracle (default) or distributed rate knowledge
	// for the protocols. Caching-node selection always uses the converged
	// estimate: the study target is the refresh protocol, not placement.
	Knowledge KnowledgeMode
	// DropProb injects independent message loss into every transmission.
	DropProb float64
	// Churn turns nodes off and on (suppressing their contacts).
	Churn network.ChurnConfig
	// RelayBufferCap bounds how many distinct copies a relay node parks
	// at once (0 = unbounded); overfull buffers evict the copy closest to
	// expiry.
	RelayBufferCap int
	// RebuildInterval re-estimates contact rates and rebuilds the
	// scheme's structures (refresh trees) every this many simulated
	// seconds after warmup (0 = never). Requires a scheme implementing
	// Rebuilder; ignored otherwise. Useful when mobility drifts.
	RebuildInterval float64
	// Placement selects the caching-node placement policy (default:
	// greedy contact coverage, the paper family's NCL selection).
	Placement centrality.Placement
	// Obs, when non-nil, receives the run's typed event trace (contacts,
	// refresh deliveries, replication plans, query outcomes, ...).
	Obs *obs.RunTrace
	// Metrics, when non-nil, receives the run's registry metrics (contact
	// and delivery counters, event-queue depth). Both stay nil in
	// benchmarks: the disabled path is a handful of nil checks.
	Metrics *obs.Registry
	// Lineage, when non-nil, receives the run's causal span tree: one root
	// per generated version, extended at every duty assumption, relay
	// handoff, delivery and duty reassignment. Like Obs it is nil-safe
	// throughout, so the lineage-off hot path costs one branch per site.
	Lineage *obs.Lineage
	// Timeline, when non-nil, receives simulated-time telemetry samples
	// (freshness ratio, cumulative counts, per-node/per-item copy age)
	// every TimelineTick simulated seconds. Enabling it schedules extra
	// simulator events, so Result.SimulatedEventCount grows with it on.
	Timeline *obs.Timeline
	// TimelineTick is the sampling period in simulated seconds; <= 0
	// selects the freshness-sampling default (measurement phase / 240).
	TimelineTick float64
	// ContactTimeline, when non-nil, is the pre-compiled contact timeline
	// for Trace (network.CompileTimeline). Sweeps compile it once per
	// trace and share it read-only across replicates and cells; nil
	// compiles on the fly. Must match Trace's contacts exactly.
	ContactTimeline []eventsim.StaticEvent
	// Reuse, when non-nil, recycles worker-local run state (simulator
	// storage, scheme scratch, plan buffers) from a previous engine on the
	// same worker. The previous run must be fully finished — results
	// extracted — before its Reuse is handed to a new engine.
	Reuse *Reuse
	// ReferenceScheduler routes pre-planned events through the dynamic
	// heap instead of compiled static timelines. Dispatch order is
	// identical by construction; the mode exists for the differential
	// determinism tests and costs the old per-event heap overhead.
	ReferenceScheduler bool
	// RateBacking selects the contact-rate representation: BackingAuto
	// (default) uses the dense n×n matrix for small traces and sorted
	// per-node neighbor lists above centrality.AutoSparseThreshold nodes.
	// The sparse path is bit-identical to the dense one (zero-rate pairs
	// contribute exactly nothing to selection, scores and plans); the
	// explicit settings exist for the differential tests.
	RateBacking centrality.Backing
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.WarmupFraction == 0 {
		out.WarmupFraction = 0.3
	}
	if out.PReq == 0 {
		out.PReq = 0.9
	}
	if out.MaxFanout == 0 {
		out.MaxFanout = 3
	}
	if out.MaxRelays == 0 {
		out.MaxRelays = 5
	}
	if out.CentralityWindow == 0 {
		out.CentralityWindow = 6 * 3600
	}
	return out
}

func (c *Config) validate() error {
	switch {
	case c.Trace == nil:
		return errors.New("core: nil trace")
	case c.Catalog == nil:
		return errors.New("core: nil catalog")
	case c.Scheme == nil:
		return errors.New("core: nil scheme")
	case c.NumCachingNodes <= 0:
		return fmt.Errorf("core: non-positive caching node count %d", c.NumCachingNodes)
	case c.NumCachingNodes >= c.Trace.N:
		return fmt.Errorf("core: %d caching nodes for %d-node trace", c.NumCachingNodes, c.Trace.N)
	case c.WarmupFraction <= 0 || c.WarmupFraction >= 1:
		return fmt.Errorf("core: warmup fraction %v outside (0,1)", c.WarmupFraction)
	case c.PReq <= 0 || c.PReq > 1:
		return fmt.Errorf("core: pReq %v outside (0,1]", c.PReq)
	case c.MaxFanout < 0 || c.MaxRelays < 0:
		return fmt.Errorf("core: negative fanout %d or relays %d", c.MaxFanout, c.MaxRelays)
	case c.SampleInterval < 0:
		return fmt.Errorf("core: negative sample interval %v", c.SampleInterval)
	case c.RelayBufferCap < 0:
		return fmt.Errorf("core: negative relay buffer cap %d", c.RelayBufferCap)
	case c.RebuildInterval < 0:
		return fmt.Errorf("core: negative rebuild interval %v", c.RebuildInterval)
	case c.QueryRelays < 0:
		return fmt.Errorf("core: negative query relay count %d", c.QueryRelays)
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	for _, it := range c.Catalog.Items() {
		if int(it.Source) >= c.Trace.N {
			return fmt.Errorf("core: item %d source %d outside trace", it.ID, it.Source)
		}
	}
	return nil
}

// Engine runs one scheme over one trace and aggregates metrics.
type Engine struct {
	cfg       Config
	sim       *eventsim.Simulator
	net       *network.Net
	collector *metrics.Collector
	book      *cache.QueryBook

	epoch   float64
	horizon float64

	rt         *Runtime
	distEst    *centrality.DistributedEstimator // non-nil under KnowledgeDistributed
	delegation *delegationState                 // non-nil when QueryRelays > 0
	// stores is indexed by NodeID (nil for non-caching nodes); created at
	// the measurement epoch once the caching set is known.
	stores  []*cache.Store
	sources map[trace.NodeID][]cache.ItemID // node -> items it sources
	queries []*cache.Query
	// qscratch is resolveFor's reusable snapshot of a pending-query list
	// (Resolve mutates the live list mid-iteration). Contacts are
	// processed one at a time, so a single buffer serves every call.
	qscratch []*cache.Query

	// Observability: obsTrace receives typed events (nil = off); the
	// metric handles are resolved once at construction and are nil (no-op)
	// when cfg.Metrics is nil. lineage and timeline are the run's causal
	// span tree and telemetry sampler (both nil = off, nil-safe).
	obsTrace    *obs.RunTrace
	lineage     *obs.Lineage
	timeline    *obs.Timeline
	cContacts   *obs.Counter
	cDeliveries *obs.Counter
	cQueryDrops *obs.Counter

	// queryDrops counts workload queries discarded because their item is
	// missing from the catalog; surfaced as Result.QueriesDropped so
	// malformed workloads cannot lose queries without a signal.
	queryDrops int

	// scratch is the run's allocation surface (recycled via Config.Reuse,
	// transient otherwise); estObserveAll keeps the converged estimator
	// learning past the epoch, needed only when periodic rebuilds will
	// read it again.
	scratch       *runScratch
	estObserveAll bool

	initErr error // deferred error from the epoch event
}

// NewEngine validates the configuration and prepares a run.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	scratch := cfg.Reuse.acquire()
	e := &Engine{
		cfg:         cfg,
		sim:         scratch.sim,
		scratch:     scratch,
		collector:   metrics.New(),
		book:        cache.NewQueryBook(cfg.Workload.Timeout),
		stores:      make([]*cache.Store, cfg.Trace.N),
		sources:     make(map[trace.NodeID][]cache.ItemID),
		obsTrace:    cfg.Obs,
		lineage:     cfg.Lineage,
		timeline:    cfg.Timeline,
		cContacts:   cfg.Metrics.Counter("engine/contacts"),
		cDeliveries: cfg.Metrics.Counter("engine/deliveries"),
		cQueryDrops: cfg.Metrics.Counter("engine/query_drops"),
	}
	if cfg.ReferenceScheduler {
		e.sim.SetHeapOnly(true)
	}
	e.epoch = cfg.Trace.Duration * cfg.WarmupFraction
	e.horizon = cfg.Trace.Duration
	if cfg.QueryRelays > 0 {
		e.delegation = newDelegationState(cfg.QueryRelays)
	}
	for _, it := range cfg.Catalog.Items() {
		e.sources[it.Source] = append(e.sources[it.Source], it.ID)
	}
	var err error
	e.net, err = network.New(e.sim, cfg.Trace, network.Config{
		MsgTime:  cfg.MsgTime,
		DropProb: cfg.DropProb,
		Churn:    cfg.Churn,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Run executes the simulation and returns the aggregated result.
func (e *Engine) Run() (metrics.Result, error) {
	start := time.Now()

	estimator, err := centrality.NewEstimatorBacking(e.cfg.Trace.N, 0, e.cfg.RateBacking)
	if err != nil {
		return metrics.Result{}, err
	}
	if e.cfg.Knowledge == KnowledgeDistributed {
		e.distEst = centrality.NewDistributedEstimator(e.cfg.Trace.N, 0)
	}
	// The converged estimator keeps learning past the epoch only when a
	// periodic rebuild will read its counts again; otherwise the epoch
	// snapshot is the last reader and post-epoch observation is dead work.
	// Contacts at exactly the epoch run before the epoch event (lower seq)
	// and land in its snapshot, so they always observe.
	if e.cfg.RebuildInterval > 0 {
		_, e.estObserveAll = e.cfg.Scheme.(Rebuilder)
	}
	e.net.Attach(network.HandlerFunc(func(c *network.Contact) {
		if e.distEst != nil {
			// Local views keep learning for the whole run, like real nodes.
			e.distEst.Observe(c.A, c.B, c.Time)
		}
		if e.estObserveAll || c.Time <= e.epoch {
			estimator.Observe(c.A, c.B)
		}
		if c.Time < e.epoch {
			return
		}
		if e.rt == nil || e.initErr != nil {
			return
		}
		e.cContacts.Inc()
		if e.obsTrace != nil {
			e.obsTrace.Emit(obs.Event{
				T: c.Time, Kind: obs.KindContactBegin,
				A: int32(c.A), B: int32(c.B), Item: -1, Ver: -1, Val: c.Duration,
			})
		}
		e.cfg.Scheme.OnContact(c)
		e.resolveQueries(c)
		e.processDelegation(c)
		if e.obsTrace != nil {
			e.obsTrace.Emit(obs.Event{
				T: c.Time + c.Duration, Kind: obs.KindContactEnd,
				A: int32(c.A), B: int32(c.B), Item: -1, Ver: -1,
			})
		}
	}))
	if e.cfg.Metrics != nil {
		// Sample event-queue depth every few hundred processed events: the
		// histogram shows how deep the future-event list runs without
		// touching per-event cost in unobserved runs (the hook stays nil).
		depth := e.cfg.Metrics.Histogram("eventsim/queue_depth", obs.DepthBuckets())
		e.sim.SetProcessedHook(func(processed uint64, pending int) {
			if processed%256 == 0 {
				depth.Observe(float64(pending))
			}
		})
	}
	if err := e.net.ScheduleCompiled(e.cfg.ContactTimeline); err != nil {
		return metrics.Result{}, err
	}

	// The epoch event finalizes rates, selects caching nodes, initializes
	// the scheme and schedules the measurement-phase machinery.
	if _, err := e.sim.ScheduleAt(e.epoch, func(now float64) {
		if err := e.startMeasurement(estimator, now); err != nil {
			e.initErr = err
			e.sim.Stop()
		}
	}); err != nil {
		return metrics.Result{}, err
	}

	if _, err := e.sim.Run(e.horizon); err != nil {
		return metrics.Result{}, err
	}
	if e.initErr != nil {
		return metrics.Result{}, e.initErr
	}

	if e.obsTrace != nil {
		// Query outcomes settle only once the run ends (a pending query may
		// yet be served), so hits and misses are emitted here, in the
		// deterministic issue order of the query book.
		for _, q := range e.book.All() {
			ev := obs.Event{A: int32(q.Requester), B: -1, Item: int32(q.Item), Ver: -1}
			switch {
			case q.Served && q.Valid:
				ev.T, ev.Kind, ev.Ver = q.ServedAt, obs.KindCacheHit, int32(q.ServedVersion)
				ev.Val = q.ServedAt - q.ServedGeneratedAt
			case q.Served:
				ev.T, ev.Kind, ev.Ver = q.ServedAt, obs.KindCacheMiss, int32(q.ServedVersion)
			default:
				ev.T, ev.Kind = e.horizon, obs.KindCacheMiss
			}
			e.obsTrace.Emit(ev)
		}
	}

	txByKind := make(map[string]int)
	refreshTx := 0
	for _, kind := range e.net.TransmissionKinds() {
		n := e.net.Transmissions(kind)
		txByKind[kind] = n
		if kind != "data" && kind != "query" { // access-path traffic is not refresh overhead
			refreshTx += n
		}
	}
	res := metrics.Aggregate(e.collector, e.book.All(), txByKind, refreshTx)
	if refreshTx > 0 {
		sourceTx := 0
		loads := make([]float64, e.cfg.Trace.N)
		maxLoad := 0
		for n := 0; n < e.cfg.Trace.N; n++ {
			sent := e.net.SentBy(trace.NodeID(n))
			loads[n] = float64(sent)
			if sent > maxLoad {
				maxLoad = sent
			}
		}
		for s := range e.sources {
			sourceTx += e.net.SentBy(s)
		}
		res.SourceTxShare = float64(sourceTx) / float64(refreshTx)
		res.MaxNodeTxShare = float64(maxLoad) / float64(refreshTx)
		res.LoadGini = stats.Gini(loads)
	}
	res.QueriesDropped = e.queryDrops
	res.Scheme = e.cfg.Scheme.Name()
	res.Trace = e.cfg.Trace.Name
	res.Seed = e.cfg.Seed
	res.SimulatedEventCount = e.sim.Processed()
	res.WallClockSeconds = time.Since(start).Seconds()
	if sr, ok := e.cfg.Scheme.(StatsReporter); ok {
		// Scheme stats ride along for analysis-validation experiments.
		res.SchemeStats = sr.SchemeStats()
	}
	return res, nil
}

// Collector exposes the raw metric log (delay CDFs etc.) after Run.
func (e *Engine) Collector() *metrics.Collector { return e.collector }

// ContactsDispatched reports how many trace contacts the run dispatched
// to the protocol stack — the unit the benchmark harness normalizes
// per-contact cost by.
func (e *Engine) ContactsDispatched() int { return e.net.ContactsDispatched() }

// Runtime exposes the runtime after Run (nil if warmup never completed);
// used by experiments that inspect the hierarchy.
func (e *Engine) Runtime() *Runtime { return e.rt }

func (e *Engine) startMeasurement(est *centrality.Estimator, now float64) error {
	rates, err := est.Rates(now)
	if err != nil {
		return fmt.Errorf("core: rate estimation: %w", err)
	}
	exclude := make(map[trace.NodeID]bool, len(e.sources))
	for s := range e.sources {
		exclude[s] = true
	}
	caching, err := centrality.Select(e.cfg.Placement, rates, e.cfg.CentralityWindow, e.cfg.NumCachingNodes, exclude, e.cfg.Seed)
	if err != nil {
		return fmt.Errorf("core: caching node selection: %w", err)
	}
	for _, cn := range caching {
		st, err := cache.NewStoreWithPolicy(e.cfg.Catalog, e.cfg.CacheCapacity, e.cfg.CachePolicy)
		if err != nil {
			return err
		}
		e.stores[cn] = st
	}

	e.rt = &Runtime{
		N:              e.cfg.Trace.N,
		Catalog:        e.cfg.Catalog,
		Rates:          rates,
		CachingNodes:   caching,
		Epoch:          now,
		Horizon:        e.horizon,
		PReq:           e.cfg.PReq,
		MaxFanout:      e.cfg.MaxFanout,
		MaxRelays:      e.cfg.MaxRelays,
		RelayBufferCap: e.cfg.RelayBufferCap,
		Seed:           e.cfg.Seed,
		Obs:            e.obsTrace,
		Lin:            e.lineage,
		eng:            e,
		isCaching:      make([]bool, e.cfg.Trace.N),
	}
	for _, cn := range caching {
		e.rt.isCaching[cn] = true
	}
	if err := e.cfg.Scheme.Init(e.rt); err != nil {
		return fmt.Errorf("core: scheme init: %w", err)
	}

	if e.cfg.RebuildInterval > 0 {
		if rb, ok := e.cfg.Scheme.(Rebuilder); ok {
			// Rebuilds estimate rates over the window since the previous
			// (re)build, so they track drift instead of averaging over
			// every regime ever seen.
			lastCounts := est.Snapshot()
			lastTime := now
			for t := now + e.cfg.RebuildInterval; t < e.horizon; t += e.cfg.RebuildInterval {
				if _, err := e.sim.ScheduleAt(t, func(tnow float64) {
					cur := est.Snapshot()
					fresh, err := centrality.RatesBetweenSnapshots(lastCounts, cur, tnow-lastTime)
					if err != nil {
						return
					}
					lastCounts, lastTime = cur, tnow
					e.rt.Rates = fresh
					if err := rb.Rebuild(e.rt); err != nil && e.initErr == nil {
						e.initErr = err
						e.sim.Stop()
						return
					}
					if e.obsTrace != nil {
						// Responsibility for future versions now follows the
						// rebuilt trees; one event per item, rooted at its
						// source.
						for _, it := range e.cfg.Catalog.View() {
							e.obsTrace.Emit(obs.Event{
								T: tnow, Kind: obs.KindDutyReassigned,
								A: int32(it.Source), B: -1, Item: int32(it.ID), Ver: -1,
							})
						}
					}
					if e.lineage != nil {
						// One reassign span per item, parented on the newest
						// generation so the tree shows which version's duty
						// chain the rebuild interrupted.
						for _, it := range e.cfg.Catalog.View() {
							e.lineage.Reassign(tnow, e.lineage.LatestRoot(int32(it.ID)), int32(it.Source), int32(it.ID))
						}
					}
				}); err != nil {
					return err
				}
			}
		}
	}

	// Everything below is known in full at the epoch, so instead of one
	// heap insertion (and one closure) per event it is compiled into a
	// single static plan and attached as one timeline. Actions are
	// appended in the exact order the heap schedule used to be built —
	// generations (item-major, then version), freshness samples, timeline
	// ticks, query issues — and the StaticEvent projection is sorted with
	// a stable sort, so equal-time actions keep that order and the merged
	// dispatch sequence is bit-for-bit what per-event scheduling produced.
	plan := e.scratch.plan[:0]

	// Version generation events.
	for idx, it := range e.cfg.Catalog.View() {
		for v := 0; ; v++ {
			at := cache.VersionTime(it, e.rt.Epoch, v)
			if at >= e.horizon {
				break
			}
			plan = append(plan, planAction{time: at, op: opGenerate, item: int32(idx), ver: int32(v)})
		}
	}

	// Freshness sampling.
	interval := e.cfg.SampleInterval
	if interval == 0 {
		interval = (e.horizon - e.rt.Epoch) / 240
	}
	for t := e.rt.Epoch + interval; t < e.horizon; t += interval {
		plan = append(plan, planAction{time: t, op: opSample})
	}

	// Telemetry timeline: planned only when a sampler is attached, so the
	// timeline-off event count (and thus determinism baselines) are
	// untouched.
	if e.timeline != nil {
		tick := e.cfg.TimelineTick
		if tick <= 0 {
			tick = (e.horizon - e.rt.Epoch) / 240
		}
		for t := e.rt.Epoch + tick; t < e.horizon; t += tick {
			plan = append(plan, planAction{time: t, op: opTimeline})
		}
	}

	// Query workload.
	if e.cfg.Workload.QueryRate > 0 {
		qs, err := cache.GenerateQueries(e.cfg.Workload, e.cfg.Catalog, e.cfg.Trace.N, e.rt.Epoch, e.horizon, e.cfg.Seed)
		if err != nil {
			return err
		}
		e.queries = qs
		for _, q := range qs {
			plan = append(plan, planAction{time: q.IssuedAt, op: opQuery, q: q})
		}
	}

	events := e.scratch.planEvents[:0]
	for i := range plan {
		events = append(events, eventsim.StaticEvent{Time: plan[i].time, Arg: int32(i)})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	e.scratch.plan, e.scratch.planEvents = plan, events
	if err := e.sim.AttachTimeline(events, e.runPlanAction); err != nil {
		return err
	}
	return nil
}

// runPlanAction dispatches one entry of the compiled measurement plan.
func (e *Engine) runPlanAction(arg int32, now float64) {
	a := &e.scratch.plan[arg]
	switch a.op {
	case opGenerate:
		it := e.cfg.Catalog.View()[a.item]
		e.collector.RecordGeneration()
		if e.obsTrace != nil {
			e.obsTrace.Emit(obs.Event{
				T: now, Kind: obs.KindGenerate,
				A: int32(it.Source), B: -1, Item: int32(it.ID), Ver: a.ver,
			})
		}
		// The root span exists before the scheme sees the version, so
		// every duty/handoff the scheme records can parent on it via
		// Lin.Root.
		e.lineage.Generate(now, int32(it.ID), a.ver, int32(it.Source))
		e.cfg.Scheme.OnGenerate(it, int(a.ver), now)
	case opSample:
		e.collector.RecordSample(now, e.freshnessRatio(now))
	case opTimeline:
		e.sampleTimeline(now)
	case opQuery:
		e.issueQuery(a.q, now)
	}
}

// store returns the node's cache store, or nil for non-caching nodes and
// out-of-range IDs.
func (e *Engine) store(node trace.NodeID) *cache.Store {
	if node < 0 || int(node) >= len(e.stores) {
		return nil
	}
	return e.stores[node]
}

func (e *Engine) deliverToCache(node trace.NodeID, c cache.Copy, now float64) bool {
	st := e.store(node)
	if st == nil {
		return false
	}
	it, err := e.cfg.Catalog.Item(c.Item)
	if err != nil {
		return false
	}
	accepted, err := st.Put(c, now)
	if err != nil || !accepted {
		return false
	}
	e.collector.RecordDelivery(metrics.Delivery{
		Item:        c.Item,
		Version:     c.Version,
		Node:        node,
		GeneratedAt: c.GeneratedAt,
		DeliveredAt: now,
		OnTime:      now-c.GeneratedAt <= it.FreshnessWindow,
	})
	e.cDeliveries.Inc()
	if e.obsTrace != nil {
		e.obsTrace.Emit(obs.Event{
			T: now, Kind: obs.KindRefreshDelivered,
			A: -1, B: int32(node), Item: int32(c.Item), Ver: int32(c.Version),
			Val: now - c.GeneratedAt,
		})
	}
	return true
}

// sampleTimeline records one telemetry tick: run-level aggregates first,
// then the age of every held (caching node, item) copy. It reads only
// run-local state (collector, net, stores), never the process-wide metric
// registry — under a parallel sweep the registry mixes concurrent runs, so
// sampling it here would make the export depend on worker scheduling.
func (e *Engine) sampleTimeline(now float64) {
	tl := e.timeline
	tl.Sample(now, "freshness_ratio", -1, -1, e.freshnessRatio(now))
	tl.Sample(now, "contacts", -1, -1, float64(e.net.ContactsDispatched()))
	tl.Sample(now, "deliveries", -1, -1, float64(e.collector.DeliveryCount()))
	tl.Sample(now, "transmissions", -1, -1, float64(e.net.TotalTransmissions()))
	for _, cn := range e.rt.CachingNodes {
		st := e.stores[cn]
		for _, it := range e.cfg.Catalog.View() {
			if c, ok := st.Peek(it.ID); ok {
				tl.Sample(now, "copy_age", int32(cn), int32(it.ID), now-c.GeneratedAt)
			}
		}
	}
}

// freshnessRatio is the fraction of (caching node, item) pairs holding the
// newest version at time now.
func (e *Engine) freshnessRatio(now float64) float64 {
	total := 0
	fresh := 0
	for _, cn := range e.rt.CachingNodes {
		st := e.stores[cn]
		for _, it := range e.cfg.Catalog.View() {
			total++
			c, ok := st.Peek(it.ID)
			if !ok {
				continue
			}
			if c.Version >= cache.CurrentVersion(it, e.rt.Epoch, now) {
				fresh++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(fresh) / float64(total)
}

// issueQuery registers a query, resolving it locally when the requester
// itself holds a copy (it is a caching node or the item's source).
func (e *Engine) issueQuery(q *cache.Query, now float64) {
	it, err := e.cfg.Catalog.Item(q.Item)
	if err != nil {
		// A query for an item the catalog does not know cannot be served;
		// count the drop instead of swallowing it so malformed workloads
		// are visible in the result and the metric registry.
		e.queryDrops++
		e.cQueryDrops.Inc()
		return
	}
	e.book.Issue(q)
	if e.obsTrace != nil {
		e.obsTrace.Emit(obs.Event{
			T: now, Kind: obs.KindQueryIssued,
			A: int32(q.Requester), B: -1, Item: int32(q.Item), Ver: -1,
		})
	}
	if q.Requester == it.Source {
		v := cache.CurrentVersion(it, e.rt.Epoch, now)
		if v >= 0 {
			_ = e.book.Resolve(q, it, cache.Copy{
				Item: it.ID, Version: v,
				GeneratedAt: cache.VersionTime(it, e.rt.Epoch, v),
				ReceivedAt:  now,
			}, e.rt.Epoch, now)
		}
		return
	}
	if st := e.store(q.Requester); st != nil {
		if c, ok := st.Peek(q.Item); ok && !c.Expired(it, now) {
			_ = e.book.Resolve(q, it, c, e.rt.Epoch, now)
		}
	}
}

// resolveQueries serves pending queries across a live contact: each
// endpoint's pending queries are answered when the other endpoint holds a
// copy (caching node) or is the item's source. Each answer costs one
// "data" transmission from the contact budget.
func (e *Engine) resolveQueries(c *network.Contact) {
	e.resolveFor(c, c.A, c.B)
	e.resolveFor(c, c.B, c.A)
}

func (e *Engine) resolveFor(c *network.Contact, requester, provider trace.NodeID) {
	pending := e.book.Pending(requester, c.Time)
	if len(pending) == 0 {
		return
	}
	// Snapshot: Resolve mutates the pending list.
	qs := append(e.qscratch[:0], pending...)
	e.qscratch = qs
	for _, q := range qs {
		it, err := e.cfg.Catalog.Item(q.Item)
		if err != nil {
			continue
		}
		// Expired data is invalid and is never provided; the query stays
		// pending for a provider with a live copy (providerCopy enforces
		// this).
		cp, have := e.providerCopy(provider, q.Item, c.Time)
		if !have {
			continue
		}
		if !c.Send(provider, requester, "data") {
			return // contact budget exhausted
		}
		_ = e.book.Resolve(q, it, cp, e.rt.Epoch, c.Time)
	}
}
