package core

import (
	"freshcache/internal/bitset"
	"freshcache/internal/cache"
	"freshcache/internal/eventsim"
)

// Reuse bundles the worker-local run state an Engine can recycle across
// consecutive runs instead of reallocating: the simulator (event slabs,
// heap capacity, compiled-timeline cursors), the bitset arena behind duty
// destination/relay sets, the duty and relay-entry slabs, pointer-row
// pools, and the pre-planned static event timeline. A sweep worker
// creates one Reuse and passes it to every cell it runs; NewEngine resets
// it before wiring it in.
//
// A Reuse must never be shared by two live engines: handing it to a new
// Engine invalidates all state of the previous run, so callers must be
// completely done with the prior engine (including metric extraction)
// first. It is not safe for concurrent use.
type Reuse struct {
	s runScratch
}

// NewReuse returns an empty reusable state bundle.
func NewReuse() *Reuse {
	return &Reuse{s: runScratch{sim: eventsim.New()}}
}

// Reset rewinds all recycled state, invalidating everything handed out to
// the previous run. NewEngine calls it automatically; it is exported so
// long-lived holders can drop run state eagerly.
func (r *Reuse) Reset() { r.s.reset() }

// acquire resets and returns the bundled scratch. A nil Reuse yields a
// fresh transient scratch, so the engine has one allocation path either
// way.
func (r *Reuse) acquire() *runScratch {
	if r == nil {
		return newRunScratch()
	}
	r.s.reset()
	return &r.s
}

// runScratch is the per-run allocation surface shared by the engine and
// the schemes. Every engine owns one — transient when Config.Reuse is
// nil, recycled otherwise — so scheme code has a single allocation path.
type runScratch struct {
	sim          *eventsim.Simulator
	bits         bitset.Arena
	duties       slab[duty]
	relayEntries slab[relayEntry]
	setRows      rowPool[*bitset.Set]
	dutyRows     rowPool[*duty]

	// plan is the measurement-phase static schedule (generations,
	// freshness samples, timeline ticks, query issues); planEvents is its
	// time-sorted eventsim projection.
	plan       []planAction
	planEvents []eventsim.StaticEvent
}

func newRunScratch() *runScratch {
	return &runScratch{sim: eventsim.New()}
}

func (s *runScratch) reset() {
	s.sim.Reset()
	s.bits.Reset()
	s.duties.reset()
	s.relayEntries.reset()
	s.setRows.reset()
	s.dutyRows.reset()
	s.plan = s.plan[:0]
	s.planEvents = s.planEvents[:0]
}

// slab hands out zeroed *T from block allocations, rewound wholesale by
// reset. Pointers stay valid until the next reset.
type slab[T any] struct {
	blocks     [][]T
	block, off int
}

const slabBlockLen = 128

func (s *slab[T]) get() *T {
	if s.block >= len(s.blocks) {
		s.blocks = append(s.blocks, make([]T, slabBlockLen))
	}
	p := &s.blocks[s.block][s.off]
	var zero T
	*p = zero
	s.off++
	if s.off == len(s.blocks[s.block]) {
		s.block++
		s.off = 0
	}
	return p
}

func (s *slab[T]) reset() { s.block, s.off = 0, 0 }

// rowPool recycles fixed-width slices (per-node pointer rows). Rows are
// zeroed on hand-out; a width change (different scenario dimensions on
// the same worker) drops the pool.
type rowPool[T any] struct {
	rows  [][]T
	next  int
	width int
}

func (p *rowPool[T]) row(width int) []T {
	if width != p.width {
		p.rows = p.rows[:0]
		p.next = 0
		p.width = width
	}
	if p.next >= len(p.rows) {
		p.rows = append(p.rows, make([]T, width))
		p.next = len(p.rows)
		return p.rows[p.next-1]
	}
	r := p.rows[p.next]
	p.next++
	var zero T
	for i := range r {
		r[i] = zero
	}
	return r
}

func (p *rowPool[T]) reset() { p.next = 0 }

// planAction is one pre-planned measurement-phase event. The engine
// compiles the full list at the epoch, sorts a StaticEvent projection by
// time (stable, so equal-time actions keep scheduling order), and attaches
// it to the simulator as one static timeline.
type planAction struct {
	time float64
	op   uint8
	item int32        // catalog index (opGenerate)
	ver  int32        // version (opGenerate)
	q    *cache.Query // opQuery
}

const (
	opGenerate = uint8(iota)
	opSample
	opTimeline
	opQuery
)

// Scheme-facing scratch helpers. They fall back to plain allocation when
// the Runtime was built without an engine (unit tests).

// newSet returns an empty run-scoped bit set over [0, rt.N).
func (rt *Runtime) newSet() *bitset.Set {
	if rt.eng == nil {
		return bitset.New(rt.N)
	}
	return rt.eng.scratch.bits.New(rt.N)
}

// newDuty returns a zeroed run-scoped duty.
func (rt *Runtime) newDuty() *duty {
	if rt.eng == nil {
		return new(duty)
	}
	return rt.eng.scratch.duties.get()
}

// newRelayEntry returns a zeroed run-scoped relay buffer entry.
func (rt *Runtime) newRelayEntry() *relayEntry {
	if rt.eng == nil {
		return new(relayEntry)
	}
	return rt.eng.scratch.relayEntries.get()
}

// setRow returns a zeroed length-rt.N row of set pointers.
func (rt *Runtime) setRow() []*bitset.Set {
	if rt.eng == nil {
		return make([]*bitset.Set, rt.N)
	}
	return rt.eng.scratch.setRows.row(rt.N)
}

// dutyRow returns a zeroed length-items row of duty pointers.
func (rt *Runtime) dutyRow(items int) []*duty {
	if rt.eng == nil {
		return make([]*duty, items)
	}
	return rt.eng.scratch.dutyRows.row(items)
}
