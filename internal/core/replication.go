// Package core implements the paper's contribution: distributed,
// hierarchical maintenance of cache freshness in opportunistic mobile
// networks. Each caching node is responsible for refreshing a specific set
// of other caching nodes (the refresh hierarchy, hierarchy.go), and
// probabilistic replication through relay nodes (replication.go) ensures
// each refresh arrives within the item's freshness window with at least
// the required probability. The package also contains every baseline the
// evaluation compares against (schemes.go) and the simulation engine that
// drives them over a contact trace (engine.go).
package core

import (
	"fmt"
	"sort"

	"freshcache/internal/centrality"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// DirectProb is the probability that a node with contact rate `rate` to a
// destination meets it (and can hand over a refresh) within t seconds,
// under the exponential inter-contact model.
func DirectProb(rate, t float64) float64 {
	return stats.ExpCDF(rate, t)
}

// TwoHopProb is the probability that a copy handed to a relay reaches the
// destination within t seconds: the holder must first meet the relay
// (rate holderRelay) and the relay must then meet the destination (rate
// relayDest). It is the CDF of the sum of the two exponential legs.
func TwoHopProb(holderRelay, relayDest, t float64) float64 {
	return stats.HypoExpCDF(holderRelay, relayDest, t)
}

// RelayPlan is the outcome of probabilistic replication for one
// (responsible node, destination) pair: the set of relays to hand copies
// to, and the analytical probability the destination is refreshed within
// the budget by the direct path or any relay path.
type RelayPlan struct {
	Dest trace.NodeID
	// Relays to hand copies to, in selection (descending usefulness)
	// order.
	Relays []trace.NodeID
	// DirectProb is the direct holder→dest delivery probability within the
	// budget.
	DirectProb float64
	// AchievedProb aggregates direct and relay paths.
	AchievedProb float64
	// Satisfied records whether AchievedProb met the requirement.
	Satisfied bool
}

// PlanReplication implements the paper's probabilistic replication: given
// the holder (the node responsible for refreshing dest), the remaining
// time budget, and the required delivery probability pReq, it selects the
// smallest relay set such that
//
//	1 − (1−p_direct) · Π_r (1−p_r)  ≥  pReq
//
// where p_r is the two-hop delivery probability through relay r. Relays
// are considered in descending p_r, so the set is greedy-minimal. maxRelays
// bounds the set (0 = unbounded). Candidates with no useful path (p_r = 0)
// are never selected. When the requirement cannot be met even with every
// useful candidate, the plan contains all of them and Satisfied is false —
// the protocol still does its best.
func PlanReplication(rates centrality.RateView, holder, dest trace.NodeID, candidates []trace.NodeID,
	budget, pReq float64, maxRelays int) (RelayPlan, error) {
	if holder == dest {
		return RelayPlan{}, fmt.Errorf("core: holder and destination are both %d", holder)
	}
	if budget <= 0 {
		return RelayPlan{}, fmt.Errorf("core: non-positive replication budget %v", budget)
	}
	if pReq <= 0 || pReq > 1 {
		return RelayPlan{}, fmt.Errorf("core: required probability %v outside (0,1]", pReq)
	}

	plan := RelayPlan{Dest: dest}
	plan.DirectProb = DirectProb(rates.Rate(holder, dest), budget)
	plan.AchievedProb = plan.DirectProb
	if plan.AchievedProb >= pReq {
		plan.Satisfied = true
		return plan, nil
	}

	type scored struct {
		id trace.NodeID
		p  float64
	}
	cands := make([]scored, 0, len(candidates))
	for _, r := range candidates {
		if r == holder || r == dest {
			continue
		}
		p := TwoHopProb(rates.Rate(holder, r), rates.Rate(r, dest), budget)
		if p > 0 {
			cands = append(cands, scored{id: r, p: p})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].p != cands[j].p {
			return cands[i].p > cands[j].p
		}
		return cands[i].id < cands[j].id
	})

	miss := 1 - plan.DirectProb
	for _, c := range cands {
		if maxRelays > 0 && len(plan.Relays) >= maxRelays {
			break
		}
		plan.Relays = append(plan.Relays, c.id)
		miss *= 1 - c.p
		plan.AchievedProb = 1 - miss
		if plan.AchievedProb >= pReq {
			plan.Satisfied = true
			break
		}
	}
	return plan, nil
}
