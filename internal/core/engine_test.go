package core

import (
	"testing"

	"freshcache/internal/cache"
	"freshcache/internal/metrics"
	"freshcache/internal/mobility"
	"freshcache/internal/obs"
	"freshcache/internal/trace"
)

// testScenarioTrace builds a mid-size community trace shared by the
// end-to-end tests.
func testScenarioTrace(t *testing.T, seed int64) *trace.Trace {
	t.Helper()
	g := &mobility.Community{
		TraceName: "e2e", N: 40, Duration: 12 * mobility.Day, Communities: 4,
		IntraRate: 8.0 / mobility.Day, InterRate: 1.0 / mobility.Day, RateShape: 0.8,
		InterPairFraction: 0.7, HubFraction: 0.1, HubBoost: 3, MeanContactDur: 180,
	}
	tr, err := g.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testScenarioCatalog(t *testing.T, refresh float64) *cache.Catalog {
	t.Helper()
	items := []cache.Item{
		{ID: 0, Source: 0, RefreshInterval: refresh, FreshnessWindow: refresh, Lifetime: 2 * refresh, Size: 1},
		{ID: 1, Source: 1, RefreshInterval: refresh, FreshnessWindow: refresh, Lifetime: 2 * refresh, Size: 1},
		{ID: 2, Source: 2, RefreshInterval: refresh, FreshnessWindow: refresh, Lifetime: 2 * refresh, Size: 1},
	}
	cat, err := cache.NewCatalog(items)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func runScheme(t *testing.T, s Scheme, seed int64) metrics.Result {
	t.Helper()
	eng, err := NewEngine(Config{
		Trace:           testScenarioTrace(t, seed),
		Catalog:         testScenarioCatalog(t, 4*mobility.Hour),
		Scheme:          s,
		NumCachingNodes: 6,
		Workload:        cache.WorkloadConfig{QueryRate: 1.0 / (2 * mobility.Hour), ZipfExponent: 1.0},
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestQueryDropCounted: a workload query for an item the catalog does not
// know must be counted as dropped — in the engine's result field and the
// metric registry — instead of vanishing silently.
func TestQueryDropCounted(t *testing.T) {
	reg := obs.NewRegistry()
	eng, err := NewEngine(Config{
		Trace:           testScenarioTrace(t, 1),
		Catalog:         testScenarioCatalog(t, 4*mobility.Hour),
		Scheme:          NewDirect(),
		NumCachingNodes: 6,
		Metrics:         reg,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.issueQuery(&cache.Query{Item: 99, Requester: 5, IssuedAt: 0}, 0)
	eng.issueQuery(&cache.Query{Item: 999, Requester: 6, IssuedAt: 0}, 0)
	if eng.queryDrops != 2 {
		t.Fatalf("queryDrops = %d, want 2", eng.queryDrops)
	}
	if got := reg.Counter("engine/query_drops").Value(); got != 2 {
		t.Fatalf("engine/query_drops = %d, want 2", got)
	}
	if n := len(eng.book.All()); n != 0 {
		t.Fatalf("dropped queries were issued to the book: %d", n)
	}
	// A known item is issued, not dropped.
	eng.issueQuery(&cache.Query{Item: 0, Requester: 5, IssuedAt: 0}, 0)
	if eng.queryDrops != 2 || len(eng.book.All()) != 1 {
		t.Fatalf("valid query mishandled: drops=%d issued=%d", eng.queryDrops, len(eng.book.All()))
	}
}

func TestSchemeOrderingOnFreshness(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	results := map[string]metrics.Result{}
	for _, spec := range Schemes() {
		results[spec.Name] = runScheme(t, spec.New(), 77)
	}
	for name, r := range results {
		t.Logf("%s: %s", name, r.String())
	}

	or, ep, hi, hn, dr, di, no :=
		results["oracle"], results["epidemic"], results["hierarchical"],
		results["hierarchical-norep"], results["direct-rep"], results["direct"], results["norefresh"]

	// The abstract's headline: hierarchical significantly improves
	// freshness over source-only refreshing.
	if hi.FreshnessRatio <= di.FreshnessRatio*1.2 {
		t.Errorf("hierarchical freshness %v not significantly above direct %v", hi.FreshnessRatio, di.FreshnessRatio)
	}
	// Ceilings and floors.
	if or.FreshnessRatio < 0.95 {
		t.Errorf("oracle freshness %v, want ~1", or.FreshnessRatio)
	}
	if ep.FreshnessRatio < hi.FreshnessRatio-0.05 {
		t.Errorf("epidemic %v below hierarchical %v", ep.FreshnessRatio, hi.FreshnessRatio)
	}
	if no.FreshnessRatio > di.FreshnessRatio {
		t.Errorf("norefresh %v above direct %v", no.FreshnessRatio, di.FreshnessRatio)
	}
	if no.FreshnessRatio > 0.2 {
		t.Errorf("norefresh freshness %v; should decay to ~0", no.FreshnessRatio)
	}
	// Ablations. Replication buys freshness given the hierarchy:
	if hi.FreshnessRatio < hn.FreshnessRatio-0.02 {
		t.Errorf("replication hurt freshness: %v vs %v", hi.FreshnessRatio, hn.FreshnessRatio)
	}
	// The hierarchy trades at most a small freshness gap vs source-central
	// replication for a large drop in source load (its design point):
	if hi.FreshnessRatio < dr.FreshnessRatio-0.08 {
		t.Errorf("hierarchy lost too much freshness: %v vs direct-rep %v", hi.FreshnessRatio, dr.FreshnessRatio)
	}
	if di.SourceTxShare < 0.99 {
		t.Errorf("direct source share %v, want 1 (only sources send)", di.SourceTxShare)
	}
	if dr.SourceTxShare < 0.6 {
		t.Errorf("direct-rep source share %v, want source-dominated", dr.SourceTxShare)
	}
	if hi.SourceTxShare > 0.6*dr.SourceTxShare {
		t.Errorf("hierarchy did not distribute load: source share %v vs direct-rep %v", hi.SourceTxShare, dr.SourceTxShare)
	}

	// Overhead ordering: epidemic must dwarf hierarchical, which exceeds
	// direct, and oracle is free.
	if ep.TxPerVersion < 2.5*hi.TxPerVersion {
		t.Errorf("epidemic overhead %v not well above hierarchical %v", ep.TxPerVersion, hi.TxPerVersion)
	}
	if hi.TxPerVersion <= di.TxPerVersion {
		t.Errorf("hierarchical overhead %v not above direct %v", hi.TxPerVersion, di.TxPerVersion)
	}
	if or.TxPerVersion != 0 {
		t.Errorf("oracle overhead %v, want 0", or.TxPerVersion)
	}

	// Query validity tracks freshness: hierarchical serves more queries
	// with valid (unexpired) data than source-only refreshing, and faster.
	// (FreshAnswers — freshness among *answered* queries — is not compared
	// here: a scheme whose caches are empty leaves queries pending until
	// they reach the always-fresh source, which inflates that ratio while
	// degrading delay and coverage.)
	if hi.ValidAccessRate <= di.ValidAccessRate {
		t.Errorf("hierarchical valid-access rate %v not above direct %v", hi.ValidAccessRate, di.ValidAccessRate)
	}
	if hi.MeanAccessDelaySec >= di.MeanAccessDelaySec {
		t.Errorf("hierarchical access delay %v not below direct %v", hi.MeanAccessDelaySec, di.MeanAccessDelaySec)
	}
	if hi.Answered == 0 || hi.AnsweredOK < 0.5 {
		t.Errorf("hierarchical answered %v ratio %v; workload broken?", hi.Answered, hi.AnsweredOK)
	}
}

func TestEngineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	a := runScheme(t, NewHierarchical(), 5)
	b := runScheme(t, NewHierarchical(), 5)
	if a.FreshnessRatio != b.FreshnessRatio ||
		a.Transmissions != b.Transmissions ||
		a.Deliveries != b.Deliveries ||
		a.Answered != b.Answered ||
		a.MeanRefreshDelay != b.MeanRefreshDelay {
		t.Fatalf("nondeterministic:\n%+v\n%+v", a, b)
	}
}

func TestEngineSeedMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	a := runScheme(t, NewHierarchical(), 5)
	b := runScheme(t, NewHierarchical(), 6)
	if a.Transmissions == b.Transmissions && a.FreshnessRatio == b.FreshnessRatio && a.Answered == b.Answered {
		t.Fatal("different seeds produced identical results")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	tr := testScenarioTrace(t, 1)
	cat := testScenarioCatalog(t, mobility.Hour)
	base := func() Config {
		return Config{Trace: tr, Catalog: cat, Scheme: NewDirect(), NumCachingNodes: 4}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil trace", func(c *Config) { c.Trace = nil }},
		{"nil catalog", func(c *Config) { c.Catalog = nil }},
		{"nil scheme", func(c *Config) { c.Scheme = nil }},
		{"zero caching nodes", func(c *Config) { c.NumCachingNodes = 0 }},
		{"too many caching nodes", func(c *Config) { c.NumCachingNodes = 40 }},
		{"bad warmup", func(c *Config) { c.WarmupFraction = 1.5 }},
		{"bad preq", func(c *Config) { c.PReq = 2 }},
		{"negative fanout", func(c *Config) { c.MaxFanout = -1 }},
		{"negative sample interval", func(c *Config) { c.SampleInterval = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			if _, err := NewEngine(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestEngineRejectsSourceOutsideTrace(t *testing.T) {
	tr := testScenarioTrace(t, 1)
	items := []cache.Item{{ID: 0, Source: 999, RefreshInterval: 3600, FreshnessWindow: 3600, Lifetime: 7200, Size: 1}}
	cat, err := cache.NewCatalog(items)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(Config{Trace: tr, Catalog: cat, Scheme: NewDirect(), NumCachingNodes: 4}); err == nil {
		t.Fatal("out-of-trace source accepted")
	}
}

func TestCachingNodesExcludeSources(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	eng, err := NewEngine(Config{
		Trace:           testScenarioTrace(t, 3),
		Catalog:         testScenarioCatalog(t, 4*mobility.Hour),
		Scheme:          NewDirect(),
		NumCachingNodes: 6,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rt := eng.Runtime()
	if rt == nil {
		t.Fatal("runtime missing after run")
	}
	if len(rt.CachingNodes) != 6 {
		t.Fatalf("caching nodes = %v", rt.CachingNodes)
	}
	for _, cn := range rt.CachingNodes {
		if cn == 0 || cn == 1 || cn == 2 {
			t.Fatalf("item source %d selected as caching node", cn)
		}
	}
}

func TestOnTimeDeliveryTracksRequirement(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	eng, err := NewEngine(Config{
		Trace:           testScenarioTrace(t, 11),
		Catalog:         testScenarioCatalog(t, 6*mobility.Hour),
		Scheme:          NewHierarchical(),
		NumCachingNodes: 6,
		PReq:            0.9,
		Seed:            11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := eng.Collector().FirstDeliveryOnTimeRatio()
	// The analysis guarantees >= PReq for satisfiable plans under the
	// exponential model; allow slack for unsatisfiable destinations and
	// model mismatch (diurnal gaps), but it must be in the right regime.
	if got < 0.6 {
		t.Fatalf("first-delivery on-time ratio %v far below requirement 0.9 (stats: %v)", got, res.SchemeStats)
	}
	if res.SchemeStats["plansTotal"] == 0 {
		t.Fatal("replication planner never ran")
	}
}

func TestMsgBudgetReducesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	run := func(msgTime float64) metrics.Result {
		eng, err := NewEngine(Config{
			Trace:           testScenarioTrace(t, 21),
			Catalog:         testScenarioCatalog(t, 4*mobility.Hour),
			Scheme:          NewEpidemic(),
			NumCachingNodes: 6,
			MsgTime:         msgTime,
			Seed:            21,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unlimited := run(0)
	// Absurdly slow messages: one per contact at best.
	tight := run(10000)
	if tight.Transmissions >= unlimited.Transmissions {
		t.Fatalf("budget did not bite: %d vs %d", tight.Transmissions, unlimited.Transmissions)
	}
}

func TestSchemeByName(t *testing.T) {
	for _, spec := range Schemes() {
		s, err := SchemeByName(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != spec.Name {
			t.Fatalf("scheme %q reports name %q", spec.Name, s.Name())
		}
	}
	if _, err := SchemeByName("bogus"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
