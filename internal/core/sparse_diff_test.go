package core

import (
	"reflect"
	"testing"

	"freshcache/internal/centrality"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// randomStores builds the same random rate structure under dense and
// sparse backing.
func randomStores(t *testing.T, n int, seed int64) (dense, sparse centrality.RateStore) {
	t.Helper()
	d, err := centrality.NewRateStore(n, centrality.BackingDense)
	if err != nil {
		t.Fatal(err)
	}
	s, err := centrality.NewRateStore(n, centrality.BackingSparse)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(seed)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() > 0.4 {
				continue
			}
			r := stats.Exp(rng, 7200)
			d.Set(trace.NodeID(a), trace.NodeID(b), r)
			s.Set(trace.NodeID(a), trace.NodeID(b), r)
		}
	}
	return d, s
}

// TestPlanReplicationSparseDenseIdentical: the probabilistic replication
// planner must produce an identical plan — same relays, same order, same
// probabilities — whether the rates live in the dense matrix or the
// sparse store. PlanReplication reads rates pair by pair, so this pins
// the two backings' Rate lookups to bit-identical behavior under the
// planner's access pattern.
func TestPlanReplicationSparseDenseIdentical(t *testing.T) {
	const n = 60
	d, s := randomStores(t, n, 11)
	cands := make([]trace.NodeID, 0, n-2)
	for i := 2; i < n; i++ {
		cands = append(cands, trace.NodeID(i))
	}
	for _, budget := range []float64{600, 3600, 12 * 3600} {
		dp, derr := PlanReplication(d, 0, 1, cands, budget, 0.95, 0)
		sp, serr := PlanReplication(s, 0, 1, cands, budget, 0.95, 0)
		if (derr == nil) != (serr == nil) {
			t.Fatalf("budget %v: dense err %v, sparse err %v", budget, derr, serr)
		}
		if derr != nil {
			continue
		}
		if !reflect.DeepEqual(dp, sp) {
			t.Fatalf("budget %v: plans diverged\ndense  %+v\nsparse %+v", budget, dp, sp)
		}
	}
}

// TestBuildTreeSparseDenseIdentical: the refresh-hierarchy builder must
// construct the same tree on either backing.
func TestBuildTreeSparseDenseIdentical(t *testing.T) {
	const n = 60
	d, s := randomStores(t, n, 12)
	caching := make([]trace.NodeID, 16)
	for i := range caching {
		caching[i] = trace.NodeID(i + 1)
	}
	dt, err := BuildTree(d, 0, caching, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := BuildTree(s, 0, caching, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dt, st) {
		t.Fatalf("trees diverged\ndense  %+v\nsparse %+v", dt, st)
	}
}
