package core

import (
	"testing"

	"freshcache/internal/cache"
)

func newAdaptiveForTest(t *testing.T, pReq float64, maxRelays int) *refreshScheme {
	t.Helper()
	s, ok := NewAdaptive().(*refreshScheme)
	if !ok {
		t.Fatal("scheme type")
	}
	s.rt = &Runtime{PReq: pReq, MaxRelays: maxRelays}
	s.relayBudget = []int{-1}
	s.obsOnTime = make([]int, 1)
	s.obsTotal = make([]int, 1)
	return s
}

func testAdaptiveItem() cache.Item {
	return cache.Item{ID: 0, Source: 0, RefreshInterval: 100, FreshnessWindow: 100, Lifetime: 200, Size: 1}
}

func TestAdaptiveSchemeRegistered(t *testing.T) {
	s, err := SchemeByName("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "adaptive" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestAdaptiveDefaultsToConfiguredBound(t *testing.T) {
	s := newAdaptiveForTest(t, 0.9, 5)
	if got := s.relayBound(0); got != 5 {
		t.Fatalf("initial bound = %d, want 5", got)
	}
}

func TestAdaptiveRaisesOnMisses(t *testing.T) {
	s := newAdaptiveForTest(t, 0.9, 5)
	it := testAdaptiveItem()
	// 4 deliveries, only 1 on time: ratio 0.25 < 0.9 → raise.
	s.observeDelivery(0, 0, 100, 50)  // on time
	s.observeDelivery(0, 0, 100, 300) // late
	s.observeDelivery(0, 0, 100, 400) // late
	s.observeDelivery(0, 0, 100, 500) // late
	s.adjustBudget(it)
	if got := s.relayBound(0); got != 6 {
		t.Fatalf("bound after misses = %d, want 6", got)
	}
	// Counters reset after adjustment.
	if s.obsTotal[0] != 0 || s.obsOnTime[0] != 0 {
		t.Fatal("observation counters not reset")
	}
}

func TestAdaptiveLowersWhenComfortable(t *testing.T) {
	s := newAdaptiveForTest(t, 0.8, 5)
	it := testAdaptiveItem()
	for i := 0; i < 5; i++ {
		s.observeDelivery(0, 0, 100, 10) // all on time: ratio 1 > 0.85
	}
	s.adjustBudget(it)
	if got := s.relayBound(0); got != 4 {
		t.Fatalf("bound after comfortable period = %d, want 4", got)
	}
}

func TestAdaptiveNeedsMinimumSample(t *testing.T) {
	s := newAdaptiveForTest(t, 0.9, 5)
	it := testAdaptiveItem()
	s.observeDelivery(0, 0, 100, 500) // 1 late delivery: below min sample
	s.adjustBudget(it)
	if got := s.relayBound(0); got != 5 {
		t.Fatalf("bound adjusted on thin data: %d", got)
	}
	if s.obsTotal[0] != 1 {
		t.Fatal("thin sample discarded")
	}
}

func TestAdaptiveBudgetBounds(t *testing.T) {
	s := newAdaptiveForTest(t, 0.99, 2)
	it := testAdaptiveItem()
	// Persistent misses must cap at 4× the configured bound.
	for round := 0; round < 50; round++ {
		for i := 0; i < 4; i++ {
			s.observeDelivery(0, 0, 100, 999)
		}
		s.adjustBudget(it)
	}
	if got := s.relayBound(0); got != 8 {
		t.Fatalf("bound = %d, want cap 8 (4×2)", got)
	}

	// Persistent comfort must floor at 1.
	s2 := newAdaptiveForTest(t, 0.5, 2)
	for round := 0; round < 50; round++ {
		for i := 0; i < 4; i++ {
			s2.observeDelivery(0, 0, 100, 10)
		}
		s2.adjustBudget(it)
	}
	if got := s2.relayBound(0); got != 1 {
		t.Fatalf("bound = %d, want floor 1", got)
	}
}

func TestAdaptiveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	fixed := runWith(t, NewHierarchical(), 43, nil)
	adaptive := runWith(t, NewAdaptive(), 43, nil)
	t.Logf("fixed: fresh=%.3f tx=%.1f; adaptive: fresh=%.3f tx=%.1f budget=%.1f",
		fixed.FreshnessRatio, fixed.TxPerVersion,
		adaptive.FreshnessRatio, adaptive.TxPerVersion, adaptive.SchemeStats["meanRelayBudget"])
	// The controller must keep freshness in the same regime as the fixed
	// bound while actually exercising the budget knob.
	if adaptive.FreshnessRatio < 0.7*fixed.FreshnessRatio {
		t.Fatalf("adaptive collapsed: %v vs %v", adaptive.FreshnessRatio, fixed.FreshnessRatio)
	}
	if _, ok := adaptive.SchemeStats["meanRelayBudget"]; !ok {
		t.Fatal("adaptive budget stat missing")
	}
}

func TestAdaptiveRespondsToLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	clean := runWith(t, NewAdaptive(), 47, nil)
	lossy := runWith(t, NewAdaptive(), 47, func(c *Config) { c.DropProb = 0.4 })
	t.Logf("clean budget=%.2f lossy budget=%.2f", clean.SchemeStats["meanRelayBudget"], lossy.SchemeStats["meanRelayBudget"])
	// Under loss the controller should be pushing the budget up relative
	// to the clean run.
	if lossy.SchemeStats["meanRelayBudget"] <= clean.SchemeStats["meanRelayBudget"] {
		t.Fatalf("controller did not raise budget under loss: %v vs %v",
			lossy.SchemeStats["meanRelayBudget"], clean.SchemeStats["meanRelayBudget"])
	}
}
