package core

import (
	"testing"

	"freshcache/internal/cache"
	"freshcache/internal/metrics"
	"freshcache/internal/trace"
)

// Micro-scenario machinery: a 5-node handcrafted trace where node 0 is the
// item source, nodes 1 and 2 end up as the caching nodes, and nodes 3, 4
// are potential relays. Warmup is [0,100); versions are generated at
// t=100, 400, 700 (R=300), with freshness window 300.

func microCatalog(t *testing.T) *cache.Catalog {
	t.Helper()
	cat, err := cache.NewCatalog([]cache.Item{{
		ID: 0, Source: 0, RefreshInterval: 300, FreshnessWindow: 300, Lifetime: 600, Size: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func microEngine(t *testing.T, s Scheme, contacts []trace.Contact) *Engine {
	t.Helper()
	tr := &trace.Trace{Name: "micro", N: 5, Duration: 1000, Contacts: contacts}
	tr.Normalize()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Trace:           tr,
		Catalog:         microCatalog(t),
		Scheme:          s,
		NumCachingNodes: 2,
		WarmupFraction:  0.1, // epoch = 100
		PReq:            0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// ct is shorthand for a 5-second contact.
func ct(a, b trace.NodeID, at float64) trace.Contact {
	return trace.Contact{A: a, B: b, Start: at, End: at + 5}
}

// chainContacts wires warmup so that selection picks {1,2} and the tree is
// 0 → 1 → 2 (node 2 unreachable from the source directly).
func chainContacts() []trace.Contact {
	return []trace.Contact{
		// Warmup: rates λ01=0.03, λ12=0.02, λ24=0.01, λ03=0.01.
		ct(0, 1, 10), ct(0, 1, 20), ct(0, 1, 30),
		ct(1, 2, 15), ct(1, 2, 25),
		ct(2, 4, 40),
		ct(0, 3, 50),
		// Measurement: source→1, then 1→2, for v0 and v1; v2 undeliverable.
		ct(0, 1, 150), ct(1, 2, 200),
		ct(0, 1, 450), ct(1, 2, 500),
	}
}

// relayContacts wires warmup so that node 2 never meets the source or node
// 1, and node 3 is the only path: 0→3→2.
func relayContacts() []trace.Contact {
	return []trace.Contact{
		// Warmup: λ01=0.03, λ03=0.02, λ32=0.02, λ24=0.01.
		ct(0, 1, 10), ct(0, 1, 20), ct(0, 1, 30),
		ct(0, 3, 15), ct(0, 3, 25),
		ct(3, 2, 35), ct(3, 2, 45),
		ct(2, 4, 55),
		// Measurement: the only way v0 reaches node 2 is 0→3 (hand-off)
		// then 3→2 (delivery).
		ct(0, 1, 150),
		ct(0, 3, 160),
		ct(3, 2, 250),
	}
}

func deliveriesTo(c *metrics.Collector, node trace.NodeID) []metrics.Delivery {
	var out []metrics.Delivery
	for _, d := range c.Deliveries() {
		if d.Node == node {
			out = append(out, d)
		}
	}
	return out
}

func TestHierarchicalChainDelivery(t *testing.T) {
	eng := microEngine(t, NewHierarchical(), chainContacts())
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	rt := eng.Runtime()
	// Selection must be {1, 2} with sources excluded.
	want := map[trace.NodeID]bool{1: true, 2: true}
	for _, cn := range rt.CachingNodes {
		if !want[cn] {
			t.Fatalf("caching nodes = %v, want {1,2}", rt.CachingNodes)
		}
	}

	// The tree must delegate node 2 to node 1 (source never meets 2).
	s, ok := eng.cfg.Scheme.(*refreshScheme)
	if !ok {
		t.Fatal("scheme type")
	}
	tree := s.trees[0]
	if tree.Parent[1] != 0 || tree.Parent[2] != 1 {
		t.Fatalf("tree parents: %+v", tree.Parent)
	}

	// v0: 0→1 at 150, 1→2 at 200. v1 (gen 400): 0→1 at 450, 1→2 at 500.
	d1 := deliveriesTo(eng.Collector(), 1)
	d2 := deliveriesTo(eng.Collector(), 2)
	if len(d1) != 2 || len(d2) != 2 {
		t.Fatalf("deliveries: node1=%d node2=%d, want 2 and 2", len(d1), len(d2))
	}
	if d1[0].DeliveredAt != 150 || d1[0].Version != 0 {
		t.Fatalf("node1 first delivery: %+v", d1[0])
	}
	if d2[0].DeliveredAt != 200 || d2[0].Version != 0 {
		t.Fatalf("node2 first delivery: %+v", d2[0])
	}
	if d2[1].DeliveredAt != 500 || d2[1].Version != 1 {
		t.Fatalf("node2 second delivery: %+v", d2[1])
	}
	for _, d := range append(d1, d2...) {
		if !d.OnTime {
			t.Fatalf("delivery late: %+v (window 300)", d)
		}
	}
	if res.VersionsGenerated != 3 {
		t.Fatalf("versions = %d, want 3 (t=100,400,700)", res.VersionsGenerated)
	}
	// All four deliveries were direct parent→child: 4 refresh sends, no
	// relay sends.
	if got := res.TransmissionsByKind["refresh"]; got != 4 {
		t.Fatalf("refresh tx = %d, want 4", got)
	}
	if got := res.TransmissionsByKind["relay"]; got != 0 {
		t.Fatalf("relay tx = %d, want 0", got)
	}
}

func TestHierarchicalRelayDelivery(t *testing.T) {
	eng := microEngine(t, NewHierarchical(), relayContacts())
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	d2 := deliveriesTo(eng.Collector(), 2)
	if len(d2) != 1 {
		t.Fatalf("node2 deliveries = %d, want 1 (via relay)", len(d2))
	}
	if d2[0].DeliveredAt != 250 || d2[0].Version != 0 || !d2[0].OnTime {
		t.Fatalf("relay delivery: %+v", d2[0])
	}
	if got := res.TransmissionsByKind["relay"]; got != 1 {
		t.Fatalf("relay tx = %d, want 1 (the 0→3 hand-off)", got)
	}
	// refresh tx: 0→1 at 150 (v0) and 3→2 at 250.
	if got := res.TransmissionsByKind["refresh"]; got != 2 {
		t.Fatalf("refresh tx = %d, want 2", got)
	}
	// The plan for destination 2 must have been analytically satisfiable:
	// two-hop 0→3→2 with λ=0.02 each over budget 300.
	if res.SchemeStats["plansTotal"] == 0 || res.SchemeStats["satisfiedRatio"] == 0 {
		t.Fatalf("planner stats: %v", res.SchemeStats)
	}
}

func TestHierarchicalNoRepCannotUseRelay(t *testing.T) {
	eng := microEngine(t, NewHierarchicalNoRep(), relayContacts())
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveriesTo(eng.Collector(), 2)) != 0 {
		t.Fatal("norep delivered through a relay")
	}
	if got := res.TransmissionsByKind["relay"]; got != 0 {
		t.Fatalf("relay tx = %d, want 0", got)
	}
}

func TestNoRefreshOnlyFirstVersion(t *testing.T) {
	eng := microEngine(t, NewNoRefresh(), chainContacts())
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// NoRefresh fills caches once, from the source only (star, no relays):
	// node 1 gets v0 at its direct contact; node 2 never meets the source
	// and stays empty. Crucially, v1 and v2 are never pushed anywhere.
	d1 := deliveriesTo(eng.Collector(), 1)
	if len(d1) != 1 || d1[0].Version != 0 {
		t.Fatalf("norefresh deliveries to node1: %+v", d1)
	}
	if d2 := deliveriesTo(eng.Collector(), 2); len(d2) != 0 {
		t.Fatalf("norefresh deliveries to node2: %+v", d2)
	}
	if res.VersionsGenerated != 3 {
		t.Fatalf("versions = %d", res.VersionsGenerated)
	}
}

func TestDirectIgnoresRelaysAndChains(t *testing.T) {
	eng := microEngine(t, NewDirect(), relayContacts())
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Only 0→1 at 150 can deliver; node 2 never meets the source.
	if len(deliveriesTo(eng.Collector(), 1)) != 1 {
		t.Fatal("direct failed to deliver to node1")
	}
	if len(deliveriesTo(eng.Collector(), 2)) != 0 {
		t.Fatal("direct delivered to unreachable node2")
	}
	if res.SourceTxShare != 1 {
		t.Fatalf("direct source share = %v, want 1", res.SourceTxShare)
	}
}

func TestDirectReplicatedUsesRelayFromSource(t *testing.T) {
	eng := microEngine(t, NewDirectReplicated(), relayContacts())
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	d2 := deliveriesTo(eng.Collector(), 2)
	if len(d2) != 1 || d2[0].DeliveredAt != 250 {
		t.Fatalf("direct-rep relay delivery: %+v", d2)
	}
	if got := res.TransmissionsByKind["relay"]; got != 1 {
		t.Fatalf("relay tx = %d", got)
	}
}

func TestEpidemicReachesEveryoneAndCounts(t *testing.T) {
	eng := microEngine(t, NewEpidemic(), relayContacts())
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Epidemic: 0→1 (refresh), 0→3 (relay), 3→2 (refresh).
	if len(deliveriesTo(eng.Collector(), 2)) != 1 {
		t.Fatal("epidemic failed to reach node2")
	}
	if got := res.TransmissionsByKind["refresh"]; got != 2 {
		t.Fatalf("refresh tx = %d, want 2", got)
	}
	if got := res.TransmissionsByKind["relay"]; got != 1 {
		t.Fatalf("relay tx = %d, want 1", got)
	}
}

func TestOracleInstantAndFree(t *testing.T) {
	eng := microEngine(t, NewOracle(), chainContacts())
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 3 versions × 2 caching nodes.
	if res.Deliveries != 6 {
		t.Fatalf("oracle deliveries = %d, want 6", res.Deliveries)
	}
	if res.Transmissions != 0 {
		t.Fatalf("oracle tx = %d, want 0", res.Transmissions)
	}
	if res.MeanRefreshDelay != 0 {
		t.Fatalf("oracle delay = %v", res.MeanRefreshDelay)
	}
	if res.FreshnessRatio < 0.99 {
		t.Fatalf("oracle freshness = %v", res.FreshnessRatio)
	}
}

func TestRelayCopyLifecycle(t *testing.T) {
	// Relay copies outlive the on-time window (a late refresh beats no
	// refresh) but expire with the data's lifetime. v0: generated at 100,
	// window 300 (on-time until 400), lifetime 600 (deliverable until 700).
	contacts := []trace.Contact{
		ct(0, 1, 10), ct(0, 1, 20), ct(0, 1, 30),
		ct(0, 3, 15), ct(0, 3, 25),
		ct(3, 2, 35), ct(3, 2, 45),
		ct(2, 4, 55),
		ct(0, 3, 160), // hand-off to the relay
		ct(3, 2, 450), // past the window but within the lifetime: delivers, late
	}
	eng := microEngine(t, NewHierarchical(), contacts)
	_, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deliveriesTo(eng.Collector(), 2) {
		if d.Version == 0 && d.DeliveredAt == 450 {
			found = true
			if d.OnTime {
				t.Fatalf("late delivery marked on-time: %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("valid-but-late relay copy not delivered")
	}
}

func TestExpiredRelayCopiesDropped(t *testing.T) {
	// The relay meets the destination only after the lifetime
	// (expire = 100+600 = 700): the entry must be dropped, not delivered.
	contacts := []trace.Contact{
		ct(0, 1, 10), ct(0, 1, 20), ct(0, 1, 30),
		ct(0, 3, 15), ct(0, 3, 25),
		ct(3, 2, 35), ct(3, 2, 45),
		ct(2, 4, 55),
		ct(0, 3, 160), // hand-off
		ct(3, 2, 750), // past v0's lifetime
	}
	eng := microEngine(t, NewHierarchical(), contacts)
	_, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deliveriesTo(eng.Collector(), 2) {
		if d.Version == 0 && d.DeliveredAt == 750 {
			t.Fatalf("expired relay copy delivered: %+v", d)
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Node 2 reachable both directly (slow) and via relay; when the relay
	// delivers first, a later direct contact must not re-deliver or
	// re-send.
	contacts := []trace.Contact{
		// Warmup: λ02 small but nonzero; relay path strong.
		ct(0, 1, 10), ct(0, 1, 20), ct(0, 1, 30),
		ct(0, 2, 5),
		ct(0, 3, 15), ct(0, 3, 25),
		ct(3, 2, 35), ct(3, 2, 45),
		// Measurement: relay delivers v0 at 250; source meets 2 at 300.
		ct(0, 3, 160),
		ct(3, 2, 250),
		ct(0, 2, 300),
	}
	eng := microEngine(t, NewDirectReplicated(), contacts)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	d2 := deliveriesTo(eng.Collector(), 2)
	count := 0
	for _, d := range d2 {
		if d.Version == 0 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("v0 delivered %d times to node2, want 1", count)
	}
	// The 0→2 contact at 300 must not carry a redundant refresh: total
	// refresh tx = (3→2 at 250) + any to node 1 if it is caching.
	_ = res
}

func TestHierarchicalBareStrictlyTreeBound(t *testing.T) {
	// The bare hierarchy must not peer-sync or use relays: with the relay
	// scenario, node 2 (reachable only via relay 3) stays unrefreshed.
	eng := microEngine(t, NewHierarchicalBare(), relayContacts())
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveriesTo(eng.Collector(), 2)) != 0 {
		t.Fatal("bare hierarchy delivered off-tree")
	}
	if res.TransmissionsByKind["relay"] != 0 {
		t.Fatal("bare hierarchy used relays")
	}
}

func TestOracleOnContactNoOp(t *testing.T) {
	s := NewOracle()
	// Must be safe to call with any contact and do nothing.
	s.OnContact(nil)
}
