package core

import (
	"math"
	"testing"
	"testing/quick"

	"freshcache/internal/centrality"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

func TestDirectProb(t *testing.T) {
	if got := DirectProb(1, math.Log(2)); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("DirectProb = %v, want 0.5", got)
	}
	if DirectProb(0, 100) != 0 {
		t.Fatal("zero rate must give zero probability")
	}
}

func TestTwoHopProbBelowEitherLeg(t *testing.T) {
	p := TwoHopProb(0.01, 0.02, 300)
	if p <= 0 || p >= 1 {
		t.Fatalf("p = %v", p)
	}
	if p > DirectProb(0.01, 300) || p > DirectProb(0.02, 300) {
		t.Fatal("two-hop cannot beat a single leg")
	}
}

// ratesWith builds a rate matrix over n nodes from explicit pairs.
func ratesWith(n int, pairs map[[2]int]float64) *centrality.RateMatrix {
	m, err := centrality.NewRateMatrix(n)
	if err != nil {
		panic(err)
	}
	for p, r := range pairs {
		m.Set(trace.NodeID(p[0]), trace.NodeID(p[1]), r)
	}
	return m
}

func TestPlanReplicationDirectSuffices(t *testing.T) {
	// Very high direct rate: no relays needed.
	m := ratesWith(5, map[[2]int]float64{{0, 1}: 1.0})
	plan, err := PlanReplication(m, 0, 1, []trace.NodeID{2, 3, 4}, 100, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Satisfied || len(plan.Relays) != 0 {
		t.Fatalf("plan = %+v, want satisfied with no relays", plan)
	}
	if plan.AchievedProb < 0.99 {
		t.Fatalf("achieved = %v", plan.AchievedProb)
	}
}

func TestPlanReplicationAddsRelays(t *testing.T) {
	// Weak direct path; two strong relays.
	m := ratesWith(5, map[[2]int]float64{
		{0, 1}: 0.0001,
		{0, 2}: 0.05, {2, 1}: 0.05,
		{0, 3}: 0.05, {3, 1}: 0.05,
		{0, 4}: 0.000001, {4, 1}: 0.000001, // useless relay
	})
	plan, err := PlanReplication(m, 0, 1, []trace.NodeID{2, 3, 4}, 200, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Satisfied {
		t.Fatalf("plan not satisfied: %+v", plan)
	}
	if len(plan.Relays) == 0 {
		t.Fatal("no relays selected despite weak direct path")
	}
	// The strongest relays (2, 3) must be used before the useless one.
	for _, r := range plan.Relays {
		if r == 4 {
			t.Fatalf("useless relay selected: %v", plan.Relays)
		}
	}
	if plan.AchievedProb < 0.9 {
		t.Fatalf("achieved = %v < 0.9", plan.AchievedProb)
	}
}

func TestPlanReplicationGreedyMinimal(t *testing.T) {
	// One strong relay is enough; the plan must stop there.
	m := ratesWith(5, map[[2]int]float64{
		{0, 2}: 1.0, {2, 1}: 1.0,
		{0, 3}: 0.01, {3, 1}: 0.01,
	})
	plan, err := PlanReplication(m, 0, 1, []trace.NodeID{2, 3}, 100, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Relays) != 1 || plan.Relays[0] != 2 {
		t.Fatalf("relays = %v, want [2]", plan.Relays)
	}
}

func TestPlanReplicationUnsatisfiable(t *testing.T) {
	// Nobody ever meets the destination.
	m := ratesWith(4, map[[2]int]float64{{0, 2}: 0.1, {0, 3}: 0.1})
	plan, err := PlanReplication(m, 0, 1, []trace.NodeID{2, 3}, 100, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Satisfied || plan.AchievedProb != 0 || len(plan.Relays) != 0 {
		t.Fatalf("plan = %+v, want empty unsatisfied", plan)
	}
}

func TestPlanReplicationMaxRelays(t *testing.T) {
	pairs := map[[2]int]float64{}
	cands := make([]trace.NodeID, 0, 8)
	for i := 2; i < 10; i++ {
		pairs[[2]int{0, i}] = 0.001
		pairs[[2]int{i, 1}] = 0.001
		cands = append(cands, trace.NodeID(i))
	}
	m := ratesWith(10, pairs)
	plan, err := PlanReplication(m, 0, 1, cands, 100, 0.999, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Relays) != 3 {
		t.Fatalf("relays = %v, want exactly 3 (cap)", plan.Relays)
	}
	if plan.Satisfied {
		t.Fatal("cannot be satisfied with capped weak relays")
	}
}

func TestPlanReplicationSkipsHolderAndDest(t *testing.T) {
	m := ratesWith(3, map[[2]int]float64{{0, 1}: 0.0001, {0, 2}: 1, {2, 1}: 1})
	plan, err := PlanReplication(m, 0, 1, []trace.NodeID{0, 1, 2}, 100, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plan.Relays {
		if r == 0 || r == 1 {
			t.Fatalf("holder/dest selected as relay: %v", plan.Relays)
		}
	}
}

func TestPlanReplicationValidation(t *testing.T) {
	m := ratesWith(3, nil)
	if _, err := PlanReplication(m, 1, 1, nil, 100, 0.9, 0); err == nil {
		t.Fatal("holder==dest accepted")
	}
	if _, err := PlanReplication(m, 0, 1, nil, 0, 0.9, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := PlanReplication(m, 0, 1, nil, 100, 0, 0); err == nil {
		t.Fatal("zero pReq accepted")
	}
	if _, err := PlanReplication(m, 0, 1, nil, 100, 1.5, 0); err == nil {
		t.Fatal("pReq > 1 accepted")
	}
}

// Property: the analytical achieved probability is honest — Monte Carlo
// simulation of the direct + relay exponential paths agrees within
// sampling error.
func TestPlanAchievedProbMatchesMonteCarlo(t *testing.T) {
	rng := stats.NewRNG(31)
	m := ratesWith(6, map[[2]int]float64{
		{0, 1}: 0.002,
		{0, 2}: 0.01, {2, 1}: 0.008,
		{0, 3}: 0.004, {3, 1}: 0.02,
		{0, 4}: 0.03, {4, 1}: 0.001,
	})
	const budget, pReq = 300.0, 0.95
	plan, err := PlanReplication(m, 0, 1, []trace.NodeID{2, 3, 4, 5}, budget, pReq, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		ok := stats.Exp(rng, 0.002) <= budget
		for _, r := range plan.Relays {
			if ok {
				break
			}
			l1 := m.Rate(0, r)
			l2 := m.Rate(r, 1)
			if stats.Exp(rng, l1)+stats.Exp(rng, l2) <= budget {
				ok = true
			}
		}
		if ok {
			hits++
		}
	}
	mc := float64(hits) / n
	if math.Abs(mc-plan.AchievedProb) > 0.01 {
		t.Fatalf("analytical %v vs Monte Carlo %v", plan.AchievedProb, mc)
	}
}

// Property: achieved probability is monotone in the budget and never
// exceeds 1; relay count never exceeds the candidate count.
func TestPlanReplicationProperties(t *testing.T) {
	f := func(seed int64, b1, b2 float64) bool {
		rng := stats.NewRNG(seed)
		pairs := map[[2]int]float64{}
		for i := 1; i < 8; i++ {
			if rng.Float64() < 0.7 {
				pairs[[2]int{0, i}] = stats.Exp(rng, 100)
			}
			if i != 1 && rng.Float64() < 0.7 {
				pairs[[2]int{i, 1}] = stats.Exp(rng, 100)
			}
		}
		m := ratesWith(8, pairs)
		cands := []trace.NodeID{2, 3, 4, 5, 6, 7}
		b1 = 1 + math.Mod(math.Abs(b1), 1000)
		b2 = 1 + math.Mod(math.Abs(b2), 1000)
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		p1, err := PlanReplication(m, 0, 1, cands, b1, 0.99, 0)
		if err != nil {
			return false
		}
		p2, err := PlanReplication(m, 0, 1, cands, b2, 0.99, 0)
		if err != nil {
			return false
		}
		if p1.AchievedProb < 0 || p2.AchievedProb > 1 {
			return false
		}
		if len(p1.Relays) > len(cands) || len(p2.Relays) > len(cands) {
			return false
		}
		// A longer budget can only improve the best achievable probability
		// when both plans used every useful candidate; when plans stop early
		// at pReq both are >= ... so compare only the unsatisfied case.
		if !p1.Satisfied && !p2.Satisfied && p2.AchievedProb < p1.AchievedProb-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
