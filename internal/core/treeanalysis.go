package core

import (
	"fmt"
	"math"
	"sort"

	"freshcache/internal/analysis"
	"freshcache/internal/centrality"
	"freshcache/internal/trace"
)

// NodeForecast is the analytical prediction for one caching node in a
// refresh tree: the probability a new version reaches it within the
// freshness window along its tree path (relays excluded — this is the
// pure-hierarchy bound the design reasons about).
type NodeForecast struct {
	Node     trace.NodeID
	Depth    int
	PathMean float64 // expected source-to-node delay (s); +Inf if disconnected
	OnTime   float64 // P(delay <= window)
}

// TreeForecast aggregates per-node forecasts.
type TreeForecast struct {
	Nodes []NodeForecast
	// MeanOnTime averages the per-node on-time probabilities — the
	// analytical counterpart of the measured per-(version,node) on-time
	// ratio of a relay-free hierarchical run.
	MeanOnTime float64
}

// AnalyzeTree computes the hypoexponential delay analysis of every caching
// node's tree path under the given rate knowledge and freshness window.
// Hops with zero rate make a node unreachable (OnTime 0, PathMean +Inf).
func AnalyzeTree(t *Tree, rates centrality.RateView, window float64) (TreeForecast, error) {
	if window <= 0 {
		return TreeForecast{}, fmt.Errorf("core: non-positive window %v", window)
	}
	ids := make([]trace.NodeID, 0, len(t.Parent))
	for n := range t.Parent {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var fc TreeForecast
	var sum float64
	for _, n := range ids {
		path, reachable := pathRates(t, rates, n)
		nf := NodeForecast{Node: n, Depth: t.Depth[n]}
		if !reachable {
			nf.PathMean = math.Inf(1)
		} else {
			mean, err := analysis.PathMean(path)
			if err != nil {
				return TreeForecast{}, err
			}
			onTime, err := analysis.PathCDF(path, window)
			if err != nil {
				return TreeForecast{}, err
			}
			nf.PathMean = mean
			nf.OnTime = onTime
		}
		sum += nf.OnTime
		fc.Nodes = append(fc.Nodes, nf)
	}
	if len(fc.Nodes) > 0 {
		fc.MeanOnTime = sum / float64(len(fc.Nodes))
	}
	return fc, nil
}

// pathRates collects the per-hop contact rates from the source down to
// node n. reachable is false when any hop rate is zero.
func pathRates(t *Tree, rates centrality.RateView, n trace.NodeID) ([]float64, bool) {
	var rev []float64
	cur := n
	for cur != t.Source {
		p := t.Parent[cur]
		r := rates.Rate(p, cur)
		if r <= 0 {
			return nil, false
		}
		rev = append(rev, r)
		cur = p
	}
	// Reverse into source-to-node order (cosmetic: the CDF of a sum is
	// order-independent, but callers may inspect the path).
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}
