package core

import (
	"fmt"
	"math"
	"sort"

	"freshcache/internal/centrality"
	"freshcache/internal/trace"
)

// Tree is the refresh hierarchy for one data item: the source at the root
// and every caching node attached below it. Each node is responsible for
// refreshing exactly its children — the paper's "each caching node is only
// responsible for refreshing a specific set of caching nodes".
type Tree struct {
	Source trace.NodeID
	// Parent maps each caching node to the node responsible for it (the
	// source or another caching node).
	Parent map[trace.NodeID]trace.NodeID
	// Children maps each responsible node to the caching nodes it
	// refreshes, in attachment order.
	Children map[trace.NodeID][]trace.NodeID
	// Depth is the hop distance from the source (source = 0).
	Depth map[trace.NodeID]int
	// ExpectedDelay is the expected source-to-node refresh delay along the
	// tree path: the sum of per-hop expected inter-contact times 1/λ.
	// +Inf when some hop pair never meets.
	ExpectedDelay map[trace.NodeID]float64
}

// MaxDepth returns the deepest caching node's depth (0 for an empty tree).
func (t *Tree) MaxDepth() int {
	max := 0
	for _, d := range t.Depth {
		if d > max {
			max = d
		}
	}
	return max
}

// ResponsibleFor returns the children of the node (nil when it refreshes
// nobody).
func (t *Tree) ResponsibleFor(n trace.NodeID) []trace.NodeID { return t.Children[n] }

// BuildTree constructs the refresh hierarchy greedily: starting from the
// source, it repeatedly attaches the unattached caching node that can be
// reached with the smallest expected refresh delay through any attached
// node with spare fan-out, i.e. it minimizes
//
//	delay(parent) + 1/λ(parent, child)
//
// over all (parent, child) pairs. This keeps well-connected caching nodes
// near the source (they become responsible for others) and pushes poorly
// connected ones to the leaves, bounding every node's expected refresh
// delay given the fan-out limit. Pairs that never meet contribute +Inf and
// are chosen only when no finite attachment exists (the node is then
// parented to the source as a fallback so every caching node has exactly
// one responsible refresher).
//
// maxFanout bounds children per node (0 = unbounded).
func BuildTree(rates centrality.RateView, source trace.NodeID, cachingNodes []trace.NodeID, maxFanout int) (*Tree, error) {
	if maxFanout < 0 {
		return nil, fmt.Errorf("core: negative fanout %d", maxFanout)
	}
	t := &Tree{
		Source:        source,
		Parent:        make(map[trace.NodeID]trace.NodeID, len(cachingNodes)),
		Children:      make(map[trace.NodeID][]trace.NodeID),
		Depth:         map[trace.NodeID]int{source: 0},
		ExpectedDelay: map[trace.NodeID]float64{source: 0},
	}

	unattached := make(map[trace.NodeID]bool, len(cachingNodes))
	for _, c := range cachingNodes {
		if c == source {
			return nil, fmt.Errorf("core: source %d cannot be its own caching node", source)
		}
		if unattached[c] {
			return nil, fmt.Errorf("core: duplicate caching node %d", c)
		}
		unattached[c] = true
	}
	attached := []trace.NodeID{source}

	hopDelay := func(parent, child trace.NodeID) float64 {
		r := rates.Rate(parent, child)
		if r <= 0 {
			return math.Inf(1)
		}
		return 1 / r
	}

	for len(unattached) > 0 {
		bestChild := trace.NodeID(-1)
		bestParent := trace.NodeID(-1)
		bestCost := math.Inf(1)
		found := false

		// Deterministic iteration: children in ascending ID.
		children := make([]trace.NodeID, 0, len(unattached))
		for c := range unattached {
			children = append(children, c)
		}
		sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })

		for _, c := range children {
			for _, p := range attached {
				if maxFanout > 0 && len(t.Children[p]) >= maxFanout {
					continue
				}
				cost := t.ExpectedDelay[p] + hopDelay(p, c)
				if !found || cost < bestCost {
					bestChild, bestParent, bestCost, found = c, p, cost, true
				}
			}
		}
		if !found {
			// Every attached node is at fan-out capacity; fall back to the
			// source (unbounded in this degenerate case keeps the tree
			// total).
			children := make([]trace.NodeID, 0, len(unattached))
			for c := range unattached {
				children = append(children, c)
			}
			sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
			bestChild, bestParent = children[0], source
			bestCost = t.ExpectedDelay[source] + hopDelay(source, bestChild)
		}

		t.Parent[bestChild] = bestParent
		t.Children[bestParent] = append(t.Children[bestParent], bestChild)
		t.Depth[bestChild] = t.Depth[bestParent] + 1
		t.ExpectedDelay[bestChild] = bestCost
		delete(unattached, bestChild)
		attached = append(attached, bestChild)
	}
	return t, nil
}

// Validate checks the structural invariants of the tree against the
// caching node set: every caching node appears exactly once, parents form
// no cycles, depths are consistent, and children lists mirror the parent
// map.
func (t *Tree) Validate(cachingNodes []trace.NodeID) error {
	if len(t.Parent) != len(cachingNodes) {
		return fmt.Errorf("core: tree has %d nodes, want %d", len(t.Parent), len(cachingNodes))
	}
	for _, c := range cachingNodes {
		p, ok := t.Parent[c]
		if !ok {
			return fmt.Errorf("core: caching node %d missing from tree", c)
		}
		if t.Depth[c] != t.Depth[p]+1 {
			return fmt.Errorf("core: depth of %d is %d but parent %d has %d", c, t.Depth[c], p, t.Depth[p])
		}
		// Walk to the root; must terminate at the source.
		seen := map[trace.NodeID]bool{c: true}
		cur := c
		for cur != t.Source {
			next, ok := t.Parent[cur]
			if !ok {
				return fmt.Errorf("core: node %d has ancestor %d with no parent", c, cur)
			}
			if seen[next] {
				return fmt.Errorf("core: cycle through %d", next)
			}
			seen[next] = true
			cur = next
		}
	}
	for p, kids := range t.Children {
		for _, k := range kids {
			if t.Parent[k] != p {
				return fmt.Errorf("core: child list of %d contains %d whose parent is %d", p, k, t.Parent[k])
			}
		}
	}
	return nil
}
