package core

import (
	"testing"

	"freshcache/internal/cache"
	"freshcache/internal/metrics"
	"freshcache/internal/mobility"
	"freshcache/internal/network"
)

// runWith runs the shared end-to-end scenario with config tweaks applied.
func runWith(t *testing.T, s Scheme, seed int64, mutate func(*Config)) metrics.Result {
	t.Helper()
	cfg := Config{
		Trace:           testScenarioTrace(t, seed),
		Catalog:         testScenarioCatalog(t, 4*mobility.Hour),
		Scheme:          s,
		NumCachingNodes: 6,
		Workload:        cache.WorkloadConfig{QueryRate: 1.0 / (2 * mobility.Hour), ZipfExponent: 1.0},
		Seed:            seed,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDistributedKnowledgeCloseToOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	oracle := runWith(t, NewHierarchical(), 13, nil)
	dist := runWith(t, NewHierarchical(), 13, func(c *Config) { c.Knowledge = KnowledgeDistributed })
	direct := runWith(t, NewDirect(), 13, nil)
	t.Logf("oracle=%.3f distributed=%.3f direct=%.3f",
		oracle.FreshnessRatio, dist.FreshnessRatio, direct.FreshnessRatio)
	// Imperfect knowledge costs something but the scheme must still beat
	// source-only refreshing and stay within reach of the oracle setting.
	if dist.FreshnessRatio <= direct.FreshnessRatio {
		t.Fatalf("distributed knowledge collapsed to direct: %v vs %v", dist.FreshnessRatio, direct.FreshnessRatio)
	}
	if dist.FreshnessRatio < 0.5*oracle.FreshnessRatio {
		t.Fatalf("distributed knowledge lost too much: %v vs oracle %v", dist.FreshnessRatio, oracle.FreshnessRatio)
	}
}

func TestDistributedKnowledgeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	a := runWith(t, NewHierarchical(), 4, func(c *Config) { c.Knowledge = KnowledgeDistributed })
	b := runWith(t, NewHierarchical(), 4, func(c *Config) { c.Knowledge = KnowledgeDistributed })
	if a.FreshnessRatio != b.FreshnessRatio || a.Transmissions != b.Transmissions {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestChurnDegradesFreshness(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	clean := runWith(t, NewHierarchical(), 17, nil)
	churned := runWith(t, NewHierarchical(), 17, func(c *Config) {
		// 50% duty cycle: nodes up 6h, down 6h on average.
		c.Churn = network.ChurnConfig{MeanUp: 6 * mobility.Hour, MeanDown: 6 * mobility.Hour}
	})
	t.Logf("clean=%.3f churned=%.3f", clean.FreshnessRatio, churned.FreshnessRatio)
	if churned.FreshnessRatio >= clean.FreshnessRatio {
		t.Fatalf("churn did not degrade freshness: %v vs %v", churned.FreshnessRatio, clean.FreshnessRatio)
	}
	if churned.FreshnessRatio <= 0 {
		t.Fatal("churn killed the protocol entirely")
	}
}

func TestMessageLossDegradesFreshness(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	clean := runWith(t, NewHierarchical(), 19, nil)
	lossy := runWith(t, NewHierarchical(), 19, func(c *Config) { c.DropProb = 0.5 })
	t.Logf("clean=%.3f lossy=%.3f", clean.FreshnessRatio, lossy.FreshnessRatio)
	if lossy.FreshnessRatio >= clean.FreshnessRatio {
		t.Fatalf("50%% loss did not degrade freshness: %v vs %v", lossy.FreshnessRatio, clean.FreshnessRatio)
	}
}

func TestRelayBufferCapReducesState(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	free := runWith(t, NewHierarchical(), 23, nil)
	capped := runWith(t, NewHierarchical(), 23, func(c *Config) { c.RelayBufferCap = 1 })
	t.Logf("free=%.3f capped=%.3f", free.FreshnessRatio, capped.FreshnessRatio)
	// A one-copy relay buffer must not help, and the protocol must not
	// break.
	if capped.FreshnessRatio > free.FreshnessRatio+0.02 {
		t.Fatalf("capping relay buffers improved freshness: %v vs %v", capped.FreshnessRatio, free.FreshnessRatio)
	}
	if capped.FreshnessRatio <= 0 {
		t.Fatal("relay cap killed the protocol")
	}
}

func TestRelayBufferCapValidation(t *testing.T) {
	cfg := Config{
		Trace:           testScenarioTrace(t, 1),
		Catalog:         testScenarioCatalog(t, mobility.Hour),
		Scheme:          NewHierarchical(),
		NumCachingNodes: 4,
		RelayBufferCap:  -1,
	}
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("negative relay cap accepted")
	}
}

func TestSprayAndWaitBehaves(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	spray := runWith(t, NewSprayAndWait(8), 29, nil)
	direct := runWith(t, NewDirect(), 29, nil)
	epidemic := runWith(t, NewEpidemic(), 29, nil)
	t.Logf("spray=%.3f (tx/ver %.1f) direct=%.3f epidemic=%.3f (tx/ver %.1f)",
		spray.FreshnessRatio, spray.TxPerVersion, direct.FreshnessRatio,
		epidemic.FreshnessRatio, epidemic.TxPerVersion)
	// Spraying 8 copies must beat source-only refreshing…
	if spray.FreshnessRatio <= direct.FreshnessRatio {
		t.Fatalf("spray %v not above direct %v", spray.FreshnessRatio, direct.FreshnessRatio)
	}
	// …and stay below flooding on both freshness and overhead.
	if spray.FreshnessRatio > epidemic.FreshnessRatio {
		t.Fatalf("spray %v above epidemic %v", spray.FreshnessRatio, epidemic.FreshnessRatio)
	}
	if spray.TxPerVersion >= epidemic.TxPerVersion {
		t.Fatalf("spray overhead %v not below epidemic %v", spray.TxPerVersion, epidemic.TxPerVersion)
	}
}

func TestSprayCopyBudgetMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	small := runWith(t, NewSprayAndWait(2), 31, nil)
	large := runWith(t, NewSprayAndWait(16), 31, nil)
	t.Logf("L=2: %.3f, L=16: %.3f", small.FreshnessRatio, large.FreshnessRatio)
	if large.FreshnessRatio <= small.FreshnessRatio {
		t.Fatalf("more copies did not help: %v vs %v", large.FreshnessRatio, small.FreshnessRatio)
	}
	if large.Transmissions <= small.Transmissions {
		t.Fatalf("more copies did not cost more: %d vs %d", large.Transmissions, small.Transmissions)
	}
}

func TestSprayDefaultCopies(t *testing.T) {
	s, ok := NewSprayAndWait(0).(*sprayScheme)
	if !ok {
		t.Fatal("scheme type")
	}
	if s.l != DefaultSprayCopies {
		t.Fatalf("default copies = %d", s.l)
	}
}

func TestRandomRelaySelectionUnderperformsPlanned(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	planned := runWith(t, NewHierarchical(), 37, nil)
	random := runWith(t, NewRandomReplicated(), 37, nil)
	t.Logf("planned=%.3f random=%.3f (tx %.1f vs %.1f)",
		planned.FreshnessRatio, random.FreshnessRatio, planned.TxPerVersion, random.TxPerVersion)
	// Random relays with the same budget must not beat the
	// analysis-driven selection (the whole point of the analysis).
	if random.FreshnessRatio > planned.FreshnessRatio+0.02 {
		t.Fatalf("random relays beat planned: %v vs %v", random.FreshnessRatio, planned.FreshnessRatio)
	}
}

func TestChurnWithLossStillDelivers(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	res := runWith(t, NewHierarchical(), 41, func(c *Config) {
		c.DropProb = 0.2
		c.Churn = network.ChurnConfig{MeanUp: 12 * mobility.Hour, MeanDown: 2 * mobility.Hour}
	})
	if res.Deliveries == 0 {
		t.Fatal("no deliveries under mild churn+loss")
	}
	if res.FreshnessRatio <= 0 {
		t.Fatal("zero freshness under mild churn+loss")
	}
}

func TestLoadBalanceMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	di := runWith(t, NewDirect(), 53, nil)
	hi := runWith(t, NewHierarchical(), 53, nil)
	t.Logf("direct: maxShare=%.3f gini=%.3f; hierarchical: maxShare=%.3f gini=%.3f",
		di.MaxNodeTxShare, di.LoadGini, hi.MaxNodeTxShare, hi.LoadGini)
	// With 3 sources, direct concentrates all load on 3 of 40 nodes.
	if di.LoadGini < 0.85 {
		t.Fatalf("direct load gini %v; expected near-total concentration", di.LoadGini)
	}
	// The hierarchy must spread the load: a lower hot-spot share and a
	// visibly lower Gini.
	if hi.MaxNodeTxShare >= di.MaxNodeTxShare {
		t.Fatalf("hierarchy hot spot %v not below direct %v", hi.MaxNodeTxShare, di.MaxNodeTxShare)
	}
	if hi.LoadGini >= di.LoadGini-0.05 {
		t.Fatalf("hierarchy gini %v not clearly below direct %v", hi.LoadGini, di.LoadGini)
	}
	if hi.MaxNodeTxShare <= 0 || hi.MaxNodeTxShare > 1 {
		t.Fatalf("hot-spot share out of range: %v", hi.MaxNodeTxShare)
	}
}
