package core

import (
	"testing"

	"freshcache/internal/cache"
	"freshcache/internal/mobility"
	"freshcache/internal/trace"
)

// Delegation micro-scenario on the 5-node trace: nodes 1,2 caching, node
// 0 source, nodes 3,4 free relays. Node 4 issues queries but only ever
// meets node 3 — without delegation it can never be served.

func delegationEngine(t *testing.T, relays int, contacts []trace.Contact, queryTimeout float64) *Engine {
	t.Helper()
	tr := &trace.Trace{Name: "deleg", N: 5, Duration: 1000, Contacts: contacts}
	tr.Normalize()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Trace:           tr,
		Catalog:         microCatalog(t),
		Scheme:          NewHierarchical(),
		NumCachingNodes: 2,
		WarmupFraction:  0.1,
		QueryRelays:     relays,
		Workload:        cache.WorkloadConfig{QueryRate: 1.0 / 400, ZipfExponent: 1, Timeout: queryTimeout},
		Seed:            micDelegSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// micDelegSeed is chosen so the workload generator issues at least one
// query from node 4 early in the measurement phase (verified by the test
// itself, which skips otherwise — the schedule is deterministic).
const micDelegSeed = 5

func delegationContacts() []trace.Contact {
	return []trace.Contact{
		// Warmup shapes selection to {1,2} as in chainContacts.
		ct(0, 1, 10), ct(0, 1, 20), ct(0, 1, 30),
		ct(1, 2, 15), ct(1, 2, 25),
		ct(2, 4, 40),
		ct(0, 3, 50),
		// Measurement: the source keeps node 1 fresh; node 4 meets only
		// node 3, which shuttles between node 4 and caching node 1.
		ct(0, 1, 150), ct(0, 1, 450), ct(0, 1, 750),
		ct(3, 4, 300),
		ct(1, 3, 400),
		ct(3, 4, 500),
		ct(3, 4, 800),
		ct(1, 3, 850),
		ct(3, 4, 900),
	}
}

func TestDelegationServesOtherwiseUnreachableRequester(t *testing.T) {
	// Without delegation: node 4's queries can never be answered (it
	// only meets node 3, which is neither caching nor source).
	without := delegationEngine(t, 0, delegationContacts(), 0)
	if _, err := without.Run(); err != nil {
		t.Fatal(err)
	}
	node4Answered := func(e *Engine) (issued, answered int) {
		for _, q := range e.book.All() {
			if q.Requester == 4 {
				issued++
				if q.Served {
					answered++
				}
			}
		}
		return
	}
	issued, answered := node4Answered(without)
	if issued == 0 {
		t.Skip("workload issued no node-4 queries in window; adjust seed")
	}
	if answered != 0 {
		t.Fatalf("node 4 answered without delegation: %d/%d", answered, issued)
	}

	with := delegationEngine(t, 2, delegationContacts(), 0)
	res, err := with.Run()
	if err != nil {
		t.Fatal(err)
	}
	issued, answered = node4Answered(with)
	if answered == 0 {
		t.Fatalf("delegation failed to serve node 4 (%d issued)", issued)
	}
	if res.TransmissionsByKind["query"] == 0 {
		t.Fatal("no query hand-offs recorded")
	}
}

func TestDelegationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	run := func(relays int) (answered, delay float64) {
		eng, err := NewEngine(Config{
			Trace:           testScenarioTrace(t, 59),
			Catalog:         testScenarioCatalog(t, 4*mobility.Hour),
			Scheme:          NewHierarchical(),
			NumCachingNodes: 6,
			QueryRelays:     relays,
			Workload:        cache.WorkloadConfig{QueryRate: 1.0 / (2 * mobility.Hour), ZipfExponent: 1},
			Seed:            59,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.AnsweredOK, res.MeanAccessDelaySec
	}
	a0, d0 := run(0)
	a3, d3 := run(3)
	t.Logf("relays=0: answered=%.3f delay=%.0fs; relays=3: answered=%.3f delay=%.0fs", a0, d0, a3, d3)
	// Delegation must not reduce coverage and should cut access delay.
	if a3 < a0-0.01 {
		t.Fatalf("delegation reduced coverage: %v vs %v", a3, a0)
	}
	if d3 >= d0 {
		t.Fatalf("delegation did not cut delay: %v vs %v", d3, d0)
	}
}

func TestDelegationRespectsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	run := func(relays int) int {
		eng, err := NewEngine(Config{
			Trace:           testScenarioTrace(t, 61),
			Catalog:         testScenarioCatalog(t, 4*mobility.Hour),
			Scheme:          NewDirect(),
			NumCachingNodes: 6,
			QueryRelays:     relays,
			Workload:        cache.WorkloadConfig{QueryRate: 1.0 / (4 * mobility.Hour), ZipfExponent: 1},
			Seed:            61,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TransmissionsByKind["query"]
	}
	q1, q4 := run(1), run(4)
	if q1 == 0 || q4 <= q1 {
		t.Fatalf("hand-offs don't scale with budget: %d vs %d", q1, q4)
	}
}

func TestDelegationDropsExpiredResponses(t *testing.T) {
	// Relay fetches v0 (gen 100, lifetime 600) at t=400 but only meets
	// the requester at t=750, after expiry: the response must not be
	// delivered; the query stays unserved.
	contacts := []trace.Contact{
		ct(0, 1, 10), ct(0, 1, 20), ct(0, 1, 30),
		ct(1, 2, 15), ct(1, 2, 25),
		ct(2, 4, 40),
		ct(0, 3, 50),
		ct(0, 1, 150), // fill caching node 1
		ct(3, 4, 300), // hand-off
		ct(1, 3, 400), // fetch v0
		ct(3, 4, 750), // response expired in transit
	}
	eng := delegationEngine(t, 2, contacts, 0)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, q := range eng.book.All() {
		if q.Requester == 4 && q.Served && !q.Valid {
			t.Fatalf("expired response delivered: %+v", q)
		}
	}
}

func TestDelegationValidation(t *testing.T) {
	cfg := Config{
		Trace:           testScenarioTrace(t, 1),
		Catalog:         testScenarioCatalog(t, mobility.Hour),
		Scheme:          NewDirect(),
		NumCachingNodes: 4,
		QueryRelays:     -1,
	}
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("negative query relays accepted")
	}
}

func TestDelegationLoadDiagnostic(t *testing.T) {
	eng := delegationEngine(t, 2, delegationContacts(), 0)
	if n := len(eng.DelegationLoad()); n != 0 {
		t.Fatalf("load non-empty before run: %d", n)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, n := range eng.DelegationLoad() {
		if n < 0 {
			t.Fatalf("negative carried count %d", n)
		}
	}
	// Disabled delegation reports nil.
	off := delegationEngine(t, 0, delegationContacts(), 0)
	if _, err := off.Run(); err != nil {
		t.Fatal(err)
	}
	if off.DelegationLoad() != nil {
		t.Fatal("load reported with delegation off")
	}
}
