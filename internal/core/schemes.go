package core

import (
	"fmt"
	"math/rand"

	"freshcache/internal/bitset"
	"freshcache/internal/cache"
	"freshcache/internal/centrality"
	"freshcache/internal/network"
	"freshcache/internal/obs"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// copyKey identifies one version of one item.
type copyKey struct {
	item    cache.ItemID
	version int
}

// keyLess orders copy keys by (item, version) — the deterministic
// delivery and eviction order of the relay buffers.
func keyLess(a, b copyKey) bool {
	if a.item != b.item {
		return a.item < b.item
	}
	return a.version < b.version
}

// duty is the refresh responsibility a node holds for one item version:
// the set of caching nodes it must still refresh, and the relay plans
// backing each of them. Node sets are bitsets over the dense 0..N-1 ID
// space, so per-contact membership tests and updates are word operations
// with no hashing and deterministic ascending iteration.
type duty struct {
	key    copyKey
	genAt  float64
	window float64
	// ttl is how long copies of this version stay worth delivering (the
	// item lifetime); relay copies expire at genAt+ttl.
	ttl float64
	// dests are the children not yet known to be refreshed.
	dests *bitset.Set
	// relayFor[relay] is the destination set that relay serves (nil when
	// the relay is unused; the whole slice is nil when replication is off
	// or planned no relays for this duty).
	relayFor []*bitset.Set
	// span is the duty's lineage span (0 when lineage is off): the parent
	// of every delivery and relay handoff made under this duty.
	span obs.SpanID
}

// relayEntry is a copy parked at a relay node on behalf of responsible
// nodes, tagged with the destinations it should be delivered to.
type relayEntry struct {
	key    copyKey
	genAt  float64
	expire float64
	dests  *bitset.Set
	// span is the handoff's lineage span (0 when lineage is off): the
	// parent of deliveries the relay makes from this copy.
	span obs.SpanID
}

// planKey memoizes one PlanReplication call: the plan depends only on
// the rates snapshot (captured by the cache's epoch), the endpoints, the
// time budget and the relay bound — PReq and the candidate set are
// run-constant.
type planKey struct {
	holder trace.NodeID
	dest   trace.NodeID
	budget float64
	bound  int
}

// maxPlanCacheEntries bounds the plan memo; when an adversarial workload
// produces unbounded distinct budgets the memo is flushed rather than
// grown forever. Flushing never changes results — only recompute cost.
const maxPlanCacheEntries = 1 << 14

// refreshScheme is the unified refresh protocol behind four of the
// evaluated schemes. Its two switches correspond exactly to the paper's
// two ideas:
//
//   - hierarchical=false: only the source refreshes caching nodes (a star
//     "hierarchy") — the Direct baselines.
//   - hierarchical=true: the refresh tree of BuildTree distributes
//     responsibility — each caching node refreshes its children.
//   - replicate: probabilistic replication through relay nodes per
//     PlanReplication; off = direct parent→child contacts only.
//   - onlyFirstVersion: the NoRefresh floor — version 0 propagates (initial
//     cache fill), later versions are never pushed.
type refreshScheme struct {
	name             string
	hierarchical     bool
	replicate        bool
	onlyFirstVersion bool
	// randomRelays replaces the analysis-driven relay selection with a
	// uniformly random relay set of the same maximum size — the ablation
	// showing that *which* relays carry copies matters, not just how many.
	randomRelays bool
	// opportunistic enables the distributed-maintenance side channels of
	// the hierarchical variants: two caching nodes that meet refresh each
	// other's stale copies, and a relay hands its copy to ANY caching node
	// that lacks the version (bookkeeping still tracks the planned
	// destinations). The Direct baselines stay source-only by definition.
	opportunistic bool
	// adaptive closes a feedback loop over the relay budget: each item's
	// observed on-time delivery ratio is compared against the requirement
	// at every generation, and the per-item relay bound grows when the
	// requirement is missed and shrinks when it is comfortably exceeded.
	adaptive bool

	rng *rand.Rand // non-nil iff randomRelays

	rt *Runtime
	// items is the shared immutable catalog view (ID order); n the node
	// count. Both back the dense per-node state below.
	items []cache.Item
	n     int
	// trees[item] is the item's refresh tree (item IDs are dense).
	trees []*Tree
	// duties[node][item] is the node's current (newest-version) duty, nil
	// when none; rows are allocated lazily. dutyCount[node] lets the
	// per-contact path skip duty-less endpoints with a single load.
	duties    [][]*duty
	dutyCount []int
	// relays[node] are copies parked at the node for delivery, kept
	// sorted by (item, version) — the order actAsRelay previously
	// re-derived with a per-contact sort.
	relays [][]*relayEntry
	// lin is the run's lineage (nil = off, all methods nil-safe);
	// copySpan[node][item] is the delivery span under which the node's
	// current copy arrived — the parent for onward syncs. The matrix is
	// allocated only when lineage is on.
	lin      *obs.Lineage
	copySpan [][]obs.SpanID
	// scratch is reused by the relay hand-off path for the live
	// destination intersection, keeping OnContact allocation-free.
	scratch *bitset.Set

	// Plan memoization: under an epoch-tagged (immutable) rates view,
	// PlanReplication is pure in planKey, so plans are computed once per
	// rates epoch — i.e. once per hierarchy (re)build — instead of once
	// per generation. Views without an epoch (distributed knowledge
	// change continuously) bypass the memo.
	planCache map[planKey]RelayPlan
	planEpoch uint64
	planValid bool

	// Planner statistics for analysis validation (E7).
	plansTotal     int
	plansSatisfied int
	sumAchieved    float64
	planErr        error

	// Adaptive-control state (adaptive only), dense by item ID: the
	// per-item relay budget (-1 = not yet adjusted) and on-time
	// observations since the item's last adjustment.
	relayBudget []int
	obsOnTime   []int
	obsTotal    []int
}

var (
	_ Scheme        = (*refreshScheme)(nil)
	_ StatsReporter = (*refreshScheme)(nil)
)

// NewDirect returns the source-only refreshing baseline: caching nodes are
// refreshed exclusively on direct contact with the data source.
func NewDirect() Scheme {
	return &refreshScheme{name: "direct"}
}

// NewDirectReplicated returns the ablation with probabilistic replication
// but no hierarchy: the source remains responsible for every caching node
// and hands copies to relays per the replication analysis.
func NewDirectReplicated() Scheme {
	return &refreshScheme{name: "direct-rep", replicate: true}
}

// NewHierarchical returns the paper's scheme: distributed hierarchical
// refreshing with probabilistic replication.
func NewHierarchical() Scheme {
	return &refreshScheme{name: "hierarchical", hierarchical: true, replicate: true, opportunistic: true}
}

// NewHierarchicalNoRep returns the ablation with the refresh hierarchy but
// without relay replication (direct parent→child contacts only).
func NewHierarchicalNoRep() Scheme {
	return &refreshScheme{name: "hierarchical-norep", hierarchical: true, opportunistic: true}
}

// NewNoRefresh returns the floor baseline: caches fill once with version 0
// and are never refreshed.
func NewNoRefresh() Scheme {
	return &refreshScheme{name: "norefresh", onlyFirstVersion: true}
}

// NewRandomReplicated returns the relay-selection ablation: hierarchy and
// replication exactly as the paper's scheme, but relays are chosen
// uniformly at random instead of by the delivery-probability analysis.
func NewRandomReplicated() Scheme {
	return &refreshScheme{name: "random-rep", hierarchical: true, replicate: true, randomRelays: true, opportunistic: true}
}

// NewHierarchicalBare returns the hierarchy with no replication and no
// opportunistic side channels: deliveries happen strictly along tree
// edges. Not part of the evaluated panel; it exists so the analytical
// tree forecast (AnalyzeTree) can be validated against a protocol whose
// behavior the analysis exactly models.
func NewHierarchicalBare() Scheme {
	return &refreshScheme{name: "hierarchical-bare", hierarchical: true}
}

// NewAdaptive returns the paper's scheme with an adaptive relay budget:
// instead of a fixed per-destination relay bound, each item's bound is
// feedback-controlled from its measured on-time delivery ratio. A natural
// extension: the analysis picks relays, the controller picks how many the
// analysis may use.
func NewAdaptive() Scheme {
	return &refreshScheme{name: "adaptive", hierarchical: true, replicate: true, opportunistic: true, adaptive: true}
}

// Name implements Scheme.
func (s *refreshScheme) Name() string { return s.name }

// Init implements Scheme: it builds the refresh tree for every item (a
// star rooted at the source for the non-hierarchical variants) and sizes
// the dense per-node state.
func (s *refreshScheme) Init(rt *Runtime) error {
	s.rt = rt
	s.items = rt.Items()
	s.n = rt.N
	s.trees = make([]*Tree, len(s.items))
	s.duties = make([][]*duty, s.n)
	s.dutyCount = make([]int, s.n)
	s.relays = make([][]*relayEntry, s.n)
	s.scratch = rt.newSet()
	s.lin = rt.Lin
	s.copySpan = nil
	if s.lin != nil {
		s.copySpan = make([][]obs.SpanID, s.n)
		for i := range s.copySpan {
			s.copySpan[i] = make([]obs.SpanID, len(s.items))
		}
	}
	s.planCache = nil
	s.planValid = false
	if s.randomRelays {
		s.rng = stats.Derive(rt.Seed, "core/random-relays")
	}
	if s.adaptive {
		s.relayBudget = make([]int, len(s.items))
		for i := range s.relayBudget {
			s.relayBudget[i] = -1
		}
		s.obsOnTime = make([]int, len(s.items))
		s.obsTotal = make([]int, len(s.items))
	}

	for _, it := range s.items {
		var t *Tree
		var err error
		if s.hierarchical {
			// The source builds the tree for its item from its own
			// knowledge (the oracle matrix, or its local view under
			// distributed knowledge).
			t, err = BuildTree(rt.RatesFor(it.Source), it.Source, rt.CachingNodes, rt.MaxFanout)
		} else {
			t, err = starTree(it.Source, rt.CachingNodes)
		}
		if err != nil {
			return fmt.Errorf("core: tree for item %d: %w", it.ID, err)
		}
		s.trees[it.ID] = t
	}
	return nil
}

// Rebuild implements Rebuilder: it reconstructs the refresh trees from
// the runtime's current rate knowledge. Outstanding duties and relay
// copies are kept — copies in flight stay useful — but responsibility for
// future versions follows the new trees. The plan memo self-invalidates:
// the swapped-in rate matrix carries a fresh epoch.
func (s *refreshScheme) Rebuild(rt *Runtime) error {
	s.rt = rt
	for _, it := range s.items {
		if !s.hierarchical {
			continue // star trees have no rates to adapt to
		}
		t, err := BuildTree(rt.RatesFor(it.Source), it.Source, rt.CachingNodes, rt.MaxFanout)
		if err != nil {
			return fmt.Errorf("core: rebuild tree for item %d: %w", it.ID, err)
		}
		s.trees[it.ID] = t
	}
	return nil
}

var _ Rebuilder = (*refreshScheme)(nil)

// starTree builds the degenerate one-level hierarchy: every caching node
// is a direct child of the source.
func starTree(source trace.NodeID, cachingNodes []trace.NodeID) (*Tree, error) {
	t := &Tree{
		Source:        source,
		Parent:        make(map[trace.NodeID]trace.NodeID, len(cachingNodes)),
		Children:      map[trace.NodeID][]trace.NodeID{},
		Depth:         map[trace.NodeID]int{source: 0},
		ExpectedDelay: map[trace.NodeID]float64{source: 0},
	}
	for _, c := range cachingNodes {
		if c == source {
			return nil, fmt.Errorf("core: source %d in caching set", source)
		}
		t.Parent[c] = source
		t.Children[source] = append(t.Children[source], c)
		t.Depth[c] = 1
	}
	return t, nil
}

// OnGenerate implements Scheme: the source becomes responsible for its
// children in the tree.
func (s *refreshScheme) OnGenerate(it cache.Item, version int, now float64) {
	if s.onlyFirstVersion && version > 0 {
		return
	}
	if s.adaptive {
		s.adjustBudget(it)
	}
	s.assumeDuty(it.Source, it, version, now, now, s.lin.Root(int32(it.ID), int32(version)))
}

// adjustBudget is the per-item feedback controller: compare the on-time
// ratio observed since the last generation against the requirement and
// nudge the relay bound. A minimum sample keeps it from chasing noise.
func (s *refreshScheme) adjustBudget(it cache.Item) {
	const minSample = 3
	total := s.obsTotal[it.ID]
	if total < minSample {
		return
	}
	ratio := float64(s.obsOnTime[it.ID]) / float64(total)
	budget := s.relayBudget[it.ID]
	if budget < 0 {
		budget = s.rt.MaxRelays
	}
	switch {
	case ratio < s.rt.PReq && (s.rt.MaxRelays == 0 || budget < 4*s.rt.MaxRelays):
		budget++
	case ratio > s.rt.PReq+0.05 && budget > 1:
		budget--
	}
	s.relayBudget[it.ID] = budget
	s.obsOnTime[it.ID] = 0
	s.obsTotal[it.ID] = 0
}

// relayBound returns the relay bound in force for the item.
func (s *refreshScheme) relayBound(item cache.ItemID) int {
	if s.adaptive {
		if b := s.relayBudget[item]; b >= 0 {
			return b
		}
	}
	return s.rt.MaxRelays
}

// observeDelivery feeds the adaptive controller with one accepted cache
// delivery.
func (s *refreshScheme) observeDelivery(item cache.ItemID, genAt, window, now float64) {
	if !s.adaptive {
		return
	}
	s.obsTotal[item]++
	if now-genAt <= window {
		s.obsOnTime[item]++
	}
}

// planMemo returns the memo table valid for the given rates view, or nil
// when the view is not epoch-tagged (mutable knowledge — never cached).
// A view with a new epoch flushes the table: plans computed against
// superseded rates must not survive a hierarchy rebuild.
func (s *refreshScheme) planMemo(rates centrality.RateView) map[planKey]RelayPlan {
	em, ok := rates.(centrality.Epoched)
	if !ok {
		return nil
	}
	if !s.planValid || s.planEpoch != em.Epoch() || len(s.planCache) > maxPlanCacheEntries {
		s.planCache = make(map[planKey]RelayPlan)
		s.planEpoch = em.Epoch()
		s.planValid = true
	}
	return s.planCache
}

// copySpanAt returns the lineage span the node's current copy of the item
// arrived under (0 when lineage is off or the copy predates tracking).
func (s *refreshScheme) copySpanAt(node trace.NodeID, item cache.ItemID) obs.SpanID {
	if s.copySpan == nil {
		return 0
	}
	return s.copySpan[node][item]
}

// setCopySpan records the delivery span of the node's current copy.
func (s *refreshScheme) setCopySpan(node trace.NodeID, item cache.ItemID, id obs.SpanID) {
	if s.copySpan == nil {
		return
	}
	s.copySpan[node][item] = id
}

// assumeDuty makes `holder` responsible for refreshing its children in the
// item's tree with the given version. genAt is the version's generation
// time; now the moment responsibility starts (later than genAt for caching
// nodes deeper in the tree). parent is the lineage span that caused the
// duty (the generation root at the source, the delivery span elsewhere; 0
// when lineage is off).
func (s *refreshScheme) assumeDuty(holder trace.NodeID, it cache.Item, version int, genAt, now float64, parent obs.SpanID) {
	t := s.trees[it.ID]
	children := t.ResponsibleFor(holder)
	if len(children) == 0 {
		return
	}
	row := s.duties[holder]
	if row != nil {
		if cur := row[it.ID]; cur != nil && cur.key.version >= version {
			return // already responsible for this or a newer version
		}
	}
	d := s.rt.newDuty()
	*d = duty{
		key:    copyKey{item: it.ID, version: version},
		genAt:  genAt,
		window: it.FreshnessWindow,
		ttl:    it.Lifetime,
		dests:  s.rt.newSet(),
	}
	ndests := 0
	for _, c := range children {
		// Skip children that already have this version (delivered by an
		// overtaking relay path).
		if v, ok := s.rt.CachedVersion(c, it.ID); ok && v >= version {
			continue
		}
		d.dests.Add(int(c))
		ndests++
	}
	if ndests == 0 {
		return
	}
	// Nil-safe: Duty returns 0 when lineage is off.
	d.span = s.lin.Duty(now, parent, int32(holder), int32(it.ID), int32(version))

	if s.replicate {
		budget := d.genAt + d.window - now
		if budget > 0 {
			rates := s.rt.RatesFor(holder)
			memo := s.planMemo(rates)
			bound := s.relayBound(it.ID)
			for dest := d.dests.Next(0); dest >= 0; dest = d.dests.Next(dest + 1) {
				var plan RelayPlan
				if s.randomRelays {
					plan = s.randomPlan(rates, holder, trace.NodeID(dest), budget)
				} else {
					key := planKey{holder: holder, dest: trace.NodeID(dest), budget: budget, bound: bound}
					var hit bool
					if memo != nil {
						plan, hit = memo[key]
					}
					if !hit {
						var err error
						plan, err = PlanReplication(rates, holder, trace.NodeID(dest), s.rt.AllNodes(), budget, s.rt.PReq, bound)
						if err != nil {
							if s.planErr == nil {
								s.planErr = err
							}
							continue
						}
						if memo != nil {
							memo[key] = plan
						}
					}
				}
				s.plansTotal++
				if plan.Satisfied {
					s.plansSatisfied++
				}
				s.sumAchieved += plan.AchievedProb
				if s.rt.Obs != nil {
					s.rt.Obs.Emit(obs.Event{
						T: now, Kind: obs.KindReplicationPlanned,
						A: int32(holder), B: int32(dest), Item: int32(it.ID), Ver: int32(version),
						Val: plan.AchievedProb,
					})
				}
				if len(plan.Relays) > 0 {
					if d.relayFor == nil {
						d.relayFor = s.rt.setRow()
					}
					for _, r := range plan.Relays {
						rf := d.relayFor[r]
						if rf == nil {
							rf = s.rt.newSet()
							d.relayFor[r] = rf
						}
						rf.Add(dest)
					}
				}
			}
		}
	}

	if row == nil {
		row = s.rt.dutyRow(len(s.items))
		s.duties[holder] = row
	}
	if row[it.ID] == nil {
		s.dutyCount[holder]++
	}
	row[it.ID] = d // replaces any older-version duty
	if s.rt.Obs != nil {
		s.rt.Obs.Emit(obs.Event{
			T: now, Kind: obs.KindRefreshScheduled,
			A: int32(holder), B: -1, Item: int32(it.ID), Ver: int32(version),
			Val: float64(ndests),
		})
	}
}

// randomPlan draws MaxRelays distinct random relays (excluding holder and
// destination) and reports the honest analytical probability of that set,
// so E7-style comparisons stay meaningful.
func (s *refreshScheme) randomPlan(rates centrality.RateView, holder, dest trace.NodeID, budget float64) RelayPlan {
	plan := RelayPlan{Dest: dest}
	plan.DirectProb = DirectProb(rates.Rate(holder, dest), budget)
	miss := 1 - plan.DirectProb
	perm := s.rng.Perm(s.rt.N)
	for _, idx := range perm {
		if s.rt.MaxRelays > 0 && len(plan.Relays) >= s.rt.MaxRelays {
			break
		}
		r := trace.NodeID(idx)
		if r == holder || r == dest {
			continue
		}
		plan.Relays = append(plan.Relays, r)
		miss *= 1 - TwoHopProb(rates.Rate(holder, r), rates.Rate(r, dest), budget)
	}
	plan.AchievedProb = 1 - miss
	plan.Satisfied = plan.AchievedProb >= s.rt.PReq
	return plan
}

// OnContact implements Scheme.
func (s *refreshScheme) OnContact(c *network.Contact) {
	// Lazy relay-buffer expiry for both endpoints.
	s.expireRelays(c.A, c.Time)
	s.expireRelays(c.B, c.Time)

	// Both roles in both directions: responsible-node actions, then
	// relay deliveries, then opportunistic peer sync.
	s.actAsResponsible(c, c.A, c.B)
	s.actAsResponsible(c, c.B, c.A)
	s.actAsRelay(c, c.A, c.B)
	s.actAsRelay(c, c.B, c.A)
	if s.opportunistic {
		s.syncPeers(c, c.A, c.B)
		s.syncPeers(c, c.B, c.A)
	}
}

// syncPeers lets a caching node refresh a stale caching peer it happens to
// meet, regardless of tree edges — part of maintaining freshness "in a
// distributed manner": every caching node helps the peers it actually
// sees.
func (s *refreshScheme) syncPeers(c *network.Contact, from, to trace.NodeID) {
	if !s.rt.IsCachingNode(from) || !s.rt.IsCachingNode(to) {
		return
	}
	for i := range s.items {
		it := s.items[i]
		cp, ok := s.rt.CachedCopy(from, it.ID)
		if !ok || cp.Expired(it, c.Time) {
			continue
		}
		if v, ok := s.rt.CachedVersion(to, it.ID); ok && v >= cp.Version {
			continue
		}
		if !c.Send(from, to, "refresh") {
			return
		}
		cp.ReceivedAt = c.Time
		if s.rt.DeliverToCache(to, cp, c.Time) {
			// Parent on the span the giver's copy arrived under; copies
			// held since before lineage tracking fall back to the
			// generation root.
			parent := s.copySpanAt(from, it.ID)
			if parent == 0 {
				parent = s.lin.Root(int32(it.ID), int32(cp.Version))
			}
			sp := s.lin.Delivered(c.Time, parent, int32(from), int32(to), int32(it.ID), int32(cp.Version), c.Time-cp.GeneratedAt)
			s.setCopySpan(to, it.ID, sp)
			s.observeDelivery(it.ID, cp.GeneratedAt, it.FreshnessWindow, c.Time)
			s.assumeDuty(to, it, cp.Version, cp.GeneratedAt, c.Time, sp)
		}
	}
}

// actAsResponsible runs holder's duties against peer: direct delivery when
// peer is a pending destination, relay hand-off when peer is a planned
// relay. Items are walked in ID order, which is the deterministic order
// the old map-based state had to re-derive from the catalog.
func (s *refreshScheme) actAsResponsible(c *network.Contact, holder, peer trace.NodeID) {
	if s.dutyCount[holder] == 0 {
		return
	}
	row := s.duties[holder]
	p := int(peer)
	for i := range s.items {
		d := row[i]
		if d == nil {
			continue
		}
		it := s.items[i]
		itemID := it.ID
		// A version past its lifetime is worthless; drop the duty.
		if c.Time > d.genAt+d.ttl {
			row[i] = nil
			s.dutyCount[holder]--
			continue
		}
		// Destination already refreshed by someone else? Clear silently.
		if d.dests.Contains(p) {
			if v, ok := s.rt.CachedVersion(peer, itemID); ok && v >= d.key.version {
				d.dests.Remove(p)
			}
		}
		if d.dests.Contains(p) {
			if !c.Send(holder, peer, "refresh") {
				return // contact budget exhausted; try next contact
			}
			cp := cache.Copy{Item: itemID, Version: d.key.version, GeneratedAt: d.genAt, ReceivedAt: c.Time}
			if s.rt.DeliverToCache(peer, cp, c.Time) {
				sp := s.lin.Delivered(c.Time, d.span, int32(holder), int32(peer), int32(itemID), int32(d.key.version), c.Time-d.genAt)
				s.setCopySpan(peer, itemID, sp)
				s.observeDelivery(itemID, d.genAt, d.window, c.Time)
				s.assumeDuty(peer, it, d.key.version, d.genAt, c.Time, sp)
			}
			d.dests.Remove(p)
		} else if d.relayFor != nil && d.relayFor[peer] != nil {
			// Hand the copy to the relay for its still-pending dests.
			rf := d.relayFor[peer]
			if rf.IntersectInto(d.dests, s.scratch) == 0 {
				d.relayFor[peer] = nil
				continue
			}
			if s.giveToRelay(c, holder, peer, d, s.scratch) {
				d.relayFor[peer] = nil // handed off once; relay owns it now
			}
		}
		if d.dests.Empty() {
			row[i] = nil
			s.dutyCount[holder]--
		}
	}
}

// giveToRelay parks a copy at the relay. The physical copy transfer costs
// one "relay" transmission the first time; adding destinations to a copy
// the relay already holds is metadata and free.
func (s *refreshScheme) giveToRelay(c *network.Contact, holder, relay trace.NodeID, d *duty, live *bitset.Set) bool {
	buf := s.relays[relay]
	for _, entry := range buf {
		if entry.key == d.key {
			entry.dests.Or(live)
			return true
		}
	}
	if !c.Send(holder, relay, "relay") {
		return false
	}
	if cap := s.rt.RelayBufferCap; cap > 0 && len(buf) >= cap {
		buf = evictRelayEntry(buf)
	}
	entry := s.rt.newRelayEntry()
	*entry = relayEntry{
		key:   d.key,
		genAt: d.genAt,
		// Copies stay deliverable while the data is still valid, not
		// just while the on-time window is open: a late refresh beats
		// no refresh.
		expire: d.genAt + d.ttl,
		dests:  s.rt.newSet(),
		span:   s.lin.Handoff(c.Time, d.span, int32(holder), int32(relay), int32(d.key.item), int32(d.key.version)),
	}
	entry.dests.Or(live)
	s.relays[relay] = insertRelayEntry(buf, entry)
	if s.rt.Obs != nil {
		s.rt.Obs.Emit(obs.Event{
			T: c.Time, Kind: obs.KindRelayHandoff,
			A: int32(holder), B: int32(relay), Item: int32(d.key.item), Ver: int32(d.key.version),
		})
	}
	return true
}

// insertRelayEntry inserts the entry keeping the buffer sorted by (item,
// version).
func insertRelayEntry(buf []*relayEntry, e *relayEntry) []*relayEntry {
	pos := len(buf)
	for i, x := range buf {
		if keyLess(e.key, x.key) {
			pos = i
			break
		}
	}
	buf = append(buf, nil)
	copy(buf[pos+1:], buf[pos:])
	buf[pos] = e
	return buf
}

// actAsRelay delivers copies parked at `relay` that are destined for peer.
// The buffer is kept key-sorted, so the walk is already in the
// deterministic (item, version) order.
func (s *refreshScheme) actAsRelay(c *network.Contact, relay, peer trace.NodeID) {
	buf := s.relays[relay]
	if len(buf) == 0 {
		return
	}
	p := int(peer)
	for _, entry := range buf {
		planned := entry.dests.Contains(p)
		if !planned && !(s.opportunistic && s.rt.IsCachingNode(peer)) {
			continue
		}
		entry.dests.Remove(p)
		// Skip if the destination caught up through another path.
		if v, ok := s.rt.CachedVersion(peer, entry.key.item); ok && v >= entry.key.version {
			continue
		}
		if !c.Send(relay, peer, "refresh") {
			if planned {
				entry.dests.Add(p) // budget exhausted; retry next contact
			}
			return
		}
		cp := cache.Copy{Item: entry.key.item, Version: entry.key.version, GeneratedAt: entry.genAt, ReceivedAt: c.Time}
		if s.rt.DeliverToCache(peer, cp, c.Time) {
			sp := s.lin.Delivered(c.Time, entry.span, int32(relay), int32(peer), int32(entry.key.item), int32(entry.key.version), c.Time-entry.genAt)
			s.setCopySpan(peer, entry.key.item, sp)
			if it, err := s.rt.Catalog.Item(entry.key.item); err == nil {
				s.observeDelivery(entry.key.item, entry.genAt, it.FreshnessWindow, c.Time)
				s.assumeDuty(peer, it, entry.key.version, entry.genAt, c.Time, sp)
			}
		}
	}
	// Drop entries whose destination set drained, preserving order. Like
	// the pre-dense code, this cleanup runs only when the walk completes
	// (a budget-exhausted return leaves drained entries for later).
	kept := buf[:0]
	for _, entry := range buf {
		if entry.dests.Empty() {
			continue
		}
		kept = append(kept, entry)
	}
	if len(kept) != len(buf) {
		for i := len(kept); i < len(buf); i++ {
			buf[i] = nil
		}
		s.relays[relay] = kept
	}
}

// evictRelayEntry drops the buffered copy closest to expiry (ties broken
// by key for determinism) to make room in a capped relay buffer.
func evictRelayEntry(buf []*relayEntry) []*relayEntry {
	victim := -1
	for i, entry := range buf {
		if victim < 0 || entry.expire < buf[victim].expire ||
			(entry.expire == buf[victim].expire && keyLess(entry.key, buf[victim].key)) {
			victim = i
		}
	}
	if victim < 0 {
		return buf
	}
	copy(buf[victim:], buf[victim+1:])
	buf[len(buf)-1] = nil
	return buf[:len(buf)-1]
}

func (s *refreshScheme) expireRelays(node trace.NodeID, now float64) {
	buf := s.relays[node]
	if len(buf) == 0 {
		return
	}
	kept := buf[:0]
	for _, entry := range buf {
		if now > entry.expire {
			continue
		}
		kept = append(kept, entry)
	}
	if len(kept) != len(buf) {
		for i := len(kept); i < len(buf); i++ {
			buf[i] = nil
		}
		s.relays[node] = kept
	}
}

// SchemeStats implements StatsReporter: the replication planner's
// aggregate analytical probabilities, for validation against measured
// on-time delivery.
func (s *refreshScheme) SchemeStats() map[string]float64 {
	out := map[string]float64{
		"plansTotal":     float64(s.plansTotal),
		"plansSatisfied": float64(s.plansSatisfied),
	}
	if s.plansTotal > 0 {
		out["meanAchievedProb"] = s.sumAchieved / float64(s.plansTotal)
		out["satisfiedRatio"] = float64(s.plansSatisfied) / float64(s.plansTotal)
	}
	if s.adaptive {
		sum, cnt := 0, 0
		for _, b := range s.relayBudget {
			if b >= 0 {
				sum += b
				cnt++
			}
		}
		if cnt > 0 {
			out["meanRelayBudget"] = float64(sum) / float64(cnt)
		}
	}
	if len(s.trees) > 0 {
		depthSum, maxDepth := 0, 0
		for _, t := range s.trees {
			d := t.MaxDepth()
			depthSum += d
			if d > maxDepth {
				maxDepth = d
			}
		}
		out["meanTreeDepth"] = float64(depthSum) / float64(len(s.trees))
		out["maxTreeDepth"] = float64(maxDepth)
	}
	return out
}

// epidemicScheme floods every new version to every node: the freshness
// ceiling and the overhead ceiling.
type epidemicScheme struct {
	rt    *Runtime
	items []cache.Item
	// known[node][item] is the newest copy the node carries (every node
	// relays, not just caching nodes); Version < 0 marks no copy. Rows
	// are allocated on a node's first copy.
	known [][]cache.Copy
	// lin is the run's lineage (nil = off); spans[node][item] mirrors
	// known with the span the node's copy arrived under, allocated only
	// when lineage is on.
	lin   *obs.Lineage
	spans [][]obs.SpanID
}

var _ Scheme = (*epidemicScheme)(nil)

// NewEpidemic returns the flooding baseline.
func NewEpidemic() Scheme { return &epidemicScheme{} }

// Name implements Scheme.
func (s *epidemicScheme) Name() string { return "epidemic" }

// Init implements Scheme.
func (s *epidemicScheme) Init(rt *Runtime) error {
	s.rt = rt
	s.items = rt.Items()
	s.known = make([][]cache.Copy, rt.N)
	s.lin = rt.Lin
	s.spans = nil
	if s.lin != nil {
		s.spans = make([][]obs.SpanID, rt.N)
		for i := range s.spans {
			s.spans[i] = make([]obs.SpanID, len(s.items))
		}
	}
	return nil
}

// OnGenerate implements Scheme.
func (s *epidemicScheme) OnGenerate(it cache.Item, version int, now float64) {
	s.setKnown(it.Source, cache.Copy{Item: it.ID, Version: version, GeneratedAt: now, ReceivedAt: now})
	if s.spans != nil {
		// The source's copy descends straight from the generation root.
		s.spans[it.Source][it.ID] = s.lin.Root(int32(it.ID), int32(version))
	}
}

func (s *epidemicScheme) setKnown(node trace.NodeID, c cache.Copy) {
	row := s.known[node]
	if row == nil {
		row = make([]cache.Copy, len(s.items))
		for i := range row {
			row[i].Version = -1
		}
		s.known[node] = row
	}
	if row[c.Item].Version < c.Version {
		row[c.Item] = c
	}
}

// OnContact implements Scheme: anti-entropy in both directions.
func (s *epidemicScheme) OnContact(c *network.Contact) {
	s.push(c, c.A, c.B)
	s.push(c, c.B, c.A)
}

func (s *epidemicScheme) push(c *network.Contact, from, to trace.NodeID) {
	src := s.known[from]
	if src == nil {
		return
	}
	dst := s.known[to]
	for i := range s.items {
		it := s.items[i]
		cp := src[it.ID]
		if cp.Version < 0 {
			continue
		}
		if dst != nil && dst[it.ID].Version >= cp.Version {
			continue
		}
		kind := "relay"
		if s.rt.IsCachingNode(to) {
			kind = "refresh"
		}
		if !c.Send(from, to, kind) {
			return
		}
		cp.ReceivedAt = c.Time
		s.setKnown(to, cp)
		dst = s.known[to] // row may have just been allocated
		delivered := false
		if s.rt.IsCachingNode(to) {
			delivered = s.rt.DeliverToCache(to, cp, c.Time)
		}
		if s.spans != nil {
			// A cache acceptance ends a branch with a delivery span; any
			// other transfer is an epidemic carry (handoff).
			parent := s.spans[from][it.ID]
			if delivered {
				s.spans[to][it.ID] = s.lin.Delivered(c.Time, parent, int32(from), int32(to), int32(it.ID), int32(cp.Version), c.Time-cp.GeneratedAt)
			} else {
				s.spans[to][it.ID] = s.lin.Handoff(c.Time, parent, int32(from), int32(to), int32(it.ID), int32(cp.Version))
			}
		}
	}
}

// oracleScheme delivers every version to every caching node instantly and
// for free: the upper bound on freshness, not a real protocol.
type oracleScheme struct {
	rt *Runtime
}

var _ Scheme = (*oracleScheme)(nil)

// NewOracle returns the instantaneous-refresh upper bound.
func NewOracle() Scheme { return &oracleScheme{} }

// Name implements Scheme.
func (s *oracleScheme) Name() string { return "oracle" }

// Init implements Scheme.
func (s *oracleScheme) Init(rt *Runtime) error {
	s.rt = rt
	return nil
}

// OnGenerate implements Scheme.
func (s *oracleScheme) OnGenerate(it cache.Item, version int, now float64) {
	root := s.rt.Lin.Root(int32(it.ID), int32(version))
	for _, cn := range s.rt.CachingNodes {
		if s.rt.DeliverToCache(cn, cache.Copy{Item: it.ID, Version: version, GeneratedAt: now, ReceivedAt: now}, now) {
			// Instantaneous delivery: one zero-age span per caching node,
			// parented directly on the generation root.
			s.rt.Lin.Delivered(now, root, int32(it.Source), int32(cn), int32(it.ID), int32(version), 0)
		}
	}
}

// OnContact implements Scheme (nothing to do; caches are always fresh).
func (s *oracleScheme) OnContact(*network.Contact) {}

// Schemes maps CLI names to scheme constructors, in the canonical
// reporting order.
func Schemes() []struct {
	Name string
	New  func() Scheme
} {
	return []struct {
		Name string
		New  func() Scheme
	}{
		{"norefresh", NewNoRefresh},
		{"direct", NewDirect},
		{"direct-rep", NewDirectReplicated},
		{"hierarchical-norep", NewHierarchicalNoRep},
		{"hierarchical", NewHierarchical},
		{"random-rep", NewRandomReplicated},
		{"adaptive", NewAdaptive},
		{"spray", func() Scheme { return NewSprayAndWait(0) }},
		{"epidemic", NewEpidemic},
		{"oracle", NewOracle},
	}
}

// SchemeByName returns a fresh scheme instance by its CLI name.
func SchemeByName(name string) (Scheme, error) {
	for _, s := range Schemes() {
		if s.Name == name {
			return s.New(), nil
		}
	}
	return nil, fmt.Errorf("core: unknown scheme %q", name)
}
