package core

import (
	"fmt"
	"math/rand"
	"sort"

	"freshcache/internal/cache"
	"freshcache/internal/centrality"
	"freshcache/internal/network"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// copyKey identifies one version of one item.
type copyKey struct {
	item    cache.ItemID
	version int
}

// duty is the refresh responsibility a node holds for one item version:
// the set of caching nodes it must still refresh, and the relay plans
// backing each of them.
type duty struct {
	key    copyKey
	genAt  float64
	window float64
	// ttl is how long copies of this version stay worth delivering (the
	// item lifetime); relay copies expire at genAt+ttl.
	ttl float64
	// dests are the children not yet known to be refreshed.
	dests map[trace.NodeID]bool
	// relayFor maps relay -> destinations that relay serves (empty when
	// replication is off or unnecessary).
	relayFor map[trace.NodeID]map[trace.NodeID]bool
}

// relayEntry is a copy parked at a relay node on behalf of responsible
// nodes, tagged with the destinations it should be delivered to.
type relayEntry struct {
	key    copyKey
	genAt  float64
	expire float64
	dests  map[trace.NodeID]bool
}

// refreshScheme is the unified refresh protocol behind four of the
// evaluated schemes. Its two switches correspond exactly to the paper's
// two ideas:
//
//   - hierarchical=false: only the source refreshes caching nodes (a star
//     "hierarchy") — the Direct baselines.
//   - hierarchical=true: the refresh tree of BuildTree distributes
//     responsibility — each caching node refreshes its children.
//   - replicate: probabilistic replication through relay nodes per
//     PlanReplication; off = direct parent→child contacts only.
//   - onlyFirstVersion: the NoRefresh floor — version 0 propagates (initial
//     cache fill), later versions are never pushed.
type refreshScheme struct {
	name             string
	hierarchical     bool
	replicate        bool
	onlyFirstVersion bool
	// randomRelays replaces the analysis-driven relay selection with a
	// uniformly random relay set of the same maximum size — the ablation
	// showing that *which* relays carry copies matters, not just how many.
	randomRelays bool
	// opportunistic enables the distributed-maintenance side channels of
	// the hierarchical variants: two caching nodes that meet refresh each
	// other's stale copies, and a relay hands its copy to ANY caching node
	// that lacks the version (bookkeeping still tracks the planned
	// destinations). The Direct baselines stay source-only by definition.
	opportunistic bool
	// adaptive closes a feedback loop over the relay budget: each item's
	// observed on-time delivery ratio is compared against the requirement
	// at every generation, and the per-item relay bound grows when the
	// requirement is missed and shrinks when it is comfortably exceeded.
	adaptive bool

	rng *rand.Rand // non-nil iff randomRelays

	rt    *Runtime
	trees map[cache.ItemID]*Tree
	// duties[node][item] is the node's current (newest-version) duty.
	duties map[trace.NodeID]map[cache.ItemID]*duty
	// relays[node][key] are copies parked at the node for delivery.
	relays map[trace.NodeID]map[copyKey]*relayEntry

	// Planner statistics for analysis validation (E7).
	plansTotal     int
	plansSatisfied int
	sumAchieved    float64
	planErr        error

	// Adaptive-control state (adaptive only): per-item relay budget and
	// on-time observations since the item's last adjustment.
	relayBudget map[cache.ItemID]int
	obsOnTime   map[cache.ItemID]int
	obsTotal    map[cache.ItemID]int
}

var (
	_ Scheme        = (*refreshScheme)(nil)
	_ StatsReporter = (*refreshScheme)(nil)
)

// NewDirect returns the source-only refreshing baseline: caching nodes are
// refreshed exclusively on direct contact with the data source.
func NewDirect() Scheme {
	return &refreshScheme{name: "direct"}
}

// NewDirectReplicated returns the ablation with probabilistic replication
// but no hierarchy: the source remains responsible for every caching node
// and hands copies to relays per the replication analysis.
func NewDirectReplicated() Scheme {
	return &refreshScheme{name: "direct-rep", replicate: true}
}

// NewHierarchical returns the paper's scheme: distributed hierarchical
// refreshing with probabilistic replication.
func NewHierarchical() Scheme {
	return &refreshScheme{name: "hierarchical", hierarchical: true, replicate: true, opportunistic: true}
}

// NewHierarchicalNoRep returns the ablation with the refresh hierarchy but
// without relay replication (direct parent→child contacts only).
func NewHierarchicalNoRep() Scheme {
	return &refreshScheme{name: "hierarchical-norep", hierarchical: true, opportunistic: true}
}

// NewNoRefresh returns the floor baseline: caches fill once with version 0
// and are never refreshed.
func NewNoRefresh() Scheme {
	return &refreshScheme{name: "norefresh", onlyFirstVersion: true}
}

// NewRandomReplicated returns the relay-selection ablation: hierarchy and
// replication exactly as the paper's scheme, but relays are chosen
// uniformly at random instead of by the delivery-probability analysis.
func NewRandomReplicated() Scheme {
	return &refreshScheme{name: "random-rep", hierarchical: true, replicate: true, randomRelays: true, opportunistic: true}
}

// NewHierarchicalBare returns the hierarchy with no replication and no
// opportunistic side channels: deliveries happen strictly along tree
// edges. Not part of the evaluated panel; it exists so the analytical
// tree forecast (AnalyzeTree) can be validated against a protocol whose
// behavior the analysis exactly models.
func NewHierarchicalBare() Scheme {
	return &refreshScheme{name: "hierarchical-bare", hierarchical: true}
}

// NewAdaptive returns the paper's scheme with an adaptive relay budget:
// instead of a fixed per-destination relay bound, each item's bound is
// feedback-controlled from its measured on-time delivery ratio. A natural
// extension: the analysis picks relays, the controller picks how many the
// analysis may use.
func NewAdaptive() Scheme {
	return &refreshScheme{name: "adaptive", hierarchical: true, replicate: true, opportunistic: true, adaptive: true}
}

// Name implements Scheme.
func (s *refreshScheme) Name() string { return s.name }

// Init implements Scheme: it builds the refresh tree for every item (a
// star rooted at the source for the non-hierarchical variants).
func (s *refreshScheme) Init(rt *Runtime) error {
	s.rt = rt
	s.trees = make(map[cache.ItemID]*Tree, rt.Catalog.Len())
	s.duties = make(map[trace.NodeID]map[cache.ItemID]*duty)
	s.relays = make(map[trace.NodeID]map[copyKey]*relayEntry)
	if s.randomRelays {
		s.rng = stats.Derive(rt.Seed, "core/random-relays")
	}
	if s.adaptive {
		s.relayBudget = make(map[cache.ItemID]int)
		s.obsOnTime = make(map[cache.ItemID]int)
		s.obsTotal = make(map[cache.ItemID]int)
	}

	for _, it := range rt.Catalog.Items() {
		var t *Tree
		var err error
		if s.hierarchical {
			// The source builds the tree for its item from its own
			// knowledge (the oracle matrix, or its local view under
			// distributed knowledge).
			t, err = BuildTree(rt.RatesFor(it.Source), it.Source, rt.CachingNodes, rt.MaxFanout)
		} else {
			t, err = starTree(it.Source, rt.CachingNodes)
		}
		if err != nil {
			return fmt.Errorf("core: tree for item %d: %w", it.ID, err)
		}
		s.trees[it.ID] = t
	}
	return nil
}

// Rebuild implements Rebuilder: it reconstructs the refresh trees from
// the runtime's current rate knowledge. Outstanding duties and relay
// copies are kept — copies in flight stay useful — but responsibility for
// future versions follows the new trees.
func (s *refreshScheme) Rebuild(rt *Runtime) error {
	s.rt = rt
	for _, it := range rt.Catalog.Items() {
		if !s.hierarchical {
			continue // star trees have no rates to adapt to
		}
		t, err := BuildTree(rt.RatesFor(it.Source), it.Source, rt.CachingNodes, rt.MaxFanout)
		if err != nil {
			return fmt.Errorf("core: rebuild tree for item %d: %w", it.ID, err)
		}
		s.trees[it.ID] = t
	}
	return nil
}

var _ Rebuilder = (*refreshScheme)(nil)

// starTree builds the degenerate one-level hierarchy: every caching node
// is a direct child of the source.
func starTree(source trace.NodeID, cachingNodes []trace.NodeID) (*Tree, error) {
	t := &Tree{
		Source:        source,
		Parent:        make(map[trace.NodeID]trace.NodeID, len(cachingNodes)),
		Children:      map[trace.NodeID][]trace.NodeID{},
		Depth:         map[trace.NodeID]int{source: 0},
		ExpectedDelay: map[trace.NodeID]float64{source: 0},
	}
	for _, c := range cachingNodes {
		if c == source {
			return nil, fmt.Errorf("core: source %d in caching set", source)
		}
		t.Parent[c] = source
		t.Children[source] = append(t.Children[source], c)
		t.Depth[c] = 1
	}
	return t, nil
}

// OnGenerate implements Scheme: the source becomes responsible for its
// children in the tree.
func (s *refreshScheme) OnGenerate(it cache.Item, version int, now float64) {
	if s.onlyFirstVersion && version > 0 {
		return
	}
	if s.adaptive {
		s.adjustBudget(it)
	}
	s.assumeDuty(it.Source, it, version, now, now)
}

// adjustBudget is the per-item feedback controller: compare the on-time
// ratio observed since the last generation against the requirement and
// nudge the relay bound. A minimum sample keeps it from chasing noise.
func (s *refreshScheme) adjustBudget(it cache.Item) {
	const minSample = 3
	total := s.obsTotal[it.ID]
	if total < minSample {
		return
	}
	ratio := float64(s.obsOnTime[it.ID]) / float64(total)
	budget, ok := s.relayBudget[it.ID]
	if !ok {
		budget = s.rt.MaxRelays
	}
	switch {
	case ratio < s.rt.PReq && (s.rt.MaxRelays == 0 || budget < 4*s.rt.MaxRelays):
		budget++
	case ratio > s.rt.PReq+0.05 && budget > 1:
		budget--
	}
	s.relayBudget[it.ID] = budget
	s.obsOnTime[it.ID] = 0
	s.obsTotal[it.ID] = 0
}

// relayBound returns the relay bound in force for the item.
func (s *refreshScheme) relayBound(item cache.ItemID) int {
	if s.adaptive {
		if b, ok := s.relayBudget[item]; ok {
			return b
		}
	}
	return s.rt.MaxRelays
}

// observeDelivery feeds the adaptive controller with one accepted cache
// delivery.
func (s *refreshScheme) observeDelivery(item cache.ItemID, genAt, window, now float64) {
	if !s.adaptive {
		return
	}
	s.obsTotal[item]++
	if now-genAt <= window {
		s.obsOnTime[item]++
	}
}

// assumeDuty makes `holder` responsible for refreshing its children in the
// item's tree with the given version. genAt is the version's generation
// time; now the moment responsibility starts (later than genAt for caching
// nodes deeper in the tree).
func (s *refreshScheme) assumeDuty(holder trace.NodeID, it cache.Item, version int, genAt, now float64) {
	t := s.trees[it.ID]
	children := t.ResponsibleFor(holder)
	if len(children) == 0 {
		return
	}
	if cur, ok := s.duties[holder][it.ID]; ok && cur.key.version >= version {
		return // already responsible for this or a newer version
	}
	d := &duty{
		key:      copyKey{item: it.ID, version: version},
		genAt:    genAt,
		window:   it.FreshnessWindow,
		ttl:      it.Lifetime,
		dests:    make(map[trace.NodeID]bool, len(children)),
		relayFor: make(map[trace.NodeID]map[trace.NodeID]bool),
	}
	for _, c := range children {
		// Skip children that already have this version (delivered by an
		// overtaking relay path).
		if v, ok := s.rt.CachedVersion(c, it.ID); ok && v >= version {
			continue
		}
		d.dests[c] = true
	}
	if len(d.dests) == 0 {
		return
	}

	if s.replicate {
		budget := d.genAt + d.window - now
		if budget > 0 {
			rates := s.rt.RatesFor(holder)
			for dest := range d.dests {
				var plan RelayPlan
				var err error
				if s.randomRelays {
					plan = s.randomPlan(rates, holder, dest, budget)
				} else {
					plan, err = PlanReplication(rates, holder, dest, s.rt.AllNodes(), budget, s.rt.PReq, s.relayBound(it.ID))
					if err != nil {
						if s.planErr == nil {
							s.planErr = err
						}
						continue
					}
				}
				s.plansTotal++
				if plan.Satisfied {
					s.plansSatisfied++
				}
				s.sumAchieved += plan.AchievedProb
				for _, r := range plan.Relays {
					if d.relayFor[r] == nil {
						d.relayFor[r] = make(map[trace.NodeID]bool)
					}
					d.relayFor[r][dest] = true
				}
			}
		}
	}

	if s.duties[holder] == nil {
		s.duties[holder] = make(map[cache.ItemID]*duty)
	}
	s.duties[holder][it.ID] = d // replaces any older-version duty
}

// randomPlan draws MaxRelays distinct random relays (excluding holder and
// destination) and reports the honest analytical probability of that set,
// so E7-style comparisons stay meaningful.
func (s *refreshScheme) randomPlan(rates centrality.RateView, holder, dest trace.NodeID, budget float64) RelayPlan {
	plan := RelayPlan{Dest: dest}
	plan.DirectProb = DirectProb(rates.Rate(holder, dest), budget)
	miss := 1 - plan.DirectProb
	perm := s.rng.Perm(s.rt.N)
	for _, idx := range perm {
		if s.rt.MaxRelays > 0 && len(plan.Relays) >= s.rt.MaxRelays {
			break
		}
		r := trace.NodeID(idx)
		if r == holder || r == dest {
			continue
		}
		plan.Relays = append(plan.Relays, r)
		miss *= 1 - TwoHopProb(rates.Rate(holder, r), rates.Rate(r, dest), budget)
	}
	plan.AchievedProb = 1 - miss
	plan.Satisfied = plan.AchievedProb >= s.rt.PReq
	return plan
}

// OnContact implements Scheme.
func (s *refreshScheme) OnContact(c *network.Contact) {
	// Lazy relay-buffer expiry for both endpoints.
	s.expireRelays(c.A, c.Time)
	s.expireRelays(c.B, c.Time)

	// Both roles in both directions: responsible-node actions, then
	// relay deliveries, then opportunistic peer sync.
	s.actAsResponsible(c, c.A, c.B)
	s.actAsResponsible(c, c.B, c.A)
	s.actAsRelay(c, c.A, c.B)
	s.actAsRelay(c, c.B, c.A)
	if s.opportunistic {
		s.syncPeers(c, c.A, c.B)
		s.syncPeers(c, c.B, c.A)
	}
}

// syncPeers lets a caching node refresh a stale caching peer it happens to
// meet, regardless of tree edges — part of maintaining freshness "in a
// distributed manner": every caching node helps the peers it actually
// sees.
func (s *refreshScheme) syncPeers(c *network.Contact, from, to trace.NodeID) {
	if !s.rt.IsCachingNode(from) || !s.rt.IsCachingNode(to) {
		return
	}
	for _, it := range s.rt.Catalog.Items() {
		cp, ok := s.rt.CachedCopy(from, it.ID)
		if !ok || cp.Expired(it, c.Time) {
			continue
		}
		if v, ok := s.rt.CachedVersion(to, it.ID); ok && v >= cp.Version {
			continue
		}
		if !c.Send(from, to, "refresh") {
			return
		}
		cp.ReceivedAt = c.Time
		if s.rt.DeliverToCache(to, cp, c.Time) {
			s.observeDelivery(it.ID, cp.GeneratedAt, it.FreshnessWindow, c.Time)
			s.assumeDuty(to, it, cp.Version, cp.GeneratedAt, c.Time)
		}
	}
}

// actAsResponsible runs holder's duties against peer: direct delivery when
// peer is a pending destination, relay hand-off when peer is a planned
// relay.
func (s *refreshScheme) actAsResponsible(c *network.Contact, holder, peer trace.NodeID) {
	duties := s.duties[holder]
	if len(duties) == 0 {
		return
	}
	// Iterate items in ID order: map order would make which destination
	// wins a budget-limited contact nondeterministic across runs.
	for _, it := range s.rt.Catalog.Items() {
		itemID := it.ID
		d, ok := duties[itemID]
		if !ok {
			continue
		}
		// A version past its lifetime is worthless; drop the duty.
		if c.Time > d.genAt+d.ttl {
			delete(duties, itemID)
			continue
		}
		// Destination already refreshed by someone else? Clear silently.
		if d.dests[peer] {
			if v, ok := s.rt.CachedVersion(peer, itemID); ok && v >= d.key.version {
				delete(d.dests, peer)
			}
		}
		if d.dests[peer] {
			if !c.Send(holder, peer, "refresh") {
				return // contact budget exhausted; try next contact
			}
			cp := cache.Copy{Item: itemID, Version: d.key.version, GeneratedAt: d.genAt, ReceivedAt: c.Time}
			if s.rt.DeliverToCache(peer, cp, c.Time) {
				s.observeDelivery(itemID, d.genAt, d.window, c.Time)
				s.assumeDuty(peer, it, d.key.version, d.genAt, c.Time)
			}
			delete(d.dests, peer)
		} else if dests, ok := d.relayFor[peer]; ok && len(dests) > 0 {
			// Hand the copy to the relay for its still-pending dests.
			live := make(map[trace.NodeID]bool)
			for dest := range dests {
				if d.dests[dest] {
					live[dest] = true
				}
			}
			if len(live) == 0 {
				delete(d.relayFor, peer)
				continue
			}
			if s.giveToRelay(c, holder, peer, d, live) {
				delete(d.relayFor, peer) // handed off once; relay owns it now
			}
		}
		if len(d.dests) == 0 {
			delete(duties, itemID)
		}
	}
}

// giveToRelay parks a copy at the relay. The physical copy transfer costs
// one "relay" transmission the first time; adding destinations to a copy
// the relay already holds is metadata and free.
func (s *refreshScheme) giveToRelay(c *network.Contact, holder, relay trace.NodeID, d *duty, dests map[trace.NodeID]bool) bool {
	buf := s.relays[relay]
	entry, exists := buf[d.key]
	if !exists {
		if !c.Send(holder, relay, "relay") {
			return false
		}
		if buf == nil {
			buf = make(map[copyKey]*relayEntry)
			s.relays[relay] = buf
		}
		if cap := s.rt.RelayBufferCap; cap > 0 && len(buf) >= cap {
			s.evictRelayEntry(buf)
		}
		entry = &relayEntry{
			key:   d.key,
			genAt: d.genAt,
			// Copies stay deliverable while the data is still valid, not
			// just while the on-time window is open: a late refresh beats
			// no refresh.
			expire: d.genAt + d.ttl,
			dests:  make(map[trace.NodeID]bool),
		}
		buf[d.key] = entry
	}
	for dest := range dests {
		entry.dests[dest] = true
	}
	return true
}

// actAsRelay delivers copies parked at `relay` that are destined for peer.
func (s *refreshScheme) actAsRelay(c *network.Contact, relay, peer trace.NodeID) {
	buf := s.relays[relay]
	if len(buf) == 0 {
		return
	}
	keys := make([]copyKey, 0, len(buf))
	for key := range buf {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].item != keys[j].item {
			return keys[i].item < keys[j].item
		}
		return keys[i].version < keys[j].version
	})
	for _, key := range keys {
		entry := buf[key]
		planned := entry.dests[peer]
		if !planned && !(s.opportunistic && s.rt.IsCachingNode(peer)) {
			continue
		}
		delete(entry.dests, peer)
		// Skip if the destination caught up through another path.
		if v, ok := s.rt.CachedVersion(peer, key.item); ok && v >= key.version {
			continue
		}
		if !c.Send(relay, peer, "refresh") {
			if planned {
				entry.dests[peer] = true // budget exhausted; retry next contact
			}
			return
		}
		cp := cache.Copy{Item: key.item, Version: key.version, GeneratedAt: entry.genAt, ReceivedAt: c.Time}
		if s.rt.DeliverToCache(peer, cp, c.Time) {
			if it, err := s.rt.Catalog.Item(key.item); err == nil {
				s.observeDelivery(key.item, entry.genAt, it.FreshnessWindow, c.Time)
				s.assumeDuty(peer, it, key.version, entry.genAt, c.Time)
			}
		}
	}
	for key, entry := range buf {
		if len(entry.dests) == 0 {
			delete(buf, key)
		}
	}
}

// evictRelayEntry drops the buffered copy closest to expiry (ties broken
// by key for determinism) to make room in a capped relay buffer.
func (s *refreshScheme) evictRelayEntry(buf map[copyKey]*relayEntry) {
	var victim copyKey
	first := true
	for key, entry := range buf {
		if first || entry.expire < buf[victim].expire ||
			(entry.expire == buf[victim].expire && (key.item < victim.item || (key.item == victim.item && key.version < victim.version))) {
			victim = key
			first = false
		}
	}
	if !first {
		delete(buf, victim)
	}
}

func (s *refreshScheme) expireRelays(node trace.NodeID, now float64) {
	buf := s.relays[node]
	for key, entry := range buf {
		if now > entry.expire {
			delete(buf, key)
		}
	}
}

// SchemeStats implements StatsReporter: the replication planner's
// aggregate analytical probabilities, for validation against measured
// on-time delivery.
func (s *refreshScheme) SchemeStats() map[string]float64 {
	out := map[string]float64{
		"plansTotal":     float64(s.plansTotal),
		"plansSatisfied": float64(s.plansSatisfied),
	}
	if s.plansTotal > 0 {
		out["meanAchievedProb"] = s.sumAchieved / float64(s.plansTotal)
		out["satisfiedRatio"] = float64(s.plansSatisfied) / float64(s.plansTotal)
	}
	if s.adaptive && len(s.relayBudget) > 0 {
		sum := 0
		for _, b := range s.relayBudget {
			sum += b
		}
		out["meanRelayBudget"] = float64(sum) / float64(len(s.relayBudget))
	}
	if len(s.trees) > 0 {
		depthSum, maxDepth := 0, 0
		for _, t := range s.trees {
			d := t.MaxDepth()
			depthSum += d
			if d > maxDepth {
				maxDepth = d
			}
		}
		out["meanTreeDepth"] = float64(depthSum) / float64(len(s.trees))
		out["maxTreeDepth"] = float64(maxDepth)
	}
	return out
}

// epidemicScheme floods every new version to every node: the freshness
// ceiling and the overhead ceiling.
type epidemicScheme struct {
	rt *Runtime
	// known[node][item] is the newest copy the node carries (every node
	// relays, not just caching nodes).
	known map[trace.NodeID]map[cache.ItemID]cache.Copy
}

var _ Scheme = (*epidemicScheme)(nil)

// NewEpidemic returns the flooding baseline.
func NewEpidemic() Scheme { return &epidemicScheme{} }

// Name implements Scheme.
func (s *epidemicScheme) Name() string { return "epidemic" }

// Init implements Scheme.
func (s *epidemicScheme) Init(rt *Runtime) error {
	s.rt = rt
	s.known = make(map[trace.NodeID]map[cache.ItemID]cache.Copy, rt.N)
	return nil
}

// OnGenerate implements Scheme.
func (s *epidemicScheme) OnGenerate(it cache.Item, version int, now float64) {
	s.setKnown(it.Source, cache.Copy{Item: it.ID, Version: version, GeneratedAt: now, ReceivedAt: now})
}

func (s *epidemicScheme) setKnown(node trace.NodeID, c cache.Copy) {
	m := s.known[node]
	if m == nil {
		m = make(map[cache.ItemID]cache.Copy)
		s.known[node] = m
	}
	if old, ok := m[c.Item]; !ok || c.Version > old.Version {
		m[c.Item] = c
	}
}

// OnContact implements Scheme: anti-entropy in both directions.
func (s *epidemicScheme) OnContact(c *network.Contact) {
	s.push(c, c.A, c.B)
	s.push(c, c.B, c.A)
}

func (s *epidemicScheme) push(c *network.Contact, from, to trace.NodeID) {
	src := s.known[from]
	if len(src) == 0 {
		return
	}
	for _, it := range s.rt.Catalog.Items() {
		cp, ok := src[it.ID]
		if !ok {
			continue
		}
		if old, ok := s.known[to][it.ID]; ok && old.Version >= cp.Version {
			continue
		}
		kind := "relay"
		if s.rt.IsCachingNode(to) {
			kind = "refresh"
		}
		if !c.Send(from, to, kind) {
			return
		}
		cp.ReceivedAt = c.Time
		s.setKnown(to, cp)
		if s.rt.IsCachingNode(to) {
			s.rt.DeliverToCache(to, cp, c.Time)
		}
	}
}

// oracleScheme delivers every version to every caching node instantly and
// for free: the upper bound on freshness, not a real protocol.
type oracleScheme struct {
	rt *Runtime
}

var _ Scheme = (*oracleScheme)(nil)

// NewOracle returns the instantaneous-refresh upper bound.
func NewOracle() Scheme { return &oracleScheme{} }

// Name implements Scheme.
func (s *oracleScheme) Name() string { return "oracle" }

// Init implements Scheme.
func (s *oracleScheme) Init(rt *Runtime) error {
	s.rt = rt
	return nil
}

// OnGenerate implements Scheme.
func (s *oracleScheme) OnGenerate(it cache.Item, version int, now float64) {
	for _, cn := range s.rt.CachingNodes {
		s.rt.DeliverToCache(cn, cache.Copy{Item: it.ID, Version: version, GeneratedAt: now, ReceivedAt: now}, now)
	}
}

// OnContact implements Scheme (nothing to do; caches are always fresh).
func (s *oracleScheme) OnContact(*network.Contact) {}

// Schemes maps CLI names to scheme constructors, in the canonical
// reporting order.
func Schemes() []struct {
	Name string
	New  func() Scheme
} {
	return []struct {
		Name string
		New  func() Scheme
	}{
		{"norefresh", NewNoRefresh},
		{"direct", NewDirect},
		{"direct-rep", NewDirectReplicated},
		{"hierarchical-norep", NewHierarchicalNoRep},
		{"hierarchical", NewHierarchical},
		{"random-rep", NewRandomReplicated},
		{"adaptive", NewAdaptive},
		{"spray", func() Scheme { return NewSprayAndWait(0) }},
		{"epidemic", NewEpidemic},
		{"oracle", NewOracle},
	}
}

// SchemeByName returns a fresh scheme instance by its CLI name.
func SchemeByName(name string) (Scheme, error) {
	for _, s := range Schemes() {
		if s.Name == name {
			return s.New(), nil
		}
	}
	return nil, fmt.Errorf("core: unknown scheme %q", name)
}
