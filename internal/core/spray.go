package core

import (
	"sort"

	"freshcache/internal/cache"
	"freshcache/internal/network"
	"freshcache/internal/obs"
	"freshcache/internal/trace"
)

// sprayScheme is the classic DTN baseline adapted to refreshing: the
// source mints L logical copies of every new version and binary-sprays
// them (a holder with more than one token gives half to any node it meets
// that lacks the version); any token holder that meets a caching node
// hands the data over without spending a token. No contact-rate knowledge
// is used at all — the knowledge-free counterpart to the paper's
// analysis-driven replication.
type sprayScheme struct {
	rt *Runtime
	l  int

	// tokens[node][key] is the number of logical copies the node holds.
	tokens map[trace.NodeID]map[copyKey]int
	// meta[key] records the version's generation time and expiry.
	meta map[copyKey]sprayMeta
	// lin is the run's lineage (nil = off); spanOf[node][key] is the span
	// the node's tokens for the version arrived under, allocated only when
	// lineage is on.
	lin    *obs.Lineage
	spanOf map[trace.NodeID]map[copyKey]obs.SpanID
}

type sprayMeta struct {
	genAt  float64
	expire float64
}

var _ Scheme = (*sprayScheme)(nil)

// DefaultSprayCopies is the copy budget used when NewSprayAndWait is
// given a non-positive count.
const DefaultSprayCopies = 8

// NewSprayAndWait returns the spray-and-wait refresh baseline with the
// given per-version copy budget (<= 0 selects DefaultSprayCopies).
func NewSprayAndWait(copies int) Scheme {
	if copies <= 0 {
		copies = DefaultSprayCopies
	}
	return &sprayScheme{l: copies}
}

// Name implements Scheme.
func (s *sprayScheme) Name() string { return "spray" }

// Init implements Scheme.
func (s *sprayScheme) Init(rt *Runtime) error {
	s.rt = rt
	s.tokens = make(map[trace.NodeID]map[copyKey]int, rt.N)
	s.meta = make(map[copyKey]sprayMeta)
	s.lin = rt.Lin
	s.spanOf = nil
	if s.lin != nil {
		s.spanOf = make(map[trace.NodeID]map[copyKey]obs.SpanID, rt.N)
	}
	return nil
}

// tokenSpan returns the span the node's tokens for key arrived under.
func (s *sprayScheme) tokenSpan(node trace.NodeID, key copyKey) obs.SpanID {
	if s.spanOf == nil {
		return 0
	}
	return s.spanOf[node][key]
}

// setTokenSpan records the span backing the node's tokens for key.
func (s *sprayScheme) setTokenSpan(node trace.NodeID, key copyKey, id obs.SpanID) {
	if s.spanOf == nil {
		return
	}
	m := s.spanOf[node]
	if m == nil {
		m = make(map[copyKey]obs.SpanID)
		s.spanOf[node] = m
	}
	m[key] = id
}

// OnGenerate implements Scheme: the source mints L tokens and drops its
// tokens for the superseded version.
func (s *sprayScheme) OnGenerate(it cache.Item, version int, now float64) {
	key := copyKey{item: it.ID, version: version}
	s.meta[key] = sprayMeta{genAt: now, expire: now + it.Lifetime}
	src := s.tokens[it.Source]
	if src == nil {
		src = make(map[copyKey]int)
		s.tokens[it.Source] = src
	}
	delete(src, copyKey{item: it.ID, version: version - 1})
	src[key] = s.l
	s.setTokenSpan(it.Source, key, s.lin.Root(int32(it.ID), int32(version)))
}

// OnContact implements Scheme.
func (s *sprayScheme) OnContact(c *network.Contact) {
	s.expire(c.A, c.Time)
	s.expire(c.B, c.Time)
	s.act(c, c.A, c.B)
	s.act(c, c.B, c.A)
}

// act runs holder's spray logic toward peer.
func (s *sprayScheme) act(c *network.Contact, holder, peer trace.NodeID) {
	held := s.tokens[holder]
	if len(held) == 0 {
		return
	}
	keys := make([]copyKey, 0, len(held))
	for key := range held {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].item != keys[j].item {
			return keys[i].item < keys[j].item
		}
		return keys[i].version < keys[j].version
	})
	for _, key := range keys {
		m := s.meta[key]
		if s.rt.IsCachingNode(peer) {
			// Delivery: free of tokens, skipped if the peer already has it.
			if v, ok := s.rt.CachedVersion(peer, key.item); !ok || v < key.version {
				if !c.Send(holder, peer, "refresh") {
					return
				}
				cp := cache.Copy{Item: key.item, Version: key.version, GeneratedAt: m.genAt, ReceivedAt: c.Time}
				if s.rt.DeliverToCache(peer, cp, c.Time) {
					s.lin.Delivered(c.Time, s.tokenSpan(holder, key), int32(holder), int32(peer), int32(key.item), int32(key.version), c.Time-m.genAt)
				}
			}
			continue
		}
		// Binary spray toward a non-caching peer that lacks the version.
		count := held[key]
		if count <= 1 {
			continue
		}
		if s.tokens[peer][key] > 0 {
			continue
		}
		if !c.Send(holder, peer, "relay") {
			return
		}
		give := count / 2
		held[key] = count - give
		dst := s.tokens[peer]
		if dst == nil {
			dst = make(map[copyKey]int)
			s.tokens[peer] = dst
		}
		dst[key] = give
		if s.spanOf != nil {
			s.setTokenSpan(peer, key, s.lin.Handoff(c.Time, s.tokenSpan(holder, key), int32(holder), int32(peer), int32(key.item), int32(key.version)))
		}
	}
}

func (s *sprayScheme) expire(node trace.NodeID, now float64) {
	held := s.tokens[node]
	for key := range held {
		if m, ok := s.meta[key]; ok && now > m.expire {
			delete(held, key)
		}
	}
}
