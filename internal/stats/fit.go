package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by fitting routines when the sample is
// too small to estimate the requested parameter.
var ErrInsufficientData = errors.New("stats: insufficient data")

// ExpRateMLE estimates the rate of an exponential distribution from
// inter-event samples by maximum likelihood (1 / sample mean).
func ExpRateMLE(interTimes []float64) (float64, error) {
	if len(interTimes) == 0 {
		return 0, ErrInsufficientData
	}
	var sum float64
	for _, t := range interTimes {
		if t < 0 {
			return 0, errors.New("stats: negative inter-event time")
		}
		sum += t
	}
	if sum == 0 {
		return 0, errors.New("stats: zero total observation time")
	}
	return float64(len(interTimes)) / sum, nil
}

// RateFromCounts estimates a Poisson-process rate from an event count over
// an observation window. This is the estimator the protocol itself uses
// for pairwise contact rates: k contacts observed over window w gives
// lambda = k/w. A zero count gives rate zero.
func RateFromCounts(count int, window float64) (float64, error) {
	if window <= 0 {
		return 0, errors.New("stats: non-positive observation window")
	}
	if count < 0 {
		return 0, errors.New("stats: negative event count")
	}
	return float64(count) / window, nil
}

// ExpCDF is the CDF of an exponential distribution with the given rate:
// the probability an Exp(rate) variable is <= t. For rate <= 0 or t <= 0
// it returns 0 (a pair that never meets never delivers).
func ExpCDF(rate, t float64) float64 {
	if rate <= 0 || t <= 0 {
		return 0
	}
	return 1 - math.Exp(-rate*t)
}

// HypoExpCDF is the CDF of the sum of two independent exponential
// variables with rates l1 and l2 evaluated at t: the probability that a
// two-hop opportunistic path (source meets relay, relay meets destination)
// completes within t. It handles the l1 == l2 limit (Erlang-2) and returns
// 0 when either rate is non-positive.
//
// For l1 != l2:
//
//	P(X1+X2 <= t) = 1 - (l2*e^{-l1 t} - l1*e^{-l2 t}) / (l2 - l1)
//
// For l1 == l2 == l (Erlang-2):
//
//	P = 1 - e^{-l t} (1 + l t)
func HypoExpCDF(l1, l2, t float64) float64 {
	if l1 <= 0 || l2 <= 0 || t <= 0 {
		return 0
	}
	// Near-equal rates: use the Erlang-2 form to avoid catastrophic
	// cancellation in the general formula.
	if math.Abs(l1-l2) < 1e-9*math.Max(l1, l2) {
		l := (l1 + l2) / 2
		x := l * t
		// exp(-x) underflows to 0 well before x reaches 745; guard so the
		// 0 * (1+x) product cannot become 0 * Inf = NaN for enormous t.
		if x > 700 {
			return 1
		}
		return clampProb(1 - math.Exp(-x)*(1+x))
	}
	p := 1 - (l2*math.Exp(-l1*t)-l1*math.Exp(-l2*t))/(l2-l1)
	return clampProb(p)
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ComplementProduct returns 1 - prod(1 - p_i): the probability that at
// least one of a set of independent events with probabilities ps occurs.
// It is the combinator used by probabilistic replication to aggregate the
// delivery probabilities of independent relay paths.
func ComplementProduct(ps []float64) float64 {
	q := 1.0
	for _, p := range ps {
		q *= 1 - clampProb(p)
	}
	return clampProb(1 - q)
}

// ExpFitKS returns the Kolmogorov–Smirnov distance between the empirical
// distribution of the sample and the exponential distribution fitted to
// it by MLE: sup_x |F_emp(x) − (1 − e^{−λx})| with λ = 1/mean. Small
// values (≲0.1) mean the exponential contact model is a good description;
// real mobility traces typically show larger distances on their
// inter-contact times. Returns ErrInsufficientData for samples smaller
// than 2.
func ExpFitKS(sample []float64) (float64, error) {
	if len(sample) < 2 {
		return 0, ErrInsufficientData
	}
	rate, err := ExpRateMLE(sample)
	if err != nil {
		return 0, err
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	maxDist := 0.0
	for i, x := range sorted {
		model := ExpCDF(rate, x)
		// The empirical CDF jumps at x: check both sides of the step.
		lo := float64(i) / n
		hi := float64(i+1) / n
		if d := math.Abs(model - lo); d > maxDist {
			maxDist = d
		}
		if d := math.Abs(model - hi); d > maxDist {
			maxDist = d
		}
	}
	return maxDist, nil
}
