package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExpRateMLE(t *testing.T) {
	rng := NewRNG(10)
	const rate = 0.3
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = Exp(rng, rate)
	}
	got, err := ExpRateMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-rate) > 0.02*rate {
		t.Fatalf("MLE rate = %v, want ~%v", got, rate)
	}
}

func TestExpRateMLEErrors(t *testing.T) {
	if _, err := ExpRateMLE(nil); err == nil {
		t.Error("empty sample: want error")
	}
	if _, err := ExpRateMLE([]float64{1, -2}); err == nil {
		t.Error("negative sample: want error")
	}
	if _, err := ExpRateMLE([]float64{0, 0}); err == nil {
		t.Error("zero total time: want error")
	}
}

func TestRateFromCounts(t *testing.T) {
	got, err := RateFromCounts(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.1 {
		t.Fatalf("rate = %v, want 0.1", got)
	}
	if r, err := RateFromCounts(0, 100); err != nil || r != 0 {
		t.Fatalf("zero count: got %v, %v", r, err)
	}
	if _, err := RateFromCounts(1, 0); err == nil {
		t.Error("zero window: want error")
	}
	if _, err := RateFromCounts(-1, 10); err == nil {
		t.Error("negative count: want error")
	}
}

func TestExpCDFValues(t *testing.T) {
	if got := ExpCDF(1, math.Log(2)); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ExpCDF(1, ln2) = %v, want 0.5", got)
	}
	if got := ExpCDF(0, 5); got != 0 {
		t.Fatalf("zero rate: got %v, want 0", got)
	}
	if got := ExpCDF(1, 0); got != 0 {
		t.Fatalf("zero time: got %v, want 0", got)
	}
}

// Property: ExpCDF is a valid CDF — in [0,1] and monotone in t and rate.
func TestExpCDFProperties(t *testing.T) {
	f := func(rate, t1, t2 float64) bool {
		rate = 0.001 + math.Abs(rate)
		t1, t2 = math.Abs(t1), math.Abs(t2)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		p1, p2 := ExpCDF(rate, t1), ExpCDF(rate, t2)
		return p1 >= 0 && p2 <= 1 && p1 <= p2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHypoExpCDFAgainstMonteCarlo(t *testing.T) {
	rng := NewRNG(11)
	cases := []struct{ l1, l2, tt float64 }{
		{0.5, 0.5, 3},
		{0.2, 1.0, 5},
		{2.0, 0.1, 10},
		{1.0, 1.0000001, 2}, // near-equal rates hit the Erlang branch
	}
	for _, tc := range cases {
		const n = 200000
		hit := 0
		for i := 0; i < n; i++ {
			if Exp(rng, tc.l1)+Exp(rng, tc.l2) <= tc.tt {
				hit++
			}
		}
		mc := float64(hit) / n
		got := HypoExpCDF(tc.l1, tc.l2, tc.tt)
		if math.Abs(got-mc) > 0.01 {
			t.Errorf("HypoExpCDF(%v,%v,%v) = %v, Monte Carlo says %v", tc.l1, tc.l2, tc.tt, got, mc)
		}
	}
}

// Property: the two-hop delivery probability is a probability, is monotone
// in t, and is always below the one-hop probability of its faster leg
// (adding a hop cannot speed up delivery).
func TestHypoExpCDFProperties(t *testing.T) {
	f := func(a, b, t1, t2 float64) bool {
		l1 := 0.001 + math.Mod(math.Abs(a), 10)
		l2 := 0.001 + math.Mod(math.Abs(b), 10)
		t1, t2 = math.Abs(t1), math.Abs(t2)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		p1 := HypoExpCDF(l1, l2, t1)
		p2 := HypoExpCDF(l1, l2, t2)
		if p1 < 0 || p2 > 1 || p1 > p2+1e-9 {
			return false
		}
		// Two hops is never faster than either single hop.
		return p2 <= ExpCDF(l1, t2)+1e-9 && p2 <= ExpCDF(l2, t2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHypoExpCDFSymmetric(t *testing.T) {
	f := func(a, b, tt float64) bool {
		l1 := 0.001 + math.Mod(math.Abs(a), 10)
		l2 := 0.001 + math.Mod(math.Abs(b), 10)
		tt = math.Abs(tt)
		return math.Abs(HypoExpCDF(l1, l2, tt)-HypoExpCDF(l2, l1, tt)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComplementProduct(t *testing.T) {
	if got := ComplementProduct(nil); got != 0 {
		t.Fatalf("empty: got %v, want 0", got)
	}
	if got := ComplementProduct([]float64{0.5}); got != 0.5 {
		t.Fatalf("single: got %v, want 0.5", got)
	}
	if got := ComplementProduct([]float64{0.5, 0.5}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("two halves: got %v, want 0.75", got)
	}
	if got := ComplementProduct([]float64{1, 0}); got != 1 {
		t.Fatalf("certain event: got %v, want 1", got)
	}
}

// Property: ComplementProduct is monotone — adding another path never
// lowers the aggregate delivery probability.
func TestComplementProductMonotone(t *testing.T) {
	f := func(ps []float64, extra float64) bool {
		for i := range ps {
			ps[i] = math.Mod(math.Abs(ps[i]), 1)
		}
		extra = math.Mod(math.Abs(extra), 1)
		before := ComplementProduct(ps)
		after := ComplementProduct(append(ps, extra))
		return after >= before-1e-12 && after <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpFitKSOnExponentialData(t *testing.T) {
	rng := NewRNG(21)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = Exp(rng, 0.05)
	}
	d, err := ExpFitKS(xs)
	if err != nil {
		t.Fatal(err)
	}
	// True exponential data: KS distance should be tiny.
	if d > 0.03 {
		t.Fatalf("KS distance on exponential data = %v", d)
	}
}

func TestExpFitKSOnNonExponentialData(t *testing.T) {
	rng := NewRNG(22)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = Pareto(rng, 1, 1.2) // heavy-tailed: clearly not exponential
	}
	d, err := ExpFitKS(xs)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.1 {
		t.Fatalf("KS distance on Pareto data = %v; should be large", d)
	}
}

func TestExpFitKSErrors(t *testing.T) {
	if _, err := ExpFitKS(nil); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := ExpFitKS([]float64{1}); err == nil {
		t.Fatal("singleton accepted")
	}
	if _, err := ExpFitKS([]float64{1, -1}); err == nil {
		t.Fatal("negative sample accepted")
	}
}

// Property: the KS distance is in [0, 1].
func TestExpFitKSRange(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := NewRNG(seed)
		n := 2 + int(nRaw%100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = Exp(rng, 1) + Pareto(rng, 0.1, 2)
		}
		d, err := ExpFitKS(xs)
		if err != nil {
			return false
		}
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
