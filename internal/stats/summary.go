package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes descriptive statistics for the sample. An empty
// sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))

	var ss float64
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(ss / float64(len(sorted)-1))
	}

	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Std:    std,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Quantile(sorted, 0.5),
		P90:    Quantile(sorted, 0.9),
		P99:    Quantile(sorted, 0.99),
	}
}

// String renders the summary in a compact single-line form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p90=%.4g max=%.4g",
		s.Count, s.Mean, s.Std, s.Min, s.Median, s.P90, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already-sorted
// sample using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// CI95 returns the half-width of the 95% confidence interval for the mean
// of the sample under a normal approximation (1.96 * std / sqrt(n)).
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := Summarize(xs)
	return 1.96 * s.Std / math.Sqrt(float64(s.Count))
}

// ECDF returns an empirical CDF evaluator for the sample. The returned
// function reports the fraction of observations <= x.
func ECDF(xs []float64) func(x float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return func(x float64) float64 {
		if len(sorted) == 0 {
			return math.NaN()
		}
		// First index with sorted[i] > x.
		i := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
		return float64(i) / float64(len(sorted))
	}
}

// CDFPoints evaluates the empirical CDF of the sample at the given probe
// points, returning one fraction per probe. Used to render delay-CDF
// figures.
func CDFPoints(xs, probes []float64) []float64 {
	cdf := ECDF(xs)
	out := make([]float64, len(probes))
	for i, p := range probes {
		out[i] = cdf(p)
	}
	return out
}

// Gini returns the Gini coefficient of a non-negative sample: 0 when all
// values are equal, approaching 1 as one value dominates. Used to report
// how evenly the refreshing load spreads over nodes. Empty or all-zero
// samples return 0.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		if x < 0 {
			x = 0
		}
		total += x
		cum += float64(i+1) * x
	}
	if total == 0 {
		return 0
	}
	n := float64(len(sorted))
	return (2*cum)/(n*total) - (n+1)/n
}
