package stats

import (
	"math"
	"testing"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	a := Derive(7, "mobility")
	b := Derive(7, "workload")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams look correlated: %d/100 identical draws", same)
	}
}

func TestDeriveStableAcrossCalls(t *testing.T) {
	x := Derive(7, "mobility").Float64()
	y := Derive(7, "mobility").Float64()
	if x != y {
		t.Fatalf("Derive not stable: %v != %v", x, y)
	}
}

func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed(42, "E2", "infocom-like", "0", "direct")
	b := DeriveSeed(42, "E2", "infocom-like", "0", "direct")
	if a != b {
		t.Fatalf("DeriveSeed not stable: %v != %v", a, b)
	}
}

func TestDeriveSeedDistinguishesCells(t *testing.T) {
	seen := map[int64][]string{}
	cells := [][]string{
		{"E2", "infocom-like", "0", "direct"},
		{"E2", "infocom-like", "1", "direct"},
		{"E2", "infocom-like", "0", "epidemic"},
		{"E2", "reality-like", "0", "direct"},
		{"E3", "infocom-like", "0", "direct"},
	}
	for _, labels := range cells {
		s := DeriveSeed(42, labels...)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %v and %v", prev, labels)
		}
		seen[s] = labels
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Fatal("base seed ignored")
	}
}

func TestDeriveSeedLabelBoundaries(t *testing.T) {
	if DeriveSeed(0, "ab", "c") == DeriveSeed(0, "a", "bc") {
		t.Fatal("label boundaries not separated")
	}
}

func TestExpMean(t *testing.T) {
	rng := NewRNG(1)
	const rate = 2.5
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := Exp(rng, rate)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	mean := sum / n
	want := 1 / rate
	if math.Abs(mean-want) > 0.01*want {
		t.Fatalf("exp mean = %v, want ~%v", mean, want)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	Exp(NewRNG(1), 0)
}

func TestPoissonMean(t *testing.T) {
	rng := NewRNG(2)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(Poisson(rng, mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.02 {
			t.Errorf("poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := Poisson(NewRNG(3), 0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := Poisson(NewRNG(3), -1); got != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", got)
	}
}

func TestGammaMoments(t *testing.T) {
	rng := NewRNG(4)
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 2}, {1, 1}, {3, 0.5}, {9, 4},
	} {
		const n = 100000
		var sum, ss float64
		for i := 0; i < n; i++ {
			v := Gamma(rng, tc.shape, tc.scale)
			if v < 0 {
				t.Fatalf("negative gamma draw")
			}
			sum += v
			ss += v * v
		}
		mean := sum / n
		wantMean := tc.shape * tc.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean {
			t.Errorf("gamma(%v,%v) mean = %v, want ~%v", tc.shape, tc.scale, mean, wantMean)
		}
		variance := ss/n - mean*mean
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(variance-wantVar) > 0.1*wantVar {
			t.Errorf("gamma(%v,%v) var = %v, want ~%v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestParetoSupport(t *testing.T) {
	rng := NewRNG(5)
	const xm, alpha = 2.0, 1.5
	for i := 0; i < 10000; i++ {
		if v := Pareto(rng, xm, alpha); v < xm {
			t.Fatalf("pareto draw %v below minimum %v", v, xm)
		}
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	rng := NewRNG(6)
	const lo, hi, alpha = 1.0, 100.0, 0.8
	for i := 0; i < 10000; i++ {
		v := BoundedPareto(rng, lo, hi, alpha)
		if v < lo || v > hi {
			t.Fatalf("bounded pareto draw %v outside [%v,%v]", v, lo, hi)
		}
	}
}

func TestZipfRange(t *testing.T) {
	rng := NewRNG(7)
	draw := Zipf(rng, 1.2, 10)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		r := draw()
		if r < 0 || r >= 10 {
			t.Fatalf("zipf rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must dominate rank 9 clearly.
	if counts[0] <= counts[9]*2 {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[9]=%d", counts[0], counts[9])
	}
}

func TestZipfClampsExponent(t *testing.T) {
	rng := NewRNG(8)
	draw := Zipf(rng, 0.5, 5) // exponent in (0,1] clamps, must not panic
	for i := 0; i < 100; i++ {
		if r := draw(); r < 0 || r >= 5 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestZipfPanicsOnNonPositiveExponent(t *testing.T) {
	for _, s := range []float64{0, -1} {
		s := s
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Zipf(s=%v) did not panic", s)
				}
			}()
			Zipf(NewRNG(8), s, 5)
		}()
	}
}

func TestUniformRange(t *testing.T) {
	rng := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := Uniform(rng, -3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("uniform draw %v outside [-3,5)", v)
		}
	}
}
