package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 {
		t.Fatalf("empty summary count = %d", s.Count)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1. / 3., 20},
	}
	for _, tc := range cases {
		if got := Quantile(sorted, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Fatalf("mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := NewRNG(12)
	small := make([]float64, 100)
	large := make([]float64, 10000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	if CI95(large) >= CI95(small) {
		t.Fatalf("CI did not shrink: large=%v small=%v", CI95(large), CI95(small))
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("singleton CI should be 0")
	}
}

func TestECDF(t *testing.T) {
	cdf := ECDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := cdf(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ECDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	got := CDFPoints([]float64{1, 2, 3, 4}, []float64{0, 2, 5})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CDFPoints = %v, want %v", got, want)
		}
	}
}

// Property: ECDF is monotone non-decreasing and bounded in [0,1].
func TestECDFProperties(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		cdf := ECDF(xs)
		pa, pb := cdf(a), cdf(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: summary ordering invariants hold for any finite sample.
func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Keep magnitudes bounded so the running sum cannot overflow;
			// the invariants under test are order statistics, not extreme-
			// value arithmetic.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e150 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGini(t *testing.T) {
	if got := Gini(nil); got != 0 {
		t.Fatalf("empty gini = %v", got)
	}
	if got := Gini([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("all-zero gini = %v", got)
	}
	if got := Gini([]float64{5, 5, 5, 5}); math.Abs(got) > 1e-12 {
		t.Fatalf("equal gini = %v, want 0", got)
	}
	// One node does everything out of n: Gini = (n-1)/n.
	if got := Gini([]float64{0, 0, 0, 10}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("concentrated gini = %v, want 0.75", got)
	}
	// More skew = higher Gini.
	even := Gini([]float64{4, 5, 6})
	skew := Gini([]float64{1, 2, 12})
	if even >= skew {
		t.Fatalf("gini ordering: %v >= %v", even, skew)
	}
	// Scale invariance.
	a := Gini([]float64{1, 2, 3})
	b := Gini([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("gini not scale invariant: %v vs %v", a, b)
	}
	// Negative values clamp to zero rather than corrupting the result.
	if got := Gini([]float64{-5, 10}); got < 0 || got > 1 {
		t.Fatalf("gini with negatives = %v", got)
	}
}
