// Package stats provides the small statistics toolkit the simulator is
// built on: random variate generation for the distributions used by the
// mobility models and workloads, maximum-likelihood fitting for contact
// rates, and descriptive summaries for experiment reporting.
//
// Everything is deterministic given a seeded *rand.Rand; the package never
// touches global randomness or the wall clock.
package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// NewRNG returns a deterministic random source for the given seed.
// Independent simulation components should derive their own streams via
// Derive so that changing one component's draw count does not perturb the
// others.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Derive returns a new independent RNG stream keyed by the parent seed and
// a stream label. The label is hashed (FNV-1a) into the child seed so that
// streams are stable across runs and uncorrelated in practice.
func Derive(seed int64, label string) *rand.Rand {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	h ^= uint64(seed)
	h *= prime64
	return rand.New(rand.NewSource(int64(h)))
}

// DeriveSeed hashes a base seed and a sequence of labels (FNV-1a, with a
// separator folded in after each label so ("ab","c") and ("a","bc") map to
// different seeds) into a child seed. Sweep runners use it to give every
// (experiment, preset, point, scheme, replicate) cell its own stable RNG
// stream, so results do not depend on execution order.
func DeriveSeed(seed int64, labels ...string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, label := range labels {
		for i := 0; i < len(label); i++ {
			h ^= uint64(label[i])
			h *= prime64
		}
		h ^= 0x1f // unit separator: label boundaries matter
		h *= prime64
	}
	h ^= uint64(seed)
	h *= prime64
	return int64(h)
}

// Exp draws from an exponential distribution with the given rate
// (mean 1/rate). It panics if rate <= 0 since that is a programming error,
// not a data error.
func Exp(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("stats: non-positive exponential rate %v", rate))
	}
	return rng.ExpFloat64() / rate
}

// Poisson draws from a Poisson distribution with the given mean using
// Knuth's multiplication method for small means and the PTRS transformed
// rejection method is unnecessary at our scales, so for large means we use
// a normal approximation with continuity correction.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation, adequate for mean >= 30.
	v := rng.NormFloat64()*math.Sqrt(mean) + mean + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Binomial draws the number of successes in n independent trials with
// success probability p. Small means use exact geometric-gap counting
// (skip distances between successes are geometric, so the cost is
// O(successes), not O(n)); large means use the same normal-approximation
// policy as Poisson, with continuity correction and clamping to [0, n].
func Binomial(rng *rand.Rand, n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean < 30 {
		// Count successes by jumping geometric gaps: the index of the next
		// success after position i is i + 1 + Geom(p).
		logq := math.Log1p(-p)
		var k, i int64
		for {
			// Geometric skip: floor(log(U)/log(1-p)) failures before the
			// next success. Guard the conversion: for U near 1 the gap is
			// effectively infinite and would overflow int64.
			gap := math.Log(1-rng.Float64()) / logq
			if gap >= float64(n) {
				return k
			}
			i += 1 + int64(gap)
			if i > n {
				return k
			}
			k++
		}
	}
	sd := math.Sqrt(mean * (1 - p))
	v := rng.NormFloat64()*sd + mean + 0.5
	if v < 0 {
		return 0
	}
	if v > float64(n) {
		return n
	}
	return int64(v)
}

// Gamma draws from a gamma distribution with the given shape and scale
// using the Marsaglia–Tsang method (2000). shape and scale must be
// positive.
func Gamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("stats: non-positive gamma parameters shape=%v scale=%v", shape, scale))
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := rng.Float64()
		return Gamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Pareto draws from a Pareto (type I) distribution with the given minimum
// value xm and tail index alpha. Heavier tails for smaller alpha.
func Pareto(rng *rand.Rand, xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("stats: non-positive pareto parameters xm=%v alpha=%v", xm, alpha))
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto draws from a Pareto distribution truncated to [lo, hi] by
// inverse-transform sampling of the truncated CDF. Used for power-law
// inter-contact times observed in real mobility traces.
func BoundedPareto(rng *rand.Rand, lo, hi, alpha float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic(fmt.Sprintf("stats: invalid bounded pareto parameters lo=%v hi=%v alpha=%v", lo, hi, alpha))
	}
	u := rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Zipf samples ranks in [0, n) with Zipf exponent s > 0 (rank 0 most
// popular). It wraps math/rand's rejection-inversion sampler, which
// requires s > 1: exponents in (0, 1] are clamped to 1.0001, the
// near-uniform boundary case workloads may legitimately request. A
// non-positive exponent is a programming error and panics, consistent
// with BoundedPareto's parameter validation.
func Zipf(rng *rand.Rand, s float64, n int) func() int {
	if n <= 0 {
		panic(fmt.Sprintf("stats: non-positive zipf support %d", n))
	}
	if s <= 0 {
		panic(fmt.Sprintf("stats: non-positive zipf exponent %v", s))
	}
	if s <= 1 {
		s = 1.0001
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

// Uniform draws uniformly from [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// Perm returns a random permutation of [0, n) from the given stream.
func Perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}
