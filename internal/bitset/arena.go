package bitset

// Arena allocates Sets from reusable slabs so a worker running many
// simulations back-to-back pays for set storage once instead of once per
// run. New carves set headers and word storage out of block allocations;
// Reset rewinds the arena wholesale so the next run reuses the same
// blocks. Sets handed out before a Reset must not be used afterwards —
// their storage is recycled.
//
// An Arena is not safe for concurrent use; sweep workers each own one.
type Arena struct {
	setBlocks [][]Set
	setBlock  int
	setOff    int

	wordBlocks [][]uint64
	wordBlock  int
	wordOff    int
}

const (
	arenaSetBlock  = 256  // Set headers per header slab
	arenaWordBlock = 4096 // uint64 words per word slab
)

// New returns an empty set over the universe [0, n), carved from the
// arena's slabs. The set behaves exactly like bitset.New's but its
// storage is reclaimed by the next Arena.Reset.
func (a *Arena) New(n int) *Set {
	if n < 0 {
		n = 0
	}
	s := a.nextSet()
	*s = Set{words: a.words((n + wordBits - 1) / wordBits), n: n}
	return s
}

// Reset rewinds the arena, invalidating every Set it has handed out and
// making all slab storage available for reuse.
func (a *Arena) Reset() {
	a.setBlock, a.setOff = 0, 0
	a.wordBlock, a.wordOff = 0, 0
}

func (a *Arena) nextSet() *Set {
	for a.setBlock < len(a.setBlocks) && a.setOff >= len(a.setBlocks[a.setBlock]) {
		a.setBlock++
		a.setOff = 0
	}
	if a.setBlock >= len(a.setBlocks) {
		a.setBlocks = append(a.setBlocks, make([]Set, arenaSetBlock))
	}
	s := &a.setBlocks[a.setBlock][a.setOff]
	a.setOff++
	return s
}

// words carves a zeroed k-word slice with capacity clamped to k, so Sets
// cannot grow into a neighbour's storage.
func (a *Arena) words(k int) []uint64 {
	if k == 0 {
		return nil
	}
	block := arenaWordBlock
	if k > block {
		block = k // oversized universe gets a dedicated block
	}
	for a.wordBlock < len(a.wordBlocks) && a.wordOff+k > len(a.wordBlocks[a.wordBlock]) {
		a.wordBlock++
		a.wordOff = 0
	}
	if a.wordBlock >= len(a.wordBlocks) {
		a.wordBlocks = append(a.wordBlocks, make([]uint64, block))
	}
	w := a.wordBlocks[a.wordBlock][a.wordOff : a.wordOff+k : a.wordOff+k]
	a.wordOff += k
	for i := range w {
		w[i] = 0
	}
	return w
}
