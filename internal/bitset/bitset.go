// Package bitset implements the small fixed-universe bit sets the
// simulation hot path runs on. Node IDs are dense integers in [0, N), so
// a destination set or relay set is a handful of 64-bit words instead of
// a Go map — no per-element allocation, no hash, and iteration is always
// in ascending element order, which is exactly the deterministic order
// the byte-identity guarantees of the experiment suite require.
package bitset

import "math/bits"

const wordBits = 64

// Set is a bit set over the universe [0, n) fixed at construction. The
// zero value is an empty set over an empty universe; create with New.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Universe returns the universe size the set was created with.
func (s *Set) Universe() int { return s.n }

// Add inserts i into the set. Out-of-universe indices panic, matching the
// slice-indexing semantics of the dense state the set replaces.
func (s *Set) Add(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set (a no-op when absent).
func (s *Set) Remove(i int) {
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is in the set. Negative or out-of-universe
// indices report false.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Len returns the number of elements (population count).
func (s *Set) Len() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes every element, keeping the universe.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(out.words, s.words)
	return out
}

// Or adds every element of t to s. The universes must match in word
// count; s keeps its own universe size.
func (s *Set) Or(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectInto sets dst = s ∩ t and returns dst's new length. All three
// sets must share a universe. Using a caller-owned scratch set keeps the
// per-contact relay hand-off path allocation-free.
func (s *Set) IntersectInto(t, dst *Set) int {
	total := 0
	for i := range dst.words {
		w := s.words[i] & t.words[i]
		dst.words[i] = w
		total += bits.OnesCount64(w)
	}
	return total
}

// ForEach calls fn for every element in ascending order. fn returning
// false stops the iteration. Elements added or removed by fn during the
// walk are observed only if they live in words not yet visited.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Next returns the smallest element >= from, or -1 when none exists. It
// enables allocation-free ascending iteration that observes concurrent
// mutation: for i := s.Next(0); i >= 0; i = s.Next(i + 1) { ... }.
func (s *Set) Next(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= s.n {
		return -1
	}
	wi := from / wordBits
	w := s.words[wi] >> (uint(from) % wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}
