package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if s.Contains(-1) || s.Contains(130) {
		t.Fatal("out-of-universe Contains must be false")
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left elements")
	}
}

func TestAddOutOfUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(1000) on universe 10 did not panic")
		}
	}()
	New(10).Add(1000)
}

func TestIterationAscending(t *testing.T) {
	s := New(200)
	want := []int{3, 7, 63, 64, 100, 150, 199}
	// Insert in shuffled order; iteration must still be ascending.
	for _, i := range []int{150, 3, 199, 64, 7, 100, 63} {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("ForEach yielded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach yielded %v, want %v", got, want)
		}
	}
	got = got[:0]
	for i := s.Next(0); i >= 0; i = s.Next(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("Next walk yielded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Next walk yielded %v, want %v", got, want)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(64)
	s.Add(1)
	s.Add(2)
	s.Add(3)
	seen := 0
	s.ForEach(func(int) bool { seen++; return seen < 2 })
	if seen != 2 {
		t.Fatalf("early stop saw %d elements, want 2", seen)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(70)
	s.Add(5)
	s.Add(69)
	c := s.Clone()
	c.Remove(5)
	if !s.Contains(5) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Contains(69) || c.Contains(5) {
		t.Fatal("Clone content wrong")
	}
}

func TestOrAndIntersectInto(t *testing.T) {
	a, b, dst := New(100), New(100), New(100)
	a.Add(1)
	a.Add(50)
	a.Add(99)
	b.Add(50)
	b.Add(2)
	if n := a.IntersectInto(b, dst); n != 1 {
		t.Fatalf("IntersectInto len = %d, want 1", n)
	}
	if !dst.Contains(50) || dst.Contains(1) || dst.Contains(2) {
		t.Fatal("IntersectInto content wrong")
	}
	a.Or(b)
	for _, i := range []int{1, 2, 50, 99} {
		if !a.Contains(i) {
			t.Fatalf("Or missing %d", i)
		}
	}
	if a.Len() != 4 {
		t.Fatalf("Or Len = %d, want 4", a.Len())
	}
}

func TestAgainstMapModel(t *testing.T) {
	const n = 257
	rng := rand.New(rand.NewSource(1))
	s := New(n)
	model := map[int]bool{}
	for step := 0; step < 5000; step++ {
		i := rng.Intn(n)
		if rng.Intn(2) == 0 {
			s.Add(i)
			model[i] = true
		} else {
			s.Remove(i)
			delete(model, i)
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", s.Len(), len(model))
	}
	for i := 0; i < n; i++ {
		if s.Contains(i) != model[i] {
			t.Fatalf("Contains(%d) = %v, model %v", i, s.Contains(i), model[i])
		}
	}
	prev := -1
	s.ForEach(func(i int) bool {
		if i <= prev {
			t.Fatalf("iteration not ascending: %d after %d", i, prev)
		}
		prev = i
		return true
	})
}

func TestNextEdgeCases(t *testing.T) {
	s := New(64)
	if s.Next(0) != -1 {
		t.Fatal("Next on empty set")
	}
	s.Add(0)
	if s.Next(-5) != 0 {
		t.Fatal("Next(-5) should clamp to 0")
	}
	if s.Next(1) != -1 {
		t.Fatal("Next past last element")
	}
	if s.Next(64) != -1 || s.Next(1000) != -1 {
		t.Fatal("Next past universe")
	}
}
