package mobility

import (
	"fmt"

	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// Phases concatenates generators in time: segment i's contacts occupy
// [sum(d_0..d_{i-1}), sum(d_0..d_i)). It models regime change — e.g. a
// community structure that reshuffles halfway through the observation —
// which is what makes periodic hierarchy rebuilding (core.Config.
// RebuildInterval) earn its keep: rates estimated in one regime go stale
// in the next.
type Phases struct {
	TraceName string
	Segments  []Segment
}

// Segment is one phase: the generator's own Duration defines the segment
// length.
type Segment struct {
	Gen Generator
}

// Name implements Generator.
func (p *Phases) Name() string { return p.TraceName }

// Generate implements Generator: each segment is generated with its own
// derived seed and shifted into place. All segments must agree on the
// node count.
func (p *Phases) Generate(seed int64) (*trace.Trace, error) {
	if len(p.Segments) == 0 {
		return nil, fmt.Errorf("mobility: phases %q has no segments", p.TraceName)
	}
	out := &trace.Trace{Name: p.TraceName}
	offset := 0.0
	for i, seg := range p.Segments {
		if seg.Gen == nil {
			return nil, fmt.Errorf("mobility: phases %q segment %d has nil generator", p.TraceName, i)
		}
		segSeed := stats.Derive(seed, fmt.Sprintf("mobility/phases/%s/%d", p.TraceName, i)).Int63()
		tr, err := seg.Gen.Generate(segSeed)
		if err != nil {
			return nil, fmt.Errorf("mobility: phases segment %d: %w", i, err)
		}
		if i == 0 {
			out.N = tr.N
		} else if tr.N != out.N {
			return nil, fmt.Errorf("mobility: phases segment %d has %d nodes, want %d", i, tr.N, out.N)
		}
		for _, c := range tr.Contacts {
			c.Start += offset
			c.End += offset
			out.Contacts = append(out.Contacts, c)
		}
		offset += tr.Duration
	}
	out.Duration = offset
	out.Normalize()
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: phases produced invalid trace: %w", err)
	}
	return out, nil
}

// DriftingCommunity is the standard drift scenario of the adaptation
// experiments: the same community model generated twice with different
// (derived) seeds back to back, so community membership, hubs and pair
// rates reshuffle at the midpoint while aggregate statistics stay
// comparable.
func DriftingCommunity(n int, halfDuration float64) Generator {
	half := func(name string) Generator {
		return &Community{
			TraceName: name, N: n, Duration: halfDuration, Communities: 4,
			IntraRate: 8.0 / Day, InterRate: 1.0 / Day, RateShape: 0.8,
			InterPairFraction: 0.7, HubFraction: 0.1, HubBoost: 3, MeanContactDur: 180,
		}
	}
	return &Phases{
		TraceName: "drifting-community",
		Segments: []Segment{
			{Gen: half("drift-a")},
			{Gen: half("drift-b")},
		},
	}
}
