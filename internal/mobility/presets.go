package mobility

import (
	"fmt"

	"freshcache/internal/trace"
)

// Day and Hour are the time units used by preset parameters, in seconds.
const (
	Hour = 3600.0
	Day  = 24 * Hour
)

// Diurnal wraps a generator and thins out contacts that start during the
// nightly quiet window [NightStart, NightEnd) of each day, reproducing the
// strong day/night cycle of conference and campus traces. Thinning a
// Poisson process keeps it Poisson, so the analytical model still applies
// to the day hours.
type Diurnal struct {
	Gen        Generator
	NightStart float64 // offset into each day (s)
	NightEnd   float64 // offset into each day (s); must exceed NightStart
}

// Name implements Generator.
func (d *Diurnal) Name() string { return d.Gen.Name() }

// Generate implements Generator.
func (d *Diurnal) Generate(seed int64) (*trace.Trace, error) {
	if d.NightEnd <= d.NightStart || d.NightEnd-d.NightStart >= Day {
		return nil, fmt.Errorf("mobility: bad night window [%v,%v)", d.NightStart, d.NightEnd)
	}
	t, err := d.Gen.Generate(seed)
	if err != nil {
		return nil, err
	}
	kept := t.Contacts[:0]
	for _, c := range t.Contacts {
		tod := c.Start - float64(int(c.Start/Day))*Day
		if tod >= d.NightStart && tod < d.NightEnd {
			continue
		}
		kept = append(kept, c)
	}
	t.Contacts = kept
	return t, nil
}

// RealityLike returns the synthetic stand-in for the MIT Reality Mining
// Bluetooth trace: 97 nodes with pronounced community structure (research
// groups), a small set of highly social hubs, sparse cross-community
// contacts, and multi-hour inter-contact times. The real trace spans ~9
// months; we generate 30 days, which the paper-family methodology treats
// as sufficient once rates have converged (the warmup split handles
// estimator convergence).
func RealityLike() Generator {
	return &Diurnal{
		Gen: &Community{
			TraceName:         "reality-like",
			N:                 97,
			Duration:          30 * Day,
			Communities:       6,
			IntraRate:         5.0 / Day,
			InterRate:         0.4 / Day,
			RateShape:         0.6,
			InterPairFraction: 0.45,
			HubFraction:       0.08,
			HubBoost:          3.0,
			MeanContactDur:    5 * 60,
		},
		NightStart: 0,
		NightEnd:   7 * Hour,
	}
}

// InfocomLike returns the synthetic stand-in for the Haggle Infocom'06
// conference trace: 78 mobile nodes over 4 days, dense daytime contacts
// (session rooms mix most attendees), shorter contact durations, and a
// hard day/night cycle.
func InfocomLike() Generator {
	return &Diurnal{
		Gen: &Community{
			TraceName:         "infocom-like",
			N:                 78,
			Duration:          4 * Day,
			Communities:       4,
			IntraRate:         16.0 / Day,
			InterRate:         5.0 / Day,
			RateShape:         0.8,
			InterPairFraction: 0.9,
			HubFraction:       0.1,
			HubBoost:          2.5,
			MeanContactDur:    2 * 60,
		},
		NightStart: 0,
		NightEnd:   8 * Hour,
	}
}

// Presets maps the preset names accepted by the CLI tools to their
// constructors.
func Presets() map[string]func() Generator {
	return map[string]func() Generator{
		"reality-like": RealityLike,
		"infocom-like": InfocomLike,
	}
}

// Preset returns the named preset generator or an error listing the valid
// names.
func Preset(name string) (Generator, error) {
	ctor, ok := Presets()[name]
	if !ok {
		return nil, fmt.Errorf("mobility: unknown preset %q (have reality-like, infocom-like)", name)
	}
	return ctor(), nil
}
