package mobility

import (
	"math"
	"testing"

	"freshcache/internal/stats"
)

func TestHeterogeneousExpGenerates(t *testing.T) {
	g := &HeterogeneousExp{
		TraceName:      "hx",
		N:              20,
		Duration:       10 * Day,
		MeanRate:       2.0 / Day,
		RateShape:      0.7,
		PairFraction:   0.8,
		MeanContactDur: 120,
	}
	tr, err := g.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.N != 20 || tr.Name != "hx" {
		t.Fatalf("trace header: %+v", tr)
	}
	s := tr.ComputeStats()
	// ~0.8 of pairs meet at mean rate 2/day over 10 days: expect roughly
	// 0.8 * 190 * 20 = ~3000 contacts; accept a broad band.
	if s.Contacts < 1000 || s.Contacts > 9000 {
		t.Fatalf("contact count %d implausible", s.Contacts)
	}
	if s.PairCoverage < 0.5 || s.PairCoverage > 0.95 {
		t.Fatalf("pair coverage %v implausible for PairFraction=0.8", s.PairCoverage)
	}
}

func TestHeterogeneousExpDeterministic(t *testing.T) {
	g := &HeterogeneousExp{TraceName: "hx", N: 10, Duration: Day, MeanRate: 5.0 / Day, RateShape: 1, PairFraction: 1, MeanContactDur: 60}
	a, err := g.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs", i)
		}
	}
	c, err := g.Generate(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Contacts) == len(a.Contacts) {
		same := true
		for i := range c.Contacts {
			if c.Contacts[i] != a.Contacts[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestHeterogeneousExpMeanRateCalibration(t *testing.T) {
	// With shape=1 (no heterogeneity beyond exponential) and all pairs
	// meeting, the realized mean pair rate should track MeanRate.
	g := &HeterogeneousExp{TraceName: "cal", N: 30, Duration: 30 * Day, MeanRate: 3.0 / Day, RateShape: 1, PairFraction: 1, MeanContactDur: 60}
	tr, err := g.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.ComputeStats()
	want := 3.0 / Day
	if math.Abs(s.MeanPairRate-want) > 0.25*want {
		t.Fatalf("mean pair rate = %v, want ~%v", s.MeanPairRate, want)
	}
}

func TestHeterogeneousExpValidation(t *testing.T) {
	bad := []*HeterogeneousExp{
		{N: 1, Duration: 1, MeanRate: 1, RateShape: 1, PairFraction: 1, MeanContactDur: 1},
		{N: 5, Duration: 0, MeanRate: 1, RateShape: 1, PairFraction: 1, MeanContactDur: 1},
		{N: 5, Duration: 1, MeanRate: 0, RateShape: 1, PairFraction: 1, MeanContactDur: 1},
		{N: 5, Duration: 1, MeanRate: 1, RateShape: 0, PairFraction: 1, MeanContactDur: 1},
		{N: 5, Duration: 1, MeanRate: 1, RateShape: 1, PairFraction: 0, MeanContactDur: 1},
		{N: 5, Duration: 1, MeanRate: 1, RateShape: 1, PairFraction: 1.5, MeanContactDur: 1},
		{N: 5, Duration: 1, MeanRate: 1, RateShape: 1, PairFraction: 1, MeanContactDur: 0},
	}
	for i, g := range bad {
		if _, err := g.Generate(1); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestCommunityStructure(t *testing.T) {
	g := &Community{
		TraceName:         "comm",
		N:                 40,
		Duration:          20 * Day,
		Communities:       4,
		IntraRate:         6.0 / Day,
		InterRate:         0.3 / Day,
		RateShape:         0.8,
		InterPairFraction: 0.5,
		HubFraction:       0.1,
		HubBoost:          3,
		MeanContactDur:    100,
	}
	tr, err := g.Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-node contact counts must be heavily skewed (hubs).
	counts := make([]float64, tr.N)
	for _, c := range tr.Contacts {
		counts[c.A]++
		counts[c.B]++
	}
	s := stats.Summarize(counts)
	if s.Max < 2*s.Median {
		t.Fatalf("no hub skew: max=%v median=%v", s.Max, s.Median)
	}
}

func TestCommunityValidation(t *testing.T) {
	base := func() *Community {
		return &Community{N: 10, Duration: Day, Communities: 2, IntraRate: 1.0 / Day,
			InterRate: 0.1 / Day, RateShape: 1, InterPairFraction: 0.5,
			HubFraction: 0.1, HubBoost: 2, MeanContactDur: 60}
	}
	mutations := []func(*Community){
		func(g *Community) { g.N = 1 },
		func(g *Community) { g.Duration = 0 },
		func(g *Community) { g.Communities = 0 },
		func(g *Community) { g.Communities = 11 },
		func(g *Community) { g.IntraRate = 0 },
		func(g *Community) { g.InterRate = -1 },
		func(g *Community) { g.RateShape = 0 },
		func(g *Community) { g.InterPairFraction = 2 },
		func(g *Community) { g.HubFraction = 2 },
		func(g *Community) { g.HubBoost = 0.5 },
		func(g *Community) { g.MeanContactDur = 0 },
	}
	for i, mut := range mutations {
		g := base()
		mut(g)
		if _, err := g.Generate(1); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRandomWaypointGenerates(t *testing.T) {
	g := &RandomWaypoint{
		TraceName: "rwp",
		N:         15,
		Duration:  2 * Hour,
		Field:     500,
		Range:     50,
		SpeedMin:  1,
		SpeedMax:  3,
		PauseMean: 30,
		Step:      1,
	}
	tr, err := g.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Contacts) == 0 {
		t.Fatal("RWP on a 500m field with 50m range produced no contacts")
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	g := &RandomWaypoint{N: 5, Duration: 10, Field: 100, Range: 10, SpeedMin: 0, SpeedMax: 2, Step: 1}
	if _, err := g.Generate(1); err == nil {
		t.Fatal("zero min speed accepted")
	}
	g2 := &RandomWaypoint{N: 5, Duration: 10, Field: 100, Range: 10, SpeedMin: 3, SpeedMax: 2, Step: 1}
	if _, err := g2.Generate(1); err == nil {
		t.Fatal("inverted speed range accepted")
	}
}

func TestDiurnalRemovesNightContacts(t *testing.T) {
	g := &Diurnal{
		Gen: &HeterogeneousExp{TraceName: "d", N: 20, Duration: 5 * Day,
			MeanRate: 10.0 / Day, RateShape: 1, PairFraction: 1, MeanContactDur: 60},
		NightStart: 0,
		NightEnd:   8 * Hour,
	}
	tr, err := g.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tr.Contacts {
		tod := math.Mod(c.Start, Day)
		if tod < 8*Hour {
			t.Fatalf("night contact survived at tod=%v", tod)
		}
	}
	if len(tr.Contacts) == 0 {
		t.Fatal("diurnal filter removed everything")
	}
}

func TestDiurnalBadWindow(t *testing.T) {
	g := &Diurnal{Gen: RealityLike(), NightStart: 5, NightEnd: 5}
	if _, err := g.Generate(1); err == nil {
		t.Fatal("empty night window accepted")
	}
}

func TestPresetsGenerate(t *testing.T) {
	for name, ctor := range Presets() {
		name, ctor := name, ctor
		t.Run(name, func(t *testing.T) {
			tr, err := ctor().Generate(42)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			s := tr.ComputeStats()
			if s.Contacts < 5000 {
				t.Fatalf("%s: only %d contacts; preset too sparse to drive experiments", name, s.Contacts)
			}
			t.Logf("%s: %+v", name, s)
		})
	}
}

func TestPresetShapes(t *testing.T) {
	r, err := RealityLike().Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	i, err := InfocomLike().Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 97 || i.N != 78 {
		t.Fatalf("preset sizes: reality=%d infocom=%d", r.N, i.N)
	}
	rs, is := r.ComputeStats(), i.ComputeStats()
	// Infocom must be the denser trace per unit time.
	rDensity := float64(rs.Contacts) / r.Duration
	iDensity := float64(is.Contacts) / i.Duration
	if iDensity <= rDensity {
		t.Fatalf("infocom density %v not above reality %v", iDensity, rDensity)
	}
}

func TestPresetLookup(t *testing.T) {
	if _, err := Preset("reality-like"); err != nil {
		t.Fatal(err)
	}
	if _, err := Preset("bogus"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
