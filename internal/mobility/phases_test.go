package mobility

import (
	"testing"
)

func TestPhasesConcatenates(t *testing.T) {
	half := func(name string) Generator {
		return &HeterogeneousExp{TraceName: name, N: 10, Duration: 2 * Day,
			MeanRate: 5.0 / Day, RateShape: 1, PairFraction: 1, MeanContactDur: 60}
	}
	p := &Phases{TraceName: "p", Segments: []Segment{{Gen: half("a")}, {Gen: half("b")}}}
	tr, err := p.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Duration != 4*Day {
		t.Fatalf("duration = %v, want 4 days", tr.Duration)
	}
	first, second := 0, 0
	for _, c := range tr.Contacts {
		if c.Start < 2*Day {
			first++
		} else {
			second++
		}
	}
	if first == 0 || second == 0 {
		t.Fatalf("segment contact counts: %d, %d", first, second)
	}
}

func TestPhasesSegmentsDiffer(t *testing.T) {
	// The two halves must be generated with different derived seeds: the
	// drift scenario relies on structure actually changing.
	g := DriftingCommunity(30, 5*Day)
	tr, err := g.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	firstHalf := tr.Slice(0, 5*Day)
	secondHalf := tr.Slice(5*Day, 10*Day)
	if len(firstHalf.Contacts) == 0 || len(secondHalf.Contacts) == 0 {
		t.Fatal("empty half")
	}
	// Compare per-pair contact counts between halves; drift should make
	// them disagree substantially.
	firstPairs := make(map[int]int)
	for _, c := range firstHalf.Contacts {
		firstPairs[int(c.A)*tr.N+int(c.B)]++
	}
	secondPairs := make(map[int]int)
	for _, c := range secondHalf.Contacts {
		secondPairs[int(c.A)*tr.N+int(c.B)]++
	}
	same, diff := 0, 0
	for k, v := range firstPairs {
		w := secondPairs[k]
		if v > 0 && w > 0 && abs(v-w) <= 2 {
			same++
		} else {
			diff++
		}
	}
	if diff < same {
		t.Fatalf("halves look identical: same=%d diff=%d", same, diff)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPhasesValidation(t *testing.T) {
	if _, err := (&Phases{TraceName: "x"}).Generate(1); err == nil {
		t.Fatal("empty phases accepted")
	}
	if _, err := (&Phases{TraceName: "x", Segments: []Segment{{}}}).Generate(1); err == nil {
		t.Fatal("nil segment generator accepted")
	}
	mismatch := &Phases{TraceName: "x", Segments: []Segment{
		{Gen: &HeterogeneousExp{TraceName: "a", N: 5, Duration: Day, MeanRate: 1.0 / Day, RateShape: 1, PairFraction: 1, MeanContactDur: 60}},
		{Gen: &HeterogeneousExp{TraceName: "b", N: 6, Duration: Day, MeanRate: 1.0 / Day, RateShape: 1, PairFraction: 1, MeanContactDur: 60}},
	}}
	if _, err := mismatch.Generate(1); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
}

func TestDriftingCommunityDeterministic(t *testing.T) {
	a, err := DriftingCommunity(20, 3*Day).Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DriftingCommunity(20, 3*Day).Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatal("nondeterministic")
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatal("nondeterministic")
		}
	}
}
