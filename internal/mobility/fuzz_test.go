package mobility

import (
	"testing"
)

// FuzzGenerate explores the generator parameter space: whatever
// (clamped) parameters arrive, Generate must either reject them with an
// error or return a trace that passes the full property check — never
// panic, never emit out-of-range or unsorted contacts. The seed corpus
// runs as part of the normal test suite; `go test -fuzz=FuzzGenerate
// ./internal/mobility` explores further.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(1), 10, 1.0, 4.0, 0.8, 0.5, 60.0)
	f.Add(int64(42), 50, 3.0, 16.0, 0.6, 0.9, 300.0)
	f.Add(int64(7), 2, 0.1, 1.0, 1.5, 1.0, 1.0)
	f.Add(int64(0), 1100, 0.2, 2.0, 0.8, 0.002, 120.0) // sparse sampling path
	f.Add(int64(-3), 0, -1.0, 0.0, 0.0, 2.0, -5.0)     // invalid everything
	f.Add(int64(9), 30, 0.5, 8.0, 0.7, 0.001, 90.0)
	f.Fuzz(func(t *testing.T, seed int64, n int, days, ratePerDay, shape, pairFrac, dur float64) {
		// Clamp into a range where valid inputs stay cheap; invalid inputs
		// are left as-is so validation paths get fuzzed too.
		if n > 1200 {
			n = 1200
		}
		if days > 2 {
			days = 2
		}
		if ratePerDay > 20 {
			ratePerDay = 20
		}
		if pairFrac > 0 && pairFrac <= 1 {
			// Bound expected active pairs so one fuzz input can't ask for
			// millions of Poisson processes.
			if limit := 5000.0 / float64(pairCount(max(n, 2))); pairFrac > limit {
				pairFrac = limit
			}
		}
		gens := []Generator{
			&HeterogeneousExp{
				TraceName: "fuzz-hetexp", N: n, Duration: days * Day,
				MeanRate: ratePerDay / Day, RateShape: shape,
				PairFraction: pairFrac, MeanContactDur: dur,
			},
			&Community{
				TraceName: "fuzz-community", N: n, Duration: days * Day,
				Communities: n/10 + 1, IntraRate: ratePerDay / Day,
				InterRate: ratePerDay / (4 * Day), RateShape: shape,
				InterPairFraction: pairFrac, HubFraction: 0.1, HubBoost: 2,
				MeanContactDur: dur,
			},
		}
		for _, gen := range gens {
			tr, err := gen.Generate(seed)
			if err != nil {
				continue
			}
			if len(tr.Contacts) == 0 {
				continue // valid but empty traces are fine for the fuzzer
			}
			checkTraceProperties(t, tr)
		}
	})
}
