// Package mobility generates synthetic contact traces. It provides the
// two calibrated presets that stand in for the proprietary real traces the
// paper evaluates on (MIT Reality, Haggle Infocom'06 — see DESIGN.md,
// "Substitutions"), plus the general-purpose generators they are built
// from: a heterogeneous-exponential pairwise model, a community model with
// hub nodes, and a random-waypoint model on a square field.
//
// All generators consume an explicit seed and are fully deterministic.
package mobility

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// sparsePairThreshold is the node count at which the pairwise generators
// switch from the N² Bernoulli pair loop to O(active pairs) sampling:
// a binomial draw of the active-pair count plus uniform pair-index
// decoding. The two procedures are distributionally identical (a
// sequence of P independent Bernoulli(p) trials conditions to a
// Binomial(P, p) count with the successes uniform without replacement),
// but they consume the RNG differently, so the legacy loop is kept
// verbatim below the threshold to preserve the byte-exact traces of
// every calibrated preset.
const sparsePairThreshold = 1024

// pairCount returns the number of unordered node pairs C(n,2).
func pairCount(n int) int64 {
	return int64(n) * int64(n-1) / 2
}

// pairOffset returns the index of pair (a, a+1) in the row-major
// upper-triangle enumeration (0,1),(0,2),…,(1,2),… of n nodes.
func pairOffset(a, n int64) int64 {
	return a * (2*n - a - 1) / 2
}

// pairFromIndex decodes a row-major upper-triangle pair index into its
// (a, b) node pair, a < b. The row is estimated by solving the quadratic
// offset equation in floats and fixed up exactly.
func pairFromIndex(k int64, n int) (int, int) {
	nn := int64(n)
	est := (float64(2*nn-1) - math.Sqrt(float64((2*nn-1)*(2*nn-1)-8*k))) / 2
	a := int64(est)
	if a < 0 {
		a = 0
	}
	if a > nn-2 {
		a = nn - 2
	}
	for a > 0 && pairOffset(a, nn) > k {
		a--
	}
	for a < nn-2 && pairOffset(a+1, nn) <= k {
		a++
	}
	b := a + 1 + (k - pairOffset(a, nn))
	return int(a), int(b)
}

// samplePairIndices draws a binomial count of active pairs out of total
// with the given per-pair probability, then picks that many distinct pair
// indices uniformly (rejection-sampled, so the caller should keep p well
// below 1). The result is sorted ascending so downstream rate draws
// consume the RNG in a deterministic pair order.
func samplePairIndices(rng *rand.Rand, total int64, p float64) []int64 {
	k := stats.Binomial(rng, total, p)
	chosen := make(map[int64]struct{}, k)
	idx := make([]int64, 0, k)
	for int64(len(idx)) < k {
		c := rng.Int63n(total)
		if _, dup := chosen[c]; dup {
			continue
		}
		chosen[c] = struct{}{}
		idx = append(idx, c)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx
}

// Generator produces a contact trace from a seed.
type Generator interface {
	// Name identifies the generator configuration in reports.
	Name() string
	// Generate builds the trace. Implementations must return a normalized,
	// Validate-clean trace.
	Generate(seed int64) (*trace.Trace, error)
}

// pairProcess emits a Poisson contact process for one pair: contacts with
// exponential inter-contact times at the given rate and exponential
// durations with the given mean, clipped to the trace duration.
func pairProcess(rng *rand.Rand, a, b trace.NodeID, rate, meanDur, duration float64, out *[]trace.Contact) {
	if rate <= 0 {
		return
	}
	// Random phase: first contact is a full exponential gap from a
	// uniformly random origin so the process is stationary from t=0.
	t := stats.Exp(rng, rate) * rng.Float64()
	for t < duration {
		d := stats.Exp(rng, 1/meanDur)
		if d < 1 {
			d = 1 // contacts shorter than a second are unusable and unrealistic
		}
		end := t + d
		if end > duration {
			end = duration
		}
		if end > t {
			*out = append(*out, trace.Contact{A: a, B: b, Start: t, End: end})
		}
		t += stats.Exp(rng, rate)
		if t < end {
			t = end // contacts of one pair cannot overlap
		}
	}
}

// HeterogeneousExp is the baseline analytical model of this paper family:
// every pair (i,j) meets as a Poisson process with its own rate λij, with
// the rates drawn from a gamma distribution to produce the heavy
// heterogeneity observed in real traces.
type HeterogeneousExp struct {
	TraceName string
	N         int
	Duration  float64 // seconds
	// MeanRate is the mean pairwise contact rate of meeting pairs (1/s).
	MeanRate float64
	// RateShape is the gamma shape for rate heterogeneity; smaller values
	// give more skew. Typical real-trace fits are well below 1.
	RateShape float64
	// PairFraction is the fraction of pairs that ever meet.
	PairFraction float64
	// MeanContactDur is the mean contact duration in seconds.
	MeanContactDur float64
}

// Name implements Generator.
func (g *HeterogeneousExp) Name() string { return g.TraceName }

func (g *HeterogeneousExp) validate() error {
	switch {
	case g.N < 2:
		return fmt.Errorf("mobility: need at least 2 nodes, got %d", g.N)
	case g.Duration <= 0:
		return fmt.Errorf("mobility: non-positive duration %v", g.Duration)
	case g.MeanRate <= 0:
		return fmt.Errorf("mobility: non-positive mean rate %v", g.MeanRate)
	case g.RateShape <= 0:
		return fmt.Errorf("mobility: non-positive rate shape %v", g.RateShape)
	case g.PairFraction <= 0 || g.PairFraction > 1:
		return fmt.Errorf("mobility: pair fraction %v outside (0,1]", g.PairFraction)
	case g.MeanContactDur <= 0:
		return fmt.Errorf("mobility: non-positive contact duration %v", g.MeanContactDur)
	}
	return nil
}

// Generate implements Generator.
func (g *HeterogeneousExp) Generate(seed int64) (*trace.Trace, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	rng := stats.Derive(seed, "mobility/hetexp/"+g.TraceName)
	t := &trace.Trace{Name: g.TraceName, N: g.N, Duration: g.Duration}
	scale := g.MeanRate / g.RateShape
	if g.N >= sparsePairThreshold && g.PairFraction <= 0.5 {
		// O(active pairs): draw how many pairs meet, then which ones —
		// distributionally identical to the Bernoulli loop below without
		// touching the (1−p)·N² never-meeting pairs.
		for _, c := range samplePairIndices(rng, pairCount(g.N), g.PairFraction) {
			a, b := pairFromIndex(c, g.N)
			rate := stats.Gamma(rng, g.RateShape, scale)
			pairProcess(rng, trace.NodeID(a), trace.NodeID(b), rate, g.MeanContactDur, g.Duration, &t.Contacts)
		}
	} else {
		for a := 0; a < g.N; a++ {
			for b := a + 1; b < g.N; b++ {
				if rng.Float64() >= g.PairFraction {
					continue
				}
				rate := stats.Gamma(rng, g.RateShape, scale)
				pairProcess(rng, trace.NodeID(a), trace.NodeID(b), rate, g.MeanContactDur, g.Duration, &t.Contacts)
			}
		}
	}
	t.Normalize()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: generated invalid trace: %w", err)
	}
	return t, nil
}

// Community models nodes grouped into communities with frequent
// intra-community contacts, rare inter-community contacts, and a fraction
// of socially active "hub" nodes whose rates are boosted — the structure
// that makes contact-based centrality (and hence NCL selection)
// meaningful.
type Community struct {
	TraceName   string
	N           int
	Duration    float64
	Communities int
	// IntraRate / InterRate are the mean contact rates for same-community
	// and cross-community pairs (1/s); both are heterogenized with
	// RateShape.
	IntraRate float64
	InterRate float64
	RateShape float64
	// InterPairFraction is the fraction of cross-community pairs that ever
	// meet (intra-community pairs always meet).
	InterPairFraction float64
	// HubFraction of nodes get HubBoost multiplied into all their rates.
	HubFraction float64
	HubBoost    float64
	// MeanContactDur is the mean contact duration in seconds.
	MeanContactDur float64
}

// Name implements Generator.
func (g *Community) Name() string { return g.TraceName }

func (g *Community) validate() error {
	switch {
	case g.N < 2:
		return fmt.Errorf("mobility: need at least 2 nodes, got %d", g.N)
	case g.Duration <= 0:
		return fmt.Errorf("mobility: non-positive duration %v", g.Duration)
	case g.Communities < 1 || g.Communities > g.N:
		return fmt.Errorf("mobility: %d communities for %d nodes", g.Communities, g.N)
	case g.IntraRate <= 0 || g.InterRate < 0:
		return fmt.Errorf("mobility: bad rates intra=%v inter=%v", g.IntraRate, g.InterRate)
	case g.RateShape <= 0:
		return fmt.Errorf("mobility: non-positive rate shape %v", g.RateShape)
	case g.InterPairFraction < 0 || g.InterPairFraction > 1:
		return fmt.Errorf("mobility: inter pair fraction %v outside [0,1]", g.InterPairFraction)
	case g.HubFraction < 0 || g.HubFraction > 1:
		return fmt.Errorf("mobility: hub fraction %v outside [0,1]", g.HubFraction)
	case g.HubFraction > 0 && g.HubBoost < 1:
		return fmt.Errorf("mobility: hub boost %v below 1", g.HubBoost)
	case g.MeanContactDur <= 0:
		return fmt.Errorf("mobility: non-positive contact duration %v", g.MeanContactDur)
	}
	return nil
}

// Generate implements Generator.
func (g *Community) Generate(seed int64) (*trace.Trace, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	rng := stats.Derive(seed, "mobility/community/"+g.TraceName)
	comm := make([]int, g.N)
	for i := range comm {
		comm[i] = i % g.Communities
	}
	// Shuffle community assignment so node IDs carry no structure.
	rng.Shuffle(g.N, func(i, j int) { comm[i], comm[j] = comm[j], comm[i] })

	boost := make([]float64, g.N)
	for i := range boost {
		boost[i] = 1
		if rng.Float64() < g.HubFraction {
			boost[i] = g.HubBoost
		}
	}

	t := &trace.Trace{Name: g.TraceName, N: g.N, Duration: g.Duration}
	if g.N >= sparsePairThreshold && g.InterPairFraction <= 0.5 {
		g.generateSparse(rng, comm, boost, t)
	} else {
		for a := 0; a < g.N; a++ {
			for b := a + 1; b < g.N; b++ {
				var mean float64
				if comm[a] == comm[b] {
					mean = g.IntraRate
				} else {
					if rng.Float64() >= g.InterPairFraction {
						continue
					}
					mean = g.InterRate
				}
				if mean <= 0 {
					continue
				}
				rate := stats.Gamma(rng, g.RateShape, mean/g.RateShape)
				// A pair meets more often when either endpoint is a hub; the
				// geometric mean keeps a hub-hub pair at a single full boost.
				rate *= math.Sqrt(boost[a] * boost[b])
				pairProcess(rng, trace.NodeID(a), trace.NodeID(b), rate, g.MeanContactDur, g.Duration, &t.Contacts)
			}
		}
	}
	t.Normalize()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: generated invalid trace: %w", err)
	}
	return t, nil
}

// generateSparse is the O(active pairs) community path: every
// intra-community pair is enumerated block by block (intra pairs always
// meet, so there is nothing to sample), and the active cross-community
// pairs are drawn by a binomial count plus uniform pair-index decoding,
// rejecting intra and duplicate indices. The merged active-pair list is
// processed in ascending (a, b) order so the trace is a deterministic
// function of the seed.
func (g *Community) generateSparse(rng *rand.Rand, comm []int, boost []float64, t *trace.Trace) {
	type activePair struct {
		a, b int
		mean float64
	}
	var pairs []activePair

	if g.IntraRate > 0 {
		members := make([][]int, g.Communities)
		for i, c := range comm {
			members[c] = append(members[c], i)
		}
		for _, m := range members {
			for i := 0; i < len(m); i++ {
				for j := i + 1; j < len(m); j++ {
					a, b := m[i], m[j]
					if a > b {
						a, b = b, a
					}
					pairs = append(pairs, activePair{a: a, b: b, mean: g.IntraRate})
				}
			}
		}
	}

	if g.InterPairFraction > 0 && g.InterRate > 0 {
		var intra int64
		sizes := make([]int64, g.Communities)
		for _, c := range comm {
			sizes[c]++
		}
		for _, s := range sizes {
			intra += s * (s - 1) / 2
		}
		total := pairCount(g.N)
		interTotal := total - intra
		if interTotal > 0 {
			k := stats.Binomial(rng, interTotal, g.InterPairFraction)
			chosen := make(map[int64]struct{}, k)
			idx := make([]int64, 0, k)
			for int64(len(idx)) < k {
				c := rng.Int63n(total)
				a, b := pairFromIndex(c, g.N)
				if comm[a] == comm[b] {
					continue // uniform over inter pairs: reject intra
				}
				if _, dup := chosen[c]; dup {
					continue
				}
				chosen[c] = struct{}{}
				idx = append(idx, c)
			}
			sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
			for _, c := range idx {
				a, b := pairFromIndex(c, g.N)
				pairs = append(pairs, activePair{a: a, b: b, mean: g.InterRate})
			}
		}
	}

	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for _, p := range pairs {
		rate := stats.Gamma(rng, g.RateShape, p.mean/g.RateShape)
		// Same hub semantics as the dense loop: geometric-mean boost.
		rate *= math.Sqrt(boost[p.a] * boost[p.b])
		pairProcess(rng, trace.NodeID(p.a), trace.NodeID(p.b), rate, g.MeanContactDur, g.Duration, &t.Contacts)
	}
}

// RandomWaypoint simulates node movement on a square field: each node
// repeatedly picks a uniform waypoint and speed, walks there, pauses, and
// repeats. A contact exists while two nodes are within Range. Positions
// are advanced in Step-second ticks, so contact boundaries are quantized
// to Step.
type RandomWaypoint struct {
	TraceName string
	N         int
	Duration  float64
	Field     float64 // side of the square field (m)
	Range     float64 // transmission range (m)
	SpeedMin  float64 // m/s
	SpeedMax  float64 // m/s
	PauseMean float64 // s
	Step      float64 // simulation tick (s)
}

// Name implements Generator.
func (g *RandomWaypoint) Name() string { return g.TraceName }

func (g *RandomWaypoint) validate() error {
	switch {
	case g.N < 2:
		return fmt.Errorf("mobility: need at least 2 nodes, got %d", g.N)
	case g.Duration <= 0 || g.Field <= 0 || g.Range <= 0 || g.Step <= 0:
		return errors.New("mobility: duration, field, range and step must be positive")
	case g.SpeedMin <= 0 || g.SpeedMax < g.SpeedMin:
		return fmt.Errorf("mobility: bad speed range [%v,%v]", g.SpeedMin, g.SpeedMax)
	case g.PauseMean < 0:
		return fmt.Errorf("mobility: negative pause %v", g.PauseMean)
	}
	return nil
}

type rwpNode struct {
	x, y    float64
	wx, wy  float64 // current waypoint
	speed   float64
	pausing float64 // remaining pause time
}

// Generate implements Generator.
func (g *RandomWaypoint) Generate(seed int64) (*trace.Trace, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	rng := stats.Derive(seed, "mobility/rwp/"+g.TraceName)
	nodes := make([]rwpNode, g.N)
	for i := range nodes {
		nodes[i] = rwpNode{
			x: rng.Float64() * g.Field,
			y: rng.Float64() * g.Field,
		}
		g.newWaypoint(rng, &nodes[i])
	}

	inContact := make(map[int]float64) // pair key -> contact start time
	t := &trace.Trace{Name: g.TraceName, N: g.N, Duration: g.Duration}
	r2 := g.Range * g.Range

	// Spatial grid: with cells at least Range wide, any in-range pair sits
	// in the same or adjacent cells, so candidate pairs come from a 3×3
	// neighborhood instead of the N² loop. The near predicate is unchanged
	// and no randomness is consumed, so generated traces are identical to
	// the exhaustive scan. Cell size is floored at Field/256 to bound the
	// grid for tiny ranges.
	cell := g.Range
	if min := g.Field / 256; cell < min {
		cell = min
	}
	gw := int(g.Field/cell) + 1
	grid := make([][]int32, gw*gw)
	cellOf := func(v float64) int {
		c := int(v / cell)
		if c < 0 {
			c = 0
		}
		if c >= gw {
			c = gw - 1
		}
		return c
	}
	var toClose []int
	for now := 0.0; now < g.Duration; now += g.Step {
		for i := range nodes {
			g.advance(rng, &nodes[i])
		}
		for i := range grid {
			grid[i] = grid[i][:0]
		}
		for i := range nodes {
			c := cellOf(nodes[i].y)*gw + cellOf(nodes[i].x)
			grid[c] = append(grid[c], int32(i))
		}
		// Open new contacts: every near pair has its endpoints within one
		// cell of each other, and each unordered pair is visited exactly
		// once (from its lower endpoint, which skips b <= a).
		for a := 0; a < g.N; a++ {
			cx, cy := cellOf(nodes[a].x), cellOf(nodes[a].y)
			for dy := -1; dy <= 1; dy++ {
				y := cy + dy
				if y < 0 || y >= gw {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					x := cx + dx
					if x < 0 || x >= gw {
						continue
					}
					for _, bb := range grid[y*gw+x] {
						b := int(bb)
						if b <= a {
							continue
						}
						ddx := nodes[a].x - nodes[b].x
						ddy := nodes[a].y - nodes[b].y
						if ddx*ddx+ddy*ddy > r2 {
							continue
						}
						key := trace.PairKey(trace.NodeID(a), trace.NodeID(b), g.N)
						if _, was := inContact[key]; !was {
							inContact[key] = now
						}
					}
				}
			}
		}
		// Close contacts whose pair moved apart; sorted key order keeps
		// appends deterministic (ascending (a, b), as the N² scan did).
		toClose = toClose[:0]
		for key := range inContact {
			a, b := key/g.N, key%g.N
			ddx := nodes[a].x - nodes[b].x
			ddy := nodes[a].y - nodes[b].y
			if ddx*ddx+ddy*ddy > r2 {
				toClose = append(toClose, key)
			}
		}
		sort.Ints(toClose)
		for _, key := range toClose {
			start := inContact[key]
			if now > start {
				t.Contacts = append(t.Contacts, trace.Contact{
					A: trace.NodeID(key / g.N), B: trace.NodeID(key % g.N), Start: start, End: now,
				})
			}
			delete(inContact, key)
		}
	}
	// Close contacts still open at the horizon.
	for key, start := range inContact {
		a := trace.NodeID(key / g.N)
		b := trace.NodeID(key % g.N)
		if g.Duration > start {
			t.Contacts = append(t.Contacts, trace.Contact{A: a, B: b, Start: start, End: g.Duration})
		}
	}
	t.Normalize()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: generated invalid trace: %w", err)
	}
	return t, nil
}

func (g *RandomWaypoint) newWaypoint(rng *rand.Rand, n *rwpNode) {
	n.wx = rng.Float64() * g.Field
	n.wy = rng.Float64() * g.Field
	n.speed = stats.Uniform(rng, g.SpeedMin, g.SpeedMax)
}

func (g *RandomWaypoint) advance(rng *rand.Rand, n *rwpNode) {
	if n.pausing > 0 {
		n.pausing -= g.Step
		return
	}
	dx := n.wx - n.x
	dy := n.wy - n.y
	dist := dx*dx + dy*dy
	stepLen := n.speed * g.Step
	if dist <= stepLen*stepLen {
		n.x, n.y = n.wx, n.wy
		if g.PauseMean > 0 {
			n.pausing = stats.Exp(rng, 1/g.PauseMean)
		}
		g.newWaypoint(rng, n)
		return
	}
	d := stepLen / math.Sqrt(dist)
	n.x += dx * d
	n.y += dy * d
}
