package mobility

import (
	"fmt"
	"math/rand"

	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// WorkingDay is a simplified working-day movement model (after Ekman et
// al.): every node commutes daily to its assigned office and meets
// co-present colleagues there; in the evening a fraction of nodes visit
// one of a few gathering places and meet other attendees. Nights and
// homes produce no contacts. Compared with Community, the model produces
// schedule-locked contact patterns: hard day/night structure, office
// cliques, and cross-clique mixing only through evening venues.
type WorkingDay struct {
	TraceName string
	N         int
	Days      int
	// Offices is the number of workplaces; nodes are assigned round-robin
	// then shuffled.
	Offices int
	// OfficeRate is the pairwise contact rate between two colleagues
	// while both are at the office (1/s).
	OfficeRate float64
	// WorkStart/WorkEnd are the nominal office hours as offsets into the
	// day (seconds); each node's arrival and departure get ±Jitter noise.
	WorkStart float64
	WorkEnd   float64
	Jitter    float64
	// EveningVenues is the number of gathering places (0 disables evening
	// activity); each evening every node attends one with probability
	// EveningProb, from EveningStart for EveningLen seconds, meeting other
	// attendees at EveningRate.
	EveningVenues int
	EveningProb   float64
	EveningStart  float64
	EveningLen    float64
	EveningRate   float64
	// MeanContactDur is the mean duration of an individual contact (s).
	MeanContactDur float64
}

// Name implements Generator.
func (g *WorkingDay) Name() string { return g.TraceName }

func (g *WorkingDay) validate() error {
	switch {
	case g.N < 2:
		return fmt.Errorf("mobility: need at least 2 nodes, got %d", g.N)
	case g.Days < 1:
		return fmt.Errorf("mobility: need at least 1 day, got %d", g.Days)
	case g.Offices < 1 || g.Offices > g.N:
		return fmt.Errorf("mobility: %d offices for %d nodes", g.Offices, g.N)
	case g.OfficeRate <= 0:
		return fmt.Errorf("mobility: non-positive office rate %v", g.OfficeRate)
	case g.WorkStart < 0 || g.WorkEnd <= g.WorkStart || g.WorkEnd > Day:
		return fmt.Errorf("mobility: bad office hours [%v,%v]", g.WorkStart, g.WorkEnd)
	case g.Jitter < 0 || g.Jitter >= (g.WorkEnd-g.WorkStart)/2:
		return fmt.Errorf("mobility: jitter %v too large for office hours", g.Jitter)
	case g.EveningVenues < 0:
		return fmt.Errorf("mobility: negative venue count %d", g.EveningVenues)
	case g.EveningVenues > 0 && (g.EveningProb <= 0 || g.EveningProb > 1):
		return fmt.Errorf("mobility: evening probability %v outside (0,1]", g.EveningProb)
	case g.EveningVenues > 0 && (g.EveningStart < g.WorkEnd || g.EveningStart+g.EveningLen > Day):
		return fmt.Errorf("mobility: evening window [%v,%v) outside the day", g.EveningStart, g.EveningStart+g.EveningLen)
	case g.EveningVenues > 0 && g.EveningRate <= 0:
		return fmt.Errorf("mobility: non-positive evening rate %v", g.EveningRate)
	case g.MeanContactDur <= 0:
		return fmt.Errorf("mobility: non-positive contact duration %v", g.MeanContactDur)
	}
	return nil
}

// presence is one node's attendance interval at a place.
type presence struct {
	node       trace.NodeID
	from, till float64
}

// Generate implements Generator.
func (g *WorkingDay) Generate(seed int64) (*trace.Trace, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	rng := stats.Derive(seed, "mobility/workingday/"+g.TraceName)

	office := make([]int, g.N)
	for i := range office {
		office[i] = i % g.Offices
	}
	rng.Shuffle(g.N, func(i, j int) { office[i], office[j] = office[j], office[i] })

	t := &trace.Trace{Name: g.TraceName, N: g.N, Duration: float64(g.Days) * Day}
	for day := 0; day < g.Days; day++ {
		base := float64(day) * Day

		// Office attendance per workplace.
		byOffice := make([][]presence, g.Offices)
		for n := 0; n < g.N; n++ {
			arrive := base + g.WorkStart + jitter(rng, g.Jitter)
			depart := base + g.WorkEnd + jitter(rng, g.Jitter)
			if depart <= arrive {
				continue
			}
			byOffice[office[n]] = append(byOffice[office[n]], presence{trace.NodeID(n), arrive, depart})
		}
		for _, ps := range byOffice {
			g.meet(rng, ps, g.OfficeRate, &t.Contacts)
		}

		// Evening venues mix across offices.
		if g.EveningVenues > 0 {
			byVenue := make([][]presence, g.EveningVenues)
			for n := 0; n < g.N; n++ {
				if rng.Float64() >= g.EveningProb {
					continue
				}
				v := rng.Intn(g.EveningVenues)
				from := base + g.EveningStart + jitter(rng, g.Jitter)
				till := from + g.EveningLen
				if till > base+Day {
					till = base + Day
				}
				if till > from {
					byVenue[v] = append(byVenue[v], presence{trace.NodeID(n), from, till})
				}
			}
			for _, ps := range byVenue {
				g.meet(rng, ps, g.EveningRate, &t.Contacts)
			}
		}
	}
	t.Normalize()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: generated invalid trace: %w", err)
	}
	return t, nil
}

// meet emits Poisson contacts for every co-present pair at one place.
func (g *WorkingDay) meet(rng *rand.Rand, ps []presence, rate float64, out *[]trace.Contact) {
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			from := ps[i].from
			if ps[j].from > from {
				from = ps[j].from
			}
			till := ps[i].till
			if ps[j].till < till {
				till = ps[j].till
			}
			if till <= from {
				continue
			}
			at := from + stats.Exp(rng, rate)
			for at < till {
				end := at + stats.Exp(rng, 1/g.MeanContactDur)
				if end < at+1 {
					end = at + 1
				}
				if end > till {
					end = till
				}
				if end > at {
					*out = append(*out, trace.Contact{A: ps[i].node, B: ps[j].node, Start: at, End: end})
				}
				at = end + stats.Exp(rng, rate)
			}
		}
	}
}

func jitter(rng *rand.Rand, j float64) float64 {
	if j == 0 {
		return 0
	}
	return (rng.Float64()*2 - 1) * j
}

// OfficeLike returns a ready-made working-day scenario: 60 commuters, 6
// offices, 9-to-5 with half-hour jitter, and evening venues mixing a
// third of the population.
func OfficeLike(days int) Generator {
	return &WorkingDay{
		TraceName:      "office-like",
		N:              60,
		Days:           days,
		Offices:        6,
		OfficeRate:     6.0 / (8 * Hour), // ~6 contacts per colleague-pair per workday
		WorkStart:      9 * Hour,
		WorkEnd:        17 * Hour,
		Jitter:         30 * 60,
		EveningVenues:  3,
		EveningProb:    0.33,
		EveningStart:   19 * Hour,
		EveningLen:     2 * Hour,
		EveningRate:    4.0 / (2 * Hour),
		MeanContactDur: 10 * 60,
	}
}
