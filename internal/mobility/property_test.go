package mobility

import (
	"bytes"
	"sort"
	"testing"

	"freshcache/internal/trace"
)

// propertyGenerators enumerates every Generator the package exports — each
// preset, each model at a hand-built size, the wrappers (Diurnal, Phases)
// and, for the models with a sparse O(active-pairs) sampling path, an
// instance above sparsePairThreshold so both code paths are under the same
// properties.
func propertyGenerators() map[string]Generator {
	gens := map[string]Generator{
		"hetexp": &HeterogeneousExp{
			TraceName: "prop-hetexp", N: 40, Duration: 2 * Day,
			MeanRate: 6.0 / Day, RateShape: 0.7, PairFraction: 0.5, MeanContactDur: 300,
		},
		"hetexp-sparse": &HeterogeneousExp{
			TraceName: "prop-hetexp-sparse", N: sparsePairThreshold + 100, Duration: 6 * Hour,
			MeanRate: 2.0 / Day, RateShape: 0.7, PairFraction: 0.002, MeanContactDur: 120,
		},
		"community": &Community{
			TraceName: "prop-community", N: 60, Duration: 2 * Day, Communities: 4,
			IntraRate: 8.0 / Day, InterRate: 1.0 / Day, RateShape: 0.8,
			InterPairFraction: 0.5, HubFraction: 0.1, HubBoost: 2.5, MeanContactDur: 200,
		},
		"community-sparse": &Community{
			TraceName: "prop-community-sparse", N: sparsePairThreshold + 176, Duration: 6 * Hour,
			IntraRate: 4.0 / Day, InterRate: 1.0 / Day, RateShape: 0.8, Communities: 60,
			InterPairFraction: 0.005, HubFraction: 0.05, HubBoost: 3, MeanContactDur: 120,
		},
		"rwp": &RandomWaypoint{
			TraceName: "prop-rwp", N: 30, Duration: 4 * Hour, Field: 1000, Range: 50,
			SpeedMin: 0.5, SpeedMax: 2.0, PauseMean: 60, Step: 5,
		},
		"workingday":        OfficeLike(3),
		"drifting":          DriftingCommunity(40, Day),
		"diurnal-community": RealityLike(),
	}
	for name, ctor := range Presets() {
		gens["preset-"+name] = ctor()
	}
	return gens
}

// checkTraceProperties asserts the invariants every generated trace must
// hold, independently of trace.Validate (so a future Validate relaxation
// cannot silently weaken the generators' contract).
func checkTraceProperties(t *testing.T, tr *trace.Trace) {
	t.Helper()
	if tr.N < 2 {
		t.Fatalf("trace has %d nodes", tr.N)
	}
	if tr.Duration <= 0 {
		t.Fatalf("trace duration %v", tr.Duration)
	}
	if len(tr.Contacts) == 0 {
		t.Fatal("generator produced no contacts")
	}
	sorted := sort.SliceIsSorted(tr.Contacts, func(i, j int) bool {
		a, b := tr.Contacts[i], tr.Contacts[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.End < b.End
	})
	if !sorted {
		t.Error("contacts not sorted by (Start, A, B, End)")
	}
	for i, c := range tr.Contacts {
		if c.A == c.B {
			t.Fatalf("contact #%d: self-contact on node %d", i, c.A)
		}
		if c.A > c.B {
			t.Fatalf("contact #%d: endpoints not canonical (A=%d > B=%d)", i, c.A, c.B)
		}
		if c.A < 0 || int(c.A) >= tr.N || c.B < 0 || int(c.B) >= tr.N {
			t.Fatalf("contact #%d: node out of range (%d,%d) with N=%d", i, c.A, c.B, tr.N)
		}
		if c.Start < 0 || c.End <= c.Start || c.End > tr.Duration {
			t.Fatalf("contact #%d: interval [%v,%v) outside [0,%v]", i, c.Start, c.End, tr.Duration)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// encode serializes a trace so regeneration can be compared byte for byte.
func encode(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// TestGeneratorProperties is the shared property harness: every generator,
// across several seeds, must produce a trace that is sorted, in range,
// self-contact-free and byte-identical when regenerated from the same
// seed.
func TestGeneratorProperties(t *testing.T) {
	seeds := []int64{1, 2, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for name, gen := range propertyGenerators() {
		gen := gen
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				tr, err := gen.Generate(seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				checkTraceProperties(t, tr)
				again, err := gen.Generate(seed)
				if err != nil {
					t.Fatalf("seed %d regeneration: %v", seed, err)
				}
				if !bytes.Equal(encode(t, tr), encode(t, again)) {
					t.Fatalf("seed %d: regeneration is not byte-identical", seed)
				}
			}
		})
	}
}

// TestGeneratorSeedsDiffer guards the other direction: distinct seeds must
// not collapse onto the same trace (a seed-plumbing bug would make every
// "independent" sweep replicate identical).
func TestGeneratorSeedsDiffer(t *testing.T) {
	for name, gen := range propertyGenerators() {
		gen := gen
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a, err := gen.Generate(7)
			if err != nil {
				t.Fatal(err)
			}
			b, err := gen.Generate(8)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(encode(t, a), encode(t, b)) {
				t.Fatal("seeds 7 and 8 produced byte-identical traces")
			}
		})
	}
}

// TestSparseSamplingMatchesDense cross-checks the O(active-pairs) path
// against the exhaustive pair loop on the same model: the two samplers
// draw different RNG streams, so traces differ contact-for-contact, but
// aggregate statistics (active pair count, contacts per pair) must agree
// within sampling tolerance.
func TestSparseSamplingMatchesDense(t *testing.T) {
	const n = sparsePairThreshold + 100 // sparse path engages
	base := HeterogeneousExp{
		TraceName: "xcheck", N: n, Duration: Day,
		MeanRate: 4.0 / Day, RateShape: 1.0, PairFraction: 0.004, MeanContactDur: 60,
	}
	pairStats := func(tr *trace.Trace) (pairs int, contacts int) {
		seen := map[int]bool{}
		for _, c := range tr.Contacts {
			seen[trace.PairKey(c.A, c.B, tr.N)] = true
		}
		return len(seen), len(tr.Contacts)
	}
	sparse := base
	str, err := sparse.Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	// Forcing the dense loop: PairFraction above the 0.5 gate is the only
	// lever without exporting internals, so compare both against the
	// analytical expectation instead of each other.
	sp, sc := pairStats(str)
	wantPairs := float64(pairCount(n)) * base.PairFraction
	if ratio := float64(sp) / wantPairs; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("sparse path activated %d pairs, want ≈%.0f", sp, wantPairs)
	}
	// Each active pair contributes ≈ rate·duration contacts on average.
	wantContacts := wantPairs * base.MeanRate * base.Duration
	if ratio := float64(sc) / wantContacts; ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("sparse path emitted %d contacts, want ≈%.0f", sc, wantContacts)
	}
}

// TestPairIndexRoundTrip pins the pair-index codec the sparse samplers
// share: every (a,b) with a<b maps to a distinct index in [0, C(n,2)) and
// decodes back exactly.
func TestPairIndexRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 7, 64, 1031} {
		total := pairCount(n)
		if want := int64(n) * int64(n-1) / 2; total != want {
			t.Fatalf("pairCount(%d) = %d, want %d", n, total, want)
		}
		if n > 100 {
			// Spot-check large n: boundaries plus a stride through the middle.
			for k := int64(0); k < total; k += total/997 + 1 {
				a, b := pairFromIndex(k, n)
				if a < 0 || b <= a || b >= n {
					t.Fatalf("pairFromIndex(%d, %d) = (%d,%d) out of range", k, n, a, b)
				}
				if back := pairOffset(int64(a), int64(n)) + int64(b-a-1); back != k {
					t.Fatalf("pairFromIndex(%d, %d) = (%d,%d), encodes back to %d", k, n, a, b, back)
				}
			}
			continue
		}
		seen := make(map[[2]int]bool, total)
		for k := int64(0); k < total; k++ {
			a, b := pairFromIndex(k, n)
			if a < 0 || b <= a || b >= n {
				t.Fatalf("pairFromIndex(%d, %d) = (%d,%d) out of range", k, n, a, b)
			}
			if seen[[2]int{a, b}] {
				t.Fatalf("pairFromIndex(%d, %d) repeats (%d,%d)", k, n, a, b)
			}
			seen[[2]int{a, b}] = true
		}
		if len(seen) != int(total) {
			t.Fatalf("n=%d: %d distinct pairs decoded, want %d", n, len(seen), total)
		}
	}
}
