package mobility

import (
	"math"
	"testing"

	"freshcache/internal/trace"
)

func TestWorkingDayGenerates(t *testing.T) {
	tr, err := OfficeLike(5).Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.N != 60 || tr.Duration != 5*Day {
		t.Fatalf("header: N=%d duration=%v", tr.N, tr.Duration)
	}
	if len(tr.Contacts) < 1000 {
		t.Fatalf("only %d contacts over 5 office days", len(tr.Contacts))
	}
}

func TestWorkingDaySchedule(t *testing.T) {
	g := &WorkingDay{
		TraceName: "wd", N: 20, Days: 3, Offices: 2,
		OfficeRate: 4.0 / (8 * Hour), WorkStart: 9 * Hour, WorkEnd: 17 * Hour,
		Jitter: 15 * 60, MeanContactDur: 5 * 60,
	}
	tr, err := g.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	// Without evening venues, every contact lies inside office hours
	// (± jitter).
	for _, c := range tr.Contacts {
		tod := math.Mod(c.Start, Day)
		if tod < 9*Hour-16*60 || tod > 17*Hour+16*60 {
			t.Fatalf("contact outside office hours: tod=%vh", tod/Hour)
		}
	}
}

func TestWorkingDayOfficeCliques(t *testing.T) {
	// With no evening mixing, contacts only happen within offices: the
	// contact graph splits into exactly `Offices` components worth of
	// pairs.
	g := &WorkingDay{
		TraceName: "wd", N: 12, Days: 10, Offices: 3,
		OfficeRate: 8.0 / (8 * Hour), WorkStart: 9 * Hour, WorkEnd: 17 * Hour,
		Jitter: 0, MeanContactDur: 5 * 60,
	}
	tr, err := g.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	// Union-find over contacts.
	parent := make([]int, tr.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, c := range tr.Contacts {
		parent[find(int(c.A))] = find(int(c.B))
	}
	comps := map[int]bool{}
	for i := range parent {
		comps[find(i)] = true
	}
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3 office cliques", len(comps))
	}
}

func TestWorkingDayEveningMixes(t *testing.T) {
	g := OfficeLike(10)
	tr, err := g.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	evening := 0
	for _, c := range tr.Contacts {
		tod := math.Mod(c.Start, Day)
		if tod >= 19*Hour {
			evening++
		}
	}
	if evening == 0 {
		t.Fatal("no evening contacts despite venues")
	}
}

func TestWorkingDayDeterministic(t *testing.T) {
	a, err := OfficeLike(3).Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OfficeLike(3).Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatal("nondeterministic")
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatal("nondeterministic")
		}
	}
}

func TestWorkingDayValidation(t *testing.T) {
	base := func() *WorkingDay {
		return &WorkingDay{TraceName: "v", N: 10, Days: 2, Offices: 2,
			OfficeRate: 1.0 / Hour, WorkStart: 9 * Hour, WorkEnd: 17 * Hour,
			Jitter: 60, MeanContactDur: 60}
	}
	muts := []func(*WorkingDay){
		func(g *WorkingDay) { g.N = 1 },
		func(g *WorkingDay) { g.Days = 0 },
		func(g *WorkingDay) { g.Offices = 0 },
		func(g *WorkingDay) { g.Offices = 11 },
		func(g *WorkingDay) { g.OfficeRate = 0 },
		func(g *WorkingDay) { g.WorkEnd = g.WorkStart },
		func(g *WorkingDay) { g.WorkEnd = 25 * Hour },
		func(g *WorkingDay) { g.Jitter = 10 * Hour },
		func(g *WorkingDay) { g.EveningVenues = -1 },
		func(g *WorkingDay) { g.EveningVenues = 1; g.EveningProb = 0 },
		func(g *WorkingDay) { g.EveningVenues = 1; g.EveningProb = 0.5; g.EveningStart = 8 * Hour },
		func(g *WorkingDay) {
			g.EveningVenues = 1
			g.EveningProb = 0.5
			g.EveningStart = 20 * Hour
			g.EveningLen = 10 * Hour
		},
		func(g *WorkingDay) {
			g.EveningVenues = 1
			g.EveningProb = 0.5
			g.EveningStart = 19 * Hour
			g.EveningLen = Hour
			g.EveningRate = 0
		},
		func(g *WorkingDay) { g.MeanContactDur = 0 },
	}
	for i, mut := range muts {
		g := base()
		mut(g)
		if _, err := g.Generate(1); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestWorkingDayDrivesSimulation(t *testing.T) {
	// The generator must produce traces the engine can consume end to
	// end (centrality, selection, refreshing).
	tr, err := OfficeLike(8).Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := traceRates(tr)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
}

// traceRates is a tiny helper keeping the mobility package free of a
// centrality dependency in tests.
func traceRates(tr *trace.Trace) ([]float64, error) {
	return tr.PairRates(0, tr.Duration)
}
