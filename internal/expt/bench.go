package expt

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"freshcache/internal/core"
	"freshcache/internal/metrics"
	"freshcache/internal/mobility"
)

// BenchReport is the machine-readable output of the benchmark harness
// (`cmd/experiments -benchjson`, `scripts/bench.sh`), committed as
// BENCH_<PR>.json so CI can flag regressions. Timing fields are
// machine-dependent; the allocation fields are not (the simulation is
// deterministic), so CI gates on allocations and treats ns as advisory.
type BenchReport struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Preset string `json:"preset"`

	// TimingMethod documents how the ns fields were sampled (currently
	// "median-of-5": each section runs BenchRounds times and the median
	// round is recorded, so gate verdicts aren't single-sample coin
	// flips). Allocation fields are identical every round.
	TimingMethod string `json:"timingMethod"`

	// Per-contact cost of one end-to-end run of the paper's scheme
	// (hierarchical, default scenario): the protocol hot path.
	Contacts         int     `json:"contacts"`
	NsPerContact     float64 `json:"nsPerContact"`
	AllocsPerContact float64 `json:"allocsPerContact"`
	BytesPerContact  float64 `json:"bytesPerContact"`

	// One full quick-mode E2 experiment (the sweep CI benchmarks): total
	// cost and sweep throughput.
	E2Cells       int     `json:"e2Cells"`
	E2NsPerOp     float64 `json:"e2NsPerOp"`
	E2AllocsPerOp float64 `json:"e2AllocsPerOp"`
	E2BytesPerOp  float64 `json:"e2BytesPerOp"`
	CellsPerSec   float64 `json:"cellsPerSec"`

	// One quick-mode E21 run (sparse large-N path: O(contacts) trace
	// generation, sparse rate structures, full pipeline). Normalized per
	// contact so the number is comparable as the scenario grows.
	LargeNNodes            int     `json:"largeNNodes"`
	LargeNContacts         int     `json:"largeNContacts"`
	LargeNNsPerContact     float64 `json:"largeNNsPerContact"`
	LargeNAllocsPerContact float64 `json:"largeNAllocsPerContact"`
	LargeNBytesPerContact  float64 `json:"largeNBytesPerContact"`
}

// BenchSchema identifies the report layout for downstream tooling.
// Version 2 added timingMethod and switched ns sampling from best-of-3 to
// median-of-5. Version 3 added the large-N sparse-path section.
const BenchSchema = "freshcache-bench/3"

// BenchRounds is how many times each benchmark section repeats; ns fields
// report the median round (see BenchTimingMethod).
const BenchRounds = 5

// BenchTimingMethod is the recorded sampling method for timing fields.
const BenchTimingMethod = "median-of-5"

// median returns the middle sample (mean of the middle two for even n).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// memDelta runs f and returns (elapsed, mallocs, bytes) attributed to it.
// The process must be otherwise idle (the harness is single-threaded).
func memDelta(f func() error) (time.Duration, uint64, uint64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	err := f()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, m1.Mallocs - m0.Mallocs, m1.TotalAlloc - m0.TotalAlloc, err
}

// RunBench measures the harness's two sections and assembles the report.
func RunBench(seed int64) (BenchReport, error) {
	rep := BenchReport{Schema: BenchSchema, Seed: seed, Preset: "reality-like", TimingMethod: BenchTimingMethod}

	// Section 1: per-contact cost of one hierarchical run.
	gen, err := mobility.Preset(rep.Preset)
	if err != nil {
		return rep, err
	}
	tr, err := gen.Generate(seed)
	if err != nil {
		return rep, err
	}
	sc := defaultScenario(rep.Preset, seed)
	nsSamples := make([]float64, 0, BenchRounds)
	for round := 0; round < BenchRounds; round++ {
		var eng *core.Engine
		elapsed, mallocs, bytes, err := memDelta(func() error {
			var err error
			_, eng, err = sc.RunOnTrace(core.NewHierarchical(), tr)
			return err
		})
		if err != nil {
			return rep, fmt.Errorf("bench run: %w", err)
		}
		contacts := eng.ContactsDispatched()
		if contacts == 0 {
			return rep, fmt.Errorf("bench run dispatched no contacts")
		}
		nsSamples = append(nsSamples, float64(elapsed.Nanoseconds())/float64(contacts))
		// Deterministic run → identical allocations every round.
		rep.Contacts = contacts
		rep.AllocsPerContact = float64(mallocs) / float64(contacts)
		rep.BytesPerContact = float64(bytes) / float64(contacts)
	}
	rep.NsPerContact = median(nsSamples)

	// Section 2: one quick-mode E2 experiment (what CI's benchmark job
	// runs), for whole-sweep cost and throughput.
	e2, err := ByID("E2")
	if err != nil {
		return rep, err
	}
	nsSamples = nsSamples[:0]
	for round := 0; round < BenchRounds; round++ {
		rs := metrics.NewRunStats()
		elapsed, mallocs, bytes, err := memDelta(func() error {
			_, err := e2.Run(Options{Seed: seed, Quick: true, Parallel: 1, Stats: rs})
			return err
		})
		if err != nil {
			return rep, fmt.Errorf("bench E2: %w", err)
		}
		nsSamples = append(nsSamples, float64(elapsed.Nanoseconds()))
		rep.E2Cells = rs.Runs()
		rep.E2AllocsPerOp = float64(mallocs)
		rep.E2BytesPerOp = float64(bytes)
	}
	rep.E2NsPerOp = median(nsSamples)
	if rep.E2NsPerOp > 0 {
		rep.CellsPerSec = float64(rep.E2Cells) / (rep.E2NsPerOp / 1e9)
	}

	// Section 3: the large-N sparse path — one quick-mode E21 scenario.
	// The trace is regenerated each round (cheap, O(contacts)) but only
	// the engine run is measured, so the per-contact fields gate the
	// sparse protocol path, not the sampler.
	rep.LargeNNodes = largeNQuickNodes
	nsSamples = nsSamples[:0]
	for round := 0; round < BenchRounds; round++ {
		ltr, err := largeNTrace(largeNQuickNodes, seed)
		if err != nil {
			return rep, fmt.Errorf("bench largeN trace: %w", err)
		}
		lsc := defaultScenario(rep.Preset, seed)
		lsc.NumCachingNodes = 64
		lsc.RefreshInterval = 12 * mobility.Hour
		var eng *core.Engine
		elapsed, mallocs, bytes, err := memDelta(func() error {
			var err error
			_, eng, err = lsc.RunOnTrace(core.NewHierarchical(), ltr)
			return err
		})
		if err != nil {
			return rep, fmt.Errorf("bench largeN: %w", err)
		}
		contacts := eng.ContactsDispatched()
		if contacts == 0 {
			return rep, fmt.Errorf("bench largeN dispatched no contacts")
		}
		nsSamples = append(nsSamples, float64(elapsed.Nanoseconds())/float64(contacts))
		rep.LargeNContacts = contacts
		rep.LargeNAllocsPerContact = float64(mallocs) / float64(contacts)
		rep.LargeNBytesPerContact = float64(bytes) / float64(contacts)
	}
	rep.LargeNNsPerContact = median(nsSamples)
	return rep, nil
}

// WriteBenchJSON writes the report as indented JSON (with a trailing
// newline, so the committed baseline diffs cleanly).
func WriteBenchJSON(path string, rep BenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
