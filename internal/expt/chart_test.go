package expt

import (
	"strings"
	"testing"
)

func chartableTable() *Table {
	t := &Table{ID: "X", Title: "demo chart", Header: []string{"x", "a", "b"}}
	t.AddRow(0.0, 0.1, 0.9)
	t.AddRow(1.0, 0.3, 0.7)
	t.AddRow(2.0, 0.5, 0.5)
	t.AddRow(3.0, 0.7, 0.3)
	return t
}

func TestChartRenders(t *testing.T) {
	tab := chartableTable()
	out, err := tab.Chart(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demo chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("missing series markers:\n%s", out)
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "(x: x)") {
		t.Fatalf("missing x-axis label:\n%s", out)
	}
	// Every line of the plot area fits the width budget (8 label + " |" +
	// width).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") && len([]rune(line)) > 8+2+40 {
			t.Fatalf("plot line too long: %q", line)
		}
	}
}

func TestChartSeriesPositions(t *testing.T) {
	// A single increasing series: the marker in the top row must be at
	// the right edge, the one in the bottom row at the left edge.
	tab := &Table{Title: "inc", Header: []string{"x", "y"}}
	tab.AddRow(0.0, 0.0)
	tab.AddRow(1.0, 1.0)
	out, err := tab.Chart(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	var plot []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plot = append(plot, l[strings.Index(l, "|")+1:])
		}
	}
	if len(plot) != 5 {
		t.Fatalf("plot rows = %d", len(plot))
	}
	top, bottom := plot[0], plot[4]
	if !strings.Contains(top, "*") || strings.Index(top, "*") < 15 {
		t.Fatalf("top-row marker misplaced: %q", top)
	}
	if !strings.Contains(bottom, "*") || strings.Index(bottom, "*") > 4 {
		t.Fatalf("bottom-row marker misplaced: %q", bottom)
	}
}

func TestChartErrors(t *testing.T) {
	tab := chartableTable()
	if _, err := tab.Chart(4, 2); err == nil {
		t.Fatal("tiny area accepted")
	}
	one := &Table{Header: []string{"x", "y"}}
	one.AddRow(1.0, 2.0)
	if _, err := one.Chart(40, 10); err == nil {
		t.Fatal("single-row table accepted")
	}
	text := &Table{Header: []string{"x", "y"}}
	text.AddRow("a", 1.0)
	text.AddRow("b", 2.0)
	if _, err := text.Chart(40, 10); err == nil {
		t.Fatal("non-numeric table accepted")
	}
}

func TestChartConstantSeries(t *testing.T) {
	tab := &Table{Title: "flat", Header: []string{"x", "y"}}
	tab.AddRow(0.0, 0.5)
	tab.AddRow(1.0, 0.5)
	out, err := tab.Chart(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("flat series not drawn")
	}
}

func TestChartable(t *testing.T) {
	if !chartableTable().Chartable() {
		t.Fatal("numeric table not chartable")
	}
	text := &Table{Header: []string{"x", "y"}}
	text.AddRow("a", 1.0)
	text.AddRow("b", 2.0)
	if text.Chartable() {
		t.Fatal("text table chartable")
	}
	if (&Table{Header: []string{"x", "y"}}).Chartable() {
		t.Fatal("empty table chartable")
	}
}
