package expt

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"freshcache/internal/mobility"
	"freshcache/internal/obs"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// This file is the deterministic worker-pool sweep runner the hot
// experiments fan out on. A Sweep enumerates one experiment's
// (preset × sweep point × scheme × replicate) cell grid in a fixed order,
// evaluates every cell on min(GOMAXPROCS, Parallel) workers, and assembles
// the results by cell index — so tables are byte-identical to a sequential
// run regardless of scheduling. Determinism rests on two invariants:
// every cell derives its own RNG seed from its grid coordinates (no shared
// mutable randomness), and generated traces are immutable once published
// by the cache (cells only read them).

// Cell identifies one unit of work in a sweep grid and carries its derived
// randomness.
type Cell struct {
	Experiment string
	Preset     string
	Point      int // index into the sweep's point axis
	Scheme     string
	Replicate  int

	// Seed drives the cell's protocol and workload randomness. It is
	// derived from (base seed, experiment, preset, point, scheme,
	// replicate) via stats.DeriveSeed, so it does not depend on which
	// worker runs the cell or in what order.
	Seed int64
	// TraceSeed seeds trace generation. It depends only on the base seed
	// and the replicate, so all cells of one replicate share a trace:
	// scheme and sweep-point comparisons are paired (common trace), and the
	// shared cache generates each trace once per process instead of per
	// cell.
	TraceSeed int64
}

// CellFunc evaluates one cell and returns its metric vector. Every cell of
// a sweep must return the same number of metrics.
type CellFunc func(c Cell) ([]float64, error)

// Sweep describes one experiment's cell grid and its execution policy.
type Sweep struct {
	// Experiment is the stable ID mixed into every cell seed.
	Experiment string
	// Presets, Points and Schemes span the grid. An empty scheme axis
	// means a single implicit scheme "".
	Presets []string
	Points  int
	Schemes []string
	// Replicates is the number of independent runs per cell (default 1).
	// With R > 1 the result reports mean ± stderr.
	Replicates int
	// Parallel bounds the worker pool; the effective pool size is
	// min(GOMAXPROCS, Parallel), and 0 means GOMAXPROCS.
	Parallel int
	// BaseSeed is the experiment's base seed.
	BaseSeed int64
	// Obs, when non-nil, tracks sweep progress (cells queued/done, queue
	// depth) in its registry. Cell-level tracing is the cell body's job.
	Obs *obs.Observer
}

func (s Sweep) schemes() []string {
	if len(s.Schemes) == 0 {
		return []string{""}
	}
	return s.Schemes
}

func (s Sweep) replicates() int {
	if s.Replicates < 1 {
		return 1
	}
	return s.Replicates
}

func (s Sweep) workers(cells int) int {
	w := s.Parallel
	if w < 1 || w > runtime.GOMAXPROCS(0) {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// cells enumerates the grid in deterministic order: preset-major, then
// point, scheme, replicate.
func (s Sweep) cells() []Cell {
	schemes := s.schemes()
	reps := s.replicates()
	out := make([]Cell, 0, len(s.Presets)*s.Points*len(schemes)*reps)
	for _, preset := range s.Presets {
		for pt := 0; pt < s.Points; pt++ {
			for _, scheme := range schemes {
				for rep := 0; rep < reps; rep++ {
					out = append(out, Cell{
						Experiment: s.Experiment,
						Preset:     preset,
						Point:      pt,
						Scheme:     scheme,
						Replicate:  rep,
						Seed: stats.DeriveSeed(s.BaseSeed, s.Experiment, preset,
							strconv.Itoa(pt), scheme, strconv.Itoa(rep)),
						TraceSeed: s.BaseSeed + int64(rep),
					})
				}
			}
		}
	}
	return out
}

// Run evaluates every cell of the grid on the worker pool and returns the
// assembled result. The first failing cell (in grid order) determines the
// returned error; remaining cells are abandoned.
func (s Sweep) Run(fn CellFunc) (*SweepResult, error) {
	if s.Points <= 0 {
		return nil, fmt.Errorf("expt: sweep %s has no points", s.Experiment)
	}
	if len(s.Presets) == 0 {
		return nil, fmt.Errorf("expt: sweep %s has no presets", s.Experiment)
	}
	cells := s.cells()
	runs := make([][]float64, len(cells))
	errs := make([]error, len(cells))
	s.Obs.CellQueued(len(cells))

	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := s.workers(len(cells)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					s.Obs.CellDone()
					continue // drain: a cell already failed
				}
				v, err := fn(cells[i])
				runs[i], errs[i] = v, err
				if err != nil {
					failed.Store(true)
				}
				s.Obs.CellDone()
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			c := cells[i]
			return nil, fmt.Errorf("expt: %s preset=%s point=%d scheme=%q replicate=%d: %w",
				c.Experiment, c.Preset, c.Point, c.Scheme, c.Replicate, err)
		}
	}
	width := -1
	for i, v := range runs {
		if width == -1 {
			width = len(v)
		}
		if len(v) != width {
			c := cells[i]
			return nil, fmt.Errorf("expt: %s preset=%s point=%d scheme=%q: metric vector length %d, want %d",
				c.Experiment, c.Preset, c.Point, c.Scheme, len(v), width)
		}
	}
	return &SweepResult{sweep: s, reps: s.replicates(), width: width, runs: runs}, nil
}

// SweepResult holds every cell's metric vectors, addressable by grid
// coordinates (preset index, point, scheme index, metric index).
type SweepResult struct {
	sweep Sweep
	reps  int
	width int
	runs  [][]float64 // grid order, replicate innermost
}

// Replicates returns the number of runs per cell.
func (r *SweepResult) Replicates() int { return r.reps }

// Metrics returns the per-cell metric vector length.
func (r *SweepResult) Metrics() int { return r.width }

func (r *SweepResult) base(preset, point, scheme int) int {
	nSchemes := len(r.sweep.schemes())
	if preset < 0 || preset >= len(r.sweep.Presets) ||
		point < 0 || point >= r.sweep.Points ||
		scheme < 0 || scheme >= nSchemes {
		panic(fmt.Sprintf("expt: sweep cell (%d,%d,%d) out of grid", preset, point, scheme))
	}
	return ((preset*r.sweep.Points+point)*nSchemes + scheme) * r.reps
}

// metricRuns collects the replicate values of one metric in one cell.
func (r *SweepResult) metricRuns(preset, point, scheme, metric int) []float64 {
	if metric < 0 || metric >= r.width {
		panic(fmt.Sprintf("expt: metric %d out of range (%d metrics)", metric, r.width))
	}
	base := r.base(preset, point, scheme)
	out := make([]float64, r.reps)
	for rep := 0; rep < r.reps; rep++ {
		out[rep] = r.runs[base+rep][metric]
	}
	return out
}

// Mean returns the replicate mean of one cell metric.
func (r *SweepResult) Mean(preset, point, scheme, metric int) float64 {
	return stats.Mean(r.metricRuns(preset, point, scheme, metric))
}

// Stderr returns the standard error of the replicate mean (0 for a single
// replicate).
func (r *SweepResult) Stderr(preset, point, scheme, metric int) float64 {
	xs := r.metricRuns(preset, point, scheme, metric)
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := stats.Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
}

// CI95 returns the 95% confidence half-width of the replicate mean.
func (r *SweepResult) CI95(preset, point, scheme, metric int) float64 {
	return stats.CI95(r.metricRuns(preset, point, scheme, metric))
}

// Value returns the cell metric as a table cell: the plain value for a
// single replicate, "mean±stderr" otherwise.
func (r *SweepResult) Value(preset, point, scheme, metric int) any {
	if r.reps == 1 {
		return r.Mean(preset, point, scheme, metric)
	}
	return fmt.Sprintf("%s±%s",
		CellValue(r.Mean(preset, point, scheme, metric)),
		CellValue(r.Stderr(preset, point, scheme, metric)))
}

// TraceCache memoizes generated traces by (name, seed) so a sweep's cells
// — and successive experiments over the same preset — share one immutable
// trace instead of regenerating it. Generation is single-flight: under a
// concurrent sweep exactly one worker generates, the rest wait.
type TraceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry
}

type traceKey struct {
	name string
	seed int64
}

type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: make(map[traceKey]*traceEntry)}
}

// Get returns the cached trace for a mobility preset and seed, generating
// it on first use.
func (c *TraceCache) Get(preset string, seed int64) (*trace.Trace, error) {
	return c.GetFunc(preset, seed, func(seed int64) (*trace.Trace, error) {
		g, err := mobility.Preset(preset)
		if err != nil {
			return nil, err
		}
		return g.Generate(seed)
	})
}

// GetFunc returns the cached trace under (key, seed), invoking gen exactly
// once per key to produce it. The caller promises gen is deterministic for
// the key and that the returned trace is never mutated.
func (c *TraceCache) GetFunc(key string, seed int64, gen func(seed int64) (*trace.Trace, error)) (*trace.Trace, error) {
	k := traceKey{name: key, seed: seed}
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &traceEntry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.tr, e.err = gen(seed)
	})
	return e.tr, e.err
}

// Len reports how many traces the cache holds (including failed entries).
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached trace.
func (c *TraceCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[traceKey]*traceEntry)
}

// sharedTraces is the process-wide cache the experiment suite runs on.
var sharedTraces = NewTraceCache()
