package expt

import (
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"freshcache/internal/eventsim"
	"freshcache/internal/mobility"
	"freshcache/internal/network"
	"freshcache/internal/obs"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// This file is the deterministic worker-pool sweep runner the hot
// experiments fan out on. A Sweep enumerates one experiment's
// (preset × sweep point × scheme × replicate) cell grid in a fixed order,
// evaluates every cell on min(GOMAXPROCS, Parallel) workers, and assembles
// the results by cell index — so tables are byte-identical to a sequential
// run regardless of scheduling. Determinism rests on two invariants:
// every cell derives its own RNG seed from its grid coordinates (no shared
// mutable randomness), and generated traces are immutable once published
// by the cache (cells only read them).

// Cell identifies one unit of work in a sweep grid and carries its derived
// randomness.
type Cell struct {
	Experiment string
	Preset     string
	Point      int // index into the sweep's point axis
	Scheme     string
	Replicate  int

	// Seed drives the cell's protocol and workload randomness. It is
	// derived from (base seed, experiment, preset, point, scheme,
	// replicate) via stats.DeriveSeed, so it does not depend on which
	// worker runs the cell or in what order.
	Seed int64
	// TraceSeed seeds trace generation. It depends only on the base seed
	// and the replicate (via TraceSeedFor), so all cells of one replicate
	// share a trace: scheme and sweep-point comparisons are paired (common
	// trace), and the shared cache generates each trace once per process
	// instead of per cell.
	TraceSeed int64
}

// TraceSeedFor derives the trace-generation seed for one replicate as a
// namespaced child of the base seed. The naive base+replicate scheme it
// replaces aliased RNG streams across nearby base seeds (base S with
// replicate 1 collided with base S+1, replicate 0); hashing through
// DeriveSeed keeps the replicate-paired-trace property while making
// distinct (base, replicate) pairs independent. Changing this derivation
// changed every generated trace, so all experiment tables shifted relative
// to runs recorded before the fix.
func TraceSeedFor(base int64, rep int) int64 {
	return stats.DeriveSeed(base, "trace", strconv.Itoa(rep))
}

// CellFunc evaluates one cell and returns its metric vector. Every cell of
// a sweep must return the same number of metrics.
type CellFunc func(c Cell) ([]float64, error)

// Sweep describes one experiment's cell grid and its execution policy.
type Sweep struct {
	// Experiment is the stable ID mixed into every cell seed.
	Experiment string
	// Presets, Points and Schemes span the grid. An empty scheme axis
	// means a single implicit scheme "".
	Presets []string
	Points  int
	Schemes []string
	// Replicates is the number of independent runs per cell (default 1).
	// With R > 1 the result reports mean ± stderr.
	Replicates int
	// Parallel bounds the worker pool; the effective pool size is
	// min(GOMAXPROCS, Parallel), and 0 means GOMAXPROCS.
	Parallel int
	// BaseSeed is the experiment's base seed.
	BaseSeed int64
	// Obs, when non-nil, tracks sweep progress (cells queued/done, queue
	// depth) in its registry. Cell-level tracing is the cell body's job.
	Obs *obs.Observer

	// Journal, when non-nil, checkpoints each completed cell's metric
	// vector (synced record by record) and replays matching completed
	// cells instead of re-executing them, making interrupted runs
	// resumable with byte-identical output.
	Journal *Journal
	// Ledger, when non-nil, accounts every cell's disposition (executed,
	// replayed, failed, skipped) and collects the failure roster across
	// the run's sweeps.
	Ledger *Ledger
	// Retries is the bounded per-cell retry budget: a failing cell
	// (error or recovered panic) is re-attempted up to Retries more
	// times before it counts as a permanent failure.
	Retries int
	// KeepGoing switches the runner from fail-fast to degradation mode:
	// permanent cell failures no longer abort the sweep — the rest of the
	// grid still runs, failed cells leave explicit NA holes in the
	// assembled tables, and the failures land in the Ledger's roster.
	KeepGoing bool
	// Costs, when non-nil, records each executed cell's wall time and
	// attempts (plus alloc deltas and optional CPU profiles at a single
	// worker) for the cross-run results store. Measurement happens at cell
	// boundaries only; the simulation hot path is untouched.
	Costs *CellCosts
}

func (s Sweep) schemes() []string {
	if len(s.Schemes) == 0 {
		return []string{""}
	}
	return s.Schemes
}

func (s Sweep) replicates() int {
	if s.Replicates < 1 {
		return 1
	}
	return s.Replicates
}

func (s Sweep) workers(cells int) int {
	w := s.Parallel
	if w < 1 || w > runtime.GOMAXPROCS(0) {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// cells enumerates the grid in deterministic order: preset-major, then
// point, scheme, replicate.
func (s Sweep) cells() []Cell {
	schemes := s.schemes()
	reps := s.replicates()
	out := make([]Cell, 0, len(s.Presets)*s.Points*len(schemes)*reps)
	for _, preset := range s.Presets {
		for pt := 0; pt < s.Points; pt++ {
			for _, scheme := range schemes {
				for rep := 0; rep < reps; rep++ {
					out = append(out, Cell{
						Experiment: s.Experiment,
						Preset:     preset,
						Point:      pt,
						Scheme:     scheme,
						Replicate:  rep,
						Seed: stats.DeriveSeed(s.BaseSeed, s.Experiment, preset,
							strconv.Itoa(pt), scheme, strconv.Itoa(rep)),
						TraceSeed: TraceSeedFor(s.BaseSeed, rep),
					})
				}
			}
		}
	}
	return out
}

// PanicError is the typed per-cell error a recovered CellFunc panic turns
// into: the process survives, the sweep reports the cell as failed, and
// the panic value plus its stack ride along for diagnosis.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("cell panicked: %v\n%s", e.Value, e.Stack)
}

// cellStatus is one grid cell's terminal disposition.
type cellStatus uint8

const (
	cellExecuted cellStatus = iota // ran to completion in this process
	cellReplayed                   // result replayed from the checkpoint journal
	cellFailed                     // failed permanently (after retries)
	cellSkipped                    // drained without running after a fail-fast failure
)

// callCell invokes fn for one cell with panics recovered into a
// *PanicError, so a crashing cell body can never take down the process.
func callCell(fn CellFunc, c Cell) (v []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(c)
}

// runCell evaluates one cell under the sweep's retry policy and returns
// the result, the final error (nil on success) and the attempts made.
func (s Sweep) runCell(fn CellFunc, c Cell) ([]float64, error, int) {
	attempts := 1 + s.Retries
	if attempts < 1 {
		attempts = 1
	}
	var (
		v   []float64
		err error
	)
	for a := 1; a <= attempts; a++ {
		v, err = callCell(fn, c)
		if err == nil {
			return v, nil, a
		}
		if a < attempts {
			slog.Debug("retrying sweep cell",
				"experiment", c.Experiment, "preset", c.Preset, "point", c.Point,
				"scheme", c.Scheme, "replicate", c.Replicate,
				"attempt", a, "budget", attempts, "err", err)
		}
	}
	return nil, err, attempts
}

// cellErr wraps a cell failure with its grid coordinates.
func cellErr(c Cell, err error) error {
	return fmt.Errorf("expt: %s preset=%s point=%d scheme=%q replicate=%d: %w",
		c.Experiment, c.Preset, c.Point, c.Scheme, c.Replicate, err)
}

// Run evaluates every cell of the grid on the worker pool and returns the
// assembled result.
//
// Failure policy: a cell that panics is recovered into a typed error and a
// failing cell is retried up to Retries times. By default the sweep is
// fail-fast — the first permanently failing cell (in grid order)
// determines the returned error and remaining cells are drained as
// skipped. With KeepGoing the whole grid still runs: failed cells leave NA
// holes in the result, the failures are recorded in the Ledger, and the
// returned error is nil (degradation is the caller's policy decision).
//
// Checkpointing: with a Journal attached, cells whose completed results
// are already journaled (matching identity, seeds and sweep fingerprint)
// are replayed without executing, and each newly completed cell is
// appended and synced before the sweep moves on.
func (s Sweep) Run(fn CellFunc) (*SweepResult, error) {
	if s.Points <= 0 {
		return nil, fmt.Errorf("expt: sweep %s has no points", s.Experiment)
	}
	if len(s.Presets) == 0 {
		return nil, fmt.Errorf("expt: sweep %s has no presets", s.Experiment)
	}
	cells := s.cells()
	fp := s.Fingerprint()
	runs := make([][]float64, len(cells))
	errs := make([]error, len(cells))
	status := make([]cellStatus, len(cells))
	s.Obs.CellQueued(len(cells))
	s.Ledger.addQueued(len(cells))

	// Replay journaled cells first: they cost nothing, and the worker pool
	// then only sees the remainder.
	var pending []int
	replayed := 0
	for i, c := range cells {
		if v, ok := s.Journal.Lookup(c, fp); ok {
			runs[i] = v
			status[i] = cellReplayed
			replayed++
			s.Obs.CellReplayed()
			continue
		}
		pending = append(pending, i)
	}
	s.Ledger.addReplayed(replayed)

	var failed atomic.Bool // a cell failed permanently (fail-fast drain signal)
	var (
		jmu        sync.Mutex
		journalErr error // first checkpoint-append failure, if any
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	// Single-worker detection gates alloc/profile measurement: ReadMemStats
	// deltas and the process-global CPU profiler only attribute correctly
	// when no other cell runs concurrently.
	single := s.workers(len(pending)) == 1
	for w := s.workers(len(pending)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if !s.KeepGoing && failed.Load() {
					status[i] = cellSkipped
					s.Ledger.addSkipped()
					s.Obs.CellSkipped()
					continue // drain: a cell already failed
				}
				var (
					v        []float64
					err      error
					attempts int
				)
				if s.Costs != nil {
					v, err, attempts = s.Costs.measureCell(s, fn, cells[i], single)
				} else {
					v, err, attempts = s.runCell(fn, cells[i])
				}
				if err != nil {
					errs[i] = err
					status[i] = cellFailed
					failed.Store(true)
					s.Ledger.addFailure(cells[i], err, attempts)
					s.Obs.CellFailed()
					continue
				}
				runs[i] = v
				status[i] = cellExecuted
				s.Ledger.addExecuted(attempts)
				if jerr := s.Journal.Record(cells[i], fp, v); jerr != nil {
					// A broken checkpoint must not pass silently: the run
					// finishes, but Run reports the journal failure.
					jmu.Lock()
					if journalErr == nil {
						journalErr = jerr
					}
					jmu.Unlock()
				}
				s.Obs.CellDone()
			}
		}()
	}
	for _, i := range pending {
		idx <- i
	}
	close(idx)
	wg.Wait()

	if !s.KeepGoing {
		for i, err := range errs {
			if err != nil {
				return nil, cellErr(cells[i], err)
			}
		}
	}
	width := 0
	for i, v := range runs {
		if v == nil {
			continue // failed or skipped cell: NA hole
		}
		if width == 0 {
			width = len(v)
		}
		if len(v) != width {
			c := cells[i]
			return nil, fmt.Errorf("expt: %s preset=%s point=%d scheme=%q: metric vector length %d, want %d",
				c.Experiment, c.Preset, c.Point, c.Scheme, len(v), width)
		}
	}
	if journalErr != nil {
		return nil, journalErr
	}
	res := &SweepResult{sweep: s, reps: s.replicates(), width: width, runs: runs, status: status, cells: cells}
	return res, nil
}

// SweepResult holds every cell's metric vectors, addressable by grid
// coordinates (preset index, point, scheme index, metric index). Under
// KeepGoing, failed or skipped cells hold no vector: aggregates are taken
// over the surviving replicates, and a cell with none renders as an
// explicit "NA" hole.
type SweepResult struct {
	sweep  Sweep
	reps   int
	width  int
	runs   [][]float64 // grid order, replicate innermost; nil = failed/skipped
	status []cellStatus
	cells  []Cell
}

// Replicates returns the number of runs per cell.
func (r *SweepResult) Replicates() int { return r.reps }

// Metrics returns the per-cell metric vector length.
func (r *SweepResult) Metrics() int { return r.width }

func (r *SweepResult) base(preset, point, scheme int) int {
	nSchemes := len(r.sweep.schemes())
	if preset < 0 || preset >= len(r.sweep.Presets) ||
		point < 0 || point >= r.sweep.Points ||
		scheme < 0 || scheme >= nSchemes {
		panic(fmt.Sprintf("expt: sweep cell (%d,%d,%d) out of grid", preset, point, scheme))
	}
	return ((preset*r.sweep.Points+point)*nSchemes + scheme) * r.reps
}

// metricRuns collects the replicate values of one metric in one cell,
// skipping replicates lost to failures (keep-going NA holes); the result
// may therefore be shorter than the replicate count, or empty.
func (r *SweepResult) metricRuns(preset, point, scheme, metric int) []float64 {
	if r.width == 0 {
		// Every cell of the sweep failed; any metric index is a hole.
		r.base(preset, point, scheme) // still bounds-check the coordinates
		return nil
	}
	if metric < 0 || metric >= r.width {
		panic(fmt.Sprintf("expt: metric %d out of range (%d metrics)", metric, r.width))
	}
	base := r.base(preset, point, scheme)
	out := make([]float64, 0, r.reps)
	for rep := 0; rep < r.reps; rep++ {
		if v := r.runs[base+rep]; v != nil {
			out = append(out, v[metric])
		}
	}
	return out
}

// Mean returns the replicate mean of one cell metric (NaN when every
// replicate of the cell failed; tables render that as "NA").
func (r *SweepResult) Mean(preset, point, scheme, metric int) float64 {
	return stats.Mean(r.metricRuns(preset, point, scheme, metric))
}

// Stderr returns the standard error of the replicate mean (0 for a single
// replicate).
func (r *SweepResult) Stderr(preset, point, scheme, metric int) float64 {
	xs := r.metricRuns(preset, point, scheme, metric)
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := stats.Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
}

// CI95 returns the 95% confidence half-width of the replicate mean.
func (r *SweepResult) CI95(preset, point, scheme, metric int) float64 {
	return stats.CI95(r.metricRuns(preset, point, scheme, metric))
}

// Value returns the cell metric as a table cell: the plain value for a
// single replicate, "mean±stderr" otherwise, and the explicit "NA" hole
// when every replicate of the cell failed.
func (r *SweepResult) Value(preset, point, scheme, metric int) any {
	xs := r.metricRuns(preset, point, scheme, metric)
	if len(xs) == 0 {
		return "NA"
	}
	if r.reps == 1 {
		return r.Mean(preset, point, scheme, metric)
	}
	return fmt.Sprintf("%s±%s",
		CellValue(r.Mean(preset, point, scheme, metric)),
		CellValue(r.Stderr(preset, point, scheme, metric)))
}

// FailedCells returns the grid cells that failed permanently, in grid
// order (empty for a fully successful sweep).
func (r *SweepResult) FailedCells() []Cell {
	var out []Cell
	for i, st := range r.status {
		if st == cellFailed {
			out = append(out, r.cells[i])
		}
	}
	return out
}

// ReplayedCells reports how many cells were replayed from the checkpoint
// journal instead of executing.
func (r *SweepResult) ReplayedCells() int {
	n := 0
	for _, st := range r.status {
		if st == cellReplayed {
			n++
		}
	}
	return n
}

// TraceCache memoizes generated traces by (name, seed) so a sweep's cells
// — and successive experiments over the same preset — share one immutable
// trace instead of regenerating it. Generation is single-flight: under a
// concurrent sweep exactly one worker generates, the rest wait.
type TraceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry
}

type traceKey struct {
	name string
	seed int64
}

type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
	// tlOnce/tl lazily compile the trace's static contact timeline
	// (network.CompileTimeline) the first time a caller asks for it; the
	// compiled slice is immutable and shared read-only across every
	// replicate and sweep cell replaying the trace.
	tlOnce sync.Once
	tl     []eventsim.StaticEvent
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: make(map[traceKey]*traceEntry)}
}

// Get returns the cached trace for a mobility preset and seed, generating
// it on first use.
func (c *TraceCache) Get(preset string, seed int64) (*trace.Trace, error) {
	return c.GetFunc(preset, seed, func(seed int64) (*trace.Trace, error) {
		g, err := mobility.Preset(preset)
		if err != nil {
			return nil, err
		}
		return g.Generate(seed)
	})
}

// GetFunc returns the cached trace under (key, seed), invoking gen exactly
// once per key to produce it. The caller promises gen is deterministic for
// the key and that the returned trace is never mutated.
func (c *TraceCache) GetFunc(key string, seed int64, gen func(seed int64) (*trace.Trace, error)) (*trace.Trace, error) {
	e := c.entry(key, seed)
	e.once.Do(func() {
		e.tr, e.err = gen(seed)
	})
	return e.tr, e.err
}

// GetFuncCompiled is GetFunc plus the trace's compiled static contact
// timeline, compiled exactly once per cache entry and shared read-only —
// so a sweep pays the O(contacts) compile once per (trace, seed) instead
// of once per cell.
func (c *TraceCache) GetFuncCompiled(key string, seed int64, gen func(seed int64) (*trace.Trace, error)) (*trace.Trace, []eventsim.StaticEvent, error) {
	e := c.entry(key, seed)
	e.once.Do(func() {
		e.tr, e.err = gen(seed)
	})
	if e.err != nil {
		return nil, nil, e.err
	}
	e.tlOnce.Do(func() {
		e.tl = network.CompileTimeline(e.tr)
	})
	return e.tr, e.tl, nil
}

// GetCompiled is Get plus the shared compiled contact timeline.
func (c *TraceCache) GetCompiled(preset string, seed int64) (*trace.Trace, []eventsim.StaticEvent, error) {
	return c.GetFuncCompiled(preset, seed, func(seed int64) (*trace.Trace, error) {
		g, err := mobility.Preset(preset)
		if err != nil {
			return nil, err
		}
		return g.Generate(seed)
	})
}

func (c *TraceCache) entry(key string, seed int64) *traceEntry {
	k := traceKey{name: key, seed: seed}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		e = &traceEntry{}
		c.entries[k] = e
	}
	return e
}

// Len reports how many traces the cache holds (including failed entries).
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached trace.
func (c *TraceCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[traceKey]*traceEntry)
}

// sharedTraces is the process-wide cache the experiment suite runs on.
var sharedTraces = NewTraceCache()
