package expt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"freshcache/internal/metrics"
	"freshcache/internal/obs"
)

// runQuickE2Obs runs the quick E2 sweep with the given worker bound and
// returns the observer's flushed JSONL and Chrome trace bytes plus the
// rendered tables.
func runQuickE2Obs(t *testing.T, parallel int) (jsonl, chrome []byte, tables []*Table) {
	t.Helper()
	e, err := ByID("E2")
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Config{SampleEvery: 4})
	tables, err = e.Run(Options{
		Seed: 42, Quick: true, Parallel: parallel,
		Stats: metrics.NewRunStats(), Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	var jl, ct bytes.Buffer
	if err := o.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteChromeTrace(&ct); err != nil {
		t.Fatal(err)
	}
	return jl.Bytes(), ct.Bytes(), tables
}

// TestObsTraceDeterministicAcrossParallel is the golden determinism check:
// with observability on, the flushed event trace and Chrome trace must be
// byte-identical whether the sweep ran on one worker or eight.
func TestObsTraceDeterministicAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick E2 sweep twice")
	}
	jl1, ct1, tb1 := runQuickE2Obs(t, 1)
	jl8, ct8, tb8 := runQuickE2Obs(t, 8)
	if len(jl1) == 0 {
		t.Fatal("no trace events emitted")
	}
	if !bytes.Equal(jl1, jl8) {
		t.Fatalf("JSONL trace diverged across -parallel (1: %d bytes, 8: %d bytes)", len(jl1), len(jl8))
	}
	if !bytes.Equal(ct1, ct8) {
		t.Fatalf("Chrome trace diverged across -parallel (1: %d bytes, 8: %d bytes)", len(ct1), len(ct8))
	}
	if len(tb1) != len(tb8) || tb1[0].CSV() != tb8[0].CSV() {
		t.Fatal("tables diverged across -parallel")
	}

	// Every JSONL line is valid standalone JSON with a run label matching
	// the cell-label scheme.
	lines := strings.Split(strings.TrimSpace(string(jl1)), "\n")
	for _, line := range lines[:min(len(lines), 50)] {
		var m struct {
			Run  string  `json:"run"`
			T    float64 `json:"t"`
			Kind string  `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if !strings.HasPrefix(m.Run, "E2/") || m.Kind == "" {
			t.Fatalf("unexpected trace record: %q", line)
		}
	}

	// The Chrome export must be one valid JSON document.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(ct1, &doc); err != nil {
		t.Fatalf("Chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Chrome trace empty")
	}
}

// runQuickE2Lineage runs the quick E2 sweep with lineage and timeline
// collection on and returns the flushed lineage JSONL and timeline CSV.
func runQuickE2Lineage(t *testing.T, parallel int) (lineage, timeline []byte) {
	t.Helper()
	e, err := ByID("E2")
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Config{SampleEvery: 64, Lineage: true, TimelineTick: 6 * 3600})
	if _, err := e.Run(Options{Seed: 42, Quick: true, Parallel: parallel,
		Stats: metrics.NewRunStats(), Obs: o}); err != nil {
		t.Fatal(err)
	}
	var lj, tc bytes.Buffer
	if err := o.WriteLineageJSONL(&lj); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteTimelineCSV(&tc); err != nil {
		t.Fatal(err)
	}
	return lj.Bytes(), tc.Bytes()
}

// TestLineageTimelineDeterministicAcrossParallel extends the golden
// determinism check to the new exports: lineage spans and timeline samples
// must be byte-identical across worker counts.
func TestLineageTimelineDeterministicAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick E2 sweep twice")
	}
	lj1, tc1 := runQuickE2Lineage(t, 1)
	lj8, tc8 := runQuickE2Lineage(t, 8)
	if len(lj1) == 0 || len(tc1) == 0 {
		t.Fatalf("no lineage (%d bytes) or timeline (%d bytes) emitted", len(lj1), len(tc1))
	}
	if !bytes.Equal(lj1, lj8) {
		t.Fatalf("lineage diverged across -parallel (1: %d bytes, 8: %d bytes)", len(lj1), len(lj8))
	}
	if !bytes.Equal(tc1, tc8) {
		t.Fatalf("timeline diverged across -parallel (1: %d bytes, 8: %d bytes)", len(tc1), len(tc8))
	}

	// The export must parse back, carry sweep cell labels, and every run's
	// span set must form well-parented trees: a delivery hangs off a
	// generation through at least one edge.
	records, err := obs.ReadSpansJSONL(bytes.NewReader(lj1))
	if err != nil {
		t.Fatalf("lineage round-trip: %v", err)
	}
	perRun := map[string][]obs.SpanRecord{}
	for _, rec := range records {
		if !strings.HasPrefix(rec.Run, "E2/") {
			t.Fatalf("unexpected run label %q", rec.Run)
		}
		perRun[rec.Run] = append(perRun[rec.Run], rec)
	}
	deliveries := 0
	for run, recs := range perRun {
		tree := obs.BuildSpanTree(recs)
		if len(tree.Roots) == 0 {
			t.Fatalf("%s: no generation roots", run)
		}
		for _, rec := range recs {
			if rec.Kind == obs.SpanDelivery {
				deliveries++
				if d := tree.Depth(rec.ID); d < 1 {
					t.Fatalf("%s: delivery span %d has depth %d", run, rec.ID, d)
				}
			}
		}
	}
	if deliveries == 0 {
		t.Fatal("no delivery spans in the whole sweep")
	}

	tls, err := obs.ReadTimelineCSV(bytes.NewReader(tc1))
	if err != nil {
		t.Fatalf("timeline round-trip: %v", err)
	}
	series := map[string]bool{}
	for _, rec := range tls {
		series[rec.Series] = true
	}
	for _, want := range []string{"freshness_ratio", "contacts", "copy_age"} {
		if !series[want] {
			t.Fatalf("timeline missing series %q (have %v)", want, series)
		}
	}
}

// TestObsRollupsPopulated checks the sweep-level registry and per-scheme
// roll-ups fill in during a real run.
func TestObsRollupsPopulated(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick E2 sweep")
	}
	e, err := ByID("E2")
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Config{SampleEvery: 16})
	if _, err := e.Run(Options{Seed: 42, Quick: true, Parallel: 4, Stats: metrics.NewRunStats(), Obs: o}); err != nil {
		t.Fatal(err)
	}
	reg := o.Registry()
	queued := reg.Counter("sweep/cells_queued").Value()
	done := reg.Counter("sweep/cells_done").Value()
	if queued == 0 || queued != done {
		t.Fatalf("cells queued=%d done=%d", queued, done)
	}
	if reg.Counter("engine/contacts").Value() == 0 {
		t.Fatal("engine/contacts counter never incremented")
	}
	if reg.Counter("engine/deliveries").Value() == 0 {
		t.Fatal("engine/deliveries counter never incremented")
	}
	if reg.Histogram("eventsim/queue_depth", nil).Count() == 0 {
		t.Fatal("queue-depth histogram never observed")
	}
	rollups := o.SchemeRollups()
	if len(rollups) == 0 {
		t.Fatal("no scheme rollups")
	}
	for _, ru := range rollups {
		if ru.Runs == 0 || ru.DeliveryDelayHist == nil {
			t.Fatalf("rollup incomplete: %+v", ru)
		}
	}
	st := o.Stats()
	if st.Runs == 0 || st.Seen == 0 {
		t.Fatalf("event stats empty: %+v", st)
	}
}

// TestE10TimingsOptIn: the wall-clock column appears only with
// Options.Timings, keeping default output machine-independent.
func TestE10TimingsOptIn(t *testing.T) {
	if testing.Short() {
		t.Skip("runs E10 twice")
	}
	e, err := ByID("E10")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.Run(Options{Seed: 42, Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	timed, err := e.Run(Options{Seed: 42, Quick: true, Parallel: 4, Timings: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain[0].CSV(), "wallClock") {
		t.Fatalf("default E10 has wall-clock column:\n%s", plain[0].CSV())
	}
	if !strings.Contains(timed[0].CSV(), "wallClock(s)") {
		t.Fatalf("-timings E10 missing wall-clock column:\n%s", timed[0].CSV())
	}
}
