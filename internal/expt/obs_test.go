package expt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"freshcache/internal/metrics"
	"freshcache/internal/obs"
)

// runQuickE2Obs runs the quick E2 sweep with the given worker bound and
// returns the observer's flushed JSONL and Chrome trace bytes plus the
// rendered tables.
func runQuickE2Obs(t *testing.T, parallel int) (jsonl, chrome []byte, tables []*Table) {
	t.Helper()
	e, err := ByID("E2")
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Config{SampleEvery: 4})
	tables, err = e.Run(Options{
		Seed: 42, Quick: true, Parallel: parallel,
		Stats: metrics.NewRunStats(), Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	var jl, ct bytes.Buffer
	if err := o.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteChromeTrace(&ct); err != nil {
		t.Fatal(err)
	}
	return jl.Bytes(), ct.Bytes(), tables
}

// TestObsTraceDeterministicAcrossParallel is the golden determinism check:
// with observability on, the flushed event trace and Chrome trace must be
// byte-identical whether the sweep ran on one worker or eight.
func TestObsTraceDeterministicAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick E2 sweep twice")
	}
	jl1, ct1, tb1 := runQuickE2Obs(t, 1)
	jl8, ct8, tb8 := runQuickE2Obs(t, 8)
	if len(jl1) == 0 {
		t.Fatal("no trace events emitted")
	}
	if !bytes.Equal(jl1, jl8) {
		t.Fatalf("JSONL trace diverged across -parallel (1: %d bytes, 8: %d bytes)", len(jl1), len(jl8))
	}
	if !bytes.Equal(ct1, ct8) {
		t.Fatalf("Chrome trace diverged across -parallel (1: %d bytes, 8: %d bytes)", len(ct1), len(ct8))
	}
	if len(tb1) != len(tb8) || tb1[0].CSV() != tb8[0].CSV() {
		t.Fatal("tables diverged across -parallel")
	}

	// Every JSONL line is valid standalone JSON with a run label matching
	// the cell-label scheme.
	lines := strings.Split(strings.TrimSpace(string(jl1)), "\n")
	for _, line := range lines[:min(len(lines), 50)] {
		var m struct {
			Run  string  `json:"run"`
			T    float64 `json:"t"`
			Kind string  `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if !strings.HasPrefix(m.Run, "E2/") || m.Kind == "" {
			t.Fatalf("unexpected trace record: %q", line)
		}
	}

	// The Chrome export must be one valid JSON document.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(ct1, &doc); err != nil {
		t.Fatalf("Chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Chrome trace empty")
	}
}

// TestObsRollupsPopulated checks the sweep-level registry and per-scheme
// roll-ups fill in during a real run.
func TestObsRollupsPopulated(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick E2 sweep")
	}
	e, err := ByID("E2")
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Config{SampleEvery: 16})
	if _, err := e.Run(Options{Seed: 42, Quick: true, Parallel: 4, Stats: metrics.NewRunStats(), Obs: o}); err != nil {
		t.Fatal(err)
	}
	reg := o.Registry()
	queued := reg.Counter("sweep/cells_queued").Value()
	done := reg.Counter("sweep/cells_done").Value()
	if queued == 0 || queued != done {
		t.Fatalf("cells queued=%d done=%d", queued, done)
	}
	if reg.Counter("engine/contacts").Value() == 0 {
		t.Fatal("engine/contacts counter never incremented")
	}
	if reg.Counter("engine/deliveries").Value() == 0 {
		t.Fatal("engine/deliveries counter never incremented")
	}
	if reg.Histogram("eventsim/queue_depth", nil).Count() == 0 {
		t.Fatal("queue-depth histogram never observed")
	}
	rollups := o.SchemeRollups()
	if len(rollups) == 0 {
		t.Fatal("no scheme rollups")
	}
	for _, ru := range rollups {
		if ru.Runs == 0 || ru.DeliveryDelayHist == nil {
			t.Fatalf("rollup incomplete: %+v", ru)
		}
	}
	st := o.Stats()
	if st.Runs == 0 || st.Seen == 0 {
		t.Fatalf("event stats empty: %+v", st)
	}
}

// TestE10TimingsOptIn: the wall-clock column appears only with
// Options.Timings, keeping default output machine-independent.
func TestE10TimingsOptIn(t *testing.T) {
	if testing.Short() {
		t.Skip("runs E10 twice")
	}
	e, err := ByID("E10")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.Run(Options{Seed: 42, Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	timed, err := e.Run(Options{Seed: 42, Quick: true, Parallel: 4, Timings: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain[0].CSV(), "wallClock") {
		t.Fatalf("default E10 has wall-clock column:\n%s", plain[0].CSV())
	}
	if !strings.Contains(timed[0].CSV(), "wallClock(s)") {
		t.Fatalf("-timings E10 missing wall-clock column:\n%s", timed[0].CSV())
	}
}
