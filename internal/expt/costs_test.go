package expt

import (
	"errors"
	"testing"
	"time"

	"freshcache/internal/obs"
)

// TestCellCostsRecorded: every executed cell lands in the collector with
// wall time and attempts; order out of the workers is irrelevant because
// Cells() sorts into grid order.
func TestCellCostsRecorded(t *testing.T) {
	costs := NewCellCosts(0, true)
	s := Sweep{
		Experiment: "cost-test",
		Presets:    []string{"a", "b"},
		Points:     2,
		Schemes:    []string{"x"},
		Parallel:   1,
		BaseSeed:   1,
		Costs:      costs,
	}
	if _, err := s.Run(func(c Cell) ([]float64, error) {
		return []float64{float64(c.Point)}, nil
	}); err != nil {
		t.Fatal(err)
	}
	cells := costs.Cells()
	if len(cells) != 4 {
		t.Fatalf("recorded %d cells, want 4", len(cells))
	}
	for i, c := range cells {
		if c.WallSeconds < 0 || c.Attempts != 1 {
			t.Errorf("cell %d: %+v", i, c)
		}
		if c.Mallocs == 0 {
			t.Errorf("cell %d: no alloc delta at single worker", i)
		}
	}
	// Grid order: preset-major.
	if cells[0].Preset != "a" || cells[0].Point != 0 || cells[3].Preset != "b" || cells[3].Point != 1 {
		t.Errorf("Cells() not grid-sorted: %+v", cells)
	}
}

// TestCellCostsParallelNoAllocs: at multiple workers wall time still
// records but alloc deltas are suppressed — they'd be cross-worker noise.
func TestCellCostsParallelNoAllocs(t *testing.T) {
	costs := NewCellCosts(0, false)
	s := Sweep{
		Experiment: "cost-par",
		Presets:    []string{"a"},
		Points:     4,
		Parallel:   4,
		BaseSeed:   1,
		Costs:      costs,
	}
	if _, err := s.Run(func(c Cell) ([]float64, error) {
		return []float64{1}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, c := range costs.Cells() {
		if c.Mallocs != 0 || c.AllocBytes != 0 {
			t.Errorf("alloc delta recorded without trackAllocs: %+v", c)
		}
	}
}

// TestCellCostsRetryAttempts: the attempts a retried cell consumed are
// attributed in its cost record and the ledger's retried counter.
func TestCellCostsRetryAttempts(t *testing.T) {
	costs := NewCellCosts(0, false)
	ledger := &Ledger{}
	fails := map[int]int{0: 2} // point 0 fails twice before succeeding
	s := Sweep{
		Experiment: "cost-retry",
		Presets:    []string{"a"},
		Points:     2,
		Parallel:   1,
		BaseSeed:   1,
		Retries:    2,
		Costs:      costs,
		Ledger:     ledger,
	}
	if _, err := s.Run(func(c Cell) ([]float64, error) {
		if fails[c.Point] > 0 {
			fails[c.Point]--
			return nil, errors.New("transient")
		}
		return []float64{1}, nil
	}); err != nil {
		t.Fatal(err)
	}
	cells := costs.Cells()
	if len(cells) != 2 || cells[0].Attempts != 3 || cells[1].Attempts != 1 {
		t.Fatalf("attempts not attributed: %+v", cells)
	}
	if snap := ledger.Snapshot(); snap.Retried != 2 {
		t.Errorf("ledger retried = %d, want 2", snap.Retried)
	}
}

// TestCellCostsProfiles: with profiling on, only the top-N most expensive
// cells' profiles are retained, most expensive first.
func TestCellCostsProfiles(t *testing.T) {
	costs := NewCellCosts(2, true)
	s := Sweep{
		Experiment: "cost-prof",
		Presets:    []string{"a"},
		Points:     4,
		Parallel:   1,
		BaseSeed:   1,
		Costs:      costs,
	}
	if _, err := s.Run(func(c Cell) ([]float64, error) {
		// Make wall time increase with the point index so top-N is stable.
		time.Sleep(time.Duration(c.Point+1) * 5 * time.Millisecond)
		return []float64{1}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := costs.ProfileErr(); err != nil {
		t.Fatalf("profiling failed: %v", err)
	}
	profs := costs.Profiles()
	if len(profs) != 2 {
		t.Fatalf("retained %d profiles, want 2", len(profs))
	}
	if profs[0].Cost.WallSeconds < profs[1].Cost.WallSeconds {
		t.Errorf("profiles not sorted most-expensive-first: %v vs %v",
			profs[0].Cost.WallSeconds, profs[1].Cost.WallSeconds)
	}
	if profs[0].Cost.Point != 3 {
		t.Errorf("most expensive profile is point %d, want 3", profs[0].Cost.Point)
	}
	for _, p := range profs {
		if len(p.Data) == 0 {
			t.Error("empty profile data")
		}
	}
}

// TestCellCostsNilSafe: a nil collector is inert.
func TestCellCostsNilSafe(t *testing.T) {
	var cc *CellCosts
	if cc.Cells() != nil || cc.Profiles() != nil || cc.ProfileErr() != nil || cc.measureAllocs() {
		t.Fatal("nil CellCosts not inert")
	}
	cc.add(obs.CellCost{}, nil)
}

// TestLedgerSnapshot: the snapshot reflects every disposition atomically
// and the ETA inputs (queued, executed-only rate base, start time).
func TestLedgerSnapshot(t *testing.T) {
	var l *Ledger
	if snap := l.Snapshot(); snap != (obs.Progress{}) {
		t.Fatalf("nil ledger snapshot = %+v", snap)
	}

	ledger := &Ledger{}
	ledger.addQueued(10)
	ledger.addReplayed(3)
	ledger.addExecuted(1)
	ledger.addExecuted(3) // 2 retries
	ledger.addSkipped()
	ledger.addFailure(Cell{Experiment: "x"}, errors.New("boom"), 2) // 1 retry
	snap := ledger.Snapshot()
	if snap.Queued != 10 || snap.Executed != 2 || snap.Replayed != 3 ||
		snap.Skipped != 1 || snap.Failed != 1 || snap.Retried != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Start.IsZero() {
		t.Fatal("snapshot missing start time")
	}

	// Replayed cells are settled but must not count as executable work:
	// remaining = queued - settled = 10 - 7 = 3.
	if got := snap.Queued - (snap.Executed + snap.Replayed + snap.Failed + snap.Skipped); got != 3 {
		t.Fatalf("remaining = %d, want 3", got)
	}
}

// TestLedgerSnapshotDuringSweep exercises Snapshot concurrently with a
// running sweep (the live endpoint's access pattern) — run with -race.
func TestLedgerSnapshotDuringSweep(t *testing.T) {
	ledger := &Ledger{}
	s := Sweep{
		Experiment: "snap-race",
		Presets:    []string{"a"},
		Points:     8,
		Parallel:   4,
		BaseSeed:   1,
		Ledger:     ledger,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			snap := ledger.Snapshot()
			if settled := snap.Executed + snap.Replayed + snap.Failed + snap.Skipped; settled > snap.Queued {
				t.Errorf("settled %d > queued %d", settled, snap.Queued)
				return
			}
		}
	}()
	if _, err := s.Run(func(c Cell) ([]float64, error) {
		return []float64{1}, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-done
	if snap := ledger.Snapshot(); snap.Executed != 8 || snap.Queued != 8 {
		t.Fatalf("final snapshot = %+v", snap)
	}
}
