package expt

import (
	"fmt"

	"freshcache/internal/cache"
	"freshcache/internal/centrality"
	"freshcache/internal/core"
	"freshcache/internal/eventsim"
	"freshcache/internal/metrics"
	"freshcache/internal/mobility"
	"freshcache/internal/obs"
	"freshcache/internal/trace"
)

// Scenario is the standard simulation configuration the experiments sweep
// over: one trace preset, a catalog of periodically refreshed items, the
// caching-node budget and the query workload.
type Scenario struct {
	TracePreset     string // "reality-like" or "infocom-like"
	NumItems        int
	RefreshInterval float64
	FreshnessWindow float64 // defaults to RefreshInterval
	Lifetime        float64 // defaults to 2×RefreshInterval
	NumCachingNodes int
	QueryRate       float64 // per node (1/s); 0 disables queries
	PReq            float64 // defaults to 0.9
	Seed            int64

	// Obs and Metrics thread per-run observability into the engine (both
	// nil when -obs is off). Lineage and Timeline are the causal span tree
	// and the simulated-time telemetry sampler (nil when -lineage /
	// -timeline-tick are off); TimelineTick is the sampling period in
	// simulated seconds (<= 0 = engine default).
	Obs          *obs.RunTrace
	Metrics      *obs.Registry
	Lineage      *obs.Lineage
	Timeline     *obs.Timeline
	TimelineTick float64

	// ContactTimeline is the pre-compiled contact timeline for the trace
	// handed to RunOnTrace (network.CompileTimeline); nil compiles on the
	// fly. Sweeps thread the TraceCache's shared copy here.
	ContactTimeline []eventsim.StaticEvent
	// Reuse recycles worker-local engine state across consecutive runs
	// (see core.Reuse). Only set when the engine is not inspected after
	// the run's results have been extracted.
	Reuse *core.Reuse
	// ReferenceScheduler forces the single-heap reference event core
	// (differential determinism tests only).
	ReferenceScheduler bool
	// RateBacking selects the engine's contact-rate representation
	// (dense matrix vs sorted neighbor lists); the zero value picks
	// automatically by node count.
	RateBacking centrality.Backing
}

// defaultScenario is the base point of every sweep, matching the paper
// family's setup: a handful of periodically refreshed items, K=8 caching
// nodes, per-node query rate of one query per 4 hours.
func defaultScenario(preset string, seed int64) Scenario {
	return Scenario{
		TracePreset:     preset,
		NumItems:        5,
		RefreshInterval: 4 * mobility.Hour,
		NumCachingNodes: 8,
		QueryRate:       1.0 / (4 * mobility.Hour),
		Seed:            seed,
	}
}

func (sc Scenario) withDefaults() Scenario {
	if sc.FreshnessWindow == 0 {
		sc.FreshnessWindow = sc.RefreshInterval
	}
	if sc.Lifetime == 0 {
		sc.Lifetime = 2 * sc.RefreshInterval
	}
	if sc.PReq == 0 {
		sc.PReq = 0.9
	}
	return sc
}

// buildCatalog assigns item sources to nodes 0..NumItems-1 (node IDs carry
// no structure in the generators, so this is an arbitrary deterministic
// assignment).
func (sc Scenario) buildCatalog() (*cache.Catalog, error) {
	sc = sc.withDefaults()
	items := make([]cache.Item, sc.NumItems)
	for i := range items {
		items[i] = cache.Item{
			ID:     cache.ItemID(i),
			Source: trace.NodeID(i),
			// Stagger publication within the cycle: real sources do not
			// all publish at the same instant, and aligning every
			// generation with the trace's midnight (where diurnal traces
			// have no contacts) would be a simulation artifact.
			Phase:           float64(i) * sc.RefreshInterval / float64(sc.NumItems),
			RefreshInterval: sc.RefreshInterval,
			FreshnessWindow: sc.FreshnessWindow,
			Lifetime:        sc.Lifetime,
			Size:            1,
		}
	}
	return cache.NewCatalog(items)
}

// Run executes the scenario with the given scheme, returning the result
// and the engine (for raw collector access).
func (sc Scenario) Run(scheme core.Scheme) (metrics.Result, *core.Engine, error) {
	sc = sc.withDefaults()
	gen, err := mobility.Preset(sc.TracePreset)
	if err != nil {
		return metrics.Result{}, nil, err
	}
	tr, err := gen.Generate(sc.Seed)
	if err != nil {
		return metrics.Result{}, nil, err
	}
	return sc.RunOnTrace(scheme, tr)
}

// RunOnTrace is Run with a pre-generated trace (so sweeps over non-trace
// parameters reuse one trace, matching trace-driven methodology).
func (sc Scenario) RunOnTrace(scheme core.Scheme, tr *trace.Trace) (metrics.Result, *core.Engine, error) {
	sc = sc.withDefaults()
	cat, err := sc.buildCatalog()
	if err != nil {
		return metrics.Result{}, nil, err
	}
	cfg := core.Config{
		Trace:           tr,
		Catalog:         cat,
		Scheme:          scheme,
		NumCachingNodes: sc.NumCachingNodes,
		PReq:            sc.PReq,
		Seed:            sc.Seed,
		Obs:             sc.Obs,
		Metrics:         sc.Metrics,
		Lineage:         sc.Lineage,
		Timeline:        sc.Timeline,
		TimelineTick:    sc.TimelineTick,

		ContactTimeline:    sc.ContactTimeline,
		Reuse:              sc.Reuse,
		ReferenceScheduler: sc.ReferenceScheduler,
		RateBacking:        sc.RateBacking,
	}
	if sc.QueryRate > 0 {
		cfg.Workload = cache.WorkloadConfig{QueryRate: sc.QueryRate, ZipfExponent: 1.0}
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return metrics.Result{}, nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return metrics.Result{}, nil, fmt.Errorf("expt: %s/%s: %w", scheme.Name(), tr.Name, err)
	}
	return res, eng, nil
}
