package expt

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Header: []string{"a", "bee"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "longer-cell")
	out := tab.Render()
	if !strings.Contains(out, "== T: demo ==") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "longer-cell") {
		t.Fatalf("missing cell: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d: %q", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow("plain", "with,comma")
	csv := tab.CSV()
	want := "a,b\nplain,\"with,comma\"\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestCellFormats(t *testing.T) {
	if CellValue(0.123456789) != "0.1235" {
		t.Fatalf("float cell = %q", CellValue(0.123456789))
	}
	if CellValue(42) != "42" {
		t.Fatalf("int cell = %q", CellValue(42))
	}
	if CellValue("s") != "s" {
		t.Fatalf("string cell = %q", CellValue("s"))
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for i := 1; i <= 10; i++ {
		id := "E" + string(rune('0'+i))
		if i == 10 {
			id = "E10"
		}
		if !ids[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E7")
	if err != nil || e.ID != "E7" {
		t.Fatalf("ByID: %+v %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestScenarioDefaults(t *testing.T) {
	sc := defaultScenario("reality-like", 1).withDefaults()
	if sc.FreshnessWindow != sc.RefreshInterval {
		t.Fatalf("window default: %v", sc.FreshnessWindow)
	}
	if sc.Lifetime != 2*sc.RefreshInterval {
		t.Fatalf("lifetime default: %v", sc.Lifetime)
	}
	if sc.PReq != 0.9 {
		t.Fatalf("preq default: %v", sc.PReq)
	}
}

func TestScenarioCatalog(t *testing.T) {
	sc := defaultScenario("reality-like", 1)
	cat, err := sc.buildCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != sc.NumItems {
		t.Fatalf("catalog len = %d", cat.Len())
	}
	it, err := cat.Item(3)
	if err != nil || int(it.Source) != 3 {
		t.Fatalf("item 3: %+v %v", it, err)
	}
}

// Smoke-run every experiment in Quick mode: each must produce at least one
// non-empty table.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(Options{Seed: 42, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("empty table %s", tab.Title)
				}
				if len(tab.Header) == 0 {
					t.Fatalf("headerless table %s", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Fatalf("ragged row in %s: %v", tab.Title, row)
					}
				}
				t.Log("\n" + tab.Render())
			}
		})
	}
}
