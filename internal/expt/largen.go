package expt

import (
	"fmt"

	"freshcache/internal/core"
	"freshcache/internal/mobility"
	"freshcache/internal/trace"
)

// largeNNodes is the full-size node count of E21; quick mode trims it so
// the smoke suite stays fast while still exercising the sparse path
// (both sizes are above centrality.AutoSparseThreshold and
// mobility's sparse sampling threshold).
const (
	largeNNodes      = 10000
	largeNQuickNodes = 2000
)

// largeNCommunity is the E21 trace: a community-structured network whose
// per-node contact load stays constant as N grows (fixed community size,
// O(1) expected inter-community partners per node), so contacts — and the
// sparse structures — scale as O(N), not O(N²).
func largeNCommunity(n int) *mobility.Community {
	return &mobility.Community{
		TraceName:   fmt.Sprintf("large-%d", n),
		N:           n,
		Duration:    4 * mobility.Day,
		Communities: n / 20,
		IntraRate:   4.0 / mobility.Day,
		InterRate:   1.0 / mobility.Day,
		RateShape:   0.8,
		// ~32 inter-community partners per node regardless of N: enough
		// cross-community edges that the caching overlay stays
		// contact-connected (two-hop relay paths exist), while contacts
		// still grow as O(N).
		InterPairFraction: 32.0 / float64(n),
		HubFraction:       0.05,
		HubBoost:          3,
		MeanContactDur:    120,
	}
}

// largeNTrace generates the E21 trace for the given size and seed.
func largeNTrace(n int, seed int64) (*trace.Trace, error) {
	return largeNCommunity(n).Generate(seed)
}

// runE21 pushes a large-N community trace through the full refresh/query
// pipeline — sparse rate estimation, NCL selection, hierarchy building,
// probabilistic replication and the query workload — end to end. It is
// the scale smoke test: N is far above the dense ceiling, so it only
// completes if no n² structure is allocated anywhere on the path.
func runE21(opts Options) ([]*Table, error) {
	n := largeNNodes
	if opts.Quick {
		n = largeNQuickNodes
	}
	g := largeNCommunity(n)
	tr, err := g.Generate(opts.Seed)
	if err != nil {
		return nil, err
	}
	header := []string{"nodes", "communities", "contacts", "events", "freshness", "validAnswers", "tx/version"}
	if opts.Timings {
		header = []string{"nodes", "communities", "contacts", "events", "wallClock(s)", "freshness", "validAnswers", "tx/version"}
	}
	t := &Table{
		ID: "E21", Title: "Large-N community trace through the full pipeline (hierarchical scheme)",
		Header: header,
	}
	sc := defaultScenario("reality-like", opts.Seed) // preset field unused by RunOnTrace
	sc.NumCachingNodes = 64
	// Inter-community rates bound the refresh delay (p50 around 5 h on
	// this trace), so the default 4 h freshness window is infeasible at
	// this scale; a 12 h cycle is the realistic operating point.
	sc.RefreshInterval = 12 * mobility.Hour
	sc.RateBacking = opts.RateBacking
	res, _, err := opts.runScenario(fmt.Sprintf("E21/large-%d", n), sc, core.NewHierarchical(), tr)
	if err != nil {
		return nil, err
	}
	row := []any{n, g.Communities, len(tr.Contacts), int(res.SimulatedEventCount)}
	if opts.Timings {
		row = append(row, res.WallClockSeconds)
	}
	row = append(row, res.FreshnessRatio, res.ValidAnswers, res.TxPerVersion)
	t.AddRow(row...)
	return []*Table{t}, nil
}
