package expt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// journalSweep is the fixed grid the checkpoint tests run on.
func journalSweep() Sweep {
	return Sweep{
		Experiment: "J", Presets: []string{"a", "b"}, Points: 2,
		Schemes: []string{"x"}, Replicates: 2, BaseSeed: 11, Parallel: 1,
	}
}

// journalCellFn returns a deterministic metric vector per cell and counts
// invocations, so tests can tell replayed cells from executed ones.
func journalCellFn(execs *atomic.Int32) CellFunc {
	return func(c Cell) ([]float64, error) {
		execs.Add(1)
		return []float64{float64(c.Point*100 + c.Replicate), float64(c.Seed % 97)}, nil
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s := journalSweep()
	fp := s.Fingerprint()
	cells := s.cells()
	for _, c := range cells {
		if err := j.Record(c, fp, []float64{float64(c.Point), 2}); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != len(cells) {
		t.Fatalf("Len = %d, want %d", j.Len(), len(cells))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(cells) {
		t.Fatalf("reloaded Len = %d, want %d", r.Len(), len(cells))
	}
	for _, c := range cells {
		v, ok := r.Lookup(c, fp)
		if !ok {
			t.Fatalf("cell %+v not replayed", c)
		}
		if len(v) != 2 || v[0] != float64(c.Point) || v[1] != 2 {
			t.Fatalf("cell %+v metrics = %v", c, v)
		}
	}
	// A mismatched fingerprint, seed or trace seed must miss.
	if _, ok := r.Lookup(cells[0], "deadbeef"); ok {
		t.Fatal("lookup matched a foreign fingerprint")
	}
	c := cells[0]
	c.Seed++
	if _, ok := r.Lookup(c, fp); ok {
		t.Fatal("lookup matched a mismatched cell seed")
	}
	c = cells[0]
	c.TraceSeed++
	if _, ok := r.Lookup(c, fp); ok {
		t.Fatal("lookup matched a mismatched trace seed")
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if j.Len() != 0 || j.Path() != "" {
		t.Fatal("nil journal not empty")
	}
	if _, ok := j.Lookup(Cell{}, "fp"); ok {
		t.Fatal("nil journal returned a record")
	}
	if err := j.Record(Cell{}, "fp", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalTornTrailingLine: a SIGKILL mid-append leaves a truncated last
// line; loading must keep every whole record and silently drop the torn one.
func TestJournalTornTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s := journalSweep()
	fp := s.Fingerprint()
	cells := s.cells()
	for _, c := range cells[:3] {
		if err := j.Record(c, fp, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: append half of a fourth record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"freshcache-checkpoint/1","experiment":"J","pre`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 3 {
		t.Fatalf("Len after torn line = %d, want 3", r.Len())
	}
	for _, c := range cells[:3] {
		if _, ok := r.Lookup(c, fp); !ok {
			t.Fatalf("whole record %+v lost to the torn line", c)
		}
	}
	// The journal must still be appendable after the torn tail.
	if err := r.Record(cells[3], fp, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatalf("Len after append = %d, want 4", r.Len())
	}
}

// TestJournalFreshRunTruncates: without -resume an existing journal is
// truncated, so a fresh run can never splice stale cells.
func TestJournalFreshRunTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	s := journalSweep()
	fp := s.Fingerprint()
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(s.cells()[0], fp, []float64{1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	fresh, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.Len() != 0 {
		t.Fatalf("fresh journal Len = %d", fresh.Len())
	}
	if b, err := os.ReadFile(path); err != nil || len(b) != 0 {
		t.Fatalf("fresh journal file not truncated: %d bytes, err %v", len(b), err)
	}
}

// TestSweepResumeDeterministic is the tentpole acceptance test: interrupt a
// journaled sweep partway, resume from the journal, and the resumed result
// must be identical to an uninterrupted run — with only the missing cells
// re-executed.
func TestSweepResumeDeterministic(t *testing.T) {
	s := journalSweep()
	var clean atomic.Int32
	want, err := s.Run(journalCellFn(&clean))
	if err != nil {
		t.Fatal(err)
	}
	total := int(clean.Load())

	// Phase 1: journaled run "killed" after half the cells — simulated by
	// truncating the journal file to its first half of lines, exactly what
	// a SIGKILL between appends leaves behind.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var phase1 atomic.Int32
	s1 := s
	s1.Journal = j
	if _, err := s1.Run(journalCellFn(&phase1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) != total {
		t.Fatalf("journal holds %d records, want %d", len(lines), total)
	}
	kept := lines[:total/2]
	if err := os.WriteFile(path, []byte(strings.Join(kept, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume. Only the lost half may execute.
	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var resumed atomic.Int32
	ledger := &Ledger{}
	s2 := s
	s2.Journal = r
	s2.Ledger = ledger
	got, err := s2.Run(journalCellFn(&resumed))
	if err != nil {
		t.Fatal(err)
	}
	if n := int(resumed.Load()); n != total-len(kept) {
		t.Fatalf("resume executed %d cells, want %d", n, total-len(kept))
	}
	if got.ReplayedCells() != len(kept) {
		t.Fatalf("replayed %d cells, want %d", got.ReplayedCells(), len(kept))
	}
	sum := ledger.Summary()
	if sum.CellsReplayed != len(kept) || sum.CellsExecuted != total-len(kept) ||
		sum.CellsFailed != 0 || sum.CellsSkipped != 0 {
		t.Fatalf("ledger summary = %+v", sum)
	}
	for pi := range s.Presets {
		for pt := 0; pt < s.Points; pt++ {
			for m := 0; m < want.Metrics(); m++ {
				if want.Value(pi, pt, 0, m) != got.Value(pi, pt, 0, m) {
					t.Fatalf("cell (%d,%d,0,%d): resumed %v != clean %v",
						pi, pt, m, got.Value(pi, pt, 0, m), want.Value(pi, pt, 0, m))
				}
			}
		}
	}
	// A full resume replays everything and executes nothing.
	r2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	var again atomic.Int32
	s3 := s
	s3.Journal = r2
	if _, err := s3.Run(journalCellFn(&again)); err != nil {
		t.Fatal(err)
	}
	if again.Load() != 0 {
		t.Fatalf("full resume still executed %d cells", again.Load())
	}
}

// TestSweepResumeRejectsChangedConfig: a journal written under one base
// seed (or grid shape) must not replay into a different configuration.
func TestSweepResumeRejectsChangedConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	s := journalSweep()
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int32
	s.Journal = j
	if _, err := s.Run(journalCellFn(&n)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	changed := journalSweep()
	changed.BaseSeed++ // different config → different fingerprint and seeds
	changed.Journal = r
	var m atomic.Int32
	res, err := changed.Run(journalCellFn(&m))
	if err != nil {
		t.Fatal(err)
	}
	if int(m.Load()) != len(changed.cells()) {
		t.Fatalf("changed config executed %d cells, want all %d", m.Load(), len(changed.cells()))
	}
	if res.ReplayedCells() != 0 {
		t.Fatalf("changed config replayed %d cells", res.ReplayedCells())
	}
	if s.Fingerprint() == changed.Fingerprint() {
		t.Fatal("fingerprint insensitive to base seed")
	}
}

func TestSweepPanicRecovered(t *testing.T) {
	withProcs(t, 4)
	s := Sweep{Experiment: "P", Presets: []string{"a"}, Points: 8, Parallel: 4, BaseSeed: 1}
	_, err := s.Run(func(c Cell) ([]float64, error) {
		if c.Point == 5 {
			panic("cell exploded")
		}
		return []float64{1}, nil
	})
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if fmt.Sprint(pe.Value) != "cell exploded" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "cell exploded") {
		t.Fatalf("panic error lost its stack or value: %v", err)
	}
	for _, part := range []string{"P", "preset=a", "point=5"} {
		if !strings.Contains(err.Error(), part) {
			t.Fatalf("error %q missing %q", err, part)
		}
	}
}

func TestSweepRetryPolicy(t *testing.T) {
	// Two transient failures, then success: within the retry budget.
	var calls atomic.Int32
	s := Sweep{Experiment: "R", Presets: []string{"a"}, Points: 1, Parallel: 1, BaseSeed: 1, Retries: 2}
	res, err := s.Run(func(c Cell) ([]float64, error) {
		if calls.Add(1) <= 2 {
			return nil, errors.New("transient")
		}
		return []float64{42}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("cell ran %d times, want 3", calls.Load())
	}
	if v := res.Mean(0, 0, 0, 0); v != 42 {
		t.Fatalf("mean = %v", v)
	}

	// Budget exhausted: the failure is permanent and reports its attempts.
	ledger := &Ledger{}
	s2 := Sweep{Experiment: "R", Presets: []string{"a"}, Points: 1, Parallel: 1, BaseSeed: 1,
		Retries: 1, Ledger: ledger}
	var calls2 atomic.Int32
	_, err = s2.Run(func(c Cell) ([]float64, error) {
		calls2.Add(1)
		return nil, errors.New("permanent")
	})
	if err == nil || !strings.Contains(err.Error(), "permanent") {
		t.Fatalf("err = %v", err)
	}
	if calls2.Load() != 2 {
		t.Fatalf("cell ran %d times, want 2 (1 + 1 retry)", calls2.Load())
	}
	fails := ledger.Failures()
	if len(fails) != 1 || fails[0].Attempts != 2 {
		t.Fatalf("failures = %+v", fails)
	}
	// Retries also cover panics.
	var calls3 atomic.Int32
	s3 := Sweep{Experiment: "R", Presets: []string{"a"}, Points: 1, Parallel: 1, BaseSeed: 1, Retries: 3}
	res3, err := s3.Run(func(c Cell) ([]float64, error) {
		if calls3.Add(1) == 1 {
			panic("flaky")
		}
		return []float64{7}, nil
	})
	if err != nil || res3.Mean(0, 0, 0, 0) != 7 {
		t.Fatalf("panic retry: err=%v", err)
	}
}

// TestSweepKeepGoingNAHoles: degradation mode finishes the grid, leaves
// explicit NA holes for the failed cells, and records the roster.
func TestSweepKeepGoingNAHoles(t *testing.T) {
	ledger := &Ledger{}
	s := Sweep{Experiment: "K", Presets: []string{"a"}, Points: 4, Schemes: []string{"x", "y"},
		Parallel: 2, BaseSeed: 1, KeepGoing: true, Ledger: ledger}
	res, err := s.Run(func(c Cell) ([]float64, error) {
		if c.Point == 1 && c.Scheme == "y" {
			return nil, errors.New("doomed cell")
		}
		return []float64{float64(10*c.Point) + map[string]float64{"x": 0, "y": 1}[c.Scheme]}, nil
	})
	if err != nil {
		t.Fatalf("keep-going surfaced an error: %v", err)
	}
	if v := res.Value(0, 1, 1, 0); v != "NA" {
		t.Fatalf("failed cell renders %v, want NA", v)
	}
	if m := res.Mean(0, 1, 1, 0); m == m { // NaN check
		t.Fatalf("failed cell mean = %v, want NaN", m)
	}
	if v := res.Value(0, 1, 0, 0).(float64); v != 10 {
		t.Fatalf("surviving sibling cell = %v", v)
	}
	if v := res.Value(0, 3, 1, 0).(float64); v != 31 {
		t.Fatalf("cell after the failure = %v (grid did not finish?)", v)
	}
	failed := res.FailedCells()
	if len(failed) != 1 || failed[0].Point != 1 || failed[0].Scheme != "y" {
		t.Fatalf("failed cells = %+v", failed)
	}
	sum := ledger.Summary()
	if sum.CellsFailed != 1 || sum.CellsExecuted != 7 || sum.CellsSkipped != 0 {
		t.Fatalf("ledger summary = %+v", sum)
	}
	roster := ledger.Failures()
	if len(roster) != 1 || roster[0].Error != "doomed cell" || roster[0].Attempts != 1 {
		t.Fatalf("roster = %+v", roster)
	}

	// Golden partial table: the hole is an explicit "NA", siblings intact.
	tab := &Table{ID: "K", Title: "keep-going", Header: []string{"point", "x", "y"}}
	for pt := 0; pt < s.Points; pt++ {
		tab.AddRow(pt, res.Value(0, pt, 0, 0), res.Value(0, pt, 1, 0))
	}
	want := "== K: keep-going ==\n" +
		"point  x   y \n" +
		"-----  --  --\n" +
		"0      0   1 \n" +
		"1      10  NA\n" +
		"2      20  21\n" +
		"3      30  31\n"
	if got := tab.Render(); got != want {
		t.Fatalf("partial table:\n%s\nwant:\n%s", got, want)
	}
}

// TestSweepKeepGoingAllReplicatesLost: with replicates, the aggregate is
// over survivors; only a cell losing every replicate becomes a hole.
func TestSweepKeepGoingAllReplicatesLost(t *testing.T) {
	s := Sweep{Experiment: "K", Presets: []string{"a"}, Points: 2, Replicates: 3,
		Parallel: 1, BaseSeed: 1, KeepGoing: true}
	res, err := s.Run(func(c Cell) ([]float64, error) {
		if c.Point == 0 && c.Replicate == 1 {
			return nil, errors.New("one replicate down")
		}
		if c.Point == 1 {
			return nil, errors.New("all replicates down")
		}
		return []float64{float64(c.Replicate)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Point 0 lost replicate 1: mean over {0, 2} = 1.
	if m := res.Mean(0, 0, 0, 0); m != 1 {
		t.Fatalf("survivor mean = %v", m)
	}
	if v := res.Value(0, 1, 0, 0); v != "NA" {
		t.Fatalf("all-replicates-lost cell = %v, want NA", v)
	}
}

// TestSweepFailFastSkipAccounting: after a fail-fast failure the drained
// cells are accounted as skipped, not completed.
func TestSweepFailFastSkipAccounting(t *testing.T) {
	ledger := &Ledger{}
	s := Sweep{Experiment: "F", Presets: []string{"a"}, Points: 6, Parallel: 1,
		BaseSeed: 1, Ledger: ledger}
	_, err := s.Run(func(c Cell) ([]float64, error) {
		if c.Point == 1 {
			return nil, errors.New("fail fast")
		}
		return []float64{1}, nil
	})
	if err == nil {
		t.Fatal("fail-fast error not surfaced")
	}
	sum := ledger.Summary()
	// Sequential worker: point 0 executes, point 1 fails, points 2–5 drain.
	if sum.CellsExecuted != 1 || sum.CellsFailed != 1 || sum.CellsSkipped != 4 {
		t.Fatalf("ledger summary = %+v", sum)
	}
	if sum.CellsExecuted+sum.CellsFailed+sum.CellsSkipped+sum.CellsReplayed != 6 {
		t.Fatalf("dispositions do not cover the grid: %+v", sum)
	}
}

// TestSweepJournalSkipsFailures: failed cells must not be journaled — a
// resume has to re-attempt them.
func TestSweepJournalSkipsFailures(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s := Sweep{Experiment: "F", Presets: []string{"a"}, Points: 3, Parallel: 1,
		BaseSeed: 1, KeepGoing: true, Journal: j}
	if _, err := s.Run(func(c Cell) ([]float64, error) {
		if c.Point == 1 {
			return nil, errors.New("broken")
		}
		return []float64{1}, nil
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("journal holds %d records, want 2 (failure excluded)", r.Len())
	}
	var reruns atomic.Int32
	s2 := s
	s2.Journal = r
	res, err := s2.Run(func(c Cell) ([]float64, error) {
		reruns.Add(1)
		if c.Point != 1 {
			t.Errorf("cell point %d re-executed despite journal", c.Point)
		}
		return []float64{2}, nil // recovered this time
	})
	if err != nil {
		t.Fatal(err)
	}
	if reruns.Load() != 1 {
		t.Fatalf("resume executed %d cells, want 1", reruns.Load())
	}
	if v := res.Value(0, 1, 0, 0).(float64); v != 2 {
		t.Fatalf("re-attempted cell = %v", v)
	}
}
