package expt

import (
	"bytes"
	"testing"

	"freshcache/internal/centrality"
	"freshcache/internal/metrics"
	"freshcache/internal/obs"
)

// suiteExports holds every observability export of one experiment run,
// captured for byte-level comparison.
type suiteExports struct {
	events   []byte // event trace JSONL (unsampled: full event order)
	lineage  []byte // causal span tree JSONL
	timeline []byte // sim-time telemetry CSV
	om       []byte // OpenMetrics registry snapshot
	tables   []string
}

// runExports runs one experiment with full observability under either the
// two-stream scheduler (ref=false) or the single-heap reference core
// (ref=true) and captures all exports.
func runExports(t *testing.T, id string, ref bool) suiteExports {
	return runExportsOpts(t, id, func(o *Options) { o.ReferenceScheduler = ref })
}

// runExportsOpts is the generalized capture: tweak mutates the baseline
// options before the run, so any pair of configurations can be diffed.
func runExportsOpts(t *testing.T, id string, tweak func(*Options)) suiteExports {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Config{SampleEvery: 1, Lineage: true, TimelineTick: 6 * 3600})
	opts := Options{
		Seed: 42, Quick: true, Parallel: 4,
		Stats: metrics.NewRunStats(), Obs: o,
	}
	tweak(&opts)
	tables, err := e.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	var ex suiteExports
	for _, tb := range tables {
		ex.tables = append(ex.tables, tb.CSV())
	}
	var buf bytes.Buffer
	capture := func(name string, write func() error) []byte {
		buf.Reset()
		if err := write(); err != nil {
			t.Fatalf("%s export: %v", name, err)
		}
		return append([]byte(nil), buf.Bytes()...)
	}
	ex.events = capture("events", func() error { return o.WriteJSONL(&buf) })
	ex.lineage = capture("lineage", func() error { return o.WriteLineageJSONL(&buf) })
	ex.timeline = capture("timeline", func() error { return o.WriteTimelineCSV(&buf) })
	ex.om = capture("openmetrics", func() error { return obs.WriteOpenMetrics(&buf, o.Registry().Snapshot()) })
	return ex
}

// diffExports asserts two runs produced byte-identical exports and tables.
func diffExports(t *testing.T, id string, two, ref suiteExports) {
	t.Helper()
	if len(two.events) == 0 {
		t.Fatalf("%s: no trace events captured", id)
	}
	for _, cmp := range []struct {
		name     string
		got, ref []byte
	}{
		{"event trace", two.events, ref.events},
		{"lineage", two.lineage, ref.lineage},
		{"timeline", two.timeline, ref.timeline},
		{"openmetrics", two.om, ref.om},
	} {
		if !bytes.Equal(cmp.got, cmp.ref) {
			t.Errorf("%s: %s diverged from the reference scheduler (%d vs %d bytes)",
				id, cmp.name, len(cmp.got), len(cmp.ref))
		}
	}
	if len(two.tables) != len(ref.tables) {
		t.Fatalf("%s: %d tables vs %d from reference", id, len(two.tables), len(ref.tables))
	}
	for i := range two.tables {
		if two.tables[i] != ref.tables[i] {
			t.Errorf("%s: table %d diverged:\n%s\nvs reference:\n%s",
				id, i, two.tables[i], ref.tables[i])
		}
	}
}

// TestDifferentialE2AgainstReferenceScheduler is the end-to-end oracle for
// the two-stream scheduler rewrite: the full quick E2 sweep — event order
// (unsampled trace), metrics registry, lineage spans, telemetry timeline
// and result tables — must be byte-identical to the same sweep on the
// single-heap reference core.
func TestDifferentialE2AgainstReferenceScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick E2 sweep twice with unsampled tracing")
	}
	two := runExports(t, "E2", false)
	ref := runExports(t, "E2", true)
	diffExports(t, "E2", two, ref)
}

// TestDifferentialChurnAgainstReferenceScheduler repeats the oracle on the
// churn/loss experiment, where node up/down toggles and message drops put
// dynamic heap events in heavy equal-time contention with the static
// contact timeline.
func TestDifferentialChurnAgainstReferenceScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick E11 sweep twice with unsampled tracing")
	}
	two := runExports(t, "E11", false)
	ref := runExports(t, "E11", true)
	diffExports(t, "E11", two, ref)
}

// TestDifferentialSparseRateBacking is the oracle for the sparse contact-
// rate structures: the full quick E2 sweep forced onto SparseRates must be
// byte-identical — event order, metrics, lineage, timeline, tables — to
// the same sweep on the dense matrix. (At quick-suite sizes the automatic
// backing picks dense, so the sparse side must be forced explicitly.)
func TestDifferentialSparseRateBacking(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick E2 sweep twice with unsampled tracing")
	}
	sparse := runExportsOpts(t, "E2", func(o *Options) { o.RateBacking = centrality.BackingSparse })
	dense := runExportsOpts(t, "E2", func(o *Options) { o.RateBacking = centrality.BackingDense })
	diffExports(t, "E2", sparse, dense)
}
