package expt

import (
	"freshcache/internal/cache"
	"freshcache/internal/centrality"
	"freshcache/internal/core"
	"freshcache/internal/metrics"
	"freshcache/internal/mobility"
	"freshcache/internal/network"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// The extension experiments (E11…E13) go beyond the paper's evaluation:
// robustness to churn and message loss, the cost of realistic
// (distributed) contact-rate knowledge, and the extended baseline panel.
// They run each point over several seeds and report mean ± 95% CI, since
// failure injection adds variance. The sweep-shaped ones run their cell
// grids on the worker-pool runner (sweep.go); E14 and E16, which drive
// custom engines, stay on the sequential meanCI helper.

// replicas is the number of seeds per point in the extension experiments,
// unless overridden by Options.Replicates.
func replicas(opts Options) int {
	if opts.Replicates > 0 {
		return opts.Replicates
	}
	if opts.Quick {
		return 2
	}
	return 3
}

// extSweep builds an extension-experiment sweep: same grid mechanics as
// Options.sweep but with the replicate default raised to replicas(opts).
func extSweep(opts Options, id string, points int, schemes []string) Sweep {
	sw := opts.sweep(id, []string{"ext-community"}, points, schemes)
	sw.Replicates = replicas(opts)
	return sw
}

// meanCI runs f over `n` replicates — rep is the replicate index, seed the
// consecutive protocol seed — and returns the sample mean and 95%
// confidence half-width of the extracted metric. Trace generation inside f
// should key on TraceSeedFor(base, rep), not the raw seed, so replicate
// trace streams do not alias runs launched with nearby base seeds.
func meanCI(n int, base int64, f func(rep int, seed int64) (float64, error)) (float64, float64, error) {
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v, err := f(i, base+int64(i))
		if err != nil {
			return 0, 0, err
		}
		xs = append(xs, v)
	}
	return stats.Mean(xs), stats.CI95(xs), nil
}

// extTrace returns the (cached) mid-size community trace the extension
// experiments run on.
func extTrace(seed int64) (*trace.Trace, error) {
	g := &mobility.Community{
		TraceName: "ext-community", N: 40, Duration: 12 * mobility.Day, Communities: 4,
		IntraRate: 8.0 / mobility.Day, InterRate: 1.0 / mobility.Day, RateShape: 0.8,
		InterPairFraction: 0.7, HubFraction: 0.1, HubBoost: 3, MeanContactDur: 180,
	}
	return sharedTraces.GetFunc("ext-community", seed, g.Generate)
}

// extScenario builds the mid-size community scenario used by the
// extension experiments (smaller than the presets so multi-seed sweeps
// stay fast, but structurally identical).
func extScenario(seed int64) Scenario {
	return Scenario{
		TracePreset:     "ext-community",
		NumItems:        3,
		RefreshInterval: 4 * mobility.Hour,
		NumCachingNodes: 6,
		QueryRate:       1.0 / (2 * mobility.Hour),
		Seed:            seed,
	}
}

// runExtOn runs the extension scenario on the given trace with config
// tweaks; seed drives the protocol and workload randomness.
func runExtOn(tr *trace.Trace, seed int64, schemeName string, mutate func(*core.Config)) (metrics.Result, error) {
	sc := extScenario(seed).withDefaults()
	cat, err := sc.buildCatalog()
	if err != nil {
		return metrics.Result{}, err
	}
	scheme, err := core.SchemeByName(schemeName)
	if err != nil {
		return metrics.Result{}, err
	}
	cfg := core.Config{
		Trace:           tr,
		Catalog:         cat,
		Scheme:          scheme,
		NumCachingNodes: sc.NumCachingNodes,
		PReq:            sc.PReq,
		Seed:            seed,
		Workload:        cache.WorkloadConfig{QueryRate: sc.QueryRate, ZipfExponent: 1.0},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return metrics.Result{}, err
	}
	return eng.Run()
}

// runExtCell is the sweep-cell body of the ported extension experiments:
// the trace comes from the shared cache keyed by the cell's TraceSeed (so
// all cells of one replicate are paired on a common trace), the protocol
// and workload randomness from the cell's derived Seed.
func runExtCell(opts Options, c Cell, mutate func(*core.Config)) (metrics.Result, error) {
	tr, err := extTrace(c.TraceSeed)
	if err != nil {
		return metrics.Result{}, err
	}
	rt := opts.Obs.Run(cellLabel(c))
	res, err := runExtOn(tr, c.Seed, c.Scheme, func(cfg *core.Config) {
		cfg.Obs = rt
		cfg.Metrics = opts.Obs.Registry()
		cfg.ReferenceScheduler = opts.ReferenceScheduler
		if mutate != nil {
			mutate(cfg)
		}
	})
	if err != nil {
		return metrics.Result{}, err
	}
	opts.record(res)
	opts.Obs.Commit(rt)
	opts.Obs.RecordRun(res.Scheme, res)
	return res, nil
}

func runE11(opts Options) ([]*Table, error) {
	schemes := []string{"direct", "hierarchical", "epidemic"}
	const hier = 1 // index of "hierarchical" in the scheme axis

	type churnPoint struct {
		duty     float64
		up, down float64
	}
	points := []churnPoint{
		{1.0, 0, 0},
		{0.75, 18 * mobility.Hour, 6 * mobility.Hour},
		{0.5, 6 * mobility.Hour, 6 * mobility.Hour},
		{0.25, 2 * mobility.Hour, 6 * mobility.Hour},
	}
	if opts.Quick {
		points = points[:2]
	}
	churnRes, err := extSweep(opts, "E11-churn", len(points), schemes).Run(func(c Cell) ([]float64, error) {
		p := points[c.Point]
		res, err := runExtCell(opts, c, func(cfg *core.Config) {
			if p.up > 0 {
				cfg.Churn = network.ChurnConfig{MeanUp: p.up, MeanDown: p.down}
			}
		})
		if err != nil {
			return nil, err
		}
		return []float64{res.FreshnessRatio}, nil
	})
	if err != nil {
		return nil, err
	}
	churnTable := &Table{
		ID: "E11", Title: "Freshness under node churn (duty cycle sweep, mean ± CI95 over seeds)",
		Header: []string{"dutyCycle", "direct", "hierarchical", "epidemic", "hierCI95"},
	}
	for pt, p := range points {
		row := []any{p.duty}
		for si := range schemes {
			row = append(row, churnRes.Mean(0, pt, si, 0))
		}
		row = append(row, churnRes.CI95(0, pt, hier, 0))
		churnTable.AddRow(row...)
	}

	drops := []float64{0, 0.1, 0.3, 0.5}
	if opts.Quick {
		drops = drops[:2]
	}
	lossRes, err := extSweep(opts, "E11-loss", len(drops), schemes).Run(func(c Cell) ([]float64, error) {
		res, err := runExtCell(opts, c, func(cfg *core.Config) { cfg.DropProb = drops[c.Point] })
		if err != nil {
			return nil, err
		}
		return []float64{res.FreshnessRatio}, nil
	})
	if err != nil {
		return nil, err
	}
	lossTable := &Table{
		ID: "E11", Title: "Freshness under message loss (mean ± CI95 over seeds)",
		Header: []string{"dropProb", "direct", "hierarchical", "epidemic", "hierCI95"},
	}
	for pt, drop := range drops {
		row := []any{drop}
		for si := range schemes {
			row = append(row, lossRes.Mean(0, pt, si, 0))
		}
		row = append(row, lossRes.CI95(0, pt, hier, 0))
		lossTable.AddRow(row...)
	}
	return []*Table{churnTable, lossTable}, nil
}

func runE12(opts Options) ([]*Table, error) {
	schemes := []string{"direct-rep", "hierarchical"}
	modes := []struct {
		label string
		k     core.KnowledgeMode
	}{
		{"oracle", core.KnowledgeOracle},
		{"distributed", core.KnowledgeDistributed},
	}
	res, err := extSweep(opts, "E12", len(modes), schemes).Run(func(c Cell) ([]float64, error) {
		r, err := runExtCell(opts, c, func(cfg *core.Config) { cfg.Knowledge = modes[c.Point].k })
		if err != nil {
			return nil, err
		}
		return []float64{r.FreshnessRatio, r.TxPerVersion, r.OnTimeRatio}, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E12", Title: "Cost of realistic knowledge: oracle vs distributed rate estimates (mean over seeds)",
		Header: []string{"scheme", "knowledge", "freshness", "freshCI95", "tx/version", "onTime"},
	}
	for si, name := range schemes {
		for pt, mode := range modes {
			t.AddRow(name, mode.label, res.Mean(0, pt, si, 0), res.CI95(0, pt, si, 0),
				res.Mean(0, pt, si, 1), res.Mean(0, pt, si, 2))
		}
	}
	return []*Table{t}, nil
}

func runE13(opts Options) ([]*Table, error) {
	names := []string{"norefresh", "direct", "direct-rep", "spray", "random-rep", "hierarchical-norep", "hierarchical", "epidemic"}
	if opts.Quick {
		names = []string{"direct", "spray", "hierarchical"}
	}
	res, err := extSweep(opts, "E13", 1, names).Run(func(c Cell) ([]float64, error) {
		r, err := runExtCell(opts, c, nil)
		if err != nil {
			return nil, err
		}
		return []float64{r.FreshnessRatio, r.ValidAccessRate, r.TxPerVersion, r.SourceTxShare}, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E13", Title: "Extended baseline panel (mean over seeds)",
		Header: []string{"scheme", "freshness", "freshCI95", "validAccess", "tx/version", "sourceTxShare"},
	}
	for si, name := range names {
		t.AddRow(name, res.Mean(0, 0, si, 0), res.CI95(0, 0, si, 0),
			res.Mean(0, 0, si, 1), res.Mean(0, 0, si, 2), res.Mean(0, 0, si, 3))
	}
	return []*Table{t}, nil
}

func runE14(opts Options) ([]*Table, error) {
	n := replicas(opts)
	t := &Table{
		ID: "E14", Title: "Adapting to mobility drift: periodic hierarchy rebuild (mean ± CI95 over seeds)",
		Header: []string{"rebuildInterval(days)", "freshness", "freshCI95", "tx/version"},
	}
	intervals := []float64{0, 4, 2, 1}
	if opts.Quick {
		intervals = intervals[:2]
	}
	for _, days := range intervals {
		days := days
		var txSum float64
		mean, ci, err := meanCI(n, opts.Seed, func(rep int, seed int64) (float64, error) {
			tr, err := sharedTraces.GetFunc("drift-community", TraceSeedFor(opts.Seed, rep),
				mobility.DriftingCommunity(40, 8*mobility.Day).Generate)
			if err != nil {
				return 0, err
			}
			sc := extScenario(seed).withDefaults()
			cat, err := sc.buildCatalog()
			if err != nil {
				return 0, err
			}
			eng, err := core.NewEngine(core.Config{
				Trace:           tr,
				Catalog:         cat,
				Scheme:          core.NewHierarchical(),
				NumCachingNodes: sc.NumCachingNodes,
				WarmupFraction:  0.25,
				RebuildInterval: days * mobility.Day,
				Seed:            seed,
			})
			if err != nil {
				return 0, err
			}
			res, err := eng.Run()
			if err != nil {
				return 0, err
			}
			opts.record(res)
			txSum += res.TxPerVersion
			return res.FreshnessRatio, nil
		})
		if err != nil {
			return nil, err
		}
		label := days
		t.AddRow(label, mean, ci, txSum/float64(n))
	}
	return []*Table{t}, nil
}

func runE15(opts Options) ([]*Table, error) {
	schemes := []string{"direct", "hierarchical"}
	placements := []centrality.Placement{
		centrality.PlaceRandom, centrality.PlaceTopCentrality, centrality.PlaceGreedyCoverage,
	}
	res, err := extSweep(opts, "E15", len(placements), schemes).Run(func(c Cell) ([]float64, error) {
		r, err := runExtCell(opts, c, func(cfg *core.Config) { cfg.Placement = placements[c.Point] })
		if err != nil {
			return nil, err
		}
		return []float64{r.FreshnessRatio, r.ValidAccessRate}, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E15", Title: "Caching-node placement policies (mean ± CI95 over seeds)",
		Header: []string{"placement", "scheme", "freshness", "freshCI95", "validAccess"},
	}
	for pt, p := range placements {
		for si, name := range schemes {
			t.AddRow(p.String(), name, res.Mean(0, pt, si, 0), res.CI95(0, pt, si, 0),
				res.Mean(0, pt, si, 1))
		}
	}
	return []*Table{t}, nil
}

func runE16(opts Options) ([]*Table, error) {
	n := replicas(opts)
	t := &Table{
		ID: "E16", Title: "Impact of cache capacity and eviction policy (20 items, Zipf queries; mean over seeds)",
		Header: []string{"capacity(items)", "policy", "freshness", "validAccess", "answered"},
	}
	caps := []int{2, 5, 10, 20}
	if opts.Quick {
		caps = caps[:2]
	}
	for _, capacity := range caps {
		for _, policy := range []cache.Policy{cache.EvictLRU, cache.EvictLFU} {
			capacity := capacity
			policy := policy
			var validSum, answeredSum float64
			mean, _, err := meanCI(n, opts.Seed, func(rep int, seed int64) (float64, error) {
				tr, err := extTrace(TraceSeedFor(opts.Seed, rep))
				if err != nil {
					return 0, err
				}
				sc := extScenario(seed)
				sc.NumItems = 20
				sc = sc.withDefaults()
				cat, err := sc.buildCatalog()
				if err != nil {
					return 0, err
				}
				eng, err := core.NewEngine(core.Config{
					Trace:           tr,
					Catalog:         cat,
					Scheme:          core.NewHierarchical(),
					NumCachingNodes: sc.NumCachingNodes,
					CacheCapacity:   capacity,
					CachePolicy:     policy,
					Seed:            seed,
					Workload:        cache.WorkloadConfig{QueryRate: sc.QueryRate, ZipfExponent: 1.0},
				})
				if err != nil {
					return 0, err
				}
				res, err := eng.Run()
				if err != nil {
					return 0, err
				}
				opts.record(res)
				validSum += res.ValidAccessRate
				answeredSum += res.AnsweredOK
				return res.FreshnessRatio, nil
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(capacity, policy.String(), mean, validSum/float64(n), answeredSum/float64(n))
		}
	}
	return []*Table{t}, nil
}

func runE17(opts Options) ([]*Table, error) {
	t := &Table{
		ID: "E17", Title: "Analytical tree forecast vs measured on-time delivery (relay-free hierarchy)",
		Header: []string{"trace", "predictedOnTime", "measuredOnTime", "absGap"},
	}
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		sc := defaultScenario(preset, opts.Seed)
		sc = sc.withDefaults()
		// Long refresh interval relative to delays keeps delivery
		// censoring (the analysis conditions on delivery) small.
		sc.RefreshInterval = 24 * mobility.Hour
		sc.FreshnessWindow = 6 * mobility.Hour
		sc.Lifetime = 96 * mobility.Hour
		sc.QueryRate = 0
		cat, err := sc.buildCatalog()
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(core.Config{
			Trace:           tr,
			Catalog:         cat,
			Scheme:          core.NewHierarchicalBare(),
			NumCachingNodes: sc.NumCachingNodes,
			Seed:            opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		if _, err := eng.Run(); err != nil {
			return nil, err
		}
		rt := eng.Runtime()

		var sum float64
		count := 0
		for _, it := range rt.Catalog.Items() {
			// Reconstruct the (deterministic) tree the scheme built.
			tree, err := core.BuildTree(rt.Rates, it.Source, rt.CachingNodes, rt.MaxFanout)
			if err != nil {
				return nil, err
			}
			onTime, err := core.AnalyzeTree(tree, rt.Rates, it.FreshnessWindow)
			if err != nil {
				return nil, err
			}
			delivered, err := core.AnalyzeTree(tree, rt.Rates, it.Lifetime)
			if err != nil {
				return nil, err
			}
			for i := range onTime.Nodes {
				if d := delivered.Nodes[i].OnTime; d > 0 {
					sum += onTime.Nodes[i].OnTime / d
					count++
				}
			}
		}
		predicted := 0.0
		if count > 0 {
			predicted = sum / float64(count)
		}
		measured := eng.Collector().FirstDeliveryOnTimeRatio()
		gap := predicted - measured
		if gap < 0 {
			gap = -gap
		}
		t.AddRow(preset, predicted, measured, gap)
	}
	return []*Table{t}, nil
}

func runE18(opts Options) ([]*Table, error) {
	schemes := []string{"direct", "hierarchical"}
	relayCounts := []int{0, 1, 3}
	if opts.Quick {
		relayCounts = relayCounts[:2]
	}
	res, err := extSweep(opts, "E18", len(relayCounts), schemes).Run(func(c Cell) ([]float64, error) {
		r, err := runExtCell(opts, c, func(cfg *core.Config) { cfg.QueryRelays = relayCounts[c.Point] })
		if err != nil {
			return nil, err
		}
		qtx := 0.0
		if r.Queries > 0 {
			qtx = float64(r.TransmissionsByKind["query"]) / float64(r.Queries)
		}
		return []float64{r.AnsweredOK, r.ValidAccessRate, r.MeanAccessDelaySec / mobility.Hour, qtx}, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E18", Title: "Query delegation: relayed access path (mean over seeds)",
		Header: []string{"scheme", "queryRelays", "answered", "validAccess", "accessDelay(h)", "queryTx/query"},
	}
	for si, name := range schemes {
		for pt, relays := range relayCounts {
			t.AddRow(name, relays, res.Mean(0, pt, si, 0), res.Mean(0, pt, si, 1),
				res.Mean(0, pt, si, 2), res.Mean(0, pt, si, 3))
		}
	}
	return []*Table{t}, nil
}

func runE19(opts Options) ([]*Table, error) {
	var tables []*Table
	presetsHere := presets(opts)
	for _, preset := range presetsHere {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		schemes := []string{"norefresh", "direct", "hierarchical", "epidemic"}
		t := &Table{
			ID: "E19", Title: "Cache freshness ratio over time — " + preset,
			Header: append([]string{"t(days into measurement)"}, schemes...),
		}
		// One run per scheme; re-bucket the freshness samples into a
		// shared day grid.
		type series struct {
			times  []float64
			ratios []float64
		}
		all := make([]series, len(schemes))
		var epoch float64
		for i, name := range schemes {
			sc := defaultScenario(preset, opts.Seed)
			scheme, err := core.SchemeByName(name)
			if err != nil {
				return nil, err
			}
			_, eng, err := opts.runScenario("E19/"+preset+"/"+name, sc, scheme, tr)
			if err != nil {
				return nil, err
			}
			epoch = eng.Runtime().Epoch
			for _, smp := range eng.Collector().Samples() {
				all[i].times = append(all[i].times, smp.Time)
				all[i].ratios = append(all[i].ratios, smp.Ratio)
			}
		}
		// Daily buckets over the measurement phase.
		horizon := tr.Duration
		bucket := mobility.Day
		if horizon-epoch < 6*mobility.Day {
			bucket = mobility.Hour * 12
		}
		for start := epoch; start < horizon; start += bucket {
			row := []any{(start - epoch) / mobility.Day}
			for i := range schemes {
				var sum float64
				count := 0
				for j, tt := range all[i].times {
					if tt >= start && tt < start+bucket {
						sum += all[i].ratios[j]
						count++
					}
				}
				if count > 0 {
					row = append(row, sum/float64(count))
				} else {
					row = append(row, 0.0)
				}
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runE20(opts Options) ([]*Table, error) {
	fanouts := []int{1, 2, 3, 5, 8}
	if opts.Quick {
		fanouts = fanouts[:2]
	}
	res, err := extSweep(opts, "E20", len(fanouts), []string{"hierarchical"}).Run(func(c Cell) ([]float64, error) {
		r, err := runExtCell(opts, c, func(cfg *core.Config) { cfg.MaxFanout = fanouts[c.Point] })
		if err != nil {
			return nil, err
		}
		return []float64{r.FreshnessRatio, r.TxPerVersion, r.SourceTxShare, r.SchemeStats["meanTreeDepth"]}, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E20", Title: "Hierarchy fan-out bound ablation (mean over seeds)",
		Header: []string{"maxFanout", "freshness", "freshCI95", "tx/version", "sourceTxShare", "meanTreeDepth"},
	}
	for pt, fanout := range fanouts {
		t.AddRow(fanout, res.Mean(0, pt, 0, 0), res.CI95(0, pt, 0, 0),
			res.Mean(0, pt, 0, 1), res.Mean(0, pt, 0, 2), res.Mean(0, pt, 0, 3))
	}
	return []*Table{t}, nil
}
