package expt

import (
	"fmt"
	"sync"

	"freshcache/internal/centrality"
	"freshcache/internal/core"
	"freshcache/internal/eventsim"
	"freshcache/internal/metrics"
	"freshcache/internal/mobility"
	"freshcache/internal/obs"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// Options tunes an experiment run.
type Options struct {
	// Seed drives trace generation and workloads.
	Seed int64
	// Quick trims sweeps to a couple of points (used by the benchmark
	// harness and smoke tests); the full sweep reproduces the evaluation.
	Quick bool
	// Parallel bounds the sweep runner's worker pool; the effective pool
	// is min(GOMAXPROCS, Parallel), 0 meaning GOMAXPROCS. Results are
	// byte-identical regardless of the value.
	Parallel int
	// Replicates overrides the per-cell replicate count of every sweep
	// (0 = each experiment's default: 1 for the paper sweeps, 2–3 for the
	// variance-prone extension experiments). With more than one replicate,
	// swept tables report mean±stderr cells.
	Replicates int
	// Stats, when non-nil, accumulates per-run execution statistics
	// (events processed, transmissions by kind, wall time) across the
	// experiment's simulation runs. It must be safe for concurrent use;
	// metrics.NewRunStats is.
	Stats *metrics.RunStats
	// Obs, when non-nil, collects per-run event traces, registry metrics
	// and per-scheme histogram roll-ups (the `-obs` flag). Nil means
	// observability off: the hot paths then see nil traces/registries and
	// record nothing.
	Obs *obs.Observer
	// Timings includes wall-clock timing columns in tables that have them
	// (E10). Off by default so the quick-suite output is byte-identical
	// across machines and worker counts with no carve-outs.
	Timings bool
	// Journal, when non-nil, is the shared per-cell checkpoint journal:
	// sweeps append completed cells and replay matching ones on resume.
	Journal *Journal
	// Ledger, when non-nil, accounts cell dispositions and collects the
	// permanent-failure roster across the run (manifest provenance and
	// the CLI's exit status are built from it).
	Ledger *Ledger
	// Retries is the per-cell retry budget for transient failures.
	Retries int
	// KeepGoing runs sweeps in degradation mode: cell failures no longer
	// abort the grid; failed cells become explicit NA table holes.
	KeepGoing bool
	// ReferenceScheduler runs every cell on the single-heap reference
	// event core instead of the two-stream scheduler. Differential
	// determinism tests only — it is strictly slower.
	ReferenceScheduler bool
	// Costs, when non-nil, collects per-cell cost attribution (wall time,
	// attempts, single-worker alloc deltas, optional CPU profiles) across
	// every sweep for the cross-run results store.
	Costs *CellCosts
	// RateBacking forces the engine's contact-rate representation for
	// every run (dense matrix vs sorted neighbor lists). The zero value
	// picks automatically by node count; the explicit settings exist for
	// the sparse-vs-dense differential tests.
	RateBacking centrality.Backing
}

// record folds one run's result into the optional stats accumulator.
func (o Options) record(r metrics.Result) {
	if o.Stats != nil {
		o.Stats.Record(r)
	}
}

// sweep builds the worker-pool sweep for one experiment grid, threading
// the run options' seed, parallelism and replicate override through.
func (o Options) sweep(id string, presets []string, points int, schemes []string) Sweep {
	return Sweep{
		Experiment: id,
		Presets:    presets,
		Points:     points,
		Schemes:    schemes,
		Replicates: o.Replicates,
		Parallel:   o.Parallel,
		BaseSeed:   o.Seed,
		Obs:        o.Obs,
		Journal:    o.Journal,
		Ledger:     o.Ledger,
		Retries:    o.Retries,
		KeepGoing:  o.KeepGoing,
		Costs:      o.Costs,
	}
}

// cellLabel names one sweep cell's run trace. Labels are unique across a
// suite run (the grid coordinates are), which the observer's deterministic
// flush order relies on.
func cellLabel(c Cell) string {
	return fmt.Sprintf("%s/%s/p%02d/%s/r%d", c.Experiment, c.Preset, c.Point, c.Scheme, c.Replicate)
}

// runScenario runs one labelled scenario with the options' observability
// attached: the run gets its own event trace, lineage, timeline and the
// shared registry, and a successful result is folded into Stats and the
// per-scheme roll-ups. Failed runs commit nothing, so exports only carry
// completed cells.
func (o Options) runScenario(label string, sc Scenario, scheme core.Scheme, tr *trace.Trace) (metrics.Result, *core.Engine, error) {
	rt := o.Obs.Run(label)
	lin := o.Obs.RunLineage(label, scheme.Name())
	tl := o.Obs.RunTimeline(label)
	sc.Obs = rt
	sc.Metrics = o.Obs.Registry()
	sc.Lineage = lin
	sc.Timeline = tl
	sc.TimelineTick = o.Obs.TimelineTick()
	res, eng, err := sc.RunOnTrace(scheme, tr)
	if err != nil {
		return res, eng, err
	}
	o.record(res)
	o.Obs.Commit(rt)
	o.Obs.CommitLineage(lin)
	o.Obs.CommitTimeline(tl)
	o.Obs.RecordRun(res.Scheme, res)
	return res, eng, nil
}

// Experiment is one reproducible unit of the evaluation: it regenerates
// the data behind one table or figure.
type Experiment struct {
	ID            string
	Title         string
	PaperAnalogue string
	Run           func(opts Options) ([]*Table, error)
}

// figureSchemes are the protocols shown in the figures, in reporting
// order. The ablation variants appear separately in E9.
func figureSchemes() []string {
	return []string{"norefresh", "direct", "hierarchical-norep", "hierarchical", "epidemic"}
}

// presets returns the evaluation traces, possibly trimmed by Quick.
func presets(opts Options) []string {
	if opts.Quick {
		return []string{"infocom-like"}
	}
	return []string{"reality-like", "infocom-like"}
}

// genTrace returns one preset trace for the experiment's seed, generated
// once per process via the shared cache (traces are immutable, so sweeps
// and successive experiments share them freely). The trace seed is the
// namespaced replicate-0 derivation, so single-run experiments observe the
// same trace as replicate 0 of every sweep.
func genTrace(preset string, seed int64) (*trace.Trace, error) {
	return sharedTraces.Get(preset, TraceSeedFor(seed, 0))
}

// genTraceCompiled is genTrace plus the shared compiled contact timeline.
func genTraceCompiled(preset string, seed int64) (*trace.Trace, []eventsim.StaticEvent, error) {
	return sharedTraces.GetCompiled(preset, TraceSeedFor(seed, 0))
}

// reusePool recycles worker-local engine state (simulator storage, scheme
// scratch arenas, plan buffers) across the sweep cells a worker runs
// back-to-back. Cells finish extracting their metrics before the Reuse
// returns to the pool, so a recycled bundle never aliases a live run.
//
// A plain free list (not sync.Pool) on purpose: it never drops bundles on
// GC, so the allocation count of a sequential sweep is exactly one bundle
// — deterministic, which the CI bench gate relies on. The list never
// holds more bundles than the peak worker count.
var reusePool struct {
	mu   sync.Mutex
	free []*core.Reuse
}

func getReuse() *core.Reuse {
	reusePool.mu.Lock()
	defer reusePool.mu.Unlock()
	if n := len(reusePool.free); n > 0 {
		r := reusePool.free[n-1]
		reusePool.free = reusePool.free[:n-1]
		return r
	}
	return core.NewReuse()
}

func putReuse(r *core.Reuse) {
	reusePool.mu.Lock()
	defer reusePool.mu.Unlock()
	reusePool.free = append(reusePool.free, r)
}

// refreshSweep returns the refresh-interval sweep appropriate for a
// trace's density (the paper picks trace-appropriate ranges too).
func refreshSweep(preset string, quick bool) []float64 {
	var hours []float64
	switch preset {
	case "reality-like":
		hours = []float64{2, 4, 8, 16, 24}
	default: // infocom-like: a 4-day dense trace
		hours = []float64{1, 2, 4, 8}
	}
	if quick {
		hours = hours[:2]
	}
	out := make([]float64, len(hours))
	for i, h := range hours {
		out[i] = h * mobility.Hour
	}
	return out
}

// All returns the full experiment registry in ID order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Trace summary statistics", PaperAnalogue: "Table 1", Run: runE1},
		{ID: "E2", Title: "Cache freshness ratio vs refresh interval", PaperAnalogue: "freshness figure", Run: runE2},
		{ID: "E3", Title: "Validity of data access vs query rate", PaperAnalogue: "data-access figure", Run: runE3},
		{ID: "E4", Title: "Freshness vs number of caching nodes", PaperAnalogue: "caching-nodes figure", Run: runE4},
		{ID: "E5", Title: "Refresh overhead per generated version", PaperAnalogue: "overhead figure", Run: runE5},
		{ID: "E6", Title: "Refresh delay CDF", PaperAnalogue: "delay figure", Run: runE6},
		{ID: "E7", Title: "Probabilistic replication: analysis vs measurement", PaperAnalogue: "analysis validation", Run: runE7},
		{ID: "E8", Title: "Impact of the freshness requirement window", PaperAnalogue: "requirement figure", Run: runE8},
		{ID: "E9", Title: "Ablation: hierarchy and replication in isolation", PaperAnalogue: "design discussion", Run: runE9},
		{ID: "E10", Title: "Scalability with network size", PaperAnalogue: "methodology", Run: runE10},
		{ID: "E11", Title: "Robustness to churn and message loss", PaperAnalogue: "extension", Run: runE11},
		{ID: "E12", Title: "Oracle vs distributed rate knowledge", PaperAnalogue: "extension", Run: runE12},
		{ID: "E13", Title: "Extended baseline panel (spray, random relays)", PaperAnalogue: "extension", Run: runE13},
		{ID: "E14", Title: "Adapting to mobility drift via periodic rebuild", PaperAnalogue: "extension", Run: runE14},
		{ID: "E15", Title: "Caching-node placement policies", PaperAnalogue: "extension", Run: runE15},
		{ID: "E16", Title: "Impact of cache capacity", PaperAnalogue: "extension", Run: runE16},
		{ID: "E17", Title: "Analytical forecast vs measurement", PaperAnalogue: "analysis validation (k-hop)", Run: runE17},
		{ID: "E18", Title: "Query delegation: relayed data access", PaperAnalogue: "extension", Run: runE18},
		{ID: "E19", Title: "Cache freshness over time", PaperAnalogue: "freshness time-series figure", Run: runE19},
		{ID: "E20", Title: "Hierarchy fan-out ablation", PaperAnalogue: "design-choice ablation", Run: runE20},
		{ID: "E21", Title: "Large-N community trace through the full pipeline", PaperAnalogue: "scalability extension", Run: runE21},
	}
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q", id)
}

func runE1(opts Options) ([]*Table, error) {
	t := &Table{
		ID: "E1", Title: "Trace summary statistics",
		Header: []string{"trace", "nodes", "hours", "contacts", "meetingPairs", "pairCoverage", "contacts/pair", "meanPairRate(1/day)", "meanContactDur(s)", "expFitKS"},
	}
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		s := tr.ComputeStats()
		var gaps []float64
		for _, g := range tr.InterContactTimes() {
			gaps = append(gaps, g...)
		}
		ks, err := stats.ExpFitKS(gaps)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.Name, s.Nodes, s.DurationHours, s.Contacts, s.MeetingPairs,
			s.PairCoverage, s.ContactsPerPair, s.MeanPairRate*mobility.Day, s.MeanContactDur, ks)
	}
	return []*Table{t}, nil
}

// runSweepCell is the shared cell body of the swept paper experiments: it
// fetches the cell's cached trace, lets mutate specialize the scenario for
// the cell's sweep point, runs the cell's scheme, records run statistics,
// and extracts the metric vector.
func runSweepCell(opts Options, c Cell, mutate func(sc *Scenario), extract func(res metrics.Result, eng *core.Engine) []float64) ([]float64, error) {
	tr, tl, err := genTraceCompiled(c.Preset, c.TraceSeed)
	if err != nil {
		return nil, err
	}
	sc := defaultScenario(c.Preset, c.Seed)
	if mutate != nil {
		mutate(&sc)
	}
	scheme, err := core.SchemeByName(c.Scheme)
	if err != nil {
		return nil, err
	}
	sc.ContactTimeline = tl
	sc.ReferenceScheduler = opts.ReferenceScheduler
	sc.RateBacking = opts.RateBacking
	reuse := getReuse()
	defer putReuse(reuse)
	sc.Reuse = reuse
	res, eng, err := opts.runScenario(cellLabel(c), sc, scheme, tr)
	if err != nil {
		return nil, err
	}
	return extract(res, eng), nil
}

// schemeGrid renders one preset's slice of a sweep result as an
// (x, one metric per scheme) table.
func schemeGrid(id, title, xHeader string, xs []any, schemes []string, res *SweepResult, preset int) *Table {
	t := &Table{ID: id, Title: title, Header: append([]string{xHeader}, schemes...)}
	for pt, x := range xs {
		row := []any{x}
		for si := range schemes {
			row = append(row, res.Value(preset, pt, si, 0))
		}
		t.AddRow(row...)
	}
	return t
}

func runE2(opts Options) ([]*Table, error) {
	var tables []*Table
	// The refresh sweep is trace-specific, so each preset gets its own
	// worker-pool grid.
	for _, preset := range presets(opts) {
		rs := refreshSweep(preset, opts.Quick)
		sw := opts.sweep("E2", []string{preset}, len(rs), figureSchemes())
		res, err := sw.Run(func(c Cell) ([]float64, error) {
			return runSweepCell(opts, c,
				func(sc *Scenario) { sc.RefreshInterval = rs[c.Point] },
				func(r metrics.Result, _ *core.Engine) []float64 { return []float64{r.FreshnessRatio} })
		})
		if err != nil {
			return nil, err
		}
		xs := make([]any, len(rs))
		for i, r := range rs {
			xs[i] = r / mobility.Hour
		}
		tables = append(tables, schemeGrid("E2", "Freshness ratio vs refresh interval — "+preset,
			"refresh(h)", xs, figureSchemes(), res, 0))
	}
	return tables, nil
}

func runE3(opts Options) ([]*Table, error) {
	ratesPerDay := []float64{1, 2, 4, 8}
	if opts.Quick {
		ratesPerDay = ratesPerDay[:2]
	}
	ps := presets(opts)
	sw := opts.sweep("E3", ps, len(ratesPerDay), figureSchemes())
	res, err := sw.Run(func(c Cell) ([]float64, error) {
		return runSweepCell(opts, c,
			func(sc *Scenario) {
				sc.QueryRate = ratesPerDay[c.Point] / mobility.Day
				// Data is useful for exactly one refresh interval, so the
				// figure isolates how well each scheme keeps the *current*
				// version available (the default 2×R lifetime saturates on
				// the dense trace).
				sc.Lifetime = sc.RefreshInterval
			},
			func(r metrics.Result, _ *core.Engine) []float64 { return []float64{r.ValidAccessRate} })
	})
	if err != nil {
		return nil, err
	}
	xs := make([]any, len(ratesPerDay))
	for i, q := range ratesPerDay {
		xs[i] = q
	}
	var tables []*Table
	for pi, preset := range ps {
		tables = append(tables, schemeGrid("E3", "Valid-access ratio vs per-node query rate — "+preset,
			"queries/day", xs, figureSchemes(), res, pi))
	}
	return tables, nil
}

func runE4(opts Options) ([]*Table, error) {
	ks := []int{2, 4, 8, 12, 16}
	if opts.Quick {
		ks = ks[:2]
	}
	ps := presets(opts)
	sw := opts.sweep("E4", ps, len(ks), figureSchemes())
	res, err := sw.Run(func(c Cell) ([]float64, error) {
		return runSweepCell(opts, c,
			func(sc *Scenario) { sc.NumCachingNodes = ks[c.Point] },
			func(r metrics.Result, _ *core.Engine) []float64 { return []float64{r.FreshnessRatio} })
	})
	if err != nil {
		return nil, err
	}
	xs := make([]any, len(ks))
	for i, k := range ks {
		xs[i] = k
	}
	var tables []*Table
	for pi, preset := range ps {
		tables = append(tables, schemeGrid("E4", "Freshness ratio vs number of caching nodes — "+preset,
			"cachingNodes", xs, figureSchemes(), res, pi))
	}
	return tables, nil
}

func runE5(opts Options) ([]*Table, error) {
	t := &Table{
		ID: "E5", Title: "Refresh overhead per generated version",
		Header: []string{"trace", "scheme", "tx/version", "refreshTx", "relayTx", "sourceTxShare", "maxNodeShare", "loadGini", "freshness"},
	}
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, name := range figureSchemes() {
			sc := defaultScenario(preset, opts.Seed)
			scheme, err := core.SchemeByName(name)
			if err != nil {
				return nil, err
			}
			res, _, err := opts.runScenario("E5/"+preset+"/"+name, sc, scheme, tr)
			if err != nil {
				return nil, err
			}
			t.AddRow(preset, name, res.TxPerVersion,
				res.TransmissionsByKind["refresh"], res.TransmissionsByKind["relay"],
				res.SourceTxShare, res.MaxNodeTxShare, res.LoadGini, res.FreshnessRatio)
		}
	}
	return []*Table{t}, nil
}

func runE6(opts Options) ([]*Table, error) {
	schemes := []string{"direct", "hierarchical-norep", "hierarchical", "epidemic"}
	var tables []*Table
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		sc := defaultScenario(preset, opts.Seed)
		sc = sc.withDefaults()
		window := sc.FreshnessWindow
		fractions := []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4}
		probes := make([]float64, len(fractions))
		for i, f := range fractions {
			probes[i] = f * window
		}
		t := &Table{
			ID: "E6", Title: "Refresh delay CDF (delay in freshness windows) — " + preset,
			Header: append([]string{"delay/window"}, schemes...),
		}
		cols := make([][]float64, len(schemes))
		for i, name := range schemes {
			scheme, err := core.SchemeByName(name)
			if err != nil {
				return nil, err
			}
			_, eng, err := opts.runScenario("E6/"+preset+"/"+name, sc, scheme, tr)
			if err != nil {
				return nil, err
			}
			cols[i] = eng.Collector().DelayCDF(probes)
		}
		for pi, f := range fractions {
			row := []any{f}
			for i := range schemes {
				row = append(row, cols[i][pi])
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runE7(opts Options) ([]*Table, error) {
	preqs := []float64{0.5, 0.7, 0.8, 0.9, 0.95}
	if opts.Quick {
		preqs = preqs[:2]
	}
	ps := presets(opts)
	sw := opts.sweep("E7", ps, len(preqs), []string{"hierarchical"})
	res, err := sw.Run(func(c Cell) ([]float64, error) {
		return runSweepCell(opts, c,
			func(sc *Scenario) { sc.PReq = preqs[c.Point] },
			func(r metrics.Result, eng *core.Engine) []float64 {
				relayPerVer := 0.0
				if r.VersionsGenerated > 0 {
					relayPerVer = float64(r.TransmissionsByKind["relay"]) / float64(r.VersionsGenerated)
				}
				return []float64{r.SchemeStats["meanAchievedProb"], r.SchemeStats["satisfiedRatio"],
					eng.Collector().FirstDeliveryOnTimeRatio(), relayPerVer}
			})
	})
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for pi, preset := range ps {
		t := &Table{
			ID: "E7", Title: "Replication analysis vs measured on-time delivery — " + preset,
			Header: []string{"pReq", "analyticMeanProb", "plansSatisfied", "measuredFirstOnTime", "relayTx/version"},
		}
		for pt, p := range preqs {
			t.AddRow(p, res.Value(pi, pt, 0, 0), res.Value(pi, pt, 0, 1),
				res.Value(pi, pt, 0, 2), res.Value(pi, pt, 0, 3))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runE8(opts Options) ([]*Table, error) {
	factors := []float64{0.5, 1, 2, 3}
	if opts.Quick {
		factors = factors[:2]
	}
	schemes := []string{"direct", "hierarchical", "epidemic"}
	ps := presets(opts)
	sw := opts.sweep("E8", ps, len(factors), schemes)
	res, err := sw.Run(func(c Cell) ([]float64, error) {
		return runSweepCell(opts, c,
			func(sc *Scenario) { sc.FreshnessWindow = factors[c.Point] * sc.RefreshInterval },
			func(r metrics.Result, _ *core.Engine) []float64 { return []float64{r.OnTimeRatio} })
	})
	if err != nil {
		return nil, err
	}
	xs := make([]any, len(factors))
	for i, f := range factors {
		xs[i] = f
	}
	var tables []*Table
	for pi, preset := range ps {
		tables = append(tables, schemeGrid("E8",
			"On-time delivery ratio vs freshness window (in refresh intervals) — "+preset,
			"window/R", xs, schemes, res, pi))
	}
	return tables, nil
}

func runE9(opts Options) ([]*Table, error) {
	t := &Table{
		ID: "E9", Title: "Ablation: contribution of hierarchy and replication",
		Header: []string{"trace", "scheme", "freshness", "tx/version", "sourceTxShare", "meanDelay(h)"},
	}
	schemes := []string{"direct", "direct-rep", "hierarchical-norep", "hierarchical"}
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, name := range schemes {
			sc := defaultScenario(preset, opts.Seed)
			scheme, err := core.SchemeByName(name)
			if err != nil {
				return nil, err
			}
			res, _, err := opts.runScenario("E9/"+preset+"/"+name, sc, scheme, tr)
			if err != nil {
				return nil, err
			}
			t.AddRow(preset, name, res.FreshnessRatio, res.TxPerVersion,
				res.SourceTxShare, res.MeanRefreshDelay/mobility.Hour)
		}
	}
	return []*Table{t}, nil
}

func runE10(opts Options) ([]*Table, error) {
	sizes := []int{50, 100, 200, 400}
	if opts.Quick {
		sizes = sizes[:2]
	}
	// The wall-clock column is machine-dependent, so it is opt-in
	// (-timings); without it the quick-suite output is byte-identical
	// across machines and worker counts.
	header := []string{"nodes", "contacts", "events", "freshness", "tx/version"}
	if opts.Timings {
		header = []string{"nodes", "contacts", "events", "wallClock(s)", "freshness", "tx/version"}
	}
	t := &Table{
		ID: "E10", Title: "Scalability with network size (hierarchical scheme)",
		Header: header,
	}
	for _, n := range sizes {
		g := &mobility.Community{
			TraceName: fmt.Sprintf("scale-%d", n), N: n, Duration: 10 * mobility.Day,
			Communities: n / 12, IntraRate: 8.0 / mobility.Day, InterRate: 0.5 / mobility.Day,
			RateShape: 0.8, InterPairFraction: 0.3, HubFraction: 0.08, HubBoost: 3,
			MeanContactDur: 120,
		}
		tr, err := g.Generate(opts.Seed)
		if err != nil {
			return nil, err
		}
		sc := defaultScenario("reality-like", opts.Seed) // preset field unused by RunOnTrace
		res, _, err := opts.runScenario(fmt.Sprintf("E10/scale-%d", n), sc, core.NewHierarchical(), tr)
		if err != nil {
			return nil, err
		}
		row := []any{n, len(tr.Contacts), int(res.SimulatedEventCount)}
		if opts.Timings {
			row = append(row, res.WallClockSeconds)
		}
		row = append(row, res.FreshnessRatio, res.TxPerVersion)
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}
