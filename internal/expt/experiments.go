package expt

import (
	"fmt"

	"freshcache/internal/core"
	"freshcache/internal/mobility"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

// Options tunes an experiment run.
type Options struct {
	// Seed drives trace generation and workloads.
	Seed int64
	// Quick trims sweeps to a couple of points (used by the benchmark
	// harness and smoke tests); the full sweep reproduces the evaluation.
	Quick bool
}

// Experiment is one reproducible unit of the evaluation: it regenerates
// the data behind one table or figure.
type Experiment struct {
	ID            string
	Title         string
	PaperAnalogue string
	Run           func(opts Options) ([]*Table, error)
}

// figureSchemes are the protocols shown in the figures, in reporting
// order. The ablation variants appear separately in E9.
func figureSchemes() []string {
	return []string{"norefresh", "direct", "hierarchical-norep", "hierarchical", "epidemic"}
}

// presets returns the evaluation traces, possibly trimmed by Quick.
func presets(opts Options) []string {
	if opts.Quick {
		return []string{"infocom-like"}
	}
	return []string{"reality-like", "infocom-like"}
}

// genTrace generates one preset trace for the experiment's seed.
func genTrace(preset string, seed int64) (*trace.Trace, error) {
	g, err := mobility.Preset(preset)
	if err != nil {
		return nil, err
	}
	return g.Generate(seed)
}

// refreshSweep returns the refresh-interval sweep appropriate for a
// trace's density (the paper picks trace-appropriate ranges too).
func refreshSweep(preset string, quick bool) []float64 {
	var hours []float64
	switch preset {
	case "reality-like":
		hours = []float64{2, 4, 8, 16, 24}
	default: // infocom-like: a 4-day dense trace
		hours = []float64{1, 2, 4, 8}
	}
	if quick {
		hours = hours[:2]
	}
	out := make([]float64, len(hours))
	for i, h := range hours {
		out[i] = h * mobility.Hour
	}
	return out
}

// All returns the full experiment registry in ID order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Trace summary statistics", PaperAnalogue: "Table 1", Run: runE1},
		{ID: "E2", Title: "Cache freshness ratio vs refresh interval", PaperAnalogue: "freshness figure", Run: runE2},
		{ID: "E3", Title: "Validity of data access vs query rate", PaperAnalogue: "data-access figure", Run: runE3},
		{ID: "E4", Title: "Freshness vs number of caching nodes", PaperAnalogue: "caching-nodes figure", Run: runE4},
		{ID: "E5", Title: "Refresh overhead per generated version", PaperAnalogue: "overhead figure", Run: runE5},
		{ID: "E6", Title: "Refresh delay CDF", PaperAnalogue: "delay figure", Run: runE6},
		{ID: "E7", Title: "Probabilistic replication: analysis vs measurement", PaperAnalogue: "analysis validation", Run: runE7},
		{ID: "E8", Title: "Impact of the freshness requirement window", PaperAnalogue: "requirement figure", Run: runE8},
		{ID: "E9", Title: "Ablation: hierarchy and replication in isolation", PaperAnalogue: "design discussion", Run: runE9},
		{ID: "E10", Title: "Scalability with network size", PaperAnalogue: "methodology", Run: runE10},
		{ID: "E11", Title: "Robustness to churn and message loss", PaperAnalogue: "extension", Run: runE11},
		{ID: "E12", Title: "Oracle vs distributed rate knowledge", PaperAnalogue: "extension", Run: runE12},
		{ID: "E13", Title: "Extended baseline panel (spray, random relays)", PaperAnalogue: "extension", Run: runE13},
		{ID: "E14", Title: "Adapting to mobility drift via periodic rebuild", PaperAnalogue: "extension", Run: runE14},
		{ID: "E15", Title: "Caching-node placement policies", PaperAnalogue: "extension", Run: runE15},
		{ID: "E16", Title: "Impact of cache capacity", PaperAnalogue: "extension", Run: runE16},
		{ID: "E17", Title: "Analytical forecast vs measurement", PaperAnalogue: "analysis validation (k-hop)", Run: runE17},
		{ID: "E18", Title: "Query delegation: relayed data access", PaperAnalogue: "extension", Run: runE18},
		{ID: "E19", Title: "Cache freshness over time", PaperAnalogue: "freshness time-series figure", Run: runE19},
		{ID: "E20", Title: "Hierarchy fan-out ablation", PaperAnalogue: "design-choice ablation", Run: runE20},
	}
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q", id)
}

func runE1(opts Options) ([]*Table, error) {
	t := &Table{
		ID: "E1", Title: "Trace summary statistics",
		Header: []string{"trace", "nodes", "hours", "contacts", "meetingPairs", "pairCoverage", "contacts/pair", "meanPairRate(1/day)", "meanContactDur(s)", "expFitKS"},
	}
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		s := tr.ComputeStats()
		var gaps []float64
		for _, g := range tr.InterContactTimes() {
			gaps = append(gaps, g...)
		}
		ks, err := stats.ExpFitKS(gaps)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.Name, s.Nodes, s.DurationHours, s.Contacts, s.MeetingPairs,
			s.PairCoverage, s.ContactsPerPair, s.MeanPairRate*mobility.Day, s.MeanContactDur, ks)
	}
	return []*Table{t}, nil
}

func runE2(opts Options) ([]*Table, error) {
	var tables []*Table
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID: "E2", Title: "Freshness ratio vs refresh interval — " + preset,
			Header: append([]string{"refresh(h)"}, figureSchemes()...),
		}
		for _, r := range refreshSweep(preset, opts.Quick) {
			row := []any{r / mobility.Hour}
			for _, name := range figureSchemes() {
				sc := defaultScenario(preset, opts.Seed)
				sc.RefreshInterval = r
				scheme, err := core.SchemeByName(name)
				if err != nil {
					return nil, err
				}
				res, _, err := sc.RunOnTrace(scheme, tr)
				if err != nil {
					return nil, err
				}
				row = append(row, res.FreshnessRatio)
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runE3(opts Options) ([]*Table, error) {
	ratesPerDay := []float64{1, 2, 4, 8}
	if opts.Quick {
		ratesPerDay = ratesPerDay[:2]
	}
	var tables []*Table
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID: "E3", Title: "Valid-access ratio vs per-node query rate — " + preset,
			Header: append([]string{"queries/day"}, figureSchemes()...),
		}
		for _, q := range ratesPerDay {
			row := []any{q}
			for _, name := range figureSchemes() {
				sc := defaultScenario(preset, opts.Seed)
				sc.QueryRate = q / mobility.Day
				// Data is useful for exactly one refresh interval, so the
				// figure isolates how well each scheme keeps the *current*
				// version available (the default 2×R lifetime saturates on
				// the dense trace).
				sc.Lifetime = sc.RefreshInterval
				scheme, err := core.SchemeByName(name)
				if err != nil {
					return nil, err
				}
				res, _, err := sc.RunOnTrace(scheme, tr)
				if err != nil {
					return nil, err
				}
				row = append(row, res.ValidAccessRate)
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runE4(opts Options) ([]*Table, error) {
	ks := []int{2, 4, 8, 12, 16}
	if opts.Quick {
		ks = ks[:2]
	}
	var tables []*Table
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID: "E4", Title: "Freshness ratio vs number of caching nodes — " + preset,
			Header: append([]string{"cachingNodes"}, figureSchemes()...),
		}
		for _, k := range ks {
			row := []any{k}
			for _, name := range figureSchemes() {
				sc := defaultScenario(preset, opts.Seed)
				sc.NumCachingNodes = k
				scheme, err := core.SchemeByName(name)
				if err != nil {
					return nil, err
				}
				res, _, err := sc.RunOnTrace(scheme, tr)
				if err != nil {
					return nil, err
				}
				row = append(row, res.FreshnessRatio)
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runE5(opts Options) ([]*Table, error) {
	t := &Table{
		ID: "E5", Title: "Refresh overhead per generated version",
		Header: []string{"trace", "scheme", "tx/version", "refreshTx", "relayTx", "sourceTxShare", "maxNodeShare", "loadGini", "freshness"},
	}
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, name := range figureSchemes() {
			sc := defaultScenario(preset, opts.Seed)
			scheme, err := core.SchemeByName(name)
			if err != nil {
				return nil, err
			}
			res, _, err := sc.RunOnTrace(scheme, tr)
			if err != nil {
				return nil, err
			}
			t.AddRow(preset, name, res.TxPerVersion,
				res.TransmissionsByKind["refresh"], res.TransmissionsByKind["relay"],
				res.SourceTxShare, res.MaxNodeTxShare, res.LoadGini, res.FreshnessRatio)
		}
	}
	return []*Table{t}, nil
}

func runE6(opts Options) ([]*Table, error) {
	schemes := []string{"direct", "hierarchical-norep", "hierarchical", "epidemic"}
	var tables []*Table
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		sc := defaultScenario(preset, opts.Seed)
		sc = sc.withDefaults()
		window := sc.FreshnessWindow
		fractions := []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4}
		probes := make([]float64, len(fractions))
		for i, f := range fractions {
			probes[i] = f * window
		}
		t := &Table{
			ID: "E6", Title: "Refresh delay CDF (delay in freshness windows) — " + preset,
			Header: append([]string{"delay/window"}, schemes...),
		}
		cols := make([][]float64, len(schemes))
		for i, name := range schemes {
			scheme, err := core.SchemeByName(name)
			if err != nil {
				return nil, err
			}
			_, eng, err := sc.RunOnTrace(scheme, tr)
			if err != nil {
				return nil, err
			}
			cols[i] = eng.Collector().DelayCDF(probes)
		}
		for pi, f := range fractions {
			row := []any{f}
			for i := range schemes {
				row = append(row, cols[i][pi])
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runE7(opts Options) ([]*Table, error) {
	preqs := []float64{0.5, 0.7, 0.8, 0.9, 0.95}
	if opts.Quick {
		preqs = preqs[:2]
	}
	var tables []*Table
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID: "E7", Title: "Replication analysis vs measured on-time delivery — " + preset,
			Header: []string{"pReq", "analyticMeanProb", "plansSatisfied", "measuredFirstOnTime", "relayTx/version"},
		}
		for _, p := range preqs {
			sc := defaultScenario(preset, opts.Seed)
			sc.PReq = p
			res, eng, err := sc.RunOnTrace(core.NewHierarchical(), tr)
			if err != nil {
				return nil, err
			}
			relayPerVer := 0.0
			if res.VersionsGenerated > 0 {
				relayPerVer = float64(res.TransmissionsByKind["relay"]) / float64(res.VersionsGenerated)
			}
			t.AddRow(p, res.SchemeStats["meanAchievedProb"], res.SchemeStats["satisfiedRatio"],
				eng.Collector().FirstDeliveryOnTimeRatio(), relayPerVer)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runE8(opts Options) ([]*Table, error) {
	factors := []float64{0.5, 1, 2, 3}
	if opts.Quick {
		factors = factors[:2]
	}
	schemes := []string{"direct", "hierarchical", "epidemic"}
	var tables []*Table
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID: "E8", Title: "On-time delivery ratio vs freshness window (in refresh intervals) — " + preset,
			Header: append([]string{"window/R"}, schemes...),
		}
		for _, f := range factors {
			row := []any{f}
			for _, name := range schemes {
				sc := defaultScenario(preset, opts.Seed)
				sc.FreshnessWindow = f * sc.RefreshInterval
				scheme, err := core.SchemeByName(name)
				if err != nil {
					return nil, err
				}
				res, _, err := sc.RunOnTrace(scheme, tr)
				if err != nil {
					return nil, err
				}
				row = append(row, res.OnTimeRatio)
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runE9(opts Options) ([]*Table, error) {
	t := &Table{
		ID: "E9", Title: "Ablation: contribution of hierarchy and replication",
		Header: []string{"trace", "scheme", "freshness", "tx/version", "sourceTxShare", "meanDelay(h)"},
	}
	schemes := []string{"direct", "direct-rep", "hierarchical-norep", "hierarchical"}
	for _, preset := range presets(opts) {
		tr, err := genTrace(preset, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, name := range schemes {
			sc := defaultScenario(preset, opts.Seed)
			scheme, err := core.SchemeByName(name)
			if err != nil {
				return nil, err
			}
			res, _, err := sc.RunOnTrace(scheme, tr)
			if err != nil {
				return nil, err
			}
			t.AddRow(preset, name, res.FreshnessRatio, res.TxPerVersion,
				res.SourceTxShare, res.MeanRefreshDelay/mobility.Hour)
		}
	}
	return []*Table{t}, nil
}

func runE10(opts Options) ([]*Table, error) {
	sizes := []int{50, 100, 200, 400}
	if opts.Quick {
		sizes = sizes[:2]
	}
	t := &Table{
		ID: "E10", Title: "Scalability with network size (hierarchical scheme)",
		Header: []string{"nodes", "contacts", "events", "wallClock(s)", "freshness", "tx/version"},
	}
	for _, n := range sizes {
		g := &mobility.Community{
			TraceName: fmt.Sprintf("scale-%d", n), N: n, Duration: 10 * mobility.Day,
			Communities: n / 12, IntraRate: 8.0 / mobility.Day, InterRate: 0.5 / mobility.Day,
			RateShape: 0.8, InterPairFraction: 0.3, HubFraction: 0.08, HubBoost: 3,
			MeanContactDur: 120,
		}
		tr, err := g.Generate(opts.Seed)
		if err != nil {
			return nil, err
		}
		sc := defaultScenario("reality-like", opts.Seed) // preset field unused by RunOnTrace
		res, _, err := sc.RunOnTrace(core.NewHierarchical(), tr)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, len(tr.Contacts), int(res.SimulatedEventCount), res.WallClockSeconds,
			res.FreshnessRatio, res.TxPerVersion)
	}
	return []*Table{t}, nil
}
