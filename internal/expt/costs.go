package expt

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"freshcache/internal/obs"
)

// This file is the per-cell cost-attribution layer of the sweep runner:
// wall time, retry attempts and (at a single worker) allocation deltas for
// every executed cell, plus optional CPU profiles of the most expensive
// cells. All measurement happens at cell boundaries — the simulation hot
// path is untouched, so the PR8 alloc gates are unaffected.

// CellProfile pairs one cell's cost record with its captured CPU profile
// (pprof binary format).
type CellProfile struct {
	Cost obs.CellCost
	Data []byte
}

// CellCosts collects per-cell execution costs across a run's sweeps for
// the cross-run results store. Wall time and attempts are recorded for
// every executed cell; allocation deltas and CPU profiles only when the
// collector was built with trackAllocs (which the CLI grants only at an
// effective single worker — ReadMemStats deltas and the process-global CPU
// profiler are both meaningless under concurrency). Methods are nil-safe.
type CellCosts struct {
	mu          sync.Mutex
	costs       []obs.CellCost
	profiles    []CellProfile // kept sorted by wall time, descending
	profileTop  int           // retain the N most expensive cells' profiles
	trackAllocs bool
	profErr     error // first StartCPUProfile failure; disables profiling
	profOff     bool
}

// NewCellCosts returns a collector. profileTop > 0 retains the CPU
// profiles of the profileTop most expensive cells (by wall time);
// trackAllocs enables ReadMemStats deltas and profiling, and must only be
// set when cells run strictly sequentially.
func NewCellCosts(profileTop int, trackAllocs bool) *CellCosts {
	return &CellCosts{profileTop: profileTop, trackAllocs: trackAllocs}
}

// measured reports whether the collector wants single-worker measurement
// (alloc deltas, profiles). Nil-safe.
func (cc *CellCosts) measureAllocs() bool {
	return cc != nil && cc.trackAllocs
}

func (cc *CellCosts) profileEnabled() bool {
	if cc == nil || !cc.trackAllocs || cc.profileTop <= 0 {
		return false
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return !cc.profOff
}

// disableProfiling records the first profiler failure — typically a global
// -cpuprofile already owning the process profiler — and stops trying.
func (cc *CellCosts) disableProfiling(err error) {
	cc.mu.Lock()
	if cc.profErr == nil {
		cc.profErr = err
	}
	cc.profOff = true
	cc.mu.Unlock()
}

// ProfileErr returns the first profiler failure, if profiling was
// requested but could not run. Nil-safe.
func (cc *CellCosts) ProfileErr() error {
	if cc == nil {
		return nil
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.profErr
}

// add records one executed cell's cost and, optionally, its CPU profile.
// Nil-safe.
func (cc *CellCosts) add(cost obs.CellCost, profile []byte) {
	if cc == nil {
		return
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.costs = append(cc.costs, cost)
	if profile == nil || cc.profileTop <= 0 {
		return
	}
	cc.profiles = append(cc.profiles, CellProfile{Cost: cost, Data: profile})
	sort.SliceStable(cc.profiles, func(i, j int) bool {
		return cc.profiles[i].Cost.WallSeconds > cc.profiles[j].Cost.WallSeconds
	})
	if len(cc.profiles) > cc.profileTop {
		cc.profiles = cc.profiles[:cc.profileTop]
	}
}

// Cells returns every recorded cost in deterministic grid order
// (experiment, preset, point, scheme, replicate) — workers may finish out
// of order, the store record must not. Nil-safe.
func (cc *CellCosts) Cells() []obs.CellCost {
	if cc == nil {
		return nil
	}
	cc.mu.Lock()
	out := make([]obs.CellCost, len(cc.costs))
	copy(out, cc.costs)
	cc.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Preset != b.Preset {
			return a.Preset < b.Preset
		}
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		return a.Replicate < b.Replicate
	})
	return out
}

// Profiles returns the retained CPU profiles, most expensive first.
// Nil-safe.
func (cc *CellCosts) Profiles() []CellProfile {
	if cc == nil {
		return nil
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	out := make([]CellProfile, len(cc.profiles))
	copy(out, cc.profiles)
	return out
}

// measureCell runs one cell under the collector's measurement policy and
// returns the result plus the filled cost record and optional profile. The
// caller guarantees single-worker execution when alloc tracking is on.
func (cc *CellCosts) measureCell(s Sweep, fn CellFunc, c Cell, single bool) ([]float64, error, int) {
	allocs := single && cc.measureAllocs()
	profile := allocs && cc.profileEnabled()

	var buf bytes.Buffer
	if profile {
		if err := pprof.StartCPUProfile(&buf); err != nil {
			cc.disableProfiling(err)
			profile = false
		}
	}
	var before runtime.MemStats
	if allocs {
		runtime.ReadMemStats(&before)
	}
	start := time.Now()
	v, err, attempts := s.runCell(fn, c)
	wall := time.Since(start)
	cost := obs.CellCost{
		Experiment:  c.Experiment,
		Preset:      c.Preset,
		Point:       c.Point,
		Scheme:      c.Scheme,
		Replicate:   c.Replicate,
		WallSeconds: wall.Seconds(),
		Attempts:    attempts,
	}
	if allocs {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		cost.Mallocs = after.Mallocs - before.Mallocs
		cost.AllocBytes = after.TotalAlloc - before.TotalAlloc
	}
	var prof []byte
	if profile {
		pprof.StopCPUProfile()
		prof = append([]byte(nil), buf.Bytes()...)
	}
	if err == nil {
		cc.add(cost, prof)
	}
	return v, err, attempts
}
