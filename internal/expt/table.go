// Package expt defines the reproduction's experiment suite (E1…E10 in
// DESIGN.md): named, parameterized simulation sweeps that regenerate each
// table and figure of the paper's evaluation, and the plain-text / CSV
// rendering used by cmd/experiments and the benchmarks.
package expt

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Table is one rendered experiment output: a figure's data series (first
// column is the x-axis) or a results table.
type Table struct {
	ID     string // experiment id, e.g. "E2"
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row, converting each cell with CellValue.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = CellValue(c)
	}
	t.Rows = append(t.Rows, row)
}

// CellValue renders one value for table output: floats with 4 significant
// digits, everything else via fmt. NaN — the aggregate of a sweep cell
// whose every replicate failed under -keep-going — renders as the explicit
// "NA" hole, so partial tables are unambiguous.
func CellValue(v any) string {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) {
			return "NA"
		}
		return strconv.FormatFloat(x, 'g', 4, 64)
	case float32:
		if math.IsNaN(float64(x)) {
			return "NA"
		}
		return strconv.FormatFloat(float64(x), 'g', 4, 64)
	case string:
		return x
	default:
		return fmt.Sprint(v)
	}
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(strconv.Quote(cell))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
