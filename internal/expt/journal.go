package expt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"freshcache/internal/obs"
)

// This file is the crash-safety layer of the sweep runner: an append-only
// per-cell checkpoint journal (JSONL) written as cells complete, and the
// Ledger that accounts every cell's disposition (executed, replayed from
// the journal, failed, drained) across a run's sweeps. A run interrupted
// at any point — including SIGKILL — can be relaunched with the same
// journal and replays completed cells instead of re-executing them; the
// assembled tables are byte-identical to an uninterrupted run because
// cells carry their own derived seeds and results are assembled in grid
// order regardless of which cells actually ran.

// journalSchema versions the journal record format. Bump it to invalidate
// journals across incompatible changes; stale records are simply not
// replayed (the cells re-execute), never misinterpreted.
const journalSchema = "freshcache-checkpoint/1"

// journalRecord is one completed cell: its grid coordinates, the seeds it
// derived, the fingerprint of the sweep configuration it belongs to, and
// its metric vector. A record replays into a resumed sweep only when the
// coordinates, both seeds and the fingerprint all match — so resuming
// with different flags (seed, -quick, -replicates, a changed grid) safely
// re-executes instead of splicing mismatched results.
type journalRecord struct {
	Schema      string    `json:"schema"`
	Experiment  string    `json:"experiment"`
	Preset      string    `json:"preset"`
	Point       int       `json:"point"`
	Scheme      string    `json:"scheme"`
	Replicate   int       `json:"replicate"`
	Seed        int64     `json:"seed"`
	TraceSeed   int64     `json:"traceSeed"`
	Fingerprint string    `json:"fingerprint"`
	Metrics     []float64 `json:"metrics"`
}

// key returns the record's stable cell identity.
func (r journalRecord) key() string {
	return cellKey(r.Experiment, r.Preset, r.Point, r.Scheme, r.Replicate)
}

func cellKey(experiment, preset string, point int, scheme string, replicate int) string {
	return fmt.Sprintf("%s\x1f%s\x1f%d\x1f%s\x1f%d", experiment, preset, point, scheme, replicate)
}

// Journal is an append-only per-cell checkpoint file shared by every sweep
// of a run. Appends are serialized and synced to disk record by record, so
// a crash loses at most the cell in flight; a truncated trailing line from
// a mid-write crash is tolerated on load. Safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	seen map[string]journalRecord
}

// OpenJournal opens (or creates) the checkpoint journal at path. With
// resume set, previously completed cells are loaded for replay and new
// records append after them; otherwise the journal is truncated so a fresh
// run never splices stale cells.
func OpenJournal(path string, resume bool) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("expt: checkpoint dir: %w", err)
		}
	}
	j := &Journal{path: path, seen: make(map[string]journalRecord)}
	if resume {
		if err := j.load(); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("expt: checkpoint journal: %w", err)
	}
	j.f = f
	return j, nil
}

// load reads the existing journal, keeping the last valid record per cell.
// Malformed lines — most commonly a partial trailing line written at the
// instant of a crash — are skipped, not fatal: losing one checkpoint only
// costs re-executing that cell.
func (j *Journal) load() error {
	f, err := os.Open(j.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("expt: checkpoint journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue // torn write from a crash; the cell will re-execute
		}
		if rec.Schema != journalSchema {
			continue
		}
		j.seen[rec.key()] = rec
	}
	return sc.Err()
}

// Len reports how many completed cells the journal holds. Nil-safe.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Path returns the journal's file path ("" for a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Lookup returns the journaled metric vector for a cell, if a record with
// matching identity, seeds and sweep fingerprint exists. Nil-safe.
func (j *Journal) Lookup(c Cell, fingerprint string) ([]float64, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.seen[cellKey(c.Experiment, c.Preset, c.Point, c.Scheme, c.Replicate)]
	if !ok || rec.Fingerprint != fingerprint || rec.Seed != c.Seed || rec.TraceSeed != c.TraceSeed {
		return nil, false
	}
	return rec.Metrics, true
}

// Record appends one completed cell and syncs it to disk, so a subsequent
// crash — even SIGKILL — cannot lose it. Nil-safe.
func (j *Journal) Record(c Cell, fingerprint string, metrics []float64) error {
	if j == nil {
		return nil
	}
	rec := journalRecord{
		Schema:      journalSchema,
		Experiment:  c.Experiment,
		Preset:      c.Preset,
		Point:       c.Point,
		Scheme:      c.Scheme,
		Replicate:   c.Replicate,
		Seed:        c.Seed,
		TraceSeed:   c.TraceSeed,
		Fingerprint: fingerprint,
		Metrics:     metrics,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("expt: checkpoint record: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("expt: checkpoint append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("expt: checkpoint sync: %w", err)
	}
	j.seen[rec.key()] = rec
	return nil
}

// Close flushes and closes the journal file. Nil-safe.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}

// Ledger accounts every sweep cell's disposition across a run and collects
// the permanent-failure roster for the run manifest. One ledger is shared
// by all sweeps of a CLI invocation; all methods are nil-safe and safe for
// concurrent use.
type Ledger struct {
	mu       sync.Mutex
	failures []obs.CellFailure
	queued   int
	replayed int
	executed int
	skipped  int
	retried  int
	start    time.Time
}

// addQueued grows the total cell count and stamps the run's start time on
// first use, so progress rates are measured from when work actually began.
func (l *Ledger) addQueued(n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.queued += n
	if l.start.IsZero() {
		l.start = time.Now()
	}
	l.mu.Unlock()
}

func (l *Ledger) addReplayed(n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.replayed += n
	l.mu.Unlock()
}

// addExecuted records a successful cell and the retry attempts it consumed
// beyond the first.
func (l *Ledger) addExecuted(attempts int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.executed++
	if attempts > 1 {
		l.retried += attempts - 1
	}
	l.mu.Unlock()
}

func (l *Ledger) addSkipped() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.skipped++
	l.mu.Unlock()
}

func (l *Ledger) addFailure(c Cell, err error, attempts int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if attempts > 1 {
		l.retried += attempts - 1
	}
	l.failures = append(l.failures, obs.CellFailure{
		Experiment: c.Experiment,
		Preset:     c.Preset,
		Point:      c.Point,
		Scheme:     c.Scheme,
		Replicate:  c.Replicate,
		Error:      err.Error(),
		Attempts:   attempts,
	})
	l.mu.Unlock()
}

// Failures returns the permanent-failure roster in deterministic grid
// order (experiment, preset, point, scheme, replicate).
func (l *Ledger) Failures() []obs.CellFailure {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]obs.CellFailure, len(l.failures))
	copy(out, l.failures)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Preset != b.Preset {
			return a.Preset < b.Preset
		}
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		return a.Replicate < b.Replicate
	})
	return out
}

// Summary returns the ledger's per-disposition cell counts as manifest
// resume provenance (journal path and resumed flag are the caller's).
func (l *Ledger) Summary() obs.ResumeSummary {
	if l == nil {
		return obs.ResumeSummary{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return obs.ResumeSummary{
		CellsReplayed: l.replayed,
		CellsExecuted: l.executed,
		CellsFailed:   len(l.failures),
		CellsSkipped:  l.skipped,
	}
}

// Snapshot returns an atomic progress snapshot for live reporting: every
// disposition count plus the queued total and start time, taken under the
// ledger lock so it never reads a half-updated state mid-sweep. Nil-safe
// (a nil ledger reports zeros), so it can serve as the live endpoint's
// progress source unconditionally.
func (l *Ledger) Snapshot() obs.Progress {
	if l == nil {
		return obs.Progress{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return obs.Progress{
		Queued:   l.queued,
		Executed: l.executed,
		Failed:   len(l.failures),
		Skipped:  l.skipped,
		Replayed: l.replayed,
		Retried:  l.retried,
		Start:    l.start,
	}
}

// Fingerprint hashes the sweep's grid-defining configuration (experiment,
// base seed, axes, replicate count). Journal records replay only into a
// sweep with an identical fingerprint, so a journal written by one
// configuration can never corrupt a differently-shaped resume.
func (s Sweep) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d|", journalSchema, s.Experiment, s.BaseSeed, s.Points, s.replicates())
	for _, p := range s.Presets {
		h.Write([]byte(p))
		h.Write([]byte{0x1f})
	}
	h.Write([]byte{'|'})
	for _, sch := range s.schemes() {
		h.Write([]byte(sch))
		h.Write([]byte{0x1f})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
