package expt

import (
	"runtime"
	"strconv"
	"testing"

	"freshcache/internal/centrality"
	"freshcache/internal/trace"
)

// TestSparsePathAvoidsQuadraticAllocation is the "no n² anywhere"
// assertion behind E21: building the sparse rate structures at a node
// count whose dense matrix would need ~80 GB must cost only what the
// observed pairs cost. A single accidental n*n allocation on this path
// fails the byte budget by four orders of magnitude (or aborts the test
// process outright).
func TestSparsePathAvoidsQuadraticAllocation(t *testing.T) {
	const n = 100_000 // dense would be 8·10¹⁰ bytes; sparse sees 3 pairs
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	est, err := centrality.NewEstimatorBacking(n, 0, centrality.BackingAuto)
	if err != nil {
		t.Fatal(err)
	}
	est.Observe(0, 99_999)
	est.Observe(12_345, 54_321)
	est.Observe(0, 99_999)
	rates, err := est.Rates(1000)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Name: "huge", N: n, Duration: 100, Contacts: []trace.Contact{
		{A: 7, B: 70_007, Start: 1, End: 2},
		{A: 8, B: 80_008, Start: 3, End: 4},
	}}
	ft, err := centrality.FromTrace(tr, 0, 100)
	if err != nil {
		t.Fatal(err)
	}

	runtime.ReadMemStats(&after)
	if got := rates.Rate(0, 99_999); got != 2.0/1000 {
		t.Fatalf("Rate(0,99999) = %v", got)
	}
	if got := ft.Rate(8, 80_008); got != 1.0/100 {
		t.Fatalf("FromTrace rate = %v", got)
	}
	// Generous bound: the two sparse structures at n=100k cost a few MB of
	// per-node slice headers; any n² structure costs tens of GB.
	const limit = 64 << 20
	if delta := after.TotalAlloc - before.TotalAlloc; delta > limit {
		t.Fatalf("sparse path allocated %d bytes at n=%d (limit %d): something is quadratic", delta, n, limit)
	}
}

// TestE21QuickPipeline runs the quick-size E21 scenario end to end and
// pins the table shape plus the basic sanity of the result: the trace is
// large-N (above both sparse thresholds), contacts and events flow, and
// the run completes without any dense ceiling being hit.
func TestE21QuickPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 2000-node simulation")
	}
	e, err := ByID("E21")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("%d tables", len(tables))
	}
	tb := tables[0]
	if len(tb.Rows) != 1 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	row := tb.Rows[0]
	if len(row) != len(tb.Header) {
		t.Fatalf("ragged row: %v vs header %v", row, tb.Header)
	}
	cell := func(name string) string {
		for i, h := range tb.Header {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no %q column in %v", name, tb.Header)
		return ""
	}
	if nodes, _ := strconv.Atoi(cell("nodes")); nodes != largeNQuickNodes {
		t.Fatalf("nodes = %q, want %d", cell("nodes"), largeNQuickNodes)
	}
	if largeNQuickNodes <= centrality.AutoSparseThreshold {
		t.Fatalf("quick size %d does not exercise the sparse path", largeNQuickNodes)
	}
	if contacts, _ := strconv.Atoi(cell("contacts")); contacts < 100_000 {
		t.Fatalf("suspiciously few contacts: %q", cell("contacts"))
	}
	if events, _ := strconv.Atoi(cell("events")); events <= 0 {
		t.Fatalf("no simulated events: %q", cell("events"))
	}
}

// TestE21FullSizeWithinMemoryBudget runs the full 10k-node E21 and
// asserts the peak heap stays far below the 2 GB budget the CI smoke job
// enforces on RSS. Skipped in short mode (a few seconds of wall time).
func TestE21FullSizeWithinMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full 10000-node simulation")
	}
	e, err := ByID("E21")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(Options{Seed: 42}); err != nil {
		t.Fatal(err)
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	const budget = 2 << 30
	if m.HeapSys > budget {
		t.Fatalf("heap reached %d bytes, budget %d", m.HeapSys, uint64(budget))
	}
}

// TestLargeNTraceScalesLinearly pins the O(contacts) workload property:
// doubling N on the E21 community model roughly doubles the contact
// count (constant per-node load), rather than quadrupling it as a dense
// pair model would.
func TestLargeNTraceScalesLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("generates two large traces")
	}
	small, err := largeNTrace(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := largeNTrace(4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(big.Contacts)) / float64(len(small.Contacts))
	if ratio < 1.7 || ratio > 2.4 {
		t.Fatalf("contact growth ratio %v for 2× nodes; want ≈2 (linear)", ratio)
	}
}
