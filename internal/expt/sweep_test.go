package expt

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"freshcache/internal/trace"
)

// withProcs raises GOMAXPROCS for the test so the pool (capped at
// min(GOMAXPROCS, Parallel)) genuinely opens to the requested width even
// on single-CPU machines.
func withProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func TestSweepGridOrderDeterministic(t *testing.T) {
	s := Sweep{
		Experiment: "T", Presets: []string{"a", "b"}, Points: 2,
		Schemes: []string{"x", "y"}, Replicates: 2, BaseSeed: 7,
	}
	cells := s.cells()
	if len(cells) != 2*2*2*2 {
		t.Fatalf("cell count = %d", len(cells))
	}
	// Preset-major, then point, scheme, replicate.
	want := []Cell{
		{Preset: "a", Point: 0, Scheme: "x", Replicate: 0},
		{Preset: "a", Point: 0, Scheme: "x", Replicate: 1},
		{Preset: "a", Point: 0, Scheme: "y", Replicate: 0},
		{Preset: "a", Point: 0, Scheme: "y", Replicate: 1},
		{Preset: "a", Point: 1, Scheme: "x", Replicate: 0},
	}
	for i, w := range want {
		c := cells[i]
		if c.Preset != w.Preset || c.Point != w.Point || c.Scheme != w.Scheme || c.Replicate != w.Replicate {
			t.Fatalf("cell %d = %+v, want %+v", i, c, w)
		}
	}
	// Seeds are stable across enumerations and unique across cells.
	again := s.cells()
	seen := map[int64]bool{}
	for i := range cells {
		if cells[i].Seed != again[i].Seed {
			t.Fatalf("cell %d seed unstable", i)
		}
		if seen[cells[i].Seed] {
			t.Fatalf("duplicate seed at cell %d", i)
		}
		seen[cells[i].Seed] = true
	}
	// Trace seed depends only on the base seed and replicate, via the
	// namespaced derivation (not the old aliasing base+replicate sum).
	for _, c := range cells {
		if c.TraceSeed != TraceSeedFor(s.BaseSeed, c.Replicate) {
			t.Fatalf("trace seed %d for replicate %d", c.TraceSeed, c.Replicate)
		}
		if c.TraceSeed == s.BaseSeed+int64(c.Replicate) {
			t.Fatalf("trace seed for replicate %d still uses the aliasing base+rep formula", c.Replicate)
		}
	}
	// The aliasing the fix removes: base S replicate 1 must no longer share
	// a trace stream with base S+1 replicate 0.
	if TraceSeedFor(7, 1) == TraceSeedFor(8, 0) {
		t.Fatal("TraceSeedFor still aliases (base, rep) pairs across base seeds")
	}
}

func TestSweepRunIndexing(t *testing.T) {
	s := Sweep{
		Experiment: "T", Presets: []string{"a", "b"}, Points: 3,
		Schemes: []string{"x", "y"}, BaseSeed: 1,
	}
	res, err := s.Run(func(c Cell) ([]float64, error) {
		pi := 0
		if c.Preset == "b" {
			pi = 1
		}
		si := 0
		if c.Scheme == "y" {
			si = 1
		}
		return []float64{float64(pi*100 + c.Point*10 + si)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics() != 1 || res.Replicates() != 1 {
		t.Fatalf("metrics=%d reps=%d", res.Metrics(), res.Replicates())
	}
	for pi := 0; pi < 2; pi++ {
		for pt := 0; pt < 3; pt++ {
			for si := 0; si < 2; si++ {
				want := float64(pi*100 + pt*10 + si)
				if got := res.Mean(pi, pt, si, 0); got != want {
					t.Fatalf("Mean(%d,%d,%d) = %v, want %v", pi, pt, si, got, want)
				}
			}
		}
	}
	if v, ok := res.Value(0, 1, 1, 0).(float64); !ok || v != 11 {
		t.Fatalf("single-replicate Value = %v", res.Value(0, 1, 1, 0))
	}
}

func TestSweepReplicateAggregation(t *testing.T) {
	s := Sweep{Experiment: "T", Presets: []string{"a"}, Points: 1, Replicates: 4, BaseSeed: 1}
	res, err := s.Run(func(c Cell) ([]float64, error) {
		return []float64{float64(2 * c.Replicate)}, nil // 0, 2, 4, 6
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Mean(0, 0, 0, 0); m != 3 {
		t.Fatalf("mean = %v", m)
	}
	// Sample sd of {0,2,4,6} ≈ 2.582; stderr = sd/2 ≈ 1.291.
	if se := res.Stderr(0, 0, 0, 0); se < 1.29 || se > 1.30 {
		t.Fatalf("stderr = %v", se)
	}
	if ci := res.CI95(0, 0, 0, 0); ci <= 0 {
		t.Fatalf("ci95 = %v", ci)
	}
	v, ok := res.Value(0, 0, 0, 0).(string)
	if !ok || !strings.Contains(v, "±") || !strings.HasPrefix(v, "3") {
		t.Fatalf("replicated Value = %v", res.Value(0, 0, 0, 0))
	}
}

func TestSweepErrorPropagation(t *testing.T) {
	s := Sweep{Experiment: "T", Presets: []string{"a"}, Points: 4, Parallel: 2, BaseSeed: 1}
	boom := errors.New("boom")
	_, err := s.Run(func(c Cell) ([]float64, error) {
		if c.Point == 2 {
			return nil, boom
		}
		return []float64{1}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	for _, part := range []string{"T", "preset=a", "point=2"} {
		if !strings.Contains(err.Error(), part) {
			t.Fatalf("error %q missing %q", err, part)
		}
	}
}

func TestSweepMetricWidthMismatch(t *testing.T) {
	s := Sweep{Experiment: "T", Presets: []string{"a"}, Points: 2, Parallel: 1, BaseSeed: 1}
	_, err := s.Run(func(c Cell) ([]float64, error) {
		return make([]float64, 1+c.Point), nil
	})
	if err == nil || !strings.Contains(err.Error(), "metric vector length") {
		t.Fatalf("err = %v", err)
	}
}

func TestSweepWorkerBound(t *testing.T) {
	withProcs(t, 8)
	s := Sweep{Experiment: "T", Presets: []string{"a"}, Points: 64, Parallel: 2, BaseSeed: 1}
	var inFlight, peak atomic.Int32
	block := make(chan struct{})
	var once sync.Once
	_, err := s.Run(func(c Cell) ([]float64, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		once.Do(func() { close(block) })
		<-block // make overlap observable
		return []float64{1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds Parallel=2", p)
	}
}

func TestSweepEmptyGridRejected(t *testing.T) {
	if _, err := (Sweep{Experiment: "T", Presets: []string{"a"}}).Run(nil); err == nil {
		t.Fatal("zero points accepted")
	}
	if _, err := (Sweep{Experiment: "T", Points: 1}).Run(nil); err == nil {
		t.Fatal("zero presets accepted")
	}
}

func TestTraceCacheSingleFlight(t *testing.T) {
	c := NewTraceCache()
	var gens atomic.Int32
	gen := func(seed int64) (*trace.Trace, error) {
		gens.Add(1)
		return &trace.Trace{}, nil
	}
	var wg sync.WaitGroup
	results := make([]*trace.Trace, 16)
	for i := range results {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := c.GetFunc("k", 1, gen)
			if err != nil {
				t.Error(err)
			}
			results[i] = tr
		}()
	}
	wg.Wait()
	if n := gens.Load(); n != 1 {
		t.Fatalf("generator ran %d times", n)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("distinct trace instances returned")
		}
	}
	if _, err := c.GetFunc("k", 2, gen); err != nil {
		t.Fatal(err)
	}
	if gens.Load() != 2 || c.Len() != 2 {
		t.Fatalf("gens=%d len=%d", gens.Load(), c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
}

func TestTraceCacheErrorCached(t *testing.T) {
	c := NewTraceCache()
	var gens atomic.Int32
	fail := func(seed int64) (*trace.Trace, error) {
		gens.Add(1)
		return nil, fmt.Errorf("gen failed")
	}
	for i := 0; i < 3; i++ {
		if _, err := c.GetFunc("bad", 1, fail); err == nil {
			t.Fatal("error not surfaced")
		}
	}
	if n := gens.Load(); n != 1 {
		t.Fatalf("failed generator ran %d times", n)
	}
}

// renderExperiment runs one experiment and concatenates its rendered
// tables — the byte-identical surface the parallel runner must preserve.
func renderExperiment(t *testing.T, id string, parallel int) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{Seed: 42, Quick: true, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tab := range tables {
		b.WriteString(tab.Render())
	}
	return b.String()
}

// TestSweepDeterministicAcrossWorkers: the acceptance criterion — sweep
// tables are byte-identical at 1 worker and 8 workers.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	withProcs(t, 8)
	for _, id := range []string{"E2", "E8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			seq := renderExperiment(t, id, 1)
			par := renderExperiment(t, id, 8)
			if seq != par {
				t.Fatalf("tables differ between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
			}
		})
	}
}

// TestSweepReplicatesDeterministic: replicated cells aggregate identically
// regardless of worker count.
func TestSweepReplicatesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	withProcs(t, 8)
	run := func(parallel int) string {
		e, err := ByID("E4")
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(Options{Seed: 42, Quick: true, Parallel: parallel, Replicates: 2})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tab := range tables {
			b.WriteString(tab.Render())
		}
		return b.String()
	}
	seq, par := run(1), run(8)
	if seq != par {
		t.Fatalf("replicated tables differ:\n%s\nvs\n%s", seq, par)
	}
	if !strings.Contains(seq, "±") {
		t.Fatalf("replicated table missing ± cells:\n%s", seq)
	}
}
