package expt

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// seriesMarkers are assigned to data series in column order.
var seriesMarkers = []rune{'*', 'o', '#', '+', 'x', '@', '%', '~'}

// Chart renders a numeric table (first column = x-axis, remaining columns
// = series) as an ASCII line chart with the given plot-area size. It
// returns an error when the table is not chartable (non-numeric cells or
// fewer than two rows).
func (t *Table) Chart(width, height int) (string, error) {
	if width < 16 || height < 4 {
		return "", fmt.Errorf("expt: chart area %dx%d too small", width, height)
	}
	if len(t.Rows) < 2 || len(t.Header) < 2 {
		return "", fmt.Errorf("expt: table %q is not chartable (%d rows, %d cols)", t.Title, len(t.Rows), len(t.Header))
	}

	xs := make([]float64, len(t.Rows))
	series := make([][]float64, len(t.Header)-1)
	for s := range series {
		series[s] = make([]float64, len(t.Rows))
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Header) {
			return "", fmt.Errorf("expt: ragged row %d", i)
		}
		x, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return "", fmt.Errorf("expt: non-numeric x %q", row[0])
		}
		xs[i] = x
		for s := 0; s < len(series); s++ {
			v, err := strconv.ParseFloat(row[s+1], 64)
			if err != nil {
				return "", fmt.Errorf("expt: non-numeric cell %q", row[s+1])
			}
			series[s][i] = v
		}
	}

	xMin, xMax := minMax(xs)
	var all []float64
	for _, s := range series {
		all = append(all, s...)
	}
	yMin, yMax := minMax(all)
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	toCol := func(x float64) int {
		c := int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
		return clampInt(c, 0, width-1)
	}
	toRow := func(y float64) int {
		r := int(math.Round((yMax - y) / (yMax - yMin) * float64(height-1)))
		return clampInt(r, 0, height-1)
	}

	for s := range series {
		marker := seriesMarkers[s%len(seriesMarkers)]
		// Connect consecutive points with interpolated steps so sparse
		// sweeps still read as lines.
		for i := 0; i+1 < len(xs); i++ {
			c0, c1 := toCol(xs[i]), toCol(xs[i+1])
			y0, y1 := series[s][i], series[s][i+1]
			steps := c1 - c0
			if steps < 1 {
				steps = 1
			}
			for st := 0; st <= steps; st++ {
				frac := float64(st) / float64(steps)
				col := c0 + st
				row := toRow(y0 + (y1-y0)*frac)
				grid[row][clampInt(col, 0, width-1)] = marker
			}
		}
		// Make sure actual data points win over interpolation overlap.
		for i := range xs {
			grid[toRow(series[s][i])][toCol(xs[i])] = marker
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	yLabel := func(y float64) string { return fmt.Sprintf("%8.3g", y) }
	for r := 0; r < height; r++ {
		switch r {
		case 0:
			b.WriteString(yLabel(yMax))
		case height - 1:
			b.WriteString(yLabel(yMin))
		case (height - 1) / 2:
			b.WriteString(yLabel((yMax + yMin) / 2))
		default:
			b.WriteString(strings.Repeat(" ", 8))
		}
		b.WriteString(" |")
		b.WriteString(string(grid[r]))
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", width) + "\n")
	left := fmt.Sprintf("%-10.4g", xMin)
	right := fmt.Sprintf("%10.4g", xMax)
	mid := fmt.Sprintf("%g", (xMin+xMax)/2)
	pad := width - len(left) - len(right) - len(mid)
	if pad < 0 {
		pad = 0
	}
	lpad := pad / 2
	fmt.Fprintf(&b, "%s%s%s%s%s   (x: %s)\n",
		strings.Repeat(" ", 10), left, strings.Repeat(" ", lpad)+mid+strings.Repeat(" ", pad-lpad), right, "", t.Header[0])

	// Legend.
	b.WriteString("          ")
	for s := 1; s < len(t.Header); s++ {
		if s > 1 {
			b.WriteString("   ")
		}
		fmt.Fprintf(&b, "%c %s", seriesMarkers[(s-1)%len(seriesMarkers)], t.Header[s])
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// Chartable reports whether Chart would succeed for this table.
func (t *Table) Chartable() bool {
	if len(t.Rows) < 2 || len(t.Header) < 2 {
		return false
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Header) {
			return false
		}
		for _, cell := range row {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				return false
			}
		}
	}
	return true
}

func minMax(xs []float64) (float64, float64) {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
