package freshcache

import (
	"path/filepath"
	"testing"
	"time"
)

func quickOpts(extra ...Option) []Option {
	base := []Option{
		WithPreset("infocom-like"),
		WithUniformItems(3, 2*time.Hour),
		WithCachingNodes(6),
		WithSeed(7),
	}
	return append(base, extra...)
}

func TestQuickstartFlow(t *testing.T) {
	sim, err := New(quickOpts(
		WithScheme(SchemeHierarchical),
		WithQueryWorkload(4, 1.0),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "hierarchical" || res.Trace != "infocom-like" {
		t.Fatalf("result header: %+v", res)
	}
	if res.FreshnessRatio <= 0 || res.FreshnessRatio > 1 {
		t.Fatalf("freshness = %v", res.FreshnessRatio)
	}
	if res.Queries == 0 || res.Answered == 0 {
		t.Fatalf("workload never ran: %+v", res)
	}
	if len(sim.CachingNodes()) != 6 {
		t.Fatalf("caching nodes: %v", sim.CachingNodes())
	}
	cdf := sim.DelayCDF(30*time.Minute, 2*time.Hour, 24*time.Hour)
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("CDF not monotone: %v", cdf)
		}
	}
	if r := sim.FirstDeliveryOnTimeRatio(); r <= 0 || r > 1 {
		t.Fatalf("on-time ratio = %v", r)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	sim, err := New(quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestExactlyOneTraceSource(t *testing.T) {
	if _, err := New(WithUniformItems(1, time.Hour)); err == nil {
		t.Fatal("no trace source accepted")
	}
	_, err := New(
		WithPreset("infocom-like"),
		WithTraceFile("x"),
		WithUniformItems(1, time.Hour),
	)
	if err == nil {
		t.Fatal("two trace sources accepted")
	}
}

func TestItemsRequired(t *testing.T) {
	if _, err := New(WithPreset("infocom-like")); err == nil {
		t.Fatal("missing items accepted")
	}
}

func TestWithItemsDefaults(t *testing.T) {
	sim, err := New(
		WithPreset("infocom-like"),
		WithItems(ItemSpec{Source: 0, Refresh: 2 * time.Hour}),
		WithCachingNodes(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWithContacts(t *testing.T) {
	// A tiny custom trace: node 0 is the source, 1 and 2 caching.
	var contacts []Contact
	add := func(a, b int, at time.Duration) {
		contacts = append(contacts, Contact{A: a, B: b, Start: at, End: at + 5*time.Second})
	}
	for i := 0; i < 5; i++ {
		add(0, 1, time.Duration(i+1)*time.Minute)
		add(1, 2, time.Duration(i+1)*time.Minute+30*time.Second)
		add(2, 3, time.Duration(i+1)*time.Minute+45*time.Second)
	}
	// Measurement phase contacts.
	for i := 10; i < 50; i += 5 {
		add(0, 1, time.Duration(i)*time.Minute)
		add(1, 2, time.Duration(i+2)*time.Minute)
	}
	sim, err := New(
		WithContacts(4, time.Hour, contacts),
		WithUniformItems(1, 10*time.Minute),
		WithCachingNodes(2),
		WithScheme(SchemeHierarchical),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deliveries == 0 {
		t.Fatal("custom trace produced no deliveries")
	}
}

func TestWithContactsInvalid(t *testing.T) {
	_, err := New(
		WithContacts(2, time.Hour, []Contact{{A: 0, B: 0, Start: 0, End: time.Second}}),
		WithUniformItems(1, time.Hour),
	)
	if err == nil {
		t.Fatal("self-contact accepted")
	}
}

func TestWithTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.contacts")
	content := "# nodes: 6\n# duration: 7200\n"
	// Warmup and measurement contacts between source 0 and nodes 1..3.
	lines := ""
	for i := 0; i < 20; i++ {
		at := 60 * (i + 1)
		lines += tformat(0, 1, at) + tformat(1, 2, at+20) + tformat(2, 3, at+40)
	}
	if err := writeFile(path, content+lines); err != nil {
		t.Fatal(err)
	}
	sim, err := New(
		WithTraceFile(path),
		WithUniformItems(1, 20*time.Minute),
		WithCachingNodes(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionValidation(t *testing.T) {
	bad := [][]Option{
		{WithPreset("bogus")},
		{WithTraceFile("")},
		{WithScheme("bogus")},
		{WithItems()},
		{WithUniformItems(0, time.Hour)},
		{WithCachingNodes(0)},
		{WithQueryWorkload(0, 1)},
		{WithQueryWorkload(1, 0)},
		{WithFreshnessRequirement(0)},
		{WithFreshnessRequirement(1.5)},
		{WithHierarchyFanout(0)},
		{WithMaxRelays(0)},
		{WithWarmupFraction(1)},
		{WithBandwidth(0)},
		{WithCacheCapacity(0)},
		{WithCachePolicy("random")},
		{WithMessageLoss(-0.1)},
		{WithMessageLoss(1)},
		{WithChurn(0, time.Hour)},
		{WithRelayBufferCap(0)},
		{WithSprayCopies(0)},
		{WithQueryDelegation(0)},
		{WithRebuildInterval(0)},
		{nil},
	}
	for i, opts := range bad {
		if _, err := New(opts...); err == nil {
			t.Errorf("bad option set %d accepted", i)
		}
	}
}

func TestSchemesAndPresetsExposed(t *testing.T) {
	ss := Schemes()
	if len(ss) != 10 {
		t.Fatalf("schemes: %v", ss)
	}
	found := false
	for _, s := range ss {
		if s == SchemeHierarchical {
			found = true
		}
	}
	if !found {
		t.Fatal("hierarchical missing")
	}
	if len(Presets()) != 2 {
		t.Fatalf("presets: %v", Presets())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Result {
		sim, err := New(quickOpts(WithQueryWorkload(2, 1.0))...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FreshnessRatio != b.FreshnessRatio || a.Transmissions != b.Transmissions || a.Answered != b.Answered {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	infos := Experiments()
	if len(infos) != 21 {
		t.Fatalf("experiments: %d", len(infos))
	}
	if infos[0].ID != "E1" {
		t.Fatalf("first experiment: %+v", infos[0])
	}
}

func TestRunExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	tables, err := RunExperiment("E1", 42, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatal("empty experiment output")
	}
	if _, err := RunExperiment("E99", 42, true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
