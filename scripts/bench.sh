#!/usr/bin/env sh
# Benchmark harness: regenerates the committed benchmark baseline
# (BENCH_PR8.json) and runs the go-test micro/suite benchmarks with
# -benchmem for inspection.
#
# Usage:
#   scripts/bench.sh [out.json]       # default BENCH_PR8.json
#
# The JSON fields fall in two classes:
#   - allocation counts (allocsPerContact, e2AllocsPerOp): deterministic
#     and machine-independent — CI gates on these;
#   - timings (nsPerContact, e2NsPerOp, cellsPerSec): machine-dependent,
#     advisory with a generous gate. Quote them with the machine they came
#     from. Each harness section runs 5 rounds and the JSON records the
#     median sample (timingMethod: "median-of-5" in the schema), so a
#     single noisy round cannot flip a gate verdict; the go-test
#     benchmarks below run with -count=5 for the same reason.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR8.json}"

echo "== benchmark harness (cmd/experiments -benchjson, median of 5 rounds) =="
go run ./cmd/experiments -benchjson "$out" -seed 42

echo
echo "== go test benchmarks (-benchmem, -count=5) =="
go test -run '^$' -bench 'BenchmarkContactDispatch|BenchmarkE2FreshnessVsRefresh|BenchmarkSimulationRun|BenchmarkEventEngine' \
    -benchmem -benchtime 3x -count=5 .

echo
echo "wrote $out"
