#!/usr/bin/env sh
# Benchmark harness: regenerates the committed benchmark baseline
# (BENCH_PR7.json) and runs the go-test micro/suite benchmarks with
# -benchmem for inspection.
#
# Usage:
#   scripts/bench.sh [out.json]       # default BENCH_PR7.json
#
# The JSON fields fall in two classes:
#   - allocation counts (allocsPerContact, e2AllocsPerOp): deterministic
#     and machine-independent — CI gates on these;
#   - timings (nsPerContact, e2NsPerOp, cellsPerSec): machine-dependent,
#     advisory only. Quote them with the machine they came from.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR7.json}"

echo "== benchmark harness (cmd/experiments -benchjson) =="
go run ./cmd/experiments -benchjson "$out" -seed 42

echo
echo "== go test benchmarks (-benchmem) =="
go test -run '^$' -bench 'BenchmarkContactDispatch|BenchmarkE2FreshnessVsRefresh|BenchmarkSimulationRun|BenchmarkEventEngine' \
    -benchmem -benchtime 3x .

echo
echo "wrote $out"
