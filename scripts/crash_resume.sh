#!/bin/sh
# Crash-safety acceptance check, runnable locally (CI runs the same flow):
# SIGKILL a checkpointed quick sweep partway through, resume it from the
# journal, and require the resumed tables to be byte-identical to an
# uninterrupted run. Timing footers ("(...)" lines) are stripped — they
# are the only machine-dependent bytes.
#
# Usage: sh scripts/crash_resume.sh [workdir]
set -eu

dir=${1:-crash_resume_out}
exps=E2,E4
kill_after=${CRASH_AFTER:-4}

mkdir -p "$dir"
go build -o "$dir/experiments" ./cmd/experiments

"$dir/experiments" -quick -run "$exps" -parallel 2 | grep -v '^(' > "$dir/clean.txt"

"$dir/experiments" -quick -run "$exps" -parallel 2 \
    -checkpoint "$dir/checkpoint.jsonl" > /dev/null 2>&1 &
pid=$!
sleep "$kill_after"
if kill -9 "$pid" 2>/dev/null; then
    echo "killed run $pid after ${kill_after}s"
else
    echo "run finished before the kill; resume will replay every cell"
fi
wait "$pid" 2>/dev/null || true
echo "journal: $(wc -l < "$dir/checkpoint.jsonl") record(s) survived the kill"

"$dir/experiments" -quick -run "$exps" -parallel 2 \
    -checkpoint "$dir/checkpoint.jsonl" -resume -obs "$dir/obs" \
    | grep -v '^(' > "$dir/resumed.txt"

if ! diff "$dir/clean.txt" "$dir/resumed.txt"; then
    echo "FAIL: resumed tables diverged from the uninterrupted run" >&2
    exit 1
fi
echo "OK: resumed tables byte-identical to the clean run"
echo "resume provenance: see $dir/obs/manifest.json (.resume)"
