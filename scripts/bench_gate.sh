#!/usr/bin/env sh
# CI benchmark gate: regenerate the benchmark report and fail if the
# quick-mode E2 sweep's allocation count regressed more than 20% against
# the committed baseline. Allocations are deterministic and
# machine-independent, so the gate is exact; timings are not gated.
#
# Usage: scripts/bench_gate.sh [baseline.json] [fresh.json]
set -eu
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_PR3.json}"
fresh="${2:-bench_fresh.json}"

[ -f "$baseline" ] || { echo "no committed baseline $baseline"; exit 1; }

go run ./cmd/experiments -benchjson "$fresh" -seed 42

field() {
    # field <file> <key>: extract a numeric JSON field (flat schema).
    sed -n "s/.*\"$2\": \([0-9.eE+-]*\),*$/\1/p" "$1" | head -n 1
}

base_allocs=$(field "$baseline" e2AllocsPerOp)
new_allocs=$(field "$fresh" e2AllocsPerOp)
[ -n "$base_allocs" ] && [ -n "$new_allocs" ] || {
    echo "could not read e2AllocsPerOp (baseline='$base_allocs' fresh='$new_allocs')"; exit 1;
}

echo "E2 quick sweep allocations: baseline=$base_allocs current=$new_allocs"
awk -v base="$base_allocs" -v new="$new_allocs" 'BEGIN {
    limit = base * 1.2
    if (new > limit) {
        printf "FAIL: allocations regressed >20%% (%.0f > %.0f)\n", new, limit
        exit 1
    }
    printf "OK: within 20%% budget (limit %.0f)\n", limit
}'
