#!/usr/bin/env sh
# CI benchmark gate: regenerate the benchmark report (observability off)
# and fail if either
#   - the quick-mode E2 sweep's allocation count regressed more than 20%,
#   - the contact-dispatch hot path's allocs/contact regressed more than 2%
# against the committed baseline. Allocations are deterministic and
# machine-independent, so both gates are exact; timings are not gated.
#
# Usage: scripts/bench_gate.sh [baseline.json] [fresh.json]
set -eu
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_PR7.json}"
fresh="${2:-bench_fresh.json}"

[ -f "$baseline" ] || { echo "no committed baseline $baseline"; exit 1; }

go run ./cmd/experiments -benchjson "$fresh" -seed 42

field() {
    # field <file> <key>: extract a numeric JSON field (flat schema).
    sed -n "s/.*\"$2\": \([0-9.eE+-]*\),*$/\1/p" "$1" | head -n 1
}

base_allocs=$(field "$baseline" e2AllocsPerOp)
new_allocs=$(field "$fresh" e2AllocsPerOp)
[ -n "$base_allocs" ] && [ -n "$new_allocs" ] || {
    echo "could not read e2AllocsPerOp (baseline='$base_allocs' fresh='$new_allocs')"; exit 1;
}

echo "E2 quick sweep allocations: baseline=$base_allocs current=$new_allocs"
awk -v base="$base_allocs" -v new="$new_allocs" 'BEGIN {
    limit = base * 1.2
    if (new > limit) {
        printf "FAIL: allocations regressed >20%% (%.0f > %.0f)\n", new, limit
        exit 1
    }
    printf "OK: within 20%% budget (limit %.0f)\n", limit
}'

# Contact-dispatch hot path: the obs-disabled per-contact allocation count
# must stay within 2% of the baseline (observability must be ~free when
# off).
base_contact=$(field "$baseline" allocsPerContact)
new_contact=$(field "$fresh" allocsPerContact)
[ -n "$base_contact" ] && [ -n "$new_contact" ] || {
    echo "could not read allocsPerContact (baseline='$base_contact' fresh='$new_contact')"; exit 1;
}

echo "contact dispatch allocs/contact: baseline=$base_contact current=$new_contact"
awk -v base="$base_contact" -v new="$new_contact" 'BEGIN {
    limit = base * 1.02
    if (new > limit) {
        printf "FAIL: contact-dispatch allocs regressed >2%% (%.4f > %.4f)\n", new, limit
        exit 1
    }
    printf "OK: within 2%% budget (limit %.4f)\n", limit
}'
