#!/usr/bin/env sh
# CI benchmark gate: regenerate the benchmark report (observability off)
# and fail on regression against the committed baseline:
#   - e2AllocsPerOp  > baseline +5%   (deterministic, exact)
#   - allocsPerContact > baseline +2% (deterministic, exact)
#   - e2BytesPerOp   > baseline +10%  (deterministic, exact)
#   - e2NsPerOp      > baseline +10%  (median-of-5 timing; the generous
#     margin plus median sampling absorbs machine noise while still
#     catching the cell-level slowdowns per-contact gating missed)
#   - largeNAllocsPerContact > baseline +2%, largeNBytesPerContact
#     > baseline +10% (deterministic; the large-N sparse path)
#
# Usage: scripts/bench_gate.sh [baseline.json] [fresh.json]
set -eu
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_PR10.json}"
fresh="${2:-bench_fresh.json}"

[ -f "$baseline" ] || { echo "no committed baseline $baseline"; exit 1; }

go run ./cmd/experiments -benchjson "$fresh" -seed 42

field() {
    # field <file> <key>: extract a numeric JSON field (flat schema).
    sed -n "s/.*\"$2\": \([0-9.eE+-]*\),*$/\1/p" "$1" | head -n 1
}

# gate <key> <allowed-fractional-growth> <label>
gate() {
    key="$1"; margin="$2"; label="$3"
    base=$(field "$baseline" "$key")
    new=$(field "$fresh" "$key")
    [ -n "$base" ] && [ -n "$new" ] || {
        echo "could not read $key (baseline='$base' fresh='$new')"; exit 1;
    }
    echo "$label: baseline=$base current=$new (budget +$margin)"
    awk -v base="$base" -v new="$new" -v margin="$margin" -v key="$key" 'BEGIN {
        limit = base * (1 + margin)
        if (new > limit) {
            printf "FAIL: %s regressed beyond +%s (%.4f > %.4f)\n", key, margin, new, limit
            exit 1
        }
        printf "OK: within budget (limit %.4f)\n", limit
    }'
}

gate e2AllocsPerOp          0.05 "E2 quick sweep allocations"
gate e2BytesPerOp           0.10 "E2 quick sweep bytes"
gate e2NsPerOp              0.10 "E2 quick sweep wall time"
gate allocsPerContact       0.02 "contact dispatch allocs/contact"
gate largeNAllocsPerContact 0.02 "large-N sparse path allocs/contact"
gate largeNBytesPerContact  0.10 "large-N sparse path bytes/contact"
