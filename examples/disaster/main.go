// Disaster: the classic opportunistic-network motivation — infrastructure
// is down, responders' devices form the only network, and situation
// reports (shelter status, road blockage) must stay fresh at the caching
// devices everyone syncs against. Radios fail, batteries die, nobody has
// global knowledge. Compares the paper's scheme under increasingly harsh
// conditions, with and without the adaptive relay-budget controller.
package main

import (
	"fmt"
	"log"
	"time"

	"freshcache"
)

type condition struct {
	name string
	opts []freshcache.Option
}

func main() {
	fmt.Println("disaster: cache freshness of situation reports under failing conditions")
	fmt.Println("(infocom-like density, reports refresh hourly, K=10 caching devices)")
	fmt.Println()
	fmt.Printf("%-32s  %-12s  %-12s  %-10s\n", "condition", "hierarchical", "adaptive", "tx/ver(ad)")

	conditions := []condition{
		{"ideal", nil},
		{"20% message loss", []freshcache.Option{
			freshcache.WithMessageLoss(0.2),
		}},
		{"loss + battery churn", []freshcache.Option{
			freshcache.WithMessageLoss(0.2),
			freshcache.WithChurn(10*time.Hour, 2*time.Hour),
		}},
		{"loss + churn + local knowledge", []freshcache.Option{
			freshcache.WithMessageLoss(0.2),
			freshcache.WithChurn(10*time.Hour, 2*time.Hour),
			freshcache.WithDistributedKnowledge(),
		}},
	}

	for _, cond := range conditions {
		row := fmt.Sprintf("%-32s", cond.name)
		var adaptiveTx float64
		for _, scheme := range []freshcache.SchemeName{
			freshcache.SchemeHierarchical,
			freshcache.SchemeAdaptive,
		} {
			opts := []freshcache.Option{
				freshcache.WithPreset("infocom-like"),
				freshcache.WithScheme(scheme),
				freshcache.WithItems(
					freshcache.ItemSpec{Source: 0, Refresh: time.Hour, Lifetime: 3 * time.Hour},
					freshcache.ItemSpec{Source: 1, Refresh: time.Hour, Lifetime: 3 * time.Hour},
					freshcache.ItemSpec{Source: 2, Refresh: time.Hour, Lifetime: 3 * time.Hour},
				),
				freshcache.WithCachingNodes(10),
				freshcache.WithQueryWorkload(8, 1.0),
				freshcache.WithSeed(11),
			}
			opts = append(opts, cond.opts...)
			sim, err := freshcache.New(opts...)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("  %-12.3f", res.FreshnessRatio)
			if scheme == freshcache.SchemeAdaptive {
				adaptiveTx = res.TxPerVersion
			}
		}
		fmt.Printf("%s  %-10.1f\n", row, adaptiveTx)
	}
	fmt.Println("\nconditions erode freshness for everyone. the adaptive controller")
	fmt.Println("trims relay copies when delivery is comfortable (cheaper but slightly")
	fmt.Println("staler in the ideal case) and spends extra copies once loss and churn")
	fmt.Println("start breaking deadlines — overtaking the fixed budget under stress.")
}
