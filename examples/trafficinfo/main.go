// Trafficinfo: a tight-freshness scenario — road congestion reports that
// update every 30 minutes and are useless once stale. Shows how the
// probabilistic-replication requirement p drives the relay overhead the
// scheme pays to hit its on-time delivery target.
package main

import (
	"fmt"
	"log"
	"time"

	"freshcache"
)

func main() {
	fmt.Println("trafficinfo: hitting a delivery deadline by paying for relays")
	fmt.Println("(infocom-like trace; congestion reports refresh hourly,")
	fmt.Println(" must reach caches within the hour with probability p)")
	fmt.Println()
	fmt.Printf("%-6s  %-18s  %-14s  %-12s\n", "p", "measured on-time", "tx/version", "relay tx/ver")

	for _, p := range []float64{0.5, 0.7, 0.9, 0.95} {
		sim, err := freshcache.New(
			freshcache.WithPreset("infocom-like"),
			freshcache.WithScheme(freshcache.SchemeHierarchical),
			freshcache.WithItems(
				freshcache.ItemSpec{
					Source:   0,
					Refresh:  time.Hour,
					Window:   time.Hour, // stale == useless
					Lifetime: 2 * time.Hour,
				},
				freshcache.ItemSpec{
					Source:   1,
					Refresh:  time.Hour,
					Window:   time.Hour,
					Lifetime: 2 * time.Hour,
				},
			),
			freshcache.WithCachingNodes(10),
			freshcache.WithFreshnessRequirement(p),
			freshcache.WithMaxRelays(15),
			freshcache.WithSeed(3),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		relayPerVer := 0.0
		if res.VersionsGenerated > 0 {
			relayPerVer = float64(res.TransmissionsByKind["relay"]) / float64(res.VersionsGenerated)
		}
		fmt.Printf("%-6.2f  %-18.3f  %-14.2f  %-12.2f\n",
			p, sim.FirstDeliveryOnTimeRatio(), res.TxPerVersion, relayPerVer)
	}
	fmt.Println("\nraising the requirement makes the planner hand copies to more")
	fmt.Println("relays: on-time delivery climbs with the overhead bill, until every")
	fmt.Println("useful relay is already in use and the curve saturates.")
}
