// Tracereplay: feed an external contact trace (e.g. a CRAWDAD-style
// Bluetooth trace converted to the "a b start end" text format) through
// the public API. When no file is given, it first writes a small synthetic
// demo trace so the example is runnable offline.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"freshcache"
	"freshcache/internal/mobility"
	"freshcache/internal/trace"
)

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		path = "demo.contacts"
		if err := writeDemoTrace(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("no trace given; wrote synthetic demo trace to %s\n\n", path)
	}

	for _, scheme := range []freshcache.SchemeName{
		freshcache.SchemeNoRefresh,
		freshcache.SchemeDirect,
		freshcache.SchemeHierarchical,
		freshcache.SchemeEpidemic,
	} {
		sim, err := freshcache.New(
			freshcache.WithTraceFile(path),
			freshcache.WithScheme(scheme),
			freshcache.WithUniformItems(3, 2*time.Hour),
			freshcache.WithCachingNodes(6),
			freshcache.WithQueryWorkload(4, 1.0),
			freshcache.WithSeed(1),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s freshness=%.3f  valid-access=%.3f  tx/version=%.1f\n",
			scheme, res.FreshnessRatio, res.ValidAnswers, res.TxPerVersion)
	}
}

// writeDemoTrace generates a small community trace in the on-disk format,
// standing in for a real converted trace.
func writeDemoTrace(path string) error {
	g := &mobility.Community{
		TraceName: "demo", N: 50, Duration: 10 * mobility.Day, Communities: 4,
		IntraRate: 8.0 / mobility.Day, InterRate: 1.0 / mobility.Day, RateShape: 0.8,
		InterPairFraction: 0.6, HubFraction: 0.1, HubBoost: 3, MeanContactDur: 180,
	}
	tr, err := g.Generate(99)
	if err != nil {
		return err
	}
	return trace.WriteFile(path, tr)
}
