// Quickstart: run the paper's hierarchical freshness-maintenance scheme on
// a built-in synthetic trace and print the headline metrics next to the
// source-only baseline.
package main

import (
	"fmt"
	"log"
	"time"

	"freshcache"
)

func main() {
	for _, scheme := range []freshcache.SchemeName{
		freshcache.SchemeDirect,
		freshcache.SchemeHierarchical,
	} {
		sim, err := freshcache.New(
			// 78 conference attendees over 4 days, dense daytime contacts.
			freshcache.WithPreset("infocom-like"),
			freshcache.WithScheme(scheme),
			// 5 data items refreshed every 2 hours at nodes 0..4.
			freshcache.WithUniformItems(5, 2*time.Hour),
			// Cache at the 8 most central nodes.
			freshcache.WithCachingNodes(8),
			// Every node asks for data 4 times a day.
			freshcache.WithQueryWorkload(4, 1.0),
			freshcache.WithSeed(42),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s freshness=%.3f  valid-access=%.3f  tx/version=%.1f\n",
			scheme+":", res.FreshnessRatio, res.ValidAnswers, res.TxPerVersion)
	}
	fmt.Println("\nhierarchical refreshing keeps caches markedly fresher than")
	fmt.Println("source-only refreshing, at a fraction of flooding's overhead.")
}
