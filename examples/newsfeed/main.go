// Newsfeed: the workload the paper's introduction motivates — periodically
// refreshed content (news headlines, weather) cached across a campus-like
// population, accessed by everyone. Compares how the freshness of what
// users actually read varies with how often the feed updates.
package main

import (
	"fmt"
	"log"
	"time"

	"freshcache"
)

func main() {
	fmt.Println("newsfeed: fraction of reads served with valid (unexpired) content")
	fmt.Println("(reality-like campus trace, 97 nodes, 30 days, 8 caching nodes)")
	fmt.Println()
	fmt.Printf("%-10s  %-12s  %-12s  %-12s\n", "interval", "direct", "hierarchical", "epidemic")

	for _, interval := range []time.Duration{2 * time.Hour, 6 * time.Hour, 12 * time.Hour, 24 * time.Hour} {
		row := fmt.Sprintf("%-10s", interval)
		for _, scheme := range []freshcache.SchemeName{
			freshcache.SchemeDirect,
			freshcache.SchemeHierarchical,
			freshcache.SchemeEpidemic,
		} {
			sim, err := freshcache.New(
				freshcache.WithPreset("reality-like"),
				freshcache.WithScheme(scheme),
				freshcache.WithItems(
					// One heavily read news item and two niche feeds, all
					// republished on the same schedule; a stale copy stays
					// readable for two intervals before it expires.
					freshcache.ItemSpec{Source: 0, Refresh: interval},
					freshcache.ItemSpec{Source: 1, Refresh: interval},
					freshcache.ItemSpec{Source: 2, Refresh: interval},
				),
				freshcache.WithCachingNodes(8),
				freshcache.WithQueryWorkload(6, 1.2), // 6 reads/node/day, skewed popularity
				freshcache.WithSeed(7),
			)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("  %-12.3f", res.ValidAccessRate)
		}
		fmt.Println(row)
	}
	fmt.Println("\nslower feeds are easier to keep valid; the hierarchical scheme")
	fmt.Println("closes much of the gap to flooding without its overhead.")
}
