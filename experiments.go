package freshcache

import (
	"freshcache/internal/expt"
)

// ExperimentTable is one rendered experiment output: a data series (first
// column is the x-axis) or a results table, with plain-text and CSV
// renderers.
type ExperimentTable = expt.Table

// ExperimentInfo describes one experiment of the reproduction suite.
type ExperimentInfo struct {
	ID            string
	Title         string
	PaperAnalogue string
}

// Experiments lists the reproduction suite (E1…E10, see DESIGN.md).
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range expt.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, PaperAnalogue: e.PaperAnalogue})
	}
	return out
}

// ExperimentOptions controls one experiment run: seed, quick trimming, the
// sweep-cell worker bound, replicates per cell, and an optional RunStats
// sink for throughput accounting.
type ExperimentOptions = expt.Options

// RunExperiment regenerates one experiment's tables. quick trims sweeps to
// a couple of points for smoke runs; the full sweep reproduces the
// evaluation.
func RunExperiment(id string, seed int64, quick bool) ([]*ExperimentTable, error) {
	return RunExperimentOpts(id, ExperimentOptions{Seed: seed, Quick: quick})
}

// RunExperimentOpts is RunExperiment with full control over execution
// options (parallel workers, replicates, run statistics).
func RunExperimentOpts(id string, opts ExperimentOptions) ([]*ExperimentTable, error) {
	e, err := expt.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opts)
}
