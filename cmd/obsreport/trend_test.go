package main

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"freshcache/internal/obs/store"
)

// writeStore appends records carrying one metric with the given values.
func writeStore(t *testing.T, metric string, vals ...float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.jsonl")
	for i, v := range vals {
		rec := &store.Record{
			Schema:    store.Schema,
			Tool:      "experiments",
			CreatedAt: fmt.Sprintf("2026-01-%02dT00:00:00Z", i+1),
			Seed:      42,
			Metrics:   map[string]float64{metric: v, "other": float64(i)},
		}
		if err := store.Append(path, rec); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestTrendRendersSeries(t *testing.T) {
	path := writeStore(t, "e2NsPerOp", 100, 110, 90)
	var b strings.Builder
	if err := run([]string{"trend", "-metric", "e2NsPerOp", path}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"trend e2NsPerOp (3 point(s))", "2026-01-03", "net change: -10.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("trend output missing %q:\n%s", want, out)
		}
	}
}

func TestTrendUnknownMetric(t *testing.T) {
	path := writeStore(t, "x", 1)
	if err := run([]string{"trend", "-metric", "nope", path}, &strings.Builder{}); err == nil {
		t.Fatal("trend accepted an unknown metric")
	}
}

func TestQueryListsRecordsAndMetrics(t *testing.T) {
	path := writeStore(t, "e2NsPerOp", 100, 110)
	var b strings.Builder
	if err := run([]string{"query", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "2 record(s)") {
		t.Errorf("query output: %s", b.String())
	}
	b.Reset()
	if err := run([]string{"query", "-metrics", path}, &b); err != nil {
		t.Fatal(err)
	}
	if got := strings.Fields(b.String()); len(got) != 2 || got[0] != "e2NsPerOp" || got[1] != "other" {
		t.Errorf("query -metrics = %q", b.String())
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	path := writeStore(t, "e2NsPerOp", 100, 103)
	var b strings.Builder
	if err := run([]string{"gate", "-metric", "e2NsPerOp", "-tolerance", "5", path}, &b); err != nil {
		t.Fatalf("gate failed within tolerance: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "ok: within tolerance") {
		t.Errorf("gate output: %s", b.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	path := writeStore(t, "e2NsPerOp", 100, 120)
	var b strings.Builder
	err := run([]string{"gate", "-metric", "e2NsPerOp", "-tolerance", "5", path}, &b)
	if !errors.Is(err, errRegression) {
		t.Fatalf("gate err = %v, want errRegression", err)
	}
	if !strings.Contains(b.String(), "REGRESSION") {
		t.Errorf("gate output: %s", b.String())
	}
}

func TestGateLowerBad(t *testing.T) {
	// Throughput-style metric: dropping from 100 to 80 is the regression.
	path := writeStore(t, "cellsPerSec", 100, 80)
	err := run([]string{"gate", "-metric", "cellsPerSec", "-tolerance", "5", "-lower-bad", path}, &strings.Builder{})
	if !errors.Is(err, errRegression) {
		t.Fatalf("gate -lower-bad err = %v, want errRegression", err)
	}
	// And rising is an improvement, not a regression.
	path = writeStore(t, "cellsPerSec", 80, 100)
	if err := run([]string{"gate", "-metric", "cellsPerSec", "-tolerance", "5", "-lower-bad", path}, &strings.Builder{}); err != nil {
		t.Fatalf("gate flagged an improvement: %v", err)
	}
}

func TestGatePerMetricTolerance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	for _, m := range []map[string]float64{
		{"a": 100, "b": 100},
		{"a": 108, "b": 108}, // +8% on both
	} {
		if err := store.Append(path, &store.Record{Schema: store.Schema, Tool: "experiments", CreatedAt: "t", Metrics: m}); err != nil {
			t.Fatal(err)
		}
	}
	// a tolerates 10% (passes), b tolerates 5% (fails).
	err := run([]string{"gate", "-metric", "a:10,b:5", path}, &strings.Builder{})
	if !errors.Is(err, errRegression) {
		t.Fatalf("per-metric tolerance err = %v, want errRegression", err)
	}
	if err := run([]string{"gate", "-metric", "a:10,b:10", path}, &strings.Builder{}); err != nil {
		t.Fatalf("both within per-metric tolerance: %v", err)
	}
}

func TestGateBaselines(t *testing.T) {
	// History 100, 90, 95; newest 96. prev=95 (+1.05% ok at 5%),
	// best=90 (+6.7% regression at 5%), median=95 (ok).
	path := writeStore(t, "m", 100, 90, 95, 96)
	if err := run([]string{"gate", "-metric", "m", "-baseline", "prev", path}, &strings.Builder{}); err != nil {
		t.Fatalf("prev baseline: %v", err)
	}
	if err := run([]string{"gate", "-metric", "m", "-baseline", "best", path}, &strings.Builder{}); !errors.Is(err, errRegression) {
		t.Fatalf("best baseline err = %v, want errRegression", err)
	}
	if err := run([]string{"gate", "-metric", "m", "-baseline", "median", path}, &strings.Builder{}); err != nil {
		t.Fatalf("median baseline: %v", err)
	}
	if err := run([]string{"gate", "-metric", "m", "-baseline", "nope", path}, &strings.Builder{}); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestGateNeedsHistory(t *testing.T) {
	path := writeStore(t, "m", 100)
	if err := run([]string{"gate", "-metric", "m", path}, &strings.Builder{}); err == nil {
		t.Fatal("gate ran with a single record")
	}
}
