package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"freshcache/internal/obs"
)

// diffMetric is one compared quantity: how to extract it from a scheme's
// cost summary, and which direction counts as a regression.
type diffMetric struct {
	name      string
	value     func(SchemeCost) float64
	higherBad bool // true: an increase is a regression; false: a decrease is
	guarded   func(SchemeCost) bool
}

var diffMetrics = []diffMetric{
	{name: "deliveries", value: func(s SchemeCost) float64 { return float64(s.Deliveries) }, higherBad: false},
	{name: "tx/delivery", value: func(s SchemeCost) float64 { return s.TxPerDelivery }, higherBad: true,
		guarded: func(s SchemeCost) bool { return s.Deliveries > 0 }},
	{name: "meanDelay(s)", value: func(s SchemeCost) float64 { return s.MeanDelay }, higherBad: true},
	{name: "meanAge(s)", value: func(s SchemeCost) float64 { return s.MeanAge }, higherBad: true},
}

func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("obsreport diff", flag.ContinueOnError)
	tol := fs.Float64("tolerance", 5.0, "allowed regression per metric, in percent relative to the baseline (0 = any worsening fails)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: obsreport diff [-tolerance pct] <baseline-dir> <candidate-dir>")
	}
	if *tol < 0 {
		return fmt.Errorf("tolerance must be >= 0, got %g", *tol)
	}
	a, err := loadCosts(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := loadCosts(fs.Arg(1))
	if err != nil {
		return err
	}

	schemes := make([]string, 0, len(a))
	for name := range a {
		if _, ok := b[name]; ok {
			schemes = append(schemes, name)
		}
	}
	sort.Strings(schemes)
	if len(schemes) == 0 {
		return fmt.Errorf("no schemes in common between %s and %s", fs.Arg(0), fs.Arg(1))
	}

	fmt.Fprintf(out, "obsreport diff: %s -> %s (tolerance %.1f%%)\n", fs.Arg(0), fs.Arg(1), *tol)
	fmt.Fprintf(out, "  %-20s %-12s %12s %12s %9s  %s\n", "scheme", "metric", "baseline", "candidate", "delta", "verdict")
	regressions := 0
	for _, name := range schemes {
		sa, sb := a[name], b[name]
		for _, m := range diffMetrics {
			if m.guarded != nil && (!m.guarded(sa) || !m.guarded(sb)) {
				continue
			}
			va, vb := m.value(sa), m.value(sb)
			pct, verdict := judge(va, vb, m.higherBad, *tol)
			if verdict == "REGRESSION" {
				regressions++
			}
			fmt.Fprintf(out, "  %-20s %-12s %12.3f %12.3f %+8.2f%%  %s\n", name, m.name, va, vb, pct, verdict)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%w: %d metric(s) worsened by more than %.1f%%", errRegression, regressions, *tol)
	}
	fmt.Fprintln(out, "ok: within tolerance")
	return nil
}

// judge classifies a baseline→candidate change: the relative delta in
// percent and the verdict ("ok", "improved", or "REGRESSION" when the
// worse direction moved past the tolerance).
func judge(a, b float64, higherBad bool, tolPct float64) (pct float64, verdict string) {
	switch {
	case a == b:
		return 0, "ok"
	case a == 0:
		pct = math.Inf(1)
		if b < 0 {
			pct = math.Inf(-1)
		}
	default:
		pct = (b - a) / math.Abs(a) * 100
	}
	worse := pct > 0 == higherBad
	switch {
	case !worse:
		return pct, "improved"
	case math.Abs(pct) > tolPct:
		return pct, "REGRESSION"
	default:
		return pct, "ok"
	}
}

// loadCosts reads the per-scheme cost summaries from a run's manifest.
// path may be the obs directory or the manifest.json itself.
func loadCosts(path string) (map[string]SchemeCost, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, "manifest.json")
	}
	m, err := obs.ReadManifest(path)
	if err != nil {
		return nil, err
	}
	if len(m.SchemeStats) == 0 {
		return nil, fmt.Errorf("%s: manifest has no scheme roll-ups (was the run executed with -obs?)", path)
	}
	out := make(map[string]SchemeCost, len(m.SchemeStats))
	for _, ru := range m.SchemeStats {
		out[ru.Scheme] = costFromRollup(ru)
	}
	return out, nil
}

// costFromRollup reduces a manifest scheme roll-up to its cost ratios.
func costFromRollup(ru obs.SchemeRollup) SchemeCost {
	sc := SchemeCost{
		Scheme:            ru.Scheme,
		Runs:              ru.Runs,
		Transmissions:     ru.Transmissions,
		Deliveries:        ru.Deliveries,
		VersionsGenerated: ru.VersionsGenerated,
	}
	if ru.Deliveries > 0 {
		sc.TxPerDelivery = float64(ru.Transmissions) / float64(ru.Deliveries)
	}
	if ru.VersionsGenerated > 0 {
		sc.TxPerVersion = float64(ru.Transmissions) / float64(ru.VersionsGenerated)
	}
	if ru.DeliveryDelayHist != nil {
		sc.MeanDelay = ru.DeliveryDelayHist.Mean()
	}
	if ru.RefreshAgeHist != nil {
		sc.MeanAge = ru.RefreshAgeHist.Mean()
	}
	return sc
}
