package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"freshcache/internal/obs"
)

// Dist summarizes one empirical distribution (nearest-rank percentiles).
type Dist struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func newDist(vals []float64) *Dist {
	if len(vals) == 0 {
		return nil
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	q := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return &Dist{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   q(0.50),
		P90:   q(0.90),
		P99:   q(0.99),
	}
}

// CurvePoint is one tick of the age-over-time curve.
type CurvePoint struct {
	T       float64 `json:"t"`
	MeanAge float64 `json:"meanAge"`
}

// TimelineSummary condenses one run's telemetry timeline.
type TimelineSummary struct {
	Points         int          `json:"points"`
	Ticks          int          `json:"ticks"`
	FinalFreshness float64      `json:"finalFreshness"`
	CopyAge        *Dist        `json:"copyAge,omitempty"`
	AgeCurve       []CurvePoint `json:"ageCurve,omitempty"`
}

// RunReport is the per-run section of a report: span-tree statistics from
// the lineage plus the timeline condensate.
type RunReport struct {
	Run         string           `json:"run"`
	Scheme      string           `json:"scheme,omitempty"`
	Spans       int              `json:"spans"`
	SpanKinds   map[string]int   `json:"spanKinds,omitempty"`
	HopCount    *Dist            `json:"hopCount,omitempty"`    // tree edges from generation to delivery
	StallTime   *Dist            `json:"stallTime,omitempty"`   // delivery.t − parent span's t
	DeliveryAge *Dist            `json:"deliveryAge,omitempty"` // copy age at delivery (s)
	Timeline    *TimelineSummary `json:"timeline,omitempty"`
}

// SchemeCost is the manifest roll-up reduced to cost-per-benefit ratios:
// what one delivered refresh (and one generated version) cost in
// transmissions, and how fresh the deliveries were.
type SchemeCost struct {
	Scheme            string  `json:"scheme"`
	Runs              int     `json:"runs"`
	Transmissions     int     `json:"transmissions"`
	Deliveries        int     `json:"deliveries"`
	VersionsGenerated int     `json:"versionsGenerated"`
	TxPerDelivery     float64 `json:"txPerDelivery"`
	TxPerVersion      float64 `json:"txPerVersion"`
	MeanDelay         float64 `json:"meanDelaySeconds"`
	MeanAge           float64 `json:"meanAgeSeconds"`
}

// Report is the full joined view of one run directory.
type Report struct {
	Dir     string       `json:"dir"`
	Tool    string       `json:"tool,omitempty"`
	Seed    int64        `json:"seed,omitempty"`
	Runs    []RunReport  `json:"runs,omitempty"`
	Schemes []SchemeCost `json:"schemes,omitempty"`
}

func runReport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("obsreport report", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	curve := fs.Int("curve", 60, "age-over-time sparkline width in columns (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: obsreport report [-json] <obs-dir>")
	}
	rep, err := buildReport(fs.Arg(0))
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	renderReport(out, rep, *curve)
	return nil
}

// buildReport joins whichever artifacts the directory holds: lineage.jsonl
// and timeline.csv feed the per-run sections, manifest.json the per-scheme
// cost table. At least one of the three must exist.
func buildReport(dir string) (*Report, error) {
	rep := &Report{Dir: dir}
	found := 0

	if m, err := obs.ReadManifest(filepath.Join(dir, "manifest.json")); err == nil {
		found++
		rep.Tool = m.Tool
		rep.Seed = m.Seed
		for _, ru := range m.SchemeStats {
			rep.Schemes = append(rep.Schemes, costFromRollup(ru))
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	byRun := map[string]*RunReport{}
	var order []string
	runFor := func(name string) *RunReport {
		if r := byRun[name]; r != nil {
			return r
		}
		r := &RunReport{Run: name}
		byRun[name] = r
		order = append(order, name)
		return r
	}

	if f, err := os.Open(filepath.Join(dir, "lineage.jsonl")); err == nil {
		found++
		records, rerr := obs.ReadSpansJSONL(f)
		f.Close()
		if rerr != nil {
			return nil, rerr
		}
		perRun := map[string][]obs.SpanRecord{}
		for _, rec := range records {
			perRun[rec.Run] = append(perRun[rec.Run], rec)
		}
		names := make([]string, 0, len(perRun))
		for name := range perRun {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			summarizeLineage(runFor(name), perRun[name])
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	if f, err := os.Open(filepath.Join(dir, "timeline.csv")); err == nil {
		found++
		records, rerr := obs.ReadTimelineCSV(f)
		f.Close()
		if rerr != nil {
			return nil, rerr
		}
		perRun := map[string][]obs.TimelineRecord{}
		for _, rec := range records {
			perRun[rec.Run] = append(perRun[rec.Run], rec)
		}
		names := make([]string, 0, len(perRun))
		for name := range perRun {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			runFor(name).Timeline = summarizeTimeline(perRun[name])
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	if found == 0 {
		return nil, fmt.Errorf("%s: no observability artifacts (want manifest.json, lineage.jsonl or timeline.csv)", dir)
	}
	sort.Strings(order)
	for _, name := range order {
		rep.Runs = append(rep.Runs, *byRun[name])
	}
	return rep, nil
}

// summarizeLineage fills the span-tree statistics of one run: span counts
// by kind, and the hop-count / stall-time / age-at-delivery distributions
// over its delivery spans.
func summarizeLineage(r *RunReport, records []obs.SpanRecord) {
	tree := obs.BuildSpanTree(records)
	r.Spans = len(records)
	r.SpanKinds = map[string]int{}
	var hops, stalls, ages []float64
	for _, rec := range records {
		if r.Scheme == "" {
			r.Scheme = rec.Scheme
		}
		r.SpanKinds[rec.Kind.String()]++
		if rec.Kind != obs.SpanDelivery {
			continue
		}
		hops = append(hops, float64(tree.Depth(rec.ID)))
		ages = append(ages, rec.Age)
		if parent, ok := tree.ByID[rec.Parent]; ok {
			stalls = append(stalls, rec.T-parent.T)
		}
	}
	r.HopCount = newDist(hops)
	r.StallTime = newDist(stalls)
	r.DeliveryAge = newDist(ages)
}

// summarizeTimeline condenses one run's samples: the last freshness-ratio
// sample, the copy-age distribution, and the mean copy age per tick (the
// age-over-time curve).
func summarizeTimeline(records []obs.TimelineRecord) *TimelineSummary {
	ts := &TimelineSummary{Points: len(records)}
	ticks := map[float64]bool{}
	var ageSum, ageN = map[float64]float64{}, map[float64]int{}
	var ages []float64
	for _, rec := range records {
		ticks[rec.T] = true
		switch rec.Series {
		case "freshness_ratio":
			ts.FinalFreshness = rec.Val // records are time-ordered per run
		case "copy_age":
			ages = append(ages, rec.Val)
			ageSum[rec.T] += rec.Val
			ageN[rec.T]++
		}
	}
	ts.Ticks = len(ticks)
	ts.CopyAge = newDist(ages)
	ticksSorted := make([]float64, 0, len(ageSum))
	for t := range ageSum {
		ticksSorted = append(ticksSorted, t)
	}
	sort.Float64s(ticksSorted)
	for _, t := range ticksSorted {
		ts.AgeCurve = append(ts.AgeCurve, CurvePoint{T: t, MeanAge: ageSum[t] / float64(ageN[t])})
	}
	return ts
}

// sparkline renders vals as a fixed-width bar strip, bucketing when there
// are more values than columns.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	if len(vals) > width {
		bucketed := make([]float64, width)
		for i := range bucketed {
			lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
			if hi == lo {
				hi = lo + 1
			}
			sum := 0.0
			for _, v := range vals[lo:hi] {
				sum += v
			}
			bucketed[i] = sum / float64(hi-lo)
		}
		vals = bucketed
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		b.WriteRune(levels[i])
	}
	return b.String()
}

func renderDist(w io.Writer, label, unit string, d *Dist) {
	if d == nil {
		return
	}
	fmt.Fprintf(w, "  %-18s mean %.1f%s  min %.0f%s  max %.0f%s  p50 %.0f%s  p90 %.0f%s  p99 %.0f%s  (n=%d)\n",
		label, d.Mean, unit, d.Min, unit, d.Max, unit, d.P50, unit, d.P90, unit, d.P99, unit, d.Count)
}

func renderReport(w io.Writer, rep *Report, curveWidth int) {
	fmt.Fprintf(w, "obsreport: %s", rep.Dir)
	if rep.Tool != "" {
		fmt.Fprintf(w, " (tool %s, seed %d)", rep.Tool, rep.Seed)
	}
	fmt.Fprintln(w)
	for i := range rep.Runs {
		r := &rep.Runs[i]
		fmt.Fprintf(w, "\nrun %s", r.Run)
		if r.Scheme != "" {
			fmt.Fprintf(w, " (scheme %s)", r.Scheme)
		}
		fmt.Fprintln(w)
		if r.Spans > 0 {
			kinds := make([]string, 0, len(r.SpanKinds))
			for k := range r.SpanKinds {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			parts := make([]string, 0, len(kinds))
			for _, k := range kinds {
				parts = append(parts, fmt.Sprintf("%s %d", k, r.SpanKinds[k]))
			}
			fmt.Fprintf(w, "  spans: %d (%s)\n", r.Spans, strings.Join(parts, ", "))
			renderDist(w, "hops to delivery:", "", r.HopCount)
			renderDist(w, "stall before hop:", "s", r.StallTime)
			renderDist(w, "age at delivery:", "s", r.DeliveryAge)
		}
		if ts := r.Timeline; ts != nil {
			fmt.Fprintf(w, "  timeline: %d points over %d ticks, final freshness %.4f\n",
				ts.Points, ts.Ticks, ts.FinalFreshness)
			renderDist(w, "copy age:", "s", ts.CopyAge)
			if curveWidth > 0 && len(ts.AgeCurve) > 1 {
				curve := make([]float64, len(ts.AgeCurve))
				for i, p := range ts.AgeCurve {
					curve[i] = p.MeanAge
				}
				fmt.Fprintf(w, "  mean copy age over time: %s\n", sparkline(curve, curveWidth))
			}
		}
	}
	if len(rep.Schemes) > 0 {
		fmt.Fprintf(w, "\nscheme cost (manifest roll-up)\n")
		fmt.Fprintf(w, "  %-20s %5s %10s %10s %9s %12s %11s %10s %9s\n",
			"scheme", "runs", "tx", "delivered", "versions", "tx/delivery", "tx/version", "meanDelay", "meanAge")
		for _, sc := range rep.Schemes {
			fmt.Fprintf(w, "  %-20s %5d %10d %10d %9d %12.2f %11.2f %9.0fs %8.0fs\n",
				sc.Scheme, sc.Runs, sc.Transmissions, sc.Deliveries, sc.VersionsGenerated,
				sc.TxPerDelivery, sc.TxPerVersion, sc.MeanDelay, sc.MeanAge)
		}
	}
}
