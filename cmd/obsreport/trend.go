package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"freshcache/internal/obs/store"
)

// This file is the cross-run side of obsreport: trend/query/gate read the
// persistent results store (freshcache-store/1 JSONL appended by
// `experiments -store` / `freshsim -store`) instead of a single run's obs
// directory, so history can be plotted and gated without re-running
// anything.

// runTrend plots one stored metric's trajectory across the store.
func runTrend(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("obsreport trend", flag.ContinueOnError)
	metric := fs.String("metric", "", "metric name to plot (see `obsreport query -metrics`)")
	tool := fs.String("tool", "", "restrict to records appended by this tool (e.g. experiments, experiments-bench, freshsim)")
	last := fs.Int("last", 0, "plot only the most recent N points (0 = all)")
	asJSON := fs.Bool("json", false, "emit the series as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: obsreport trend -metric <name> [-tool t] [-last N] <store.jsonl>")
	}
	if *metric == "" {
		return fmt.Errorf("trend: -metric is required")
	}
	recs, err := store.Read(fs.Arg(0))
	if err != nil {
		return err
	}
	pts := store.Series(store.Filter(recs, *tool), *metric)
	if len(pts) == 0 {
		return fmt.Errorf("trend: no stored record carries metric %q (try `obsreport query -metrics %s`)",
			*metric, fs.Arg(0))
	}
	if *last > 0 && len(pts) > *last {
		pts = pts[len(pts)-*last:]
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(pts)
	}

	fmt.Fprintf(out, "# trend %s (%d point(s))\n", *metric, len(pts))
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.Value
	}
	fmt.Fprintf(out, "  %s\n", sparkline(vals, 64))
	fmt.Fprintf(out, "  %-5s %-20s %-18s %-10s %14s\n", "idx", "createdAt", "tool", "revision", "value")
	for _, p := range pts {
		fmt.Fprintf(out, "  %-5d %-20s %-18s %-10s %14s\n",
			p.Index, p.CreatedAt, p.Tool, shortRev(p.GitRevision), formatValue(p.Value))
	}
	first, lastV := pts[0].Value, pts[len(pts)-1].Value
	if first != 0 {
		fmt.Fprintf(out, "  net change: %+.2f%% (%s -> %s)\n",
			(lastV-first)/absf(first)*100, formatValue(first), formatValue(lastV))
	}
	return nil
}

// runQuery lists the store's records, or the union of metric names.
func runQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("obsreport query", flag.ContinueOnError)
	tool := fs.String("tool", "", "restrict to records appended by this tool")
	names := fs.Bool("metrics", false, "list the union of stored metric names instead of the records")
	asJSON := fs.Bool("json", false, "emit the records as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: obsreport query [-tool t] [-metrics] <store.jsonl>")
	}
	recs, err := store.Read(fs.Arg(0))
	if err != nil {
		return err
	}
	recs = store.Filter(recs, *tool)
	if *names {
		for _, n := range store.MetricNames(recs) {
			fmt.Fprintln(out, n)
		}
		return nil
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(recs)
	}
	fmt.Fprintf(out, "# store %s (%d record(s))\n", fs.Arg(0), len(recs))
	fmt.Fprintf(out, "  %-5s %-20s %-18s %-10s %-8s %-18s %8s %8s %7s\n",
		"idx", "createdAt", "tool", "revision", "seed", "configDigest", "metrics", "cells", "wall")
	for i, r := range recs {
		fmt.Fprintf(out, "  %-5d %-20s %-18s %-10s %-8d %-18s %8d %8d %6.1fs\n",
			i, r.CreatedAt, r.Tool, shortRev(r.GitRevision), r.Seed, r.ConfigDigest,
			len(r.Metrics), len(r.Cells), r.WallClockSeconds)
	}
	return nil
}

// gateSpec is one gated metric: its name and the tolerance (percent) its
// worse direction may move before the gate fails.
type gateSpec struct {
	metric string
	tolPct float64
}

// parseGateSpecs parses a comma-separated "-metric" value where each item
// is "name" (uses the shared default tolerance) or "name:tolPct".
func parseGateSpecs(s string, defTol float64) ([]gateSpec, error) {
	var specs []gateSpec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		spec := gateSpec{metric: item, tolPct: defTol}
		if i := strings.LastIndexByte(item, ':'); i >= 0 {
			tol, err := strconv.ParseFloat(item[i+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("gate: bad tolerance in %q: %w", item, err)
			}
			spec.metric, spec.tolPct = item[:i], tol
		}
		if spec.metric == "" {
			return nil, fmt.Errorf("gate: empty metric name in %q", s)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("gate: -metric is required (comma-separated, optional per-metric :tolerance)")
	}
	return specs, nil
}

// runGate compares the newest stored record's metrics against a baseline
// drawn from history and fails (exit 2, like diff) when any gated metric
// worsened past its tolerance. It generalizes scripts/bench_gate.sh from
// four hard-coded bench metrics to any stored metric.
func runGate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("obsreport gate", flag.ContinueOnError)
	metric := fs.String("metric", "", "comma-separated metrics to gate; each item is name or name:tolerancePct")
	tool := fs.String("tool", "", "restrict to records appended by this tool")
	baseline := fs.String("baseline", "prev", "baseline to compare the newest record against: prev (previous record), best (best historical value), median (historical median)")
	tol := fs.Float64("tolerance", 5, "default allowed worsening in percent")
	lowerBad := fs.Bool("lower-bad", false, "a lower value is worse (throughput-style metrics; default: higher is worse, cost-style)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: obsreport gate -metric <name[:tol],...> [-baseline prev|best|median] [-tolerance pct] [-lower-bad] <store.jsonl>")
	}
	specs, err := parseGateSpecs(*metric, *tol)
	if err != nil {
		return err
	}
	recs, err := store.Read(fs.Arg(0))
	if err != nil {
		return err
	}
	recs = store.Filter(recs, *tool)
	if len(recs) < 2 {
		return fmt.Errorf("gate: need at least 2 stored records to compare (have %d)", len(recs))
	}
	newest, history := recs[len(recs)-1], recs[:len(recs)-1]
	higherBad := !*lowerBad

	fmt.Fprintf(out, "# gate: newest record (idx %d, %s) vs %s of %d record(s)\n",
		len(recs)-1, newest.CreatedAt, *baseline, len(history))
	fmt.Fprintf(out, "  %-28s %14s %14s %9s %8s  %s\n", "metric", "baseline", "newest", "delta", "tol", "verdict")
	regressions := 0
	for _, spec := range specs {
		nv, ok := newest.Metrics[spec.metric]
		if !ok {
			return fmt.Errorf("gate: newest record has no metric %q", spec.metric)
		}
		base, _, err := baselineValue(history, spec.metric, *baseline, higherBad)
		if err != nil {
			return err
		}
		pct, verdict := judge(base, nv, higherBad, spec.tolPct)
		if verdict == "REGRESSION" {
			regressions++
		}
		fmt.Fprintf(out, "  %-28s %14s %14s %+8.2f%% %7.1f%%  %s\n",
			spec.metric, formatValue(base), formatValue(nv), pct, spec.tolPct, verdict)
	}
	if regressions > 0 {
		return fmt.Errorf("%w: %d metric(s) worsened past tolerance vs %s baseline",
			errRegression, regressions, *baseline)
	}
	fmt.Fprintln(out, "ok: within tolerance")
	return nil
}

// baselineValue draws the comparison value for one metric from the
// historical records (everything except the newest), under the chosen
// baseline policy. Returns the value and how many historical records
// carried the metric.
func baselineValue(history []store.Record, metric, policy string, higherBad bool) (float64, int, error) {
	vals := make([]float64, 0, len(history))
	for _, r := range history {
		if v, ok := r.Metrics[metric]; ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, 0, fmt.Errorf("gate: no historical record carries metric %q", metric)
	}
	switch policy {
	case "prev":
		return vals[len(vals)-1], len(vals), nil
	case "best":
		best := vals[0]
		for _, v := range vals[1:] {
			if (higherBad && v < best) || (!higherBad && v > best) {
				best = v
			}
		}
		return best, len(vals), nil
	case "median":
		s := append([]float64(nil), vals...)
		sort.Float64s(s)
		mid := len(s) / 2
		if len(s)%2 == 0 {
			return (s[mid-1] + s[mid]) / 2, len(vals), nil
		}
		return s[mid], len(vals), nil
	default:
		return 0, 0, fmt.Errorf("gate: unknown baseline %q (want prev, best or median)", policy)
	}
}

// formatValue renders a stored metric value compactly: integers plainly,
// fractions with enough precision to compare.
func formatValue(v float64) string {
	if v == float64(int64(v)) && absf(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// shortRev abbreviates a VCS revision for table display.
func shortRev(rev string) string {
	if len(rev) > 10 {
		return rev[:10]
	}
	if rev == "" {
		return "-"
	}
	return rev
}
