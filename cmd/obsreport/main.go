// Command obsreport turns the observability artifacts of a run (lineage
// spans, telemetry timelines, the manifest) into a human-readable report,
// and diffs two runs against regression thresholds.
//
// Usage:
//
//	obsreport report out/obs               # per-run lineage + timeline report
//	obsreport report -json out/obs         # machine-readable report
//	obsreport diff out/a out/b             # compare manifests, exit 2 on regression
//	obsreport diff -tolerance 2 out/a out/b
//
// The trend/query/gate subcommands read the persistent cross-run results
// store (the JSONL appended by `experiments -store` / `freshsim -store`):
//
//	obsreport query store.jsonl                    # list stored records
//	obsreport query -metrics store.jsonl           # list stored metric names
//	obsreport trend -metric e2NsPerOp store.jsonl  # metric trajectory + sparkline
//	obsreport gate -metric e2NsPerOp:10,e2AllocsPerOp:5 store.jsonl
//
// Exit status: 0 on success (diff/gate: within tolerance), 1 on usage or
// I/O errors, 2 when diff or gate finds a regression beyond the tolerance.
package main

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// errRegression marks a diff that exceeded the tolerance; main maps it to
// exit status 2 so CI can distinguish "worse" from "broken".
var errRegression = errors.New("regression beyond tolerance")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		if errors.Is(err, errRegression) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: obsreport <report|diff|trend|query|gate> [flags] <dir|store> [<dir>]")
	}
	switch args[0] {
	case "report":
		return runReport(args[1:], out)
	case "diff":
		return runDiff(args[1:], out)
	case "trend":
		return runTrend(args[1:], out)
	case "query":
		return runQuery(args[1:], out)
	case "gate":
		return runGate(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want report, diff, trend, query or gate)", args[0])
	}
}
