package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"freshcache/internal/metrics"
	"freshcache/internal/obs"
)

// writeFixture materializes one synthetic obs directory: a two-hop lineage
// (generate → duty → handoff → delivery), a three-tick timeline and a
// manifest with one scheme roll-up.
func writeFixture(t *testing.T, dir string, tx, deliveries int, delay float64) {
	t.Helper()
	lin := obs.NewLineage("run-a", "hierarchical", 0)
	root := lin.Generate(0, 1, 3, 0)
	duty := lin.Duty(10, root, 0, 1, 3)
	hop := lin.Handoff(20, duty, 0, 5, 1, 3)
	lin.Delivered(30, hop, 5, 9, 1, 3, 30)
	f, err := os.Create(filepath.Join(dir, "lineage.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := lin.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tl := obs.NewTimeline("run-a", 0)
	for i, tick := range []float64{100, 200, 300} {
		tl.Sample(tick, "freshness_ratio", -1, -1, float64(i)*0.25)
		tl.Sample(tick, "copy_age", 9, 1, float64(i)*60)
	}
	f, err = os.Create(filepath.Join(dir, "timeline.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(obs.TimelineCSVHeader + "\n"); err != nil {
		t.Fatal(err)
	}
	if err := tl.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	delayHist := metrics.NewHist(metrics.DelayBuckets())
	delayHist.Observe(delay)
	m := obs.NewManifest("test")
	m.Seed = 42
	m.SchemeStats = []obs.SchemeRollup{{
		Scheme:            "hierarchical",
		Runs:              1,
		Transmissions:     tx,
		Deliveries:        deliveries,
		VersionsGenerated: 10,
		DeliveryDelayHist: delayHist,
	}}
	m.FinishResources(time.Now())
	if err := m.Write(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
}

func TestReportJoinsArtifacts(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, 100, 50, 120)

	var buf strings.Builder
	if err := run([]string{"report", "-json", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("report -json output not JSON: %v", err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Run != "run-a" {
		t.Fatalf("runs = %+v, want one run-a", rep.Runs)
	}
	r := rep.Runs[0]
	if r.Spans != 4 || r.SpanKinds["delivery"] != 1 {
		t.Errorf("spans = %d kinds = %v, want 4 with one delivery", r.Spans, r.SpanKinds)
	}
	// The delivery sits three edges below the generation root.
	if r.HopCount == nil || r.HopCount.Mean != 3 {
		t.Errorf("hop count = %+v, want mean 3", r.HopCount)
	}
	// Stall = delivery.t − handoff.t = 30 − 20.
	if r.StallTime == nil || r.StallTime.Mean != 10 {
		t.Errorf("stall = %+v, want mean 10", r.StallTime)
	}
	if r.Timeline == nil || r.Timeline.Ticks != 3 || r.Timeline.FinalFreshness != 0.5 {
		t.Errorf("timeline = %+v, want 3 ticks final 0.5", r.Timeline)
	}
	if len(rep.Schemes) != 1 || rep.Schemes[0].TxPerDelivery != 2 {
		t.Errorf("schemes = %+v, want tx/delivery 2", rep.Schemes)
	}

	// Text mode renders the same joined report.
	buf.Reset()
	if err := run([]string{"report", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"run run-a", "hops to delivery:", "timeline: 6 points over 3 ticks", "scheme cost"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text report missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestDiffVerdictsAndExit(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeFixture(t, base, 100, 50, 120)

	// Identical runs diff clean.
	var buf strings.Builder
	writeFixture(t, cand, 100, 50, 120)
	if err := run([]string{"diff", base, cand}, &buf); err != nil {
		t.Fatalf("identical diff: %v", err)
	}

	// 50% more transmissions per delivery: past the default 5% tolerance.
	writeFixture(t, cand, 150, 50, 120)
	buf.Reset()
	err := run([]string{"diff", base, cand}, &buf)
	if !errors.Is(err, errRegression) {
		t.Fatalf("worsened diff err = %v, want errRegression", err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("diff output missing REGRESSION verdict:\n%s", buf.String())
	}

	// The same delta passes under a wide-open tolerance.
	buf.Reset()
	if err := run([]string{"diff", "-tolerance", "100", base, cand}, &buf); err != nil {
		t.Fatalf("tolerant diff: %v", err)
	}

	// Improvements never fail, whatever the tolerance.
	writeFixture(t, cand, 10, 80, 60)
	buf.Reset()
	if err := run([]string{"diff", "-tolerance", "0", base, cand}, &buf); err != nil {
		t.Fatalf("improved diff: %v", err)
	}
	if !strings.Contains(buf.String(), "improved") {
		t.Errorf("diff output missing improved verdict:\n%s", buf.String())
	}
}

func TestDiffErrors(t *testing.T) {
	if err := run([]string{"diff", t.TempDir(), t.TempDir()}, &strings.Builder{}); err == nil {
		t.Error("diff of empty dirs should fail")
	}
	if err := run([]string{"bogus"}, &strings.Builder{}); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Error("missing subcommand should fail")
	}
}
