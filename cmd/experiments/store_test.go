package main

import (
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"freshcache/internal/obs/store"
)

// TestRunStoreAppendsRecord: every -store invocation appends one record
// joining provenance with the metric snapshot, per-cell costs and ledger
// dispositions; repeated same-seed runs append records whose
// result-carrying fields are identical.
func TestRunStoreAppendsRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	for i := 0; i < 2; i++ {
		if err := run([]string{"-run", "E2", "-quick", "-store", path}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := store.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("store holds %d records, want 2", len(recs))
	}
	r := recs[0]
	if r.Tool != "experiments" || r.Seed != 42 || r.ConfigDigest == "" {
		t.Fatalf("record provenance: %+v", r)
	}
	if r.Metrics["engine/contacts"] <= 0 {
		t.Errorf("record metrics missing engine/contacts: %v", r.Metrics)
	}
	if len(r.Cells) == 0 {
		t.Error("record has no per-cell costs")
	}
	for _, c := range r.Cells {
		if c.Experiment != "E2" || c.Attempts != 1 || c.WallSeconds < 0 {
			t.Errorf("cell cost: %+v", c)
		}
		if c.Mallocs == 0 {
			t.Errorf("cell %v: no alloc delta at -parallel 1", c)
		}
	}
	if r.Resume == nil || r.Resume.CellsExecuted == 0 {
		t.Errorf("record resume summary: %+v", r.Resume)
	}

	// Determinism modulo provenance/timing: metrics, histogram totals,
	// dispositions and digest match across same-seed runs.
	a, b := recs[0], recs[1]
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("metrics differ across same-seed runs:\n%v\n%v", a.Metrics, b.Metrics)
	}
	if !reflect.DeepEqual(a.Histograms, b.Histograms) {
		t.Error("histograms differ across same-seed runs")
	}
	if a.ConfigDigest != b.ConfigDigest || *a.Resume != *b.Resume || len(a.Cells) != len(b.Cells) {
		t.Errorf("records not comparable: %+v vs %+v", a, b)
	}
}

// TestRunStoreDeterministicAcrossParallel: tables and the record's
// result-carrying fields are identical at -parallel 1 and 8; only cell
// wall/alloc numbers (timing) may differ.
func TestRunStoreDeterministicAcrossParallel(t *testing.T) {
	dir := t.TempDir()
	p1, p8 := filepath.Join(dir, "p1.jsonl"), filepath.Join(dir, "p8.jsonl")
	out1, err := captureStdout(t, func() error {
		return run([]string{"-run", "E2", "-quick", "-parallel", "1", "-store", p1})
	})
	if err != nil {
		t.Fatal(err)
	}
	out8, err := captureStdout(t, func() error {
		return run([]string{"-run", "E2", "-quick", "-parallel", "8", "-store", p8})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out8 {
		t.Errorf("tables differ between -parallel 1 and 8 with -store:\n%s\n---\n%s", out1, out8)
	}
	r1, err := store.Read(p1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := store.Read(p8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1[0].Metrics, r8[0].Metrics) {
		t.Error("store metrics differ between -parallel 1 and 8")
	}
	if !reflect.DeepEqual(r1[0].Histograms, r8[0].Histograms) {
		t.Error("store histograms differ between -parallel 1 and 8")
	}
	// Cell identity (grid order) is deterministic either way.
	if len(r1[0].Cells) != len(r8[0].Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(r1[0].Cells), len(r8[0].Cells))
	}
	for i := range r1[0].Cells {
		a, b := r1[0].Cells[i], r8[0].Cells[i]
		if a.Experiment != b.Experiment || a.Preset != b.Preset || a.Point != b.Point ||
			a.Scheme != b.Scheme || a.Replicate != b.Replicate {
			t.Fatalf("cell %d identity differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestRunLiveEndpointReleased: the -http listener is closed when run()
// returns — the old serveDebug leaked it, so a second run() on the same
// address failed to bind.
func TestRunLiveEndpointReleased(t *testing.T) {
	ln, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	for i := 0; i < 2; i++ {
		if err := run([]string{"-run", "E1", "-quick", "-http", addr}); err != nil {
			t.Fatalf("run %d with -http %s: %v", i, addr, err)
		}
	}
}

// TestRunProfileSlowest: the N most expensive cells' CPU profiles land in
// <obs>/profiles/ and are listed in the manifest outputs.
func TestRunProfileSlowest(t *testing.T) {
	dir := t.TempDir()
	obsDir := filepath.Join(dir, "obs")
	if err := run([]string{"-run", "E2", "-quick", "-parallel", "1",
		"-obs", obsDir, "-store", filepath.Join(dir, "s.jsonl"), "-profile-slowest", "2"}); err != nil {
		t.Fatal(err)
	}
	profs, err := filepath.Glob(filepath.Join(obsDir, "profiles", "*.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) == 0 || len(profs) > 2 {
		t.Fatalf("profiles written: %v, want 1-2", profs)
	}
	for _, p := range profs {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Errorf("profile %s: %v (size %d)", p, err, st.Size())
		}
	}
}

func TestRunProfileSlowestValidation(t *testing.T) {
	if err := run([]string{"-run", "E1", "-quick", "-profile-slowest", "2"}); err == nil {
		t.Error("-profile-slowest accepted without -obs")
	}
	if err := run([]string{"-run", "E1", "-quick", "-obs", t.TempDir(),
		"-parallel", "2", "-profile-slowest", "2"}); err == nil {
		t.Error("-profile-slowest accepted at -parallel 2")
	}
	if err := run([]string{"-run", "E1", "-quick", "-profile-slowest", "-1"}); err == nil {
		t.Error("negative -profile-slowest accepted")
	}
}

// TestRunBenchStore: the bench harness path appends a record under its
// BENCH_*.json metric names, so `obsreport trend -metric e2NsPerOp` works.
func TestRunBenchStore(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness run in -short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	_, err := captureStdout(t, func() error {
		return run([]string{"-benchjson", filepath.Join(dir, "b.json"), "-store", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := store.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Tool != "experiments-bench" {
		t.Fatalf("bench store records: %+v", recs)
	}
	for _, name := range []string{"e2NsPerOp", "e2AllocsPerOp", "e2BytesPerOp", "nsPerContact", "cellsPerSec"} {
		if recs[0].Metrics[name] <= 0 {
			t.Errorf("bench record missing %s: %v", name, recs[0].Metrics)
		}
	}
}
