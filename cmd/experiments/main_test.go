package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "E1", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCSVAndCharts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	if err := run([]string{"-run", "E1", "-quick", "-csv", dir, "-charts"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV written")
	}
}

func TestRunMultipleIDs(t *testing.T) {
	if err := run([]string{"-run", "E1,E17", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunParallel(t *testing.T) {
	if err := run([]string{"-run", "E1,E17", "-quick", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelValidation(t *testing.T) {
	if err := run([]string{"-run", "E1", "-parallel", "0"}); err == nil {
		t.Fatal("parallel=0 accepted")
	}
}

func TestRunReplicates(t *testing.T) {
	if err := run([]string{"-run", "E4", "-quick", "-replicates", "2", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplicatesValidation(t *testing.T) {
	if err := run([]string{"-run", "E1", "-replicates", "-1"}); err == nil {
		t.Fatal("replicates=-1 accepted")
	}
}
