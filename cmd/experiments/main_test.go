package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"freshcache/internal/obs"
)

// captureStdout runs fn with os.Stdout redirected and returns its output
// with volatile footer lines (timings, memory) stripped — the byte-exact
// surface the resume tests compare.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "(") { // wall-clock and mem footers
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n"), runErr
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "E1", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCSVAndCharts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	if err := run([]string{"-run", "E1", "-quick", "-csv", dir, "-charts"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV written")
	}
}

func TestRunMultipleIDs(t *testing.T) {
	if err := run([]string{"-run", "E1,E17", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunParallel(t *testing.T) {
	if err := run([]string{"-run", "E1,E17", "-quick", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelValidation(t *testing.T) {
	if err := run([]string{"-run", "E1", "-parallel", "0"}); err == nil {
		t.Fatal("parallel=0 accepted")
	}
}

func TestRunReplicates(t *testing.T) {
	if err := run([]string{"-run", "E4", "-quick", "-replicates", "2", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplicatesValidation(t *testing.T) {
	if err := run([]string{"-run", "E1", "-replicates", "-1"}); err == nil {
		t.Fatal("replicates=-1 accepted")
	}
}

func TestRunWithObservability(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "obs")
	if err := run([]string{"-run", "E1", "-quick", "-obs", dir, "-obs-sample", "2"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"events.jsonl", "trace.json", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing obs output %s: %v", name, err)
		}
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	b, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace.json invalid: %v", err)
	}
	b, err = os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("manifest.json invalid: %v", err)
	}
	if m.Schema != obs.ManifestSchema || m.Tool != "experiments" || m.Metrics == nil || m.Events == nil {
		t.Fatalf("manifest incomplete: %+v", m)
	}
}

// TestRunCheckpointResume is the CLI acceptance test for the tentpole: an
// interrupted checkpointed run (simulated by truncating the journal to its
// first half) resumed with -resume prints tables byte-identical to an
// uninterrupted run.
func TestRunCheckpointResume(t *testing.T) {
	clean, err := captureStdout(t, func() error {
		return run([]string{"-run", "E2", "-quick"})
	})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	journaled, err := captureStdout(t, func() error {
		return run([]string{"-run", "E2", "-quick", "-checkpoint", ckpt})
	})
	if err != nil {
		t.Fatal(err)
	}
	if journaled != clean {
		t.Fatalf("checkpointed output differs from clean run:\n%s\nvs\n%s", journaled, clean)
	}
	b, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("journal holds %d records, want several", len(lines))
	}
	// "Kill" the run halfway: keep only the first half of the journal.
	if err := os.WriteFile(ckpt, []byte(strings.Join(lines[:len(lines)/2], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := captureStdout(t, func() error {
		return run([]string{"-run", "E2", "-quick", "-checkpoint", ckpt, "-resume"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != clean {
		t.Fatalf("resumed output differs from clean run:\n%s\nvs\n%s", resumed, clean)
	}
}

// TestRunResumeManifestProvenance: a resumed run's manifest records the
// journal path and the per-disposition cell counts.
func TestRunResumeManifestProvenance(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if err := run([]string{"-run", "E2", "-quick", "-checkpoint", ckpt}); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "obs")
	if err := run([]string{"-run", "E2", "-quick", "-checkpoint", ckpt, "-resume", "-obs", dir}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m.Resume == nil {
		t.Fatal("manifest missing resume summary")
	}
	if m.Resume.Journal != ckpt || !m.Resume.Resumed {
		t.Fatalf("resume provenance = %+v", m.Resume)
	}
	if m.Resume.CellsReplayed == 0 || m.Resume.CellsExecuted != 0 || m.Resume.CellsFailed != 0 {
		t.Fatalf("fully-journaled resume counts = %+v", m.Resume)
	}
	if len(m.Failures) != 0 {
		t.Fatalf("clean run reported failures: %+v", m.Failures)
	}
}

func TestRunCheckpointValidation(t *testing.T) {
	if err := run([]string{"-run", "E1", "-quick", "-resume"}); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
	if err := run([]string{"-run", "E1", "-quick", "-retries", "-1"}); err == nil {
		t.Fatal("negative -retries accepted")
	}
}

// TestRunKeepGoingClean: -keep-going on a run with no failures behaves like
// a normal run and exits cleanly.
func TestRunKeepGoingClean(t *testing.T) {
	clean, err := captureStdout(t, func() error {
		return run([]string{"-run", "E1", "-quick"})
	})
	if err != nil {
		t.Fatal(err)
	}
	kg, err := captureStdout(t, func() error {
		return run([]string{"-run", "E1", "-quick", "-keep-going", "-retries", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if kg != clean {
		t.Fatalf("keep-going output differs on a clean run:\n%s\nvs\n%s", kg, clean)
	}
}

func TestRunObsValidation(t *testing.T) {
	if err := run([]string{"-run", "E1", "-quick", "-obs", t.TempDir(), "-obs-sample", "0"}); err == nil {
		t.Fatal("obs-sample=0 accepted")
	}
}

func TestManifestDirs(t *testing.T) {
	got := manifestDirs("", "a", "a", "b", "")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("manifestDirs = %v", got)
	}
}
