package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"freshcache/internal/obs"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "E1", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCSVAndCharts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	if err := run([]string{"-run", "E1", "-quick", "-csv", dir, "-charts"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV written")
	}
}

func TestRunMultipleIDs(t *testing.T) {
	if err := run([]string{"-run", "E1,E17", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunParallel(t *testing.T) {
	if err := run([]string{"-run", "E1,E17", "-quick", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelValidation(t *testing.T) {
	if err := run([]string{"-run", "E1", "-parallel", "0"}); err == nil {
		t.Fatal("parallel=0 accepted")
	}
}

func TestRunReplicates(t *testing.T) {
	if err := run([]string{"-run", "E4", "-quick", "-replicates", "2", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplicatesValidation(t *testing.T) {
	if err := run([]string{"-run", "E1", "-replicates", "-1"}); err == nil {
		t.Fatal("replicates=-1 accepted")
	}
}

func TestRunWithObservability(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "obs")
	if err := run([]string{"-run", "E1", "-quick", "-obs", dir, "-obs-sample", "2"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"events.jsonl", "trace.json", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing obs output %s: %v", name, err)
		}
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	b, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace.json invalid: %v", err)
	}
	b, err = os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("manifest.json invalid: %v", err)
	}
	if m.Schema != obs.ManifestSchema || m.Tool != "experiments" || m.Metrics == nil || m.Events == nil {
		t.Fatalf("manifest incomplete: %+v", m)
	}
}

func TestRunObsValidation(t *testing.T) {
	if err := run([]string{"-run", "E1", "-quick", "-obs", t.TempDir(), "-obs-sample", "0"}); err == nil {
		t.Fatal("obs-sample=0 accepted")
	}
}

func TestManifestDirs(t *testing.T) {
	got := manifestDirs("", "a", "a", "b", "")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("manifestDirs = %v", got)
	}
}
