// Command experiments regenerates the paper-reproduction evaluation: every
// table and figure of the suite (E1…E10, see DESIGN.md), as aligned text
// on stdout and optionally as CSV files.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run E2,E5      # selected experiments
//	experiments -quick          # trimmed sweeps (smoke run)
//	experiments -csv out/       # also write one CSV per table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"freshcache/internal/expt"
	"freshcache/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only   = fs.String("run", "", "comma-separated experiment IDs (default all)")
		seed   = fs.Int64("seed", 42, "random seed")
		quick  = fs.Bool("quick", false, "trimmed sweeps for a fast smoke run")
		csvDir = fs.String("csv", "", "directory to write per-table CSV files")
		charts = fs.Bool("charts", false, "also render numeric tables as ASCII charts")
		par    = fs.Int("parallel", 1, "sweep-cell worker bound per experiment, capped at GOMAXPROCS (experiments themselves also run up to this many at once; output stays in order)")
		reps   = fs.Int("replicates", 0, "replicates per sweep cell (0 = experiment default; >1 reports mean±stderr)")
		list   = fs.Bool("list", false, "list the experiment registry and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-4s %-55s (%s)\n", e.ID, e.Title, e.PaperAnalogue)
		}
		return nil
	}

	var selected []expt.Experiment
	if *only == "" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := expt.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	if *par < 1 {
		return fmt.Errorf("parallel must be >= 1, got %d", *par)
	}
	if *reps < 0 {
		return fmt.Errorf("replicates must be >= 0, got %d", *reps)
	}

	// Experiments run concurrently up to the -parallel bound; each one's
	// rendered output is buffered and printed in registry order so logs
	// stay deterministic regardless of completion order. The semaphore is
	// acquired before spawning so at most -parallel goroutines exist at a
	// time, instead of one per experiment all parked on the semaphore.
	results := make([]outcome, len(selected))
	sem := make(chan struct{}, *par)
	var wg sync.WaitGroup
	for i, e := range selected {
		i, e := i, e
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			opts := expt.Options{Seed: *seed, Quick: *quick, Parallel: *par, Replicates: *reps}
			results[i] = runOne(e, opts, *charts, *csvDir)
		}()
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			return fmt.Errorf("%s: %w", selected[i].ID, r.err)
		}
		fmt.Print(r.text)
	}
	return nil
}

// outcome is one experiment's rendered output block (or its error).
type outcome struct {
	text string
	err  error
}

// runOne executes one experiment and renders its full output block.
func runOne(e expt.Experiment, opts expt.Options, charts bool, csvDir string) (out outcome) {
	start := time.Now()
	stats := metrics.NewRunStats()
	opts.Stats = stats
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s (paper analogue: %s)\n", e.ID, e.Title, e.PaperAnalogue)
	tables, err := e.Run(opts)
	if err != nil {
		out.err = err
		return
	}
	for i, t := range tables {
		fmt.Fprintln(&b, t.Render())
		if charts && t.Chartable() {
			chart, err := t.Chart(64, 16)
			if err != nil {
				out.err = fmt.Errorf("chart for table %q: %w", t.Title, err)
				return
			}
			fmt.Fprintln(&b, chart)
		}
		if csvDir != "" {
			name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i)
			if err := os.WriteFile(filepath.Join(csvDir, name), []byte(t.CSV()), 0o644); err != nil {
				out.err = err
				return
			}
		}
	}
	elapsed := time.Since(start)
	if stats.Runs() > 0 {
		fmt.Fprintf(&b, "(%s stats: %s)\n", e.ID, stats.Summary(elapsed.Seconds()))
	}
	fmt.Fprintf(&b, "(%s completed in %s)\n\n", e.ID, elapsed.Round(time.Millisecond))
	out.text = b.String()
	return
}
