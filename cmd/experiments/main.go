// Command experiments regenerates the paper-reproduction evaluation: every
// table and figure of the suite (E1…E10, see DESIGN.md), as aligned text
// on stdout and optionally as CSV files.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run E2,E5      # selected experiments
//	experiments -quick          # trimmed sweeps (smoke run)
//	experiments -csv out/       # also write one CSV per table
//	experiments -benchjson BENCH.json   # benchmark harness, JSON report
//	experiments -cpuprofile cpu.pb.gz   # pprof CPU profile of the run
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"freshcache/internal/expt"
	"freshcache/internal/metrics"
	"freshcache/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only   = fs.String("run", "", "comma-separated experiment IDs (default all)")
		seed   = fs.Int64("seed", 42, "random seed")
		quick  = fs.Bool("quick", false, "trimmed sweeps for a fast smoke run")
		csvDir = fs.String("csv", "", "directory to write per-table CSV files")
		charts = fs.Bool("charts", false, "also render numeric tables as ASCII charts")
		par    = fs.Int("parallel", 1, "sweep-cell worker bound per experiment, capped at GOMAXPROCS (experiments themselves also run up to this many at once; output stays in order)")
		reps   = fs.Int("replicates", 0, "replicates per sweep cell (0 = experiment default; >1 reports mean±stderr)")
		list   = fs.Bool("list", false, "list the experiment registry and exit")

		benchJSON  = fs.String("benchjson", "", "run the benchmark harness instead of experiments and write a JSON report to this file")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")

		checkpoint = fs.String("checkpoint", "", "per-cell checkpoint journal (JSONL): completed sweep cells are appended and fsynced as they finish, so an interrupted run can be resumed")
		resume     = fs.Bool("resume", false, "replay completed cells from the -checkpoint journal and execute only the remainder; resumed tables are byte-identical to an uninterrupted run")
		keepGoing  = fs.Bool("keep-going", false, "finish the whole grid past cell or experiment failures: partial tables get explicit NA holes, the failure roster lands in the manifest, and the exit status is nonzero")
		retries    = fs.Int("retries", 0, "per-cell retry budget for transient failures (0 = fail on first error)")

		obsDir       = fs.String("obs", "", "directory for observability output: events.jsonl (per-run event trace), trace.json (Chrome trace-event JSON for Perfetto), metrics.om (OpenMetrics registry snapshot) and manifest.json")
		obsSample    = fs.Int("obs-sample", 1, "keep 1 in N trace events (1 = all)")
		obsBuffer    = fs.Int("obs-buffer", obs.DefaultBufferCap, "per-run trace ring-buffer capacity in events")
		lineage      = fs.Bool("lineage", false, "collect causal refresh-lineage spans (generation → duty → handoff → delivery trees) per run and write lineage.jsonl to the -obs directory (requires -obs)")
		timelineTick = fs.Float64("timeline-tick", 0, "simulated-time telemetry sampling period in seconds: snapshot freshness ratio, cumulative counts and per-node/item copy age every tick into timeline.csv in the -obs directory (0 = off, negative = auto tick of measurement-phase/240; requires -obs)")
		timings      = fs.Bool("timings", false, "include machine-dependent wall-clock columns in tables that have them (E10)")
		httpAddr     = fs.String("http", "", "serve expvar (/debug/vars) and pprof (/debug/pprof) on this address for the duration of the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	if *benchJSON != "" {
		rep, err := expt.RunBench(*seed)
		if err != nil {
			return err
		}
		if err := expt.WriteBenchJSON(*benchJSON, rep); err != nil {
			return err
		}
		fmt.Printf("(bench: %.0f ns/contact, %.1f allocs/contact, %.1f cells/s -> %s)\n",
			rep.NsPerContact, rep.AllocsPerContact, rep.CellsPerSec, *benchJSON)
		return nil
	}

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-4s %-55s (%s)\n", e.ID, e.Title, e.PaperAnalogue)
		}
		return nil
	}

	var selected []expt.Experiment
	if *only == "" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := expt.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	if *par < 1 {
		return fmt.Errorf("parallel must be >= 1, got %d", *par)
	}
	if *reps < 0 {
		return fmt.Errorf("replicates must be >= 0, got %d", *reps)
	}
	if *obsSample < 1 {
		return fmt.Errorf("obs-sample must be >= 1, got %d", *obsSample)
	}
	if *retries < 0 {
		return fmt.Errorf("retries must be >= 0, got %d", *retries)
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint (the journal to replay)")
	}
	if (*lineage || *timelineTick != 0) && *obsDir == "" {
		return fmt.Errorf("-lineage and -timeline-tick require -obs (the output directory)")
	}

	// Crash-safety plumbing: the journal checkpoints completed sweep cells
	// (and replays them under -resume); the ledger accounts every cell's
	// disposition and collects the permanent-failure roster.
	ledger := &expt.Ledger{}
	var journal *expt.Journal
	if *checkpoint != "" {
		j, err := expt.OpenJournal(*checkpoint, *resume)
		if err != nil {
			return err
		}
		journal = j
		defer journal.Close()
		if *resume {
			fmt.Fprintf(os.Stderr, "experiments: resuming from %s (%d completed cells)\n",
				*checkpoint, journal.Len())
		}
	}

	// The observer exists when anything consumes it: trace output (-obs) or
	// the live endpoint (-http). Nil otherwise, so hot paths stay zero-cost.
	var observer *obs.Observer
	if *obsDir != "" || *httpAddr != "" {
		if *obsDir != "" {
			if err := os.MkdirAll(*obsDir, 0o755); err != nil {
				return err
			}
		}
		observer = obs.NewObserver(obs.Config{SampleEvery: *obsSample, BufferCap: *obsBuffer,
			Lineage: *lineage, TimelineTick: *timelineTick})
	}
	if *httpAddr != "" {
		if err := serveDebug(*httpAddr, observer); err != nil {
			return err
		}
	}

	// Experiments run concurrently up to the -parallel bound; each one's
	// rendered output is buffered and printed in registry order so logs
	// stay deterministic regardless of completion order. The semaphore is
	// acquired before spawning so at most -parallel goroutines exist at a
	// time, instead of one per experiment all parked on the semaphore.
	results := make([]outcome, len(selected))
	sem := make(chan struct{}, *par)
	var wg sync.WaitGroup
	for i, e := range selected {
		i, e := i, e
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			opts := expt.Options{Seed: *seed, Quick: *quick, Parallel: *par, Replicates: *reps,
				Obs: observer, Timings: *timings,
				Journal: journal, Ledger: ledger, Retries: *retries, KeepGoing: *keepGoing}
			results[i] = runOne(e, opts, *charts, *csvDir)
		}()
	}
	wg.Wait()
	var outputs []string
	var expErrors []string
	for i, r := range results {
		if r.err != nil {
			if !*keepGoing {
				return fmt.Errorf("%s: %w", selected[i].ID, r.err)
			}
			// Degradation mode: a failed experiment must not throw away the
			// others' completed work. Note it, keep printing the rest, and
			// fail the exit status at the end.
			fmt.Fprintf(os.Stderr, "experiments: %s failed (continuing, -keep-going): %v\n",
				selected[i].ID, r.err)
			expErrors = append(expErrors, fmt.Sprintf("%s: %v", selected[i].ID, r.err))
			continue
		}
		fmt.Print(r.text)
		outputs = append(outputs, r.files...)
	}

	if observer != nil && *obsDir != "" {
		for _, f := range []struct {
			name  string
			write func(*os.File) error
		}{
			{"events.jsonl", func(f *os.File) error { return observer.WriteJSONL(f) }},
			{"trace.json", func(f *os.File) error { return observer.WriteChromeTrace(f) }},
			{"metrics.om", func(f *os.File) error { return obs.WriteOpenMetrics(f, observer.Metrics.Snapshot()) }},
			{"lineage.jsonl", func(f *os.File) error { return observer.WriteLineageJSONL(f) }},
			{"timeline.csv", func(f *os.File) error { return observer.WriteTimelineCSV(f) }},
		} {
			if f.name == "lineage.jsonl" && !*lineage {
				continue
			}
			if f.name == "timeline.csv" && *timelineTick == 0 {
				continue
			}
			path := filepath.Join(*obsDir, f.name)
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := f.write(out); err != nil {
				out.Close()
				return fmt.Errorf("obs: %s: %w", f.name, err)
			}
			if err := out.Close(); err != nil {
				return err
			}
			outputs = append(outputs, path)
		}
	}

	// A manifest accompanies the run's artifacts: next to the CSVs when
	// -csv is given, and in the obs directory when -obs is.
	if *csvDir != "" || observer != nil {
		m := obs.NewManifest("experiments")
		m.Command = append([]string{"experiments"}, args...)
		m.Seed = *seed
		m.Config = map[string]any{
			"run": *only, "quick": *quick, "parallel": *par, "replicates": *reps,
			"timings": *timings, "obsSample": *obsSample, "obsBuffer": *obsBuffer,
			"lineage": *lineage, "timelineTick": *timelineTick,
			"checkpoint": *checkpoint, "resume": *resume,
			"keepGoing": *keepGoing, "retries": *retries,
		}
		m.Outputs = outputs
		if observer != nil {
			snap := observer.Metrics.Snapshot()
			m.Metrics = &snap
			st := observer.Stats()
			m.Events = &st
			m.SchemeStats = observer.SchemeRollups()
		}
		// Crash-safety provenance: the permanent-failure roster and the
		// checkpoint/resume cell accounting.
		m.Failures = ledger.Failures()
		if *checkpoint != "" || len(m.Failures) > 0 {
			rs := ledger.Summary()
			rs.Journal = *checkpoint
			rs.Resumed = *resume
			m.Resume = &rs
		}
		m.FinishResources(start)
		for _, dir := range manifestDirs(*csvDir, *obsDir) {
			if err := m.Write(filepath.Join(dir, "manifest.json")); err != nil {
				return err
			}
		}
	}
	// Process-wide memory footer. Parenthesized like the per-experiment
	// stats lines, so determinism checks that strip timing footers strip
	// this too.
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	// HeapSys only grows, so it is the peak OS-mapped heap of the run.
	fmt.Printf("(mem: totalAlloc=%.1fMB mallocs=%d heapInuse=%.1fMB peakHeapSys=%.1fMB gc=%d)\n",
		float64(m.TotalAlloc)/(1<<20), m.Mallocs, float64(m.HeapInuse)/(1<<20),
		float64(m.HeapSys)/(1<<20), m.NumGC)

	// Degradation mode still fails the invocation: partial tables were
	// printed and the roster recorded, but the exit status must say the run
	// was not whole.
	if failures := ledger.Failures(); len(failures) > 0 || len(expErrors) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "experiments: failed cell %s preset=%s point=%d scheme=%q replicate=%d after %d attempt(s): %s\n",
				f.Experiment, f.Preset, f.Point, f.Scheme, f.Replicate, f.Attempts, firstLine(f.Error))
		}
		return fmt.Errorf("completed with %d failed cell(s) and %d failed experiment(s); partial tables contain NA holes",
			len(failures), len(expErrors))
	}
	return nil
}

// firstLine trims a multi-line error (panic stacks) for the stderr roster;
// the full text is in the manifest.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// outcome is one experiment's rendered output block (or its error), plus
// the files it wrote.
type outcome struct {
	text  string
	files []string
	err   error
}

// manifestDirs returns the distinct non-empty directories a manifest.json
// belongs in.
func manifestDirs(dirs ...string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, d := range dirs {
		if d == "" || seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

// publishOnce guards the process-global expvar names: tests invoke run()
// repeatedly and expvar.Publish panics on duplicates.
var publishOnce sync.Once

// serveDebug starts the -http endpoint: expvar at /debug/vars (including
// the observer's metric snapshot under "freshcache") and net/http/pprof at
// /debug/pprof. It serves for the remainder of the process.
func serveDebug(addr string, observer *obs.Observer) error {
	publishOnce.Do(func() {
		expvar.Publish("freshcache", expvar.Func(func() any {
			return observer.Registry().Snapshot()
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("http: %w", err)
	}
	fmt.Fprintf(os.Stderr, "experiments: debug endpoint on http://%s/debug/vars\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: http:", err)
		}
	}()
	return nil
}

// runOne executes one experiment and renders its full output block.
func runOne(e expt.Experiment, opts expt.Options, charts bool, csvDir string) (out outcome) {
	start := time.Now()
	stats := metrics.NewRunStats()
	opts.Stats = stats
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s (paper analogue: %s)\n", e.ID, e.Title, e.PaperAnalogue)
	tables, err := e.Run(opts)
	if err != nil {
		out.err = err
		return
	}
	for i, t := range tables {
		fmt.Fprintln(&b, t.Render())
		if charts && t.Chartable() {
			chart, err := t.Chart(64, 16)
			if err != nil {
				out.err = fmt.Errorf("chart for table %q: %w", t.Title, err)
				return
			}
			fmt.Fprintln(&b, chart)
		}
		if csvDir != "" {
			name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i)
			path := filepath.Join(csvDir, name)
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				out.err = err
				return
			}
			out.files = append(out.files, path)
		}
	}
	elapsed := time.Since(start)
	if stats.Runs() > 0 {
		fmt.Fprintf(&b, "(%s stats: %s)\n", e.ID, stats.Summary(elapsed.Seconds()))
	}
	fmt.Fprintf(&b, "(%s completed in %s)\n\n", e.ID, elapsed.Round(time.Millisecond))
	out.text = b.String()
	return
}
