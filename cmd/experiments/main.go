// Command experiments regenerates the paper-reproduction evaluation: every
// table and figure of the suite (E1…E10, see DESIGN.md), as aligned text
// on stdout and optionally as CSV files.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run E2,E5      # selected experiments
//	experiments -quick          # trimmed sweeps (smoke run)
//	experiments -csv out/       # also write one CSV per table
//	experiments -benchjson BENCH.json   # benchmark harness, JSON report
//	experiments -cpuprofile cpu.pb.gz   # pprof CPU profile of the run
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"freshcache/internal/expt"
	"freshcache/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only   = fs.String("run", "", "comma-separated experiment IDs (default all)")
		seed   = fs.Int64("seed", 42, "random seed")
		quick  = fs.Bool("quick", false, "trimmed sweeps for a fast smoke run")
		csvDir = fs.String("csv", "", "directory to write per-table CSV files")
		charts = fs.Bool("charts", false, "also render numeric tables as ASCII charts")
		par    = fs.Int("parallel", 1, "sweep-cell worker bound per experiment, capped at GOMAXPROCS (experiments themselves also run up to this many at once; output stays in order)")
		reps   = fs.Int("replicates", 0, "replicates per sweep cell (0 = experiment default; >1 reports mean±stderr)")
		list   = fs.Bool("list", false, "list the experiment registry and exit")

		benchJSON  = fs.String("benchjson", "", "run the benchmark harness instead of experiments and write a JSON report to this file")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	if *benchJSON != "" {
		rep, err := expt.RunBench(*seed)
		if err != nil {
			return err
		}
		if err := expt.WriteBenchJSON(*benchJSON, rep); err != nil {
			return err
		}
		fmt.Printf("(bench: %.0f ns/contact, %.1f allocs/contact, %.1f cells/s -> %s)\n",
			rep.NsPerContact, rep.AllocsPerContact, rep.CellsPerSec, *benchJSON)
		return nil
	}

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-4s %-55s (%s)\n", e.ID, e.Title, e.PaperAnalogue)
		}
		return nil
	}

	var selected []expt.Experiment
	if *only == "" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := expt.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	if *par < 1 {
		return fmt.Errorf("parallel must be >= 1, got %d", *par)
	}
	if *reps < 0 {
		return fmt.Errorf("replicates must be >= 0, got %d", *reps)
	}

	// Experiments run concurrently up to the -parallel bound; each one's
	// rendered output is buffered and printed in registry order so logs
	// stay deterministic regardless of completion order. The semaphore is
	// acquired before spawning so at most -parallel goroutines exist at a
	// time, instead of one per experiment all parked on the semaphore.
	results := make([]outcome, len(selected))
	sem := make(chan struct{}, *par)
	var wg sync.WaitGroup
	for i, e := range selected {
		i, e := i, e
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			opts := expt.Options{Seed: *seed, Quick: *quick, Parallel: *par, Replicates: *reps}
			results[i] = runOne(e, opts, *charts, *csvDir)
		}()
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			return fmt.Errorf("%s: %w", selected[i].ID, r.err)
		}
		fmt.Print(r.text)
	}
	// Process-wide memory footer. Parenthesized like the per-experiment
	// stats lines, so determinism checks that strip timing footers strip
	// this too.
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	// HeapSys only grows, so it is the peak OS-mapped heap of the run.
	fmt.Printf("(mem: totalAlloc=%.1fMB mallocs=%d heapInuse=%.1fMB peakHeapSys=%.1fMB gc=%d)\n",
		float64(m.TotalAlloc)/(1<<20), m.Mallocs, float64(m.HeapInuse)/(1<<20),
		float64(m.HeapSys)/(1<<20), m.NumGC)
	return nil
}

// outcome is one experiment's rendered output block (or its error).
type outcome struct {
	text string
	err  error
}

// runOne executes one experiment and renders its full output block.
func runOne(e expt.Experiment, opts expt.Options, charts bool, csvDir string) (out outcome) {
	start := time.Now()
	stats := metrics.NewRunStats()
	opts.Stats = stats
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s (paper analogue: %s)\n", e.ID, e.Title, e.PaperAnalogue)
	tables, err := e.Run(opts)
	if err != nil {
		out.err = err
		return
	}
	for i, t := range tables {
		fmt.Fprintln(&b, t.Render())
		if charts && t.Chartable() {
			chart, err := t.Chart(64, 16)
			if err != nil {
				out.err = fmt.Errorf("chart for table %q: %w", t.Title, err)
				return
			}
			fmt.Fprintln(&b, chart)
		}
		if csvDir != "" {
			name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i)
			if err := os.WriteFile(filepath.Join(csvDir, name), []byte(t.CSV()), 0o644); err != nil {
				out.err = err
				return
			}
		}
	}
	elapsed := time.Since(start)
	if stats.Runs() > 0 {
		fmt.Fprintf(&b, "(%s stats: %s)\n", e.ID, stats.Summary(elapsed.Seconds()))
	}
	fmt.Fprintf(&b, "(%s completed in %s)\n\n", e.ID, elapsed.Round(time.Millisecond))
	out.text = b.String()
	return
}
