// Command experiments regenerates the paper-reproduction evaluation: every
// table and figure of the suite (E1…E10, see DESIGN.md), as aligned text
// on stdout and optionally as CSV files.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run E2,E5      # selected experiments
//	experiments -quick          # trimmed sweeps (smoke run)
//	experiments -csv out/       # also write one CSV per table
//	experiments -benchjson BENCH.json   # benchmark harness, JSON report
//	experiments -cpuprofile cpu.pb.gz   # pprof CPU profile of the run
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"freshcache/internal/expt"
	"freshcache/internal/metrics"
	"freshcache/internal/obs"
	"freshcache/internal/obs/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only   = fs.String("run", "", "comma-separated experiment IDs (default all)")
		seed   = fs.Int64("seed", 42, "random seed")
		quick  = fs.Bool("quick", false, "trimmed sweeps for a fast smoke run")
		csvDir = fs.String("csv", "", "directory to write per-table CSV files")
		charts = fs.Bool("charts", false, "also render numeric tables as ASCII charts")
		par    = fs.Int("parallel", 1, "sweep-cell worker bound per experiment, capped at GOMAXPROCS (experiments themselves also run up to this many at once; output stays in order)")
		reps   = fs.Int("replicates", 0, "replicates per sweep cell (0 = experiment default; >1 reports mean±stderr)")
		list   = fs.Bool("list", false, "list the experiment registry and exit")

		benchJSON  = fs.String("benchjson", "", "run the benchmark harness instead of experiments and write a JSON report to this file")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")

		checkpoint = fs.String("checkpoint", "", "per-cell checkpoint journal (JSONL): completed sweep cells are appended and fsynced as they finish, so an interrupted run can be resumed")
		resume     = fs.Bool("resume", false, "replay completed cells from the -checkpoint journal and execute only the remainder; resumed tables are byte-identical to an uninterrupted run")
		keepGoing  = fs.Bool("keep-going", false, "finish the whole grid past cell or experiment failures: partial tables get explicit NA holes, the failure roster lands in the manifest, and the exit status is nonzero")
		retries    = fs.Int("retries", 0, "per-cell retry budget for transient failures (0 = fail on first error)")

		obsDir       = fs.String("obs", "", "directory for observability output: events.jsonl (per-run event trace), trace.json (Chrome trace-event JSON for Perfetto), metrics.om (OpenMetrics registry snapshot) and manifest.json")
		obsSample    = fs.Int("obs-sample", 1, "keep 1 in N trace events (1 = all)")
		obsBuffer    = fs.Int("obs-buffer", obs.DefaultBufferCap, "per-run trace ring-buffer capacity in events")
		lineage      = fs.Bool("lineage", false, "collect causal refresh-lineage spans (generation → duty → handoff → delivery trees) per run and write lineage.jsonl to the -obs directory (requires -obs)")
		timelineTick = fs.Float64("timeline-tick", 0, "simulated-time telemetry sampling period in seconds: snapshot freshness ratio, cumulative counts and per-node/item copy age every tick into timeline.csv in the -obs directory (0 = off, negative = auto tick of measurement-phase/240; requires -obs)")
		timings      = fs.Bool("timings", false, "include machine-dependent wall-clock columns in tables that have them (E10)")
		httpAddr     = fs.String("http", "", "serve the live endpoint on this address for the duration of the run: HTML status page at /, sweep progress SSE at /live/progress, OpenMetrics at /live/metrics, pprof at /debug/pprof")

		storePath      = fs.String("store", "", "append this run's record (provenance, metric snapshot, per-cell costs, dispositions) to the cross-run results store at this path (JSONL; query with obsreport trend/query/gate)")
		profileSlowest = fs.Int("profile-slowest", 0, "capture pprof CPU profiles of the N most expensive sweep cells into <obs>/profiles/ (requires -obs and -parallel 1)")
		verbose        = fs.Bool("v", false, "verbose: log at debug level (per-cell retries and other detail)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	initLogging(*verbose)
	start := time.Now()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				slog.Error("memprofile", "err", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				slog.Error("memprofile", "err", err)
			}
		}()
	}

	if *benchJSON != "" {
		rep, err := expt.RunBench(*seed)
		if err != nil {
			return err
		}
		if err := expt.WriteBenchJSON(*benchJSON, rep); err != nil {
			return err
		}
		// With -store the bench figures also land in the results store under
		// their BENCH_*.json field names, so `obsreport trend -metric
		// e2NsPerOp` plots the harness trajectory across invocations.
		if *storePath != "" {
			rec := store.NewRecord("experiments-bench")
			rec.Command = append([]string{"experiments"}, args...)
			rec.Seed = *seed
			rec.ConfigDigest = store.ConfigDigest(map[string]any{"bench": true, "preset": rep.Preset})
			rec.WallClockSeconds = time.Since(start).Seconds()
			rec.Metrics = map[string]float64{
				"contacts":         float64(rep.Contacts),
				"nsPerContact":     rep.NsPerContact,
				"allocsPerContact": rep.AllocsPerContact,
				"bytesPerContact":  rep.BytesPerContact,
				"e2Cells":          float64(rep.E2Cells),
				"e2NsPerOp":        rep.E2NsPerOp,
				"e2AllocsPerOp":    rep.E2AllocsPerOp,
				"e2BytesPerOp":     rep.E2BytesPerOp,
				"cellsPerSec":      rep.CellsPerSec,

				"largeNNodes":            float64(rep.LargeNNodes),
				"largeNContacts":         float64(rep.LargeNContacts),
				"largeNNsPerContact":     rep.LargeNNsPerContact,
				"largeNAllocsPerContact": rep.LargeNAllocsPerContact,
				"largeNBytesPerContact":  rep.LargeNBytesPerContact,
			}
			if err := store.Append(*storePath, rec); err != nil {
				return err
			}
		}
		fmt.Printf("(bench: %.0f ns/contact, %.1f allocs/contact, %.1f cells/s -> %s)\n",
			rep.NsPerContact, rep.AllocsPerContact, rep.CellsPerSec, *benchJSON)
		return nil
	}

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-4s %-55s (%s)\n", e.ID, e.Title, e.PaperAnalogue)
		}
		return nil
	}

	var selected []expt.Experiment
	if *only == "" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := expt.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	if *par < 1 {
		return fmt.Errorf("parallel must be >= 1, got %d", *par)
	}
	if *reps < 0 {
		return fmt.Errorf("replicates must be >= 0, got %d", *reps)
	}
	if *obsSample < 1 {
		return fmt.Errorf("obs-sample must be >= 1, got %d", *obsSample)
	}
	if *retries < 0 {
		return fmt.Errorf("retries must be >= 0, got %d", *retries)
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint (the journal to replay)")
	}
	if (*lineage || *timelineTick != 0) && *obsDir == "" {
		return fmt.Errorf("-lineage and -timeline-tick require -obs (the output directory)")
	}
	if *profileSlowest < 0 {
		return fmt.Errorf("profile-slowest must be >= 0, got %d", *profileSlowest)
	}
	if *profileSlowest > 0 && *obsDir == "" {
		return fmt.Errorf("-profile-slowest requires -obs (profiles are written to <obs>/profiles/)")
	}
	if *profileSlowest > 0 && *par != 1 {
		return fmt.Errorf("-profile-slowest requires -parallel 1 (the CPU profiler is process-global; a concurrent cell would pollute the capture)")
	}

	// Crash-safety plumbing: the journal checkpoints completed sweep cells
	// (and replays them under -resume); the ledger accounts every cell's
	// disposition and collects the permanent-failure roster.
	ledger := &expt.Ledger{}
	var journal *expt.Journal
	if *checkpoint != "" {
		j, err := expt.OpenJournal(*checkpoint, *resume)
		if err != nil {
			return err
		}
		journal = j
		defer journal.Close()
		if *resume {
			slog.Info("resuming from checkpoint journal",
				"journal", *checkpoint, "completedCells", journal.Len())
		}
	}

	// The observer exists when anything consumes it: trace output (-obs),
	// the live endpoint (-http) or the results store (-store). Nil
	// otherwise, so hot paths stay zero-cost.
	var observer *obs.Observer
	if *obsDir != "" || *httpAddr != "" || *storePath != "" {
		if *obsDir != "" {
			if err := os.MkdirAll(*obsDir, 0o755); err != nil {
				return err
			}
		}
		observer = obs.NewObserver(obs.Config{SampleEvery: *obsSample, BufferCap: *obsBuffer,
			Lineage: *lineage, TimelineTick: *timelineTick})
	}

	// Per-cell cost attribution for the store and -profile-slowest. Alloc
	// deltas and profiles are only meaningful when cells run strictly
	// sequentially, so they're granted only at -parallel 1.
	var costs *expt.CellCosts
	if *storePath != "" || *profileSlowest > 0 {
		costs = expt.NewCellCosts(*profileSlowest, *par == 1)
	}

	// The live endpoint owns its mux and listener (the old expvar-based
	// serveDebug registered pprof on the default mux and leaked its listener
	// across run() calls); Close on return drains it.
	if *httpAddr != "" {
		live, err := obs.ServeLive(*httpAddr, observer.Registry(), ledger.Snapshot)
		if err != nil {
			return fmt.Errorf("http: %w", err)
		}
		defer live.Close()
		slog.Info("live endpoint serving", "url", "http://"+live.Addr()+"/")
	}

	// Experiments run concurrently up to the -parallel bound; each one's
	// rendered output is buffered and printed in registry order so logs
	// stay deterministic regardless of completion order. The semaphore is
	// acquired before spawning so at most -parallel goroutines exist at a
	// time, instead of one per experiment all parked on the semaphore.
	results := make([]outcome, len(selected))
	sem := make(chan struct{}, *par)
	var wg sync.WaitGroup
	for i, e := range selected {
		i, e := i, e
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			opts := expt.Options{Seed: *seed, Quick: *quick, Parallel: *par, Replicates: *reps,
				Obs: observer, Timings: *timings,
				Journal: journal, Ledger: ledger, Retries: *retries, KeepGoing: *keepGoing,
				Costs: costs}
			results[i] = runOne(e, opts, *charts, *csvDir)
		}()
	}
	wg.Wait()
	var outputs []string
	var expErrors []string
	for i, r := range results {
		if r.err != nil {
			if !*keepGoing {
				return fmt.Errorf("%s: %w", selected[i].ID, r.err)
			}
			// Degradation mode: a failed experiment must not throw away the
			// others' completed work. Note it, keep printing the rest, and
			// fail the exit status at the end.
			slog.Warn("experiment failed (continuing, -keep-going)",
				"experiment", selected[i].ID, "err", r.err)
			expErrors = append(expErrors, fmt.Sprintf("%s: %v", selected[i].ID, r.err))
			continue
		}
		fmt.Print(r.text)
		outputs = append(outputs, r.files...)
	}

	if observer != nil && *obsDir != "" {
		for _, f := range []struct {
			name  string
			write func(*os.File) error
		}{
			{"events.jsonl", func(f *os.File) error { return observer.WriteJSONL(f) }},
			{"trace.json", func(f *os.File) error { return observer.WriteChromeTrace(f) }},
			{"metrics.om", func(f *os.File) error { return obs.WriteOpenMetrics(f, observer.Metrics.Snapshot()) }},
			{"lineage.jsonl", func(f *os.File) error { return observer.WriteLineageJSONL(f) }},
			{"timeline.csv", func(f *os.File) error { return observer.WriteTimelineCSV(f) }},
		} {
			if f.name == "lineage.jsonl" && !*lineage {
				continue
			}
			if f.name == "timeline.csv" && *timelineTick == 0 {
				continue
			}
			path := filepath.Join(*obsDir, f.name)
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := f.write(out); err != nil {
				out.Close()
				return fmt.Errorf("obs: %s: %w", f.name, err)
			}
			if err := out.Close(); err != nil {
				return err
			}
			outputs = append(outputs, path)
		}
	}

	// CPU profiles of the most expensive cells, most expensive first.
	if *profileSlowest > 0 {
		if err := costs.ProfileErr(); err != nil {
			slog.Warn("per-cell profiling disabled", "err", err)
		}
		profs, err := writeCellProfiles(filepath.Join(*obsDir, "profiles"), costs.Profiles())
		if err != nil {
			return err
		}
		outputs = append(outputs, profs...)
	}

	// A manifest accompanies the run's artifacts: next to the CSVs when
	// -csv is given, and in the obs directory when -obs is.
	if *csvDir != "" || observer != nil {
		m := obs.NewManifest("experiments")
		m.Command = append([]string{"experiments"}, args...)
		m.Seed = *seed
		m.Config = map[string]any{
			"run": *only, "quick": *quick, "parallel": *par, "replicates": *reps,
			"timings": *timings, "obsSample": *obsSample, "obsBuffer": *obsBuffer,
			"lineage": *lineage, "timelineTick": *timelineTick,
			"checkpoint": *checkpoint, "resume": *resume,
			"keepGoing": *keepGoing, "retries": *retries,
			"store": *storePath, "profileSlowest": *profileSlowest,
		}
		m.Outputs = outputs
		if observer != nil {
			snap := observer.Metrics.Snapshot()
			m.Metrics = &snap
			st := observer.Stats()
			m.Events = &st
			m.SchemeStats = observer.SchemeRollups()
		}
		// Crash-safety provenance: the permanent-failure roster and the
		// checkpoint/resume cell accounting.
		m.Failures = ledger.Failures()
		if *checkpoint != "" || len(m.Failures) > 0 {
			rs := ledger.Summary()
			rs.Journal = *checkpoint
			rs.Resumed = *resume
			m.Resume = &rs
		}
		m.FinishResources(start)
		for _, dir := range manifestDirs(*csvDir, *obsDir) {
			if err := m.Write(filepath.Join(dir, "manifest.json")); err != nil {
				return err
			}
		}
	}
	// Process-wide memory footer. Parenthesized like the per-experiment
	// stats lines, so determinism checks that strip timing footers strip
	// this too.
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	// HeapSys only grows, so it is the peak OS-mapped heap of the run.
	fmt.Printf("(mem: totalAlloc=%.1fMB mallocs=%d heapInuse=%.1fMB peakHeapSys=%.1fMB gc=%d)\n",
		float64(m.TotalAlloc)/(1<<20), m.Mallocs, float64(m.HeapInuse)/(1<<20),
		float64(m.HeapSys)/(1<<20), m.NumGC)

	// Append the run's record to the cross-run results store — after all
	// stdout, so determinism diffs of the tables see no difference, and
	// even for keep-going runs with failures (the dispositions are part of
	// the history worth querying).
	if *storePath != "" {
		rec := store.NewRecord("experiments")
		rec.Command = append([]string{"experiments"}, args...)
		rec.Seed = *seed
		// The digest covers result-determining configuration only, so runs
		// differing merely in execution policy (-parallel, -retries,
		// checkpointing) compare as the same configuration in the store.
		rec.ConfigDigest = store.ConfigDigest(map[string]any{
			"run": *only, "quick": *quick, "replicates": *reps, "timings": *timings,
		})
		rec.WallClockSeconds = time.Since(start).Seconds()
		snap := observer.Metrics.Snapshot()
		rec.Metrics = store.FlattenMetrics(snap, observer.SchemeRollups())
		rec.Histograms = snap.Histograms
		rec.Cells = costs.Cells()
		rs := ledger.Summary()
		rs.Journal = *checkpoint
		rs.Resumed = *resume
		rec.Resume = &rs
		if err := store.Append(*storePath, rec); err != nil {
			return err
		}
		slog.Info("run record appended to results store", "store", *storePath)
	}

	// Degradation mode still fails the invocation: partial tables were
	// printed and the roster recorded, but the exit status must say the run
	// was not whole.
	if failures := ledger.Failures(); len(failures) > 0 || len(expErrors) > 0 {
		for _, f := range failures {
			slog.Error("failed cell",
				"experiment", f.Experiment, "preset", f.Preset, "point", f.Point,
				"scheme", f.Scheme, "replicate", f.Replicate, "attempts", f.Attempts,
				"err", firstLine(f.Error))
		}
		return fmt.Errorf("completed with %d failed cell(s) and %d failed experiment(s); partial tables contain NA holes",
			len(failures), len(expErrors))
	}
	return nil
}

// firstLine trims a multi-line error (panic stacks) for the stderr roster;
// the full text is in the manifest.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// outcome is one experiment's rendered output block (or its error), plus
// the files it wrote.
type outcome struct {
	text  string
	files []string
	err   error
}

// manifestDirs returns the distinct non-empty directories a manifest.json
// belongs in.
func manifestDirs(dirs ...string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, d := range dirs {
		if d == "" || seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

// initLogging routes progress and warning output through a text slog
// handler on stderr — stdout stays reserved for tables, so determinism
// diffs are unaffected. -v lowers the level to debug.
func initLogging(verbose bool) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
}

// writeCellProfiles writes the retained per-cell CPU profiles into dir,
// most expensive first, and returns the written paths.
func writeCellProfiles(dir string, profs []expt.CellProfile) ([]string, error) {
	if len(profs) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var out []string
	for rank, p := range profs {
		scheme := p.Cost.Scheme
		if scheme == "" {
			scheme = "default"
		}
		name := fmt.Sprintf("%02d-%s-%s-p%02d-%s-r%d.pprof",
			rank, p.Cost.Experiment, p.Cost.Preset, p.Cost.Point, scheme, p.Cost.Replicate)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, p.Data, 0o644); err != nil {
			return nil, err
		}
		slog.Info("wrote cell profile", "path", path,
			"wallSeconds", p.Cost.WallSeconds, "mallocs", p.Cost.Mallocs)
		out = append(out, path)
	}
	return out, nil
}

// runOne executes one experiment and renders its full output block.
func runOne(e expt.Experiment, opts expt.Options, charts bool, csvDir string) (out outcome) {
	start := time.Now()
	stats := metrics.NewRunStats()
	opts.Stats = stats
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s (paper analogue: %s)\n", e.ID, e.Title, e.PaperAnalogue)
	tables, err := e.Run(opts)
	if err != nil {
		out.err = err
		return
	}
	for i, t := range tables {
		fmt.Fprintln(&b, t.Render())
		if charts && t.Chartable() {
			chart, err := t.Chart(64, 16)
			if err != nil {
				out.err = fmt.Errorf("chart for table %q: %w", t.Title, err)
				return
			}
			fmt.Fprintln(&b, chart)
		}
		if csvDir != "" {
			name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i)
			path := filepath.Join(csvDir, name)
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				out.err = err
				return
			}
			out.files = append(out.files, path)
		}
	}
	elapsed := time.Since(start)
	if stats.Runs() > 0 {
		fmt.Fprintf(&b, "(%s stats: %s)\n", e.ID, stats.Summary(elapsed.Seconds()))
	}
	fmt.Fprintf(&b, "(%s completed in %s)\n\n", e.ID, elapsed.Round(time.Millisecond))
	out.text = b.String()
	return
}
