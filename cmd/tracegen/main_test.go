package main

import (
	"os"
	"path/filepath"
	"testing"

	"freshcache/internal/trace"
)

func TestRunPreset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.contacts")
	if err := run([]string{"-preset", "infocom-like", "-seed", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 78 {
		t.Fatalf("N = %d", tr.N)
	}
}

func TestRunModels(t *testing.T) {
	for _, model := range []string{"hetexp", "community"} {
		out := filepath.Join(t.TempDir(), model+".contacts")
		if err := run([]string{"-model", model, "-nodes", "15", "-days", "2", "-out", out}); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		tr, err := trace.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if tr.N != 15 || len(tr.Contacts) == 0 {
			t.Fatalf("%s: %d nodes, %d contacts", model, tr.N, len(tr.Contacts))
		}
	}
}

func TestRunRWP(t *testing.T) {
	out := filepath.Join(t.TempDir(), "rwp.contacts")
	if err := run([]string{"-model", "rwp", "-nodes", "10", "-hours", "1", "-field", "300", "-range", "60", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-model", "bogus"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run([]string{"-preset", "bogus"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunWorkingDay(t *testing.T) {
	out := filepath.Join(t.TempDir(), "wd.contacts")
	if err := run([]string{"-model", "workingday", "-nodes", "20", "-days", "3", "-communities", "2", "-out", out}); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 20 || len(tr.Contacts) == 0 {
		t.Fatalf("workingday: %d nodes, %d contacts", tr.N, len(tr.Contacts))
	}
}
