// Command tracegen generates synthetic contact traces and writes them in
// the text format read by freshsim and the library.
//
// Usage:
//
//	tracegen -preset reality-like -seed 42 -out reality.contacts
//	tracegen -model community -nodes 60 -days 14 -out campus.contacts
//	tracegen -model rwp -nodes 30 -hours 6 -out field.contacts
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"freshcache/internal/mobility"
	"freshcache/internal/obs"
	"freshcache/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		preset = fs.String("preset", "", "built-in preset (reality-like, infocom-like); overrides -model")
		model  = fs.String("model", "community", "generator model: hetexp, community, rwp, workingday")
		nodes  = fs.Int("nodes", 60, "number of nodes")
		days   = fs.Float64("days", 14, "trace duration in days (hetexp/community)")
		hours  = fs.Float64("hours", 6, "trace duration in hours (rwp)")
		seed   = fs.Int64("seed", 1, "random seed")
		out    = fs.String("out", "", "output file (default stdout)")
		obsDir = fs.String("obs", "", "directory for a provenance manifest.json (command, seed, outputs, toolchain)")

		// hetexp / community knobs.
		meanRate  = fs.Float64("rate", 4, "mean pairwise contacts per day (hetexp) / intra-community rate (community)")
		interRate = fs.Float64("interrate", 0.5, "inter-community contacts per day (community)")
		comms     = fs.Int("communities", 4, "number of communities (community)")

		// rwp knobs.
		field = fs.Float64("field", 1000, "field side in meters (rwp)")
		radio = fs.Float64("range", 50, "transmission range in meters (rwp)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()

	var gen mobility.Generator
	switch {
	case *preset != "":
		g, err := mobility.Preset(*preset)
		if err != nil {
			return err
		}
		gen = g
	case *model == "hetexp":
		gen = &mobility.HeterogeneousExp{
			TraceName: "hetexp", N: *nodes, Duration: *days * mobility.Day,
			MeanRate: *meanRate / mobility.Day, RateShape: 0.7, PairFraction: 0.8,
			MeanContactDur: 120,
		}
	case *model == "community":
		gen = &mobility.Community{
			TraceName: "community", N: *nodes, Duration: *days * mobility.Day,
			Communities: *comms, IntraRate: *meanRate / mobility.Day,
			InterRate: *interRate / mobility.Day, RateShape: 0.7,
			InterPairFraction: 0.5, HubFraction: 0.08, HubBoost: 3,
			MeanContactDur: 180,
		}
	case *model == "workingday":
		gen = &mobility.WorkingDay{
			TraceName: "workingday", N: *nodes, Days: int(*days),
			Offices:    *comms,
			OfficeRate: *meanRate / (8 * mobility.Hour),
			WorkStart:  9 * mobility.Hour, WorkEnd: 17 * mobility.Hour,
			Jitter:        30 * 60,
			EveningVenues: 3, EveningProb: 0.33,
			EveningStart: 19 * mobility.Hour, EveningLen: 2 * mobility.Hour,
			EveningRate:    4.0 / (2 * mobility.Hour),
			MeanContactDur: 10 * 60,
		}
	case *model == "rwp":
		gen = &mobility.RandomWaypoint{
			TraceName: "rwp", N: *nodes, Duration: *hours * mobility.Hour,
			Field: *field, Range: *radio, SpeedMin: 0.5, SpeedMax: 3,
			PauseMean: 60, Step: 1,
		}
	default:
		return fmt.Errorf("unknown model %q (have hetexp, community, rwp, workingday)", *model)
	}

	tr, err := gen.Generate(*seed)
	if err != nil {
		return err
	}
	err = func() error {
		if *out == "" {
			return trace.Write(os.Stdout, tr)
		}
		if err := trace.WriteFile(*out, tr); err != nil {
			return err
		}
		s := tr.ComputeStats()
		fmt.Printf("wrote %s: %d nodes, %.1f hours, %d contacts\n", *out, s.Nodes, s.DurationHours, s.Contacts)
		return nil
	}()
	if err != nil {
		return err
	}
	if *obsDir != "" {
		var outputs []string
		if *out != "" {
			outputs = []string{*out}
		}
		return obs.WriteToolManifest(*obsDir, "tracegen", args, *seed, outputs, start)
	}
	return nil
}
