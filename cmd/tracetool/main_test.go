package main

import (
	"os"
	"path/filepath"
	"testing"

	"freshcache/internal/trace"
)

func writeTestTrace(t *testing.T, dir string) string {
	t.Helper()
	tr := &trace.Trace{Name: "t", N: 4, Duration: 1000, Contacts: []trace.Contact{
		{A: 0, B: 1, Start: 100, End: 110},
		{A: 0, B: 1, Start: 300, End: 320},
		{A: 1, B: 2, Start: 400, End: 450},
		{A: 2, B: 3, Start: 600, End: 610},
	}}
	path := filepath.Join(dir, "in.contacts")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConvertONE(t *testing.T) {
	dir := t.TempDir()
	one := filepath.Join(dir, "one.txt")
	if err := os.WriteFile(one, []byte("10 CONN 0 1 up\n50 CONN 0 1 down\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.contacts")
	if err := run([]string{"convert", one, "-out", out}); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Contacts) != 1 || tr.Contacts[0].Start != 10 {
		t.Fatalf("converted: %+v", tr.Contacts)
	}
}

func TestRebaseCmd(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrace(t, dir)
	out := filepath.Join(dir, "rebased.contacts")
	if err := run([]string{"rebase", in, "-out", out}); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Contacts[0].Start != 0 {
		t.Fatalf("not rebased: %+v", tr.Contacts[0])
	}
}

func TestSubsetCmd(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrace(t, dir)
	out := filepath.Join(dir, "subset.contacts")
	if err := run([]string{"subset", in, "-top", "2", "-out", out}); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 2 {
		t.Fatalf("subset N = %d", tr.N)
	}
}

func TestConcatCmd(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrace(t, dir)
	out := filepath.Join(dir, "both.contacts")
	if err := run([]string{"concat", in, in, "-out", out}); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration != 2000 || len(tr.Contacts) != 8 {
		t.Fatalf("concat: %v s, %d contacts", tr.Duration, len(tr.Contacts))
	}
}

func TestToolErrors(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrace(t, dir)
	cases := [][]string{
		{},
		{"bogus", in},
		{"convert"},                  // missing file
		{"convert", in, in},          // too many files
		{"concat", in},               // needs two
		{"subset", in, "-top", "99"}, // more than N
		{"convert", filepath.Join(dir, "missing")},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
