// Command tracetool transforms contact traces: converting formats (the
// ONE simulator's StandardEvents is auto-detected on read), rebasing
// epoch timestamps to zero, restricting to the most active nodes, and
// concatenating traces in time.
//
// Usage:
//
//	tracetool convert one-export.txt -out native.contacts
//	tracetool rebase epoch.contacts -out rebased.contacts
//	tracetool subset big.contacts -top 50 -out small.contacts
//	tracetool concat first.contacts second.contacts -out both.contacts
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"freshcache/internal/obs"
	"freshcache/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return errors.New("usage: tracetool <convert|rebase|subset|concat> [flags] <trace-file>...")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet("tracetool "+cmd, flag.ContinueOnError)
	var (
		out    = fs.String("out", "", "output file (default stdout)")
		top    = fs.Int("top", 50, "subset: keep this many most-active nodes")
		obsDir = fs.String("obs", "", "directory for a provenance manifest.json (command, outputs, toolchain)")
	)
	start := time.Now()
	// Accept "tracetool subset file -top 50" and "tracetool subset -top 50 file".
	var files []string
	for len(rest) > 0 {
		if len(rest[0]) > 0 && rest[0][0] == '-' {
			if err := fs.Parse(rest); err != nil {
				return err
			}
			rest = fs.Args()
			continue
		}
		files = append(files, rest[0])
		rest = rest[1:]
	}

	var result *trace.Trace
	switch cmd {
	case "convert":
		if len(files) != 1 {
			return errors.New("convert needs exactly one trace file")
		}
		tr, err := trace.ReadFile(files[0])
		if err != nil {
			return err
		}
		result = tr
	case "rebase":
		if len(files) != 1 {
			return errors.New("rebase needs exactly one trace file")
		}
		tr, err := trace.ReadFile(files[0])
		if err != nil {
			return err
		}
		result = tr.Rebase()
	case "subset":
		if len(files) != 1 {
			return errors.New("subset needs exactly one trace file")
		}
		tr, err := trace.ReadFile(files[0])
		if err != nil {
			return err
		}
		nodes, err := tr.TopNodesByContacts(*top)
		if err != nil {
			return err
		}
		result, err = tr.Subset(nodes)
		if err != nil {
			return err
		}
	case "concat":
		if len(files) < 2 {
			return errors.New("concat needs at least two trace files")
		}
		tr, err := trace.ReadFile(files[0])
		if err != nil {
			return err
		}
		for _, f := range files[1:] {
			next, err := trace.ReadFile(f)
			if err != nil {
				return err
			}
			tr, err = tr.Concat(next)
			if err != nil {
				return err
			}
		}
		result = tr
	default:
		return fmt.Errorf("unknown subcommand %q (have convert, rebase, subset, concat)", cmd)
	}

	err := func() error {
		if *out == "" {
			return trace.Write(os.Stdout, result)
		}
		if err := trace.WriteFile(*out, result); err != nil {
			return err
		}
		s := result.ComputeStats()
		fmt.Printf("wrote %s: %d nodes, %.1f hours, %d contacts\n", *out, s.Nodes, s.DurationHours, s.Contacts)
		return nil
	}()
	if err != nil {
		return err
	}
	if *obsDir != "" {
		var outputs []string
		if *out != "" {
			outputs = []string{*out}
		}
		return obs.WriteToolManifest(*obsDir, "tracetool", args, 0, outputs, start)
	}
	return nil
}
