package main

import (
	"path/filepath"
	"testing"

	"freshcache/internal/mobility"
	"freshcache/internal/trace"
)

func infoTraceFile(t *testing.T) string {
	t.Helper()
	g := &mobility.HeterogeneousExp{
		TraceName: "info", N: 20, Duration: 3 * mobility.Day,
		MeanRate: 5.0 / mobility.Day, RateShape: 0.8, PairFraction: 0.8, MeanContactDur: 90,
	}
	tr, err := g.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "info.contacts")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunInfo(t *testing.T) {
	if err := run([]string{infoTraceFile(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInfoTopWindow(t *testing.T) {
	if err := run([]string{"-top", "5", "-window", "2h", infoTraceFile(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInfoErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"a", "b"}); err == nil {
		t.Fatal("two files accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("missing file accepted")
	}
}
