// Command traceinfo reports aggregate statistics of a contact trace and
// the centrality ranking of its nodes — the inputs to caching-node (NCL)
// selection.
//
// Usage:
//
//	traceinfo campus.contacts
//	traceinfo -top 10 -window 6h campus.contacts
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"freshcache/internal/centrality"
	"freshcache/internal/obs"
	"freshcache/internal/stats"
	"freshcache/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	var (
		top    = fs.Int("top", 10, "how many central nodes to list")
		window = fs.Duration("window", 6*time.Hour, "centrality contact window")
		obsDir = fs.String("obs", "", "directory for a provenance manifest.json (command, inputs, toolchain)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceinfo [flags] <trace-file>")
	}
	tr, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}

	s := tr.ComputeStats()
	fmt.Printf("trace:            %s\n", s.Name)
	fmt.Printf("nodes:            %d\n", s.Nodes)
	fmt.Printf("duration:         %.1f hours\n", s.DurationHours)
	fmt.Printf("contacts:         %d\n", s.Contacts)
	fmt.Printf("meeting pairs:    %d (%.1f%% of all pairs)\n", s.MeetingPairs, 100*s.PairCoverage)
	fmt.Printf("contacts/pair:    %.2f\n", s.ContactsPerPair)
	fmt.Printf("mean pair rate:   %.3f contacts/day\n", s.MeanPairRate*86400)
	fmt.Printf("mean contact:     %.0f s\n", s.MeanContactDur)

	// Inter-contact time distribution over all meeting pairs.
	var gaps []float64
	for _, g := range tr.InterContactTimes() {
		gaps = append(gaps, g...)
	}
	if len(gaps) > 0 {
		sum := stats.Summarize(gaps)
		fmt.Printf("inter-contact:    median %.1f h, mean %.1f h, p90 %.1f h\n",
			sum.Median/3600, sum.Mean/3600, sum.P90/3600)
		if ks, err := stats.ExpFitKS(gaps); err == nil {
			fmt.Printf("exponential fit:  KS distance %.3f (small ⇒ Poisson contacts; the analytical model applies)\n", ks)
		}
	}

	printActivity(tr)

	rates, err := centrality.FromTrace(tr, 0, tr.Duration)
	if err != nil {
		return err
	}
	scores := centrality.Scores(rates, window.Seconds())
	rank := centrality.Rank(scores)
	if *top > len(rank) {
		*top = len(rank)
	}
	fmt.Printf("\ntop %d nodes by cumulative-contact centrality (window %s):\n", *top, window)
	for i := 0; i < *top; i++ {
		fmt.Printf("  %2d. node %3d  score %.4f\n", i+1, rank[i], scores[rank[i]])
	}

	sel, err := centrality.SelectCachingNodes(rates, window.Seconds(), *top)
	if err != nil {
		return err
	}
	fmt.Printf("\ngreedy coverage selection of %d caching nodes: %v\n", *top, sel)
	if *obsDir != "" {
		return obs.WriteToolManifest(*obsDir, "traceinfo", args, 0, nil, start)
	}
	return nil
}

// printActivity renders a day-by-day contact activity bar chart — the
// quickest way to spot diurnal cycles and dead periods in a trace.
func printActivity(tr *trace.Trace) {
	const day = 86400.0
	days := int(tr.Duration/day) + 1
	if days < 2 || days > 120 {
		return
	}
	counts := make([]int, days)
	maxCount := 0
	for _, c := range tr.Contacts {
		d := int(c.Start / day)
		counts[d]++
		if counts[d] > maxCount {
			maxCount = counts[d]
		}
	}
	if maxCount == 0 {
		return
	}
	fmt.Printf("\ncontacts per day (max %d):\n", maxCount)
	for d, n := range counts {
		bar := strings.Repeat("#", n*50/maxCount)
		fmt.Printf("  day %3d %-50s %d\n", d, bar, n)
	}
}
