package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"freshcache/internal/mobility"
	"freshcache/internal/obs"
	"freshcache/internal/trace"
)

func smallTraceFile(t *testing.T) string {
	t.Helper()
	g := &mobility.Community{
		TraceName: "cli", N: 25, Duration: 4 * mobility.Day, Communities: 3,
		IntraRate: 8.0 / mobility.Day, InterRate: 1.0 / mobility.Day, RateShape: 0.8,
		InterPairFraction: 0.6, HubFraction: 0.1, HubBoost: 3, MeanContactDur: 120,
	}
	tr, err := g.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cli.contacts")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnTraceFile(t *testing.T) {
	path := smallTraceFile(t)
	if err := run([]string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	path := smallTraceFile(t)
	if err := run([]string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFailureKnobs(t *testing.T) {
	path := smallTraceFile(t)
	args := []string{
		"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h",
		"-scheme", "adaptive", "-loss", "0.2", "-churn-up", "12h", "-churn-down", "2h",
		"-distributed", "-rebuild", "24h", "-relaycap", "4", "-msgtime", "2s",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompare(t *testing.T) {
	path := smallTraceFile(t)
	if err := run([]string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h",
		"-compare", "direct,hierarchical"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := smallTraceFile(t)
	cases := [][]string{
		{"-scheme", "bogus", "-trace", path},
		{"-trace", filepath.Join(t.TempDir(), "missing")},
		{"-trace", path, "-items", "0"},
		{"-trace", path, "-compare", "direct,bogus"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunReplicated(t *testing.T) {
	path := smallTraceFile(t)
	if err := run([]string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h", "-runs", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithObservability(t *testing.T) {
	path := smallTraceFile(t)
	dir := filepath.Join(t.TempDir(), "obs")
	if err := run([]string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h", "-obs", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"events.jsonl", "trace.json", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing obs output %s: %v", name, err)
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("manifest.json invalid: %v", err)
	}
	if m.Tool != "freshsim" || m.Events == nil || m.Events.Runs != 1 {
		t.Fatalf("manifest incomplete: %+v", m)
	}
}
