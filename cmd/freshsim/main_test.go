package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"freshcache/internal/mobility"
	"freshcache/internal/obs"
	"freshcache/internal/obs/store"
	"freshcache/internal/trace"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed — the surface the resume tests compare byte for byte.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func smallTraceFile(t *testing.T) string {
	t.Helper()
	g := &mobility.Community{
		TraceName: "cli", N: 25, Duration: 4 * mobility.Day, Communities: 3,
		IntraRate: 8.0 / mobility.Day, InterRate: 1.0 / mobility.Day, RateShape: 0.8,
		InterPairFraction: 0.6, HubFraction: 0.1, HubBoost: 3, MeanContactDur: 120,
	}
	tr, err := g.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cli.contacts")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnTraceFile(t *testing.T) {
	path := smallTraceFile(t)
	if err := run([]string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	path := smallTraceFile(t)
	if err := run([]string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFailureKnobs(t *testing.T) {
	path := smallTraceFile(t)
	args := []string{
		"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h",
		"-scheme", "adaptive", "-loss", "0.2", "-churn-up", "12h", "-churn-down", "2h",
		"-distributed", "-rebuild", "24h", "-relaycap", "4", "-msgtime", "2s",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompare(t *testing.T) {
	path := smallTraceFile(t)
	if err := run([]string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h",
		"-compare", "direct,hierarchical"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := smallTraceFile(t)
	cases := [][]string{
		{"-scheme", "bogus", "-trace", path},
		{"-trace", filepath.Join(t.TempDir(), "missing")},
		{"-trace", path, "-items", "0"},
		{"-trace", path, "-compare", "direct,bogus"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunReplicated(t *testing.T) {
	path := smallTraceFile(t)
	if err := run([]string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h", "-runs", "3"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunReplicatedCheckpointResume: a replicated run interrupted after
// some replicates (simulated by truncating the checkpoint journal) and
// resumed must print a report byte-identical to an uninterrupted run.
func TestRunReplicatedCheckpointResume(t *testing.T) {
	path := smallTraceFile(t)
	base := []string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h", "-runs", "3"}
	clean, err := captureStdout(t, func() error { return run(base) })
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	withCkpt := append(append([]string{}, base...), "-checkpoint", ckpt)
	journaled, err := captureStdout(t, func() error { return run(withCkpt) })
	if err != nil {
		t.Fatal(err)
	}
	if journaled != clean {
		t.Fatalf("checkpointed output differs from clean run:\n%q\nvs\n%q", journaled, clean)
	}
	b, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal holds %d records, want 3", len(lines))
	}
	// "Kill" the run after the first replicate.
	if err := os.WriteFile(ckpt, []byte(lines[0]), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := captureStdout(t, func() error {
		return run(append(append([]string{}, withCkpt...), "-resume"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != clean {
		t.Fatalf("resumed output differs from clean run:\n%q\nvs\n%q", resumed, clean)
	}
}

// TestRunCheckpointConfigChangeReExecutes: resuming with changed
// simulation flags must not splice the stale journal in.
func TestRunCheckpointConfigChangeReExecutes(t *testing.T) {
	path := smallTraceFile(t)
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	base := []string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h", "-runs", "2", "-checkpoint", ckpt}
	if err := run(base); err != nil {
		t.Fatal(err)
	}
	// Same journal, different -zipf: a changed experiment ID keeps the old
	// records from replaying, and the run must still succeed.
	changed := []string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h", "-runs", "2",
		"-zipf", "0.5", "-checkpoint", ckpt, "-resume"}
	clean, err := captureStdout(t, func() error {
		return run([]string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h", "-runs", "2", "-zipf", "0.5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := captureStdout(t, func() error { return run(changed) })
	if err != nil {
		t.Fatal(err)
	}
	if got != clean {
		t.Fatalf("changed-config resume output differs:\n%q\nvs\n%q", got, clean)
	}
}

func TestRunCheckpointValidation(t *testing.T) {
	path := smallTraceFile(t)
	cases := [][]string{
		{"-trace", path, "-runs", "3", "-resume"},                                                    // -resume without -checkpoint
		{"-trace", path, "-checkpoint", filepath.Join(t.TempDir(), "c.jsonl")},                       // single run
		{"-trace", path, "-compare", "direct", "-checkpoint", filepath.Join(t.TempDir(), "c.jsonl")}, // compare mode
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunWithObservability(t *testing.T) {
	path := smallTraceFile(t)
	dir := filepath.Join(t.TempDir(), "obs")
	if err := run([]string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h", "-obs", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"events.jsonl", "trace.json", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing obs output %s: %v", name, err)
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("manifest.json invalid: %v", err)
	}
	if m.Tool != "freshsim" || m.Events == nil || m.Events.Runs != 1 {
		t.Fatalf("manifest incomplete: %+v", m)
	}
}

// TestRunStore: -store appends a freshsim record with the run's metrics,
// and leaves the report byte-identical.
func TestRunStore(t *testing.T) {
	path := smallTraceFile(t)
	base := []string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h"}
	clean, err := captureStdout(t, func() error { return run(base) })
	if err != nil {
		t.Fatal(err)
	}
	sp := filepath.Join(t.TempDir(), "store.jsonl")
	stored, err := captureStdout(t, func() error {
		return run(append(append([]string{}, base...), "-store", sp))
	})
	if err != nil {
		t.Fatal(err)
	}
	if stored != clean {
		t.Fatalf("-store changed the report:\n%q\nvs\n%q", stored, clean)
	}
	recs, err := store.Read(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("store holds %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Tool != "freshsim" || r.ConfigDigest == "" || r.Seed != 1 {
		t.Fatalf("record provenance: %+v", r)
	}
	if r.Metrics["engine/contacts"] <= 0 {
		t.Errorf("record metrics missing engine/contacts: %v", r.Metrics)
	}
}

// TestRunStoreKeepsCheckpointID: -store is execution policy, not
// simulation config — adding it on resume must not change the experiment
// ID, so the journal still replays.
func TestRunStoreKeepsCheckpointID(t *testing.T) {
	path := smallTraceFile(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	base := []string{"-trace", path, "-items", "2", "-caching", "4", "-refresh", "4h",
		"-runs", "2", "-checkpoint", ckpt}
	if err := run(base); err != nil {
		t.Fatal(err)
	}
	sp := filepath.Join(dir, "store.jsonl")
	if err := run(append(append([]string{}, base...), "-resume", "-store", sp)); err != nil {
		t.Fatal(err)
	}
	recs, err := store.Read(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Resume == nil {
		t.Fatalf("store records: %+v", recs)
	}
	if got := recs[0].Resume.CellsReplayed; got != 2 {
		t.Errorf("resumed run replayed %d cells, want 2 (did -store change the experiment ID?)", got)
	}
}
